// Quickstart: the Horovod-style public API in its smallest form.
//
// Four simulated GPUs train a shared MLP on a synthetic dataset. Each
// rank wraps its optimizer in core.NewDistributedOptimizer with
// op=OpAdasum — the one-line change §4.1 of the paper advertises — and
// every optimizer step transparently runs the Figure 3 pattern: local
// Adam step, Adasum allreduce of the effective gradient, model rewind.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

func main() {
	const ranks = 4
	train, test := data.SyntheticMNIST(1, 8192, 1024)

	// All ranks must start from the same model.
	seedNet := nn.NewMLP(train.Dim, 64, train.Classes)
	seedNet.Init(rand.New(rand.NewSource(42)))
	initParams := tensor.Clone(seedNet.Params())

	world := comm.NewWorld(ranks, nil)
	group := collective.WorldGroup(ranks)

	accs := comm.RunCollect(world, func(p *comm.Proc) float64 {
		net := nn.NewMLP(train.Dim, 64, train.Classes)
		net.SetParams(initParams)

		// Each rank binds its endpoint to the group once; every
		// collective runs through the communicator. Wire compression
		// is the communicator's knob too: pass
		// Config{Compression: compress.FP16()} for §4.4.1 fp16
		// communication, or compress.Adaptive() to let a policy pick
		// the codec per bucket from live bandwidth telemetry.
		c := collective.New(p, group, collective.Config{})

		// The one-line Horovod idiom:
		//   opt = hvd.DistributedOptimizer(opt, op=hvd.Adasum)
		dopt := core.NewDistributedOptimizer(optim.NewAdam(), core.OpAdasum, core.Options{})

		shard := train.Shard(p.Rank(), ranks)
		iter := data.NewIterator(shard.N, 32, int64(p.Rank()))
		for step := 0; step < 300; step++ {
			idx := iter.Next()
			x, labels := shard.Batch(idx)
			net.Gradient(x, labels, len(idx))
			dopt.Step(c, net, 0.001)
		}

		testX, testLabels := test.Batch(firstN(test.N))
		return net.Accuracy(testX, testLabels, test.N)
	})

	for r, acc := range accs {
		fmt.Printf("rank %d: test accuracy %.4f\n", r, acc)
	}
}

func firstN(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
