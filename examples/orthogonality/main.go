// Gradient orthogonality during training — Figure 1 in miniature. A
// residual MLP trains data-parallel on 16 simulated GPUs; at every few
// reduction steps the per-layer orthogonality metric
// ‖Adasum(g1..gn)‖² / Σ‖gi‖² is recorded. The trace shows the paper's
// §3.6 observation: gradients start out aligned (metric near 1/n) and
// decorrelate as training proceeds (metric toward 1), with a visible dip
// right after the learning-rate drop.
//
//	go run ./examples/orthogonality
package main

import (
	"fmt"
	"strings"

	"repro/internal/adasum"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

func main() {
	const workers = 16
	train, test := data.SyntheticImageNet(11, 16384, 1024)

	type sample struct {
		step int
		avg  float64
	}
	var trace []sample

	boundary := 48
	cfg := trainer.Config{
		Workers:    workers,
		Microbatch: 32,
		Reduction:  trainer.ReduceAdasum,
		PerLayer:   true,
		Model:      func() *nn.Network { return nn.NewResNetProxy(train.Dim, train.Classes, 96, 3) },
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   optim.MultiStep{Base: 0.05, Milestones: []int{boundary}, Gamma: 0.1},
		Train:      train,
		Test:       test,
		MaxEpochs:  3,
		Seed:       12,
		Parallel:   true,
		Hook: func(step int, grads [][]float32, layout tensor.Layout) {
			if step%4 != 0 {
				return
			}
			_, avg := adasum.OrthogonalityPerLayer(grads, layout)
			trace = append(trace, sample{step, avg})
		},
	}
	res := trainer.Run(cfg)

	fmt.Printf("final accuracy: %.4f; LR drops 10x at step %d\n\n", res.FinalAccuracy, boundary)
	fmt.Println("step  orthogonality (1/16 = fully aligned, 1.0 = orthogonal)")
	for _, s := range trace {
		bar := strings.Repeat("#", int(s.avg*50))
		mark := ""
		if s.step >= boundary && s.step < boundary+4 {
			mark = "  <- LR drop"
		}
		fmt.Printf("%4d  %.3f %s%s\n", s.step, s.avg, bar, mark)
	}
}
