// LeNet on synthetic MNIST across simulated GPU counts — the §5.4 case
// study in miniature. An aggressive 2-epoch warmup/decay schedule is run
// sequentially, then data-parallel at several worker counts with both
// Horovod-Sum (gradient sum: base LR effectively multiplied by the
// worker count) and Adasum, without touching any hyperparameter. The
// output shows Sum collapsing as workers grow while Adasum keeps
// converging — the paper's "easy scalability" claim.
//
//	go run ./examples/lenet
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	train, test := data.SyntheticMNIST(7, 8192, 1024)
	const (
		batch  = 32
		epochs = 2
		baseLR = 0.0328 // the paper's tuned sequential rate
	)

	run := func(workers int, red trainer.Reduction) float64 {
		stepsPerEpoch := train.N / (workers * batch)
		if stepsPerEpoch == 0 {
			stepsPerEpoch = 1
		}
		total := epochs * stepsPerEpoch
		sched := optim.Schedule(optim.LinearWarmupDecay{
			Base: baseLR, WarmupSteps: total * 17 / 100, TotalSteps: total,
		})
		if red == trainer.ReduceSum && workers > 1 {
			sched = optim.Scaled{Inner: sched, Factor: float64(workers)}
		}
		res := trainer.Run(trainer.Config{
			Workers:    workers,
			Microbatch: batch,
			Reduction:  red,
			PerLayer:   true,
			Model:      func() *nn.Network { return nn.NewLeNet5(14, 14, train.Classes) },
			Optimizer:  optim.NewMomentum(0.9),
			Schedule:   sched,
			Train:      train,
			Test:       test,
			MaxEpochs:  epochs,
			Seed:       8,
			Parallel:   true,
		})
		return res.FinalAccuracy
	}

	seq := run(1, trainer.ReduceSum)
	fmt.Printf("sequential reference: %.4f\n\n", seq)
	fmt.Printf("%6s  %8s  %8s\n", "gpus", "adasum", "sum")
	for _, workers := range []int{4, 8, 16} {
		fmt.Printf("%6d  %8.4f  %8.4f\n",
			workers, run(workers, trainer.ReduceAdasum), run(workers, trainer.ReduceSum))
	}
}
