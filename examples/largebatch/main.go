// Large-batch scaling with Adam and LAMB, with and without Adasum —
// §5.3 in miniature. For a growing effective batch, each combination
// trains the BERT proxy for a fixed budget and reports its final
// accuracy, showing the paper's pattern: scaled-LR Adam degrades first,
// LAMB's trust ratios stretch further, and Adasum (post-optimizer,
// Figure 3 pattern, untouched base LR) keeps both usable.
//
//	go run ./examples/largebatch
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func main() {
	train, test := data.SyntheticMaskedLM(9, 8192, 1024, 0.15)
	layoutProbe := nn.NewBERTProxy(train.Dim, train.Classes, 96, 3)

	const (
		micro  = 32
		epochs = 6
		adamLR = 0.002
		lambLR = 0.01
	)

	run := func(workers int, name string) float64 {
		stepsPerEpoch := train.N / (workers * micro)
		if stepsPerEpoch == 0 {
			stepsPerEpoch = 1
		}
		total := epochs * stepsPerEpoch
		mk := func(base float64) optim.Schedule {
			return optim.PolynomialWarmup{Base: base, WarmupSteps: total / 10, TotalSteps: total, Power: 1}
		}
		cfg := trainer.Config{
			Workers:    workers,
			Microbatch: micro,
			PerLayer:   true,
			Model:      func() *nn.Network { return nn.NewBERTProxy(train.Dim, train.Classes, 96, 3) },
			Train:      train,
			Test:       test,
			MaxEpochs:  epochs,
			Seed:       10,
			Parallel:   true,
		}
		switch name {
		case "adam+sum":
			cfg.Reduction = trainer.ReduceSum
			cfg.Optimizer = optim.NewAdam()
			// Linear LR scaling with the batch — the recipe that stops
			// working at scale.
			cfg.Schedule = optim.Scaled{Inner: mk(adamLR), Factor: float64(workers) * 8}
		case "lamb+sum":
			cfg.Reduction = trainer.ReduceSum
			cfg.Optimizer = optim.NewLAMB(layoutProbe.Layout())
			cfg.Schedule = mk(lambLR)
		case "adam+adasum":
			cfg.Reduction = trainer.ReduceAdasum
			cfg.Scope = trainer.PostOptimizer
			cfg.Optimizer = optim.NewAdam()
			cfg.Schedule = mk(adamLR)
		case "lamb+adasum":
			cfg.Reduction = trainer.ReduceAdasum
			cfg.Scope = trainer.PostOptimizer
			cfg.Optimizer = optim.NewLAMB(layoutProbe.Layout())
			cfg.Schedule = mk(lambLR)
		}
		return trainer.Run(cfg).FinalAccuracy
	}

	combos := []string{"adam+sum", "adam+adasum", "lamb+sum", "lamb+adasum"}
	fmt.Printf("%12s", "eff.batch")
	for _, c := range combos {
		fmt.Printf("  %12s", c)
	}
	fmt.Println()
	for _, workers := range []int{4, 16, 32} {
		fmt.Printf("%12d", workers*micro)
		for _, c := range combos {
			fmt.Printf("  %12.4f", run(workers, c))
		}
		fmt.Println()
	}
}
