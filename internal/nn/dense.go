package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully connected layer: y = xW^T + b, with W stored row-major
// [out][in] followed by the bias [out] in the flat parameter slice.
type Dense struct {
	name     string
	in, out  int
	withBias bool

	w, b   []float32 // views into the bound parameter slice
	gw, gb []float32 // views into the bound gradient slice

	x    []float32 // cached input for backward
	y    []float32 // output buffer
	dx   []float32 // input-gradient buffer
	last int       // batch of the cached forward
}

// NewDense creates a fully connected layer with bias.
func NewDense(name string, in, out int) *Dense {
	return &Dense{name: name, in: in, out: out, withBias: true}
}

// NewDenseNoBias creates a fully connected layer without bias.
func NewDenseNoBias(name string, in, out int) *Dense {
	return &Dense{name: name, in: in, out: out, withBias: false}
}

func (d *Dense) Name() string { return d.name }
func (d *Dense) InDim() int   { return d.in }
func (d *Dense) OutDim() int  { return d.out }

func (d *Dense) ParamSize() int {
	n := d.in * d.out
	if d.withBias {
		n += d.out
	}
	return n
}

func (d *Dense) Bind(params, grads []float32) {
	if len(params) != d.ParamSize() || len(grads) != d.ParamSize() {
		panic(fmt.Sprintf("nn: Dense %s bind size mismatch", d.name))
	}
	d.w = params[:d.in*d.out]
	d.gw = grads[:d.in*d.out]
	if d.withBias {
		d.b = params[d.in*d.out:]
		d.gb = grads[d.in*d.out:]
	}
}

func (d *Dense) Init(rng *rand.Rand) {
	glorotInit(rng, d.w, d.in, d.out)
	for i := range d.b {
		d.b[i] = 0
	}
}

func (d *Dense) Forward(x []float32, batch int) []float32 {
	if len(x) != batch*d.in {
		panic(fmt.Sprintf("nn: Dense %s forward got %d values, want %d", d.name, len(x), batch*d.in))
	}
	d.x = x
	d.last = batch
	d.y = buf(d.y, batch*d.out)
	for s := 0; s < batch; s++ {
		xi := x[s*d.in : (s+1)*d.in]
		yi := d.y[s*d.out : (s+1)*d.out]
		for o := 0; o < d.out; o++ {
			row := d.w[o*d.in : (o+1)*d.in]
			var acc float32
			i := 0
			for ; i+4 <= d.in; i += 4 {
				acc += row[i]*xi[i] + row[i+1]*xi[i+1] + row[i+2]*xi[i+2] + row[i+3]*xi[i+3]
			}
			for ; i < d.in; i++ {
				acc += row[i] * xi[i]
			}
			if d.withBias {
				acc += d.b[o]
			}
			yi[o] = acc
		}
	}
	return d.y
}

func (d *Dense) Backward(dy []float32, batch int) []float32 {
	if batch != d.last {
		panic(fmt.Sprintf("nn: Dense %s backward batch %d != forward batch %d", d.name, batch, d.last))
	}
	d.dx = buf(d.dx, batch*d.in)
	for s := 0; s < batch; s++ {
		xi := d.x[s*d.in : (s+1)*d.in]
		dyi := dy[s*d.out : (s+1)*d.out]
		dxi := d.dx[s*d.in : (s+1)*d.in]
		for o := 0; o < d.out; o++ {
			g := dyi[o]
			if g == 0 {
				continue
			}
			row := d.w[o*d.in : (o+1)*d.in]
			grow := d.gw[o*d.in : (o+1)*d.in]
			for i := 0; i < d.in; i++ {
				dxi[i] += g * row[i]
				grow[i] += g * xi[i]
			}
			if d.withBias {
				d.gb[o] += g
			}
		}
	}
	return d.dx
}
