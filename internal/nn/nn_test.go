package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numGrad computes the finite-difference gradient of the mean CE loss
// with respect to the network parameters.
func numGrad(net *Network, x []float32, labels []int, batch int) []float32 {
	params := net.Params()
	out := make([]float32, len(params))
	const eps = 1e-3
	for i := range params {
		old := params[i]
		params[i] = old + eps
		lp := net.Loss(x, labels, batch)
		params[i] = old - eps
		lm := net.Loss(x, labels, batch)
		params[i] = old
		out[i] = float32((lp - lm) / (2 * eps))
	}
	return out
}

// checkGrads compares analytic and numeric gradients with a mixed
// absolute/relative tolerance.
func checkGrads(t *testing.T, net *Network, x []float32, labels []int, batch int, tol float64) {
	t.Helper()
	net.Gradient(x, labels, batch)
	analytic := append([]float32(nil), net.Grads()...)
	numeric := numGrad(net, x, labels, batch)
	worst, worstIdx := 0.0, -1
	for i := range analytic {
		diff := math.Abs(float64(analytic[i] - numeric[i]))
		scale := 1 + math.Abs(float64(numeric[i]))
		if rel := diff / scale; rel > worst {
			worst, worstIdx = rel, i
		}
	}
	if worst > tol {
		t.Fatalf("gradient check failed: worst rel err %.3g at param %d (analytic %v numeric %v)",
			worst, worstIdx, analytic[worstIdx], numeric[worstIdx])
	}
}

func randomBatch(rng *rand.Rand, batch, dim, classes int) ([]float32, []int) {
	x := make([]float32, batch*dim)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

func TestDenseGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense("fc", 7, 4))
	net.Init(rng)
	x, labels := randomBatch(rng, 5, 7, 4)
	checkGrads(t, net, x, labels, 5, 1e-2)
}

func TestDenseNoBiasGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(NewDenseNoBias("fc", 6, 3))
	net.Init(rng)
	x, labels := randomBatch(rng, 4, 6, 3)
	checkGrads(t, net, x, labels, 4, 1e-2)
}

func TestMLPGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(8, 16, 6, 3)
	net.Init(rng)
	x, labels := randomBatch(rng, 6, 8, 3)
	checkGrads(t, net, x, labels, 6, 1e-2)
}

func TestTanhSigmoidGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(
		NewDense("fc1", 5, 8),
		NewTanh("t", 8),
		NewDense("fc2", 8, 8),
		NewSigmoid("s", 8),
		NewDense("fc3", 8, 3),
	)
	net.Init(rng)
	x, labels := randomBatch(rng, 4, 5, 3)
	checkGrads(t, net, x, labels, 4, 1e-2)
}

func TestConvGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("conv", 2, 6, 6, 3, 3)
	net := NewNetwork(conv, NewReLU("r", conv.OutDim()), NewDense("fc", conv.OutDim(), 4))
	net.Init(rng)
	x, labels := randomBatch(rng, 3, 2*6*6, 4)
	checkGrads(t, net, x, labels, 3, 2e-2)
}

func TestMaxPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := NewConv2D("conv", 1, 8, 8, 2, 3)
	c, h, w := conv.OutShape()
	pool := NewMaxPool2("pool", c, h, w)
	net := NewNetwork(conv, pool, NewDense("fc", pool.OutDim(), 3))
	net.Init(rng)
	x, labels := randomBatch(rng, 3, 64, 3)
	checkGrads(t, net, x, labels, 3, 2e-2)
}

func TestLayerNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(
		NewDense("fc1", 6, 10),
		NewLayerNorm("ln", 10),
		NewReLU("r", 10),
		NewDense("fc2", 10, 4),
	)
	net.Init(rng)
	x, labels := randomBatch(rng, 5, 6, 4)
	checkGrads(t, net, x, labels, 5, 2e-2)
}

func TestResidualGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewResNetProxy(6, 3, 10, 2)
	net.Init(rng)
	x, labels := randomBatch(rng, 4, 6, 3)
	checkGrads(t, net, x, labels, 4, 2e-2)
}

func TestBERTProxyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewBERTProxy(6, 4, 8, 2)
	net.Init(rng)
	x, labels := randomBatch(rng, 4, 6, 4)
	checkGrads(t, net, x, labels, 4, 2e-2)
}

func TestLeNet5Shape(t *testing.T) {
	net := NewLeNet5(28, 28, 10)
	if net.InDim() != 784 || net.OutDim() != 10 {
		t.Fatalf("LeNet dims: in=%d out=%d", net.InDim(), net.OutDim())
	}
	// 28x28 -> conv5 -> 24 -> pool -> 12 -> conv5 -> 8 -> pool -> 4;
	// 16*4*4 = 256 into fc1.
	want := (6*25 + 6) + (16*6*25 + 16) + (256*120 + 120) + (120*84 + 84) + (84*10 + 10)
	if net.NumParams() != want {
		t.Fatalf("LeNet params = %d, want %d", net.NumParams(), want)
	}
	rng := rand.New(rand.NewSource(10))
	net.Init(rng)
	x, labels := randomBatch(rng, 2, 784, 10)
	loss := net.Gradient(x, labels, 2)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("LeNet loss = %v", loss)
	}
}

func TestLeNet5SmallGradient(t *testing.T) {
	// Full finite-difference on a 14x14 LeNet variant (few thousand
	// params) to validate the conv/pool/dense composition end to end.
	if testing.Short() {
		t.Skip("finite-difference over full LeNet is slow")
	}
	rng := rand.New(rand.NewSource(11))
	net := NewLeNet5(14, 14, 4)
	net.Init(rng)
	x, labels := randomBatch(rng, 2, 196, 4)
	checkGrads(t, net, x, labels, 2, 3e-2)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4, gradient = (p - 1{y})/b.
	logits := []float32{0, 0, 0, 0}
	loss, grad := SoftmaxCrossEntropy(logits, []int{2}, 1, 4)
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	for c, g := range grad {
		want := 0.25
		if c == 2 {
			want = -0.75
		}
		if math.Abs(float64(g)-want) > 1e-6 {
			t.Fatalf("grad[%d] = %v, want %v", c, g, want)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := []float32{1000, 0, -1000}
	loss, grad := SoftmaxCrossEntropy(logits, []int{0}, 1, 3)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestMSE(t *testing.T) {
	y := []float32{1, 2}
	target := []float32{0, 0}
	loss, grad := MSE(y, target, 1, 2)
	if math.Abs(loss-2.5) > 1e-6 { // 0.5*(1+4)
		t.Fatalf("MSE loss = %v, want 2.5", loss)
	}
	if grad[0] != 1 || grad[1] != 2 {
		t.Fatalf("MSE grad = %v", grad)
	}
}

func TestGradientAccumulation(t *testing.T) {
	// Two Backward calls without ZeroGrads must accumulate.
	rng := rand.New(rand.NewSource(12))
	net := NewMLP(4, 5, 3)
	net.Init(rng)
	x, labels := randomBatch(rng, 3, 4, 3)

	net.Gradient(x, labels, 3)
	once := append([]float32(nil), net.Grads()...)

	net.ZeroGrads()
	logits := net.Forward(x, 3)
	_, d := SoftmaxCrossEntropy(logits, labels, 3, 3)
	net.Backward(d, 3)
	logits = net.Forward(x, 3)
	_, d = SoftmaxCrossEntropy(logits, labels, 3, 3)
	net.Backward(d, 3)

	for i := range once {
		if math.Abs(float64(net.Grads()[i]-2*once[i])) > 1e-5 {
			t.Fatalf("accumulation broken at %d: %v vs 2*%v", i, net.Grads()[i], once[i])
		}
	}
}

func TestNetworkLayoutNamesResidualInners(t *testing.T) {
	net := NewResNetProxy(4, 2, 6, 1)
	layout := net.Layout()
	found := map[string]bool{}
	for i := 0; i < layout.NumLayers(); i++ {
		found[layout.Name(i)] = true
	}
	for _, want := range []string{"stem", "block0_fc1", "block0_fc2", "head"} {
		if !found[want] {
			t.Fatalf("layout missing %q; have %v", want, found)
		}
	}
	if layout.TotalSize() != net.NumParams() {
		t.Fatalf("layout covers %d of %d params", layout.TotalSize(), net.NumParams())
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(NewDense("a", 4, 5), NewDense("b", 6, 2))
}

func TestAccuracy(t *testing.T) {
	net := NewNetwork(NewDense("fc", 2, 2))
	// Identity-ish weights: W = I, b = 0.
	copy(net.Params(), []float32{1, 0, 0, 1, 0, 0})
	x := []float32{5, 0 /* -> class 0 */, 0, 5 /* -> class 1 */}
	if acc := net.Accuracy(x, []int{0, 1}, 2); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	if acc := net.Accuracy(x, []int{1, 0}, 2); acc != 0 {
		t.Fatalf("accuracy = %v, want 0", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A short plain-SGD loop on a separable problem must reduce the loss.
	rng := rand.New(rand.NewSource(13))
	net := NewMLP(4, 16, 2)
	net.Init(rng)
	x := make([]float32, 32*4)
	labels := make([]int, 32)
	for s := 0; s < 32; s++ {
		cls := s % 2
		labels[s] = cls
		for d := 0; d < 4; d++ {
			x[s*4+d] = float32(cls)*2 - 1 + (rng.Float32()-0.5)*0.2
		}
	}
	before := net.Loss(x, labels, 32)
	for it := 0; it < 50; it++ {
		net.Gradient(x, labels, 32)
		for i, g := range net.Grads() {
			net.Params()[i] -= 0.5 * g
		}
	}
	after := net.Loss(x, labels, 32)
	if after >= before/2 {
		t.Fatalf("loss did not drop: %v -> %v", before, after)
	}
}
