package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Network is a sequential stack of layers backed by a single flat
// parameter vector and a matching gradient vector, segmented per layer by
// a tensor.Layout. That layout is exactly what per-layer Adasum consumes.
type Network struct {
	layers []Layer
	params []float32
	grads  []float32
	layout tensor.Layout
}

// NewNetwork chains the layers, validates adjacent dimensions, allocates
// the flat parameter/gradient buffers and binds each layer's views.
// Zero-parameter layers (activations, pooling) do not appear in the
// layout.
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: empty network")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutDim() != layers[i].InDim() {
			panic(fmt.Sprintf("nn: dimension mismatch %s(out=%d) -> %s(in=%d)",
				layers[i-1].Name(), layers[i-1].OutDim(), layers[i].Name(), layers[i].InDim()))
		}
	}
	var bindable []Layer
	var names []string
	var sizes []int
	total := 0
	for _, l := range layers {
		for _, pl := range paramLayers(l) {
			if pl.ParamSize() > 0 {
				bindable = append(bindable, pl)
				names = append(names, pl.Name())
				sizes = append(sizes, pl.ParamSize())
				total += pl.ParamSize()
			}
		}
	}
	n := &Network{
		layers: layers,
		params: make([]float32, total),
		grads:  make([]float32, total),
		layout: tensor.NewLayout(names, sizes),
	}
	off := 0
	for _, pl := range bindable {
		sz := pl.ParamSize()
		pl.Bind(n.params[off:off+sz], n.grads[off:off+sz])
		off += sz
	}
	return n
}

// compositeLayer is implemented by layers (like Residual) whose
// parameters belong to inner layers; the network binds and names those
// inner layers individually so per-layer Adasum sees fine granularity.
type compositeLayer interface {
	ParamLayers() []Layer
}

func paramLayers(l Layer) []Layer {
	if c, ok := l.(compositeLayer); ok {
		var out []Layer
		for _, inner := range c.ParamLayers() {
			out = append(out, paramLayers(inner)...)
		}
		return out
	}
	return []Layer{l}
}

// Init initializes every layer's parameters from the rng.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.layers {
		l.Init(rng)
	}
}

// Params returns the flat parameter vector (live view; mutations apply).
func (n *Network) Params() []float32 { return n.params }

// Grads returns the flat gradient vector (live view).
func (n *Network) Grads() []float32 { return n.grads }

// Layout returns the per-layer segmentation of Params/Grads.
func (n *Network) Layout() tensor.Layout { return n.layout }

// NumParams returns the total parameter count.
func (n *Network) NumParams() int { return len(n.params) }

// InDim returns the per-sample input dimension.
func (n *Network) InDim() int { return n.layers[0].InDim() }

// OutDim returns the per-sample output dimension.
func (n *Network) OutDim() int { return n.layers[len(n.layers)-1].OutDim() }

// ZeroGrads clears the gradient buffer (gradients accumulate across
// Backward calls otherwise, which is how gradient accumulation works).
func (n *Network) ZeroGrads() { tensor.Zero(n.grads) }

// SetParams copies w into the parameter vector.
func (n *Network) SetParams(w []float32) {
	if len(w) != len(n.params) {
		panic("nn: SetParams size mismatch")
	}
	copy(n.params, w)
}

// Forward runs the batch through every layer and returns the final
// activations (a live buffer reused by subsequent calls).
func (n *Network) Forward(x []float32, batch int) []float32 {
	cur := x
	for _, l := range n.layers {
		cur = l.Forward(cur, batch)
	}
	return cur
}

// Backward propagates dLoss/dOutput through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(dy []float32, batch int) {
	cur := dy
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(cur, batch)
	}
}

// Gradient is a convenience wrapper: zero grads, forward, loss backward.
// It returns the mean cross-entropy loss over the batch. Labels are class
// indices. The gradient left in Grads() is the mean over the batch.
func (n *Network) Gradient(x []float32, labels []int, batch int) float64 {
	n.ZeroGrads()
	logits := n.Forward(x, batch)
	loss, dlogits := SoftmaxCrossEntropy(logits, labels, batch, n.OutDim())
	n.Backward(dlogits, batch)
	return loss
}

// Loss computes the mean cross-entropy without touching gradients.
func (n *Network) Loss(x []float32, labels []int, batch int) float64 {
	logits := n.Forward(x, batch)
	loss, _ := softmaxCE(logits, labels, batch, n.OutDim(), false)
	return loss
}

// Accuracy returns the fraction of samples whose argmax logit matches the
// label.
func (n *Network) Accuracy(x []float32, labels []int, batch int) float64 {
	logits := n.Forward(x, batch)
	correct := 0
	classes := n.OutDim()
	for s := 0; s < batch; s++ {
		row := logits[s*classes : (s+1)*classes]
		best := 0
		for c := 1; c < classes; c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		if best == labels[s] {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}
