package nn

import (
	"fmt"
	"math/rand"
)

// Conv2D is a valid (no padding), stride-1 2D convolution over
// channel-major images: input is [C][H][W] flattened per sample, output
// is [outC][H-k+1][W-k+1]. Parameters are the kernel
// [outC][inC][k][k] followed by the per-output-channel bias [outC].
// Naive loops; the models in this reproduction are small enough.
type Conv2D struct {
	name      string
	inC, h, w int
	outC, k   int
	oh, ow    int

	kern, bias []float32
	gk, gb     []float32

	x    []float32
	y    []float32
	dx   []float32
	last int
}

// NewConv2D creates a stride-1 valid convolution layer.
func NewConv2D(name string, inC, h, w, outC, k int) *Conv2D {
	if k > h || k > w {
		panic(fmt.Sprintf("nn: Conv2D %s kernel %d larger than input %dx%d", name, k, h, w))
	}
	return &Conv2D{
		name: name, inC: inC, h: h, w: w, outC: outC, k: k,
		oh: h - k + 1, ow: w - k + 1,
	}
}

func (c *Conv2D) Name() string { return c.name }
func (c *Conv2D) InDim() int   { return c.inC * c.h * c.w }
func (c *Conv2D) OutDim() int  { return c.outC * c.oh * c.ow }

// OutShape returns the (channels, height, width) of the output feature
// map, for chaining into pooling layers.
func (c *Conv2D) OutShape() (ch, h, w int) { return c.outC, c.oh, c.ow }

func (c *Conv2D) ParamSize() int { return c.outC*c.inC*c.k*c.k + c.outC }

func (c *Conv2D) Bind(params, grads []float32) {
	nk := c.outC * c.inC * c.k * c.k
	c.kern = params[:nk]
	c.bias = params[nk:]
	c.gk = grads[:nk]
	c.gb = grads[nk:]
}

func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := c.inC * c.k * c.k
	fanOut := c.outC * c.k * c.k
	glorotInit(rng, c.kern, fanIn, fanOut)
	for i := range c.bias {
		c.bias[i] = 0
	}
}

// kidx indexes the kernel weight for (outChannel, inChannel, ky, kx).
func (c *Conv2D) kidx(oc, ic, ky, kx int) int {
	return ((oc*c.inC+ic)*c.k+ky)*c.k + kx
}

func (c *Conv2D) Forward(x []float32, batch int) []float32 {
	if len(x) != batch*c.InDim() {
		panic(fmt.Sprintf("nn: Conv2D %s forward size mismatch", c.name))
	}
	c.x = x
	c.last = batch
	c.y = buf(c.y, batch*c.OutDim())
	inPlane := c.h * c.w
	outPlane := c.oh * c.ow
	for s := 0; s < batch; s++ {
		xin := x[s*c.InDim() : (s+1)*c.InDim()]
		yout := c.y[s*c.OutDim() : (s+1)*c.OutDim()]
		for oc := 0; oc < c.outC; oc++ {
			bo := c.bias[oc]
			for oy := 0; oy < c.oh; oy++ {
				for ox := 0; ox < c.ow; ox++ {
					acc := bo
					for ic := 0; ic < c.inC; ic++ {
						plane := xin[ic*inPlane:]
						for ky := 0; ky < c.k; ky++ {
							rowIn := plane[(oy+ky)*c.w+ox:]
							rowK := c.kern[c.kidx(oc, ic, ky, 0):]
							for kx := 0; kx < c.k; kx++ {
								acc += rowK[kx] * rowIn[kx]
							}
						}
					}
					yout[oc*outPlane+oy*c.ow+ox] = acc
				}
			}
		}
	}
	return c.y
}

func (c *Conv2D) Backward(dy []float32, batch int) []float32 {
	if batch != c.last {
		panic(fmt.Sprintf("nn: Conv2D %s backward batch mismatch", c.name))
	}
	c.dx = buf(c.dx, batch*c.InDim())
	inPlane := c.h * c.w
	outPlane := c.oh * c.ow
	for s := 0; s < batch; s++ {
		xin := c.x[s*c.InDim() : (s+1)*c.InDim()]
		din := c.dx[s*c.InDim() : (s+1)*c.InDim()]
		dout := dy[s*c.OutDim() : (s+1)*c.OutDim()]
		for oc := 0; oc < c.outC; oc++ {
			for oy := 0; oy < c.oh; oy++ {
				for ox := 0; ox < c.ow; ox++ {
					g := dout[oc*outPlane+oy*c.ow+ox]
					if g == 0 {
						continue
					}
					c.gb[oc] += g
					for ic := 0; ic < c.inC; ic++ {
						plane := xin[ic*inPlane:]
						dplane := din[ic*inPlane:]
						for ky := 0; ky < c.k; ky++ {
							rowIn := plane[(oy+ky)*c.w+ox:]
							dRowIn := dplane[(oy+ky)*c.w+ox:]
							kbase := c.kidx(oc, ic, ky, 0)
							for kx := 0; kx < c.k; kx++ {
								c.gk[kbase+kx] += g * rowIn[kx]
								dRowIn[kx] += g * c.kern[kbase+kx]
							}
						}
					}
				}
			}
		}
	}
	return c.dx
}

// MaxPool2 is a 2x2, stride-2 max pooling over channel-major feature
// maps. Odd trailing rows/columns are dropped (floor semantics).
type MaxPool2 struct {
	name    string
	c, h, w int
	oh, ow  int

	argmax []int32
	y      []float32
	dx     []float32
	last   int
}

// NewMaxPool2 creates a 2x2/stride-2 max-pooling layer.
func NewMaxPool2(name string, c, h, w int) *MaxPool2 {
	return &MaxPool2{name: name, c: c, h: h, w: w, oh: h / 2, ow: w / 2}
}

func (m *MaxPool2) Name() string { return m.name }
func (m *MaxPool2) InDim() int   { return m.c * m.h * m.w }
func (m *MaxPool2) OutDim() int  { return m.c * m.oh * m.ow }

// OutShape returns the (channels, height, width) of the pooled map.
func (m *MaxPool2) OutShape() (ch, h, w int) { return m.c, m.oh, m.ow }

func (m *MaxPool2) ParamSize() int      { return 0 }
func (m *MaxPool2) Bind(_, _ []float32) {}
func (m *MaxPool2) Init(_ *rand.Rand)   {}

func (m *MaxPool2) Forward(x []float32, batch int) []float32 {
	m.last = batch
	m.y = buf(m.y, batch*m.OutDim())
	if cap(m.argmax) < batch*m.OutDim() {
		m.argmax = make([]int32, batch*m.OutDim())
	}
	m.argmax = m.argmax[:batch*m.OutDim()]
	inPlane := m.h * m.w
	outPlane := m.oh * m.ow
	for s := 0; s < batch; s++ {
		xin := x[s*m.InDim() : (s+1)*m.InDim()]
		for c := 0; c < m.c; c++ {
			plane := xin[c*inPlane:]
			for oy := 0; oy < m.oh; oy++ {
				for ox := 0; ox < m.ow; ox++ {
					base := (2*oy)*m.w + 2*ox
					bi := base
					bv := plane[base]
					for _, off := range [3]int{1, m.w, m.w + 1} {
						if v := plane[base+off]; v > bv {
							bv = v
							bi = base + off
						}
					}
					oidx := s*m.OutDim() + c*outPlane + oy*m.ow + ox
					m.y[oidx] = bv
					m.argmax[oidx] = int32(s*m.InDim() + c*inPlane + bi)
				}
			}
		}
	}
	return m.y
}

func (m *MaxPool2) Backward(dy []float32, batch int) []float32 {
	m.dx = buf(m.dx, batch*m.InDim())
	for i, g := range dy {
		m.dx[m.argmax[i]] += g
	}
	return m.dx
}
