package nn

import "fmt"

// NewMLP builds a ReLU multilayer perceptron with the given per-layer
// widths (dims[0] is the input dimension, dims[len-1] the logit count).
func NewMLP(dims ...int) *Network {
	if len(dims) < 2 {
		panic("nn: NewMLP needs at least input and output dims")
	}
	var layers []Layer
	for i := 1; i < len(dims); i++ {
		layers = append(layers, NewDense(fmt.Sprintf("fc%d", i), dims[i-1], dims[i]))
		if i < len(dims)-1 {
			layers = append(layers, NewReLU(fmt.Sprintf("relu%d", i), dims[i]))
		}
	}
	return NewNetwork(layers...)
}

// NewLeNet5 builds the LeNet-5-shaped CNN of the paper's §5.4 case study
// for h×w single-channel images and the given class count: two
// conv+pool stages followed by three dense layers (120/84/classes),
// with tanh activations as in the original network. For inputs smaller
// than the original 28×28 the second stage shrinks its kernel (and
// skips its pool when the map is already 1×1) so the spatial dimensions
// never collapse to zero.
func NewLeNet5(h, w, classes int) *Network {
	conv1 := NewConv2D("conv1", 1, h, w, 6, 5)
	c1, h1, w1 := conv1.OutShape()
	act1 := NewTanh("tanh1", conv1.OutDim())
	pool1 := NewMaxPool2("pool1", c1, h1, w1)
	c1p, h1p, w1p := pool1.OutShape()

	k2 := 5
	if h1p < 6 || w1p < 6 {
		k2 = 3
	}
	if k2 > h1p || k2 > w1p {
		k2 = minInt2(h1p, w1p)
	}
	conv2 := NewConv2D("conv2", c1p, h1p, w1p, 16, k2)
	c2, h2, w2 := conv2.OutShape()
	act2 := NewTanh("tanh2", conv2.OutDim())

	layers := []Layer{conv1, act1, pool1, conv2, act2}
	flat := conv2.OutDim()
	if h2 >= 2 && w2 >= 2 {
		pool2 := NewMaxPool2("pool2", c2, h2, w2)
		layers = append(layers, pool2)
		flat = pool2.OutDim()
	}
	if flat == 0 {
		panic("nn: LeNet5 spatial dimensions collapsed; input too small")
	}
	layers = append(layers,
		NewDense("fc1", flat, 120), NewTanh("tanh3", 120),
		NewDense("fc2", 120, 84), NewTanh("tanh4", 84),
		NewDense("fc3", 84, classes),
	)
	return NewNetwork(layers...)
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NewResNetProxy builds the residual MLP classifier standing in for
// ResNet-50 in the convergence experiments (see DESIGN.md's substitution
// table): an input projection, `blocks` two-layer residual blocks of the
// given width, and a classifier head. Like ResNet, gradients flow through
// identity skips and the model has many named layers for per-layer
// Adasum.
func NewResNetProxy(inDim, classes, width, blocks int) *Network {
	layers := []Layer{
		NewDense("stem", inDim, width),
		NewReLU("stem_relu", width),
	}
	for b := 0; b < blocks; b++ {
		layers = append(layers, NewResidual(fmt.Sprintf("block%d", b),
			NewDense(fmt.Sprintf("block%d_fc1", b), width, width),
			NewReLU(fmt.Sprintf("block%d_relu", b), width),
			NewDense(fmt.Sprintf("block%d_fc2", b), width, width),
		))
		layers = append(layers, NewReLU(fmt.Sprintf("post%d_relu", b), width))
	}
	layers = append(layers, NewDense("head", width, classes))
	return NewNetwork(layers...)
}

// NewBERTProxy builds the deep LayerNorm MLP standing in for BERT-Large
// in the convergence experiments: `depth` blocks of
// Dense→ReLU→Dense→LayerNorm with residual skips, which gives LAMB its
// characteristic per-layer trust-ratio behaviour, plus a classification
// head over the masked-feature task.
func NewBERTProxy(inDim, classes, width, depth int) *Network {
	layers := []Layer{
		NewDense("embed", inDim, width),
	}
	for b := 0; b < depth; b++ {
		layers = append(layers, NewResidual(fmt.Sprintf("enc%d", b),
			NewDense(fmt.Sprintf("enc%d_ff1", b), width, width),
			NewReLU(fmt.Sprintf("enc%d_relu", b), width),
			NewDense(fmt.Sprintf("enc%d_ff2", b), width, width),
		))
		layers = append(layers, NewLayerNorm(fmt.Sprintf("enc%d_ln", b), width))
	}
	layers = append(layers, NewDense("head", width, classes))
	return NewNetwork(layers...)
}

// NewSoftmaxRegression builds the single-layer log-linear classifier used
// by the exact-Hessian sequential-emulation experiment (Figure 2); the
// analytic Hessian of this model lives in internal/hessian.
func NewSoftmaxRegression(inDim, classes int) *Network {
	return NewNetwork(NewDense("linear", inDim, classes))
}
