// Package nn is the minimal neural-network framework the reproduction
// trains with: dense, convolution, pooling, normalization and activation
// layers with hand-written backpropagation, flat per-layer parameter and
// gradient buffers (so Adasum can be applied per layer, §3.6 of the
// paper), and the model zoo used by the experiments — a LeNet-5-shaped
// CNN, plain MLPs, a residual "ResNet proxy" and a LayerNorm-heavy
// "BERT proxy".
//
// Everything operates on flat []float32 batches: a batch of b samples
// with per-sample dimension d is a slice of length b*d in row-major
// order. Layers cache what they need for the backward pass, so a network
// instance is not safe for concurrent use; data-parallel workers each own
// a replica.
package nn

import (
	"math"
	"math/rand"
)

// Layer is one differentiable module. Parameters live in slices bound by
// the owning Network so the whole model is a single flat vector.
type Layer interface {
	// Name identifies the layer in the tensor.Layout (and therefore in
	// per-layer Adasum and the Figure 1 orthogonality traces).
	Name() string
	// InDim and OutDim are per-sample sizes.
	InDim() int
	OutDim() int
	// ParamSize is the number of parameters (0 for activations).
	ParamSize() int
	// Bind hands the layer its parameter and gradient slices, both of
	// length ParamSize.
	Bind(params, grads []float32)
	// Init writes initial parameter values.
	Init(rng *rand.Rand)
	// Forward computes the batch output; the layer may retain x until the
	// matching Backward call.
	Forward(x []float32, batch int) []float32
	// Backward consumes dL/dy, accumulates parameter gradients into the
	// bound grad slice, and returns dL/dx.
	Backward(dy []float32, batch int) []float32
}

// buf grows-or-reuses a scratch slice, zeroing it.
func buf(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// glorotInit fills w with Glorot/Xavier-uniform values for a fanIn×fanOut
// transform.
func glorotInit(rng *rand.Rand, w []float32, fanIn, fanOut int) {
	l := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * l
	}
}
