package nn

import "math"

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels, and the gradient dLoss/dLogits (softmax(p) -
// onehot, scaled by 1/batch so the resulting parameter gradient is the
// batch mean). The returned gradient buffer is freshly allocated.
func SoftmaxCrossEntropy(logits []float32, labels []int, batch, classes int) (float64, []float32) {
	return softmaxCE(logits, labels, batch, classes, true)
}

func softmaxCE(logits []float32, labels []int, batch, classes int, wantGrad bool) (float64, []float32) {
	if len(logits) != batch*classes || len(labels) != batch {
		panic("nn: SoftmaxCrossEntropy size mismatch")
	}
	var grad []float32
	if wantGrad {
		grad = make([]float32, batch*classes)
	}
	var total float64
	inv := 1 / float64(batch)
	for s := 0; s < batch; s++ {
		row := logits[s*classes : (s+1)*classes]
		// Stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		lbl := labels[s]
		logp := float64(row[lbl]-maxv) - math.Log(sum)
		total -= logp
		if wantGrad {
			g := grad[s*classes : (s+1)*classes]
			for c := 0; c < classes; c++ {
				p := math.Exp(float64(row[c]-maxv)) / sum
				g[c] = float32(p * inv)
			}
			g[lbl] -= float32(inv)
		}
	}
	return total * inv, grad
}

// MSE computes the mean squared error 0.5*mean(‖y-target‖²) and its
// gradient dLoss/dY = (y-target)/batch.
func MSE(y, target []float32, batch, dim int) (float64, []float32) {
	if len(y) != batch*dim || len(target) != batch*dim {
		panic("nn: MSE size mismatch")
	}
	grad := make([]float32, len(y))
	var total float64
	inv := 1 / float64(batch)
	for i := range y {
		d := float64(y[i]) - float64(target[i])
		total += 0.5 * d * d
		grad[i] = float32(d * inv)
	}
	return total * inv, grad
}
