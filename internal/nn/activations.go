package nn

import (
	"math"
	"math/rand"
)

// ReLU is the rectified linear activation, max(0, x).
type ReLU struct {
	name string
	dim  int
	x    []float32
	y    []float32
	dx   []float32
}

// NewReLU creates a ReLU over per-sample dimension dim.
func NewReLU(name string, dim int) *ReLU { return &ReLU{name: name, dim: dim} }

func (r *ReLU) Name() string        { return r.name }
func (r *ReLU) InDim() int          { return r.dim }
func (r *ReLU) OutDim() int         { return r.dim }
func (r *ReLU) ParamSize() int      { return 0 }
func (r *ReLU) Bind(_, _ []float32) {}
func (r *ReLU) Init(_ *rand.Rand)   {}

func (r *ReLU) Forward(x []float32, batch int) []float32 {
	r.x = x
	r.y = buf(r.y, len(x))
	for i, v := range x {
		if v > 0 {
			r.y[i] = v
		}
	}
	return r.y
}

func (r *ReLU) Backward(dy []float32, batch int) []float32 {
	r.dx = buf(r.dx, len(dy))
	for i, v := range r.x {
		if v > 0 {
			r.dx[i] = dy[i]
		}
	}
	return r.dx
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	name string
	dim  int
	y    []float32
	dx   []float32
}

// NewTanh creates a Tanh over per-sample dimension dim.
func NewTanh(name string, dim int) *Tanh { return &Tanh{name: name, dim: dim} }

func (t *Tanh) Name() string        { return t.name }
func (t *Tanh) InDim() int          { return t.dim }
func (t *Tanh) OutDim() int         { return t.dim }
func (t *Tanh) ParamSize() int      { return 0 }
func (t *Tanh) Bind(_, _ []float32) {}
func (t *Tanh) Init(_ *rand.Rand)   {}

func (t *Tanh) Forward(x []float32, batch int) []float32 {
	t.y = buf(t.y, len(x))
	for i, v := range x {
		t.y[i] = float32(math.Tanh(float64(v)))
	}
	return t.y
}

func (t *Tanh) Backward(dy []float32, batch int) []float32 {
	t.dx = buf(t.dx, len(dy))
	for i, y := range t.y {
		t.dx[i] = dy[i] * (1 - y*y)
	}
	return t.dx
}

// Sigmoid is the logistic activation.
type Sigmoid struct {
	name string
	dim  int
	y    []float32
	dx   []float32
}

// NewSigmoid creates a Sigmoid over per-sample dimension dim.
func NewSigmoid(name string, dim int) *Sigmoid { return &Sigmoid{name: name, dim: dim} }

func (s *Sigmoid) Name() string        { return s.name }
func (s *Sigmoid) InDim() int          { return s.dim }
func (s *Sigmoid) OutDim() int         { return s.dim }
func (s *Sigmoid) ParamSize() int      { return 0 }
func (s *Sigmoid) Bind(_, _ []float32) {}
func (s *Sigmoid) Init(_ *rand.Rand)   {}

func (s *Sigmoid) Forward(x []float32, batch int) []float32 {
	s.y = buf(s.y, len(x))
	for i, v := range x {
		s.y[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return s.y
}

func (s *Sigmoid) Backward(dy []float32, batch int) []float32 {
	s.dx = buf(s.dx, len(dy))
	for i, y := range s.y {
		s.dx[i] = dy[i] * y * (1 - y)
	}
	return s.dx
}

// LayerNorm normalizes each sample to zero mean and unit variance, then
// applies a learned affine transform: y = gamma*(x-mu)/sigma + beta.
// Parameters are [gamma(dim), beta(dim)].
type LayerNorm struct {
	name string
	dim  int
	eps  float32

	gamma, beta []float32
	gg, gb      []float32

	x     []float32
	xhat  []float32
	y     []float32
	dx    []float32
	mu    []float32
	sigma []float32
}

// NewLayerNorm creates a LayerNorm over per-sample dimension dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{name: name, dim: dim, eps: 1e-5}
}

func (l *LayerNorm) Name() string   { return l.name }
func (l *LayerNorm) InDim() int     { return l.dim }
func (l *LayerNorm) OutDim() int    { return l.dim }
func (l *LayerNorm) ParamSize() int { return 2 * l.dim }

func (l *LayerNorm) Bind(params, grads []float32) {
	l.gamma = params[:l.dim]
	l.beta = params[l.dim:]
	l.gg = grads[:l.dim]
	l.gb = grads[l.dim:]
}

func (l *LayerNorm) Init(_ *rand.Rand) {
	for i := range l.gamma {
		l.gamma[i] = 1
		l.beta[i] = 0
	}
}

func (l *LayerNorm) Forward(x []float32, batch int) []float32 {
	l.x = x
	l.y = buf(l.y, len(x))
	l.xhat = buf(l.xhat, len(x))
	l.mu = buf(l.mu, batch)
	l.sigma = buf(l.sigma, batch)
	d := l.dim
	for s := 0; s < batch; s++ {
		xi := x[s*d : (s+1)*d]
		var mean float64
		for _, v := range xi {
			mean += float64(v)
		}
		mean /= float64(d)
		var vr float64
		for _, v := range xi {
			dv := float64(v) - mean
			vr += dv * dv
		}
		vr /= float64(d)
		sigma := float32(math.Sqrt(vr + float64(l.eps)))
		l.mu[s] = float32(mean)
		l.sigma[s] = sigma
		for i, v := range xi {
			xh := (v - float32(mean)) / sigma
			l.xhat[s*d+i] = xh
			l.y[s*d+i] = l.gamma[i]*xh + l.beta[i]
		}
	}
	return l.y
}

func (l *LayerNorm) Backward(dy []float32, batch int) []float32 {
	l.dx = buf(l.dx, len(dy))
	d := l.dim
	for s := 0; s < batch; s++ {
		dyi := dy[s*d : (s+1)*d]
		xh := l.xhat[s*d : (s+1)*d]
		sigma := l.sigma[s]
		// dL/dxhat and the two reduction terms of the layernorm backward.
		var sumDxhat, sumDxhatXhat float64
		for i := 0; i < d; i++ {
			dxhat := dyi[i] * l.gamma[i]
			sumDxhat += float64(dxhat)
			sumDxhatXhat += float64(dxhat) * float64(xh[i])
			l.gg[i] += dyi[i] * xh[i]
			l.gb[i] += dyi[i]
		}
		inv := 1 / (float32(d) * sigma)
		for i := 0; i < d; i++ {
			dxhat := dyi[i] * l.gamma[i]
			l.dx[s*d+i] = inv * (float32(d)*dxhat - float32(sumDxhat) - xh[i]*float32(sumDxhatXhat))
		}
	}
	return l.dx
}
