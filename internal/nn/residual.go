package nn

import (
	"fmt"
	"math/rand"
)

// Residual wraps an inner layer stack with an identity skip connection:
// y = x + f(x). The inner stack must preserve dimension. Parameters of
// the inner layers appear individually in the network layout (so
// per-layer Adasum still sees them as separate layers).
type Residual struct {
	name  string
	inner []Layer
	y     []float32
	dx    []float32
}

// NewResidual builds a residual block around the inner layers.
func NewResidual(name string, inner ...Layer) *Residual {
	if len(inner) == 0 {
		panic("nn: empty residual block")
	}
	for i := 1; i < len(inner); i++ {
		if inner[i-1].OutDim() != inner[i].InDim() {
			panic(fmt.Sprintf("nn: residual %s inner dimension mismatch at %d", name, i))
		}
	}
	if inner[0].InDim() != inner[len(inner)-1].OutDim() {
		panic(fmt.Sprintf("nn: residual %s must preserve dimension (%d != %d)",
			name, inner[0].InDim(), inner[len(inner)-1].OutDim()))
	}
	return &Residual{name: name, inner: inner}
}

func (r *Residual) Name() string { return r.name }
func (r *Residual) InDim() int   { return r.inner[0].InDim() }
func (r *Residual) OutDim() int  { return r.inner[0].InDim() }

func (r *Residual) ParamSize() int {
	total := 0
	for _, l := range r.inner {
		total += l.ParamSize()
	}
	return total
}

// ParamLayers exposes the inner layers so the Network can bind and name
// them individually.
func (r *Residual) ParamLayers() []Layer { return r.inner }

// Bind is unused: the Network binds the inner layers directly.
func (r *Residual) Bind(_, _ []float32) {}

func (r *Residual) Init(rng *rand.Rand) {
	for _, l := range r.inner {
		l.Init(rng)
	}
}

func (r *Residual) Forward(x []float32, batch int) []float32 {
	cur := x
	for _, l := range r.inner {
		cur = l.Forward(cur, batch)
	}
	r.y = buf(r.y, len(x))
	for i := range r.y {
		r.y[i] = cur[i] + x[i]
	}
	return r.y
}

func (r *Residual) Backward(dy []float32, batch int) []float32 {
	cur := dy
	for i := len(r.inner) - 1; i >= 0; i-- {
		cur = r.inner[i].Backward(cur, batch)
	}
	r.dx = buf(r.dx, len(dy))
	for i := range r.dx {
		r.dx[i] = cur[i] + dy[i] // inner path + identity skip
	}
	return r.dx
}
