package data

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 50, Dim: 8, Classes: 4, Noise: 0.5, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("feature generation not deterministic")
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("label generation not deterministic")
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	a := Generate(Config{N: 10, Dim: 4, Classes: 2, Noise: 0.5, Seed: 1})
	b := Generate(Config{N: 10, Dim: 4, Classes: 2, Noise: 0.5, Seed: 2})
	same := true
	for i := range a.X {
		if a.X[i] != b.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLabelsInRange(t *testing.T) {
	d := Generate(Config{N: 100, Dim: 4, Classes: 7, Noise: 1, LabelNoise: 0.5, Seed: 3})
	for _, l := range d.Labels {
		if l < 0 || l >= 7 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestClassBalance(t *testing.T) {
	d := Generate(Config{N: 1000, Dim: 4, Classes: 10, Noise: 0.1, Seed: 4})
	counts := make([]int, 10)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n < 80 || n > 120 {
			t.Fatalf("class %d count %d far from balanced 100", c, n)
		}
	}
}

func TestGeneratePairSharesPrototypes(t *testing.T) {
	// A linear classifier trained on train must transfer to test: cheap
	// proxy check is that per-class feature means correlate across
	// splits.
	train, test := GeneratePair(Config{N: 2000, Dim: 16, Classes: 4, Noise: 0.5, Seed: 5}, 2000)
	trainMeans := classMeans(train)
	testMeans := classMeans(test)
	for c := 0; c < 4; c++ {
		var dot, na, nb float64
		for i := 0; i < 16; i++ {
			dot += float64(trainMeans[c][i] * testMeans[c][i])
			na += float64(trainMeans[c][i] * trainMeans[c][i])
			nb += float64(testMeans[c][i] * testMeans[c][i])
		}
		corr := dot / (sqrt(na)*sqrt(nb) + 1e-12)
		if corr < 0.9 {
			t.Fatalf("class %d prototype correlation %v < 0.9 across splits", c, corr)
		}
	}
}

func sqrt(x float64) float64 {
	z := x
	if z <= 0 {
		return 0
	}
	for i := 0; i < 30; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

func classMeans(d *Dataset) [][]float32 {
	means := make([][]float32, d.Classes)
	counts := make([]int, d.Classes)
	for c := range means {
		means[c] = make([]float32, d.Dim)
	}
	for i := 0; i < d.N; i++ {
		x, l := d.Sample(i)
		counts[l]++
		for j, v := range x {
			means[l][j] += v
		}
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for j := range means[c] {
			means[c][j] /= float32(counts[c])
		}
	}
	return means
}

// TestShardPartition is the shard-balance property: for any (N, size),
// shard sizes differ by at most one, shards are contiguous, and their
// union covers the dataset exactly once. The N=1000, size=64 case is the
// skew the old scheme exhibited (last worker got 55 samples against
// everyone else's 15).
func TestShardPartition(t *testing.T) {
	for _, tc := range []struct{ n, size int }{
		{103, 4}, {1000, 64}, {64, 64}, {65, 64}, {7, 3}, {512, 1}, {100, 100},
	} {
		d := Generate(Config{N: tc.n, Dim: 2, Classes: 3, Noise: 0.1, Seed: 6})
		total := 0
		minN, maxN := tc.n, 0
		cursor := 0
		for r := 0; r < tc.size; r++ {
			s := d.Shard(r, tc.size)
			total += s.N
			if s.N < minN {
				minN = s.N
			}
			if s.N > maxN {
				maxN = s.N
			}
			// Contiguity: each shard must view the parent's storage
			// starting exactly where the previous shard ended.
			if s.N > 0 {
				if &s.X[0] != &d.X[cursor*d.Dim] {
					t.Fatalf("N=%d size=%d: shard %d does not start at sample %d", tc.n, tc.size, r, cursor)
				}
			}
			cursor += s.N
		}
		if total != tc.n {
			t.Fatalf("N=%d size=%d: shards cover %d samples", tc.n, tc.size, total)
		}
		if maxN-minN > 1 {
			t.Fatalf("N=%d size=%d: shard sizes range [%d, %d], want spread <= 1", tc.n, tc.size, minN, maxN)
		}
	}
}

func TestShardViewsParent(t *testing.T) {
	d := Generate(Config{N: 10, Dim: 2, Classes: 2, Noise: 0.1, Seed: 8})
	s := d.Shard(1, 2)
	s.X[0] = 42
	if d.X[5*2] != 42 {
		t.Fatal("shard is not a view of parent storage")
	}
}

func TestBatchGathers(t *testing.T) {
	d := Generate(Config{N: 10, Dim: 3, Classes: 2, Noise: 0.1, Seed: 9})
	x, labels := d.Batch([]int{2, 7})
	if len(x) != 6 || len(labels) != 2 {
		t.Fatalf("batch sizes: %d features, %d labels", len(x), len(labels))
	}
	want, wl := d.Sample(7)
	for i := range want {
		if x[3+i] != want[i] {
			t.Fatal("batch content mismatch")
		}
	}
	if labels[1] != wl {
		t.Fatal("batch label mismatch")
	}
}

func TestIteratorCoversEpoch(t *testing.T) {
	it := NewIterator(10, 3, 1)
	seen := map[int]int{}
	batches := 0
	for seen2 := 0; seen2 < 10; {
		b := it.Next()
		batches++
		for _, i := range b {
			seen[i]++
			seen2++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("epoch covered %d of 10 samples", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d seen %d times in one epoch", i, n)
		}
	}
	if batches != 4 { // 3+3+3+1
		t.Fatalf("epoch took %d batches, want 4", batches)
	}
}

func TestIteratorReshuffles(t *testing.T) {
	it := NewIterator(32, 32, 2)
	e1 := append([]int(nil), it.Next()...)
	e2 := append([]int(nil), it.Next()...)
	same := true
	for i := range e1 {
		if e1[i] != e2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("second epoch used identical order")
	}
}

func TestMaskedLMZerosFeatures(t *testing.T) {
	train, _ := SyntheticMaskedLM(1, 200, 10, 0.5)
	zeros := 0
	for _, v := range train.X {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(train.X))
	if frac < 0.3 || frac > 0.6 {
		t.Fatalf("mask fraction %v far from requested 0.5 (with collisions)", frac)
	}
}

func TestPresetsShapes(t *testing.T) {
	tr, te := SyntheticMNIST(1, 100, 50)
	if tr.Dim != 196 || tr.Classes != 10 || te.N != 50 {
		t.Fatalf("MNIST preset: dim=%d classes=%d testN=%d", tr.Dim, tr.Classes, te.N)
	}
	tr, _ = SyntheticImageNet(1, 64, 32)
	if tr.Dim != 128 || tr.Classes != 16 {
		t.Fatalf("ImageNet preset: dim=%d classes=%d", tr.Dim, tr.Classes)
	}
}

// TestIteratorRestoreReplaysExactly pins the checkpoint property the
// trainer relies on: an iterator restored to (reshuffles, cursor)
// yields exactly the batch sequence the original iterator yields from
// that point, across epoch boundaries.
func TestIteratorRestoreReplaysExactly(t *testing.T) {
	a := NewIterator(37, 5, 99)
	// Walk into the second epoch.
	for i := 0; i < 11; i++ {
		a.Next()
	}
	resh, cur := a.State()
	if resh < 2 {
		t.Fatalf("expected to be past the first reshuffle, got %d", resh)
	}

	b := NewIterator(37, 5, 99)
	b.Restore(resh, cur)
	for i := 0; i < 20; i++ {
		x, y := a.Next(), b.Next()
		if len(x) != len(y) {
			t.Fatalf("batch %d length diverged: %d != %d", i, len(x), len(y))
		}
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("batch %d diverged at %d", i, j)
			}
		}
	}
}
