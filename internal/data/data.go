// Package data provides the deterministic synthetic datasets that stand
// in for MNIST, ImageNet and the BERT pretraining corpus (none of which
// are available to this offline reproduction — see DESIGN.md's
// substitution table). Every dataset is a prototype-plus-noise
// classification task: each class has a fixed random prototype vector and
// samples are noisy observations of it, optionally with label noise and
// feature masking. The three presets differ in dimensionality, class
// count and noise level, calibrated so their training dynamics match the
// role the real dataset plays in the paper's experiments (MNIST: high
// achievable accuracy; ImageNet proxy: long convergence to a ~75% target;
// masked-feature proxy: a two-phase curriculum).
package data

import (
	"fmt"
	"math/rand"
)

// Dataset is an in-memory labelled dataset with flat row-major features.
type Dataset struct {
	X       []float32 // N*Dim features
	Labels  []int     // N class indices
	N       int
	Dim     int
	Classes int
}

// Sample returns the i-th feature row and label. The row is a live view.
func (d *Dataset) Sample(i int) ([]float32, int) {
	return d.X[i*d.Dim : (i+1)*d.Dim], d.Labels[i]
}

// Batch gathers the given sample indices into freshly allocated buffers.
func (d *Dataset) Batch(indices []int) ([]float32, []int) {
	x := make([]float32, len(indices)*d.Dim)
	labels := make([]int, len(indices))
	for j, i := range indices {
		copy(x[j*d.Dim:(j+1)*d.Dim], d.X[i*d.Dim:(i+1)*d.Dim])
		labels[j] = d.Labels[i]
	}
	return x, labels
}

// Shard returns the contiguous 1/size slice of the dataset assigned to
// rank, the way Horovod users partition data across workers (§4.1: "the
// user is responsible for partitioning data across nodes"). The N % size
// leftover samples are spread one each over the first N % size ranks, so
// shard sizes differ by at most one (piling the whole remainder onto the
// last rank would skew its per-epoch step count — at N=1000, size=64
// the old scheme gave the last worker 55 samples against everyone
// else's 15). The returned dataset views the parent's storage.
func (d *Dataset) Shard(rank, size int) *Dataset {
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("data: shard rank %d out of range [0,%d)", rank, size))
	}
	per := d.N / size
	rem := d.N % size
	lo := rank*per + min(rank, rem)
	hi := lo + per
	if rank < rem {
		hi++
	}
	return &Dataset{
		X:       d.X[lo*d.Dim : hi*d.Dim],
		Labels:  d.Labels[lo:hi],
		N:       hi - lo,
		Dim:     d.Dim,
		Classes: d.Classes,
	}
}

// Config parameterizes the prototype-plus-noise generator.
type Config struct {
	N          int     // number of samples
	Dim        int     // feature dimension
	Classes    int     // number of classes
	Noise      float64 // stddev of additive Gaussian feature noise
	LabelNoise float64 // probability a label is replaced uniformly
	MaskFrac   float64 // fraction of features zeroed per sample (BERT-style masking)
	Seed       int64
}

// Generate builds a dataset from the config. Prototypes are drawn once
// from the seed, so two datasets generated with the same seed (e.g. train
// and test splits via SplitSeed) share class structure.
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := prototypes(rng, cfg.Classes, cfg.Dim)
	return sampleFrom(rng, protos, cfg)
}

// GeneratePair builds a train and a test dataset sharing the same class
// prototypes. The test set has no label noise (evaluation is against
// clean labels, like validating on the real test split).
func GeneratePair(cfg Config, testN int) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := prototypes(rng, cfg.Classes, cfg.Dim)
	train = sampleFrom(rng, protos, cfg)
	testCfg := cfg
	testCfg.N = testN
	testCfg.LabelNoise = 0
	test = sampleFrom(rng, protos, testCfg)
	return train, test
}

func prototypes(rng *rand.Rand, classes, dim int) [][]float32 {
	protos := make([][]float32, classes)
	for c := range protos {
		p := make([]float32, dim)
		for i := range p {
			p[i] = float32(rng.NormFloat64())
		}
		protos[c] = p
	}
	return protos
}

func sampleFrom(rng *rand.Rand, protos [][]float32, cfg Config) *Dataset {
	d := &Dataset{
		X:       make([]float32, cfg.N*cfg.Dim),
		Labels:  make([]int, cfg.N),
		N:       cfg.N,
		Dim:     cfg.Dim,
		Classes: cfg.Classes,
	}
	for s := 0; s < cfg.N; s++ {
		cls := s % cfg.Classes // balanced classes
		row := d.X[s*cfg.Dim : (s+1)*cfg.Dim]
		proto := protos[cls]
		for i := range row {
			row[i] = proto[i] + float32(rng.NormFloat64()*cfg.Noise)
		}
		if cfg.MaskFrac > 0 {
			masked := int(cfg.MaskFrac * float64(cfg.Dim))
			for k := 0; k < masked; k++ {
				row[rng.Intn(cfg.Dim)] = 0
			}
		}
		if cfg.LabelNoise > 0 && rng.Float64() < cfg.LabelNoise {
			cls = rng.Intn(cfg.Classes)
		}
		d.Labels[s] = cls
	}
	// Shuffle so shards are class-balanced draws rather than class runs.
	perm := rng.Perm(cfg.N)
	shuffled := &Dataset{
		X:      make([]float32, len(d.X)),
		Labels: make([]int, len(d.Labels)),
		N:      d.N, Dim: d.Dim, Classes: d.Classes,
	}
	for to, from := range perm {
		copy(shuffled.X[to*d.Dim:(to+1)*d.Dim], d.X[from*d.Dim:(from+1)*d.Dim])
		shuffled.Labels[to] = d.Labels[from]
	}
	return shuffled
}

// SyntheticMNIST builds the MNIST stand-in used by the LeNet-5 and
// exact-Hessian experiments: 14×14 "images" (dim 196), 10 classes,
// moderate noise so the achievable accuracy is in the high 90s like real
// MNIST.
func SyntheticMNIST(seed int64, trainN, testN int) (train, test *Dataset) {
	return GeneratePair(Config{
		N: trainN, Dim: 196, Classes: 10, Noise: 1.1, Seed: seed,
	}, testN)
}

// SyntheticImageNet builds the ImageNet stand-in for the ResNet-50
// convergence studies: higher class count and heavy feature noise so
// reaching the target accuracy takes many epochs, mirroring the 62-90
// epoch regimes of §5.1/5.2.
func SyntheticImageNet(seed int64, trainN, testN int) (train, test *Dataset) {
	return GeneratePair(Config{
		N: trainN, Dim: 128, Classes: 16, Noise: 2.4, LabelNoise: 0.04, Seed: seed,
	}, testN)
}

// SyntheticMaskedLM builds the BERT pretraining stand-in: masked,
// noisy observations of class prototypes. The masking plays the role of
// the masked-token objective; phase 2 of the BERT experiments uses a
// higher mask fraction (longer "sequences" are costlier but carry more
// signal per sample — the cost side is modeled in simnet).
func SyntheticMaskedLM(seed int64, trainN, testN int, maskFrac float64) (train, test *Dataset) {
	return GeneratePair(Config{
		N: trainN, Dim: 160, Classes: 12, Noise: 3.2, MaskFrac: maskFrac, Seed: seed,
	}, testN)
}

// Iterator yields minibatch index sets over a dataset, reshuffling every
// epoch with its own deterministic stream. Its position is fully
// described by (reshuffle count, cursor) — State/Seek below — because
// the shuffle stream itself is a pure function of the seed, which is
// what lets a checkpoint store two integers instead of generator
// internals and still resume bitwise.
type Iterator struct {
	n, batch   int
	seed       int64
	rng        *rand.Rand
	perm       []int
	cursor     int
	reshuffles int64
}

// NewIterator creates an iterator over n samples with the given batch
// size and shuffle seed.
func NewIterator(n, batch int, seed int64) *Iterator {
	if batch <= 0 || n <= 0 {
		panic("data: iterator needs positive n and batch")
	}
	it := &Iterator{n: n, batch: batch, seed: seed, rng: rand.New(rand.NewSource(seed))}
	it.reshuffle()
	return it
}

func (it *Iterator) reshuffle() {
	it.perm = it.rng.Perm(it.n)
	it.cursor = 0
	it.reshuffles++
}

// State returns the iterator's replayable position: how many epoch
// reshuffles have happened (>= 1; construction shuffles once) and the
// cursor within the current permutation.
func (it *Iterator) State() (reshuffles int64, cursor int) {
	return it.reshuffles, it.cursor
}

// Restore rewinds (or fast-forwards) the iterator to a position captured
// by State, replaying the deterministic shuffle stream from the seed so
// the current permutation — and every future one — is bitwise-identical
// to an iterator that walked there step by step.
func (it *Iterator) Restore(reshuffles int64, cursor int) {
	if reshuffles < 1 {
		reshuffles = 1
	}
	if cursor < 0 || cursor > it.n {
		panic(fmt.Sprintf("data: Restore cursor %d outside [0,%d]", cursor, it.n))
	}
	it.rng = rand.New(rand.NewSource(it.seed))
	it.reshuffles = 0
	for i := int64(0); i < reshuffles; i++ {
		it.reshuffle()
	}
	it.cursor = cursor
}

// Next returns the next batch of sample indices, reshuffling at epoch
// boundaries. Batches never span epochs; a short tail batch is returned
// at the end of an epoch.
func (it *Iterator) Next() []int {
	if it.cursor >= it.n {
		it.reshuffle()
	}
	hi := it.cursor + it.batch
	if hi > it.n {
		hi = it.n
	}
	out := it.perm[it.cursor:hi]
	it.cursor = hi
	return out
}
