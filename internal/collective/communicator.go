package collective

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/tensor"
)

// Strategy selects the algorithm family a Communicator's collectives
// run. It is the one knob that used to be spread across three enums
// (the per-bucket overlap.Algo, the trainer's BucketAlgo mirror, and
// the implicit power-of-two/linear dispatch inside core.Allreduce).
//
// Each collective honors the strategies that make sense for it and
// resolves the rest deterministically:
//
//   - Adasum: StrategyTree (host-tree bitwise parity, any group size),
//     StrategyRVH (Algorithm 1, power-of-two groups), StrategyLinear
//     (chained combine, any size). StrategyAuto picks RVH for
//     power-of-two groups and the linear chain otherwise; StrategyRing
//     is rejected — a ring sum would silently replace the adaptive
//     combine with averaging.
//   - AllreduceSum/AllreduceMean: StrategyRing (bandwidth-optimal ring,
//     any size, the default) or StrategyRVH (halving/doubling,
//     power-of-two groups). Tree/Linear/Auto resolve to the ring.
type Strategy int

// Strategy values.
const (
	// StrategyAuto lets each collective pick its default algorithm.
	StrategyAuto Strategy = iota
	// StrategyTree is recursive doubling on full vectors — for Adasum,
	// bitwise-identical to the host-side adasum.Reducer tree.
	StrategyTree
	// StrategyRVH is recursive vector halving/doubling (Algorithm 1 for
	// Adasum). Requires a power-of-two group.
	StrategyRVH
	// StrategyRing is the bandwidth-optimal ring (sum/mean collectives).
	StrategyRing
	// StrategyLinear is the chained combine of §4.2.3 (Adasum only).
	StrategyLinear
)

func (s Strategy) String() string {
	switch s {
	case StrategyTree:
		return "tree"
	case StrategyRVH:
		return "rvh"
	case StrategyRing:
		return "ring"
	case StrategyLinear:
		return "linear"
	default:
		return "auto"
	}
}

// Config tunes a Communicator at construction.
type Config struct {
	// Strategy selects the algorithm family; see the Strategy docs for
	// how each collective resolves it. The zero value is StrategyAuto.
	Strategy Strategy
	// Compression is the unified compression knob (the same field name
	// trainer.Config and overlap.Options carry). A compress.Codec fixes
	// one on-the-wire format for every gradient payload the communicator
	// moves — the headerless static path, bitwise- and virtual-clock-
	// identical to the pre-policy protocol. A compress.Policy selects
	// the codec per launch (callers drive Stream().SetCodec from the
	// policy's decisions) and payloads become self-describing. Either
	// way, per-layer dot products are computed on the decoded values
	// actually combined and the float64 dot side-channel stays
	// uncompressed. nil or compress.None() selects the plain path.
	Compression compress.Compression
}

// commShared is the immutable, proc-independent part of a Communicator,
// shared by every binding (OnProc clone) of the same logical
// communicator: the group, the cached rank→position map, and the
// configuration. Safe for concurrent use once constructed.
type commShared struct {
	group    Group
	pos      map[int]int // world rank -> group position, O(1) lookups
	strategy Strategy
	comp     compress.Compression // the original knob, for Split inheritance
	codec    compress.Codec       // static codec; nil when uncompressed or adaptive
	policy   compress.Policy      // policy prototype; nil when static
}

// Communicator is an MPI/NCCL-style communicator: a comm.Proc endpoint
// bound to a Group, owning its cached rank-position map, its codec
// configuration and (for stateful codecs) its error-feedback Stream.
// All collectives hang off it as methods — AllreduceSum, AllreduceMean,
// Adasum, Broadcast, Gather and their zero-allocation Into variants —
// with the algorithm selected by the Strategy given at construction.
// Split carves sub-communicators with MPI_Comm_split semantics, so
// hierarchical reductions are compositions of communicators rather than
// special-cased free functions (see Hierarchy).
//
// Internal scratch (transport buffers, the per-layer dot-product
// vector, the tree exchange buffer) is drawn from the World's pool, so
// steady-state collectives allocate nothing and concurrent async
// clones cannot race on shared buffers. A Communicator must be driven
// from its Proc's goroutine; use OnProc to bind the same logical
// communicator to an async op's cloned Proc.
type Communicator struct {
	shared *commShared
	p      *comm.Proc
	mypos  int
	stream *compress.Stream // nil when uncompressed
	policy compress.Policy  // per-instance fork of shared.policy; nil when static
}

// New builds a Communicator for rank p over the ordered group g. The
// group must contain p's rank; it is copied, so the caller may reuse
// the slice. The rank→position map is built once here — collectives and
// Pos/Contains are O(1) afterwards, where the free-function API
// re-scanned the group linearly inside every recursion level.
func New(p *comm.Proc, g Group, cfg Config) *Communicator {
	if len(g) == 0 {
		panic("collective: New requires a non-empty group")
	}
	grp := make(Group, len(g))
	copy(grp, g)
	pos := make(map[int]int, len(grp))
	for i, r := range grp {
		if _, dup := pos[r]; dup {
			panic(fmt.Sprintf("collective: rank %d appears twice in group %v", r, grp))
		}
		pos[r] = i
	}
	mypos, ok := pos[p.Rank()]
	if !ok {
		panic(fmt.Sprintf("collective: rank %d not in group %v", p.Rank(), grp))
	}
	codec, pol := compress.Resolve(cfg.Compression)
	c := &Communicator{
		shared: &commShared{
			group: grp, pos: pos, strategy: cfg.Strategy,
			comp: cfg.Compression, codec: codec, policy: pol,
		},
		p:     p,
		mypos: mypos,
	}
	switch {
	case pol != nil:
		// Adaptive: the stream starts on the identity codec and is
		// re-pointed per launch (Stream().SetCodec) from the policy's
		// decisions; its error-feedback residuals persist across codec
		// swaps because site lengths are codec-independent.
		c.policy = pol.Fork()
		c.stream = compress.NewStream(compress.None())
	case codec != nil:
		c.stream = compress.NewStream(codec)
	}
	return c
}

// Proc returns the bound endpoint.
func (c *Communicator) Proc() *comm.Proc { return c.p }

// Group returns the communicator's group. The slice is shared and must
// not be mutated.
func (c *Communicator) Group() Group { return c.shared.group }

// Size returns the number of ranks in the communicator.
func (c *Communicator) Size() int { return len(c.shared.group) }

// Rank returns this endpoint's group rank (its position in the group).
func (c *Communicator) Rank() int { return c.mypos }

// Strategy returns the configured algorithm family.
func (c *Communicator) Strategy() Strategy { return c.shared.strategy }

// Codec returns the static wire codec, or nil when the communicator is
// uncompressed or adaptive (see Policy).
func (c *Communicator) Codec() compress.Codec { return c.shared.codec }

// Policy returns this communicator instance's compression policy (its
// own fork, carrying per-slot decision state), or nil when the
// communicator is uncompressed or statically compressed.
func (c *Communicator) Policy() compress.Policy { return c.policy }

// Compression returns the configured compression knob as given.
func (c *Communicator) Compression() compress.Compression { return c.shared.comp }

// Stream returns the communicator's compression stream (nil when
// uncompressed). Callers running repeated steps over an error-feedback
// codec call Stream().Begin() once per step so the i-th encode of every
// step reuses the i-th residual.
func (c *Communicator) Stream() *compress.Stream { return c.stream }

// Pos returns the group position of world rank r in O(1), panicking if
// r is not a member.
func (c *Communicator) Pos(r int) int {
	i, ok := c.shared.pos[r]
	if !ok {
		panic(fmt.Sprintf("collective: rank %d not in group %v", r, c.shared.group))
	}
	return i
}

// Contains reports in O(1) whether world rank r is a member.
func (c *Communicator) Contains(r int) bool {
	_, ok := c.shared.pos[r]
	return ok
}

// OnProc binds the same logical communicator to another endpoint of the
// same rank — the cloned Proc of an asynchronous op (comm.Launch). The
// clone shares the group, position map and compression stream, so
// error-feedback residuals persist across the handoff; the engine's
// launch/join ordering keeps that handoff race-free.
func (c *Communicator) OnProc(p *comm.Proc) *Communicator {
	if p.Rank() != c.p.Rank() {
		panic("collective: OnProc requires an endpoint of the same rank")
	}
	return &Communicator{shared: c.shared, p: p, mypos: c.mypos, stream: c.stream, policy: c.policy}
}

// Fork returns a communicator over the same group and configuration
// with its own fresh compression stream and (when adaptive) its own
// fresh-state policy fork — one per bucket slot, so each slot's
// error-feedback residuals and decision state stay with its semantic
// bucket.
func (c *Communicator) Fork() *Communicator {
	f := &Communicator{shared: c.shared, p: c.p, mypos: c.mypos}
	switch {
	case c.shared.policy != nil:
		f.policy = c.shared.policy.Fork()
		f.stream = compress.NewStream(compress.None())
	case c.shared.codec != nil:
		f.stream = compress.NewStream(c.shared.codec)
	}
	return f
}

// Split partitions the communicator with MPI_Comm_split semantics:
// every member calls Split with its own color and key, members sharing
// a color form a new communicator ordered by (key, current group rank),
// and a negative color (MPI_UNDEFINED) returns nil. The color/key
// exchange is a collective over the parent group — all members must
// call Split at the same program point — carried on the control plane,
// so communicator construction charges neither the virtual clock nor
// the wire-byte meter (setup, not steady-state traffic).
//
// Dead members of the parent group are skipped: they neither
// participate in the exchange (the root would hang gathering from
// them) nor appear in any resulting group, and the exchange is rooted
// at the group's first alive member. This is how an elastic trainer
// re-splits a survivor communicator after a failure — every survivor
// calls Split with the same color and the surviving ranks fall out as
// the new group. Deadness must be settled when Split runs (between
// collectives, after the failed Run returned); a rank dying mid-Split
// collapses into the usual RankFailure cascade.
//
// The sub-communicator inherits the parent's Strategy and Compression
// with a fresh compression stream (and, when adaptive, a fresh-state
// policy fork).
func (c *Communicator) Split(color, key int) *Communicator {
	g := c.shared.group
	n := len(g)
	root := -1
	for i, r := range g {
		if c.p.Alive(r) {
			root = i
			break
		}
	}
	if root < 0 {
		panic("collective: Split on a group with no alive members")
	}
	// deadColor marks a skipped member in the gathered table; negative,
	// so it can never collide with a participating color (callers'
	// negative colors are MPI_UNDEFINED and never enter the table
	// comparison below for other members).
	const deadColor = -1 << 30
	table := make([]int, 2*n)
	if c.mypos == root {
		for i, r := range g {
			switch {
			case i == root:
				table[2*i], table[2*i+1] = color, key
			case !c.p.Alive(r):
				table[2*i] = deadColor
			default:
				ck := c.p.RecvCtl(r)
				table[2*i], table[2*i+1] = ck[0], ck[1]
			}
		}
		for i, r := range g {
			if i != root && c.p.Alive(r) {
				c.p.SendCtl(r, table)
			}
		}
	} else {
		c.p.SendCtl(g[root], []int{color, key})
		table = c.p.RecvCtl(g[root])
	}
	if color < 0 {
		return nil
	}
	type member struct{ pos, key int }
	members := make([]member, 0, n)
	for i := 0; i < n; i++ {
		if table[2*i] == color {
			members = append(members, member{pos: i, key: table[2*i+1]})
		}
	}
	// Stable sort: ties on key keep parent group order, MPI's rule.
	sort.SliceStable(members, func(a, b int) bool { return members[a].key < members[b].key })
	ng := make(Group, len(members))
	for i, m := range members {
		ng[i] = g[m.pos]
	}
	return New(c.p, ng, Config{Strategy: c.shared.strategy, Compression: c.shared.comp})
}

// ---------------------------------------------------------------------
// Codec-aware transport: the one place plain, statically compressed and
// adaptive traffic diverge. Every collective is written once against
// these three helpers; with a nil stream they are exactly the pre-codec
// calls, so the uncompressed paths stay bitwise- and clock-identical,
// and with a static codec the headerless pre-policy wire format is
// preserved byte for byte. Only an adaptive communicator pays the one
// self-describing header word per payload.

// send ships x to world rank dst, encoding through the communicator's
// stream when compression is configured.
//
//adasum:noalloc
func (c *Communicator) send(dst int, x []float32) {
	switch {
	case c.stream == nil:
		c.p.Send(dst, x)
	case c.policy != nil:
		c.p.SendAdaptive(dst, x, c.stream)
	default:
		c.p.SendCompressed(dst, x, c.stream)
	}
}

// recvNew receives an n-element payload from world rank src into a
// pooled buffer owned by the caller (hand it back with p.Release).
//
//adasum:noalloc
func (c *Communicator) recvNew(src, n int) []float32 {
	if c.stream == nil {
		return c.p.Recv(src)
	}
	buf := c.p.Scratch(n)
	if c.policy != nil {
		c.p.RecvAdaptive(src, buf)
	} else {
		c.p.RecvCompressed(src, c.shared.codec, buf)
	}
	return buf
}

// recvInto receives from world rank src directly into dst.
//
//adasum:noalloc
func (c *Communicator) recvInto(src int, dst []float32) {
	switch {
	case c.stream == nil:
		c.p.RecvInto(src, dst)
	case c.policy != nil:
		c.p.RecvAdaptive(src, dst)
	default:
		c.p.RecvCompressed(src, c.shared.codec, dst)
	}
}

// ---------------------------------------------------------------------
// Strategy resolution.

// adasumStrategy resolves the configured strategy for the Adasum
// collective.
func (c *Communicator) adasumStrategy() Strategy {
	switch c.shared.strategy {
	case StrategyTree, StrategyRVH, StrategyLinear:
		return c.shared.strategy
	case StrategyRing:
		panic("collective: StrategyRing selects the sum/mean combiner; Adasum takes StrategyTree, StrategyRVH or StrategyLinear")
	default: // StrategyAuto: the paper's algorithm where it applies.
		if c.shared.group.IsPowerOfTwo() {
			return StrategyRVH
		}
		return StrategyLinear
	}
}

// sumStrategy resolves the configured strategy for the sum/mean
// collectives.
func (c *Communicator) sumStrategy() Strategy {
	if c.shared.strategy == StrategyRVH {
		return StrategyRVH
	}
	return StrategyRing
}

// Adasum reduces x in place across the group with the adaptive-sum
// combine, per-layer over layout (§3.6; pass tensor.FlatLayout(len(x))
// for whole-gradient semantics). The algorithm follows the configured
// Strategy; every rank finishes holding the combined gradient (ranks
// may hold slightly different decoded copies under a lossy codec — the
// consumer reads rank 0's, as with lossy allgathers in real systems).
//
//adasum:noalloc
func (c *Communicator) Adasum(x []float32, layout tensor.Layout) {
	if layout.TotalSize() != len(x) {
		panic("collective: Adasum layout does not cover x")
	}
	switch c.adasumStrategy() {
	case StrategyTree:
		c.treeAdasum(x, layout)
	case StrategyRVH:
		c.adasumRVH(x, layout)
	default:
		c.linearAdasum(x, layout)
	}
}

// AllreduceSum reduces x in place to the elementwise sum over the
// group.
//
//adasum:noalloc
func (c *Communicator) AllreduceSum(x []float32) {
	if c.sumStrategy() == StrategyRVH {
		c.rvhSum(x)
		return
	}
	c.ringSum(x)
}

// AllreduceMean is AllreduceSum followed by division by the group size
// — the combiner synchronous SGD actually applies.
//
//adasum:noalloc
func (c *Communicator) AllreduceMean(x []float32) {
	c.AllreduceSum(x)
	tensor.Scale(1/float32(c.Size()), x)
}
