package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/tensor"
)

func randVecs(ranks, n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for r := range out {
		out[r] = make([]float32, n)
		for i := range out[r] {
			out[r][i] = rng.Float32() - 0.5
		}
	}
	return out
}

// runCodec reduces per-rank vectors through body on a communicator
// configured with the codec and returns the results plus the World's
// wire bytes.
func runCodec(ranks int, vecs [][]float32, strategy Strategy, codec compress.Codec,
	body func(c *Communicator, x []float32)) ([][]float32, int64) {
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	out := make([][]float32, ranks)
	w.Run(func(p *comm.Proc) {
		c := New(p, g, Config{Strategy: strategy, Compression: codec})
		if st := c.Stream(); st != nil {
			st.Begin()
		}
		x := append([]float32(nil), vecs[p.Rank()]...)
		body(c, x)
		out[p.Rank()] = x
	})
	return out, w.WireBytes()
}

// TestCodecNoneBitwiseIdentical: a communicator built with a nil codec
// and one built with compress.None() must produce bitwise the same
// floats and the same wire bytes as each other — the single-code-path
// guarantee that replaced the separate compressed collectives.
func TestCodecNoneBitwiseIdentical(t *testing.T) {
	const ranks, n = 8, 3000
	layout := tensor.NewLayout([]string{"a", "b", "c"}, []int{1000, 1500, 500})
	vecs := randVecs(ranks, n, 42)
	type variant struct {
		name     string
		strategy Strategy
		run      func(c *Communicator, x []float32)
	}
	variants := []variant{
		{"tree", StrategyTree, func(c *Communicator, x []float32) { c.Adasum(x, layout) }},
		{"rvh", StrategyRVH, func(c *Communicator, x []float32) { c.Adasum(x, layout) }},
		{"ring", StrategyRing, func(c *Communicator, x []float32) { c.AllreduceMean(x) }},
	}
	for _, v := range variants {
		want, wantWire := runCodec(ranks, vecs, v.strategy, nil, v.run)
		got, gotWire := runCodec(ranks, vecs, v.strategy, compress.None(), v.run)
		for r := range got {
			if !tensor.Equal(got[r], want[r], 0) {
				t.Fatalf("%s: rank %d not bitwise-identical under None", v.name, r)
			}
		}
		if gotWire != wantWire {
			t.Fatalf("%s: None wire bytes %d != plain %d", v.name, gotWire, wantWire)
		}
	}
}

// TestCodecFP16CloseAndCheaper: the fp16-compressed collectives stay
// within half-precision tolerance of the uncompressed result and move
// about half the wire bytes.
func TestCodecFP16CloseAndCheaper(t *testing.T) {
	const ranks, n = 8, 4096
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 7)

	adasum := func(c *Communicator, x []float32) { c.Adasum(x, layout) }
	plain, plainWire := runCodec(ranks, vecs, StrategyRVH, nil, adasum)
	comp, compWire := runCodec(ranks, vecs, StrategyRVH, compress.FP16(), adasum)

	// Wire bytes: the gradient payloads halve; the uncompressed float64
	// dot-product side traffic is still there, so require >= 40% saved.
	if float64(compWire) > 0.6*float64(plainWire) {
		t.Fatalf("fp16 RVH wire bytes %d vs plain %d: less than 40%% saved", compWire, plainWire)
	}
	// Accuracy: every rank's result within a few half-precision ulps of
	// the exact combine (values here are O(1), halves resolve ~1e-3).
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 2e-2 {
				t.Fatalf("rank %d element %d: fp16 result %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}

// TestCodecRingMeanClose: the ring path under int8 stays within the
// quantization error bound of the exact mean.
func TestCodecRingMeanClose(t *testing.T) {
	const ranks, n = 4, 2048
	vecs := randVecs(ranks, n, 13)
	mean := func(c *Communicator, x []float32) { c.AllreduceMean(x) }
	plain, _ := runCodec(ranks, vecs, StrategyRing, nil, mean)
	comp, _ := runCodec(ranks, vecs, StrategyRing, compress.Int8(0), mean)
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 3e-2 {
				t.Fatalf("rank %d element %d: int8 ring %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}

// TestCodecTreeNonPowerOfTwo exercises the reduce-to-root plus
// compressed-broadcast path, which only non-power-of-two groups hit.
func TestCodecTreeNonPowerOfTwo(t *testing.T) {
	const ranks, n = 6, 1024
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 19)
	adasum := func(c *Communicator, x []float32) { c.Adasum(x, layout) }
	plain, _ := runCodec(ranks, vecs, StrategyTree, nil, adasum)
	comp, _ := runCodec(ranks, vecs, StrategyTree, compress.FP16(), adasum)
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 2e-2 {
				t.Fatalf("rank %d element %d: fp16 tree %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}

// TestCodecHierarchyErrorFeedbackCarries: a Hierarchy reused across
// steps begins a new stream step per invocation, so an error-feedback
// codec's residuals are added back at the same sites instead of
// accreting fresh ones — observable as the second identical-input step
// producing a different (residual-corrected) result than the first.
func TestCodecHierarchyErrorFeedbackCarries(t *testing.T) {
	const gpus, ranks, n = 2, 8, 1024
	layout := tensor.NewLayout([]string{"a", "b"}, []int{600, n - 600})
	vecs := randVecs(ranks, n, 29)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	steps := make([][][]float32, 2)
	for s := range steps {
		steps[s] = make([][]float32, ranks)
	}
	hiers := make([]*Hierarchy, ranks)
	w.Run(func(p *comm.Proc) {
		c := New(p, g, Config{Strategy: StrategyRVH, Compression: compress.TopK(0.05, true)})
		hiers[p.Rank()] = NewHierarchy(c, gpus)
	})
	for s := range steps {
		w.Run(func(p *comm.Proc) {
			x := tensor.Clone(vecs[p.Rank()])
			hiers[p.Rank()].Adasum(x, layout)
			steps[s][p.Rank()] = x
		})
	}
	// Residuals from step 1 feed step 2's encodes: with identical inputs
	// the results must differ (zero residuals would make them equal,
	// meaning error feedback never carried).
	if tensor.Equal(steps[0][0], steps[1][0], 0) {
		t.Fatal("second step identical to first: hierarchy error feedback is not carrying residuals")
	}
}

// TestCodecHierarchy: the hierarchical composition inherits the codec —
// a compressed 2-level Adasum saves wire bytes and stays within fp16
// tolerance of the exact hierarchical result.
func TestCodecHierarchy(t *testing.T) {
	const gpus, nodes = 2, 4
	const ranks, n = gpus * nodes, 2048
	layout := tensor.NewLayout([]string{"a", "b", "c", "d"}, []int{512, 768, 512, 256})
	vecs := randVecs(ranks, n, 23)
	hier := func(c *Communicator, x []float32) { NewHierarchy(c, gpus).Adasum(x, layout) }
	plain, plainWire := runCodec(ranks, vecs, StrategyRVH, nil, hier)
	comp, compWire := runCodec(ranks, vecs, StrategyRVH, compress.FP16(), hier)
	if float64(compWire) > 0.6*float64(plainWire) {
		t.Fatalf("fp16 hierarchy wire bytes %d vs plain %d: less than 40%% saved", compWire, plainWire)
	}
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 0.15 {
				t.Fatalf("rank %d element %d: fp16 hierarchy %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}
