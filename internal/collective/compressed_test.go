package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/tensor"
)

func randVecs(ranks, n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for r := range out {
		out[r] = make([]float32, n)
		for i := range out[r] {
			out[r][i] = rng.Float32() - 0.5
		}
	}
	return out
}

// runCompressed reduces per-rank vectors through body (one compressed
// collective) and returns the results plus the World's wire bytes.
func runCompressed(ranks int, vecs [][]float32, codec compress.Codec,
	body func(p *comm.Proc, g Group, x []float32, st *compress.Stream)) ([][]float32, int64) {
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	out := make([][]float32, ranks)
	streams := make([]*compress.Stream, ranks)
	for r := range streams {
		if codec != nil {
			streams[r] = compress.NewStream(codec)
			streams[r].Begin()
		}
	}
	w.Run(func(p *comm.Proc) {
		x := append([]float32(nil), vecs[p.Rank()]...)
		body(p, g, x, streams[p.Rank()])
		out[p.Rank()] = x
	})
	return out, w.WireBytes()
}

// TestCompressedNoneBitwiseIdentical: with a nil stream (or the None
// codec) every compressed collective must produce bitwise the same
// floats as its plain counterpart.
func TestCompressedNoneBitwiseIdentical(t *testing.T) {
	const ranks, n = 8, 3000
	layout := tensor.NewLayout([]string{"a", "b", "c"}, []int{1000, 1500, 500})
	vecs := randVecs(ranks, n, 42)
	type variant struct {
		name  string
		plain func(p *comm.Proc, g Group, x []float32)
		comp  func(p *comm.Proc, g Group, x []float32, st *compress.Stream)
	}
	variants := []variant{
		{"tree", func(p *comm.Proc, g Group, x []float32) { TreeAdasum(p, g, x, layout) },
			func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
				CompressedTreeAdasum(p, g, x, layout, st)
			}},
		{"rvh", func(p *comm.Proc, g Group, x []float32) { AdasumRVH(p, g, x, layout) },
			func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
				CompressedAdasumRVH(p, g, x, layout, st)
			}},
		{"ring", func(p *comm.Proc, g Group, x []float32) { RingAllreduceMean(p, g, x) },
			func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
				CompressedRingAllreduceMean(p, g, x, st)
			}},
	}
	for _, v := range variants {
		want, wantWire := runCompressed(ranks, vecs, nil,
			func(p *comm.Proc, g Group, x []float32, _ *compress.Stream) { v.plain(p, g, x) })
		for _, codec := range []compress.Codec{nil, compress.None()} {
			got, gotWire := runCompressed(ranks, vecs, codec, v.comp)
			for r := range got {
				if !tensor.Equal(got[r], want[r], 0) {
					t.Fatalf("%s: rank %d not bitwise-identical under None", v.name, r)
				}
			}
			if gotWire != wantWire {
				t.Fatalf("%s: None wire bytes %d != plain %d", v.name, gotWire, wantWire)
			}
		}
	}
}

// TestCompressedFP16CloseAndCheaper: the fp16-compressed collectives
// stay within half-precision tolerance of the uncompressed result and
// move about half the wire bytes.
func TestCompressedFP16CloseAndCheaper(t *testing.T) {
	const ranks, n = 8, 4096
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 7)

	plain, plainWire := runCompressed(ranks, vecs, nil,
		func(p *comm.Proc, g Group, x []float32, _ *compress.Stream) { AdasumRVH(p, g, x, layout) })
	comp, compWire := runCompressed(ranks, vecs, compress.FP16(),
		func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
			CompressedAdasumRVH(p, g, x, layout, st)
		})

	// Wire bytes: the gradient payloads halve; the uncompressed float64
	// dot-product side traffic is still there, so require >= 40% saved.
	if float64(compWire) > 0.6*float64(plainWire) {
		t.Fatalf("fp16 RVH wire bytes %d vs plain %d: less than 40%% saved", compWire, plainWire)
	}
	// Accuracy: every rank's result within a few half-precision ulps of
	// the exact combine (values here are O(1), halves resolve ~1e-3).
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 2e-2 {
				t.Fatalf("rank %d element %d: fp16 result %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}

// TestCompressedRingMeanClose: the ring path under int8 stays within the
// quantization error bound of the exact mean.
func TestCompressedRingMeanClose(t *testing.T) {
	const ranks, n = 4, 2048
	vecs := randVecs(ranks, n, 13)
	plain, _ := runCompressed(ranks, vecs, nil,
		func(p *comm.Proc, g Group, x []float32, _ *compress.Stream) { RingAllreduceMean(p, g, x) })
	comp, _ := runCompressed(ranks, vecs, compress.Int8(0),
		func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
			CompressedRingAllreduceMean(p, g, x, st)
		})
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 3e-2 {
				t.Fatalf("rank %d element %d: int8 ring %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}

// TestCompressedTreeNonPowerOfTwo exercises the reduce-to-root plus
// compressed-broadcast path, which only non-power-of-two groups hit.
func TestCompressedTreeNonPowerOfTwo(t *testing.T) {
	const ranks, n = 6, 1024
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 19)
	plain, _ := runCompressed(ranks, vecs, nil,
		func(p *comm.Proc, g Group, x []float32, _ *compress.Stream) { TreeAdasum(p, g, x, layout) })
	comp, _ := runCompressed(ranks, vecs, compress.FP16(),
		func(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
			CompressedTreeAdasum(p, g, x, layout, st)
		})
	for r := range comp {
		for i := range comp[r] {
			if err := math.Abs(float64(comp[r][i] - plain[r][i])); err > 2e-2 {
				t.Fatalf("rank %d element %d: fp16 tree %v vs plain %v", r, i, comp[r][i], plain[r][i])
			}
		}
	}
}
