package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/tensor"
)

// Hierarchy composes communicators into the multi-level reduction of
// §4.2.2, generalized to any number of levels. The innermost levels are
// "scatter" domains (ranks sharing the fastest links — GPUs of one
// node, nodes of one rack): each runs a reduce-scatter with sum on
// layer-aligned shards, so gradients within a domain are summed (larger
// effective local batch). The outermost level runs the Adasum combine
// (or a ring sum for the baseline) on the final shard, and the
// allgathers unwind in reverse. With one scatter level this is exactly
// Horovod's HOROVOD_HIERARCHICAL_ALLREDUCE Adasum; with two it is the
// GPU/node/rack topology, which falls out of the same composition.
//
// A Hierarchy is built from a parent communicator by repeated Split —
// communicator composition, not a special-cased collective — and every
// level inherits the parent's codec, so compressed hierarchical
// reductions come for free.
type Hierarchy struct {
	scatter []*Communicator // innermost first
	cross   *Communicator
}

// NewHierarchy splits c into nested levels. widths[i] is the size of a
// level-i domain measured in level-(i-1) domains: NewHierarchy(c, 4)
// groups ranks 4-per-node with cross-node reduction outermost;
// NewHierarchy(c, 4, 8) adds racks of 8 nodes between them. The product
// of widths must divide the group size; the quotient is the outermost
// (cross) domain count. Group positions map to coordinates
// little-endian: position = gpu + node*gpus + rack*gpus*nodes + ...,
// matching the rank placement of simnet.Topology.
//
// All members of c must call NewHierarchy at the same program point
// (it performs Split exchanges on the control plane).
func NewHierarchy(c *Communicator, widths ...int) *Hierarchy {
	if len(widths) == 0 {
		panic("collective: NewHierarchy needs at least one level width")
	}
	stride := 1
	for _, w := range widths {
		if w <= 0 {
			panic("collective: NewHierarchy level widths must be positive")
		}
		stride *= w
	}
	if c.Size()%stride != 0 {
		panic(fmt.Sprintf("collective: group size %d not divisible by level widths %v", c.Size(), widths))
	}
	h := &Hierarchy{}
	me := c.Rank()
	s := 1
	for _, w := range widths {
		// Level communicator: ranks sharing every coordinate except this
		// level's. Color strips the level's digit; key orders by it.
		color := me/(s*w)*s + me%s
		key := (me / s) % w
		h.scatter = append(h.scatter, c.Split(color, key))
		s *= w
	}
	// Cross communicator: ranks sharing all scatter coordinates.
	h.cross = c.Split(me%stride, me/stride)
	return h
}

// OnProc rebinds every level of the hierarchy to another endpoint of
// the same rank — the cloned Proc of an asynchronous op — without
// re-running any Split exchange. Compression streams are shared with
// the receiver, so error-feedback residuals persist across rebindings;
// as with Communicator.OnProc, the caller's launch/join ordering must
// keep the stream handoff race-free.
func (h *Hierarchy) OnProc(p *comm.Proc) *Hierarchy {
	nh := &Hierarchy{
		scatter: make([]*Communicator, len(h.scatter)),
		cross:   h.cross.OnProc(p),
	}
	for i, lc := range h.scatter {
		nh.scatter[i] = lc.OnProc(p)
	}
	return nh
}

// Streams returns the per-level compression streams in deterministic
// order (innermost scatter level first, cross level last) — the state a
// checkpoint must capture so resumed error-feedback residuals land on
// the sites that dropped them. Entries are nil for an uncompressed
// hierarchy.
func (h *Hierarchy) Streams() []*compress.Stream {
	out := make([]*compress.Stream, 0, len(h.scatter)+1)
	for _, lc := range h.scatter {
		out = append(out, lc.Stream())
	}
	return append(out, h.cross.Stream())
}

// SetCodec points every level's compression stream (where present) at
// codec — the per-launch fan-out of an adaptive policy's decision.
// Unlike ranging over Streams(), it builds no slice, so the overlap
// engine can call it once per bucket op without allocating.
//
//adasum:noalloc
func (h *Hierarchy) SetCodec(codec compress.Codec) {
	for _, lc := range h.scatter {
		if st := lc.Stream(); st != nil {
			st.SetCodec(codec)
		}
	}
	if st := h.cross.Stream(); st != nil {
		st.SetCodec(codec)
	}
}

// Levels returns the number of levels including the cross level.
func (h *Hierarchy) Levels() int { return len(h.scatter) + 1 }

// Cross returns the outermost communicator (one member per innermost
// shard chain).
func (h *Hierarchy) Cross() *Communicator { return h.cross }

// Scatter returns the level-i scatter communicator (0 = innermost).
func (h *Hierarchy) Scatter(i int) *Communicator { return h.scatter[i] }

// begin starts a new step on every level's compression stream. The
// level communicators are owned by the Hierarchy (callers cannot reach
// their streams the way they reach a plain Communicator's), and one
// Adasum/AllreduceSum invocation runs one deterministic encode
// sequence per level — so each invocation is a step: error-feedback
// residuals land on the same sites next call instead of accreting new
// ones forever.
func (h *Hierarchy) begin() {
	for _, lc := range h.scatter {
		if st := lc.Stream(); st != nil {
			st.Begin()
		}
	}
	if st := h.cross.Stream(); st != nil {
		st.Begin()
	}
}

// Adasum reduces x in place hierarchically: sum within every scatter
// domain, adaptive sum across the outermost level, per-layer over
// layout. Shards are layer-aligned at every level so per-layer dot
// products complete within each cross-level group — the behaviour of
// Horovod's hierarchical Adasum, nested. Each call is one step of the
// levels' error-feedback streams.
func (h *Hierarchy) Adasum(x []float32, layout tensor.Layout) {
	if layout.TotalSize() != len(x) {
		panic("collective: Hierarchy.Adasum layout does not cover x")
	}
	h.begin()
	h.adasumLevel(x, layout, 0)
}

// adasumLevel runs the scatter/recurse/gather sandwich of one level.
func (h *Hierarchy) adasumLevel(x []float32, layout tensor.Layout, lvl int) {
	if lvl == len(h.scatter) {
		if h.cross.Size() > 1 {
			if len(x) > 0 {
				h.cross.Adasum(x, layout)
			} else {
				// Empty shard: still participate in the collective to keep
				// the power-of-two exchange pattern aligned.
				//adasum:alloc ok empty-shard corner: two zero-length slices, never on the balanced path
				h.cross.Adasum(x, tensor.FlatLayout(0))
			}
		}
		return
	}
	lc := h.scatter[lvl]
	//adasum:alloc ok per-level shard table: O(domain size) words per op, not on the bench-pinned flat path
	ranges := layout.SplitLayerAligned(lc.Size())
	// Phase 1: intra-domain reduce-scatter (sum) over layer-aligned
	// shards.
	shard := lc.reduceScatterRing(x, rangeBounds(ranges))
	lo, hi := ranges[lc.Rank()][0], ranges[lc.Rank()][1]
	// Phase 2: the windowed layout keeps per-layer dots exact because
	// shards are layer-aligned.
	//adasum:alloc ok per-level windowed layout: O(layers in shard) words per op, not on the bench-pinned flat path
	h.adasumLevel(shard, layout.Window(lo, hi), lvl+1)
	// Phase 3: intra-domain allgather of finished shards.
	lc.allgatherRing(x, rangeBounds(ranges))
}

// AllreduceSum is the baseline counterpart of Adasum: reduce-scatter
// (sum) inward, ring allreduce (sum) across the outermost level,
// allgather outward — used for like-for-like system-efficiency
// comparisons with equal-chunk (not layer-aligned) shards.
func (h *Hierarchy) AllreduceSum(x []float32) {
	h.begin()
	h.sumLevel(x, 0)
}

// AllreduceMean is AllreduceSum followed by division by the total
// member count.
func (h *Hierarchy) AllreduceMean(x []float32) {
	h.AllreduceSum(x)
	n := h.cross.Size()
	for _, lc := range h.scatter {
		n *= lc.Size()
	}
	tensor.Scale(1/float32(n), x)
}

func (h *Hierarchy) sumLevel(x []float32, lvl int) {
	if lvl == len(h.scatter) {
		if h.cross.Size() > 1 {
			h.cross.ringSum(x)
		}
		return
	}
	lc := h.scatter[lvl]
	bounds := equalBounds(len(x), lc.Size())
	shard := lc.reduceScatterRing(x, bounds)
	h.sumLevel(shard, lvl+1)
	lc.allgatherRing(x, bounds)
}
