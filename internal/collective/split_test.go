package collective

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// TestSplitPartitionProperties fuzzes Split with random colors and keys
// over random (including non-power-of-two) group sizes and checks the
// MPI_Comm_split contract: members sharing a color form exactly one
// sub-communicator whose group lists all of them ordered by (key,
// parent group rank); a negative color yields nil; and the cached
// Pos/Contains lookups agree with the linear Group scans.
func TestSplitPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 20; trial++ {
		ranks := rng.Intn(14) + 2
		colors := make([]int, ranks)
		keys := make([]int, ranks)
		for r := range colors {
			colors[r] = rng.Intn(4) - 1 // -1 (undefined) through 2
			keys[r] = rng.Intn(3)       // collisions force the stable tiebreak
		}
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		subs := comm.RunCollect(w, func(p *comm.Proc) *Communicator {
			return New(p, g, Config{}).Split(colors[p.Rank()], keys[p.Rank()])
		})
		for r, sub := range subs {
			if colors[r] < 0 {
				if sub != nil {
					t.Fatalf("trial %d: rank %d with negative color got a communicator", trial, r)
				}
				continue
			}
			if sub == nil {
				t.Fatalf("trial %d: rank %d got nil for color %d", trial, r, colors[r])
			}
			// Expected group: ranks with my color, stably sorted by key.
			var want Group
			for _, k := range []int{0, 1, 2} {
				for i := 0; i < ranks; i++ {
					if colors[i] == colors[r] && keys[i] == k {
						want = append(want, i)
					}
				}
			}
			got := sub.Group()
			if len(got) != len(want) {
				t.Fatalf("trial %d rank %d: sub-group %v, want %v", trial, r, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d rank %d: sub-group %v, want %v", trial, r, got, want)
				}
			}
			if sub.Rank() != got.Pos(r) {
				t.Fatalf("trial %d rank %d: cached rank %d != scanned %d", trial, r, sub.Rank(), got.Pos(r))
			}
			for i, member := range got {
				if sub.Pos(member) != i || !sub.Contains(member) {
					t.Fatalf("trial %d rank %d: cached Pos/Contains disagree with group scan", trial, r)
				}
			}
			if sub.Contains(ranks + 5) {
				t.Fatalf("trial %d: Contains accepted a non-member", trial)
			}
		}
	}
}

// TestSplitSubgroupCollective runs an Adasum on a Split-carved
// sub-communicator and checks it against the host tree over the
// members' vectors — group-rank addressing must survive the carve.
func TestSplitSubgroupCollective(t *testing.T) {
	const ranks, n = 8, 96
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 61)
	// Odd world ranks form the sub-communicator, ordered by rank.
	var members [][]float32
	for r := 1; r < ranks; r += 2 {
		members = append(members, vecs[r])
	}
	want := adasum.TreeReduce(members, layout)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		color := -1
		if p.Rank()%2 == 1 {
			color = 0
		}
		sub := New(p, g, Config{Strategy: StrategyRVH}).Split(color, p.Rank())
		if sub == nil {
			return nil
		}
		x := tensor.Clone(vecs[p.Rank()])
		sub.Adasum(x, layout)
		return x
	})
	for r := 1; r < ranks; r += 2 {
		if !tensor.Equal(results[r], want, 1e-4) {
			t.Fatalf("rank %d: split-subgroup Adasum != host tree", r)
		}
	}
	if results[0] != nil || results[2] != nil {
		t.Fatal("undefined-color rank produced output")
	}
}

// TestHierarchyMatchesLegacyBitwise pins the Split-composed hierarchy
// to the retired HierarchicalAdasum free function: identical floats AND
// identical virtual clocks, across node shapes and per-layer layouts.
// The legacy implementation is preserved below as the test-side
// reference.
func TestHierarchyMatchesLegacyBitwise(t *testing.T) {
	layout := tensor.NewLayout(
		[]string{"l0", "l1", "l2", "l3", "l4", "l5"},
		[]int{170, 30, 400, 90, 220, 110},
	)
	n := layout.TotalSize()
	for _, sh := range [][2]int{{2, 2}, {4, 2}, {2, 4}, {3, 4}, {4, 8}} {
		gpus, nodes := sh[0], sh[1]
		ranks := gpus * nodes
		vecs := randVecs(ranks, n, int64(ranks*7))
		model := simnet.TCP40(ranks)

		legacyClocks := make([]float64, ranks)
		legacyW := comm.NewWorld(ranks, model)
		g := WorldGroup(ranks)
		legacy := comm.RunCollect(legacyW, func(p *comm.Proc) []float32 {
			x := tensor.Clone(vecs[p.Rank()])
			legacyHierarchicalAdasum(p, g, x, layout, gpus)
			legacyClocks[p.Rank()] = p.Clock()
			return x
		})

		gotClocks := make([]float64, ranks)
		gotW := comm.NewWorld(ranks, model)
		got := comm.RunCollect(gotW, func(p *comm.Proc) []float32 {
			c := New(p, g, Config{Strategy: StrategyRVH})
			h := NewHierarchy(c, gpus)
			x := tensor.Clone(vecs[p.Rank()])
			h.Adasum(x, layout)
			gotClocks[p.Rank()] = p.Clock()
			return x
		})

		for r := range got {
			if !tensor.Equal(got[r], legacy[r], 0) {
				t.Fatalf("gpus=%d nodes=%d rank %d: Split-composed hierarchy not bitwise-equal to legacy", gpus, nodes, r)
			}
			if gotClocks[r] != legacyClocks[r] {
				t.Fatalf("gpus=%d nodes=%d rank %d: clock %v != legacy %v", gpus, nodes, r, gotClocks[r], legacyClocks[r])
			}
		}
	}
}

// TestHierarchySplitMatchesDirectConstruction: across every codec, the
// hierarchy built by Split must equal — bitwise — the same hierarchy
// assembled from explicitly constructed level communicators, proving
// the color/key exchange reproduces the direct group computation.
func TestHierarchySplitMatchesDirectConstruction(t *testing.T) {
	const gpus, nodes = 2, 4
	const ranks = gpus * nodes
	layout := tensor.NewLayout([]string{"a", "b", "c"}, []int{300, 500, 224})
	n := layout.TotalSize()
	for _, codec := range []compress.Codec{nil, compress.FP16(), compress.Int8(0), compress.TopK(0.1, true)} {
		vecs := randVecs(ranks, n, 91)
		g := WorldGroup(ranks)
		run := func(build func(c *Communicator, p *comm.Proc) *Hierarchy) [][]float32 {
			w := comm.NewWorld(ranks, nil)
			return comm.RunCollect(w, func(p *comm.Proc) []float32 {
				c := New(p, g, Config{Strategy: StrategyRVH, Compression: codec})
				h := build(c, p)
				x := tensor.Clone(vecs[p.Rank()])
				h.Adasum(x, layout)
				return x
			})
		}
		viaSplit := run(func(c *Communicator, p *comm.Proc) *Hierarchy {
			return NewHierarchy(c, gpus)
		})
		direct := run(func(c *Communicator, p *comm.Proc) *Hierarchy {
			me := c.Rank()
			node, local := me/gpus, me%gpus
			localGroup := make(Group, gpus)
			for i := range localGroup {
				localGroup[i] = g[node*gpus+i]
			}
			crossGroup := make(Group, nodes)
			for i := range crossGroup {
				crossGroup[i] = g[i*gpus+local]
			}
			cfg := Config{Strategy: StrategyRVH, Compression: codec}
			return &Hierarchy{
				scatter: []*Communicator{New(p, localGroup, cfg)},
				cross:   New(p, crossGroup, cfg),
			}
		})
		for r := range viaSplit {
			if !tensor.Equal(viaSplit[r], direct[r], 0) {
				t.Fatalf("codec=%v rank %d: Split-built hierarchy differs from direct construction", codec, r)
			}
		}
	}
}

// TestThreeLevelHierarchy checks the GPU/node/rack composition that
// falls out of nesting: gradients summed within each rack (in two
// scatter stages), Adasum across racks — validated against the
// host-side composition.
func TestThreeLevelHierarchy(t *testing.T) {
	const gpus, nodesPerRack, racks = 2, 2, 4
	const ranks = gpus * nodesPerRack * racks
	layout := tensor.NewLayout([]string{"a", "b", "c", "d"}, []int{40, 90, 25, 61})
	n := layout.TotalSize()
	vecs := randVecs(ranks, n, 111)

	perRack := gpus * nodesPerRack
	rackSums := make([][]float32, racks)
	for rk := 0; rk < racks; rk++ {
		rackSums[rk] = adasum.SumReduce(vecs[rk*perRack : (rk+1)*perRack])
	}
	want := adasum.TreeReduce(rackSums, layout)

	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		c := New(p, g, Config{Strategy: StrategyRVH})
		h := NewHierarchy(c, gpus, nodesPerRack)
		if h.Levels() != 3 {
			t.Errorf("expected 3 levels, got %d", h.Levels())
		}
		x := tensor.Clone(vecs[p.Rank()])
		h.Adasum(x, layout)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-3) {
			t.Fatalf("rank %d: 3-level hierarchy mismatch", r)
		}
	}
}

// TestHierarchyNonPowerOfTwoCross: a non-power-of-two outer domain
// count resolves (StrategyAuto) to the linear chain, which the old free
// function rejected — checked against the host composition.
func TestHierarchyNonPowerOfTwoCross(t *testing.T) {
	const gpus, nodes = 2, 3
	const ranks = gpus * nodes
	layout := tensor.NewLayout([]string{"a", "b"}, []int{37, 59})
	n := layout.TotalSize()
	vecs := randVecs(ranks, n, 121)
	nodeSums := make([][]float32, nodes)
	for nd := 0; nd < nodes; nd++ {
		nodeSums[nd] = adasum.SumReduce(vecs[nd*gpus : (nd+1)*gpus])
	}
	want := adasum.LinearReduce(nodeSums, layout)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		h := NewHierarchy(New(p, g, Config{}), gpus)
		x := tensor.Clone(vecs[p.Rank()])
		h.Adasum(x, layout)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-4) {
			t.Fatalf("rank %d: non-power-of-two cross mismatch", r)
		}
	}
}

// --------------------------------------------------------------------
// Legacy reference: the retired free-function implementation of
// HierarchicalAdasum (PR 1's in-place RVH on raw comm ops), preserved
// verbatim as the bitwise/clock baseline for the Split-composed
// hierarchy.

func legacyHierarchicalAdasum(p *comm.Proc, g Group, x []float32, layout tensor.Layout, gpusPerNode int) {
	n := len(g)
	if n%gpusPerNode != 0 {
		panic("legacy: group size not divisible by gpusPerNode")
	}
	nodes := n / gpusPerNode
	if nodes&(nodes-1) != 0 {
		panic("legacy: power-of-two node count required")
	}
	me := g.Pos(p.Rank())
	node := me / gpusPerNode
	local := me % gpusPerNode

	localGroup := make(Group, gpusPerNode)
	for i := range localGroup {
		localGroup[i] = g[node*gpusPerNode+i]
	}
	crossGroup := make(Group, nodes)
	for i := range crossGroup {
		crossGroup[i] = g[i*gpusPerNode+local]
	}

	ranges := layout.SplitLayerAligned(gpusPerNode)
	shard := legacyReduceScatterRing(p, localGroup, x, ranges)
	lo, hi := ranges[local][0], ranges[local][1]
	if nodes > 1 && hi > lo {
		legacyAdasumRVH(p, crossGroup, shard, layout.Window(lo, hi))
	} else if nodes > 1 {
		legacyAdasumRVH(p, crossGroup, shard, tensor.FlatLayout(0))
	}
	legacyAllgatherRing(p, localGroup, x, ranges)
}

func legacyReduceScatterRing(p *comm.Proc, g Group, x []float32, ranges [][2]int) []float32 {
	n := len(g)
	me := g.Pos(p.Rank())
	if n == 1 {
		return x[ranges[0][0]:ranges[0][1]]
	}
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s-1)%n + n) % n
		recvIdx := ((me-s-2)%n + n) % n
		p.Send(next, x[ranges[sendIdx][0]:ranges[sendIdx][1]])
		got := p.Recv(prev)
		dst := x[ranges[recvIdx][0]:ranges[recvIdx][1]]
		for i := range dst {
			dst[i] += got[i]
		}
		p.Release(got)
		p.ComputeReduce(4 * int64(len(dst)))
	}
	return x[ranges[me][0]:ranges[me][1]]
}

func legacyAllgatherRing(p *comm.Proc, g Group, x []float32, ranges [][2]int) {
	n := len(g)
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		p.Send(next, x[ranges[sendIdx][0]:ranges[sendIdx][1]])
		p.RecvInto(prev, x[ranges[recvIdx][0]:ranges[recvIdx][1]])
	}
}

func legacyAdasumRVH(p *comm.Proc, g Group, x []float32, layout tensor.Layout) {
	if !g.IsPowerOfTwo() {
		panic("legacy: AdasumRVH requires a power-of-two group")
	}
	if len(g) == 1 {
		return
	}
	dots := p.ScratchMeta(3 * layout.NumLayers())
	legacyAdasumRVHRec(p, g, x, 0, len(x), 1, layout, dots)
	p.ReleaseMeta(dots)
}

func legacyAdasumRVHRec(p *comm.Proc, g Group, x []float32, lo, hi, d int, layout tensor.Layout, dots []float64) {
	mid := lo + tensor.HalfSplit(hi-lo)
	gpos := g.Pos(p.Rank())
	left := (gpos/d)%2 == 0

	var a, b, dst, recv []float32
	var nghr, nlo, nhi int
	if left {
		nghr = gpos + d
		p.Send(g[nghr], x[mid:hi])
		recv = p.Recv(g[nghr])
		a, b, dst = x[lo:mid], recv, x[lo:mid]
		nlo, nhi = lo, mid
	} else {
		nghr = gpos - d
		p.Send(g[nghr], x[lo:mid])
		recv = p.Recv(g[nghr])
		a, b, dst = recv, x[mid:hi], x[mid:hi]
		nlo, nhi = mid, hi
	}

	d2 := 2 * d
	adasum.WindowDots(dots, a, b, nlo, layout)
	p.ComputeReduce(3 * 4 * int64(len(a)))
	base := gpos / d2 * d2
	rel := gpos - base
	if d2 > 1 {
		for mask := 1; mask < d2; mask <<= 1 {
			peer := g[base+(rel^mask)]
			got := p.SendRecvMeta(peer, dots)
			for i := range dots {
				dots[i] += got[i]
			}
			p.ReleaseMeta(got)
		}
	}

	adasum.CombineWindow(dst, a, b, nlo, layout, dots)
	p.ComputeReduce(2 * 4 * int64(len(a)))
	p.Release(recv)

	if d2 < len(g) {
		legacyAdasumRVHRec(p, g, x, nlo, nhi, d2, layout, dots)
	}

	p.Send(g[nghr], x[nlo:nhi])
	if left {
		p.RecvInto(g[nghr], x[mid:hi])
	} else {
		p.RecvInto(g[nghr], x[lo:mid])
	}
}

// TestSplitOnSparseAsyncPlane runs the whole Split — its control-plane
// color/key exchange and the subgroup collective after it — inside an
// asynchronous op, i.e. on a nonzero channel plane whose link space
// starts completely empty. On the sparse fabric every ctl and data
// message of the carve must materialize its own links lazily; the test
// pins that construction traffic against the host-tree reference just
// like the foreground Split test does.
func TestSplitOnSparseAsyncPlane(t *testing.T) {
	const ranks, n = 8, 96
	layout := tensor.FlatLayout(n)
	vecs := randVecs(ranks, n, 67)
	var members [][]float32
	for r := 0; r < ranks; r += 2 {
		members = append(members, vecs[r])
	}
	want := adasum.TreeReduce(members, layout)
	w := comm.NewWorld(ranks, simnet.TCP40(ranks))
	g := WorldGroup(ranks)
	results := make([][]float32, ranks)
	w.Run(func(p *comm.Proc) {
		h := p.Launch(3, nil, func(ap *comm.Proc) {
			color := -1
			if ap.Rank()%2 == 0 {
				color = 0
			}
			sub := New(ap, g, Config{Strategy: StrategyRVH}).Split(color, ap.Rank())
			if sub == nil {
				return
			}
			x := tensor.Clone(vecs[ap.Rank()])
			sub.Adasum(x, layout)
			results[ap.Rank()] = x
		})
		h.Wait(p)
	})
	for r := 0; r < ranks; r += 2 {
		if !tensor.Equal(results[r], want, 1e-4) {
			t.Fatalf("rank %d: async-plane split Adasum != host tree", r)
		}
	}
	for r := 1; r < ranks; r += 2 {
		if results[r] != nil {
			t.Fatalf("undefined-color rank %d produced output", r)
		}
	}
}
