package collective

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Repeated collectives on one World must give identical results every
// iteration: the buffer pool recycles transport buffers and the dot
// scratch across runs, and none of that state may leak between
// iterations.
func TestAdasumRVHRepeatedRunsIdentical(t *testing.T) {
	const ranks, n = 8, 1 << 10
	layout := tensor.NewLayout([]string{"a", "b"}, []int{700, n - 700})
	rng := rand.New(rand.NewSource(5))
	inputs := make([][]float32, ranks)
	for i := range inputs {
		inputs[i] = make([]float32, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float32() - 0.5
		}
	}
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	var first [][]float32
	for iter := 0; iter < 5; iter++ {
		res := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			AdasumRVH(p, g, x, layout)
			return x
		})
		if iter == 0 {
			first = res
			continue
		}
		for r := range res {
			if !tensor.Equal(res[r], first[r], 0) {
				t.Fatalf("iteration %d rank %d diverged from first run", iter, r)
			}
		}
	}
}

// Mixing different collectives on the same World exercises pool reuse
// across message shapes (float32 payloads of several sizes plus float64
// side payloads).
func TestMixedCollectivesShareWorld(t *testing.T) {
	const ranks, n = 4, 513 // odd size: unequal ring chunks
	layout := tensor.FlatLayout(n)
	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, ranks)
	for i := range inputs {
		inputs[i] = make([]float32, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float32() - 0.5
		}
	}
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)

	runRing := func() [][]float32 {
		return comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			RingAllreduceSum(p, g, x)
			return x
		})
	}
	runRVH := func() [][]float32 {
		return comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			AdasumRVH(p, g, x, layout)
			return x
		})
	}
	ring1, rvh1 := runRing(), runRVH()
	ring2, rvh2 := runRing(), runRVH()
	for r := 0; r < ranks; r++ {
		if !tensor.Equal(ring1[r], ring2[r], 0) {
			t.Fatalf("ring results changed between runs on rank %d", r)
		}
		if !tensor.Equal(rvh1[r], rvh2[r], 0) {
			t.Fatalf("AdasumRVH results changed between runs on rank %d", r)
		}
	}
}

func TestEqualChunkMatchesEqualRanges(t *testing.T) {
	for _, tc := range [][2]int{{100, 3}, {16, 16}, {17, 4}, {5, 8}, {0, 2}, {1024, 7}} {
		n, parts := tc[0], tc[1]
		ranges := equalRanges(n, parts)
		for i := 0; i < parts; i++ {
			lo, hi := equalChunk(n, parts, i)
			if lo != ranges[i][0] || hi != ranges[i][1] {
				t.Errorf("equalChunk(%d,%d,%d) = [%d,%d), table says [%d,%d)",
					n, parts, i, lo, hi, ranges[i][0], ranges[i][1])
			}
		}
	}
}
