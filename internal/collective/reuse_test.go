package collective

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Repeated collectives on one World must give identical results every
// iteration: the buffer pool recycles transport buffers and the dot
// scratch across runs, and none of that state may leak between
// iterations.
func TestAdasumRVHRepeatedRunsIdentical(t *testing.T) {
	const ranks, n = 8, 1 << 10
	layout := tensor.NewLayout([]string{"a", "b"}, []int{700, n - 700})
	rng := rand.New(rand.NewSource(5))
	inputs := make([][]float32, ranks)
	for i := range inputs {
		inputs[i] = make([]float32, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float32() - 0.5
		}
	}
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	var first [][]float32
	for iter := 0; iter < 5; iter++ {
		res := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyRVH).Adasum(x, layout)
			return x
		})
		if iter == 0 {
			first = res
			continue
		}
		for r := range res {
			if !tensor.Equal(res[r], first[r], 0) {
				t.Fatalf("iteration %d rank %d diverged from first run", iter, r)
			}
		}
	}
}

// Mixing different collectives on the same World exercises pool reuse
// across message shapes (float32 payloads of several sizes plus float64
// side payloads).
func TestMixedCollectivesShareWorld(t *testing.T) {
	const ranks, n = 4, 513 // odd size: unequal ring chunks
	layout := tensor.FlatLayout(n)
	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, ranks)
	for i := range inputs {
		inputs[i] = make([]float32, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float32() - 0.5
		}
	}
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)

	runRing := func() [][]float32 {
		return comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyRing).AllreduceSum(x)
			return x
		})
	}
	runRVH := func() [][]float32 {
		return comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyRVH).Adasum(x, layout)
			return x
		})
	}
	ring1, rvh1 := runRing(), runRVH()
	ring2, rvh2 := runRing(), runRVH()
	for r := 0; r < ranks; r++ {
		if !tensor.Equal(ring1[r], ring2[r], 0) {
			t.Fatalf("ring results changed between runs on rank %d", r)
		}
		if !tensor.Equal(rvh1[r], rvh2[r], 0) {
			t.Fatalf("AdasumRVH results changed between runs on rank %d", r)
		}
	}
}

// TestBroadcastIntoGatherIntoReuse drives the pooled Into variants
// repeatedly over one World with fixed destination buffers: results
// must be identical every iteration (no pool-state leakage) and the
// source vectors must never be clobbered. Together with
// BenchmarkCommunicatorBroadcastGather16Ranks this pins the
// steady-state 0 allocs/op contract of the Into variants.
func TestBroadcastIntoGatherIntoReuse(t *testing.T) {
	const ranks, n = 8, 700
	rng := rand.New(rand.NewSource(17))
	src := make([]float32, n)
	for i := range src {
		src[i] = rng.Float32() - 0.5
	}
	srcCopy := tensor.Clone(src)
	mine := make([][]float32, ranks)
	for r := range mine {
		mine[r] = make([]float32, n)
		for i := range mine[r] {
			mine[r][i] = float32(r) + float32(i)*1e-3
		}
	}
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	comms := make([]*Communicator, ranks)
	dsts := make([][]float32, ranks)
	rows := make([][][]float32, ranks)
	w.Run(func(p *comm.Proc) {
		comms[p.Rank()] = New(p, g, Config{})
		dsts[p.Rank()] = make([]float32, n)
		rows[p.Rank()] = make([][]float32, ranks)
		for i := range rows[p.Rank()] {
			rows[p.Rank()][i] = make([]float32, n)
		}
	})
	for iter := 0; iter < 5; iter++ {
		w.Run(func(p *comm.Proc) {
			c := comms[p.Rank()]
			var bsrc []float32
			if c.Rank() == 2 {
				bsrc = src
			}
			c.BroadcastInto(2, dsts[p.Rank()], bsrc)
			c.GatherInto(3, mine[p.Rank()], rows[p.Rank()])
		})
		for r := range dsts {
			if !tensor.Equal(dsts[r], src, 0) {
				t.Fatalf("iter %d rank %d: BroadcastInto result differs from source", iter, r)
			}
		}
		if !tensor.Equal(src, srcCopy, 0) {
			t.Fatalf("iter %d: BroadcastInto mutated the root's source", iter)
		}
		for i := 0; i < ranks; i++ {
			if !tensor.Equal(rows[3][i], mine[i], 0) {
				t.Fatalf("iter %d: GatherInto row %d differs from member vector", iter, i)
			}
		}
	}
}

// TestGatherIntoMatchesGather cross-checks the pooled variant against
// the allocating one, root at an interior position.
func TestGatherIntoMatchesGather(t *testing.T) {
	const ranks, n = 5, 33
	inputs := makeInputs(71, ranks, n)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	gathered := comm.RunCollect(w, func(p *comm.Proc) [][]float32 {
		return C(p, g, StrategyAuto).Gather(1, inputs[p.Rank()])
	})
	into := make([][]float32, ranks)
	for i := range into {
		into[i] = make([]float32, n)
	}
	w.Run(func(p *comm.Proc) {
		var dst [][]float32
		if p.Rank() == g[1] {
			dst = into
		}
		C(p, g, StrategyAuto).GatherInto(1, inputs[p.Rank()], dst)
	})
	for i := range into {
		if !tensor.Equal(into[i], gathered[1][i], 0) {
			t.Fatalf("row %d: GatherInto differs from Gather", i)
		}
	}
}

func TestEqualChunkMatchesEqualRanges(t *testing.T) {
	for _, tc := range [][2]int{{100, 3}, {16, 16}, {17, 4}, {5, 8}, {0, 2}, {1024, 7}} {
		n, parts := tc[0], tc[1]
		ranges := equalRanges(n, parts)
		for i := 0; i < parts; i++ {
			lo, hi := equalChunk(n, parts, i)
			if lo != ranges[i][0] || hi != ranges[i][1] {
				t.Errorf("equalChunk(%d,%d,%d) = [%d,%d), table says [%d,%d)",
					n, parts, i, lo, hi, ranges[i][0], ranges[i][1])
			}
		}
	}
}
