package collective

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func randGrads(ranks, n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for r := range out {
		out[r] = make([]float32, n)
		for i := range out[r] {
			out[r][i] = rng.Float32() - 0.5
		}
	}
	return out
}

// TestTreeAdasumBitwiseParity checks the distributed tree allreduce
// against the host-side Reducer at zero tolerance, across power-of-two
// and odd group sizes, flat and per-layer layouts.
func TestTreeAdasumBitwiseParity(t *testing.T) {
	layPer := tensor.NewLayout([]string{"a", "b", "c"}, []int{7, 64, 29})
	layFlat := tensor.FlatLayout(100)
	for _, ranks := range []int{1, 2, 3, 4, 5, 6, 7, 8, 16} {
		for name, layout := range map[string]tensor.Layout{"flat": layFlat, "per-layer": layPer} {
			grads := randGrads(ranks, layout.TotalSize(), int64(ranks)*10+1)
			want := adasum.TreeReduce(grads, layout)

			w := comm.NewWorld(ranks, nil)
			g := WorldGroup(ranks)
			results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
				x := tensor.Clone(grads[p.Rank()])
				C(p, g, StrategyTree).Adasum(x, layout)
				return x
			})
			for r, got := range results {
				if !tensor.Equal(got, want, 0) {
					t.Fatalf("ranks=%d layout=%s rank=%d: not bitwise-equal to host tree",
						ranks, name, r)
				}
			}
		}
	}
}

// TestTreeAdasumSubgroup runs the collective on a strided subgroup to
// check group-rank (not world-rank) addressing.
func TestTreeAdasumSubgroup(t *testing.T) {
	layout := tensor.FlatLayout(33)
	const world = 8
	g := Group{1, 3, 5, 7}
	grads := randGrads(len(g), layout.TotalSize(), 77)
	want := adasum.TreeReduce(grads, layout)

	w := comm.NewWorld(world, nil)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		if !g.Contains(p.Rank()) {
			return nil
		}
		x := tensor.Clone(grads[g.Pos(p.Rank())])
		C(p, g, StrategyTree).Adasum(x, layout)
		return x
	})
	for _, r := range g {
		if !tensor.Equal(results[r], want, 0) {
			t.Fatalf("rank %d: subgroup result differs from host tree", r)
		}
	}
}

// TestTreeAdasumClocks sanity-checks the virtual time: log2(p) full-
// vector exchanges under a uniform alpha-only model.
func TestTreeAdasumClocks(t *testing.T) {
	const ranks = 8
	layout := tensor.FlatLayout(16)
	grads := randGrads(ranks, 16, 5)
	w := comm.NewWorld(ranks, simnet.Uniform(ranks, 1.0, 0))
	g := WorldGroup(ranks)
	total := comm.MaxClock(w, func(p *comm.Proc) {
		x := tensor.Clone(grads[p.Rank()])
		C(p, g, StrategyTree).Adasum(x, layout)
	})
	// Symmetric recursive doubling: 3 levels, each one exchange of cost 1.
	if total != 3 {
		t.Fatalf("simulated time %v, want 3 (log2(8) unit exchanges)", total)
	}
}
