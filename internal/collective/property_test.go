package collective

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/tensor"
)

// TestRandomizedShapesAdasumRVH fuzzes Algorithm 1 against the host tree
// across random rank counts, vector lengths and layer layouts.
func TestRandomizedShapesAdasumRVH(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	powers := []int{2, 4, 8, 16, 32, 64}
	for trial := 0; trial < 25; trial++ {
		ranks := powers[rng.Intn(len(powers))]
		nLayers := rng.Intn(6) + 1
		names := make([]string, nLayers)
		sizes := make([]int, nLayers)
		for i := range sizes {
			names[i] = "l"
			sizes[i] = rng.Intn(40) // zero-sized layers allowed
		}
		layout := tensor.NewLayout(names, sizes)
		n := layout.TotalSize()
		if n == 0 {
			continue
		}
		inputs := make([][]float32, ranks)
		for r := range inputs {
			v := make([]float32, n)
			for j := range v {
				v[j] = rng.Float32()*4 - 2
			}
			inputs[r] = v
		}
		want := adasum.TreeReduce(inputs, layout)
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyRVH).Adasum(x, layout)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, want, 1e-3) {
				t.Fatalf("trial %d (ranks=%d n=%d layers=%d) rank %d mismatch",
					trial, ranks, n, nLayers, r)
			}
		}
	}
}

// TestRandomizedShapesHierarchical fuzzes the hierarchical composition.
func TestRandomizedShapesHierarchical(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	shapes := [][2]int{{2, 2}, {3, 2}, {4, 2}, {2, 4}, {5, 4}, {4, 8}}
	for trial := 0; trial < 15; trial++ {
		sh := shapes[rng.Intn(len(shapes))]
		gpus, nodes := sh[0], sh[1]
		ranks := gpus * nodes
		nLayers := rng.Intn(4) + 1
		names := make([]string, nLayers)
		sizes := make([]int, nLayers)
		for i := range sizes {
			names[i] = "l"
			sizes[i] = rng.Intn(30) + 1
		}
		layout := tensor.NewLayout(names, sizes)
		n := layout.TotalSize()
		inputs := make([][]float32, ranks)
		for r := range inputs {
			v := make([]float32, n)
			for j := range v {
				v[j] = rng.Float32()*2 - 1
			}
			inputs[r] = v
		}
		nodeSums := make([][]float32, nodes)
		for nd := 0; nd < nodes; nd++ {
			nodeSums[nd] = adasum.SumReduce(inputs[nd*gpus : (nd+1)*gpus])
		}
		want := adasum.TreeReduce(nodeSums, layout)
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			NewHierarchy(C(p, g, StrategyRVH), gpus).Adasum(x, layout)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, want, 1e-3) {
				t.Fatalf("trial %d (gpus=%d nodes=%d n=%d) rank %d mismatch",
					trial, gpus, nodes, n, r)
			}
		}
	}
}

// TestRandomizedRingSum fuzzes the ring allreduce against a serial sum
// for arbitrary (including non-power-of-two) group sizes.
func TestRandomizedRingSum(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 25; trial++ {
		ranks := rng.Intn(15) + 1
		n := rng.Intn(200) + 1
		inputs := make([][]float32, ranks)
		for r := range inputs {
			v := make([]float32, n)
			for j := range v {
				v[j] = rng.Float32() - 0.5
			}
			inputs[r] = v
		}
		want := tensor.Clone(inputs[0])
		for _, g := range inputs[1:] {
			tensor.Axpy(1, g, want)
		}
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyRing).AllreduceSum(x)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, want, 1e-4) {
				t.Fatalf("trial %d (ranks=%d n=%d) rank %d mismatch", trial, ranks, n, r)
			}
		}
	}
}

// TestGroupSubsetCollectives runs a collective on a strict subset of the
// world — ranks outside the group stay idle — validating that group
// indexing never leaks into world-rank arithmetic.
func TestGroupSubsetCollectives(t *testing.T) {
	world := comm.NewWorld(8, nil)
	g := Group{1, 3, 5, 7} // odd ranks only
	n := 16
	inputs := make([][]float32, 8)
	rng := rand.New(rand.NewSource(404))
	for r := range inputs {
		v := make([]float32, n)
		for j := range v {
			v[j] = rng.Float32()
		}
		inputs[r] = v
	}
	members := [][]float32{inputs[1], inputs[3], inputs[5], inputs[7]}
	want := adasum.TreeReduce(members, tensor.FlatLayout(n))
	results := comm.RunCollect(world, func(p *comm.Proc) []float32 {
		if !g.Contains(p.Rank()) {
			return nil // idle rank
		}
		x := tensor.Clone(inputs[p.Rank()])
		C(p, g, StrategyRVH).Adasum(x, tensor.FlatLayout(n))
		return x
	})
	for _, r := range g {
		if !tensor.Equal(results[r], want, 1e-4) {
			t.Fatalf("subset collective mismatch at world rank %d", r)
		}
	}
	if results[0] != nil || results[2] != nil {
		t.Fatal("idle rank produced output")
	}
}
