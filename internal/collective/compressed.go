package collective

import (
	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/tensor"
)

// Codec-aware collectives: the same exchange patterns as their plain
// counterparts, but every gradient payload is encoded through a
// compress.Stream before it hits the wire and decoded on arrival, so the
// virtual clock, the wire-byte meter and the transport pool all see
// compressed sizes. Three invariants:
//
//   - the per-layer dot-product statistics feeding Adasum's scaled
//     combine are computed on the decompressed values each rank actually
//     combines, so the coefficients stay exact for the arithmetic that
//     is really applied (the float64 dot-product side payloads
//     themselves are tiny and travel uncompressed);
//   - a nil stream (or a None codec) delegates to the plain collective,
//     keeping the uncompressed paths bitwise- and clock-identical;
//   - every rank drives its stream through a deterministic encode-site
//     sequence per step, so error-feedback residuals (TopK) are carried
//     per rank, per site, across steps.
//
// With a lossy codec the ranks of a group may finish holding slightly
// different decoded copies of the combined gradient (each decode of a
// finished chunk re-quantizes it); the trainer consumes rank 0's copy,
// matching how lossy allgather phases behave in real systems.

// CompressedTreeAdasum is TreeAdasum with per-hop payload compression.
func CompressedTreeAdasum(p *comm.Proc, g Group, x []float32, layout tensor.Layout, st *compress.Stream) {
	if st == nil || compress.IsNone(st.Codec()) {
		TreeAdasum(p, g, x, layout)
		return
	}
	if layout.TotalSize() != len(x) {
		panic("collective: CompressedTreeAdasum layout does not cover x")
	}
	n := len(g)
	if n == 1 {
		return
	}
	c := st.Codec()
	pos := g.Pos(p.Rank())
	buf := p.Scratch(len(x))
	if g.IsPowerOfTwo() {
		for d := 1; d < n; d <<= 1 {
			peer := g[pos^d]
			p.SendCompressed(peer, x, st)
			p.RecvCompressed(peer, c, buf)
			if pos&d == 0 {
				adasum.CombineLayers(x, x, buf, layout)
			} else {
				adasum.CombineLayers(x, buf, x, layout)
			}
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
		p.Release(buf)
		return
	}
	for d := 1; d < n; d <<= 1 {
		if pos%(2*d) == d {
			p.SendCompressed(g[pos-d], x, st)
			break
		}
		if pos+d < n {
			p.RecvCompressed(g[pos+d], c, buf)
			adasum.CombineLayers(x, x, buf, layout)
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
	}
	p.Release(buf)
	compressedBroadcast(p, g, 0, x, st)
}

// CompressedAdasumRVH is AdasumRVH (Algorithm 1) with per-hop payload
// compression on the halving exchanges and the doubling unwind. The
// small-vector dot-product allreduce stays uncompressed.
func CompressedAdasumRVH(p *comm.Proc, g Group, x []float32, layout tensor.Layout, st *compress.Stream) {
	if st == nil || compress.IsNone(st.Codec()) {
		AdasumRVH(p, g, x, layout)
		return
	}
	if !g.IsPowerOfTwo() {
		panic("collective: CompressedAdasumRVH requires a power-of-two group")
	}
	if layout.TotalSize() != len(x) {
		panic("collective: CompressedAdasumRVH layout does not cover x")
	}
	if len(g) == 1 {
		return
	}
	dots := p.ScratchMeta(3 * layout.NumLayers())
	compressedRVHRec(p, g, x, 0, len(x), 1, layout, dots, st)
	p.ReleaseMeta(dots)
}

// compressedRVHRec mirrors adasumRVHRec with compressed halving and
// unwind payloads; the received half is decoded into pooled scratch, and
// the per-layer dots are taken over the decoded values so the combine's
// coefficients match the operands in use.
func compressedRVHRec(p *comm.Proc, g Group, x []float32, lo, hi, d int, layout tensor.Layout, dots []float64, st *compress.Stream) {
	c := st.Codec()
	mid := lo + tensor.HalfSplit(hi-lo)
	gpos := g.Pos(p.Rank())
	left := (gpos/d)%2 == 0

	var a, b, dst, recv []float32
	var nghr, nlo, nhi int
	if left {
		nghr = gpos + d
		p.SendCompressed(g[nghr], x[mid:hi], st)
		recv = p.Scratch(mid - lo)
		p.RecvCompressed(g[nghr], c, recv)
		a, b, dst = x[lo:mid], recv, x[lo:mid]
		nlo, nhi = lo, mid
	} else {
		nghr = gpos - d
		p.SendCompressed(g[nghr], x[lo:mid], st)
		recv = p.Scratch(hi - mid)
		p.RecvCompressed(g[nghr], c, recv)
		a, b, dst = recv, x[mid:hi], x[mid:hi]
		nlo, nhi = mid, hi
	}

	d2 := 2 * d
	adasum.WindowDots(dots, a, b, nlo, layout)
	p.ComputeReduce(3 * 4 * int64(len(a)))
	base := gpos / d2 * d2
	allreduceF64RD(p, g, base, d2, dots)

	adasum.CombineWindow(dst, a, b, nlo, layout, dots)
	p.ComputeReduce(2 * 4 * int64(len(a)))
	p.Release(recv)

	if d2 < len(g) {
		compressedRVHRec(p, g, x, nlo, nhi, d2, layout, dots, st)
	}

	// Doubling unwind: exchange finished halves, compressed.
	p.SendCompressed(g[nghr], x[nlo:nhi], st)
	if left {
		p.RecvCompressed(g[nghr], c, x[mid:hi])
	} else {
		p.RecvCompressed(g[nghr], c, x[lo:mid])
	}
}

// CompressedRingAllreduceMean is RingAllreduceMean with per-hop payload
// compression on both the reduce-scatter and the allgather phases.
func CompressedRingAllreduceMean(p *comm.Proc, g Group, x []float32, st *compress.Stream) {
	if st == nil || compress.IsNone(st.Codec()) {
		RingAllreduceMean(p, g, x)
		return
	}
	if len(g) > 1 {
		bounds := equalBounds(len(x), len(g))
		compressedReduceScatterRing(p, g, x, bounds, st)
		compressedAllgatherRing(p, g, x, bounds, st)
	}
	tensor.Scale(1/float32(len(g)), x)
}

// compressedReduceScatterRing mirrors reduceScatterRing: each hop's chunk
// is encoded for the wire and decoded into pooled scratch before the
// accumulation.
func compressedReduceScatterRing(p *comm.Proc, g Group, x []float32, bounds boundsFn, st *compress.Stream) {
	n := len(g)
	me := g.Pos(p.Rank())
	c := st.Codec()
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s-1)%n + n) % n
		recvIdx := ((me-s-2)%n + n) % n
		slo, shi := bounds(sendIdx)
		p.SendCompressed(next, x[slo:shi], st)
		rlo, rhi := bounds(recvIdx)
		got := p.Scratch(rhi - rlo)
		p.RecvCompressed(prev, c, got)
		dst := x[rlo:rhi]
		for i := range dst {
			dst[i] += got[i]
		}
		p.Release(got)
		p.ComputeReduce(4 * int64(rhi-rlo))
	}
}

// compressedAllgatherRing mirrors allgatherRing with compressed chunk
// payloads decoded straight into their home positions.
func compressedAllgatherRing(p *comm.Proc, g Group, x []float32, bounds boundsFn, st *compress.Stream) {
	n := len(g)
	me := g.Pos(p.Rank())
	c := st.Codec()
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		slo, shi := bounds(sendIdx)
		p.SendCompressed(next, x[slo:shi], st)
		rlo, rhi := bounds(recvIdx)
		p.RecvCompressed(prev, c, x[rlo:rhi])
	}
}

// compressedBroadcast mirrors Broadcast with compressed payloads.
func compressedBroadcast(p *comm.Proc, g Group, root int, x []float32, st *compress.Stream) {
	n := len(g)
	if n == 1 {
		return
	}
	c := st.Codec()
	gpos := g.Pos(p.Rank())
	rel := (gpos - root + n) % n
	received := rel == 0
	for step := 1; step < n; step <<= 1 {
		if rel < step && rel+step < n {
			if !received {
				panic("collective: broadcast internal ordering error")
			}
			p.SendCompressed(g[(root+rel+step)%n], x, st)
		} else if rel >= step && rel < 2*step {
			src := g[(root+rel-step)%n]
			p.RecvCompressed(src, c, x)
			received = true
		}
	}
}
