// Package collective implements the allreduce algorithms that carry
// Adasum in Horovod's backend (§4.2 of the paper) behind an MPI/NCCL-
// style Communicator: an object binding a comm.Proc endpoint to a
// Group, selected-by-Strategy collectives as methods, and Split for
// carving sub-communicators with MPI_Comm_split semantics. The
// algorithms:
//
//   - ring allreduce with elementwise sum — the "NCCL sum" baseline of
//     Figure 4;
//   - recursive vector halving/doubling with elementwise sum;
//   - Adasum over recursive vector halving, the modified algorithm of
//     Algorithm 1, which inserts a small-vector allreduce of per-layer
//     dot products between the halving exchange and the combine;
//   - Adasum over recursive doubling (the parity tree), bitwise-equal
//     to the host-side adasum.Reducer;
//   - a linear (chained) Adasum, the latency-suboptimal variant §4.2.3
//     found slower than RVH;
//   - the hierarchical scheme of §4.2.2 as communicator composition
//     (Hierarchy): reduce-scatter (sum) within each scatter domain,
//     Adasum across the outermost level on layer-aligned shards,
//     allgathers unwinding — nesting to GPU/node/rack and beyond.
//
// Every collective runs on one codec-aware code path: a Communicator
// built with a compress.Codec encodes each gradient hop for the wire
// and decodes on arrival, while a nil/None codec is bitwise- and
// virtual-clock-identical to the plain substrate.
//
// The recursive-vector-halving collectives operate fully in place: every
// rank keeps its working window inside the caller's buffer at its home
// offset, the allgather unwind receives peer halves straight into
// position, and transport buffers plus the per-layer dot-product scratch
// are recycled through the World's pool — a steady-state collective
// performs no allocation. See DESIGN.md.
package collective

import "fmt"

// Group is an ordered list of world ranks forming a sub-communicator.
// A rank's position in the slice is its "group rank".
type Group []int

// WorldGroup returns the group [0, 1, ..., size-1].
func WorldGroup(size int) Group {
	g := make(Group, size)
	for i := range g {
		g[i] = i
	}
	return g
}

// Pos returns the group rank of world rank r, panicking if r is not a
// member. The scan is O(n); a Communicator caches this lookup in a map
// built once at construction, which is what the collective hot paths
// use.
func (g Group) Pos(r int) int {
	for i, v := range g {
		if v == r {
			return i
		}
	}
	panic(fmt.Sprintf("collective: rank %d not in group %v", r, g))
}

// Contains reports whether world rank r is a member of the group.
func (g Group) Contains(r int) bool {
	for _, v := range g {
		if v == r {
			return true
		}
	}
	return false
}

// IsPowerOfTwo reports whether the group size is a power of two, a
// requirement of the recursive-vector-halving algorithms (Algorithm 1
// assumes "size > 2 is a power-of-two"; we additionally accept 1 and 2).
func (g Group) IsPowerOfTwo() bool {
	n := len(g)
	return n > 0 && n&(n-1) == 0
}
