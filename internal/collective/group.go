// Package collective implements the allreduce algorithms that carry
// Adasum in Horovod's backend (§4.2 of the paper):
//
//   - ring allreduce with elementwise sum — the "NCCL sum" baseline of
//     Figure 4;
//   - recursive vector halving/doubling with elementwise sum;
//   - AdasumRVH, the modified recursive-vector-halving algorithm of
//     Algorithm 1, which inserts a small-vector allreduce of per-layer
//     dot products between the halving exchange and the combine;
//   - a linear (chained) Adasum, the latency-suboptimal variant §4.2.3
//     found slower than RVH;
//   - the hierarchical scheme of §4.2.2: intra-node reduce-scatter (sum),
//     cross-node AdasumRVH on layer-aligned shards, intra-node allgather.
//
// All collectives run on comm.Proc endpoints and operate within a Group,
// an ordered subset of world ranks, so hierarchical variants can build
// sub-communicators.
//
// The recursive-vector-halving collectives operate fully in place: every
// rank keeps its working window inside the caller's buffer at its home
// offset, the allgather unwind receives peer halves straight into
// position, and transport buffers plus the per-layer dot-product scratch
// are recycled through the World's pool — a steady-state collective
// performs no allocation. See DESIGN.md.
package collective

import "fmt"

// Group is an ordered list of world ranks forming a sub-communicator.
// A rank's position in the slice is its "group rank".
type Group []int

// WorldGroup returns the group [0, 1, ..., size-1].
func WorldGroup(size int) Group {
	g := make(Group, size)
	for i := range g {
		g[i] = i
	}
	return g
}

// Pos returns the group rank of world rank r, panicking if r is not a
// member.
func (g Group) Pos(r int) int {
	for i, v := range g {
		if v == r {
			return i
		}
	}
	panic(fmt.Sprintf("collective: rank %d not in group %v", r, g))
}

// Contains reports whether world rank r is a member of the group.
func (g Group) Contains(r int) bool {
	for _, v := range g {
		if v == r {
			return true
		}
	}
	return false
}

// IsPowerOfTwo reports whether the group size is a power of two, a
// requirement of the recursive-vector-halving algorithms (Algorithm 1
// assumes "size > 2 is a power-of-two"; we additionally accept 1 and 2).
func (g Group) IsPowerOfTwo() bool {
	n := len(g)
	return n > 0 && n&(n-1) == 0
}
