package collective

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// TestSplitSkipsDeadMembers is the survivor-rebuild primitive: after a
// rank dies, the remaining members re-split the world communicator with
// one shared color and the dead rank falls out of the resulting group.
func TestSplitSkipsDeadMembers(t *testing.T) {
	w := comm.NewWorld(4, nil)
	w.DeclareDead(2)
	groups := make([]Group, 4)
	if err := w.RunErr(func(p *comm.Proc) {
		c := New(p, WorldGroup(4), Config{})
		nc := c.Split(0, p.Rank())
		groups[p.Rank()] = nc.Group()
	}); err != nil {
		t.Fatalf("survivor split failed: %v", err)
	}
	want := Group{0, 1, 3}
	for _, r := range want {
		g := groups[r]
		if len(g) != 3 || g[0] != 0 || g[1] != 1 || g[2] != 3 {
			t.Fatalf("rank %d split group = %v, want %v", r, g, want)
		}
	}
}

// TestSplitSkipsDeadRoot covers the harder case: the group's position-0
// member (the old exchange root) is the dead one, so the first alive
// member must take over as root.
func TestSplitSkipsDeadRoot(t *testing.T) {
	w := comm.NewWorld(4, nil)
	w.DeclareDead(0)
	groups := make([]Group, 4)
	if err := w.RunErr(func(p *comm.Proc) {
		c := New(p, WorldGroup(4), Config{})
		nc := c.Split(0, p.Rank())
		groups[p.Rank()] = nc.Group()
	}); err != nil {
		t.Fatalf("survivor split with dead root failed: %v", err)
	}
	for _, r := range []int{1, 2, 3} {
		g := groups[r]
		if len(g) != 3 || g[0] != 1 || g[1] != 2 || g[2] != 3 {
			t.Fatalf("rank %d split group = %v, want [1 2 3]", r, g)
		}
	}
}

// TestSurvivorCommunicatorReduces: the group produced by a dead-skipping
// Split is a fully working communicator — the survivors run an Adasum
// on it and every survivor finishes with the same combined vector.
func TestSurvivorCommunicatorReduces(t *testing.T) {
	w := comm.NewWorld(4, nil)
	w.DeclareDead(1)
	out := make([][]float32, 4)
	if err := w.RunErr(func(p *comm.Proc) {
		c := New(p, WorldGroup(4), Config{Strategy: StrategyTree})
		nc := c.Split(0, p.Rank())
		x := []float32{float32(p.Rank()) + 1, 2, 3, 4}
		nc.Adasum(x, tensor.FlatLayout(len(x)))
		out[p.Rank()] = x
	}); err != nil {
		t.Fatalf("survivor reduction failed: %v", err)
	}
	for _, r := range []int{2, 3} {
		for i := range out[0] {
			if out[r][i] != out[0][i] {
				t.Fatalf("survivor %d diverged from survivor 0: %v vs %v", r, out[r], out[0])
			}
		}
	}
}
