package collective

import (
	"repro/internal/comm"
)

// allreduceF64RD sums float64 vectors across a contiguous block of group
// positions [base, base+size) by recursive doubling. size must be a power
// of two. v is updated in place with the blockwise sum. This implements
// the ALLREDUCE(v, +, group) primitive on line 17 of Algorithm 1, which
// completes the partial dot products.
func allreduceF64RD(p *comm.Proc, g Group, base, size int, v []float64) {
	if size <= 1 {
		return
	}
	if size&(size-1) != 0 {
		panic("collective: dot-product group size must be a power of two")
	}
	gpos := g.Pos(p.Rank())
	rel := gpos - base
	for mask := 1; mask < size; mask <<= 1 {
		peer := g[base+(rel^mask)]
		got := p.SendRecvMeta(peer, v)
		for i := range v {
			v[i] += got[i]
		}
		p.ReleaseMeta(got)
	}
}

// Broadcast distributes root's vector to every rank in the group using a
// binomial tree. root is a group position, not a world rank. Non-root
// callers pass their (correctly sized) buffer in x and receive into it;
// the root's x is sent. x is returned for convenience.
func Broadcast(p *comm.Proc, g Group, root int, x []float32) []float32 {
	n := len(g)
	if n == 1 {
		return x
	}
	gpos := g.Pos(p.Rank())
	// Rotate so root behaves as position 0.
	rel := (gpos - root + n) % n
	// Find the highest power of two <= n covering all positions; use
	// simple doubling rounds: in round k, positions < 2^k send to
	// position + 2^k (if it exists).
	received := rel == 0
	for step := 1; step < n; step <<= 1 {
		if rel < step && rel+step < n {
			if !received {
				panic("collective: broadcast internal ordering error")
			}
			p.Send(g[(root+rel+step)%n], x)
		} else if rel >= step && rel < 2*step {
			src := g[(root+rel-step)%n]
			p.RecvInto(src, x)
			received = true
		}
	}
	return x
}

// Gather collects every group member's vector at root (a group
// position). All vectors must have the same length. Only the root's
// return value is meaningful; it holds the vectors indexed by group rank.
func Gather(p *comm.Proc, g Group, root int, x []float32) [][]float32 {
	gpos := g.Pos(p.Rank())
	if gpos != root {
		p.Send(g[root], x)
		return nil
	}
	out := make([][]float32, len(g))
	for i := range g {
		if i == root {
			out[i] = append([]float32(nil), x...)
			continue
		}
		out[i] = p.Recv(g[i])
	}
	return out
}

// boundsFn maps a group rank to the [lo, hi) element range of the chunk
// it owns. The ring primitives take their chunking through this accessor
// so one implementation serves both the arithmetic equal split and the
// layer-aligned range tables; non-escaping closures keep both callers
// allocation-free.
type boundsFn func(i int) (lo, hi int)

// rangeBounds adapts an explicit range table (layer-aligned shards) to a
// boundsFn.
func rangeBounds(ranges [][2]int) boundsFn {
	return func(i int) (int, int) { return ranges[i][0], ranges[i][1] }
}

// equalBounds is the classic near-equal ring-allreduce chunking of n
// elements over parts ranks, computed arithmetically.
func equalBounds(n, parts int) boundsFn {
	return func(i int) (int, int) { return equalChunk(n, parts, i) }
}

// equalChunk returns the [lo, hi) bounds of chunk i when n elements are
// split into parts contiguous near-equal ranges.
func equalChunk(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// reduceScatterRing performs a ring reduce-scatter with elementwise sum
// over contiguous chunks. bounds(i) is the element range group rank i
// owns at the end. x is the caller's full vector; on return,
// x[bounds(me)] holds the group-wide sum of that range, and the function
// returns that slice. Other regions of x are clobbered with partial
// sums.
func reduceScatterRing(p *comm.Proc, g Group, x []float32, bounds boundsFn) []float32 {
	n := len(g)
	me := g.Pos(p.Rank())
	if n == 1 {
		lo, hi := bounds(0)
		return x[lo:hi]
	}
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: send chunk (me-s-1) mod n to next, receive chunk (me-s-2)
	// mod n from prev and accumulate into x. With this phase shift, rank
	// me finishes owning the fully reduced chunk me.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s-1)%n + n) % n
		recvIdx := ((me-s-2)%n + n) % n
		slo, shi := bounds(sendIdx)
		p.Send(next, x[slo:shi])
		rlo, rhi := bounds(recvIdx)
		got := p.Recv(prev)
		dst := x[rlo:rhi]
		for i := range dst {
			dst[i] += got[i]
		}
		p.Release(got)
		p.ComputeReduce(4 * int64(rhi-rlo))
	}
	mlo, mhi := bounds(me)
	return x[mlo:mhi]
}

// allgatherRing performs a ring allgather over contiguous chunks: on
// entry x[bounds(me)] is this rank's finished chunk; on return every
// chunk of x is filled with its owner's data.
func allgatherRing(p *comm.Proc, g Group, x []float32, bounds boundsFn) {
	n := len(g)
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: pass chunk (me-s) mod n along, receiving (me-s-1) mod n;
	// rank me starts by sending the chunk it owns.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		slo, shi := bounds(sendIdx)
		p.Send(next, x[slo:shi])
		rlo, rhi := bounds(recvIdx)
		p.RecvInto(prev, x[rlo:rhi])
	}
}
