package collective

// Exchange primitives shared by the allreduce algorithms: the float64
// dot-product allreduce of Algorithm 1 line 17, binomial-tree
// broadcast, gather, and the ring reduce-scatter/allgather phases. All
// ride the communicator's codec-aware transport except the dot-product
// side payloads, which are tiny and always travel uncompressed.

// allreduceF64RD sums float64 vectors across a contiguous block of
// group positions [base, base+size) by recursive doubling. size must be
// a power of two. v is updated in place with the blockwise sum. This
// implements the ALLREDUCE(v, +, group) primitive on line 17 of
// Algorithm 1, which completes the partial dot products.
//
//adasum:noalloc
func (c *Communicator) allreduceF64RD(base, size int, v []float64) {
	if size <= 1 {
		return
	}
	if size&(size-1) != 0 {
		panic("collective: dot-product group size must be a power of two")
	}
	p, g := c.p, c.shared.group
	rel := c.mypos - base
	for mask := 1; mask < size; mask <<= 1 {
		peer := g[base+(rel^mask)]
		got := p.SendRecvMeta(peer, v)
		for i := range v {
			v[i] += got[i]
		}
		p.ReleaseMeta(got)
	}
}

// Broadcast distributes the vector held at group position root to every
// rank using a binomial tree. Non-root callers pass their (correctly
// sized) buffer in x and receive into it in place; the root's x is
// sent. The steady-state op allocates nothing.
func (c *Communicator) Broadcast(root int, x []float32) {
	g := c.shared.group
	n := len(g)
	if n == 1 {
		return
	}
	// Rotate so root behaves as position 0.
	rel := (c.mypos - root + n) % n
	// Simple doubling rounds: in round k, positions < 2^k send to
	// position + 2^k (if it exists).
	received := rel == 0
	for step := 1; step < n; step <<= 1 {
		if rel < step && rel+step < n {
			if !received {
				panic("collective: broadcast internal ordering error")
			}
			c.send(g[(root+rel+step)%n], x)
		} else if rel >= step && rel < 2*step {
			src := g[(root+rel-step)%n]
			c.recvInto(src, x)
			received = true
		}
	}
}

// BroadcastInto is Broadcast with separate source and destination
// buffers: every rank — root included — finishes with the payload in
// dst, and the root's src is never written. Non-root callers may pass
// src as nil. Like Broadcast it allocates nothing in steady state, so
// callers that must preserve their source vector need no staging copy.
//
//adasum:noalloc
func (c *Communicator) BroadcastInto(root int, dst, src []float32) {
	if c.mypos == root {
		if len(src) != len(dst) {
			panic("collective: BroadcastInto src/dst length mismatch")
		}
		copy(dst, src)
	}
	c.Broadcast(root, dst)
}

// Gather collects every member's vector at group position root. All
// vectors must have the same length. Only the root's return value is
// meaningful; it holds the vectors indexed by group rank. The root's
// rows are freshly allocated for the uncompressed case only in the
// sense that transport buffers are handed to the caller — steady-state
// callers use GatherInto.
func (c *Communicator) Gather(root int, x []float32) [][]float32 {
	g := c.shared.group
	if c.mypos != root {
		c.send(g[root], x)
		return nil
	}
	out := make([][]float32, len(g))
	for i := range g {
		if i == root {
			out[i] = append([]float32(nil), x...)
			continue
		}
		if c.stream == nil {
			//adasum:poolown ok Gather returns the received rows to its caller, who owns the result
			out[i] = c.p.Recv(g[i])
			continue
		}
		out[i] = make([]float32, len(x))
		if c.policy != nil {
			c.p.RecvAdaptive(g[i], out[i])
		} else {
			c.p.RecvCompressed(g[i], c.shared.codec, out[i])
		}
	}
	return out
}

// GatherInto is the zero-allocation Gather: the root receives each
// member's vector directly into into[i] (rows pre-sized to len(x));
// non-root callers may pass into as nil. The root's own row is copied
// from x.
//
//adasum:noalloc
func (c *Communicator) GatherInto(root int, x []float32, into [][]float32) {
	g := c.shared.group
	if c.mypos != root {
		c.send(g[root], x)
		return
	}
	if len(into) != len(g) {
		panic("collective: GatherInto needs one destination row per group member")
	}
	for i := range g {
		if i == root {
			copy(into[i], x)
			continue
		}
		c.recvInto(g[i], into[i])
	}
}

// boundsFn maps a group rank to the [lo, hi) element range of the chunk
// it owns. The ring primitives take their chunking through this
// accessor so one implementation serves both the arithmetic equal split
// and the layer-aligned range tables; non-escaping closures keep both
// callers allocation-free.
type boundsFn func(i int) (lo, hi int)

// rangeBounds adapts an explicit range table (layer-aligned shards) to
// a boundsFn.
func rangeBounds(ranges [][2]int) boundsFn {
	//adasum:alloc ok non-escaping closure: callers only pass it down the ring primitives, so it stays on the stack
	return func(i int) (int, int) { return ranges[i][0], ranges[i][1] }
}

// equalBounds is the classic near-equal ring-allreduce chunking of n
// elements over parts ranks, computed arithmetically.
func equalBounds(n, parts int) boundsFn {
	//adasum:alloc ok non-escaping closure: callers only pass it down the ring primitives, so it stays on the stack
	return func(i int) (int, int) { return equalChunk(n, parts, i) }
}

// equalChunk returns the [lo, hi) bounds of chunk i when n elements are
// split into parts contiguous near-equal ranges.
//
//adasum:noalloc
func equalChunk(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// reduceScatterRing performs a ring reduce-scatter with elementwise sum
// over contiguous chunks. bounds(i) is the element range group rank i
// owns at the end. x is the caller's full vector; on return,
// x[bounds(me)] holds the group-wide sum of that range, and the
// function returns that slice. Other regions of x are clobbered with
// partial sums.
//
//adasum:noalloc
func (c *Communicator) reduceScatterRing(x []float32, bounds boundsFn) []float32 {
	p, g := c.p, c.shared.group
	n := len(g)
	me := c.mypos
	if n == 1 {
		lo, hi := bounds(0) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
		return x[lo:hi]
	}
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: send chunk (me-s-1) mod n to next, receive chunk (me-s-2)
	// mod n from prev and accumulate into x. With this phase shift, rank
	// me finishes owning the fully reduced chunk me.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s-1)%n + n) % n
		recvIdx := ((me-s-2)%n + n) % n
		slo, shi := bounds(sendIdx) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
		c.send(next, x[slo:shi])
		rlo, rhi := bounds(recvIdx) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
		got := c.recvNew(prev, rhi-rlo)
		dst := x[rlo:rhi]
		for i := range dst {
			dst[i] += got[i]
		}
		p.Release(got)
		p.ComputeReduce(4 * int64(rhi-rlo))
	}
	mlo, mhi := bounds(me) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
	return x[mlo:mhi]
}

// allgatherRing performs a ring allgather over contiguous chunks: on
// entry x[bounds(me)] is this rank's finished chunk; on return every
// chunk of x is filled with its owner's data.
//
//adasum:noalloc
func (c *Communicator) allgatherRing(x []float32, bounds boundsFn) {
	g := c.shared.group
	n := len(g)
	if n == 1 {
		return
	}
	me := c.mypos
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: pass chunk (me-s) mod n along, receiving (me-s-1) mod n;
	// rank me starts by sending the chunk it owns.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		slo, shi := bounds(sendIdx) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
		c.send(next, x[slo:shi])
		rlo, rhi := bounds(recvIdx) //adasum:dyncall ok bounds closures (rangeBounds/equalBounds) are index arithmetic only
		c.recvInto(prev, x[rlo:rhi])
	}
}
