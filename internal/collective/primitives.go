package collective

import (
	"repro/internal/comm"
)

// allreduceF64RD sums float64 vectors across a contiguous block of group
// positions [base, base+size) by recursive doubling. size must be a power
// of two. v is updated in place with the blockwise sum. This implements
// the ALLREDUCE(v, +, group) primitive on line 17 of Algorithm 1, which
// completes the partial dot products.
func allreduceF64RD(p *comm.Proc, g Group, base, size int, v []float64) {
	if size <= 1 {
		return
	}
	if size&(size-1) != 0 {
		panic("collective: dot-product group size must be a power of two")
	}
	gpos := g.Pos(p.Rank())
	rel := gpos - base
	for mask := 1; mask < size; mask <<= 1 {
		peer := g[base+(rel^mask)]
		got := p.SendRecvMeta(peer, v)
		for i := range v {
			v[i] += got[i]
		}
	}
}

// Broadcast distributes root's vector to every rank in the group using a
// binomial tree. root is a group position, not a world rank. Non-root
// callers pass their (correctly sized) buffer in x and receive into it;
// the root's x is sent. x is returned for convenience.
func Broadcast(p *comm.Proc, g Group, root int, x []float32) []float32 {
	n := len(g)
	if n == 1 {
		return x
	}
	gpos := g.Pos(p.Rank())
	// Rotate so root behaves as position 0.
	rel := (gpos - root + n) % n
	// Find the highest power of two <= n covering all positions; use
	// simple doubling rounds: in round k, positions < 2^k send to
	// position + 2^k (if it exists).
	received := rel == 0
	for step := 1; step < n; step <<= 1 {
		if rel < step && rel+step < n {
			if !received {
				panic("collective: broadcast internal ordering error")
			}
			p.Send(g[(root+rel+step)%n], x)
		} else if rel >= step && rel < 2*step {
			src := g[(root+rel-step)%n]
			got := p.Recv(src)
			copy(x, got)
			received = true
		}
	}
	return x
}

// Gather collects every group member's vector at root (a group
// position). All vectors must have the same length. Only the root's
// return value is meaningful; it holds the vectors indexed by group rank.
func Gather(p *comm.Proc, g Group, root int, x []float32) [][]float32 {
	gpos := g.Pos(p.Rank())
	if gpos != root {
		p.Send(g[root], x)
		return nil
	}
	out := make([][]float32, len(g))
	for i := range g {
		if i == root {
			out[i] = append([]float32(nil), x...)
			continue
		}
		out[i] = p.Recv(g[i])
	}
	return out
}

// reduceScatterVRing performs a ring reduce-scatter with elementwise sum
// over unequal contiguous chunks. ranges[i] is the [lo, hi) element range
// that group rank i owns at the end. x is the caller's full vector; on
// return, x[ranges[me]] holds the group-wide sum of that range, and the
// function returns that slice. Other regions of x are clobbered with
// partial sums.
func reduceScatterVRing(p *comm.Proc, g Group, x []float32, ranges [][2]int) []float32 {
	n := len(g)
	me := g.Pos(p.Rank())
	if n == 1 {
		return x[ranges[0][0]:ranges[0][1]]
	}
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: send chunk (me-s-1) mod n to next, receive chunk (me-s-2)
	// mod n from prev and accumulate into x. With this phase shift, rank
	// me finishes owning the fully reduced chunk me.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s-1)%n + n) % n
		recvIdx := ((me-s-2)%n + n) % n
		sr := ranges[sendIdx]
		p.Send(next, x[sr[0]:sr[1]])
		rr := ranges[recvIdx]
		got := p.Recv(prev)
		dst := x[rr[0]:rr[1]]
		for i := range dst {
			dst[i] += got[i]
		}
		p.ComputeReduce((rr[1] - rr[0]) * 4)
	}
	mr := ranges[me]
	return x[mr[0]:mr[1]]
}

// allgatherVRing performs a ring allgather over unequal contiguous
// chunks: on entry x[ranges[me]] is this rank's finished chunk; on return
// every range of x is filled with its owner's chunk.
func allgatherVRing(p *comm.Proc, g Group, x []float32, ranges [][2]int) {
	n := len(g)
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	next := g[(me+1)%n]
	prev := g[(me-1+n)%n]
	// Step s: pass chunk (me-s) mod n along, receiving (me-s-1) mod n;
	// rank me starts by sending the chunk it owns.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		sr := ranges[sendIdx]
		p.Send(next, x[sr[0]:sr[1]])
		rr := ranges[recvIdx]
		got := p.Recv(prev)
		copy(x[rr[0]:rr[1]], got)
	}
}

// equalRanges splits n elements into parts contiguous near-equal ranges
// (the classic ring-allreduce chunking).
func equalRanges(n, parts int) [][2]int {
	ranges := make([][2]int, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		ranges[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	return ranges
}
