package collective

import (
	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/tensor"
)

// TreeAdasum is an allreduce whose result is bitwise-identical to the
// host-side tree reduction adasum.Reducer.TreeReduce over the group's
// vectors ordered by group rank. It runs recursive doubling on full
// vectors: at distance d, the holders of adjacent 2d-blocks exchange
// their partial combinations and both apply the per-layer Adasum with
// the lower block's vector as the first operand — the exact pairing and
// operand order of the host tree ((g0⊕g1)⊕(g2⊕g3))⊕..., so every float
// operation matches the Reducer's and the distributed result can be
// A/B-compared against the monolithic path at zero tolerance. Any group
// size is accepted; non-powers-of-two reduce to position 0 with the host
// tree's odd-leftover pass-through and then broadcast.
//
// Compared with AdasumRVH (Algorithm 1), TreeAdasum moves the full
// vector log p times instead of halving it, trading bandwidth optimality
// for exact arithmetic parity; it is the deterministic-parity mode of
// the overlapped reduction engine. x is reduced in place on every rank,
// and transport buffers come from the World pool.
func TreeAdasum(p *comm.Proc, g Group, x []float32, layout tensor.Layout) {
	if layout.TotalSize() != len(x) {
		panic("collective: TreeAdasum layout does not cover x")
	}
	n := len(g)
	if n == 1 {
		return
	}
	pos := g.Pos(p.Rank())
	buf := p.Scratch(len(x))
	if g.IsPowerOfTwo() {
		// Symmetric exchange: every rank holds the block combination at
		// every level, so no final broadcast is needed and all ranks
		// compute bitwise-identical values.
		for d := 1; d < n; d <<= 1 {
			peer := g[pos^d]
			p.Send(peer, x)
			p.RecvInto(peer, buf)
			if pos&d == 0 {
				adasum.CombineLayers(x, x, buf, layout)
			} else {
				adasum.CombineLayers(x, buf, x, layout)
			}
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
		p.Release(buf)
		return
	}
	// General size: tree-reduce to position 0 with the host tree's
	// pairing (an odd block at the end of a level passes through
	// unchanged), then broadcast the result.
	for d := 1; d < n; d <<= 1 {
		if pos%(2*d) == d {
			p.Send(g[pos-d], x)
			break
		}
		if pos+d < n {
			p.RecvInto(g[pos+d], buf)
			adasum.CombineLayers(x, x, buf, layout)
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
	}
	p.Release(buf)
	Broadcast(p, g, 0, x)
}
