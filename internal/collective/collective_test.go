package collective

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// C builds an uncompressed communicator with the given strategy — the
// one-liner the migrated free-function tests construct per collective.
func C(p *comm.Proc, g Group, s Strategy) *Communicator {
	return New(p, g, Config{Strategy: s})
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

// makeInputs builds one deterministic gradient per rank.
func makeInputs(seed int64, ranks, n int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for i := range out {
		out[i] = randVec(rng, n)
	}
	return out
}

func serialSum(inputs [][]float32) []float32 {
	out := tensor.Clone(inputs[0])
	for _, g := range inputs[1:] {
		tensor.Axpy(1, g, out)
	}
	return out
}

func TestRingAllreduceSumMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, n := range []int{1, 2, 7, 64, 1000} {
			inputs := makeInputs(int64(ranks*1000+n), ranks, n)
			want := serialSum(inputs)
			w := comm.NewWorld(ranks, nil)
			g := WorldGroup(ranks)
			results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
				x := tensor.Clone(inputs[p.Rank()])
				C(p, g, StrategyRing).AllreduceSum(x)
				return x
			})
			for r, res := range results {
				if !tensor.Equal(res, want, 1e-4) {
					t.Fatalf("ranks=%d n=%d rank %d: ring sum mismatch", ranks, n, r)
				}
			}
		}
	}
}

func TestRingAllreduceMean(t *testing.T) {
	inputs := makeInputs(42, 4, 10)
	want := serialSum(inputs)
	tensor.Scale(0.25, want)
	w := comm.NewWorld(4, nil)
	g := WorldGroup(4)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		C(p, g, StrategyRing).AllreduceMean(x)
		return x
	})
	for _, res := range results {
		if !tensor.Equal(res, want, 1e-5) {
			t.Fatalf("mean mismatch: %v vs %v", res[:3], want[:3])
		}
	}
}

func TestRVHAllreduceSumMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		for _, n := range []int{1, 5, 64, 257} {
			inputs := makeInputs(int64(ranks*77+n), ranks, n)
			want := serialSum(inputs)
			w := comm.NewWorld(ranks, nil)
			g := WorldGroup(ranks)
			results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
				x := tensor.Clone(inputs[p.Rank()])
				C(p, g, StrategyRVH).AllreduceSum(x)
				return x
			})
			for r, res := range results {
				if !tensor.Equal(res, want, 1e-4) {
					t.Fatalf("ranks=%d n=%d rank %d: RVH sum mismatch", ranks, n, r)
				}
			}
		}
	}
}

func TestRVHRequiresPowerOfTwo(t *testing.T) {
	w := comm.NewWorld(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non power-of-two group")
		}
	}()
	w.Run(func(p *comm.Proc) {
		x := []float32{1}
		C(p, WorldGroup(3), StrategyRVH).AllreduceSum(x)
	})
}

// TestAdasumRVHMatchesHostTree is the central distributed-correctness
// invariant: Algorithm 1 across W ranks must produce the same result as
// the host-side binary-tree reduction of §3.4 (they apply combines in the
// same pairing order).
func TestAdasumRVHMatchesHostTree(t *testing.T) {
	for _, ranks := range []int{2, 4, 8, 16, 32} {
		for _, n := range []int{1, 2, 15, 64, 255} {
			inputs := makeInputs(int64(ranks*31+n), ranks, n)
			layout := tensor.FlatLayout(n)
			want := adasum.TreeReduce(inputs, layout)
			w := comm.NewWorld(ranks, nil)
			g := WorldGroup(ranks)
			results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
				x := tensor.Clone(inputs[p.Rank()])
				C(p, g, StrategyRVH).Adasum(x, layout)
				return x
			})
			for r, res := range results {
				if !tensor.Equal(res, want, 1e-4) {
					t.Fatalf("ranks=%d n=%d rank %d: AdasumRVH != host tree\n got %v\nwant %v",
						ranks, n, r, res[:min(4, n)], want[:min(4, n)])
				}
			}
		}
	}
}

func TestAdasumRVHPerLayerMatchesHostTree(t *testing.T) {
	ranks := 8
	layout := tensor.NewLayout(
		[]string{"conv1", "bn1", "fc", "bias"},
		[]int{30, 7, 25, 2},
	)
	n := layout.TotalSize()
	inputs := makeInputs(99, ranks, n)
	want := adasum.TreeReduce(inputs, layout)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		C(p, g, StrategyRVH).Adasum(x, layout)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-4) {
			t.Fatalf("rank %d: per-layer AdasumRVH != host tree", r)
		}
	}
}

func TestAdasumRVHAllRanksAgree(t *testing.T) {
	ranks, n := 16, 200
	inputs := makeInputs(123, ranks, n)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		C(p, g, StrategyRVH).Adasum(x, tensor.FlatLayout(n))
		return x
	})
	for r := 1; r < ranks; r++ {
		if !tensor.Equal(results[r], results[0], 0) {
			t.Fatalf("rank %d disagrees with rank 0", r)
		}
	}
}

func TestAdasumRVHIdenticalInputsAverage(t *testing.T) {
	// All ranks hold the same gradient: result must be that gradient.
	ranks, n := 8, 33
	g0 := randVec(rand.New(rand.NewSource(5)), n)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(g0)
		C(p, g, StrategyRVH).Adasum(x, tensor.FlatLayout(n))
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, g0, 1e-5) {
			t.Fatalf("rank %d: identical-input reduce deviates from input", r)
		}
	}
}

func TestAdasumRVHOrthogonalInputsSum(t *testing.T) {
	// Rank r's gradient is the r-th basis vector: Adasum = exact sum.
	ranks := 8
	n := ranks
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	want := make([]float32, n)
	for i := range want {
		want[i] = 1
	}
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := make([]float32, n)
		x[p.Rank()] = 1
		C(p, g, StrategyRVH).Adasum(x, tensor.FlatLayout(n))
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-6) {
			t.Fatalf("rank %d: orthogonal reduce = %v, want all ones", r, res)
		}
	}
}

func TestLinearAdasumMatchesHostLinear(t *testing.T) {
	for _, ranks := range []int{2, 3, 4, 7, 8} {
		n := 40
		inputs := makeInputs(int64(ranks), ranks, n)
		layout := tensor.FlatLayout(n)
		want := adasum.LinearReduce(inputs, layout)
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			C(p, g, StrategyLinear).Adasum(x, layout)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, want, 1e-5) {
				t.Fatalf("ranks=%d rank %d: linear mismatch", ranks, r)
			}
		}
	}
}

func TestHierarchicalAdasumSemantics(t *testing.T) {
	// 2 nodes x 2 GPUs. Within a node gradients are summed; across nodes
	// Adasum-combined. Compare against the host-side composition.
	gpus, nodes := 2, 2
	ranks := gpus * nodes
	layout := tensor.NewLayout([]string{"a", "b"}, []int{12, 20})
	n := layout.TotalSize()
	inputs := makeInputs(321, ranks, n)

	nodeSums := make([][]float32, nodes)
	for nd := 0; nd < nodes; nd++ {
		nodeSums[nd] = serialSum(inputs[nd*gpus : (nd+1)*gpus])
	}
	want := adasum.TreeReduce(nodeSums, layout)

	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		NewHierarchy(C(p, g, StrategyRVH), gpus).Adasum(x, layout)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-4) {
			t.Fatalf("rank %d: hierarchical mismatch\n got %v\nwant %v", r, res[:4], want[:4])
		}
	}
}

func TestHierarchicalAdasumManyShapes(t *testing.T) {
	for _, cfg := range [][2]int{{4, 2}, {2, 4}, {4, 4}, {8, 2}} {
		gpus, nodes := cfg[0], cfg[1]
		ranks := gpus * nodes
		layout := tensor.NewLayout(
			[]string{"l0", "l1", "l2", "l3", "l4", "l5"},
			[]int{17, 3, 40, 9, 22, 11},
		)
		n := layout.TotalSize()
		inputs := makeInputs(int64(ranks*13), ranks, n)
		nodeSums := make([][]float32, nodes)
		for nd := 0; nd < nodes; nd++ {
			nodeSums[nd] = serialSum(inputs[nd*gpus : (nd+1)*gpus])
		}
		want := adasum.TreeReduce(nodeSums, layout)
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := tensor.Clone(inputs[p.Rank()])
			NewHierarchy(C(p, g, StrategyRVH), gpus).Adasum(x, layout)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, want, 1e-4) {
				t.Fatalf("gpus=%d nodes=%d rank %d: mismatch", gpus, nodes, r)
			}
		}
	}
}

func TestHierarchicalSumMatchesSerial(t *testing.T) {
	gpus, nodes := 4, 3
	ranks := gpus * nodes
	n := 100
	inputs := makeInputs(777, ranks, n)
	want := serialSum(inputs)
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		NewHierarchy(C(p, g, StrategyRing), gpus).AllreduceSum(x)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, want, 1e-4) {
			t.Fatalf("rank %d: hierarchical sum mismatch", r)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 5, 8} {
		w := comm.NewWorld(ranks, nil)
		g := WorldGroup(ranks)
		payload := []float32{3, 1, 4, 1, 5}
		results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
			x := make([]float32, len(payload))
			if p.Rank() == 0 {
				copy(x, payload)
			}
			C(p, g, StrategyAuto).Broadcast(0, x)
			return x
		})
		for r, res := range results {
			if !tensor.Equal(res, payload, 0) {
				t.Fatalf("ranks=%d rank %d: broadcast = %v", ranks, r, res)
			}
		}
	}
}

func TestBroadcastNonZeroRoot(t *testing.T) {
	ranks := 4
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	payload := []float32{9, 8}
	results := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := make([]float32, 2)
		if p.Rank() == 2 {
			copy(x, payload)
		}
		C(p, g, StrategyAuto).Broadcast(2, x)
		return x
	})
	for r, res := range results {
		if !tensor.Equal(res, payload, 0) {
			t.Fatalf("rank %d: broadcast from root 2 = %v", r, res)
		}
	}
}

func TestGather(t *testing.T) {
	ranks := 4
	w := comm.NewWorld(ranks, nil)
	g := WorldGroup(ranks)
	results := comm.RunCollect(w, func(p *comm.Proc) [][]float32 {
		return C(p, g, StrategyAuto).Gather(0, []float32{float32(p.Rank())})
	})
	if results[0] == nil {
		t.Fatal("root got nil")
	}
	for i, v := range results[0] {
		if v[0] != float32(i) {
			t.Fatalf("gathered[%d] = %v", i, v)
		}
	}
	if results[1] != nil {
		t.Fatal("non-root returned data")
	}
}

func TestGroupHelpers(t *testing.T) {
	g := Group{3, 5, 9, 12}
	if g.Pos(9) != 2 {
		t.Fatalf("Pos = %d", g.Pos(9))
	}
	if !g.Contains(5) || g.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if g.IsPowerOfTwo() != true {
		t.Fatal("4 is a power of two")
	}
	if (Group{1, 2, 3}).IsPowerOfTwo() {
		t.Fatal("3 is not a power of two")
	}
}

func TestRingAllreduceCostSymmetry(t *testing.T) {
	// On a uniform network all ranks should finish a ring allreduce at
	// (approximately) the same virtual time, and that time should grow
	// with message size.
	model := simnet.Uniform(4, 1e-5, 1e-9)
	small := ringTime(model, 4, 256)
	large := ringTime(model, 4, 1<<20)
	if large <= small {
		t.Fatalf("cost model: large message (%v) not slower than small (%v)", large, small)
	}
}

func ringTime(model *simnet.Model, ranks, n int) float64 {
	w := comm.NewWorld(ranks, model)
	g := WorldGroup(ranks)
	return comm.MaxClock(w, func(p *comm.Proc) {
		x := make([]float32, n)
		C(p, g, StrategyRing).AllreduceSum(x)
	})
}

func TestAdasumRVHLatencyScalesLogarithmically(t *testing.T) {
	// With beta=0 the RVH critical path is dominated by alpha terms; the
	// level count is log2(p), so time(16 ranks) < time(slowest possible
	// linear chain). Sanity-check monotonicity in rank count.
	alpha := 1e-4
	t4 := adasumTime(simnet.Uniform(4, alpha, 0), 4, 1024)
	t16 := adasumTime(simnet.Uniform(16, alpha, 0), 16, 1024)
	if t16 <= t4 {
		t.Fatalf("expected more levels to cost more: t4=%v t16=%v", t4, t16)
	}
	// Must still be far below the linear-chain cost of 15 sequential
	// combine rounds with 2 messages each.
	if t16 >= 15*2*alpha {
		t.Fatalf("AdasumRVH latency %v not logarithmic (linear bound %v)", t16, 15*2*alpha)
	}
}

func adasumTime(model *simnet.Model, ranks, n int) float64 {
	w := comm.NewWorld(ranks, model)
	g := WorldGroup(ranks)
	return comm.MaxClock(w, func(p *comm.Proc) {
		x := make([]float32, n)
		x[p.Rank()] = 1
		C(p, g, StrategyRVH).Adasum(x, tensor.FlatLayout(n))
	})
}

func TestEqualRanges(t *testing.T) {
	r := equalRanges(10, 3)
	if fmt.Sprint(r) != "[[0 4] [4 7] [7 10]]" {
		t.Fatalf("equalRanges = %v", r)
	}
	r = equalRanges(2, 4)
	if r[3][1] != 2 {
		t.Fatalf("equalRanges small n = %v", r)
	}
}

// equalRanges is the seed's cumulative materialization of the
// near-equal split, kept as the independent test-side reference for the
// arithmetic equalChunk bounds.
func equalRanges(n, parts int) [][2]int {
	ranges := make([][2]int, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		ranges[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	return ranges
}
