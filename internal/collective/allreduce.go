package collective

import (
	"repro/internal/adasum"
	"repro/internal/comm"
	"repro/internal/tensor"
)

// RingAllreduceSum performs the classic bandwidth-optimal ring allreduce
// with elementwise sum over the group: a ring reduce-scatter followed by
// a ring allgather, each moving (n-1)/n of the vector. This is the
// reproduction's stand-in for "NCCL's sum operation", the baseline of
// Figure 4. x is reduced in place. Chunk bounds are computed
// arithmetically and transport buffers come from the World pool, so the
// collective allocates nothing in steady state.
func RingAllreduceSum(p *comm.Proc, g Group, x []float32) {
	if len(g) == 1 {
		return
	}
	bounds := equalBounds(len(x), len(g))
	reduceScatterRing(p, g, x, bounds)
	allgatherRing(p, g, x, bounds)
}

// RingAllreduceMean is RingAllreduceSum followed by division by the group
// size, the combiner synchronous SGD actually applies.
func RingAllreduceMean(p *comm.Proc, g Group, x []float32) {
	RingAllreduceSum(p, g, x)
	tensor.Scale(1/float32(len(g)), x)
}

// RVHAllreduceSum performs recursive vector halving-and-doubling with
// elementwise sum: log p halving exchange steps (reduce-scatter), then
// log p doubling steps (allgather). The group size must be a power of
// two. x is reduced in place. This is the unmodified baseline algorithm
// that Algorithm 1 extends.
func RVHAllreduceSum(p *comm.Proc, g Group, x []float32) {
	if !g.IsPowerOfTwo() {
		panic("collective: RVHAllreduceSum requires a power-of-two group")
	}
	if len(g) == 1 {
		return
	}
	rvhSumRec(p, g, x, 0, len(x), 1)
}

// rvhSumRec runs one halving/doubling level over the window [lo, hi) of
// x, which every rank holds in the same full-size buffer: the reduction
// happens in place in this rank's half, and the allgather unwind receives
// the peer's half directly into its home position in x, so no level
// allocates. Received transport buffers are recycled to the World pool.
func rvhSumRec(p *comm.Proc, g Group, x []float32, lo, hi, d int) {
	mid := lo + tensor.HalfSplit(hi-lo)
	gpos := g.Pos(p.Rank())
	left := (gpos/d)%2 == 0
	var nghr, nlo, nhi int
	if left {
		nghr = gpos + d
		p.Send(g[nghr], x[mid:hi])
		theirs := p.Recv(g[nghr])
		mine := x[lo:mid]
		for i := range mine {
			mine[i] += theirs[i]
		}
		p.Release(theirs)
		nlo, nhi = lo, mid
	} else {
		nghr = gpos - d
		p.Send(g[nghr], x[lo:mid])
		theirs := p.Recv(g[nghr])
		mine := x[mid:hi]
		for i := range mine {
			mine[i] += theirs[i]
		}
		p.Release(theirs)
		nlo, nhi = mid, hi
	}
	p.ComputeReduce(4 * int64(nhi-nlo))
	if 2*d < len(g) {
		rvhSumRec(p, g, x, nlo, nhi, 2*d)
	}
	// Doubling unwind: exchange fully reduced halves into place.
	p.Send(g[nghr], x[nlo:nhi])
	if left {
		p.RecvInto(g[nghr], x[mid:hi])
	} else {
		p.RecvInto(g[nghr], x[lo:mid])
	}
}

// AdasumRVH is Algorithm 1: recursive vector halving where each level's
// reduction is the Adasum combine, made possible by an extra small-vector
// allreduce that completes the per-layer dot products across the ranks
// sharing slices of the same logical vectors. The group size must be a
// power of two. layout gives the per-layer segmentation of x (§3.6); pass
// tensor.FlatLayout(len(x)) for whole-gradient Adasum. x is reduced in
// place on every rank.
func AdasumRVH(p *comm.Proc, g Group, x []float32, layout tensor.Layout) {
	if !g.IsPowerOfTwo() {
		panic("collective: AdasumRVH requires a power-of-two group")
	}
	if layout.TotalSize() != len(x) {
		panic("collective: AdasumRVH layout does not cover x")
	}
	if len(g) == 1 {
		return
	}
	// One flattened per-layer dot-product scratch serves every recursion
	// level; it comes from the World pool so repeated collectives reuse
	// the same allocation.
	dots := p.ScratchMeta(3 * layout.NumLayers())
	adasumRVHRec(p, g, x, 0, len(x), 1, layout, dots)
	p.ReleaseMeta(dots)
}

// adasumRVHRec runs one level of Algorithm 1 over the window [lo, hi) of
// x. Every rank keeps its working slice inside the same full-size buffer
// at its home offset: the combine writes into this rank's half of the
// window in place, and the allgather unwind receives the peer's half
// directly into its home position — no level builds fresh slices. d is
// the neighbor distance; dots is the reusable flattened per-layer partial
// buffer (3 entries per layer of layout).
func adasumRVHRec(p *comm.Proc, g Group, x []float32, lo, hi, d int, layout tensor.Layout, dots []float64) {
	mid := lo + tensor.HalfSplit(hi-lo) // line 2
	gpos := g.Pos(p.Rank())
	left := (gpos/d)%2 == 0

	var a, b, dst, recv []float32
	var nghr, nlo, nhi int
	if left { // lines 3-7: keep left half, receive neighbor's left half
		nghr = gpos + d
		p.Send(g[nghr], x[mid:hi])
		recv = p.Recv(g[nghr])
		a, b, dst = x[lo:mid], recv, x[lo:mid]
		nlo, nhi = lo, mid
	} else { // lines 8-13: keep right half, receive neighbor's right half
		nghr = gpos - d
		p.Send(g[nghr], x[lo:mid])
		recv = p.Recv(g[nghr])
		a, b, dst = recv, x[mid:hi], x[mid:hi]
		nlo, nhi = mid, hi
	}

	d2 := 2 * d // line 14

	// Lines 15-17: per-layer partial dot products over this rank's
	// window, summed across the contiguous block of d2 group positions
	// that collectively hold the two logical vectors.
	adasum.WindowDots(dots, a, b, nlo, layout)
	p.ComputeReduce(3 * 4 * int64(len(a)))
	base := gpos / d2 * d2
	allreduceF64RD(p, g, base, d2, dots)

	// Line 18: apply the combine with the completed dot products.
	adasum.CombineWindow(dst, a, b, nlo, layout, dots)
	p.ComputeReduce(2 * 4 * int64(len(a)))
	p.Release(recv)

	if d2 < len(g) { // lines 19-21
		adasumRVHRec(p, g, x, nlo, nhi, d2, layout, dots)
	}

	// Lines 22-24: allgather unwind — exchange finished halves into place.
	p.Send(g[nghr], x[nlo:nhi])
	if left {
		p.RecvInto(g[nghr], x[mid:hi])
	} else {
		p.RecvInto(g[nghr], x[lo:mid])
	}
}

// LinearAdasum applies the Adasum combine in a chain: rank 0 folds in
// every other rank's gradient left to right, then broadcasts the result.
// This is the linear application order of §3.4/§4.2.3 — O(p) latency and
// serialized bandwidth, kept as the ordering ablation and to mirror the
// paper's finding that the tree (RVH) variant is faster on these
// topologies. Works for any group size. x is reduced in place.
func LinearAdasum(p *comm.Proc, g Group, x []float32, layout tensor.Layout) {
	if len(g) == 1 {
		return
	}
	me := g.Pos(p.Rank())
	if me == 0 {
		for i := 1; i < len(g); i++ {
			got := p.Recv(g[i])
			adasum.CombineLayers(x, x, got, layout)
			p.Release(got)
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
	} else {
		p.Send(g[0], x)
	}
	Broadcast(p, g, 0, x)
}

// HierarchicalAdasum implements the HOROVOD_HIERARCHICAL_ALLREDUCE scheme
// of §4.2.2: a local reduce-scatter with sum inside each node (the NCCL
// phase — summing node-local microbatch gradients), AdasumRVH across
// corresponding local ranks of different nodes on layer-aligned shards,
// and a local allgather. gpusPerNode must divide the group size, the node
// count must be a power of two, and shards are layer-aligned so per-layer
// dot products complete within each cross-node group.
//
// Semantics: gradients within a node are summed (larger effective local
// batch), gradients across nodes are Adasum-combined — exactly the
// behaviour of Horovod's hierarchical Adasum.
func HierarchicalAdasum(p *comm.Proc, g Group, x []float32, layout tensor.Layout, gpusPerNode int) {
	n := len(g)
	if n%gpusPerNode != 0 {
		panic("collective: group size not divisible by gpusPerNode")
	}
	nodes := n / gpusPerNode
	if nodes&(nodes-1) != 0 {
		panic("collective: HierarchicalAdasum needs a power-of-two node count")
	}
	me := g.Pos(p.Rank())
	node := me / gpusPerNode
	local := me % gpusPerNode

	localGroup := make(Group, gpusPerNode)
	for i := range localGroup {
		localGroup[i] = g[node*gpusPerNode+i]
	}
	crossGroup := make(Group, nodes)
	for i := range crossGroup {
		crossGroup[i] = g[i*gpusPerNode+local]
	}

	ranges := layout.SplitLayerAligned(gpusPerNode)

	// Phase 1: intra-node reduce-scatter (sum) over layer-aligned shards.
	shard := reduceScatterRing(p, localGroup, x, rangeBounds(ranges))

	// Phase 2: cross-node AdasumRVH on this rank's shard. The windowed
	// layout keeps per-layer dots exact because shards are layer-aligned.
	lo, hi := ranges[local][0], ranges[local][1]
	if nodes > 1 && hi > lo {
		sub := layout.Window(lo, hi)
		AdasumRVH(p, crossGroup, shard, sub)
	} else if nodes > 1 {
		// Empty shard: still participate in the collective to keep the
		// power-of-two exchange pattern aligned.
		AdasumRVH(p, crossGroup, shard, tensor.FlatLayout(0))
	}

	// Phase 3: intra-node allgather of finished shards.
	allgatherRing(p, localGroup, x, rangeBounds(ranges))
}

// HierarchicalSum is the baseline counterpart of HierarchicalAdasum:
// local reduce-scatter (sum), cross-node ring allreduce (sum), local
// allgather. Used for like-for-like system-efficiency comparisons.
func HierarchicalSum(p *comm.Proc, g Group, x []float32, gpusPerNode int) {
	n := len(g)
	if n%gpusPerNode != 0 {
		panic("collective: group size not divisible by gpusPerNode")
	}
	nodes := n / gpusPerNode
	me := g.Pos(p.Rank())
	node := me / gpusPerNode
	local := me % gpusPerNode

	localGroup := make(Group, gpusPerNode)
	for i := range localGroup {
		localGroup[i] = g[node*gpusPerNode+i]
	}
	crossGroup := make(Group, nodes)
	for i := range crossGroup {
		crossGroup[i] = g[i*gpusPerNode+local]
	}

	localBounds := equalBounds(len(x), gpusPerNode)
	shard := reduceScatterRing(p, localGroup, x, localBounds)
	if nodes > 1 {
		RingAllreduceSum(p, crossGroup, shard)
	}
	allgatherRing(p, localGroup, x, localBounds)
}
