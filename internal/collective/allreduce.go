package collective

import (
	"repro/internal/adasum"
	"repro/internal/tensor"
)

// The allreduce algorithms behind the Communicator methods. Each is
// written once against the codec-aware transport helpers (send/recvNew/
// recvInto), so the same code path serves plain and compressed traffic:
// with a nil stream the helpers are exactly the pre-codec calls and the
// collectives stay bitwise- and virtual-clock-identical to the
// uncompressed substrate; with a codec every gradient hop encodes
// before the wire and decodes on arrival, the per-layer dot products
// feeding the Adasum combine are computed on the decoded values each
// rank actually combines, and the small float64 dot-product allreduce
// itself travels uncompressed.

// ringSum performs the classic bandwidth-optimal ring allreduce with
// elementwise sum: a ring reduce-scatter followed by a ring allgather,
// each moving (n-1)/n of the vector. This is the reproduction's
// stand-in for "NCCL's sum operation", the baseline of Figure 4. Chunk
// bounds are computed arithmetically and transport buffers come from
// the World pool, so the collective allocates nothing in steady state.
//
//adasum:noalloc
func (c *Communicator) ringSum(x []float32) {
	if c.Size() == 1 {
		return
	}
	bounds := equalBounds(len(x), c.Size())
	c.reduceScatterRing(x, bounds)
	c.allgatherRing(x, bounds)
}

// rvhSum performs recursive vector halving-and-doubling with
// elementwise sum: log p halving exchange steps (reduce-scatter), then
// log p doubling steps (allgather). The group size must be a power of
// two. This is the unmodified baseline algorithm that Algorithm 1
// extends.
//
//adasum:noalloc
func (c *Communicator) rvhSum(x []float32) {
	if !c.shared.group.IsPowerOfTwo() {
		panic("collective: StrategyRVH sum allreduce requires a power-of-two group")
	}
	if c.Size() == 1 {
		return
	}
	c.rvhSumRec(x, 0, len(x), 1)
}

// rvhSumRec runs one halving/doubling level over the window [lo, hi) of
// x, which every rank holds in the same full-size buffer: the reduction
// happens in place in this rank's half, and the allgather unwind
// receives the peer's half directly into its home position in x, so no
// level allocates. Received transport buffers are recycled to the pool.
//
//adasum:noalloc
func (c *Communicator) rvhSumRec(x []float32, lo, hi, d int) {
	p, g := c.p, c.shared.group
	mid := lo + tensor.HalfSplit(hi-lo)
	left := (c.mypos/d)%2 == 0
	var nghr, nlo, nhi int
	if left {
		nghr = c.mypos + d
		c.send(g[nghr], x[mid:hi])
		theirs := c.recvNew(g[nghr], mid-lo)
		mine := x[lo:mid]
		for i := range mine {
			mine[i] += theirs[i]
		}
		p.Release(theirs)
		nlo, nhi = lo, mid
	} else {
		nghr = c.mypos - d
		c.send(g[nghr], x[lo:mid])
		theirs := c.recvNew(g[nghr], hi-mid)
		mine := x[mid:hi]
		for i := range mine {
			mine[i] += theirs[i]
		}
		p.Release(theirs)
		nlo, nhi = mid, hi
	}
	p.ComputeReduce(4 * int64(nhi-nlo))
	if 2*d < len(g) {
		c.rvhSumRec(x, nlo, nhi, 2*d)
	}
	// Doubling unwind: exchange fully reduced halves into place.
	c.send(g[nghr], x[nlo:nhi])
	if left {
		c.recvInto(g[nghr], x[mid:hi])
	} else {
		c.recvInto(g[nghr], x[lo:mid])
	}
}

// adasumRVH is Algorithm 1: recursive vector halving where each level's
// reduction is the Adasum combine, made possible by an extra
// small-vector allreduce that completes the per-layer dot products
// across the ranks sharing slices of the same logical vectors. The
// group size must be a power of two. x is reduced in place on every
// rank.
//
//adasum:noalloc
func (c *Communicator) adasumRVH(x []float32, layout tensor.Layout) {
	if !c.shared.group.IsPowerOfTwo() {
		panic("collective: StrategyRVH Adasum requires a power-of-two group")
	}
	if c.Size() == 1 {
		return
	}
	// One flattened per-layer dot-product scratch serves every recursion
	// level; it comes from the World pool so repeated collectives reuse
	// the same allocation.
	dots := c.p.ScratchMeta(3 * layout.NumLayers())
	c.adasumRVHRec(x, 0, len(x), 1, layout, dots)
	c.p.ReleaseMeta(dots)
}

// adasumRVHRec runs one level of Algorithm 1 over the window [lo, hi)
// of x. Every rank keeps its working slice inside the same full-size
// buffer at its home offset: the combine writes into this rank's half
// of the window in place, and the allgather unwind receives the peer's
// half directly into its home position — no level builds fresh slices.
// d is the neighbor distance; dots is the reusable flattened per-layer
// partial buffer (3 entries per layer of layout).
//
//adasum:noalloc
func (c *Communicator) adasumRVHRec(x []float32, lo, hi, d int, layout tensor.Layout, dots []float64) {
	p, g := c.p, c.shared.group
	mid := lo + tensor.HalfSplit(hi-lo) // line 2
	left := (c.mypos/d)%2 == 0

	var a, b, dst, recv []float32
	var nghr, nlo, nhi int
	if left { // lines 3-7: keep left half, receive neighbor's left half
		nghr = c.mypos + d
		c.send(g[nghr], x[mid:hi])
		recv = c.recvNew(g[nghr], mid-lo)
		a, b, dst = x[lo:mid], recv, x[lo:mid]
		nlo, nhi = lo, mid
	} else { // lines 8-13: keep right half, receive neighbor's right half
		nghr = c.mypos - d
		c.send(g[nghr], x[lo:mid])
		recv = c.recvNew(g[nghr], hi-mid)
		a, b, dst = recv, x[mid:hi], x[mid:hi]
		nlo, nhi = mid, hi
	}

	d2 := 2 * d // line 14

	// Lines 15-17: per-layer partial dot products over this rank's
	// window, summed across the contiguous block of d2 group positions
	// that collectively hold the two logical vectors. Under a codec the
	// dots are taken over the decoded operands, so the combine's
	// coefficients match the arithmetic actually applied.
	adasum.WindowDots(dots, a, b, nlo, layout)
	p.ComputeReduce(3 * 4 * int64(len(a)))
	base := c.mypos / d2 * d2
	c.allreduceF64RD(base, d2, dots)

	// Line 18: apply the combine with the completed dot products.
	adasum.CombineWindow(dst, a, b, nlo, layout, dots)
	p.ComputeReduce(2 * 4 * int64(len(a)))
	p.Release(recv)

	if d2 < len(g) { // lines 19-21
		c.adasumRVHRec(x, nlo, nhi, d2, layout, dots)
	}

	// Lines 22-24: allgather unwind — exchange finished halves into place.
	c.send(g[nghr], x[nlo:nhi])
	if left {
		c.recvInto(g[nghr], x[mid:hi])
	} else {
		c.recvInto(g[nghr], x[lo:mid])
	}
}

// treeAdasum is an allreduce whose result is bitwise-identical to the
// host-side tree reduction adasum.Reducer.TreeReduce over the group's
// vectors ordered by group rank. It runs recursive doubling on full
// vectors: at distance d, the holders of adjacent 2d-blocks exchange
// their partial combinations and both apply the per-layer Adasum with
// the lower block's vector as the first operand — the exact pairing and
// operand order of the host tree ((g0⊕g1)⊕(g2⊕g3))⊕..., so every float
// operation matches the Reducer's and the distributed result can be
// A/B-compared against the monolithic path at zero tolerance. Any group
// size is accepted; non-powers-of-two reduce to position 0 with the
// host tree's odd-leftover pass-through and then broadcast.
//
// Compared with adasumRVH (Algorithm 1), the tree moves the full vector
// log p times instead of halving it, trading bandwidth optimality for
// exact arithmetic parity; it is the deterministic-parity mode of the
// overlapped reduction engine.
//
//adasum:noalloc
func (c *Communicator) treeAdasum(x []float32, layout tensor.Layout) {
	p, g := c.p, c.shared.group
	n := len(g)
	if n == 1 {
		return
	}
	pos := c.mypos
	buf := p.Scratch(len(x))
	if c.shared.group.IsPowerOfTwo() {
		// Symmetric exchange: every rank holds the block combination at
		// every level, so no final broadcast is needed and all ranks
		// compute bitwise-identical values (exactly identical when the
		// codec is lossless; re-decoded copies under a lossy one).
		for d := 1; d < n; d <<= 1 {
			peer := g[pos^d]
			c.send(peer, x)
			c.recvInto(peer, buf)
			if pos&d == 0 {
				adasum.CombineLayers(x, x, buf, layout)
			} else {
				adasum.CombineLayers(x, buf, x, layout)
			}
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
		p.Release(buf)
		return
	}
	// General size: tree-reduce to position 0 with the host tree's
	// pairing (an odd block at the end of a level passes through
	// unchanged), then broadcast the result.
	for d := 1; d < n; d <<= 1 {
		if pos%(2*d) == d {
			c.send(g[pos-d], x)
			break
		}
		if pos+d < n {
			c.recvInto(g[pos+d], buf)
			adasum.CombineLayers(x, x, buf, layout)
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
	}
	p.Release(buf)
	c.Broadcast(0, x)
}

// linearAdasum applies the Adasum combine in a chain: position 0 folds
// in every other rank's gradient left to right, then broadcasts the
// result. This is the linear application order of §3.4/§4.2.3 — O(p)
// latency and serialized bandwidth, kept as the ordering ablation and
// as the any-group-size fallback, mirroring the paper's finding that
// the tree (RVH) variant is faster on these topologies.
func (c *Communicator) linearAdasum(x []float32, layout tensor.Layout) {
	p, g := c.p, c.shared.group
	if len(g) == 1 {
		return
	}
	if c.mypos == 0 {
		for i := 1; i < len(g); i++ {
			got := c.recvNew(g[i], len(x))
			adasum.CombineLayers(x, x, got, layout)
			p.Release(got)
			p.ComputeReduce(5 * 4 * int64(len(x)))
		}
	} else {
		c.send(g[0], x)
	}
	c.Broadcast(0, x)
}
