// Package experiments contains one runner per table and figure of the
// paper's evaluation (§3.6-§5.5). Each runner builds its workload from
// the synthetic substrates, executes the sweep, and returns a structured
// result that both the CLI (cmd/adasum-experiments) and the benchmark
// harness (bench_test.go) consume. EXPERIMENTS.md records how each
// result's shape compares with the paper's.
//
// Every runner accepts a Scale: ScaleQuick shrinks worker counts, model
// sizes and step budgets so the full suite runs in seconds (used by
// tests and benchmarks); ScaleFull uses the DESIGN.md dimensions.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// ScaleQuick shrinks every sweep for CI-speed runs.
	ScaleQuick Scale = iota
	// ScaleFull runs the DESIGN.md dimensions.
	ScaleFull
)

func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// Table is a generic labelled grid for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for i := range t.Columns {
		fmt.Fprintf(w, "%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		for i, c := range r {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Series is a labelled x/y curve (one line of a figure).
type Series struct {
	Label string
	X, Y  []float64
}

// WriteCSV renders a set of series sharing an x-axis meaning (not
// necessarily the same x values) as label,x,y rows.
func WriteCSV(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintln(w, "series,x,y")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(w, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i])
		}
	}
	fmt.Fprintln(w)
}

// Sparkline renders a crude ASCII trend of ys (for CLI output).
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
