package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("x", "y")
	var buf bytes.Buffer
	tb.Write(&buf)
	out := buf.String()
	for _, want := range []string{"## demo", "a", "bb", "x", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	WriteCSV(&buf, "curves", []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{3, 4}}})
	out := buf.String()
	if !strings.Contains(out, "s,1,3") || !strings.Contains(out, "s,2,4") {
		t.Fatalf("csv output wrong:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := Sparkline([]float64{0, 1})
	if len([]rune(s)) != 2 {
		t.Fatalf("sparkline length: %q", s)
	}
}

func TestFig4ShapeQuick(t *testing.T) {
	r := RunFig4(ScaleQuick)
	if len(r.Bytes) == 0 {
		t.Fatal("empty sweep")
	}
	// Latency must be monotone non-decreasing with payload size for both
	// algorithms, and Adasum must stay within 2x of the sum baseline
	// (the "roughly equal" claim).
	for i := 1; i < len(r.Bytes); i++ {
		if r.NCCLms[i] < r.NCCLms[i-1]-1e-9 || r.Adasum[i] < r.Adasum[i-1]-1e-9 {
			t.Fatalf("latency not monotone at %d bytes", r.Bytes[i])
		}
	}
	if r.MaxRatio() > 2 {
		t.Fatalf("adasum/nccl ratio %v exceeds 2", r.MaxRatio())
	}
	// Bandwidth regime: largest payload must cost much more than the
	// smallest (we swept 14 doublings).
	if r.NCCLms[len(r.NCCLms)-1] < 4*r.NCCLms[0] {
		t.Fatal("sweep never left the latency floor")
	}
}

func TestTable1ShapeQuick(t *testing.T) {
	r := RunTable1(ScaleQuick)
	if r.With.Microbatch <= r.Without.Microbatch {
		t.Fatalf("microbatch did not grow: %d -> %d", r.Without.Microbatch, r.With.Microbatch)
	}
	if r.With.UpdateSec >= r.Without.UpdateSec {
		t.Fatalf("update time did not drop: %v -> %v", r.Without.UpdateSec, r.With.UpdateSec)
	}
	if r.With.Throughput <= r.Without.Throughput {
		t.Fatalf("throughput did not improve: %v -> %v", r.Without.Throughput, r.With.Throughput)
	}
	// Paper band: ~10% throughput gain, ~1.9x update speedup.
	if gain := r.With.Throughput / r.Without.Throughput; gain < 1.02 || gain > 1.3 {
		t.Fatalf("throughput gain %v outside plausible band", gain)
	}
}

func TestFig2ShapeQuick(t *testing.T) {
	r := RunFig2(ScaleQuick)
	am, sm := r.MeanErrors()
	if am >= sm {
		t.Fatalf("adasum mean error %v not below sync-sgd %v", am, sm)
	}
	if r.FinalAcc < 0.5 {
		t.Fatalf("parallel run failed to train: acc %v", r.FinalAcc)
	}
	// The paper notes the sync-SGD error decays as H decays; the last
	// fifth of the trace should sit below the first fifth on average.
	n := len(r.SumErr.Y)
	early := mean(r.SumErr.Y[:n/5])
	late := mean(r.SumErr.Y[n-n/5:])
	if late >= early {
		t.Fatalf("sync-sgd error did not decay: early %v late %v", early, late)
	}
}

func TestTable4ShapeQuick(t *testing.T) {
	r := RunTable4(ScaleQuick)
	if len(r.Rows) < 2 {
		t.Fatal("need at least two GPU counts")
	}
	base := r.Rows[0]
	if base.SumPH1 < 0.99 || base.SumPH1 > 1.01 {
		t.Fatalf("baseline row speedup %v != 1", base.SumPH1)
	}
	// Adasum's overhead at 64 GPUs is small (paper: <2% ph1, <1% ph2).
	if base.AdasumPH1 < 0.9 {
		t.Fatalf("adasum 64-GPU overhead too large: %v", base.AdasumPH1)
	}
	for _, row := range r.Rows[1:] {
		if row.SumPH1 <= base.SumPH1 || row.AdasumPH1 <= base.AdasumPH1 {
			t.Fatal("no scaling with more GPUs")
		}
		// Adasum wins total time thanks to fewer iterations.
		if row.AdasumTimeMin >= row.SumTimeMin {
			t.Fatalf("adasum time %v not below sum %v at %d GPUs",
				row.AdasumTimeMin, row.SumTimeMin, row.GPUs)
		}
	}
	// Baseline throughput calibration (paper: 12.2K / 4.6K samples/s).
	if r.BaselinePH1Tput < 10_000 || r.BaselinePH1Tput > 14_000 {
		t.Fatalf("ph1 baseline throughput %v outside the paper band", r.BaselinePH1Tput)
	}
}

func TestFig1ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	r := RunFig1("bert", ScaleQuick)
	early, late := r.EarlyLate()
	if late <= early {
		t.Fatalf("orthogonality did not rise: %v -> %v", early, late)
	}
	if len(r.PerLayer) == 0 {
		t.Fatal("no per-layer series recorded")
	}
}

// TestRunCompressionQuick is the acceptance gate of the compressed-
// communication subsystem: every lossy codec must cut charged wire
// bytes by at least 40% against the uncompressed overlapped step, the
// error-feedback top-k arm must reach the target accuracy on the
// quickstart config, and naive dropping must not within the same
// budget.
func TestRunCompressionQuick(t *testing.T) {
	r := RunCompression(ScaleQuick)
	if len(r.Codecs) < 5 || r.Codecs[0] != "none" {
		t.Fatalf("unexpected codec arms %v", r.Codecs)
	}
	idx := func(name string) int {
		for i, c := range r.Codecs {
			if c == name {
				return i
			}
		}
		t.Fatalf("codec %s missing from sweep %v", name, r.Codecs)
		return -1
	}
	for _, name := range []string{"fp16", "int8/1024", "topk/0.01+ef"} {
		i := idx(name)
		if r.WireReduction[i] < 0.4 {
			t.Fatalf("%s saves only %.0f%% wire bytes, want >= 40%%", name, r.WireReduction[i]*100)
		}
		if r.StepSec[i] >= r.StepSec[0] {
			t.Fatalf("%s step %v not below uncompressed %v", name, r.StepSec[i], r.StepSec[0])
		}
	}
	// The uncompressed baseline and the mildly lossy codecs converge.
	for _, name := range []string{"none", "fp16", "int8/1024"} {
		if i := idx(name); r.StepsToTarget[i] <= 0 {
			t.Fatalf("%s never reached the target (acc %v)", name, r.FinalAccuracy[i])
		}
	}
	// Error feedback is what makes 1% sparsification trainable: the EF
	// arm converges, naive dropping does not within the budget.
	ef, naive := idx("topk/0.01+ef"), idx("topk/0.01")
	if r.StepsToTarget[ef] <= 0 {
		t.Fatalf("top-k with error feedback never converged (acc %v)", r.FinalAccuracy[ef])
	}
	if r.StepsToTarget[naive] > 0 {
		t.Fatalf("naive top-k converged at step %d; the EF-vs-naive separation collapsed", r.StepsToTarget[naive])
	}
}

func TestRunElasticQuick(t *testing.T) {
	r := RunElastic(ScaleQuick)
	if len(r.Rows) != 6 {
		t.Fatalf("expected 6 (arm, condition) rows, got %d", len(r.Rows))
	}
	for _, arm := range []string{"flat-rvh", "hier-node"} {
		healthy := r.Row(arm, "healthy")
		straggler := r.Row(arm, "straggler")
		failure := r.Row(arm, "failure")
		if healthy == nil || straggler == nil || failure == nil {
			t.Fatalf("%s: missing rows", arm)
		}
		if straggler.MeanStepMs <= healthy.MeanStepMs {
			t.Fatalf("%s: straggler step %v not above healthy %v", arm, straggler.MeanStepMs, healthy.MeanStepMs)
		}
		if failure.Failures != 1 || failure.FinalWorkers != r.Ranks-1 {
			t.Fatalf("%s: failure arm did not shrink by one: %+v", arm, *failure)
		}
		if failure.FinalAccuracy < 0.85 {
			t.Fatalf("%s: shrunk run lost convergence: %v", arm, failure.FinalAccuracy)
		}
	}
}

func TestRunScaleQuick(t *testing.T) {
	r := RunScale(ScaleQuick)
	want := []int{64, 256, 1024}
	if len(r.Ranks) != len(want) {
		t.Fatalf("rank sweep %v, want %v", r.Ranks, want)
	}
	for i, n := range want {
		if r.Ranks[i] != n {
			t.Fatalf("rank sweep %v, want %v", r.Ranks, want)
		}
	}
	last := len(r.Ranks) - 1
	for i := range r.Ranks {
		for _, ms := range []float64{r.FlatMs[i], r.TwoLvlMs[i], r.ThreeLvlMs[i]} {
			if ms <= 0 {
				t.Fatalf("ranks=%d: non-positive latency in (%v, %v, %v)",
					r.Ranks[i], r.FlatMs[i], r.TwoLvlMs[i], r.ThreeLvlMs[i])
			}
		}
		if i > 0 && r.FlatMs[i] <= r.FlatMs[i-1] {
			t.Fatalf("flat latency not increasing with ranks: %v", r.FlatMs)
		}
		// Hierarchy keeps traffic off the spine: fewer wire bytes than flat
		// at every scale, and more levels help at the top end.
		if r.ThreeLvlMB[i] >= r.FlatMB[i] {
			t.Fatalf("ranks=%d: 3-level moved %v MB, flat only %v", r.Ranks[i], r.ThreeLvlMB[i], r.FlatMB[i])
		}
	}
	if s := r.HierarchySpeedupAt(); s <= 1.5 {
		t.Fatalf("flat/3-level speedup at %d ranks = %.2f, want > 1.5", r.Ranks[last], s)
	}
	// The gap widens with scale — the reason the sweep exists.
	if first := r.FlatMs[0] / r.ThreeLvlMs[0]; r.HierarchySpeedupAt() <= first {
		t.Fatalf("hierarchy advantage did not grow with ranks: %.2f at %d vs %.2f at %d",
			first, r.Ranks[0], r.HierarchySpeedupAt(), r.Ranks[last])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "1024") {
		t.Fatalf("rendered table missing largest rank count:\n%s", buf.String())
	}
}

// TestRunAdaptiveQuickScale is the adaptive-policy acceptance property
// at quick scale (64 ranks on the racked cluster): on every bandwidth
// arm the default policy's time-to-target is within 5% of the best
// static codec's, and on the shifting-bandwidth arm — where no static
// choice fits both halves — it is strictly better than every static.
func TestRunAdaptiveQuickScale(t *testing.T) {
	r := RunAdaptive(ScaleQuick)
	if len(r.Arms) != 3 || len(r.Knobs) != 5 {
		t.Fatalf("sweep shape %v x %v", r.Arms, r.Knobs)
	}
	adaptiveKnob := len(r.Knobs) - 1
	if r.Knobs[adaptiveKnob] != "adaptive" {
		t.Fatalf("last knob %q, want adaptive", r.Knobs[adaptiveKnob])
	}
	if r.StepsToTarget[adaptiveKnob] <= 0 {
		t.Fatalf("adaptive never reached the target (acc %v)", r.FinalAccuracy[adaptiveKnob])
	}
	for a, arm := range r.Arms {
		best, bestTTT := r.BestStatic(a)
		if best < 0 {
			t.Fatalf("%s: no static knob reached the target", arm)
		}
		got := r.Adaptive(a)
		if got < 0 {
			t.Fatalf("%s: adaptive knob has no time-to-target", arm)
		}
		if got > bestTTT*1.05 {
			t.Fatalf("%s: adaptive time-to-target %v more than 5%% above best static %s (%v)",
				arm, got, r.Knobs[best], bestTTT)
		}
		// Convergence parity with the knob it is judged against: the
		// policy must not buy its wall-clock with extra steps.
		if r.StepsToTarget[adaptiveKnob] > r.StepsToTarget[best] {
			t.Fatalf("%s: adaptive needs %d steps to target, best static %s only %d",
				arm, r.StepsToTarget[adaptiveKnob], r.Knobs[best], r.StepsToTarget[best])
		}
	}
	// The shifting arm is the policy's reason to exist: strictly faster
	// to target than every static codec.
	shift := len(r.Arms) - 1
	if r.Arms[shift] != "shifting" {
		t.Fatalf("last arm %q, want shifting", r.Arms[shift])
	}
	for i := 0; i < adaptiveKnob; i++ {
		ttt := r.TimeToTarget[shift][i]
		if ttt >= 0 && r.Adaptive(shift) >= ttt {
			t.Fatalf("shifting: adaptive %v not strictly below static %s %v",
				r.Adaptive(shift), r.Knobs[i], ttt)
		}
	}
}

// TestRunServeQuick pins the scheduling-policy comparison's shape and
// its two claims: priority preemption strictly improves the
// high-priority tenant's completion time over FIFO, and adding
// elasticity recovers makespan relative to preemption alone (shrunken
// tenants backfill the ranks that preemption churn leaves idle). The
// injected rank failure must be absorbed exactly once under every
// policy.
func TestRunServeQuick(t *testing.T) {
	r := RunServe(ScaleQuick)
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 policies, got %d", len(r.Rows))
	}
	fifo, pre, el := r.Row("fifo"), r.Row("preempt"), r.Row("preempt+elastic")
	if fifo == nil || pre == nil || el == nil {
		t.Fatal("missing policy row")
	}
	if fifo.Preemptions != 0 || pre.Preemptions == 0 {
		t.Fatalf("preemption counts inverted: fifo=%d preempt=%d", fifo.Preemptions, pre.Preemptions)
	}
	if el.Migrations == 0 {
		t.Fatal("elastic policy never migrated a job")
	}
	for _, row := range r.Rows {
		if row.Failures != 1 {
			t.Fatalf("%s absorbed %d failures, want the injected 1", row.Policy, row.Failures)
		}
		if row.Makespan <= 0 || row.HighDone <= 0 {
			t.Fatalf("%s has empty timings: %+v", row.Policy, row)
		}
	}
	if pre.HighDone >= fifo.HighDone {
		t.Fatalf("preemption did not improve high-priority latency: %v >= %v", pre.HighDone, fifo.HighDone)
	}
	if el.Makespan >= pre.Makespan {
		t.Fatalf("elasticity did not recover makespan: %v >= %v", el.Makespan, pre.Makespan)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "preempt+elastic") {
		t.Fatalf("rendered table missing policy row:\n%s", buf.String())
	}
}
