package experiments

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// ScaleResult is the production-scale rank sweep the sparse simnet
// makes runnable: one Adasum allreduce at 64–1024 ranks on the racked
// TCP-40Gb cluster, under the flat single-communicator reduction, the
// paper's 2-level hierarchy (sum within nodes, Adasum across) and the
// 3-level node+rack composition. This is the Table-4-class regime the
// paper's largest configurations live in — and the regime the related
// scaling literature (PAPERS.md) identifies as where flat centralized
// designs break down: the flat column grows with log2(n) spine-priced
// rounds while the hierarchical columns keep cross-rack traffic at a
// 1/32nd shard per rack, so the flat/3-level gap widens monotonically
// with rank count.
//
// Per-rank wire traffic is recorded alongside latency: hierarchy cuts
// simulated seconds precisely because it moves fewer bytes across the
// expensive tiers, and the meter makes that mechanism visible.
type ScaleResult struct {
	GPUsPerNode  int
	NodesPerRack int

	Ranks      []int
	FlatMs     []float64
	TwoLvlMs   []float64
	ThreeLvlMs []float64
	// FlatMB/TwoLvlMB/ThreeLvlMB are total wire megabytes per allreduce
	// (all ranks, all tiers).
	FlatMB     []float64
	TwoLvlMB   []float64
	ThreeLvlMB []float64
}

// ScaleConfig parameterizes the rank sweep.
type ScaleConfig struct {
	GPUsPerNode  int
	NodesPerRack int
	RankCounts   []int
	Layers       int
	LogicalBytes int // gradient payload per allreduce
	// MaxRealFloats bounds the actually-allocated vector; larger logical
	// payloads scale the cost model's per-byte terms instead (exact
	// under the linear alpha-beta model) — what keeps a 1024-rank sweep
	// inside CI budgets.
	MaxRealFloats int
}

func scaleConfig(scale Scale) ScaleConfig {
	cfg := ScaleConfig{
		GPUsPerNode:  4,
		NodesPerRack: 8,
		// Power-of-two rank counts keep every arm runnable: flat RVH
		// needs a power-of-two world, the hierarchies a power-of-two
		// cross level (ranks/32 here).
		RankCounts:    []int{64, 128, 256, 512, 1024},
		Layers:        32,
		LogicalBytes:  1 << 26, // a 64 MiB gradient, BERT-class
		MaxRealFloats: 1 << 15,
	}
	if scale == ScaleQuick {
		cfg.RankCounts = []int{64, 256, 1024}
		cfg.MaxRealFloats = 1 << 13
	}
	return cfg
}

// RunScale measures the three reduction topologies across rank counts
// on the racked TCP-40Gb cluster.
func RunScale(scale Scale) *ScaleResult {
	cfg := scaleConfig(scale)
	res := &ScaleResult{GPUsPerNode: cfg.GPUsPerNode, NodesPerRack: cfg.NodesPerRack}
	for _, ranks := range cfg.RankCounts {
		res.Ranks = append(res.Ranks, ranks)
		for levels := 0; levels <= 2; levels++ {
			sec, bytes := measureScale(cfg, ranks, levels)
			ms, mb := 1e3*sec, float64(bytes)/(1<<20)
			switch levels {
			case 0:
				res.FlatMs = append(res.FlatMs, ms)
				res.FlatMB = append(res.FlatMB, mb)
			case 1:
				res.TwoLvlMs = append(res.TwoLvlMs, ms)
				res.TwoLvlMB = append(res.TwoLvlMB, mb)
			default:
				res.ThreeLvlMs = append(res.ThreeLvlMs, ms)
				res.ThreeLvlMB = append(res.ThreeLvlMB, mb)
			}
		}
	}
	return res
}

// measureScale returns the simulated seconds and total wire bytes of
// one reduction at the given rank count with the given number of
// scatter levels (0 = flat RVH, 1 = node hierarchy, 2 = node+rack).
func measureScale(cfg ScaleConfig, ranks, levels int) (float64, int64) {
	realFloats := cfg.LogicalBytes / 4
	if realFloats < cfg.Layers {
		realFloats = cfg.Layers
	}
	scaleF := 1.0
	if realFloats > cfg.MaxRealFloats {
		scaleF = float64(realFloats) / float64(cfg.MaxRealFloats)
		realFloats = cfg.MaxRealFloats
	}
	model := simnet.TCP40Racked(ranks, cfg.NodesPerRack)
	model.BetaIntra *= scaleF
	model.BetaInter *= scaleF
	model.BetaCross *= scaleF
	model.FlopBeta *= scaleF
	model.MemCopyBeta *= scaleF

	names := make([]string, cfg.Layers)
	sizes := make([]int, cfg.Layers)
	per := realFloats / cfg.Layers
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
		sizes[i] = per
	}
	layout := tensor.NewLayout(names, sizes)

	w := comm.NewWorld(ranks, model)
	g := collective.WorldGroup(ranks)
	sec := comm.MaxClock(w, func(p *comm.Proc) {
		c := collective.New(p, g, collective.Config{Strategy: collective.StrategyRVH})
		x := make([]float32, layout.TotalSize())
		for i := range x {
			x[i] = float32(p.Rank()%5) + 0.5
		}
		switch levels {
		case 0:
			c.Adasum(x, layout)
		case 1:
			collective.NewHierarchy(c, cfg.GPUsPerNode).Adasum(x, layout)
		default:
			collective.NewHierarchy(c, cfg.GPUsPerNode, cfg.NodesPerRack).Adasum(x, layout)
		}
	})
	// Wire bytes are reported at the real (allocated) payload, scaled
	// back up to the logical payload to match the latency column.
	return sec, int64(float64(w.WireBytes()) * scaleF)
}

// Render writes the sweep table.
func (r *ScaleResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Fabric scale: Adasum on TCP-40Gb-racked, 64-%d ranks (%d GPUs/node, %d nodes/rack)",
			r.Ranks[len(r.Ranks)-1], r.GPUsPerNode, r.NodesPerRack),
		Columns: []string{"ranks", "flat_ms", "2level_ms", "3level_ms", "flat/3lvl",
			"flat_MB", "2level_MB", "3level_MB"},
	}
	for i := range r.Ranks {
		t.Add(r.Ranks[i], r.FlatMs[i], r.TwoLvlMs[i], r.ThreeLvlMs[i],
			r.FlatMs[i]/r.ThreeLvlMs[i], r.FlatMB[i], r.TwoLvlMB[i], r.ThreeLvlMB[i])
	}
	t.Write(w)
}

// HierarchySpeedupAt returns the flat/3-level latency ratio at the
// largest rank count of the sweep — the headline "hierarchy pays at
// scale" number.
func (r *ScaleResult) HierarchySpeedupAt() float64 {
	n := len(r.Ranks)
	if n == 0 {
		return 0
	}
	return r.FlatMs[n-1] / r.ThreeLvlMs[n-1]
}
