package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// Fig5Config parameterizes the ResNet-50 time-to-accuracy study (§5.1).
// The "2k"/"16k" labels refer to the paper's examples-per-allreduce on
// 64 GPUs; quick scale emulates the same configurations (including the
// paper's ×8/×64 linear LR-scaling factors) with fewer workers.
type Fig5Config struct {
	Workers     int
	SmallMicro  int // per-GPU microbatch of the "2K" configs
	LargeMicro  int // per-GPU microbatch of the "16K" configs
	Budget      int // epoch budget; the MultiStep schedule decays at 50%/75% of it
	Target      float64
	BaseLR      float64
	TrainN      int
	RealWorkers int // the paper's GPU count, for the time model
}

func fig5Config(scale Scale) Fig5Config {
	cfg := Fig5Config{
		Workers: 64, SmallMicro: 32, LargeMicro: 256,
		Budget: 48, Target: 0.725, BaseLR: 0.02,
		TrainN: 65536, RealWorkers: 64,
	}
	if scale == ScaleQuick {
		cfg.Workers = 16
		cfg.LargeMicro = 128
		cfg.Budget = 24
		cfg.TrainN = 16384
	}
	return cfg
}

// Fig5Run is one configuration's outcome.
type Fig5Run struct {
	Name           string
	EffectiveBatch int
	Converged      bool
	EpochsToTarget int // -1 when the run never reaches the target
	MinPerEpoch    float64
	TimeToAccMin   float64 // minutes; epochs * min/epoch; -1 if unconverged
	Curve          Series  // x = minutes, y = test accuracy
}

// Fig5Result aggregates the four §5.1 configurations.
type Fig5Result struct {
	Runs []Fig5Run // Sum 2k, Sum 16k, Adasum 2k, Adasum 16k
}

// RunFig5 reproduces Figure 5 and the two §5.1 tables: four training
// configurations of the ResNet-50 proxy (Sum/Adasum × 2K/16K examples
// per allreduce), each reporting epochs-to-target from the convergence
// simulation and minutes-per-epoch from the hardware cost model (compute
// throughput at the configuration's microbatch plus the hierarchical
// allreduce on PCIe+IB). Sum configurations follow the paper's linear
// LR-scaling rule (×8 at 2K, ×64 at 16K relative to the batch-256 base);
// Adasum reuses the base schedule untouched.
func RunFig5(scale Scale) *Fig5Result {
	cfg := fig5Config(scale)
	train, test := data.GeneratePair(data.Config{
		N: cfg.TrainN, Dim: 64, Classes: 16, Noise: 2.8, LabelNoise: 0.08, Seed: 51,
	}, 2048)
	factory := func() *nn.Network { return nn.NewResNetProxy(64, 16, 96, 3) }

	type variant struct {
		name   string
		red    trainer.Reduction
		micro  int
		factor float64 // the paper's linear LR scaling for the Sum runs
	}
	variants := []variant{
		{"Sum 2k", trainer.ReduceSum, cfg.SmallMicro, 8},
		{"Sum 16k", trainer.ReduceSum, cfg.LargeMicro, 64},
		{"Adasum 2k", trainer.ReduceAdasum, cfg.SmallMicro, 1},
		{"Adasum 16k", trainer.ReduceAdasum, cfg.LargeMicro, 1},
	}

	res := &Fig5Result{}
	for _, v := range variants {
		stepsPerEpoch := cfg.TrainN / (cfg.Workers * v.micro)
		if stepsPerEpoch == 0 {
			stepsPerEpoch = 1
		}
		sched := optim.Schedule(optim.MultiStep{
			Base:       cfg.BaseLR,
			Milestones: []int{cfg.Budget * stepsPerEpoch / 2, cfg.Budget * stepsPerEpoch * 3 / 4},
			Gamma:      0.1,
		})
		if v.factor > 1 {
			sched = optim.Scaled{Inner: sched, Factor: v.factor}
		}
		tr := trainer.Run(trainer.Config{
			Workers:        cfg.Workers,
			Microbatch:     v.micro,
			Reduction:      v.red,
			PerLayer:       true,
			Model:          factory,
			Optimizer:      optim.NewMomentum(0.9),
			Schedule:       sched,
			Train:          train,
			Test:           test,
			MaxEpochs:      cfg.Budget,
			TargetAccuracy: cfg.Target,
			Seed:           52,
			Parallel:       true,
		})
		minPerEpoch := fig5MinutesPerEpoch(cfg, fig5PaperMicro(v.micro == cfg.LargeMicro), v.red == trainer.ReduceAdasum)
		run := Fig5Run{
			Name:           v.name,
			EffectiveBatch: cfg.Workers * v.micro,
			Converged:      tr.Converged,
			EpochsToTarget: tr.EpochsToTarget,
			MinPerEpoch:    minPerEpoch,
			TimeToAccMin:   -1,
			Curve:          Series{Label: v.name},
		}
		if tr.Converged {
			run.TimeToAccMin = float64(tr.EpochsToTarget) * minPerEpoch
		}
		for _, e := range tr.Epochs {
			run.Curve.X = append(run.Curve.X, float64(e.Epoch)*minPerEpoch)
			run.Curve.Y = append(run.Curve.Y, e.TestAccuracy)
		}
		res.Runs = append(res.Runs, run)
	}
	return res
}

// fig5PaperMicro maps a variant to the microbatch used on the paper's
// hardware (32 for the 2K configs, 256 for 16K) so the time model always
// reflects the real cluster regardless of quick-mode shrinking.
func fig5PaperMicro(large bool) int {
	if large {
		return 256
	}
	return 32
}

// fig5MinutesPerEpoch computes the §5.1.3 epoch times on the hardware
// model: an ImageNet-sized epoch (1.28M images) over 64 V100s with the
// configuration's microbatch, plus one allreduce of the 102 MB gradient
// per step.
func fig5MinutesPerEpoch(cfg Fig5Config, paperMicro int, adasum bool) float64 {
	const imagenet = 1_281_167
	cm := simnet.ResNet50V100()
	steps := imagenet / (cfg.RealWorkers * paperMicro)
	compute := cm.StepComputeTime(paperMicro)
	kind := "sum"
	if adasum {
		kind = "hier-adasum"
	}
	comm := allreduceSeconds(simnet.AzureNC24rsV3, cfg.RealWorkers, 4, cm.ParamBytes, kind)
	return float64(steps) * (compute + comm) / 60
}

// Render writes the §5.1.2 epochs table, the §5.1.3 epoch-time table and
// the Figure 5 curves.
func (r *Fig5Result) Render(w io.Writer) {
	et := Table{
		Title:   "§5.1.2: epochs to target accuracy (74.9%-equivalent)",
		Columns: []string{"config", "eff.batch", "epochs", "converged"},
	}
	tt := Table{
		Title:   "§5.1.3: minutes per epoch (64 V100s, PCIe+IB model)",
		Columns: []string{"config", "min/epoch", "time-to-acc (min)"},
	}
	for _, run := range r.Runs {
		epochs := "-"
		if run.Converged {
			epochs = fmt.Sprint(run.EpochsToTarget)
		}
		et.Add(run.Name, run.EffectiveBatch, epochs, run.Converged)
		tta := "-"
		if run.TimeToAccMin >= 0 {
			tta = fmt.Sprintf("%.1f", run.TimeToAccMin)
		}
		tt.Add(run.Name, fmt.Sprintf("%.2f", run.MinPerEpoch), tta)
	}
	et.Write(w)
	tt.Write(w)
	var curves []Series
	for _, run := range r.Runs {
		curves = append(curves, run.Curve)
	}
	WriteCSV(w, "Figure 5: time (min) to accuracy", curves)
}

// Run returns the named run, or nil.
func (r *Fig5Result) Run(name string) *Fig5Run {
	for i := range r.Runs {
		if r.Runs[i].Name == name {
			return &r.Runs[i]
		}
	}
	return nil
}
