package experiments

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// TopologyResult is the multi-level topology sweep enabled by the
// communicator Split API: simulated latency of one Adasum allreduce on
// a racked cluster (GPU/node/rack, with an oversubscribed spine) under
// a flat single-communicator reduction, the paper's 2-level hierarchy
// (sum within nodes, Adasum across), and the 3-level composition that
// additionally reduce-scatters within each rack before crossing the
// spine. The 3-level variant is pure composition — NewHierarchy(c,
// gpus, nodesPerRack) — no new collective code.
type TopologyResult struct {
	Ranks        int
	GPUsPerNode  int
	NodesPerRack int
	Racks        int

	Bytes      []int
	FlatMs     []float64
	TwoLvlMs   []float64
	ThreeLvlMs []float64
}

// TopologyConfig parameterizes the sweep.
type TopologyConfig struct {
	GPUsPerNode  int
	NodesPerRack int
	Racks        int
	Layers       int
	MinExp       int // smallest payload, 2^MinExp bytes
	MaxExp       int
	// MaxRealFloats bounds the actually-allocated vector; larger logical
	// payloads scale the cost model's per-byte terms instead (exact
	// under the linear alpha-beta model).
	MaxRealFloats int
}

func topologyConfig(scale Scale) TopologyConfig {
	cfg := TopologyConfig{
		GPUsPerNode: 4, NodesPerRack: 2, Racks: 4,
		Layers: 32,
		MinExp: 18, MaxExp: 26,
		MaxRealFloats: 1 << 16,
	}
	if scale == ScaleQuick {
		cfg.Racks = 2
		cfg.MaxExp = 24
		cfg.MaxRealFloats = 1 << 14
	}
	return cfg
}

// RunTopology measures the three reduction topologies on the racked
// TCP-40Gb cluster across payload sizes.
func RunTopology(scale Scale) *TopologyResult {
	cfg := topologyConfig(scale)
	ranks := cfg.GPUsPerNode * cfg.NodesPerRack * cfg.Racks
	res := &TopologyResult{
		Ranks: ranks, GPUsPerNode: cfg.GPUsPerNode,
		NodesPerRack: cfg.NodesPerRack, Racks: cfg.Racks,
	}
	for exp := cfg.MinExp; exp <= cfg.MaxExp; exp += 2 {
		logicalBytes := 1 << exp
		res.Bytes = append(res.Bytes, logicalBytes)
		res.FlatMs = append(res.FlatMs, 1e3*measureTopology(cfg, ranks, logicalBytes, 0))
		res.TwoLvlMs = append(res.TwoLvlMs, 1e3*measureTopology(cfg, ranks, logicalBytes, 1))
		res.ThreeLvlMs = append(res.ThreeLvlMs, 1e3*measureTopology(cfg, ranks, logicalBytes, 2))
	}
	return res
}

// measureTopology returns the simulated seconds of one reduction of
// logicalBytes with the given number of scatter levels (0 = flat RVH,
// 1 = node hierarchy, 2 = node+rack hierarchy).
func measureTopology(cfg TopologyConfig, ranks, logicalBytes, levels int) float64 {
	realFloats := logicalBytes / 4
	if realFloats < cfg.Layers {
		realFloats = cfg.Layers
	}
	scaleF := 1.0
	if realFloats > cfg.MaxRealFloats {
		scaleF = float64(realFloats) / float64(cfg.MaxRealFloats)
		realFloats = cfg.MaxRealFloats
	}
	model := simnet.TCP40Racked(ranks, cfg.NodesPerRack)
	model.BetaIntra *= scaleF
	model.BetaInter *= scaleF
	model.BetaCross *= scaleF
	model.FlopBeta *= scaleF
	model.MemCopyBeta *= scaleF

	// A multi-layer layout gives the layer-aligned reduce-scatter real
	// boundaries to split at.
	names := make([]string, cfg.Layers)
	sizes := make([]int, cfg.Layers)
	per := realFloats / cfg.Layers
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
		sizes[i] = per
	}
	layout := tensor.NewLayout(names, sizes)

	w := comm.NewWorld(ranks, model)
	g := collective.WorldGroup(ranks)
	return comm.MaxClock(w, func(p *comm.Proc) {
		c := collective.New(p, g, collective.Config{Strategy: collective.StrategyRVH})
		x := make([]float32, layout.TotalSize())
		for i := range x {
			x[i] = float32(p.Rank()%5) + 0.5
		}
		switch levels {
		case 0:
			c.Adasum(x, layout)
		case 1:
			collective.NewHierarchy(c, cfg.GPUsPerNode).Adasum(x, layout)
		default:
			collective.NewHierarchy(c, cfg.GPUsPerNode, cfg.NodesPerRack).Adasum(x, layout)
		}
	})
}

// Render writes the sweep table.
func (r *TopologyResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Multi-level topology: Adasum on TCP-40Gb-racked, %d ranks (%d GPUs/node, %d nodes/rack, %d racks)",
			r.Ranks, r.GPUsPerNode, r.NodesPerRack, r.Racks),
		Columns: []string{"bytes", "flat_ms", "2level_ms", "3level_ms", "3lvl/2lvl"},
	}
	for i := range r.Bytes {
		t.Add(r.Bytes[i], r.FlatMs[i], r.TwoLvlMs[i], r.ThreeLvlMs[i],
			r.ThreeLvlMs[i]/r.TwoLvlMs[i])
	}
	t.Write(w)
}

// BestThreeLevelSpeedup returns the largest 2-level/3-level latency
// ratio of the sweep — above 1 means the extra rack stage paid for
// itself somewhere in the payload range.
func (r *TopologyResult) BestThreeLevelSpeedup() float64 {
	var m float64
	for i := range r.Bytes {
		if q := r.TwoLvlMs[i] / r.ThreeLvlMs[i]; q > m {
			m = q
		}
	}
	return m
}
