package experiments

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// allreduceSeconds measures the simulated wall-clock of one allreduce of
// logicalBytes across the cluster described by mkModel. Large logical
// payloads are represented by small real vectors with the per-byte costs
// scaled up — exact under the linear alpha-beta model (see Fig4Config).
// kind selects the algorithm: "sum" (hierarchical ring, the NCCL
// stand-in), "adasum" (AdasumRVH), or "hier-adasum" (§4.2.2).
func allreduceSeconds(mkModel func(ranks int) *simnet.Model, ranks, gpusPerNode, logicalBytes int, kind string) float64 {
	const maxReal = 1 << 16
	realFloats := logicalBytes / 4
	if realFloats < 1 {
		realFloats = 1
	}
	scaleF := 1.0
	if realFloats > maxReal {
		scaleF = float64(realFloats) / float64(maxReal)
		realFloats = maxReal
	}
	model := mkModel(ranks)
	model.BetaIntra *= scaleF
	model.BetaInter *= scaleF
	model.FlopBeta *= scaleF
	model.MemCopyBeta *= scaleF

	w := comm.NewWorld(ranks, model)
	g := collective.WorldGroup(ranks)
	layout := tensor.FlatLayout(realFloats)
	return comm.MaxClock(w, func(p *comm.Proc) {
		c := collective.New(p, g, collective.Config{Strategy: collective.StrategyRVH})
		x := make([]float32, realFloats)
		for i := range x {
			x[i] = float32(p.Rank()%7) + 0.25
		}
		switch kind {
		case "sum":
			collective.NewHierarchy(c, gpusPerNode).AllreduceSum(x)
		case "adasum":
			c.Adasum(x, layout)
		case "hier-adasum":
			collective.NewHierarchy(c, gpusPerNode).Adasum(x, layout)
		default:
			panic("experiments: unknown allreduce kind " + kind)
		}
	})
}
