package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// CompressionResult is the compressed-communication sweep: for each wire
// codec, the charged wire bytes and simulated step time of one
// overlapped bucketed AdasumRVH reduction on the slow-interconnect
// TCP-40Gb cluster (the system side), and the reduction steps to a
// target accuracy on the quickstart-style MNIST-proxy config (the
// algorithmic side). The topk arm appears twice — with and without
// error feedback — because the sweep's point is that sparsification
// composes with Adasum only when the dropped mass is carried into the
// next step.
type CompressionResult struct {
	Ranks      int
	Layers     int
	GradBytes  int64
	ComputeSec float64

	Codecs        []string
	WireBytes     []int64
	WireReduction []float64 // fraction of the uncompressed wire bytes saved
	StepSec       []float64
	StepSpeedup   []float64 // uncompressed step time / this codec's
	StepsToTarget []int     // -1 when the run never (sustainably) reached the target
	FinalAccuracy []float64
}

// CompressionConfig parameterizes the sweep.
type CompressionConfig struct {
	Ranks          int
	Layers         int
	LayerFloats    int
	FusionBytes    int
	ComputePerByte float64

	// Convergence arm (quickstart-style config).
	Workers        int
	TrainN, TestN  int
	Microbatch     int
	Hidden         int
	MaxEpochs      int
	TargetAccuracy float64
	EvalEverySteps int
}

func compressionConfig(scale Scale) CompressionConfig {
	cfg := CompressionConfig{
		Ranks: 16, Layers: 48, LayerFloats: 1 << 16,
		FusionBytes: 2 << 20,
		// Light compute relative to the TCP-40Gb wire: the step is
		// communication-bound, the regime where cutting wire bytes pays
		// (on a compute-bound step, overlap already hides the wire and
		// compression buys little — that is RunOverlap's story).
		ComputePerByte: 1e-9,
		Workers:        8, TrainN: 8192, TestN: 1024,
		Microbatch: 32, Hidden: 64,
		// A bounded step budget is what separates the top-k arms: with
		// error feedback the sparsified run converges in a few dozen
		// steps, while naive dropping needs several times that — so
		// within this budget only the EF arm (sustainably) reaches the
		// target.
		MaxEpochs: 3, TargetAccuracy: 0.97, EvalEverySteps: 8,
	}
	if scale == ScaleQuick {
		cfg.Ranks = 8
		cfg.Layers = 24
		cfg.LayerFloats = 1 << 14
		cfg.FusionBytes = 1 << 18
		cfg.Workers = 4
		cfg.TrainN = 4096
		cfg.TestN = 512
		cfg.MaxEpochs = 4
	}
	return cfg
}

// compressionCodecs returns the sweep arms. The order matters only in
// that the uncompressed arm comes first: it is the baseline the
// reduction and speedup columns are computed against.
func compressionCodecs() []compress.Codec {
	return []compress.Codec{
		compress.None(),
		compress.FP16(),
		compress.Int8(0),
		compress.TopK(0.01, true),
		compress.TopK(0.01, false),
	}
}

// RunCompression measures every codec arm on both axes.
func RunCompression(scale Scale) *CompressionResult {
	cfg := compressionConfig(scale)
	names := make([]string, cfg.Layers)
	sizes := make([]int, cfg.Layers)
	for i := range names {
		names[i] = fmt.Sprintf("layer%d", i)
		sizes[i] = cfg.LayerFloats
	}
	layout := tensor.NewLayout(names, sizes)
	gradBytes := 4 * int64(layout.TotalSize())
	stepSec := float64(gradBytes) * cfg.ComputePerByte

	res := &CompressionResult{
		Ranks: cfg.Ranks, Layers: cfg.Layers,
		GradBytes: gradBytes, ComputeSec: stepSec,
	}
	for _, codec := range compressionCodecs() {
		wire, sec := measureCompressedStep(cfg, layout, stepSec, codec)
		steps, acc := measureCompressedConvergence(cfg, codec)
		res.Codecs = append(res.Codecs, codec.String())
		res.WireBytes = append(res.WireBytes, wire)
		res.StepSec = append(res.StepSec, sec)
		res.StepsToTarget = append(res.StepsToTarget, steps)
		res.FinalAccuracy = append(res.FinalAccuracy, acc)
	}
	base := float64(res.WireBytes[0])
	baseSec := res.StepSec[0]
	for i := range res.Codecs {
		res.WireReduction = append(res.WireReduction, 1-float64(res.WireBytes[i])/base)
		res.StepSpeedup = append(res.StepSpeedup, baseSec/res.StepSec[i])
	}
	return res
}

// measureCompressedStep runs one overlapped bucketed AdasumRVH step on
// the TCP-40Gb cluster under the codec and returns the charged wire
// bytes and the simulated step seconds.
func measureCompressedStep(cfg CompressionConfig, layout tensor.Layout, stepSec float64, codec compress.Codec) (wire int64, sec float64) {
	model := simnet.TCP40(cfg.Ranks)
	w := comm.NewWorld(cfg.Ranks, model)
	group := collective.WorldGroup(cfg.Ranks)
	engines := make([]*overlap.Engine, cfg.Ranks)
	for r := range engines {
		engines[r] = overlap.New(overlap.Options{
			Group: group, Layout: layout,
			FusionBytes: cfg.FusionBytes, Strategy: collective.StrategyRVH,
			Overlap: true, StepSeconds: stepSec,
			Compression: codec,
		})
	}
	xs := make([][]float32, cfg.Ranks)
	for r := range xs {
		rng := rand.New(rand.NewSource(int64(3000 + r)))
		xs[r] = make([]float32, layout.TotalSize())
		for i := range xs[r] {
			xs[r][i] = rng.Float32() - 0.5
		}
	}
	sec = comm.MaxClock(w, func(p *comm.Proc) {
		engines[p.Rank()].Step(p, xs[p.Rank()])
	})
	return w.WireBytes(), sec
}

// measureCompressedConvergence trains the quickstart-style MNIST-proxy
// MLP under the compression knob (bucketed synchronous Adasum, free
// network — this arm isolates the codec's algorithmic effect) and
// returns the steps to the target accuracy (-1 if never reached) and
// the final accuracy.
func measureCompressedConvergence(cfg CompressionConfig, codec compress.Compression) (steps int, acc float64) {
	train, test := data.SyntheticMNIST(7, cfg.TrainN, cfg.TestN)
	r := trainer.Run(trainer.Config{
		Workers:     cfg.Workers,
		Microbatch:  cfg.Microbatch,
		Reduction:   trainer.ReduceAdasum,
		Scope:       trainer.PostOptimizer,
		PerLayer:    true,
		Comm:        trainer.CommCluster,
		FusionBytes: 16 << 10, // several buckets per step
		Compression: codec,
		Model: func() *nn.Network {
			return nn.NewMLP(train.Dim, cfg.Hidden, train.Classes)
		},
		Optimizer:      optim.NewAdam(),
		Schedule:       optim.Constant{Base: 0.002},
		Train:          train,
		Test:           test,
		MaxEpochs:      cfg.MaxEpochs,
		TargetAccuracy: cfg.TargetAccuracy,
		EvalEverySteps: cfg.EvalEverySteps,
		// A transient crossing does not count as convergence: naive
		// top-k oscillates, and the sweep's claim is that only error
		// feedback holds the target.
		Sustained: true,
		Seed:      5,
	})
	return r.StepsToTarget, r.FinalAccuracy
}

// Render writes the sweep table.
func (r *CompressionResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Compressed communication: bucketed AdasumRVH on TCP-40Gb, %d ranks, %d layers (%.1f MB grad); convergence on the quickstart MNIST proxy",
			r.Ranks, r.Layers, float64(r.GradBytes)/float64(1<<20)),
		Columns: []string{"codec", "wire_MB", "saved", "step_ms", "speedup", "steps_to_target", "final_acc"},
	}
	for i := range r.Codecs {
		steps := fmt.Sprint(r.StepsToTarget[i])
		if r.StepsToTarget[i] < 0 {
			steps = "never"
		}
		t.Add(r.Codecs[i],
			float64(r.WireBytes[i])/float64(1<<20),
			fmt.Sprintf("%.0f%%", r.WireReduction[i]*100),
			r.StepSec[i]*1e3,
			r.StepSpeedup[i],
			steps,
			r.FinalAccuracy[i])
	}
	t.Write(w)
}

// WireReductionFor returns the fraction of baseline wire bytes saved by
// the named codec arm, or 0 if absent.
func (r *CompressionResult) WireReductionFor(name string) float64 {
	for i, c := range r.Codecs {
		if c == name {
			return r.WireReduction[i]
		}
	}
	return 0
}
