package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

// Fig6Cell is one bar of Figure 6: a (method, GPU count, tuned?) cell
// with the accuracy reached under the aggressive 2-epoch schedule, and
// the learning rate used (base LR for untuned, the grid-search winner
// for tuned).
type Fig6Cell struct {
	Method   string // "adasum" or "sum"
	GPUs     int
	Tuned    bool
	LR       float64
	Accuracy float64
}

// Fig6Result aggregates all cells plus the sequential reference.
type Fig6Result struct {
	BaseLR      float64
	SeqAccuracy float64 // single-worker accuracy with the base schedule
	TargetAcc   float64
	Cells       []Fig6Cell
	GPUCounts   []int
}

// Fig6Config parameterizes the LeNet-5 case study.
type Fig6Config struct {
	GPUCounts  []int
	TrainN     int
	TestN      int
	Epochs     int
	WarmupFrac float64
	BaseLR     float64
	Batch      int
	LRGrid     []float64
}

func fig6Config(scale Scale) Fig6Config {
	cfg := Fig6Config{
		GPUCounts:  []int{4, 8, 16, 32},
		TrainN:     16384,
		TestN:      2048,
		Epochs:     2,
		WarmupFrac: 0.17,
		BaseLR:     0.0328, // the paper's tuned sequential rate
		Batch:      32,
		LRGrid:     []float64{0.004, 0.008, 0.0164, 0.0328, 0.0656, 0.13},
	}
	if scale == ScaleQuick {
		cfg.GPUCounts = []int{4, 16}
		cfg.TrainN = 6144
		cfg.TestN = 1024
		cfg.LRGrid = []float64{0.008, 0.0328, 0.0656}
	}
	return cfg
}

// RunFig6 reproduces the §5.4 LeNet-5 case study: under an aggressive
// linear warmup/decay schedule that barely reaches the target accuracy
// sequentially in 2 epochs, compare Sum (Horovod's gradient sum — the
// base LR effectively multiplied by the worker count) against Adasum at
// 4-32 workers, both with the untouched base LR and with a per-cell
// grid-searched LR. The paper's shape: Sum collapses above 8 GPUs
// untuned and needs its LR halved per doubling when tuned; Adasum keeps
// converging untouched.
func RunFig6(scale Scale) *Fig6Result {
	cfg := fig6Config(scale)
	train, test := data.SyntheticMNIST(61, cfg.TrainN, cfg.TestN)

	res := &Fig6Result{BaseLR: cfg.BaseLR, GPUCounts: cfg.GPUCounts}
	res.SeqAccuracy = fig6Run(cfg, train, test, 1, trainer.ReduceSum, cfg.BaseLR)
	res.TargetAcc = res.SeqAccuracy - 0.003 // "barely reaches" margin

	for _, gpus := range cfg.GPUCounts {
		for _, method := range []trainer.Reduction{trainer.ReduceAdasum, trainer.ReduceSum} {
			name := "adasum"
			if method == trainer.ReduceSum {
				name = "sum"
			}
			// Untuned: the sequential base LR as-is.
			acc := fig6Run(cfg, train, test, gpus, method, cfg.BaseLR)
			res.Cells = append(res.Cells, Fig6Cell{
				Method: name, GPUs: gpus, Tuned: false, LR: cfg.BaseLR, Accuracy: acc,
			})
			// Tuned: grid search.
			bestLR, bestAcc := cfg.BaseLR, acc
			for _, lr := range cfg.LRGrid {
				if lr == cfg.BaseLR {
					continue
				}
				a := fig6Run(cfg, train, test, gpus, method, lr)
				if a > bestAcc {
					bestAcc, bestLR = a, lr
				}
			}
			res.Cells = append(res.Cells, Fig6Cell{
				Method: name, GPUs: gpus, Tuned: true, LR: bestLR, Accuracy: bestAcc,
			})
		}
	}
	return res
}

// fig6Run trains one configuration and returns its final test accuracy.
// The epoch budget is fixed (the §5.4 protocol): more workers means
// fewer, larger steps through the same schedule.
func fig6Run(cfg Fig6Config, train, test *data.Dataset, gpus int, method trainer.Reduction, lr float64) float64 {
	stepsPerEpoch := cfg.TrainN / (gpus * cfg.Batch)
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}
	total := cfg.Epochs * stepsPerEpoch
	sched := optim.Schedule(optim.LinearWarmupDecay{
		Base:        lr,
		WarmupSteps: int(cfg.WarmupFrac * float64(total)),
		TotalSteps:  total,
	})
	if method == trainer.ReduceSum && gpus > 1 {
		// Horovod's Sum op adds the worker gradients: equivalent to the
		// mean with the rate multiplied by the worker count.
		sched = optim.Scaled{Inner: sched, Factor: float64(gpus)}
	}
	r := trainer.Run(trainer.Config{
		Workers:    gpus,
		Microbatch: cfg.Batch,
		Reduction:  method,
		PerLayer:   true,
		Model:      func() *nn.Network { return nn.NewMLP(196, 64, 10) },
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   sched,
		Train:      train,
		Test:       test,
		MaxEpochs:  cfg.Epochs,
		Seed:       62,
		Parallel:   true,
	})
	return r.FinalAccuracy
}

// Cell returns the requested cell, or nil.
func (r *Fig6Result) Cell(method string, gpus int, tuned bool) *Fig6Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Method == method && c.GPUs == gpus && c.Tuned == tuned {
			return c
		}
	}
	return nil
}

// Render writes the Figure 6 accuracy grid and the §5.4 tuned-LR table.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "sequential reference accuracy (2-epoch aggressive schedule): %.4f (target %.4f)\n\n",
		r.SeqAccuracy, r.TargetAcc)
	acc := Table{
		Title:   "Figure 6: accuracy under the aggressive sequential schedule",
		Columns: []string{"gpus", "adasum", "adasum(tuned)", "sum", "sum(tuned)"},
	}
	for _, g := range r.GPUCounts {
		acc.Add(g,
			fmt.Sprintf("%.4f", r.Cell("adasum", g, false).Accuracy),
			fmt.Sprintf("%.4f", r.Cell("adasum", g, true).Accuracy),
			fmt.Sprintf("%.4f", r.Cell("sum", g, false).Accuracy),
			fmt.Sprintf("%.4f", r.Cell("sum", g, true).Accuracy),
		)
	}
	acc.Write(w)
	lrs := Table{
		Title:   "§5.4: tuned learning rates per configuration",
		Columns: []string{"method", "gpus", "tuned LR"},
	}
	for _, g := range r.GPUCounts {
		lrs.Add("adasum", g, fmt.Sprintf("%.4f", r.Cell("adasum", g, true).LR))
		lrs.Add("sum", g, fmt.Sprintf("%.4f", r.Cell("sum", g, true).LR))
	}
	lrs.Write(w)
}
