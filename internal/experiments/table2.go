package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// Table2Row is one column of the paper's Table 2 (the table is
// transposed there): a local-steps configuration with its effective
// batch, epoch time on the TCP cluster, epochs to convergence, and total
// time to accuracy.
type Table2Row struct {
	LocalSteps     int
	EffectiveBatch int
	MinPerEpoch    float64
	Epochs         int
	Converged      bool
	TimeToAccMin   float64
}

// Table2Result holds both configurations.
type Table2Result struct {
	Rows []Table2Row // local=16, local=1
}

// Table2Config parameterizes the slow-TCP local-SGD study (§5.2).
type Table2Config struct {
	Workers     int
	Micro       int
	Budget      int
	Target      float64
	LRLocal1    float64 // per-config tuned rates, like the paper's
	LRLocal16   float64 // "small hyper-parameter search over the learning rate"
	TrainN      int
	RealWorkers int // paper cluster: 16 V100s
	RealMicro   int // 256 per GPU
}

func table2Config(scale Scale) Table2Config {
	cfg := Table2Config{
		Workers: 16, Micro: 64, Budget: 32, Target: 0.70,
		LRLocal1: 0.01, LRLocal16: 0.005,
		TrainN: 32768, RealWorkers: 16, RealMicro: 256,
	}
	if scale == ScaleQuick {
		cfg.Workers = 8
		cfg.Micro = 32
		cfg.Budget = 24
		cfg.TrainN = 8192
	}
	return cfg
}

// RunTable2 reproduces Table 2 (§5.2): the TensorFlow ResNet-50 local-SGD
// mode on a slow TCP interconnect. Both configurations use Adasum on the
// model deltas; they differ in how many local optimizer steps run
// between allreduces (16 vs 1). Convergence comes from the LocalSGD
// trainer mode; epoch time composes the per-step compute at microbatch
// 256 with one 102 MB allreduce every LocalSteps steps over the TCP cost
// model. The paper's shape: 16 local steps need more epochs (84 vs 68)
// but so much less communication that total time drops.
func RunTable2(scale Scale) *Table2Result {
	cfg := table2Config(scale)
	train, test := data.GeneratePair(data.Config{
		N: cfg.TrainN, Dim: 64, Classes: 16, Noise: 2.8, LabelNoise: 0.08, Seed: 71,
	}, 2048)
	factory := func() *nn.Network { return nn.NewResNetProxy(64, 16, 96, 3) }

	res := &Table2Result{}
	for _, local := range []int{16, 1} {
		stepsPerEpoch := cfg.TrainN / (cfg.Workers * cfg.Micro * local)
		if stepsPerEpoch == 0 {
			stepsPerEpoch = 1
		}
		base := cfg.LRLocal1
		if local == 16 {
			base = cfg.LRLocal16
		}
		sched := optim.MultiStep{
			Base:       base,
			Milestones: []int{cfg.Budget * stepsPerEpoch / 2, cfg.Budget * stepsPerEpoch * 3 / 4},
			Gamma:      0.1,
		}
		tr := trainer.Run(trainer.Config{
			Workers:        cfg.Workers,
			Microbatch:     cfg.Micro,
			LocalSteps:     local,
			Reduction:      trainer.ReduceAdasum,
			Scope:          trainer.LocalSGD,
			PerLayer:       true,
			Model:          factory,
			Optimizer:      optim.NewMomentum(0.9),
			Schedule:       sched,
			Train:          train,
			Test:           test,
			MaxEpochs:      cfg.Budget,
			TargetAccuracy: cfg.Target,
			Seed:           72,
			Parallel:       true,
		})
		row := Table2Row{
			LocalSteps:     local,
			EffectiveBatch: cfg.RealWorkers * cfg.RealMicro * local,
			MinPerEpoch:    table2MinutesPerEpoch(cfg, local),
			Epochs:         tr.EpochsToTarget,
			Converged:      tr.Converged,
			TimeToAccMin:   -1,
		}
		if tr.Converged {
			row.TimeToAccMin = float64(tr.EpochsToTarget) * row.MinPerEpoch
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// table2MinutesPerEpoch composes the §5.2 time model: ImageNet epoch on
// 16 V100s at microbatch 256, one allreduce of the ResNet-50 gradient
// every `local` steps over 40 Gb TCP.
func table2MinutesPerEpoch(cfg Table2Config, local int) float64 {
	const imagenet = 1_281_167
	cm := simnet.ResNet50TF()
	steps := imagenet / (cfg.RealWorkers * cfg.RealMicro)
	compute := cm.StepComputeTime(cfg.RealMicro)
	comm := allreduceSeconds(simnet.TCP40, cfg.RealWorkers, 4, cm.ParamBytes, "hier-adasum")
	perStep := compute + comm/float64(local)
	return float64(steps) * perStep / 60
}

// Render writes Table 2.
func (r *Table2Result) Render(w io.Writer) {
	t := Table{
		Title: "Table 2: TensorFlow ResNet-50 local SGD on slow TCP (Adasum)",
		Columns: []string{
			"local steps", "eff.batch", "min/epoch", "epochs", "time-to-acc (min)",
		},
	}
	for _, row := range r.Rows {
		ep, tta := "-", "-"
		if row.Converged {
			ep = fmt.Sprint(row.Epochs)
			tta = fmt.Sprintf("%.1f", row.TimeToAccMin)
		}
		t.Add(row.LocalSteps, row.EffectiveBatch, fmt.Sprintf("%.2f", row.MinPerEpoch), ep, tta)
	}
	t.Write(w)
}
