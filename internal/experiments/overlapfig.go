package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// OverlapResult is the overlap-vs-sync sweep: simulated per-step latency
// of the bucketed AdasumRVH reduction with and without communication/
// compute overlap, as a function of the fusion threshold, on the
// slow-interconnect (inter-node-dominated) cluster where overlap matters
// most. It quantifies the §4.4.3 system-efficiency mechanism the static
// Figure 4 cost model cannot show: buckets launched against the tail of
// backprop hide their transfer behind the remaining compute.
type OverlapResult struct {
	Ranks      int
	Layers     int
	GradBytes  int
	ComputeSec float64 // simulated backward time per step (the floor)
	Thresholds []int
	SyncSec    []float64
	OverlapSec []float64
	Speedup    []float64
}

// OverlapConfig parameterizes the sweep.
type OverlapConfig struct {
	Ranks       int
	Layers      int
	LayerFloats int
	Thresholds  []int
	// ComputePerByte converts gradient bytes to simulated backward
	// seconds (how much compute there is to hide communication behind).
	ComputePerByte float64
}

func overlapConfig(scale Scale) OverlapConfig {
	cfg := OverlapConfig{
		Ranks: 16, Layers: 48, LayerFloats: 1 << 16,
		Thresholds:     []int{1 << 18, 1 << 20, 2 << 20, 8 << 20},
		ComputePerByte: 6e-9,
	}
	if scale == ScaleQuick {
		cfg.Ranks = 8
		cfg.Layers = 24
		cfg.LayerFloats = 1 << 14
		cfg.Thresholds = []int{1 << 16, 1 << 18, 1 << 20}
	}
	return cfg
}

// RunOverlap measures the overlapped-reduction engine against its
// synchronous twin. Both runs reduce the same per-rank gradients through
// the same buckets and collectives — the engine guarantees bitwise-equal
// results — so the entire difference between the two columns is
// scheduling: per-bucket collectives issued against the remaining
// backward compute versus after it.
func RunOverlap(scale Scale) *OverlapResult {
	cfg := overlapConfig(scale)
	names := make([]string, cfg.Layers)
	sizes := make([]int, cfg.Layers)
	for i := range names {
		names[i] = fmt.Sprintf("layer%d", i)
		sizes[i] = cfg.LayerFloats
	}
	layout := tensor.NewLayout(names, sizes)
	gradBytes := layout.TotalSize() * 4
	stepSec := float64(gradBytes) * cfg.ComputePerByte

	res := &OverlapResult{
		Ranks: cfg.Ranks, Layers: cfg.Layers,
		GradBytes: gradBytes, ComputeSec: stepSec,
	}
	for _, threshold := range cfg.Thresholds {
		syncT := measureOverlapStep(cfg, layout, stepSec, threshold, false)
		overT := measureOverlapStep(cfg, layout, stepSec, threshold, true)
		res.Thresholds = append(res.Thresholds, threshold)
		res.SyncSec = append(res.SyncSec, syncT)
		res.OverlapSec = append(res.OverlapSec, overT)
		res.Speedup = append(res.Speedup, syncT/overT)
	}
	return res
}

// measureOverlapStep returns the simulated seconds of one bucketed
// AdasumRVH reduction step on the TCP40 cluster.
func measureOverlapStep(cfg OverlapConfig, layout tensor.Layout, stepSec float64, threshold int, async bool) float64 {
	model := simnet.TCP40(cfg.Ranks)
	w := comm.NewWorld(cfg.Ranks, model)
	group := collective.WorldGroup(cfg.Ranks)
	engines := make([]*overlap.Engine, cfg.Ranks)
	for r := range engines {
		engines[r] = overlap.New(overlap.Options{
			Group: group, Layout: layout,
			FusionBytes: threshold, Strategy: collective.StrategyRVH,
			Overlap: async, StepSeconds: stepSec,
		})
	}
	xs := make([][]float32, cfg.Ranks)
	for r := range xs {
		rng := rand.New(rand.NewSource(int64(1000 + r)))
		xs[r] = make([]float32, layout.TotalSize())
		for i := range xs[r] {
			xs[r][i] = rng.Float32() - 0.5
		}
	}
	return comm.MaxClock(w, func(p *comm.Proc) {
		engines[p.Rank()].Step(p, xs[p.Rank()])
	})
}

// Render writes the sweep table.
func (r *OverlapResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Overlapped reduction: bucketed AdasumRVH on TCP-40Gb, %d ranks, %d layers (%.1f MB grad, %.0f ms backward)",
			r.Ranks, r.Layers, float64(r.GradBytes)/float64(1<<20), r.ComputeSec*1e3),
		Columns: []string{"fusion_bytes", "sync_ms", "overlap_ms", "speedup"},
	}
	for i := range r.Thresholds {
		t.Add(r.Thresholds[i], r.SyncSec[i]*1e3, r.OverlapSec[i]*1e3, r.Speedup[i])
	}
	t.Write(w)
}

// BestSpeedup returns the largest sync/overlap ratio of the sweep.
func (r *OverlapResult) BestSpeedup() float64 {
	var m float64
	for _, s := range r.Speedup {
		if s > m {
			m = s
		}
	}
	return m
}
