package experiments

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// ElasticResult is the fault-tolerance sweep: training on the racked
// TCP fabric under injected stragglers and rank failures, for the flat
// RVH Adasum and its 2-level hierarchical counterpart. It measures what
// the elasticity subsystem exists to measure — how much a straggler
// stretches the step (and whether the hierarchy, whose intra-node stage
// keeps the slow rank's traffic local, absorbs it better), and what a
// mid-run rank loss costs in steps-to-target once the gang shrinks and
// re-shards onto the survivors.
type ElasticResult struct {
	Ranks        int
	GPUsPerNode  int
	NodesPerRack int
	Rows         []ElasticRow
}

// ElasticRow is one (reduction arm, injected condition) cell.
type ElasticRow struct {
	Arm       string // "flat-rvh" | "hier-node"
	Condition string // "healthy" | "straggler" | "failure"
	// MeanStepMs is SimSeconds over the steps actually run, in ms.
	MeanStepMs float64
	// StepsToTarget is the step count at the accuracy crossing (-1 if
	// the target was never reached).
	StepsToTarget int
	FinalAccuracy float64
	// FinalWorkers and Failures summarize the elastic events.
	FinalWorkers int
	Failures     int
}

// ElasticConfig parameterizes the sweep.
type ElasticConfig struct {
	GPUsPerNode    int
	NodesPerRack   int
	Racks          int
	Hidden         int
	TrainN, TestN  int
	Microbatch     int
	MaxEpochs      int
	TargetAccuracy float64
	EvalEverySteps int
	FusionBytes    int
	StepSeconds    float64
	// SkewFactor stretches one rank's compute in the straggler arm;
	// Jitter adds deterministic per-step noise on every rank.
	SkewFactor float64
	Jitter     float64
	// FailFraction places the injected failure at this fraction of the
	// healthy run's total simulated time.
	FailFraction float64
}

func elasticConfig(scale Scale) ElasticConfig {
	cfg := ElasticConfig{
		GPUsPerNode: 4, NodesPerRack: 2, Racks: 2,
		Hidden: 32, TrainN: 8192, TestN: 1024,
		Microbatch: 8, MaxEpochs: 6,
		TargetAccuracy: 0.90, EvalEverySteps: 4,
		FusionBytes: 8 << 10, StepSeconds: 2e-3,
		SkewFactor: 1.6, Jitter: 0.08,
		FailFraction: 0.3,
	}
	if scale == ScaleQuick {
		cfg.Racks = 1 // 8 ranks: 2 nodes of 4 GPUs, single rack
		cfg.TrainN = 2048
		cfg.TestN = 512
		cfg.MaxEpochs = 4
	}
	return cfg
}

// RunElastic trains the MNIST-proxy MLP on the racked TCP-40Gb fabric
// under three injected conditions — healthy, one 1.6x straggler with
// jitter, and a mid-run rank failure absorbed by ShrinkContinue — for
// the flat RVH Adasum and the node-level hierarchy. All arms share
// seeds and data, so differences are the injection and the topology.
func RunElastic(scale Scale) *ElasticResult {
	cfg := elasticConfig(scale)
	ranks := cfg.GPUsPerNode * cfg.NodesPerRack * cfg.Racks
	res := &ElasticResult{
		Ranks: ranks, GPUsPerNode: cfg.GPUsPerNode, NodesPerRack: cfg.NodesPerRack,
	}
	train, test := data.SyntheticMNIST(31, cfg.TrainN, cfg.TestN)

	arms := []struct {
		name      string
		hierarchy []int
	}{
		{"flat-rvh", nil},
		{"hier-node", []int{cfg.GPUsPerNode}},
	}
	for _, arm := range arms {
		// The healthy run also calibrates where "mid-run" is on the
		// virtual timeline for the failure injection.
		healthy := runElasticArm(cfg, train, test, ranks, arm.hierarchy, nil)
		res.Rows = append(res.Rows, elasticRow(arm.name, "healthy", healthy))

		straggler := &simnet.Faults{
			SkewFactors: stragglerSkew(ranks, cfg.SkewFactor),
			Jitter:      cfg.Jitter, JitterSeed: 7,
		}
		res.Rows = append(res.Rows, elasticRow(arm.name, "straggler",
			runElasticArm(cfg, train, test, ranks, arm.hierarchy, straggler)))

		failure := &simnet.Faults{
			FailAtSeconds: map[int]float64{ranks / 2: healthy.SimSeconds * cfg.FailFraction},
		}
		res.Rows = append(res.Rows, elasticRow(arm.name, "failure",
			runElasticArm(cfg, train, test, ranks, arm.hierarchy, failure)))
	}
	return res
}

// stragglerSkew returns nominal compute for every rank except the last,
// which runs slower by factor.
func stragglerSkew(ranks int, factor float64) []float64 {
	skew := make([]float64, ranks)
	for i := range skew {
		skew[i] = 1
	}
	skew[ranks-1] = factor
	return skew
}

func runElasticArm(cfg ElasticConfig, train, test *data.Dataset, ranks int, hierarchy []int, faults *simnet.Faults) *trainer.Result {
	net := simnet.TCP40Racked(ranks, cfg.NodesPerRack)
	net.Faults = faults
	return trainer.Run(trainer.Config{
		Workers:     ranks,
		Microbatch:  cfg.Microbatch,
		Reduction:   trainer.ReduceAdasum,
		Scope:       trainer.PostOptimizer,
		PerLayer:    true,
		Comm:        trainer.CommCluster,
		Overlap:     true,
		Strategy:    collective.StrategyRVH,
		FusionBytes: cfg.FusionBytes,
		Net:         net,
		StepSeconds: cfg.StepSeconds,
		Hierarchy:   hierarchy,
		OnFailure:   trainer.ShrinkContinue,
		Model: func() *nn.Network {
			return nn.NewMLP(train.Dim, cfg.Hidden, train.Classes)
		},
		Optimizer:      optim.NewAdam(),
		Schedule:       optim.Constant{Base: 0.002},
		Train:          train,
		Test:           test,
		MaxEpochs:      cfg.MaxEpochs,
		TargetAccuracy: cfg.TargetAccuracy,
		EvalEverySteps: cfg.EvalEverySteps,
		Seed:           17,
	})
}

func elasticRow(arm, condition string, r *trainer.Result) ElasticRow {
	steps := 0
	if len(r.Epochs) > 0 {
		steps = r.Epochs[len(r.Epochs)-1].Steps
	}
	meanMs := 0.0
	if steps > 0 {
		meanMs = 1e3 * r.SimSeconds / float64(steps)
	}
	return ElasticRow{
		Arm: arm, Condition: condition,
		MeanStepMs:    meanMs,
		StepsToTarget: r.StepsToTarget,
		FinalAccuracy: r.FinalAccuracy,
		FinalWorkers:  r.FinalWorkers,
		Failures:      len(r.Failures),
	}
}

// Render writes the sweep table.
func (r *ElasticResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Elastic fault tolerance: Adasum on TCP-40Gb-racked, %d ranks (%d GPUs/node, %d nodes/rack)",
			r.Ranks, r.GPUsPerNode, r.NodesPerRack),
		Columns: []string{"arm", "condition", "step_ms", "steps_to_target", "final_acc", "workers", "failures"},
	}
	for _, row := range r.Rows {
		t.Add(row.Arm, row.Condition, row.MeanStepMs, row.StepsToTarget,
			row.FinalAccuracy, row.FinalWorkers, row.Failures)
	}
	t.Write(w)
}

// Row returns the (arm, condition) cell, or nil.
func (r *ElasticResult) Row(arm, condition string) *ElasticRow {
	for i := range r.Rows {
		if r.Rows[i].Arm == arm && r.Rows[i].Condition == condition {
			return &r.Rows[i]
		}
	}
	return nil
}
