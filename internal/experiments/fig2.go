package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/adasum"
	"repro/internal/data"
	"repro/internal/hessian"
	"repro/internal/tensor"
)

// Fig2Result holds the Figure 2 traces: per communication step, the
// relative error of the Adasum combination and of the synchronous-SGD
// sum against the exact-Hessian sequential emulation.
type Fig2Result struct {
	AdasumErr Series
	SumErr    Series
	FinalAcc  float64
}

// Fig2Config parameterizes the emulation-error experiment.
type Fig2Config struct {
	Workers    int
	Microbatch int
	Steps      int
	Dim        int
	Classes    int
}

func fig2Config(scale Scale) Fig2Config {
	if scale == ScaleFull {
		// 64 nodes as in the paper; dim reduced from LeNet-5 to keep the
		// P×P exact Hessian tractable (see DESIGN.md substitutions).
		return Fig2Config{Workers: 64, Microbatch: 8, Steps: 400, Dim: 24, Classes: 6}
	}
	return Fig2Config{Workers: 16, Microbatch: 8, Steps: 50, Dim: 12, Classes: 4}
}

// RunFig2 reproduces Figure 2: train softmax regression (negative
// log-likelihood loss, exact analytic Hessian) data-parallel, and at
// every communication step compare three combinations of the worker
// gradients — exact-Hessian sequential emulation (the reference), the
// Adasum operator, and the synchronous-SGD sum — recording the relative
// error of the latter two. The model advances with the Adasum update at
// the near-optimal learning rate (α ≈ 1/‖g‖², Appendix A.2) the
// derivation assumes.
func RunFig2(scale Scale) *Fig2Result {
	cfg := fig2Config(scale)
	// Enough data and noise that the model keeps learning for the whole
	// step budget (the paper's 400-step LeNet run never saturates); once
	// the model sits at its noise floor the reference combination
	// degenerates and the comparison stops being meaningful.
	train, test := data.GeneratePair(data.Config{
		N: cfg.Workers * cfg.Microbatch * 32, Dim: cfg.Dim, Classes: cfg.Classes,
		Noise: 1.3, Seed: 21,
	}, 512)

	m := hessian.NewSoftmaxModel(cfg.Dim, cfg.Classes)
	rng := rand.New(rand.NewSource(22))
	for i := range m.W {
		m.W[i] = float32(rng.NormFloat64() * 0.01)
	}

	res := &Fig2Result{
		AdasumErr: Series{Label: "adasum"},
		SumErr:    Series{Label: "sync-sgd"},
	}
	layout := tensor.FlatLayout(m.NumParams())
	it := data.NewIterator(train.N, cfg.Workers*cfg.Microbatch, 23)
	red := adasum.NewReducer() // reused across the step loop
	for step := 0; step < cfg.Steps; step++ {
		idx := it.Next()
		items := make([]hessian.GradHess, 0, cfg.Workers)
		grads := make([][]float32, 0, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			lo := w * cfg.Microbatch
			hi := lo + cfg.Microbatch
			if lo >= len(idx) {
				break
			}
			if hi > len(idx) {
				hi = len(idx)
			}
			x, l := train.Batch(idx[lo:hi])
			g, h, _ := m.GradientAndHessian(x, l, hi-lo)
			items = append(items, hessian.GradHess{G: g, H: h})
			grads = append(grads, g)
		}
		alpha := hessian.OptimalAlpha(grads)
		ref := hessian.SequentialTreeReduce(items, alpha)
		ada := red.TreeReduce(grads, layout) // valid until red's next call (next step)
		sum := adasum.SumReduce(grads)
		ae, se := hessian.EmulationErrors(ada, sum, ref.G)
		res.AdasumErr.X = append(res.AdasumErr.X, float64(step))
		res.AdasumErr.Y = append(res.AdasumErr.Y, ae)
		res.SumErr.X = append(res.SumErr.X, float64(step))
		res.SumErr.Y = append(res.SumErr.Y, se)

		for i := range m.W {
			m.W[i] -= float32(alpha) * ada[i]
		}
	}
	tx, tl := test.Batch(seqInts(test.N))
	res.FinalAcc = m.Accuracy(tx, tl, test.N)
	return res
}

// MeanErrors returns the average error of each combiner over the run.
func (r *Fig2Result) MeanErrors() (adasumMean, sumMean float64) {
	return mean(r.AdasumErr.Y), mean(r.SumErr.Y)
}

// Render writes the Figure 2 CSV and summary.
func (r *Fig2Result) Render(w io.Writer) {
	WriteCSV(w, "Figure 2: approximation error vs exact-Hessian sequential emulation",
		[]Series{r.AdasumErr, r.SumErr})
	am, sm := r.MeanErrors()
	fmt.Fprintf(w, "mean |error|: adasum %.4f   sync-sgd %.4f   (paper: adasum below sync-sgd)\n", am, sm)
	fmt.Fprintf(w, "adasum trend  %s\n", Sparkline(r.AdasumErr.Y))
	fmt.Fprintf(w, "syncsgd trend %s\n", Sparkline(r.SumErr.Y))
	fmt.Fprintf(w, "final parallel-run accuracy: %.4f\n\n", r.FinalAcc)
}
