package experiments

import (
	"fmt"
	"io"

	"repro/internal/serve"
)

// ServeResult compares scheduling policies for the multi-tenant
// service: the same four-job demo mix (mixed gang demands, priority
// classes, one injected rank failure) scheduled onto one shared
// cluster under three policies — plain FIFO within priority classes,
// FIFO plus priority preemption, and preemption plus elastic
// resizing. The comparison is the serving-layer argument in
// miniature: preemption buys the high-priority job its latency at the
// cost of checkpoint round-trips, and elasticity buys cluster
// utilization by letting starved tenants in at partial gang sizes.
type ServeResult struct {
	ClusterRanks int
	Jobs         int
	Rows         []ServeRow
}

// ServeRow is one scheduling policy's outcome.
type ServeRow struct {
	Policy string
	// Makespan is the cluster virtual time at which the last job
	// completed; HighDone the completion time of the high-priority
	// tenant specifically.
	Makespan float64
	HighDone float64
	// MeanWait averages the jobs' cumulative queue waits.
	MeanWait    float64
	Preemptions int
	Migrations  int
	Failures    int
	Events      int
}

// RunServe schedules the demo mix under each policy. The specs are
// built once (their probe runs placed the arrivals) and reused, so the
// policies differ only in the scheduler's behavior.
func RunServe(scale Scale) *ServeResult {
	specs := serve.DemoSpecs()
	res := &ServeResult{ClusterRanks: serve.DemoClusterRanks, Jobs: len(specs)}
	_ = scale // the demo mix is already CI-sized; scale reserved for larger tenant sets

	for _, pol := range []struct {
		name             string
		preempt, elastic bool
	}{
		{"fifo", false, false},
		{"preempt", true, false},
		{"preempt+elastic", true, true},
	} {
		s := serve.New(serve.Options{
			Ranks:   serve.DemoClusterRanks,
			Preempt: pol.preempt,
			Elastic: pol.elastic,
		})
		for _, spec := range specs {
			if _, err := s.Submit(spec); err != nil {
				panic(fmt.Sprintf("experiments: serve spec rejected: %v", err))
			}
		}
		s.Run()
		snap := s.Snapshot()
		row := ServeRow{Policy: pol.name, Makespan: snap.Now, Events: snap.Events}
		for _, j := range snap.Jobs {
			row.MeanWait += j.QueueWait / float64(len(snap.Jobs))
			row.Preemptions += j.Preemptions
			row.Migrations += j.Migrations
			row.Failures += j.Failures
			if j.Priority == serve.PriorityHigh && j.DoneAt > row.HighDone {
				row.HighDone = j.DoneAt
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the policy comparison table.
func (r *ServeResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf("Multi-tenant scheduling: %d jobs on a %d-rank cluster",
			r.Jobs, r.ClusterRanks),
		Columns: []string{"policy", "makespan_s", "high_done_s", "mean_wait_s", "preemptions", "migrations", "failures", "events"},
	}
	for _, row := range r.Rows {
		t.Add(row.Policy, row.Makespan, row.HighDone, row.MeanWait,
			row.Preemptions, row.Migrations, row.Failures, row.Events)
	}
	t.Write(w)
}

// Row returns the named policy's row, or nil.
func (r *ServeResult) Row(policy string) *ServeRow {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}
