package experiments

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/fusion"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Fig4Result holds the latency sweep of Figure 4: allreduce latency (ms)
// of the NCCL-style ring sum and of ADASUMRVH as a function of the total
// payload size.
type Fig4Result struct {
	Bytes  []int
	NCCLms []float64
	Adasum []float64
}

// Fig4Config parameterizes the latency sweep.
type Fig4Config struct {
	Ranks       int
	GPUsPerNode int
	MinExp      int // smallest payload, 2^MinExp bytes
	MaxExp      int // largest payload
	Tensors     int // tensors fused per point (the paper uses 64)
	FusionBytes int // fusion threshold (the paper uses 2 MB)
	// MaxRealFloats bounds how many float32s are actually allocated per
	// rank; larger logical payloads are simulated exactly by scaling the
	// cost model's per-byte term (the alpha-beta model is linear in
	// message size, so this preserves every latency up to the fixed-size
	// dot-product side messages).
	MaxRealFloats int
}

func fig4Config(scale Scale) Fig4Config {
	cfg := Fig4Config{
		Ranks: 64, GPUsPerNode: 4,
		MinExp: 10, MaxExp: 28,
		Tensors: 64, FusionBytes: 2 << 20,
		MaxRealFloats: 1 << 18,
	}
	if scale == ScaleQuick {
		cfg.Ranks = 16
		cfg.MaxExp = 24
		cfg.MaxRealFloats = 1 << 15
	}
	return cfg
}

// RunFig4 reproduces Figure 4: for each payload size 2^k bytes, allocate
// cfg.Tensors equal tensors summing to that size, fuse them at the 2 MB
// threshold, and measure the simulated wall-clock latency of (a) the
// hierarchical ring-sum allreduce standing in for NCCL and (b) the
// AdasumRVH of Algorithm 1, on the Azure PCIe+Infiniband cost model the
// paper's cluster matches.
func RunFig4(scale Scale) *Fig4Result {
	cfg := fig4Config(scale)
	res := &Fig4Result{}
	for exp := cfg.MinExp; exp <= cfg.MaxExp; exp += 2 {
		logicalBytes := 1 << exp
		nccl := measureAllreduce(cfg, logicalBytes, false)
		ada := measureAllreduce(cfg, logicalBytes, true)
		res.Bytes = append(res.Bytes, logicalBytes)
		res.NCCLms = append(res.NCCLms, nccl*1e3)
		res.Adasum = append(res.Adasum, ada*1e3)
	}
	return res
}

// measureAllreduce returns the simulated seconds to allreduce a logical
// payload of logicalBytes, fused per the config.
func measureAllreduce(cfg Fig4Config, logicalBytes int, useAdasum bool) float64 {
	logicalFloats := logicalBytes / 4
	if logicalFloats == 0 {
		logicalFloats = 1
	}
	realFloats := logicalFloats
	scaleF := 1.0
	if realFloats > cfg.MaxRealFloats {
		scaleF = float64(realFloats) / float64(cfg.MaxRealFloats)
		realFloats = cfg.MaxRealFloats
	}
	model := simnet.AzureNC24rsV3(cfg.Ranks)
	// Scale the per-byte costs so the small real payload charges exactly
	// what the logical payload would.
	model.BetaIntra *= scaleF
	model.BetaInter *= scaleF
	model.FlopBeta *= scaleF
	model.MemCopyBeta *= scaleF

	// Split the payload into cfg.Tensors tensors and compute the real
	// fusion threshold corresponding to the logical 2 MB.
	per := realFloats / cfg.Tensors
	if per == 0 {
		per = 1
	}
	sizes := make([]int, cfg.Tensors)
	names := make([]string, cfg.Tensors)
	for i := range sizes {
		sizes[i] = per
		names[i] = fmt.Sprintf("t%d", i)
	}
	realThreshold := int(float64(cfg.FusionBytes) / scaleF)
	if realThreshold < per*4 {
		realThreshold = per * 4 // at least one tensor per group
	}

	w := comm.NewWorld(cfg.Ranks, model)
	g := collective.WorldGroup(cfg.Ranks)
	return comm.MaxClock(w, func(p *comm.Proc) {
		c := collective.New(p, g, collective.Config{Strategy: collective.StrategyRVH})
		// Every rank takes the same branch, so the Split collective inside
		// NewHierarchy stays matched — and the Adasum arm skips it.
		var hier *collective.Hierarchy
		if !useAdasum {
			hier = collective.NewHierarchy(c, cfg.GPUsPerNode)
		}
		tensors := make([][]float32, cfg.Tensors)
		for i := range tensors {
			tensors[i] = make([]float32, sizes[i])
			for j := range tensors[i] {
				tensors[i][j] = float32(p.Rank()+i) * 1e-3
			}
		}
		groups := fusion.Fuse(tensors, names, realThreshold)
		for gi := range groups {
			p.ComputeMemCopy(groups[gi].Bytes())
			if useAdasum {
				c.Adasum(groups[gi].Data, groups[gi].Layout)
			} else {
				hier.AllreduceSum(groups[gi].Data)
			}
			p.ComputeMemCopy(groups[gi].Bytes())
		}
		fusion.UnfuseAll(groups, tensors)
		_ = tensor.Norm2(tensors[0]) // keep results alive
	})
}

// Render writes the Figure 4 table.
func (r *Fig4Result) Render(w io.Writer) {
	t := Table{
		Title:   "Figure 4: allreduce latency, AdasumRVH vs NCCL-style ring sum",
		Columns: []string{"bytes", "nccl_ms", "adasum_ms", "adasum/nccl"},
	}
	for i := range r.Bytes {
		ratio := r.Adasum[i] / r.NCCLms[i]
		t.Add(r.Bytes[i], r.NCCLms[i], r.Adasum[i], ratio)
	}
	t.Write(w)
}

// MaxRatio returns the largest Adasum/NCCL latency ratio across the
// sweep — the paper's claim is that Adasum stays "roughly equal" to the
// optimized sum.
func (r *Fig4Result) MaxRatio() float64 {
	var m float64
	for i := range r.Bytes {
		if q := r.Adasum[i] / r.NCCLms[i]; q > m {
			m = q
		}
	}
	return m
}
