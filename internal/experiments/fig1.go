package experiments

import (
	"fmt"
	"io"

	"repro/internal/adasum"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// Fig1Result holds the per-layer orthogonality traces of Figure 1:
// Average is the bold red line; PerLayer holds one series per named
// layer. LRBoundaries marks the steps where the schedule drops (where
// the paper observes orthogonality dips).
type Fig1Result struct {
	Model        string
	Average      Series
	PerLayer     []Series
	LRBoundaries []int
}

// Fig1Config parameterizes the orthogonality trace.
type Fig1Config struct {
	Workers    int
	Microbatch int
	Steps      int
	SampleEach int // record every n-th reduction step
}

func fig1Config(scale Scale) Fig1Config {
	if scale == ScaleFull {
		return Fig1Config{Workers: 64, Microbatch: 32, Steps: 240, SampleEach: 4}
	}
	return Fig1Config{Workers: 16, Microbatch: 16, Steps: 48, SampleEach: 4}
}

// RunFig1 reproduces Figure 1 for one of the two proxy models
// ("resnet" or "bert"): it trains with the configured worker count and
// records the per-layer orthogonality metric
// ‖Adasum(g1..gn)‖² / Σ‖gi‖² at every sampled reduction step, under a
// MultiStep schedule whose boundaries should produce the dips the paper
// highlights.
func RunFig1(model string, scale Scale) *Fig1Result {
	cfg := fig1Config(scale)

	var factory func() *nn.Network
	var train, test *data.Dataset
	switch model {
	case "resnet":
		train, test = data.SyntheticImageNet(41, cfg.Workers*cfg.Microbatch*8, 512)
		factory = func() *nn.Network { return nn.NewResNetProxy(128, 16, 96, 3) }
	case "bert":
		train, test = data.SyntheticMaskedLM(42, cfg.Workers*cfg.Microbatch*8, 512, 0.15)
		factory = func() *nn.Network { return nn.NewBERTProxy(160, 12, 96, 3) }
	default:
		panic(fmt.Sprintf("experiments: unknown fig1 model %q", model))
	}

	boundaries := []int{cfg.Steps / 2, cfg.Steps * 3 / 4}
	sched := optim.MultiStep{Base: 0.1, Milestones: boundaries, Gamma: 0.1}

	res := &Fig1Result{Model: model, LRBoundaries: boundaries}
	res.Average.Label = "average"

	var layerSeries []Series
	tcfg := trainer.Config{
		Workers:    cfg.Workers,
		Microbatch: cfg.Microbatch,
		Reduction:  trainer.ReduceAdasum,
		PerLayer:   true,
		Model:      factory,
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   sched,
		Train:      train,
		Test:       test,
		MaxEpochs:  1 << 20, // bounded by Steps via the hook below
		Seed:       7,
		Parallel:   true,
	}
	samplesPerStep := float64(cfg.Workers * cfg.Microbatch)
	done := false
	tcfg.Hook = func(step int, grads [][]float32, layout tensor.Layout) {
		if done || step%cfg.SampleEach != 0 {
			return
		}
		per, avg := adasum.OrthogonalityPerLayer(grads, layout)
		if layerSeries == nil {
			layerSeries = make([]Series, layout.NumLayers())
			for i := range layerSeries {
				layerSeries[i].Label = layout.Name(i)
			}
		}
		x := float64(step) * samplesPerStep
		res.Average.X = append(res.Average.X, x)
		res.Average.Y = append(res.Average.Y, avg)
		for i := range layerSeries {
			layerSeries[i].X = append(layerSeries[i].X, x)
			layerSeries[i].Y = append(layerSeries[i].Y, per[i])
		}
		if step >= cfg.Steps {
			done = true
		}
	}
	// Limit epochs so total steps ≈ cfg.Steps.
	stepsPerEpoch := train.N / (cfg.Workers * cfg.Microbatch)
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}
	tcfg.MaxEpochs = cfg.Steps/stepsPerEpoch + 1
	trainer.Run(tcfg)

	res.PerLayer = layerSeries
	return res
}

// Render writes the Figure 1 output: a CSV of all series plus a summary
// of the early/late averages.
func (r *Fig1Result) Render(w io.Writer) {
	all := append([]Series{r.Average}, r.PerLayer...)
	WriteCSV(w, fmt.Sprintf("Figure 1 (%s): per-layer gradient orthogonality", r.Model), all)
	n := len(r.Average.Y)
	if n == 0 {
		return
	}
	early := mean(r.Average.Y[:maxInt(1, n/5)])
	late := mean(r.Average.Y[n-maxInt(1, n/5):])
	fmt.Fprintf(w, "average orthogonality: early %.3f -> late %.3f   trend %s\n",
		early, late, Sparkline(r.Average.Y))
	fmt.Fprintf(w, "LR boundaries at steps %v\n\n", r.LRBoundaries)
}

// EarlyLate returns the mean of the first and last fifth of the average
// orthogonality trace, the quantities the shape checks assert on
// (paper: gradients start aligned — low metric — and become orthogonal —
// metric approaching 1).
func (r *Fig1Result) EarlyLate() (early, late float64) {
	n := len(r.Average.Y)
	if n == 0 {
		return 0, 0
	}
	k := maxInt(1, n/5)
	return mean(r.Average.Y[:k]), mean(r.Average.Y[n-k:])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
