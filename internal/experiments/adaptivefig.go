package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// AdaptiveResult is the adaptive-compression sweep: every static codec
// and the default Adaptive policy run the same overlapped bucketed
// AdasumRVH workload on a racked TCP-40Gb cluster under three bandwidth
// environments — a steady NVSwitch-class fabric (compression cannot
// pay), a steady congested fabric (sparsification is the only way to
// keep the step short), and a shifting arm that switches from the first
// to the second mid-run, which no static choice handles well. The
// figure of merit is simulated time-to-target: the arm's mean step
// wall-clock times the knob's reduction steps to the target accuracy
// (measured once per knob on a free network, isolating the codec's
// algorithmic effect exactly as the compression sweep does).
type AdaptiveResult struct {
	Ranks     int
	Layers    int
	GradBytes int64
	Steps     int

	Arms  []string
	Knobs []string // knob 0 is the uncompressed baseline; the last is adaptive

	StepSec       [][]float64 // [arm][knob] mean simulated step seconds
	TimeToTarget  [][]float64 // [arm][knob] StepSec * StepsToTarget
	StepsToTarget []int       // [knob]; -1 when the target was never held
	FinalAccuracy []float64   // [knob]
}

// AdaptiveConfig parameterizes the sweep.
type AdaptiveConfig struct {
	Ranks        int
	NodesPerRack int
	Layers       int
	LayerFloats  int
	FusionBytes  int
	StepSeconds  float64 // forward+backward compute per step
	Steps        int     // timed steps per arm

	Convergence CompressionConfig // reuses the compression sweep's arm
}

func adaptiveConfig(scale Scale) AdaptiveConfig {
	cfg := AdaptiveConfig{
		Ranks: 256, NodesPerRack: 8,
		Layers: 16, LayerFloats: 1 << 14,
		FusionBytes: 256 << 10,
		// Compute long enough that the adaptive transport's fixed
		// overhead (header words, wire-buffer packing) stays inside the
		// noise on the fast arm, short enough that the congested arm is
		// clearly communication-bound.
		StepSeconds: 5e-4,
		Steps:       60,
		Convergence: compressionConfig(scale),
	}
	if scale == ScaleQuick {
		cfg.Ranks = 64
		cfg.NodesPerRack = 4
		cfg.Layers = 8
		cfg.LayerFloats = 1 << 11
		cfg.FusionBytes = 32 << 10
		cfg.Steps = 20
	}
	return cfg
}

// adaptiveKnobs returns the sweep's compression knobs: the static
// codecs first (nil baseline leading), the default adaptive policy
// last. The static top-k arm matches the policy ladder's top-k rung so
// the comparison is codec-for-codec fair.
func adaptiveKnobs() []compress.Compression {
	return []compress.Compression{
		nil,
		compress.FP16(),
		compress.Int8(0),
		compress.TopK(0.01, true),
		compress.Adaptive(),
	}
}

func knobName(k compress.Compression) string {
	if k == nil {
		return "none"
	}
	return k.String()
}

// The bandwidth environments. Each arm rewrites the cluster model's
// tiers before every step (between Runs, with all rank goroutines
// joined, so the mutation is deterministic).

// fastFabric is an NVSwitch-class interconnect on every tier: wire
// bytes are cheaper than the pack/unpack memory passes, so any lossy
// codec is pure overhead.
func fastFabric(m *simnet.Model) {
	m.AlphaIntra, m.BetaIntra = 5e-6, 1.0/300e9
	m.AlphaInter, m.BetaInter = 5e-6, 1.0/300e9
	m.AlphaCross, m.BetaCross = 1e-5, 1.0/200e9
}

// slowFabric is a congested-bandwidth fabric (the TCP-40Gb tiers under
// contention, intra-node PCIe untouched): per-byte cost dominates
// latency, the regime where sparsification is the only way to keep the
// step short.
func slowFabric(m *simnet.Model) {
	m.AlphaIntra, m.BetaIntra = 8e-6, 1.0/12e9
	m.AlphaInter, m.BetaInter = 1e-5, 1.0/0.2e9
	m.AlphaCross, m.BetaCross = 2e-5, 1.0/0.12e9
}

type bandwidthArm struct {
	name string
	set  func(m *simnet.Model, step, steps int)
}

func adaptiveArms() []bandwidthArm {
	return []bandwidthArm{
		{"steady-fast", func(m *simnet.Model, _, _ int) { fastFabric(m) }},
		{"steady-slow", func(m *simnet.Model, _, _ int) { slowFabric(m) }},
		{"shifting", func(m *simnet.Model, step, steps int) {
			if step < steps/2 {
				fastFabric(m)
			} else {
				slowFabric(m)
			}
		}},
	}
}

// RunAdaptive measures every knob on every bandwidth arm.
func RunAdaptive(scale Scale) *AdaptiveResult {
	cfg := adaptiveConfig(scale)
	names := make([]string, cfg.Layers)
	sizes := make([]int, cfg.Layers)
	for i := range names {
		names[i] = fmt.Sprintf("layer%d", i)
		sizes[i] = cfg.LayerFloats
	}
	layout := tensor.NewLayout(names, sizes)

	res := &AdaptiveResult{
		Ranks: cfg.Ranks, Layers: cfg.Layers,
		GradBytes: 4 * int64(layout.TotalSize()),
		Steps:     cfg.Steps,
	}
	knobs := adaptiveKnobs()
	for _, k := range knobs {
		res.Knobs = append(res.Knobs, knobName(k))
		steps, acc := measureCompressedConvergence(cfg.Convergence, k)
		res.StepsToTarget = append(res.StepsToTarget, steps)
		res.FinalAccuracy = append(res.FinalAccuracy, acc)
	}
	for _, arm := range adaptiveArms() {
		res.Arms = append(res.Arms, arm.name)
		secRow := make([]float64, len(knobs))
		tttRow := make([]float64, len(knobs))
		for i, k := range knobs {
			secRow[i] = measureAdaptiveArm(cfg, layout, arm, k)
			tttRow[i] = secRow[i] * float64(res.StepsToTarget[i])
			if res.StepsToTarget[i] < 0 {
				tttRow[i] = -1
			}
		}
		res.StepSec = append(res.StepSec, secRow)
		res.TimeToTarget = append(res.TimeToTarget, tttRow)
	}
	return res
}

// measureAdaptiveArm runs cfg.Steps overlapped bucketed AdasumRVH steps
// under the knob with the arm rewriting the fabric before each step,
// and returns the mean simulated step seconds. Gradients are fixed
// per-rank heavy-tailed vectors (exponentially distributed magnitudes,
// random signs — the magnitude profile sparsification papers assume):
// step time depends on payload sizes, not values, but the value
// distribution drives the policy's error controller, and a heavy tail
// is what lets a small top-k capture most of the L2 mass. The fixed
// content keeps the error-feedback and policy trajectories
// deterministic.
func measureAdaptiveArm(cfg AdaptiveConfig, layout tensor.Layout, arm bandwidthArm, knob compress.Compression) float64 {
	model := simnet.TCP40Racked(cfg.Ranks, cfg.NodesPerRack)
	w := comm.NewWorld(cfg.Ranks, model)
	group := collective.WorldGroup(cfg.Ranks)
	engines := make([]*overlap.Engine, cfg.Ranks)
	for r := range engines {
		engines[r] = overlap.New(overlap.Options{
			Group: group, Layout: layout,
			FusionBytes: cfg.FusionBytes, Strategy: collective.StrategyRVH,
			Overlap: true, StepSeconds: cfg.StepSeconds,
			Compression: knob,
		})
	}
	xs := make([][]float32, cfg.Ranks)
	for r := range xs {
		rng := rand.New(rand.NewSource(int64(7000 + r)))
		xs[r] = make([]float32, layout.TotalSize())
		for i := range xs[r] {
			mag := math.Exp(-100 * rng.Float64())
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			xs[r][i] = float32(mag)
		}
	}
	total := 0.0
	for s := 0; s < cfg.Steps; s++ {
		arm.set(model, s, cfg.Steps)
		total += comm.MaxClock(w, func(p *comm.Proc) {
			engines[p.Rank()].Step(p, xs[p.Rank()])
		})
	}
	return total / float64(cfg.Steps)
}

// BestStatic returns the index and time-to-target of the best static
// knob on the given arm (knobs other than the last, which is the
// policy). Knobs that never reached the target are skipped.
func (r *AdaptiveResult) BestStatic(arm int) (knob int, ttt float64) {
	knob, ttt = -1, 0
	for i := 0; i < len(r.Knobs)-1; i++ {
		t := r.TimeToTarget[arm][i]
		if t < 0 {
			continue
		}
		if knob < 0 || t < ttt {
			knob, ttt = i, t
		}
	}
	return knob, ttt
}

// Adaptive returns the policy knob's time-to-target on the given arm.
func (r *AdaptiveResult) Adaptive(arm int) float64 {
	return r.TimeToTarget[arm][len(r.Knobs)-1]
}

// Render writes the sweep table.
func (r *AdaptiveResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf(
			"Adaptive compression policy: bucketed AdasumRVH on racked TCP-40Gb, %d ranks, %d layers (%.1f MB grad), %d steps/arm; time_to_target = step_ms x steps_to_target",
			r.Ranks, r.Layers, float64(r.GradBytes)/float64(1<<20), r.Steps),
		Columns: []string{"knob", "steps_to_target"},
	}
	for _, arm := range r.Arms {
		t.Columns = append(t.Columns, arm+"_step_ms", arm+"_ttt_ms")
	}
	for i, knob := range r.Knobs {
		steps := fmt.Sprint(r.StepsToTarget[i])
		if r.StepsToTarget[i] < 0 {
			steps = "never"
		}
		row := []any{knob, steps}
		for a := range r.Arms {
			ttt := "never"
			if r.TimeToTarget[a][i] >= 0 {
				ttt = fmt.Sprintf("%.2f", r.TimeToTarget[a][i]*1e3)
			}
			row = append(row, r.StepSec[a][i]*1e3, ttt)
		}
		t.Add(row...)
	}
	t.Write(w)
}
