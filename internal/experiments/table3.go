package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// Table3Row is one algorithm's outcome: iterations to the phase targets,
// or Converged=false where the paper reports "-".
type Table3Row struct {
	Name      string
	Phase1    int
	Phase2    int
	Converged bool
}

// Table3Result aggregates the BERT-Large algorithmic-efficiency rows.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Config parameterizes the two-phase BERT proxy study.
type Table3Config struct {
	Workers    int
	Micro      int // per-worker microbatch of the "64K" configs
	MicroLarge int // the "128K" variant
	Budget1    int // phase 1 epoch budget
	Budget2    int
	Target1    float64
	Target2    float64
	BaseAdamLR float64
	BaseLAMBLR float64
	TrainN     int
	EvalEvery  int
}

func table3Config(scale Scale) Table3Config {
	cfg := Table3Config{
		Workers: 16, Micro: 32, MicroLarge: 64,
		Budget1: 8, Budget2: 8,
		Target1: 0.85, Target2: 0.865,
		BaseAdamLR: 0.002, BaseLAMBLR: 0.01,
		TrainN: 8192, EvalEvery: 1,
	}
	if scale == ScaleFull {
		cfg.Workers = 32
		cfg.TrainN = 16384
	}
	return cfg
}

// RunTable3 reproduces Table 3 (§5.3.2): the BERT-Large proxy is
// pretrained in two phases (phase 2 masks more features, standing in for
// the longer sequences), and each optimizer/combiner pair reports the
// iterations needed to hit the phase targets at the "64K" effective
// batch:
//
//   - Baseline-Adam: gradient averaging with the √batch-scaled Adam rate
//     — the configuration the paper reports as not converging;
//   - Baseline-LAMB: gradient averaging, LAMB's trust ratios absorb the
//     large batch;
//   - Adasum-Adam: post-optimizer Adasum (Figure 3) with the unscaled
//     base rate;
//   - Adasum-LAMB: the paper's fastest configuration;
//   - Adasum-LAMB 128K: double the effective batch, phase 1 only.
func RunTable3(scale Scale) *Table3Result {
	cfg := table3Config(scale)
	ph1Train, ph1Test := data.SyntheticMaskedLM(81, cfg.TrainN, 2048, 0.15)
	ph2Train, ph2Test := data.SyntheticMaskedLM(81, cfg.TrainN, 2048, 0.45)
	factory := func() *nn.Network { return nn.NewBERTProxy(160, 12, 96, 3) }
	layoutProbe := factory()

	type variant struct {
		name   string
		opt    func() optim.Optimizer
		red    trainer.Reduction
		scope  trainer.Scope
		lr     float64
		factor float64 // LR scaling for the Sum baselines
		micro  int
	}
	// Baseline-Adam follows the scaled-LR recipe into the regime where
	// it genuinely diverges on this proxy. Adam's per-element step bound
	// makes the proxy far more tolerant of LR scaling than a real deep
	// network, so the break factor (calibrated empirically) is larger
	// than the paper's 4x-beyond-16K — the qualitative gate ("Adam does
	// not converge at 64K") is what is being reproduced; see
	// EXPERIMENTS.md. Baseline-LAMB uses the identical schedule as
	// Adasum-LAMB: the paper's comparison is literally "LAMB when just
	// averaging gradients" vs LAMB with Adasum, same hyperparameters.
	variants := []variant{
		{"Baseline-Adam", func() optim.Optimizer { return optim.NewAdam() },
			trainer.ReduceSum, trainer.PreOptimizer, cfg.BaseAdamLR, 192, cfg.Micro},
		{"Baseline-LAMB", func() optim.Optimizer { return optim.NewLAMB(layoutProbe.Layout()) },
			trainer.ReduceSum, trainer.PreOptimizer, cfg.BaseLAMBLR, 1, cfg.Micro},
		{"Adasum-Adam", func() optim.Optimizer { return optim.NewAdam() },
			trainer.ReduceAdasum, trainer.PostOptimizer, cfg.BaseAdamLR, 1, cfg.Micro},
		{"Adasum-LAMB", func() optim.Optimizer { return optim.NewLAMB(layoutProbe.Layout()) },
			trainer.ReduceAdasum, trainer.PostOptimizer, cfg.BaseLAMBLR, 1, cfg.Micro},
		{"Adasum-LAMB-128K", func() optim.Optimizer { return optim.NewLAMB(layoutProbe.Layout()) },
			trainer.ReduceAdasum, trainer.PostOptimizer, cfg.BaseLAMBLR, 1, cfg.MicroLarge},
	}

	res := &Table3Result{}
	for _, v := range variants {
		row := Table3Row{Name: v.name}
		ph1 := table3Phase(cfg, v.opt(), v.red, v.scope, v.lr, v.factor, v.micro,
			factory, ph1Train, ph1Test, cfg.Target1, cfg.Budget1, nil)
		if ph1.Converged {
			ph2 := table3Phase(cfg, v.opt(), v.red, v.scope, v.lr/2, v.factor, v.micro,
				factory, ph2Train, ph2Test, cfg.Target2, cfg.Budget2, ph1.FinalParams)
			if ph2.Converged {
				row.Converged = true
				row.Phase1 = ph1.StepsToTarget
				row.Phase2 = ph2.StepsToTarget
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func table3Phase(cfg Table3Config, opt optim.Optimizer, red trainer.Reduction,
	scope trainer.Scope, lr, factor float64, micro int,
	factory func() *nn.Network, train, test *data.Dataset,
	target float64, budget int, initParams []float32) *trainer.Result {

	stepsPerEpoch := train.N / (cfg.Workers * micro)
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}
	total := budget * stepsPerEpoch
	sched := optim.Schedule(optim.PolynomialWarmup{
		Base: lr, WarmupSteps: total / 10, TotalSteps: total, Power: 1,
	})
	if factor > 1 {
		sched = optim.Scaled{Inner: sched, Factor: factor}
	}
	var init []float32
	if initParams != nil {
		init = tensor.Clone(initParams)
	}
	return trainer.Run(trainer.Config{
		Workers:        cfg.Workers,
		Microbatch:     micro,
		Reduction:      red,
		Scope:          scope,
		PerLayer:       true,
		Model:          factory,
		Optimizer:      opt,
		Schedule:       sched,
		Train:          train,
		Test:           test,
		MaxEpochs:      budget,
		TargetAccuracy: target,
		EvalEverySteps: cfg.EvalEvery,
		Sustained:      true,
		InitParams:     init,
		Seed:           83,
		Parallel:       true,
	})
}

// Row returns the named row, or nil.
func (r *Table3Result) Row(name string) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render writes Table 3.
func (r *Table3Result) Render(w io.Writer) {
	t := Table{
		Title:   "Table 3: BERT proxy iterations to phase targets (64K-equivalent batch)",
		Columns: []string{"algorithm", "phase 1", "phase 2"},
	}
	for _, row := range r.Rows {
		p1, p2 := "-", "-"
		if row.Converged {
			p1 = fmt.Sprint(row.Phase1)
			p2 = fmt.Sprint(row.Phase2)
		}
		t.Add(row.Name, p1, p2)
	}
	t.Write(w)
}
