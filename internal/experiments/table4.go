package experiments

import (
	"fmt"
	"io"

	"repro/internal/simnet"
)

// Table4Row is one GPU-count row of Table 4: phase speedups relative to
// the 64-GPU Sum baseline and end-to-end pretraining time.
type Table4Row struct {
	GPUs                      int
	SumPH1, AdasumPH1         float64 // speedup vs 64-GPU Sum baseline, phase 1
	SumPH2, AdasumPH2         float64
	SumTimeMin, AdasumTimeMin float64
}

// Table4Result holds the BERT-Large system-efficiency scaling table.
type Table4Result struct {
	Rows            []Table4Row
	BaselinePH1Tput float64 // samples/s of the 64-GPU Sum baseline
	BaselinePH2Tput float64
}

// Table4Config parameterizes the scaling model.
type Table4Config struct {
	GPUCounts []int
	EffBatch1 int // phase 1 effective batch (paper: 64K)
	EffBatch2 int // phase 2 effective batch (paper: 32K)
	// Iteration counts composing the Time column; the paper's Table 3
	// numbers (7039/1563 for LAMB, 5639/1250 for Adasum-LAMB) define the
	// workload whose wall-clock the hardware model prices.
	SumIters1, SumIters2       int
	AdasumIters1, AdasumIters2 int
}

func table4Config(scale Scale) Table4Config {
	cfg := Table4Config{
		GPUCounts: []int{64, 256, 512},
		EffBatch1: 65536, EffBatch2: 32768,
		SumIters1: 7039, SumIters2: 1563,
		AdasumIters1: 5639, AdasumIters2: 1250,
	}
	if scale == ScaleQuick {
		cfg.GPUCounts = []int{64, 256}
	}
	return cfg
}

// RunTable4 reproduces Table 4 (§5.3.3): on the DGX-2 hardware model,
// price one training iteration of BERT-Large phase 1 and phase 2 for
// Sum (hierarchical NCCL-style allreduce) and Adasum (hierarchical
// AdasumRVH) at 64/256/512 GPUs with fixed effective batch sizes, report
// speedups relative to the 64-GPU Sum baseline, and compose total
// pretraining time with the Table 3 iteration counts (Adasum's 20%
// algorithmic advantage is what flips the total despite its slightly
// lower scaling efficiency in phase 1).
func RunTable4(scale Scale) *Table4Result {
	cfg := table4Config(scale)
	ph1 := simnet.BERTLargePhase1()
	ph2 := simnet.BERTLargePhase2()

	iterTime := func(cm simnet.ComputeModel, gpus, effBatch int, adasum bool) float64 {
		perGPU := effBatch / gpus
		if perGPU < 1 {
			perGPU = 1
		}
		// Gradient accumulation: microbatches are memory-bound; compute
		// time is perGPU samples at saturated throughput.
		compute := float64(perGPU) / cm.ThroughputAt(perGPU)
		kind := "sum"
		if adasum {
			kind = "hier-adasum"
		}
		comm := allreduceSeconds(simnet.DGX2, gpus, 16, cm.ParamBytes, kind)
		return compute + comm
	}

	base1 := iterTime(ph1, 64, cfg.EffBatch1, false)
	base2 := iterTime(ph2, 64, cfg.EffBatch2, false)
	res := &Table4Result{
		BaselinePH1Tput: float64(cfg.EffBatch1) / base1,
		BaselinePH2Tput: float64(cfg.EffBatch2) / base2,
	}
	for _, gpus := range cfg.GPUCounts {
		s1 := iterTime(ph1, gpus, cfg.EffBatch1, false)
		a1 := iterTime(ph1, gpus, cfg.EffBatch1, true)
		s2 := iterTime(ph2, gpus, cfg.EffBatch2, false)
		a2 := iterTime(ph2, gpus, cfg.EffBatch2, true)
		row := Table4Row{
			GPUs:      gpus,
			SumPH1:    base1 / s1,
			AdasumPH1: base1 / a1,
			SumPH2:    base2 / s2,
			AdasumPH2: base2 / a2,
			SumTimeMin: (float64(cfg.SumIters1)*s1 +
				float64(cfg.SumIters2)*s2) / 60,
			AdasumTimeMin: (float64(cfg.AdasumIters1)*a1 +
				float64(cfg.AdasumIters2)*a2) / 60,
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes Table 4.
func (r *Table4Result) Render(w io.Writer) {
	t := Table{
		Title: "Table 4: BERT-Large system efficiency (speedups vs 64-GPU Sum baseline)",
		Columns: []string{
			"gpus", "sum ph1", "adasum ph1", "sum ph2", "adasum ph2",
			"sum time (min)", "adasum time (min)",
		},
	}
	for _, row := range r.Rows {
		t.Add(row.GPUs,
			fmt.Sprintf("%.2f", row.SumPH1), fmt.Sprintf("%.2f", row.AdasumPH1),
			fmt.Sprintf("%.2f", row.SumPH2), fmt.Sprintf("%.2f", row.AdasumPH2),
			fmt.Sprintf("%.0f", row.SumTimeMin), fmt.Sprintf("%.0f", row.AdasumTimeMin))
	}
	t.Write(w)
	fmt.Fprintf(w, "64-GPU Sum baseline throughput: ph1 %.1fK samples/s, ph2 %.1fK samples/s (paper: 12.2K / 4.6K)\n\n",
		r.BaselinePH1Tput/1000, r.BaselinePH2Tput/1000)
}
