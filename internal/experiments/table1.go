package experiments

import (
	"fmt"
	"io"

	"repro/internal/partition"
	"repro/internal/simnet"
)

// Table1Result holds the §4.3 partitioning study: per-GPU throughput,
// model-update latency and maximum microbatch with and without the
// Marian-style optimizer-state/effective-gradient partitioning.
type Table1Result struct {
	Without, With Table1Column
}

// Table1Column is one column of Table 1.
type Table1Column struct {
	Throughput float64 // samples/s per GPU at the fitting microbatch
	UpdateSec  float64 // model update latency
	Microbatch int
}

// RunTable1 reproduces Table 1: on the 4×V100 16 GB PCIe VM model,
// compute (a) the largest microbatch that fits with the optimizer state
// replicated vs partitioned across the 4 local GPUs, (b) the per-GPU
// training throughput at that microbatch (saturation-curve model
// calibrated to the paper's BERT-Large numbers), and (c) the model
// update latency, monolithic vs partitioned with the §4.3 overlapped
// local broadcast. The numerical equivalence of the partitioned
// optimizer itself is covered by internal/partition's tests.
func RunTable1(Scale) *Table1Result {
	cm := simnet.BERTLargePCIe()
	net := simnet.AzureNC24rsV3(4)
	mem := partition.MemoryModel{
		GPUBytes:        16 << 30,
		ReservedBytes:   5_322_369_184, // framework + cuDNN workspace
		ParamBytes:      int64(cm.ParamBytes),
		GradBytes:       int64(cm.ParamBytes),
		StatePerParam:   cm.OptimizerStateBytesPerParamByte,
		ActivationBytes: 255_000_000, // per-sample activations at seq 128
	}
	res := &Table1Result{}
	for _, parts := range []int{1, 4} {
		mb := mem.MaxMicrobatch(parts)
		col := Table1Column{
			Throughput: cm.ThroughputAt(mb),
			UpdateSec:  partition.UpdateTime(cm, net, cm.ParamBytes, parts),
			Microbatch: mb,
		}
		if parts == 1 {
			res.Without = col
		} else {
			res.With = col
		}
	}
	return res
}

// Render writes Table 1.
func (r *Table1Result) Render(w io.Writer) {
	t := Table{
		Title:   "Table 1: Adasum parallelization (§4.3), 4xV100 16GB PCIe",
		Columns: []string{"metric", "without", "with"},
	}
	t.Add("throughput (samples/s)", fmt.Sprintf("%.1f", r.Without.Throughput), fmt.Sprintf("%.1f", r.With.Throughput))
	t.Add("model update (s)", fmt.Sprintf("%.2f", r.Without.UpdateSec), fmt.Sprintf("%.2f", r.With.UpdateSec))
	t.Add("microbatch", r.Without.Microbatch, r.With.Microbatch)
	t.Write(w)
}
