package trainer

import (
	"math"
	"testing"

	"repro/internal/adasum"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

// TestLossScalerRecoversTrainingAfterInjectedOverflow simulates the fp16
// failure mode §4.4.1 guards against: gradient overflow mid-training.
// The scaler must skip poisoned steps, back off, and training must still
// reach a good model.
func TestLossScalerRecoversTrainingAfterInjectedOverflow(t *testing.T) {
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 10, Classes: 3, Noise: 0.6, Seed: 91,
	}, 128)
	net := nn.NewMLP(10, 12, 3)
	net.Init(newRNG(92))
	scaler := scaling.NewLossScaler()
	scaler.GrowthInterval = 20
	it := data.NewIterator(train.N, 32, 93)
	skipped := 0
	for step := 0; step < 200; step++ {
		idx := it.Next()
		x, labels := train.Batch(idx)
		net.Gradient(x, labels, len(idx))
		g := net.Grads()
		scaler.ScaleGrads(g)
		if step%37 == 5 {
			g[0] = float32(math.Inf(1)) // inject a poisoned gradient
		}
		if scaler.Update(g) {
			skipped++
			continue // skip the step, scale already backed off
		}
		scaler.Unscale(g)
		for i, gv := range g {
			net.Params()[i] -= 0.1 * gv
		}
	}
	if skipped == 0 {
		t.Fatal("no steps were skipped despite injected overflow")
	}
	if tensor.HasNaNOrInf(net.Params()) {
		t.Fatal("parameters poisoned by overflow")
	}
	tx, tl := test.Batch(seq(test.N))
	if acc := net.Accuracy(tx, tl, test.N); acc < 0.9 {
		t.Fatalf("training did not recover: accuracy %v", acc)
	}
}

// TestAdasumSurvivesDegenerateWorkers covers the failure modes a real
// cluster produces: workers that contribute zero gradients (empty
// shards, dead inputs) must not poison the combination.
func TestAdasumSurvivesDegenerateWorkers(t *testing.T) {
	layout := tensor.NewLayout([]string{"a", "b"}, []int{4, 4})
	live := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	zero := make([]float32, 8)
	out := adasum.TreeReduce([][]float32{live, zero, zero, zero}, layout)
	if tensor.HasNaNOrInf(out) {
		t.Fatal("zero workers produced non-finite combination")
	}
	if !tensor.Equal(out, live, 1e-6) {
		t.Fatalf("zero workers should be no-ops: got %v", out)
	}
}

// TestTrainerWithUnevenShards exercises dataset sizes that do not divide
// evenly by workers*microbatch — the tail-batch and tail-shard paths.
func TestTrainerWithUnevenShards(t *testing.T) {
	train, test := data.GeneratePair(data.Config{
		N: 509, Dim: 8, Classes: 3, Noise: 0.6, Seed: 94, // prime-ish N
	}, 101)
	res := Run(Config{
		Workers:    3,
		Microbatch: 7,
		Reduction:  ReduceAdasum,
		PerLayer:   true,
		Model:      func() *nn.Network { return nn.NewMLP(8, 10, 3) },
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   optim.Constant{Base: 0.1},
		Train:      train,
		Test:       test,
		MaxEpochs:  6,
		Seed:       95,
	})
	if res.FinalAccuracy < 0.85 {
		t.Fatalf("uneven shards broke training: %v", res.FinalAccuracy)
	}
}

// TestPostOptimizerStateIsPerWorker verifies the Figure 3 requirement
// that each worker's optimizer state evolves with its own local
// gradients: two workers on very different shards must develop different
// momentum buffers, which the trainer must tolerate.
func TestPostOptimizerStateIsPerWorker(t *testing.T) {
	train, test := data.GeneratePair(data.Config{
		N: 256, Dim: 8, Classes: 2, Noise: 0.4, Seed: 96,
	}, 64)
	res := Run(Config{
		Workers:    2,
		Microbatch: 16,
		Reduction:  ReduceAdasum,
		Scope:      PostOptimizer,
		PerLayer:   true,
		Model:      func() *nn.Network { return nn.NewMLP(8, 8, 2) },
		Optimizer:  optim.NewAdam(),
		Schedule:   optim.Constant{Base: 0.01},
		Train:      train,
		Test:       test,
		MaxEpochs:  8,
		Seed:       97,
	})
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("post-optimizer training failed: %v", res.FinalAccuracy)
	}
}
