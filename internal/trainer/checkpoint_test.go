package trainer

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
)

// ckCfg builds a small multi-layer run for the resume property: Adam
// state (step counter + two moments), several buckets per step on the
// cluster substrate, mid-epoch checkpoints.
func ckCfg(scope Scope, comm CommMode, overlap bool, codec compress.Compression) Config {
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 48, Classes: 4, Noise: 0.5, Seed: 51,
	}, 128)
	cfg := Config{
		Workers:    4,
		Microbatch: 8,
		Reduction:  ReduceAdasum,
		Scope:      scope,
		PerLayer:   true,
		Comm:       comm,
		Overlap:    overlap,
		Model:      func() *nn.Network { return nn.NewMLP(48, 16, 4) },
		Optimizer:  optim.NewAdam(),
		Schedule:   optim.Constant{Base: 0.002},
		Train:      train, Test: test,
		MaxEpochs: 2,
		Seed:      53,
	}
	if scope == LocalSGD {
		cfg.LocalSteps = 2
	}
	if comm == CommCluster {
		cfg.FusionBytes = 2048
		cfg.Net = simnet.TCP40(cfg.Workers)
		cfg.StepSeconds = 1e-3
		cfg.Strategy = collective.StrategyRVH
		cfg.Compression = codec
	}
	return cfg
}

// TestResumeIsBitwiseIdentical is the checkpoint/resume acceptance
// property: for every Scope × Comm × codec combination — including
// top-k with error feedback, whose residuals a naive checkpoint would
// silently drop — a run that is checkpointed mid-epoch, serialized to
// bytes, deserialized and resumed in a fresh process-equivalent run
// produces bitwise-identical FinalParams (and identical simulated time
// and accuracy) to the run that was never interrupted.
func TestResumeIsBitwiseIdentical(t *testing.T) {
	type combo struct {
		name    string
		scope   Scope
		comm    CommMode
		overlap bool
		codec   compress.Compression
	}
	combos := []combo{
		{"pre/host", PreOptimizer, CommHost, false, nil},
		{"post/host", PostOptimizer, CommHost, false, nil},
		{"localsgd/host", LocalSGD, CommHost, false, nil},
		{"pre/cluster-sync", PreOptimizer, CommCluster, false, nil},
		{"post/cluster-overlap", PostOptimizer, CommCluster, true, nil},
		{"localsgd/cluster-overlap", LocalSGD, CommCluster, true, nil},
		{"pre/cluster-overlap/fp16", PreOptimizer, CommCluster, true, compress.FP16()},
		{"post/cluster-overlap/int8", PostOptimizer, CommCluster, true, compress.Int8(0)},
		{"post/cluster-sync/topk-ef", PostOptimizer, CommCluster, false, compress.TopK(0.25, true)},
		{"post/cluster-overlap/topk-ef", PostOptimizer, CommCluster, true, compress.TopK(0.25, true)},
		{"localsgd/cluster-overlap/topk-ef", LocalSGD, CommCluster, true, compress.TopK(0.25, true)},
		// Adaptive policy: the restored run must re-decide the same
		// codecs, so policy state + last-launch telemetry ride the
		// checkpoint (Worker.Policy, format v2).
		{"post/cluster-sync/adaptive", PostOptimizer, CommCluster, false, compress.Adaptive()},
		{"post/cluster-overlap/adaptive", PostOptimizer, CommCluster, true, compress.Adaptive()},
	}
	for _, tc := range combos {
		t.Run(tc.name, func(t *testing.T) {
			base := ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec)
			uninterrupted := Run(base)

			// Capture a mid-epoch snapshot (step 13 of 16 per epoch),
			// forcing it through the wire format so the serialization is
			// part of the property.
			var blob []byte
			capCfg := ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec)
			capCfg.CheckpointEverySteps = 13
			capCfg.OnCheckpoint = func(s *checkpoint.State) {
				if s.Step == 13 {
					blob = s.Marshal()
				}
			}
			Run(capCfg)
			if blob == nil {
				t.Fatal("no checkpoint captured at step 13")
			}
			state, err := checkpoint.Unmarshal(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}

			resCfg := ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec)
			resCfg.Resume = state
			resumed := Run(resCfg)

			if len(resumed.FinalParams) != len(uninterrupted.FinalParams) {
				t.Fatalf("param count mismatch")
			}
			for i, v := range uninterrupted.FinalParams {
				if resumed.FinalParams[i] != v {
					t.Fatalf("FinalParams diverged at %d: %v != %v (resume is not bitwise)", i, resumed.FinalParams[i], v)
				}
			}
			if resumed.SimSeconds != uninterrupted.SimSeconds {
				t.Fatalf("SimSeconds diverged: %v != %v", resumed.SimSeconds, uninterrupted.SimSeconds)
			}
			if resumed.FinalAccuracy != uninterrupted.FinalAccuracy {
				t.Fatalf("FinalAccuracy diverged: %v != %v", resumed.FinalAccuracy, uninterrupted.FinalAccuracy)
			}
			// The resumed run re-records the epoch containing the
			// checkpoint and everything after; its tail must match the
			// uninterrupted history exactly.
			tail := resumed.Epochs
			full := uninterrupted.Epochs[len(uninterrupted.Epochs)-len(tail):]
			for i := range tail {
				if tail[i] != full[i] {
					t.Fatalf("epoch stat %d diverged: %+v != %+v", i, tail[i], full[i])
				}
			}
		})
	}
}

// TestResumeUnderFaultsKeepsTimeline: resuming a run whose cost model
// injects deterministic jitter must reproduce the uninterrupted
// virtual-time trajectory too — the engines' step counters (the jitter
// axis) are part of the restored state.
func TestResumeUnderFaultsKeepsTimeline(t *testing.T) {
	mk := func() Config {
		cfg := ckCfg(PostOptimizer, CommCluster, true, nil)
		cfg.Net.Faults = &simnet.Faults{
			SkewFactors: []float64{1, 1.4, 1, 1.1},
			Jitter:      0.1, JitterSeed: 21,
		}
		return cfg
	}
	uninterrupted := Run(mk())

	var state *checkpoint.State
	capCfg := mk()
	capCfg.CheckpointEverySteps = 7
	capCfg.OnCheckpoint = func(s *checkpoint.State) {
		if s.Step == 7 {
			state = s
		}
	}
	Run(capCfg)
	resCfg := mk()
	resCfg.Resume = state
	resumed := Run(resCfg)
	if resumed.SimSeconds != uninterrupted.SimSeconds {
		t.Fatalf("jittered timeline diverged after resume: %v != %v", resumed.SimSeconds, uninterrupted.SimSeconds)
	}
	for i, v := range uninterrupted.FinalParams {
		if resumed.FinalParams[i] != v {
			t.Fatal("params diverged after resume under faults")
		}
	}
}

// TestResumeRejectsWorkerMismatch: a snapshot from a different gang
// size must be rejected loudly at validation time.
func TestResumeRejectsWorkerMismatch(t *testing.T) {
	cfg := ckCfg(PreOptimizer, CommHost, false, nil)
	cfg.Resume = &checkpoint.State{Workers: 8}
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected a worker-count mismatch error")
	} else if got := err.Error(); !strings.Contains(got, "8") || !strings.Contains(got, "4") {
		t.Fatalf("error %q does not name both worker counts", got)
	}
}
