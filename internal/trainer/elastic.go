// Elastic fault tolerance: what happens when a simulated worker dies
// mid-run. The comm layer turns a rank death into a typed failure that
// aborts the step's collectives instead of wedging them (every rank
// either finishes or observes a RankFailure); this file decides what to
// do next. Parameters are only ever updated by a fully completed
// reduction, so a failed attempt is side-effect-free on the model and
// the step can simply be retried on the survivors — worker-local stream
// positions (data iterators, post-opt optimizer state) advance by the
// aborted attempt, which is the usual elastic-training concession: a
// lost microbatch, not a corrupted model.
//
// The survivor rebuild is communicator-driven, the way an elastic MPI
// implementation would do it: the world is reset (stale in-flight
// messages dropped, cascade observers revived), every survivor
// re-splits the world communicator with the same color, the dead ranks
// are skipped by Split, and the resulting group rebinds each survivor's
// overlap engine. The dataset is re-sharded over the survivors with the
// existing data.Shard.
package trainer

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/overlap"
	"repro/internal/tensor"
)

// FailurePolicy selects how a run reacts to a rank failure on the
// cluster substrate.
type FailurePolicy int

// FailurePolicy values.
const (
	// FailStop re-raises the aggregated failure — the non-elastic
	// default: the run dies with every rank's error attributed.
	FailStop FailurePolicy = iota
	// ShrinkContinue drops the failed ranks, re-shards the dataset over
	// the survivors, rebuilds the reduction substrate and retries the
	// step from the current in-memory state — no work before the
	// failure is lost.
	ShrinkContinue
	// GangRestart additionally rewinds to the last checkpoint before
	// continuing on the survivors: parameters, optimizer state and
	// error-feedback residuals restart from the snapshot (requires
	// CheckpointEverySteps > 0). The steps since the checkpoint are
	// replayed — the classic checkpoint/restart discipline, here
	// without losing the process gang.
	GangRestart
)

func (p FailurePolicy) String() string {
	switch p {
	case ShrinkContinue:
		return "shrink-continue"
	case GangRestart:
		return "gang-restart"
	default:
		return "fail-stop"
	}
}

// elasticStep runs one reduction step, absorbing failures according to
// the policy: a failed attempt is discarded (its elapsed virtual time
// is charged — partial buckets and failure detection cost real
// simulated seconds), error-feedback residuals are rolled back to
// their pre-attempt state, the gang rebuilds on the survivors, and the
// step retries until an attempt completes.
func (r *run) elasticStep() (loss, simSec float64) {
	for {
		backup := r.efSnapshot()
		var wireBase int64
		if r.engine != nil {
			wireBase = r.engine.world.WireBytes()
		}
		loss, simSec, err := r.tryStep()
		if err == nil {
			return loss, simSec
		}
		// The retry's time base (res.SimSeconds) must sit past the
		// failure, not pretend the aborted attempt never ran.
		r.res.SimSeconds += simSec
		if r.engine != nil {
			// How far the aborted collective got before every rank
			// observed the failure is goroutine-schedule-dependent;
			// rewinding the meter to the attempt boundary keeps wire
			// accounting deterministic (virtual time is stamped from
			// the clocks and needs no such correction).
			r.engine.world.RewindWireBytes(wireBase)
		}
		r.efRestore(backup)
		r.handleFailure(err)
	}
}

// efBackup is the per-rank compression state captured before a step
// attempt so a retry starts clean: error-feedback residuals, and under
// an adaptive policy the per-slot decision state (an aborted attempt
// already ran Decide for its launched buckets).
type efBackup struct {
	res [][][][][]float32 // indexed by world rank
	pol [][][]float64     // indexed by world rank; nil when static
}

// efSnapshot captures the per-rank compression state before a step
// attempt — but only when an aborted attempt could contaminate it: an
// elastic shrink retries the step after launch() already quantized
// buckets against the slot residuals (and, adaptively, advanced the
// policies), and without a rollback the retry would re-apply the
// dropped error of a gradient that was never transmitted and re-decide
// from post-attempt state. GangRestart rewinds from the checkpoint
// instead, and FailStop never retries, so both skip the copy.
func (r *run) efSnapshot() *efBackup {
	if r.engine == nil || r.cfg.OnFailure != ShrinkContinue {
		return nil
	}
	cdc, pol := compress.Resolve(r.cfg.Compression)
	if pol == nil && (cdc == nil || !cdc.ErrorFeedback()) {
		return nil
	}
	b := &efBackup{res: make([][][][][]float32, len(r.workers))}
	if pol != nil {
		b.pol = make([][][]float64, len(r.workers))
	}
	for _, rank := range r.active {
		b.res[rank] = r.engine.engines[rank].SnapshotStreams()
		if pol != nil {
			b.pol[rank] = r.engine.engines[rank].SnapshotPolicies()
		}
	}
	return b
}

// efRestore rolls the surviving ranks' residuals and policy state back
// to the pre-attempt snapshot (no-op when efSnapshot declined to
// capture). It runs before the rebuild so Rebind carries the clean
// state over.
func (r *run) efRestore(backup *efBackup) {
	if backup == nil {
		return
	}
	for _, rank := range r.active {
		r.engine.engines[rank].RestoreStreams(backup.res[rank])
		if backup.pol != nil {
			r.engine.engines[rank].RestorePolicies(backup.pol[rank])
		}
	}
}

// handleFailure absorbs one failed reduction attempt under an elastic
// policy (FailStop re-raises).
func (r *run) handleFailure(err *comm.RunError) {
	if r.cfg.OnFailure == FailStop || r.engine == nil {
		panic(err)
	}
	roots := err.Roots()
	for _, rank := range roots {
		r.workers[rank] = nil
	}
	alive := r.active[:0]
	for _, rank := range r.active {
		if r.workers[rank] != nil {
			alive = append(alive, rank)
		}
	}
	r.active = alive
	if len(r.active) == 0 {
		panic(err) // nobody left to continue with
	}
	r.res.Failures = append(r.res.Failures, FailureEvent{
		Step: r.step, FailedRanks: roots, Survivors: len(r.active),
	})

	group := r.engine.rebuild(r.active)
	if len(group) != len(r.active) {
		panic(fmt.Sprintf("trainer: survivor split produced %d members, expected %d", len(group), len(r.active)))
	}

	// Re-shard the dataset over the survivors: survivor i takes shard i
	// of len(active), with a fresh iterator over its new shard (the old
	// cursor indexes a shard that no longer exists).
	for i, rank := range r.active {
		w := r.workers[rank]
		w.shard = r.cfg.Train.Shard(i, len(r.active))
		w.iter = data.NewIterator(w.shard.N, r.cfg.Microbatch, r.cfg.Seed+1000+int64(rank))
	}

	if r.cfg.OnFailure == GangRestart {
		if r.lastCk == nil {
			panic("trainer: GangRestart with no checkpoint captured")
		}
		// The rewind restores the checkpoint's SimSeconds, but the time
		// since then — the replayed steps plus the aborted attempt — was
		// really spent: keep it on the timeline so a gang restart's
		// failure cost (lost progress re-run on fewer workers) is
		// visible, not silently erased.
		wasted := r.res.SimSeconds - r.lastCk.SimSeconds
		r.applyState(r.lastCk, true)
		if wasted > 0 {
			r.res.SimSeconds += wasted
		}
	}
}

// rebuild resets the world after a failure and reconstructs the
// reduction substrate over the survivors: stale in-flight messages are
// dropped and cascade observers revived (comm.World.Reset), then every
// survivor re-splits the world communicator with the same color — the
// dead members are skipped by Split, so the surviving ranks fall out as
// the new group — and each survivor's engine is explicitly rebound to
// it.
func (ce *commEngine) rebuild(active []int) collective.Group {
	ce.world.Reset()
	groups := make([]collective.Group, ce.world.Size())
	if err := ce.world.RunErr(func(p *comm.Proc) {
		base := collective.New(p, collective.WorldGroup(p.Size()), collective.Config{})
		nc := base.Split(0, p.Rank())
		groups[p.Rank()] = nc.Group()
	}); err != nil {
		// The rebuild exchanges control-plane messages only — no clock
		// advances, so no injected deadline can fire here; a failure is
		// a programming error.
		panic(err)
	}
	g := groups[active[0]]
	for _, rank := range active {
		ce.engines[rank].Rebind(g)
	}
	return g
}

// ------------------------------------------------------------ snapshots

// restoreOrInit applies cfg.Resume if present and seeds the internal
// gang-restart checkpoint so a failure before the first scheduled
// capture still has a restart point.
func (r *run) restoreOrInit() {
	if ck := r.cfg.Resume; ck != nil {
		if len(ck.Params) != len(r.params) {
			panic(fmt.Sprintf("trainer: Resume snapshot has %d params, model has %d", len(ck.Params), len(r.params)))
		}
		if int(ck.Step) > r.cfg.MaxEpochs*r.stepsPerEpoch && !r.cfg.ReshapeResume {
			// Under ReshapeResume this is legitimate: a job migrated up
			// from a smaller gang (whose per-epoch step budget was
			// larger) may already have run more steps than this gang
			// size prescribes. The run restores and is immediately done.
			panic(fmt.Sprintf("trainer: Resume snapshot at step %d is past this config's %d-step budget", ck.Step, r.cfg.MaxEpochs*r.stepsPerEpoch))
		}
		// A ReshapeResume onto a different-sized gang is a migration, not
		// a replay: it takes the same reshape-safe restore path as a
		// gang-restart rebuild (fresh iterators over the re-cut shards,
		// source-only residuals). Equal sizes restore bitwise.
		r.applyState(ck, ck.Workers != len(r.workers))
		r.lastCk = ck
		return
	}
	if r.cfg.OnFailure == GangRestart {
		r.lastCk = r.snapshot()
	}
}

// snapshot captures the full training state at the current step
// boundary: parameters, shared and per-worker optimizer state, iterator
// positions, error-feedback residuals, and the loop bookkeeping.
func (r *run) snapshot() *checkpoint.State {
	ck := &checkpoint.State{
		Workers:        len(r.workers),
		Step:           int64(r.step),
		SimSeconds:     r.res.SimSeconds,
		LossSum:        r.lossSum,
		Converged:      r.res.Converged,
		EpochsToTarget: int64(r.res.EpochsToTarget),
		StepsToTarget:  int64(r.res.StepsToTarget),
		Params:         tensor.Clone(r.params),
		Shared:         r.sharedOpt.Snapshot(),
		PerWorker:      make([]checkpoint.Worker, len(r.workers)),
	}
	for rank, w := range r.workers {
		if w == nil {
			continue // dead rank: zero-valued entry
		}
		resh, cur := w.iter.State()
		pw := checkpoint.Worker{Opt: w.opt.Snapshot(), Reshuffles: resh, Cursor: int64(cur)}
		if r.engine != nil {
			pw.Residuals = r.engine.engines[rank].SnapshotStreams()
			pw.Policy = r.engine.engines[rank].SnapshotPolicies()
		}
		ck.PerWorker[rank] = pw
	}
	return ck
}

// capture records a checkpoint when one is due at the current step.
func (r *run) capture() {
	cfg := r.cfg
	if cfg.CheckpointEverySteps <= 0 || r.step%cfg.CheckpointEverySteps != 0 {
		return
	}
	ck := r.snapshot()
	r.lastCk = ck
	if cfg.OnCheckpoint != nil {
		// The callback gets its own deep copy: a caller mutating (or
		// serializing in place) must not be able to corrupt the
		// internal gang-restart state.
		cfg.OnCheckpoint(ck.Clone())
	}
}

// applyState restores training state from a snapshot. afterReshape
// marks a restore onto a gang of a different shape — a gang-restart
// rewind onto the just-shrunk survivors, or a ReshapeResume migration
// onto a resized gang: data iterators are not rewound (the shards were
// re-cut, so each worker restarts its new shard stream) and only the
// reshape-safe error-feedback residuals are re-applied; a plain resume
// restores everything bitwise. A grown gang's extra ranks have no
// counterpart in the snapshot and keep their fresh-clone state.
func (r *run) applyState(ck *checkpoint.State, afterReshape bool) {
	r.master.SetParams(ck.Params)
	r.sharedOpt.Restore(ck.Shared)
	for _, rank := range r.active {
		if rank >= len(ck.PerWorker) {
			if r.engine != nil {
				r.engine.engines[rank].SeekStep(int(ck.Step))
			}
			continue
		}
		w := r.workers[rank]
		pw := ck.PerWorker[rank]
		w.opt.Restore(pw.Opt)
		if !afterReshape {
			w.iter.Restore(pw.Reshuffles, int(pw.Cursor))
		}
		if r.engine != nil {
			res := pw.Residuals
			if afterReshape {
				// Hop residuals are shaped by the old group's exchange
				// pattern; only the source-quantization residual (the
				// fused bucket itself) survives a reshape.
				res = overlap.TruncateResidualsToSource(res)
			}
			r.engine.engines[rank].RestoreStreams(res)
			// Policy decision state is group-independent (rung, top-k
			// budget, telemetry memory) and restores whole either way.
			r.engine.engines[rank].RestorePolicies(pw.Policy)
			r.engine.engines[rank].SeekStep(int(ck.Step))
		}
	}
	r.step = int(ck.Step)
	r.lossSum = ck.LossSum
	r.res.SimSeconds = ck.SimSeconds
	r.res.Converged = ck.Converged
	r.res.EpochsToTarget = int(ck.EpochsToTarget)
	r.res.StepsToTarget = int(ck.StepsToTarget)
	// A rewind drops epoch stats recorded past the restore point; they
	// will be re-recorded as the steps replay.
	for len(r.res.Epochs) > 0 && r.res.Epochs[len(r.res.Epochs)-1].Steps > r.step {
		r.res.Epochs = r.res.Epochs[:len(r.res.Epochs)-1]
	}
}
