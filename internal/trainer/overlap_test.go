package trainer

import (
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// overlapCfg is a small but multi-layer training setup shared by the
// comm-mode equivalence tests.
func overlapCfg(workers int, mode CommMode) Config {
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 96, Classes: 6, Noise: 0.5, Seed: 21,
	}, 128)
	return Config{
		Workers:    workers,
		Microbatch: 8,
		Reduction:  ReduceAdasum,
		Scope:      PreOptimizer,
		PerLayer:   true,
		Comm:       mode,
		// Small threshold so several buckets form per step.
		FusionBytes: 2048,
		Net:         simnet.TCP40(workers),
		StepSeconds: 1e-3,
		Model:       func() *nn.Network { return nn.NewMLP(96, 24, 6) },
		Optimizer:   optim.NewMomentum(0.9),
		Schedule:    optim.Constant{Base: 0.05},
		Train:       train, Test: test,
		MaxEpochs: 2,
		Seed:      11,
	}
}

// TestOverlapStepBitwiseEqualsSyncStep is the trainer-level overlap-
// correctness property: with identical seeds, the overlapped run and the
// synchronous bucketed run produce bitwise-identical model parameters,
// for both the parity tree and the paper's RVH bucket collectives, at
// power-of-two and odd worker counts.
func TestOverlapStepBitwiseEqualsSyncStep(t *testing.T) {
	for _, tc := range []struct {
		workers int
		algo    overlap.Algo
	}{{4, overlap.AlgoTree}, {5, overlap.AlgoTree}, {4, overlap.AlgoRVH}, {8, overlap.AlgoRVH}} {
		syncCfg := overlapCfg(tc.workers, CommSync)
		syncCfg.BucketAlgo = tc.algo
		overCfg := overlapCfg(tc.workers, CommOverlap)
		overCfg.BucketAlgo = tc.algo
		syncRes := Run(syncCfg)
		overRes := Run(overCfg)
		if !tensor.Equal(syncRes.FinalParams, overRes.FinalParams, 0) {
			t.Fatalf("workers=%d algo=%v: overlapped params not bitwise-equal to sync", tc.workers, tc.algo)
		}
		if overRes.SimSeconds >= syncRes.SimSeconds {
			t.Fatalf("workers=%d algo=%v: overlap sim time %v not below sync %v",
				tc.workers, tc.algo, overRes.SimSeconds, syncRes.SimSeconds)
		}
	}
}

// TestBucketedTreeBitwiseEqualsHostPath pins the bucketed substrate to
// the monolithic host reducer: with AlgoTree the collective run is
// bitwise-identical to the CommHost run — same buckets or not, same
// floats.
func TestBucketedTreeBitwiseEqualsHostPath(t *testing.T) {
	for _, workers := range []int{2, 3, 4} {
		host := Run(overlapCfg(workers, CommHost))
		for _, mode := range []CommMode{CommSync, CommOverlap} {
			got := Run(overlapCfg(workers, mode))
			if !tensor.Equal(got.FinalParams, host.FinalParams, 0) {
				t.Fatalf("workers=%d mode=%v: bucketed params not bitwise-equal to host path", workers, mode)
			}
		}
	}
}

// TestBucketedSumMatchesHostMean checks the sync-SGD path through the
// ring collective against the host mean at float tolerance (the ring's
// summation order legitimately differs).
func TestBucketedSumMatchesHostMean(t *testing.T) {
	mk := func(mode CommMode) Config {
		cfg := overlapCfg(4, mode)
		cfg.Reduction = ReduceSum
		cfg.PerLayer = false
		return cfg
	}
	host := Run(mk(CommHost))
	over := Run(mk(CommOverlap))
	if !tensor.Equal(host.FinalParams, over.FinalParams, 1e-4) {
		t.Fatalf("bucketed ring-sum run diverged from host mean run beyond tolerance")
	}
}

// TestOverlapSimTimeBelowSyncUnderInterNodeModel is the virtual-clock
// acceptance property on the slow-interconnect cluster: overlapping
// communication with backprop must shorten the simulated run, and the
// overlapped run can never beat its own compute floor.
func TestOverlapSimTimeBelowSyncUnderInterNodeModel(t *testing.T) {
	syncRes := Run(overlapCfg(4, CommSync))
	overRes := Run(overlapCfg(4, CommOverlap))
	if overRes.SimSeconds >= syncRes.SimSeconds {
		t.Fatalf("overlap sim time %v not below sync %v", overRes.SimSeconds, syncRes.SimSeconds)
	}
	steps := len(overRes.Epochs) * overRes.StepsPerEpoch
	floor := 1e-3 * float64(steps)
	if overRes.SimSeconds < floor {
		t.Fatalf("overlap sim time %v below compute floor %v", overRes.SimSeconds, floor)
	}
}

// TestBucketedAdasumRequiresPerLayer documents the §3.6 gate.
func TestBucketedAdasumRequiresPerLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bucketed whole-gradient Adasum")
		}
	}()
	cfg := overlapCfg(4, CommOverlap)
	cfg.PerLayer = false
	Run(cfg)
}

// TestBucketedAdasumRejectsRingSum documents that the mean combiner
// cannot be selected for an Adasum reduction: AlgoRingSum would silently
// replace the Adasum combine with plain averaging.
func TestBucketedAdasumRejectsRingSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ReduceAdasum with BucketAlgo AlgoRingSum")
		}
	}()
	cfg := overlapCfg(4, CommOverlap)
	cfg.BucketAlgo = overlap.AlgoRingSum
	Run(cfg)
}

// TestBucketedSumRejectsRVH is the converse: an explicitly requested
// AlgoRVH must not be silently replaced by the ring collective when the
// reduction is a sum.
func TestBucketedSumRejectsRVH(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ReduceSum with BucketAlgo AlgoRVH")
		}
	}()
	cfg := overlapCfg(4, CommOverlap)
	cfg.Reduction = ReduceSum
	cfg.PerLayer = false
	cfg.BucketAlgo = overlap.AlgoRVH
	Run(cfg)
}
