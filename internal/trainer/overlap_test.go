package trainer

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// overlapCfg is a small but multi-layer training setup shared by the
// comm-mode equivalence tests. Cluster-only knobs are set only on the
// cluster substrate — Validate now rejects them under CommHost instead
// of silently ignoring them.
func overlapCfg(workers int, mode CommMode, over bool) Config {
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 96, Classes: 6, Noise: 0.5, Seed: 21,
	}, 128)
	cfg := Config{
		Workers:    workers,
		Microbatch: 8,
		Reduction:  ReduceAdasum,
		Scope:      PreOptimizer,
		PerLayer:   true,
		Comm:       mode,
		Overlap:    over,
		Model:      func() *nn.Network { return nn.NewMLP(96, 24, 6) },
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   optim.Constant{Base: 0.05},
		Train:      train, Test: test,
		MaxEpochs: 2,
		Seed:      11,
	}
	if mode == CommCluster {
		// Small threshold so several buckets form per step.
		cfg.FusionBytes = 2048
		cfg.Net = simnet.TCP40(workers)
		cfg.StepSeconds = 1e-3
	}
	return cfg
}

// TestOverlapStepBitwiseEqualsSyncStep is the trainer-level overlap-
// correctness property: with identical seeds, the overlapped run and the
// synchronous bucketed run produce bitwise-identical model parameters,
// for both the parity tree and the paper's RVH bucket collectives, at
// power-of-two and odd worker counts.
func TestOverlapStepBitwiseEqualsSyncStep(t *testing.T) {
	for _, tc := range []struct {
		workers int
		strat   collective.Strategy
	}{{4, collective.StrategyTree}, {5, collective.StrategyTree}, {4, collective.StrategyRVH}, {8, collective.StrategyRVH}} {
		syncCfg := overlapCfg(tc.workers, CommCluster, false)
		syncCfg.Strategy = tc.strat
		overCfg := overlapCfg(tc.workers, CommCluster, true)
		overCfg.Strategy = tc.strat
		syncRes := Run(syncCfg)
		overRes := Run(overCfg)
		if !tensor.Equal(syncRes.FinalParams, overRes.FinalParams, 0) {
			t.Fatalf("workers=%d strategy=%v: overlapped params not bitwise-equal to sync", tc.workers, tc.strat)
		}
		if overRes.SimSeconds >= syncRes.SimSeconds {
			t.Fatalf("workers=%d strategy=%v: overlap sim time %v not below sync %v",
				tc.workers, tc.strat, overRes.SimSeconds, syncRes.SimSeconds)
		}
	}
}

// TestBucketedTreeBitwiseEqualsHostPath pins the bucketed substrate to
// the monolithic host reducer: with StrategyTree the collective run is
// bitwise-identical to the CommHost run — same buckets or not, same
// floats.
func TestBucketedTreeBitwiseEqualsHostPath(t *testing.T) {
	for _, workers := range []int{2, 3, 4} {
		host := Run(overlapCfg(workers, CommHost, false))
		for _, over := range []bool{false, true} {
			got := Run(overlapCfg(workers, CommCluster, over))
			if !tensor.Equal(got.FinalParams, host.FinalParams, 0) {
				t.Fatalf("workers=%d overlap=%v: bucketed params not bitwise-equal to host path", workers, over)
			}
		}
	}
}

// TestBucketedSumMatchesHostMean checks the sync-SGD path through the
// ring collective against the host mean at float tolerance (the ring's
// summation order legitimately differs).
func TestBucketedSumMatchesHostMean(t *testing.T) {
	mk := func(mode CommMode, over bool) Config {
		cfg := overlapCfg(4, mode, over)
		cfg.Reduction = ReduceSum
		cfg.PerLayer = false
		return cfg
	}
	host := Run(mk(CommHost, false))
	over := Run(mk(CommCluster, true))
	if !tensor.Equal(host.FinalParams, over.FinalParams, 1e-4) {
		t.Fatalf("bucketed ring-sum run diverged from host mean run beyond tolerance")
	}
}

// TestOverlapSimTimeBelowSyncUnderInterNodeModel is the virtual-clock
// acceptance property on the slow-interconnect cluster: overlapping
// communication with backprop must shorten the simulated run, and the
// overlapped run can never beat its own compute floor.
func TestOverlapSimTimeBelowSyncUnderInterNodeModel(t *testing.T) {
	syncRes := Run(overlapCfg(4, CommCluster, false))
	overRes := Run(overlapCfg(4, CommCluster, true))
	if overRes.SimSeconds >= syncRes.SimSeconds {
		t.Fatalf("overlap sim time %v not below sync %v", overRes.SimSeconds, syncRes.SimSeconds)
	}
	steps := len(overRes.Epochs) * overRes.StepsPerEpoch
	floor := 1e-3 * float64(steps)
	if overRes.SimSeconds < floor {
		t.Fatalf("overlap sim time %v below compute floor %v", overRes.SimSeconds, floor)
	}
}

// TestBucketedAdasumRequiresPerLayer documents the §3.6 gate.
func TestBucketedAdasumRequiresPerLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bucketed whole-gradient Adasum")
		}
	}()
	cfg := overlapCfg(4, CommCluster, true)
	cfg.PerLayer = false
	Run(cfg)
}

// TestBucketedAdasumRejectsRingSum documents that the mean combiner
// cannot be selected for an Adasum reduction: StrategyRing would
// silently replace the Adasum combine with plain averaging. The reject
// surfaces as a Validate error first, then as Run's panic.
func TestBucketedAdasumRejectsRingSum(t *testing.T) {
	cfg := overlapCfg(4, CommCluster, true)
	cfg.Strategy = collective.StrategyRing
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected Validate error for ReduceAdasum with StrategyRing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ReduceAdasum with StrategyRing")
		}
	}()
	Run(cfg)
}

// TestBucketedSumRejectsRVH is the converse: an explicitly requested
// StrategyRVH must not be silently replaced by the ring collective when
// the reduction is a sum.
func TestBucketedSumRejectsRVH(t *testing.T) {
	cfg := overlapCfg(4, CommCluster, true)
	cfg.Reduction = ReduceSum
	cfg.PerLayer = false
	cfg.Strategy = collective.StrategyRVH
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected Validate error for ReduceSum with StrategyRVH")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ReduceSum with StrategyRVH")
		}
	}()
	Run(cfg)
}
