package trainer

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// TestCompressionNoneBitwiseIdenticalToCurrent is the trainer-level A/B
// pin of the tentpole requirement: Compression = None (or nil) leaves
// both bucketed comm modes bitwise-identical — parameters AND simulated
// seconds — to the pre-codec paths.
func TestCompressionNoneBitwiseIdenticalToCurrent(t *testing.T) {
	for _, over := range []bool{false, true} {
		base := overlapCfg(4, CommCluster, over)
		withNone := overlapCfg(4, CommCluster, over)
		withNone.Compression = compress.None()
		want := Run(base)
		got := Run(withNone)
		if !tensor.Equal(got.FinalParams, want.FinalParams, 0) {
			t.Fatalf("overlap=%v: params not bitwise-identical under Compression=None", over)
		}
		if got.SimSeconds != want.SimSeconds {
			t.Fatalf("overlap=%v: SimSeconds %v != %v under Compression=None", over, got.SimSeconds, want.SimSeconds)
		}
	}
}

// TestCompressedSyncOverlapBitwiseEqual: the sync/overlap bitwise
// equivalence holds under a lossy codec too — both modes run the same
// deterministic bucket programs and error-feedback site sequences.
func TestCompressedSyncOverlapBitwiseEqual(t *testing.T) {
	for _, codec := range []compress.Codec{compress.FP16(), compress.TopK(0.1, true)} {
		syncCfg := overlapCfg(4, CommCluster, false)
		syncCfg.Compression = codec
		overCfg := overlapCfg(4, CommCluster, true)
		overCfg.Compression = codec
		syncRes := Run(syncCfg)
		overRes := Run(overCfg)
		if !tensor.Equal(syncRes.FinalParams, overRes.FinalParams, 0) {
			t.Fatalf("%s: sync and overlapped params differ", codec)
		}
		if overRes.SimSeconds >= syncRes.SimSeconds {
			t.Fatalf("%s: overlap sim time %v not below sync %v", codec, overRes.SimSeconds, syncRes.SimSeconds)
		}
	}
}

// TestCompressedTrainingStillLearns: an fp16-compressed bucketed run
// reaches essentially the same training quality as the exact run on the
// small MLP config (half precision is where the paper actually trains).
func TestCompressedTrainingStillLearns(t *testing.T) {
	exactCfg := overlapCfg(4, CommCluster, false)
	exact := Run(exactCfg)
	fp16Cfg := overlapCfg(4, CommCluster, false)
	fp16Cfg.Compression = compress.FP16()
	got := Run(fp16Cfg)
	if got.FinalAccuracy < exact.FinalAccuracy-0.05 {
		t.Fatalf("fp16 accuracy %v fell more than 5 points below exact %v", got.FinalAccuracy, exact.FinalAccuracy)
	}
}

// TestCompressionRequiresBucketedComm pins the Config validation: the
// host path has no wire to compress.
func TestCompressionRequiresBucketedComm(t *testing.T) {
	cfg := overlapCfg(4, CommHost, false)
	cfg.Compression = compress.FP16()
	defer func() {
		if recover() == nil {
			t.Fatal("CommHost with lossy Compression did not panic")
		}
	}()
	Run(cfg)
}
