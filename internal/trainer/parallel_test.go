package trainer

import (
	"runtime"
	"testing"

	"repro/internal/compress"
)

// TestRunIsBitwiseInvariantUnderGOMAXPROCS is the end-to-end pin of the
// simnet's parallel rank execution: rank goroutines really run
// concurrently (per-rank sharded buffer pool and wire meter, no global
// serialization), so the Go scheduler interleaves them differently at
// every GOMAXPROCS — and none of it may show. For every Scope x Comm x
// codec combination (including top-k with error feedback, whose
// residual state is the easiest thing to corrupt with a misordered
// reduction), a full training run at GOMAXPROCS=1 and at a wide
// setting must produce bitwise-identical FinalParams and identical
// SimSeconds and accuracy. Determinism comes from the virtual-clock
// design, not from serial execution: clocks are private to each rank
// and meet only through message arrival stamps and explicit joins.
func TestRunIsBitwiseInvariantUnderGOMAXPROCS(t *testing.T) {
	type combo struct {
		name    string
		scope   Scope
		comm    CommMode
		overlap bool
		codec   compress.Compression
	}
	combos := []combo{
		{"pre/host", PreOptimizer, CommHost, false, nil},
		{"post/host", PostOptimizer, CommHost, false, nil},
		{"localsgd/host", LocalSGD, CommHost, false, nil},
		{"pre/cluster-sync", PreOptimizer, CommCluster, false, nil},
		{"post/cluster-overlap", PostOptimizer, CommCluster, true, nil},
		{"localsgd/cluster-overlap", LocalSGD, CommCluster, true, nil},
		{"pre/cluster-overlap/fp16", PreOptimizer, CommCluster, true, compress.FP16()},
		{"post/cluster-overlap/int8", PostOptimizer, CommCluster, true, compress.Int8(0)},
		{"post/cluster-sync/topk-ef", PostOptimizer, CommCluster, false, compress.TopK(0.25, true)},
		{"post/cluster-overlap/topk-ef", PostOptimizer, CommCluster, true, compress.TopK(0.25, true)},
		{"localsgd/cluster-overlap/topk-ef", LocalSGD, CommCluster, true, compress.TopK(0.25, true)},
		// Adaptive policy: the codec decision itself must be a pure
		// function of rank-private telemetry for these to hold.
		{"post/cluster-sync/adaptive", PostOptimizer, CommCluster, false, compress.Adaptive()},
		{"post/cluster-overlap/adaptive", PostOptimizer, CommCluster, true, compress.Adaptive()},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range combos {
		t.Run(tc.name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			serial := Run(ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec))
			// Wider than any plausible host so the scheduler has real
			// freedom even when the machine itself is narrow.
			runtime.GOMAXPROCS(8)
			wide := Run(ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec))
			runtime.GOMAXPROCS(prev)

			if len(serial.FinalParams) != len(wide.FinalParams) {
				t.Fatal("param count mismatch")
			}
			for i, v := range serial.FinalParams {
				if wide.FinalParams[i] != v {
					t.Fatalf("FinalParams diverged at %d: %v (1P) != %v (8P)", i, v, wide.FinalParams[i])
				}
			}
			if serial.SimSeconds != wide.SimSeconds {
				t.Fatalf("SimSeconds diverged: %v (1P) != %v (8P)", serial.SimSeconds, wide.SimSeconds)
			}
			if serial.FinalAccuracy != wide.FinalAccuracy {
				t.Fatalf("FinalAccuracy diverged: %v (1P) != %v (8P)", serial.FinalAccuracy, wide.FinalAccuracy)
			}
		})
	}
}
