// Package trainer is the data-parallel training harness: W simulated
// workers each compute gradients on their shard of a synthetic dataset
// and periodically combine model updates with either the synchronous-SGD
// sum/average or Adasum. It reproduces the three integration modes of
// the paper:
//
//   - PreOptimizer: the combiner runs on raw gradients before the
//     optimizer step — how Adasum replaces allreduce for Momentum-SGD;
//   - PostOptimizer (Figure 3): every worker applies its own optimizer
//     locally, the combiner runs on the resulting model deltas
//     ("effective gradients"), and the model jumps to start + combined
//     delta — required for Adam/LAMB because "the logic of optimizers
//     should only apply to the smaller minibatches per node" (§4.1);
//   - LocalSGD (§5.2): workers take several local optimizer steps
//     between reductions, trading algorithmic for system efficiency on
//     slow interconnects.
//
// The harness measures algorithmic efficiency (epochs/steps to a target
// accuracy); system efficiency comes from the simnet cost model and is
// composed with these results by the experiments package.
package trainer

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/adasum"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Reduction selects the gradient combiner.
type Reduction int

// Reduction values.
const (
	// ReduceSum averages worker contributions — synchronous SGD. (The
	// paper's "Sum" baselines scale the learning rate with the worker
	// count instead; express that with an optim.Scaled schedule.)
	ReduceSum Reduction = iota
	// ReduceAdasum combines worker contributions with the adaptive sum.
	ReduceAdasum
)

func (r Reduction) String() string {
	if r == ReduceAdasum {
		return "adasum"
	}
	return "sum"
}

// Scope selects where the reduction happens relative to the optimizer.
type Scope int

// Scope values.
const (
	// PreOptimizer reduces raw gradients, then takes one optimizer step
	// on the shared model.
	PreOptimizer Scope = iota
	// PostOptimizer runs a per-worker optimizer step and reduces the
	// model deltas (Figure 3).
	PostOptimizer
	// LocalSGD runs LocalSteps optimizer steps per worker between
	// reductions and reduces the accumulated deltas (§5.2).
	LocalSGD
)

func (s Scope) String() string {
	switch s {
	case PostOptimizer:
		return "post-opt"
	case LocalSGD:
		return "local-sgd"
	default:
		return "pre-opt"
	}
}

// Config describes one training run.
type Config struct {
	Workers    int
	Microbatch int // samples per worker per local step
	LocalSteps int // local steps (or accumulated microbatches) per reduction; default 1

	Reduction Reduction
	Scope     Scope
	PerLayer  bool // per-layer Adasum (§3.6); false = whole-gradient

	Model     func() *nn.Network // replica factory; all replicas must be identical shapes
	Optimizer optim.Optimizer    // prototype; cloned per worker (post-opt) or used directly (pre-opt)
	Schedule  optim.Schedule

	Train *data.Dataset
	Test  *data.Dataset

	MaxEpochs      int
	TargetAccuracy float64 // stop when test accuracy reaches this; 0 = run all epochs
	// EvalEverySteps, when positive, additionally evaluates the target
	// every n reduction steps, so StepsToTarget has step granularity
	// (the Table 3 iteration counts need this; epochs are too coarse).
	EvalEverySteps int
	// Sustained changes the convergence criterion: instead of stopping at
	// the first crossing, the run plays out its full budget and counts as
	// converged only if accuracy stays at or above the target from
	// StepsToTarget through the end — transient crossings of an
	// oscillating large-LR run don't count (the Table 3 baselines).
	Sustained bool
	Seed      int64

	// InitParams, when set, seeds the model with these parameters instead
	// of fresh initialization — how the two-phase BERT experiments start
	// phase 2 from the phase 1 checkpoint.
	InitParams []float32

	// Hook, when set, observes the per-worker contributions at every
	// reduction (gradients or deltas depending on Scope). Used by the
	// Figure 1 orthogonality experiment.
	Hook func(step int, contributions [][]float32, layout tensor.Layout)

	// Parallel computes worker gradients on multiple OS threads.
	Parallel bool
}

// EpochStat records one epoch of progress.
type EpochStat struct {
	Epoch        int
	Steps        int // cumulative reduction steps
	TrainLoss    float64
	TestAccuracy float64
}

// Result is the outcome of a run.
type Result struct {
	Epochs         []EpochStat
	Converged      bool
	EpochsToTarget int // first epoch (1-based) whose eval met the target; -1 if never
	StepsToTarget  int
	FinalAccuracy  float64
	StepsPerEpoch  int
	FinalParams    []float32 // trained model snapshot (phase chaining)
}

// worker is one simulated GPU: a model replica, its data shard, its own
// batch iterator and (in post-opt modes) its own optimizer state.
type worker struct {
	net   *nn.Network
	shard *data.Dataset
	iter  *data.Iterator
	opt   optim.Optimizer
	grad  []float32 // scratch: this worker's contribution per reduction
}

// Run executes the configured training and returns its history.
func Run(cfg Config) *Result {
	if cfg.Workers <= 0 || cfg.Microbatch <= 0 {
		panic("trainer: Workers and Microbatch must be positive")
	}
	if cfg.LocalSteps <= 0 {
		cfg.LocalSteps = 1
	}
	if cfg.Model == nil || cfg.Optimizer == nil || cfg.Schedule == nil {
		panic("trainer: Model, Optimizer and Schedule are required")
	}
	if cfg.Train == nil || cfg.Test == nil {
		panic("trainer: Train and Test datasets are required")
	}

	master := cfg.Model()
	if cfg.InitParams != nil {
		master.SetParams(cfg.InitParams)
	} else {
		master.Init(newRNG(cfg.Seed))
	}
	layout := master.Layout()
	params := master.Params()
	nParams := master.NumParams()

	workers := make([]*worker, cfg.Workers)
	for w := range workers {
		shard := cfg.Train.Shard(w, cfg.Workers)
		workers[w] = &worker{
			net:   cfg.Model(),
			shard: shard,
			iter:  data.NewIterator(shard.N, cfg.Microbatch, cfg.Seed+1000+int64(w)),
			opt:   cfg.Optimizer.Clone(),
			grad:  make([]float32, nParams),
		}
	}
	sharedOpt := cfg.Optimizer.Clone() // pre-optimizer scope state

	samplesPerReduce := cfg.Workers * cfg.Microbatch * cfg.LocalSteps
	stepsPerEpoch := cfg.Train.N / samplesPerReduce
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}

	// One reduction workspace serves every step: the combiner reuses its
	// scratch instead of allocating per reduction.
	red := adasum.NewReducer()
	contributions := make([][]float32, len(workers))
	losses := make([]float64, len(workers))

	res := &Result{EpochsToTarget: -1, StepsToTarget: -1, StepsPerEpoch: stepsPerEpoch}
	testX, testLabels := cfg.Test.Batch(seq(cfg.Test.N))

	step := 0
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		var lossSum float64
		for s := 0; s < stepsPerEpoch; s++ {
			lossSum += reduceStep(cfg, workers, params, layout, sharedOpt, red, contributions, losses, step)
			step++
			if cfg.EvalEverySteps > 0 && cfg.TargetAccuracy > 0 &&
				step%cfg.EvalEverySteps == 0 {
				acc := master.Accuracy(testX, testLabels, cfg.Test.N)
				switch {
				case acc >= cfg.TargetAccuracy && !res.Converged:
					res.Converged = true
					res.EpochsToTarget = epoch
					res.StepsToTarget = step
				case acc < cfg.TargetAccuracy && res.Converged && cfg.Sustained:
					// The crossing did not hold; keep looking.
					res.Converged = false
					res.EpochsToTarget = -1
					res.StepsToTarget = -1
				}
			}
		}
		if res.Converged && !cfg.Sustained {
			acc := master.Accuracy(testX, testLabels, cfg.Test.N)
			res.Epochs = append(res.Epochs, EpochStat{
				Epoch: epoch, Steps: step,
				TrainLoss:    lossSum / float64(stepsPerEpoch),
				TestAccuracy: acc,
			})
			res.FinalAccuracy = acc
			break
		}
		acc := master.Accuracy(testX, testLabels, cfg.Test.N)
		res.Epochs = append(res.Epochs, EpochStat{
			Epoch:        epoch,
			Steps:        step,
			TrainLoss:    lossSum / float64(stepsPerEpoch),
			TestAccuracy: acc,
		})
		res.FinalAccuracy = acc
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy && !res.Converged && !cfg.Sustained {
			res.Converged = true
			res.EpochsToTarget = epoch
			res.StepsToTarget = step
			break
		}
	}
	res.FinalParams = tensor.Clone(params)
	return res
}

// reduceStep performs one full reduction step (LocalSteps local steps on
// every worker followed by the combine) and returns the mean local train
// loss observed. red, contributions and losses are per-run scratch owned
// by Run so the steady-state loop allocates nothing in the combine phase.
func reduceStep(cfg Config, workers []*worker, params []float32, layout tensor.Layout, sharedOpt optim.Optimizer, red *adasum.Reducer, contributions [][]float32, losses []float64, step int) float64 {
	lr := cfg.Schedule.LR(step)

	runWorker := func(w *worker, wi int) {
		switch cfg.Scope {
		case PreOptimizer:
			// Accumulate mean gradient over LocalSteps microbatches.
			w.net.SetParams(params)
			tensor.Zero(w.grad)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				tensor.Axpy(1/float32(cfg.LocalSteps), w.net.Grads(), w.grad)
			}
			losses[wi] = loss / float64(cfg.LocalSteps)
		case PostOptimizer, LocalSGD:
			// Figure 3: run the optimizer locally, contribute the delta.
			w.net.SetParams(params)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				w.opt.Step(w.net.Params(), w.net.Grads(), lr)
			}
			losses[wi] = loss / float64(cfg.LocalSteps)
			tensor.Sub(w.grad, w.net.Params(), params) // effective gradient
		}
	}

	if cfg.Parallel && len(workers) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for wi, w := range workers {
			wg.Add(1)
			go func(w *worker, wi int) {
				defer wg.Done()
				sem <- struct{}{}
				runWorker(w, wi)
				<-sem
			}(w, wi)
		}
		wg.Wait()
	} else {
		for wi, w := range workers {
			runWorker(w, wi)
		}
	}

	for wi, w := range workers {
		contributions[wi] = w.grad
	}
	if cfg.Hook != nil {
		cfg.Hook(step, contributions, layout)
	}

	redLayout := layout
	if !cfg.PerLayer {
		redLayout = tensor.FlatLayout(len(params))
	}

	// The combined result lives in the Reducer's workspace; it is consumed
	// immediately by the optimizer/parameter update below.
	var combined []float32
	if cfg.Reduction == ReduceAdasum {
		combined = red.TreeReduce(contributions, redLayout)
	} else {
		combined = red.MeanReduce(contributions)
	}
	switch cfg.Scope {
	case PreOptimizer:
		sharedOpt.Step(params, combined, lr)
	case PostOptimizer, LocalSGD:
		tensor.Axpy(1, combined, params) // deltas are already negative steps
	}

	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(len(losses))
}

func nextBatch(w *worker) ([]float32, []int, int) {
	idx := w.iter.Next()
	x, labels := w.shard.Batch(idx)
	return x, labels, len(idx)
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// String renders a config compactly for experiment logs.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d local=%d %s/%s", c.Workers, c.Microbatch, c.LocalSteps, c.Reduction, c.Scope)
}
