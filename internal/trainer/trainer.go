// Package trainer is the data-parallel training harness: W simulated
// workers each compute gradients on their shard of a synthetic dataset
// and periodically combine model updates with either the synchronous-SGD
// sum/average or Adasum. It reproduces the three integration modes of
// the paper:
//
//   - PreOptimizer: the combiner runs on raw gradients before the
//     optimizer step — how Adasum replaces allreduce for Momentum-SGD;
//   - PostOptimizer (Figure 3): every worker applies its own optimizer
//     locally, the combiner runs on the resulting model deltas
//     ("effective gradients"), and the model jumps to start + combined
//     delta — required for Adam/LAMB because "the logic of optimizers
//     should only apply to the smaller minibatches per node" (§4.1);
//   - LocalSGD (§5.2): workers take several local optimizer steps
//     between reductions, trading algorithmic for system efficiency on
//     slow interconnects.
//
// The harness measures algorithmic efficiency (epochs/steps to a target
// accuracy); system efficiency comes from the simnet cost model and is
// composed with these results by the experiments package.
//
// On the cluster substrate the harness is elastic: injected stragglers
// stretch simulated step time without touching the floats, a rank
// failure is absorbed by the OnFailure policy (shrink-and-continue or
// gang-restart on the survivors — see elastic.go), and
// CheckpointEverySteps/Resume give deterministic checkpoint/restart
// whose resumed runs are bitwise-identical to uninterrupted ones.
package trainer

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/adasum"
	"repro/internal/checkpoint"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Reduction selects the gradient combiner.
type Reduction int

// Reduction values.
const (
	// ReduceSum averages worker contributions — synchronous SGD. (The
	// paper's "Sum" baselines scale the learning rate with the worker
	// count instead; express that with an optim.Scaled schedule.)
	ReduceSum Reduction = iota
	// ReduceAdasum combines worker contributions with the adaptive sum.
	ReduceAdasum
)

func (r Reduction) String() string {
	if r == ReduceAdasum {
		return "adasum"
	}
	return "sum"
}

// CommMode selects the substrate the reduction executes on — and only
// the substrate. Scheduling (Config.Overlap) and the collective
// algorithm (Config.Strategy) are orthogonal knobs; they used to be
// folded into this enum and a separate BucketAlgo.
type CommMode int

// CommMode values.
const (
	// CommHost combines contributions with the in-process adasum.Reducer
	// — no communication is simulated (the seed behaviour, and the
	// algorithmic-efficiency default).
	CommHost CommMode = iota
	// CommCluster runs the reduction as bucketed collectives on a
	// simulated cluster (workers become comm ranks) through per-rank
	// communicators. Buckets block at launch unless Config.Overlap
	// schedules them against the remaining backward compute (§4.4.3);
	// either way the results are bitwise-identical — only the simulated
	// step time differs.
	CommCluster
)

func (m CommMode) String() string {
	if m == CommCluster {
		return "cluster"
	}
	return "host"
}

// Scope selects where the reduction happens relative to the optimizer.
type Scope int

// Scope values.
const (
	// PreOptimizer reduces raw gradients, then takes one optimizer step
	// on the shared model.
	PreOptimizer Scope = iota
	// PostOptimizer runs a per-worker optimizer step and reduces the
	// model deltas (Figure 3).
	PostOptimizer
	// LocalSGD runs LocalSteps optimizer steps per worker between
	// reductions and reduces the accumulated deltas (§5.2).
	LocalSGD
)

func (s Scope) String() string {
	switch s {
	case PostOptimizer:
		return "post-opt"
	case LocalSGD:
		return "local-sgd"
	default:
		return "pre-opt"
	}
}

// Config describes one training run.
type Config struct {
	Workers    int
	Microbatch int // samples per worker per local step
	LocalSteps int // local steps (or accumulated microbatches) per reduction; default 1

	Reduction Reduction
	Scope     Scope
	PerLayer  bool // per-layer Adasum (§3.6); false = whole-gradient

	// Comm selects the reduction substrate. CommCluster requires
	// PerLayer for Adasum (bucket boundaries must not change the
	// combine's segmentation, §3.6) and accepts the knobs below.
	Comm CommMode
	// Overlap schedules each bucket's collective asynchronously against
	// the remaining backward compute (§4.4.3) — the overlapped step
	// loop. Results are bitwise-identical with and without Overlap; only
	// the simulated step time differs. CommCluster only.
	Overlap bool
	// FusionBytes is the bucket threshold of the cluster substrate
	// (<= 0 selects the 2 MB Horovod default).
	FusionBytes int
	// Net is the simnet cost model for virtual-time accounting on the
	// cluster substrate; nil simulates a free network (correctness only).
	Net *simnet.Model
	// StepSeconds is the simulated forward+backward time of one local
	// step, overlapped against communication when Overlap is set and
	// summed into Result.SimSeconds.
	StepSeconds float64
	// Strategy selects the per-bucket collective on the unified
	// collective.Strategy axis. For ReduceAdasum: StrategyTree (the
	// StrategyAuto default) is bitwise-equal to the CommHost tree,
	// StrategyRVH is the paper's Algorithm 1, and StrategyRing is
	// rejected — a ring sum would silently replace the adaptive combine.
	// For ReduceSum only StrategyRing (or Auto) is accepted.
	// CommCluster only.
	Strategy collective.Strategy
	// Compression is the unified compression knob of the cluster
	// substrate — the same field name collective.Config and
	// overlap.Options carry. A compress.Codec fixes one wire format:
	// bucket payloads are quantized at launch and every collective hop
	// carries encoded words, so the simulated clock and wire-byte meter
	// see compressed sizes (error-feedback codecs keep their residuals
	// per worker across steps). A compress.Policy picks the codec per
	// bucket launch from rank-private telemetry; its decision state
	// rides checkpoints so resumed runs stay bitwise-identical. nil or
	// compress.None() leaves the substrate bitwise-identical to the
	// uncompressed paths; compression requires CommCluster (the host
	// path has no wire to compress).
	Compression compress.Compression
	// Hierarchy, when non-empty, reduces each bucket hierarchically
	// (collective.NewHierarchy widths: e.g. {4} sums within 4-GPU nodes
	// before the cross-node combine, {4, 2} adds racks of 2 nodes). The
	// product of widths must divide Workers. CommCluster only.
	Hierarchy []int

	// OnFailure selects the reaction to a rank failure on the cluster
	// substrate — injected through Net.Faults.FailAtSeconds or a genuine
	// worker panic. The zero value FailStop re-raises the failure; the
	// elastic policies rebuild on the survivors and keep training. See
	// FailurePolicy. CommCluster only (the host reducer has no ranks to
	// lose).
	OnFailure FailurePolicy
	// CheckpointEverySteps > 0 captures a full training snapshot every n
	// reduction steps; OnCheckpoint (when set) receives each one.
	// GangRestart requires this, and keeps the latest snapshot
	// internally either way.
	CheckpointEverySteps int
	// OnCheckpoint observes each captured snapshot. The state is a deep
	// copy — the caller may serialize (checkpoint.State.Marshal) or
	// retain it freely.
	OnCheckpoint func(*checkpoint.State)
	// Resume restores the run from a snapshot before the first step:
	// parameters, every worker's optimizer state and data-iterator
	// position, error-feedback residuals and the loop bookkeeping, so
	// the resumed run is bitwise-identical to one that was never
	// interrupted. Worker count and model shape must match the capturing
	// run unless ReshapeResume permits a resize.
	Resume *checkpoint.State
	// ReshapeResume permits Resume onto a gang of a different size — the
	// serving layer's preempt-migrate path. Parameters, the shared
	// optimizer state and the loop bookkeeping restore bitwise; the data
	// shards are re-cut over the new gang with fresh iterators (the old
	// cursors index shards that no longer exist, exactly as in a
	// ShrinkContinue rebuild); per-worker optimizer state carries over
	// for the ranks present on both sides (a grown gang's extra workers
	// start from fresh clones); and only the reshape-safe source
	// error-feedback residuals are re-applied. When the sizes happen to
	// match, the restore takes the plain bitwise path. Without this
	// flag a size-mismatched Resume is rejected by Validate.
	ReshapeResume bool

	Model     func() *nn.Network // replica factory; all replicas must be identical shapes
	Optimizer optim.Optimizer    // prototype; cloned per worker (post-opt) or used directly (pre-opt)
	Schedule  optim.Schedule

	Train *data.Dataset
	Test  *data.Dataset

	MaxEpochs      int
	TargetAccuracy float64 // stop when test accuracy reaches this; 0 = run all epochs
	// EvalEverySteps, when positive, additionally evaluates the target
	// every n reduction steps, so StepsToTarget has step granularity
	// (the Table 3 iteration counts need this; epochs are too coarse).
	EvalEverySteps int
	// Sustained changes the convergence criterion: instead of stopping at
	// the first crossing, the run plays out its full budget and counts as
	// converged only if accuracy stays at or above the target from
	// StepsToTarget through the end — transient crossings of an
	// oscillating large-LR run don't count (the Table 3 baselines).
	Sustained bool
	Seed      int64

	// InitParams, when set, seeds the model with these parameters instead
	// of fresh initialization — how the two-phase BERT experiments start
	// phase 2 from the phase 1 checkpoint.
	InitParams []float32

	// Hook, when set, observes the per-worker contributions at every
	// reduction (gradients or deltas depending on Scope). Used by the
	// Figure 1 orthogonality experiment.
	Hook func(step int, contributions [][]float32, layout tensor.Layout)

	// Parallel computes worker gradients on multiple OS threads.
	Parallel bool
}

// EpochStat records one epoch of progress.
type EpochStat struct {
	Epoch        int
	Steps        int // cumulative reduction steps
	TrainLoss    float64
	TestAccuracy float64
}

// FailureEvent records one rank-failure incident an elastic run
// absorbed.
type FailureEvent struct {
	// Step is the reduction step during which the failure surfaced
	// (0-based; the step was retried on the survivors).
	Step int
	// FailedRanks are the root-cause world ranks that died (cascade
	// observers are revived and keep training).
	FailedRanks []int
	// Survivors is the worker count after the rebuild.
	Survivors int
}

// Result is the outcome of a run.
type Result struct {
	Epochs         []EpochStat
	Converged      bool
	EpochsToTarget int // first epoch (1-based) whose eval met the target; -1 if never
	StepsToTarget  int
	FinalAccuracy  float64
	StepsPerEpoch  int
	FinalParams    []float32 // trained model snapshot (phase chaining)
	// SimSeconds is the cumulative simulated wall-clock of the reduction
	// steps under Net (bucketed comm modes only; 0 for CommHost).
	SimSeconds float64
	// Failures lists the rank-failure incidents absorbed under an
	// elastic OnFailure policy, in step order.
	Failures []FailureEvent
	// FinalWorkers is the number of workers still alive at the end of
	// the run (== Workers unless failures shrank the gang).
	FinalWorkers int
}

// worker is one simulated GPU: a model replica, its data shard, its own
// batch iterator and (in post-opt modes) its own optimizer state.
type worker struct {
	net   *nn.Network
	shard *data.Dataset
	iter  *data.Iterator
	opt   optim.Optimizer
	grad  []float32 // scratch: this worker's contribution per reduction
}

// Validate checks the configuration and reports the first problem as an
// error, covering everything Run would otherwise panic on: required
// fields, substrate/knob compatibility (bucketed Adasum needs PerLayer,
// lossy codecs need a wire, strategy/reduction agreement). Callers that
// assemble configs from user input — the cmds — validate first and
// report cleanly; Run still panics on an invalid config, programmer
// error by then.
func (c Config) Validate() error {
	if c.Workers <= 0 || c.Microbatch <= 0 {
		return fmt.Errorf("Workers and Microbatch must be positive (got %d, %d)", c.Workers, c.Microbatch)
	}
	if c.Model == nil || c.Optimizer == nil || c.Schedule == nil {
		return fmt.Errorf("Model, Optimizer and Schedule are required")
	}
	if c.Train == nil || c.Test == nil {
		return fmt.Errorf("Train and Test datasets are required")
	}
	// The unified Compression knob takes a Codec or a Policy; anything
	// else is reported here by name rather than panicking deep inside
	// compress.Resolve.
	switch c.Compression.(type) {
	case nil, compress.Codec, compress.Policy:
	default:
		return fmt.Errorf("Compression must be a compress.Codec or a compress.Policy (got %T)", c.Compression)
	}
	compCodec, compPolicy := compress.Resolve(c.Compression)
	switch c.Comm {
	case CommHost:
		// Cluster-only knobs are rejected loudly: they used to be
		// silently ignored, so `-strategy rvh` without `-comm cluster`
		// trained on the host tree with no diagnostic.
		if compCodec != nil || compPolicy != nil {
			return fmt.Errorf("Compression requires Comm = CommCluster; the host path has no wire to compress")
		}
		if c.Overlap {
			return fmt.Errorf("Overlap requires Comm = CommCluster; the host path has no communication to overlap")
		}
		if c.Strategy != collective.StrategyAuto {
			return fmt.Errorf("Strategy %v requires Comm = CommCluster; the host reducer runs no bucket collectives", c.Strategy)
		}
		if c.FusionBytes != 0 {
			return fmt.Errorf("FusionBytes requires Comm = CommCluster; the host reducer does not bucket")
		}
		if c.Net != nil {
			return fmt.Errorf("Net requires Comm = CommCluster; the host path simulates no communication")
		}
		if c.StepSeconds != 0 {
			return fmt.Errorf("StepSeconds requires Comm = CommCluster; the host path keeps no virtual clock")
		}
		if len(c.Hierarchy) > 0 {
			return fmt.Errorf("Hierarchy requires Comm = CommCluster; the host reducer has no communicators to split")
		}
		if c.OnFailure != FailStop {
			return fmt.Errorf("OnFailure %v requires Comm = CommCluster; the host reducer has no ranks to lose", c.OnFailure)
		}
	case CommCluster:
		if c.Reduction == ReduceAdasum && !c.PerLayer {
			return fmt.Errorf("bucketed Adasum requires PerLayer (bucket boundaries must not change the combine's segmentation, §3.6)")
		}
		strat, err := c.bucketStrategy()
		if err != nil {
			return err
		}
		outer := c.Workers
		if len(c.Hierarchy) > 0 {
			stride := 1
			for _, w := range c.Hierarchy {
				if w <= 0 {
					return fmt.Errorf("Hierarchy widths must be positive (got %v)", c.Hierarchy)
				}
				stride *= w
			}
			if c.Workers%stride != 0 {
				return fmt.Errorf("Hierarchy widths %v do not divide Workers = %d", c.Hierarchy, c.Workers)
			}
			outer = c.Workers / stride
		}
		if strat == collective.StrategyRVH && outer&(outer-1) != 0 {
			return fmt.Errorf("StrategyRVH requires a power-of-two reduction group (got %d)", outer)
		}
		switch c.OnFailure {
		case FailStop, ShrinkContinue:
		case GangRestart:
			if c.CheckpointEverySteps <= 0 {
				return fmt.Errorf("GangRestart requires CheckpointEverySteps > 0 (there is nothing to restart from)")
			}
		default:
			return fmt.Errorf("unknown FailurePolicy %d", c.OnFailure)
		}
	default:
		return fmt.Errorf("unknown CommMode %d", c.Comm)
	}
	if c.Resume != nil && c.Resume.Workers != c.Workers && !c.ReshapeResume {
		return fmt.Errorf("Resume snapshot was captured with %d workers, config has %d (set ReshapeResume to migrate across gang sizes)", c.Resume.Workers, c.Workers)
	}
	return nil
}

// bucketStrategy resolves Config.Strategy against the reduction for the
// cluster substrate.
func (c Config) bucketStrategy() (collective.Strategy, error) {
	if c.Reduction == ReduceSum {
		switch c.Strategy {
		case collective.StrategyAuto, collective.StrategyRing:
			return collective.StrategyRing, nil
		default:
			return 0, fmt.Errorf("Strategy %v selects an Adasum bucket collective; ReduceSum buckets run StrategyRing", c.Strategy)
		}
	}
	switch c.Strategy {
	case collective.StrategyAuto, collective.StrategyTree:
		return collective.StrategyTree, nil
	case collective.StrategyRVH:
		return collective.StrategyRVH, nil
	case collective.StrategyRing:
		return 0, fmt.Errorf("Strategy %v is the ReduceSum combiner; ReduceAdasum buckets take StrategyTree or StrategyRVH", c.Strategy)
	default:
		return 0, fmt.Errorf("Strategy %v is not a bucket collective; ReduceAdasum buckets take StrategyTree or StrategyRVH", c.Strategy)
	}
}

// Run executes the configured training to completion and returns its
// history. It is Start + Step-to-exhaustion + Result; callers that need
// to interleave, preempt or observe a run mid-flight (the serving
// layer) drive the Handle directly.
func Run(cfg Config) *Result {
	h := Start(cfg)
	for h.Step() {
	}
	return h.Result()
}

// Handle is a stepwise-driven training run — the resumable run handle
// the serving layer schedules. Start validates the config, builds the
// run and applies cfg.Resume; each Step executes one reduction step
// (absorbing failures per OnFailure); Snapshot captures a full
// checkpoint at the current step boundary, which a later Start can
// Resume — on the same gang size bitwise-identically, or onto a
// different-sized gang with ReshapeResume. A Handle is not safe for
// concurrent use.
type Handle struct {
	r     *run
	total int // the run's step budget (MaxEpochs * stepsPerEpoch)
	done  bool
}

// Start builds a training run without executing any steps. It panics on
// an invalid config, like Run.
func Start(cfg Config) *Handle {
	if err := cfg.Validate(); err != nil {
		panic("trainer: " + err.Error())
	}
	if cfg.LocalSteps <= 0 {
		cfg.LocalSteps = 1
	}
	r := newRun(cfg)
	r.restoreOrInit()
	return &Handle{r: r, total: cfg.MaxEpochs * r.stepsPerEpoch}
}

// Step executes one reduction step and reports whether the run wants
// more: false means the budget is exhausted or the run converged (or
// Step was called on a finished handle — it never executes past the
// end).
func (h *Handle) Step() bool {
	if h.done || h.r.step >= h.total {
		h.done = true
		return false
	}
	r := h.r
	loss, simSec := r.elasticStep()
	r.step++
	r.lossSum += loss
	r.res.SimSeconds += simSec
	// The epoch is derived after the step completes: elasticStep may
	// have rewound r.step (GangRestart), so a value computed before it
	// would label the retried steps with the pre-rewind epoch.
	if r.afterStep((r.step-1)/r.stepsPerEpoch+1) || r.step >= h.total {
		h.done = true
	}
	return !h.done
}

// Done reports whether the run has finished (budget exhausted or
// converged).
func (h *Handle) Done() bool { return h.done || h.r.step >= h.total }

// CompletedSteps returns the number of completed reduction steps,
// including any restored from a Resume snapshot.
func (h *Handle) CompletedSteps() int { return h.r.step }

// TotalSteps returns the run's step budget.
func (h *Handle) TotalSteps() int { return h.total }

// SimSeconds returns the cumulative simulated seconds of the reduction
// steps so far (the run's local virtual timeline; it continues across
// a Snapshot/Resume migration).
func (h *Handle) SimSeconds() float64 { return h.r.res.SimSeconds }

// Workers returns the number of currently-alive workers (shrinks when
// an elastic policy absorbs failures).
func (h *Handle) Workers() int { return len(h.r.active) }

// Failures lists the rank-failure incidents absorbed so far.
func (h *Handle) Failures() []FailureEvent { return h.r.res.Failures }

// WireBytes returns the cumulative bytes shipped on the run's simulated
// fabric (0 on the host substrate).
func (h *Handle) WireBytes() int64 {
	if h.r.engine == nil {
		return 0
	}
	return h.r.engine.world.WireBytes()
}

// Snapshot captures a full checkpoint at the current step boundary —
// the preemption protocol's Marshal point. The returned state is a deep
// copy; the handle keeps running (or is dropped) independently.
func (h *Handle) Snapshot() *checkpoint.State { return h.r.snapshot() }

// Result finalizes and returns the run's outcome so far. It may be
// called on a finished or an in-flight handle; each call snapshots the
// current parameters.
func (h *Handle) Result() *Result {
	r := h.r
	r.res.FinalParams = tensor.Clone(r.params)
	r.res.FinalWorkers = len(r.active)
	return r.res
}

// run is the mutable state of one training execution: the master
// replica, the (possibly shrinking) worker gang, the reduction
// substrate and the result being accumulated. The step loop lives here;
// the elastic machinery — failure absorption, survivor rebuild,
// checkpoint capture and restore — lives in elastic.go.
type run struct {
	cfg    Config
	master *nn.Network
	layout tensor.Layout
	params []float32

	// workers is indexed by world rank and nil once a rank died; active
	// lists the alive ranks ascending. Until a failure, active is every
	// rank.
	workers []*worker
	active  []int

	sharedOpt optim.Optimizer // pre-optimizer scope state
	// red, contributions and losses are per-run scratch reused every
	// step so the steady-state combine phase allocates nothing.
	red           *adasum.Reducer
	engine        *commEngine
	contributions [][]float32 // indexed by world rank
	losses        []float64   // indexed by world rank

	testX      []float32
	testLabels []int

	res           *Result
	stepsPerEpoch int
	step          int     // completed reduction steps
	lossSum       float64 // current epoch's loss accumulator
	lastCk        *checkpoint.State
}

func newRun(cfg Config) *run {
	master := cfg.Model()
	if cfg.InitParams != nil {
		master.SetParams(cfg.InitParams)
	} else {
		master.Init(newRNG(cfg.Seed))
	}
	layout := master.Layout()
	nParams := master.NumParams()

	workers := make([]*worker, cfg.Workers)
	active := make([]int, cfg.Workers)
	for w := range workers {
		shard := cfg.Train.Shard(w, cfg.Workers)
		workers[w] = &worker{
			net:   cfg.Model(),
			shard: shard,
			iter:  data.NewIterator(shard.N, cfg.Microbatch, cfg.Seed+1000+int64(w)),
			opt:   cfg.Optimizer.Clone(),
			grad:  make([]float32, nParams),
		}
		active[w] = w
	}

	samplesPerReduce := cfg.Workers * cfg.Microbatch * cfg.LocalSteps
	stepsPerEpoch := cfg.Train.N / samplesPerReduce
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}

	r := &run{
		cfg:           cfg,
		master:        master,
		layout:        layout,
		params:        master.Params(),
		workers:       workers,
		active:        active,
		sharedOpt:     cfg.Optimizer.Clone(),
		red:           adasum.NewReducer(),
		engine:        newCommEngine(cfg, layout),
		contributions: make([][]float32, cfg.Workers),
		losses:        make([]float64, cfg.Workers),
		res:           &Result{EpochsToTarget: -1, StepsToTarget: -1, StepsPerEpoch: stepsPerEpoch},
		stepsPerEpoch: stepsPerEpoch,
	}
	r.testX, r.testLabels = cfg.Test.Batch(seq(cfg.Test.N))
	return r
}

// The step loop itself lives on Handle.Step. Epochs are bookkeeping
// over a fixed per-epoch step budget (they do not re-derive from the
// surviving worker count after a shrink), which keeps epoch numbering
// comparable across runs with and without failures, and lets
// GangRestart rewind the step counter without nested-loop gymnastics.

// afterStep runs the bookkeeping after completed step r.step —
// eval-every-steps convergence, epoch-boundary stats, checkpoint
// capture — and reports whether the run is done.
func (r *run) afterStep(epoch int) (stop bool) {
	cfg := r.cfg
	if cfg.EvalEverySteps > 0 && cfg.TargetAccuracy > 0 && r.step%cfg.EvalEverySteps == 0 {
		acc := r.master.Accuracy(r.testX, r.testLabels, cfg.Test.N)
		switch {
		case acc >= cfg.TargetAccuracy && !r.res.Converged:
			r.res.Converged = true
			r.res.EpochsToTarget = epoch
			r.res.StepsToTarget = r.step
			if !cfg.Sustained {
				// Stop at the measured crossing. The loop used to play
				// the epoch out, inflating SimSeconds and drifting
				// FinalParams past the StepsToTarget it reported.
				r.recordEpoch(epoch, acc)
				return true
			}
		case acc < cfg.TargetAccuracy && r.res.Converged && cfg.Sustained:
			// The crossing did not hold; keep looking.
			r.res.Converged = false
			r.res.EpochsToTarget = -1
			r.res.StepsToTarget = -1
		}
	}
	if r.step%r.stepsPerEpoch == 0 {
		acc := r.master.Accuracy(r.testX, r.testLabels, cfg.Test.N)
		r.recordEpoch(epoch, acc)
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy && !r.res.Converged && !cfg.Sustained {
			r.res.Converged = true
			r.res.EpochsToTarget = epoch
			r.res.StepsToTarget = r.step
			return true
		}
	}
	r.capture()
	return false
}

// recordEpoch appends the epoch's stats — TrainLoss averaged over the
// steps the epoch actually ran (a crossing stop divides by the steps to
// the crossing; a resumed run restored the partial sum) — and resets
// the loss accumulator.
func (r *run) recordEpoch(epoch int, acc float64) {
	stepsThisEpoch := r.step - (epoch-1)*r.stepsPerEpoch
	if stepsThisEpoch <= 0 {
		stepsThisEpoch = 1
	}
	r.res.Epochs = append(r.res.Epochs, EpochStat{
		Epoch:        epoch,
		Steps:        r.step,
		TrainLoss:    r.lossSum / float64(stepsThisEpoch),
		TestAccuracy: acc,
	})
	r.res.FinalAccuracy = acc
	r.lossSum = 0
}

// tryStep performs one full reduction step attempt (LocalSteps local
// steps on every active worker followed by the combine) and returns the
// mean local train loss plus the simulated step seconds. A rank failure
// on the cluster substrate comes back as the RunError with parameters
// untouched — the attempt updated nothing, so a retry on the survivors
// is clean.
func (r *run) tryStep() (loss, simSec float64, failure *comm.RunError) {
	cfg := r.cfg
	lr := cfg.Schedule.LR(r.step)

	runWorker := func(w *worker, wi int) {
		switch cfg.Scope {
		case PreOptimizer:
			// Accumulate mean gradient over LocalSteps microbatches.
			w.net.SetParams(r.params)
			tensor.Zero(w.grad)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				tensor.Axpy(1/float32(cfg.LocalSteps), w.net.Grads(), w.grad)
			}
			r.losses[wi] = loss / float64(cfg.LocalSteps)
		case PostOptimizer, LocalSGD:
			// Figure 3: run the optimizer locally, contribute the delta.
			w.net.SetParams(r.params)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				w.opt.Step(w.net.Params(), w.net.Grads(), lr)
			}
			r.losses[wi] = loss / float64(cfg.LocalSteps)
			tensor.Sub(w.grad, w.net.Params(), r.params) // effective gradient
		}
	}

	if cfg.Parallel && len(r.active) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, rank := range r.active {
			wg.Add(1)
			go func(w *worker, wi int) {
				defer wg.Done()
				sem <- struct{}{}
				runWorker(w, wi)
				<-sem
			}(r.workers[rank], rank)
		}
		wg.Wait()
	} else {
		for _, rank := range r.active {
			runWorker(r.workers[rank], rank)
		}
	}

	for _, rank := range r.active {
		r.contributions[rank] = r.workers[rank].grad
	}
	if cfg.Hook != nil {
		cfg.Hook(r.step, r.hookContributions(), r.layout)
	}

	redLayout := r.layout
	if !cfg.PerLayer {
		redLayout = tensor.FlatLayout(len(r.params))
	}

	// The combined result lives in the Reducer's workspace (host mode)
	// or overwrites the contributions in place (bucketed modes); either
	// way it is consumed immediately by the parameter update below.
	var combined []float32
	switch {
	case r.engine != nil:
		var err *comm.RunError
		simSec, err = r.engine.reduce(r.contributions, r.active, r.res.SimSeconds, r.step)
		if err != nil {
			// simSec is the aborted attempt's elapsed virtual time; the
			// caller charges it so failures are visible in SimSeconds.
			return 0, simSec, err
		}
		combined = r.contributions[r.active[0]]
	case cfg.Reduction == ReduceAdasum:
		combined = r.red.TreeReduce(r.contributions, redLayout)
	default:
		combined = r.red.MeanReduce(r.contributions)
	}
	switch cfg.Scope {
	case PreOptimizer:
		r.sharedOpt.Step(r.params, combined, lr)
	case PostOptimizer, LocalSGD:
		tensor.Axpy(1, combined, r.params) // deltas are already negative steps
	}

	var total float64
	for _, rank := range r.active {
		total += r.losses[rank]
	}
	return total / float64(len(r.active)), simSec, nil
}

// hookContributions presents the active contributions to the Hook:
// the dense world-rank slice while the gang is whole (the steady state,
// no copying), a compacted one after a shrink.
func (r *run) hookContributions() [][]float32 {
	if len(r.active) == len(r.workers) {
		return r.contributions
	}
	out := make([][]float32, 0, len(r.active))
	for _, rank := range r.active {
		out = append(out, r.contributions[rank])
	}
	return out
}

// commEngine bundles the bucketed-reduction substrate of one run: the
// simulated cluster whose ranks are the workers, plus one
// overlap.Engine per rank, all reused across steps. After a failure the
// substrate is rebuilt over the survivors (rebuild, elastic.go).
type commEngine struct {
	world   *comm.World
	engines []*overlap.Engine
	clocks  []float64 // per-rank final clocks of the last reduce
}

// newCommEngine builds the substrate for CommCluster, or returns nil
// for CommHost. The config has already been validated by Run.
func newCommEngine(cfg Config, layout tensor.Layout) *commEngine {
	if cfg.Comm == CommHost {
		return nil
	}
	strategy, err := cfg.bucketStrategy()
	if err != nil {
		panic("trainer: " + err.Error())
	}
	world := comm.NewWorld(cfg.Workers, cfg.Net)
	group := collective.WorldGroup(cfg.Workers)
	var faults *simnet.Faults
	if cfg.Net != nil {
		faults = cfg.Net.Faults
	}
	engines := make([]*overlap.Engine, cfg.Workers)
	for w := range engines {
		engines[w] = overlap.New(overlap.Options{
			Group: group, Layout: layout, FusionBytes: cfg.FusionBytes,
			Strategy: strategy, Overlap: cfg.Overlap,
			Compression: cfg.Compression,
			StepSeconds: cfg.StepSeconds,
			// Earlier local steps of an accumulated reduction cannot
			// overlap with this step's communication.
			PreSeconds: cfg.StepSeconds * float64(cfg.LocalSteps-1),
			Hierarchy:  cfg.Hierarchy,
			Faults:     faults,
		})
	}
	return &commEngine{world: world, engines: engines, clocks: make([]float64, cfg.Workers)}
}

// reduce runs one bucketed reduction over the active ranks'
// contributions — on return every active contribution holds the
// group-combined gradient — and returns the simulated step time. base
// anchors the virtual clocks at the run's cumulative simulated seconds,
// so injected fail-at deadlines fire on one continuous timeline across
// steps. A rank failure is returned, not panicked, so the caller can
// rebuild and retry.
func (ce *commEngine) reduce(contributions [][]float32, active []int, base float64, step int) (float64, *comm.RunError) {
	ce.world.SetTimeBase(base)
	// Pin the straggler-jitter axis to the trainer step: an aborted
	// attempt bumps the engines' internal counters, and a rewound or
	// resumed run replays steps, so the counter must be re-anchored per
	// attempt or the jitter sequence would drift from the uninterrupted
	// run's.
	for _, rank := range active {
		ce.engines[rank].SeekStep(step)
		ce.clocks[rank] = base
	}
	err := ce.world.RunErr(func(p *comm.Proc) {
		// Record the clock even when the step aborts: the virtual time a
		// failed attempt burned — partial buckets, failure detection — is
		// real elapsed time the run must account for.
		defer func() { ce.clocks[p.Rank()] = p.Clock() }()
		ce.engines[p.Rank()].Step(p, contributions[p.Rank()])
	})
	m := base
	for _, rank := range active {
		if c := ce.clocks[rank]; c > m {
			m = c
		}
	}
	return m - base, err
}

func nextBatch(w *worker) ([]float32, []int, int) {
	idx := w.iter.Next()
	x, labels := w.shard.Batch(idx)
	return x, labels, len(idx)
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// String renders a config compactly for experiment logs.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d local=%d %s/%s", c.Workers, c.Microbatch, c.LocalSteps, c.Reduction, c.Scope)
}
