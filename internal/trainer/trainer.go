// Package trainer is the data-parallel training harness: W simulated
// workers each compute gradients on their shard of a synthetic dataset
// and periodically combine model updates with either the synchronous-SGD
// sum/average or Adasum. It reproduces the three integration modes of
// the paper:
//
//   - PreOptimizer: the combiner runs on raw gradients before the
//     optimizer step — how Adasum replaces allreduce for Momentum-SGD;
//   - PostOptimizer (Figure 3): every worker applies its own optimizer
//     locally, the combiner runs on the resulting model deltas
//     ("effective gradients"), and the model jumps to start + combined
//     delta — required for Adam/LAMB because "the logic of optimizers
//     should only apply to the smaller minibatches per node" (§4.1);
//   - LocalSGD (§5.2): workers take several local optimizer steps
//     between reductions, trading algorithmic for system efficiency on
//     slow interconnects.
//
// The harness measures algorithmic efficiency (epochs/steps to a target
// accuracy); system efficiency comes from the simnet cost model and is
// composed with these results by the experiments package.
package trainer

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/adasum"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/overlap"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Reduction selects the gradient combiner.
type Reduction int

// Reduction values.
const (
	// ReduceSum averages worker contributions — synchronous SGD. (The
	// paper's "Sum" baselines scale the learning rate with the worker
	// count instead; express that with an optim.Scaled schedule.)
	ReduceSum Reduction = iota
	// ReduceAdasum combines worker contributions with the adaptive sum.
	ReduceAdasum
)

func (r Reduction) String() string {
	if r == ReduceAdasum {
		return "adasum"
	}
	return "sum"
}

// CommMode selects the substrate the reduction executes on — and only
// the substrate. Scheduling (Config.Overlap) and the collective
// algorithm (Config.Strategy) are orthogonal knobs; they used to be
// folded into this enum and a separate BucketAlgo.
type CommMode int

// CommMode values.
const (
	// CommHost combines contributions with the in-process adasum.Reducer
	// — no communication is simulated (the seed behaviour, and the
	// algorithmic-efficiency default).
	CommHost CommMode = iota
	// CommCluster runs the reduction as bucketed collectives on a
	// simulated cluster (workers become comm ranks) through per-rank
	// communicators. Buckets block at launch unless Config.Overlap
	// schedules them against the remaining backward compute (§4.4.3);
	// either way the results are bitwise-identical — only the simulated
	// step time differs.
	CommCluster
)

func (m CommMode) String() string {
	if m == CommCluster {
		return "cluster"
	}
	return "host"
}

// Scope selects where the reduction happens relative to the optimizer.
type Scope int

// Scope values.
const (
	// PreOptimizer reduces raw gradients, then takes one optimizer step
	// on the shared model.
	PreOptimizer Scope = iota
	// PostOptimizer runs a per-worker optimizer step and reduces the
	// model deltas (Figure 3).
	PostOptimizer
	// LocalSGD runs LocalSteps optimizer steps per worker between
	// reductions and reduces the accumulated deltas (§5.2).
	LocalSGD
)

func (s Scope) String() string {
	switch s {
	case PostOptimizer:
		return "post-opt"
	case LocalSGD:
		return "local-sgd"
	default:
		return "pre-opt"
	}
}

// Config describes one training run.
type Config struct {
	Workers    int
	Microbatch int // samples per worker per local step
	LocalSteps int // local steps (or accumulated microbatches) per reduction; default 1

	Reduction Reduction
	Scope     Scope
	PerLayer  bool // per-layer Adasum (§3.6); false = whole-gradient

	// Comm selects the reduction substrate. CommCluster requires
	// PerLayer for Adasum (bucket boundaries must not change the
	// combine's segmentation, §3.6) and accepts the knobs below.
	Comm CommMode
	// Overlap schedules each bucket's collective asynchronously against
	// the remaining backward compute (§4.4.3) — the overlapped step
	// loop. Results are bitwise-identical with and without Overlap; only
	// the simulated step time differs. CommCluster only.
	Overlap bool
	// FusionBytes is the bucket threshold of the cluster substrate
	// (<= 0 selects the 2 MB Horovod default).
	FusionBytes int
	// Net is the simnet cost model for virtual-time accounting on the
	// cluster substrate; nil simulates a free network (correctness only).
	Net *simnet.Model
	// StepSeconds is the simulated forward+backward time of one local
	// step, overlapped against communication when Overlap is set and
	// summed into Result.SimSeconds.
	StepSeconds float64
	// Strategy selects the per-bucket collective on the unified
	// collective.Strategy axis. For ReduceAdasum: StrategyTree (the
	// StrategyAuto default) is bitwise-equal to the CommHost tree,
	// StrategyRVH is the paper's Algorithm 1, and StrategyRing is
	// rejected — a ring sum would silently replace the adaptive combine.
	// For ReduceSum only StrategyRing (or Auto) is accepted.
	// CommCluster only.
	Strategy collective.Strategy
	// Compression selects the wire codec of the cluster substrate:
	// bucket payloads are quantized at launch and every collective hop
	// carries encoded words, so the simulated clock and wire-byte meter
	// see compressed sizes (error-feedback codecs keep their residuals
	// per worker across steps). nil or compress.None() leaves the
	// substrate bitwise-identical to the uncompressed paths; a lossy
	// codec requires CommCluster (the host path has no wire to
	// compress).
	Compression compress.Codec

	Model     func() *nn.Network // replica factory; all replicas must be identical shapes
	Optimizer optim.Optimizer    // prototype; cloned per worker (post-opt) or used directly (pre-opt)
	Schedule  optim.Schedule

	Train *data.Dataset
	Test  *data.Dataset

	MaxEpochs      int
	TargetAccuracy float64 // stop when test accuracy reaches this; 0 = run all epochs
	// EvalEverySteps, when positive, additionally evaluates the target
	// every n reduction steps, so StepsToTarget has step granularity
	// (the Table 3 iteration counts need this; epochs are too coarse).
	EvalEverySteps int
	// Sustained changes the convergence criterion: instead of stopping at
	// the first crossing, the run plays out its full budget and counts as
	// converged only if accuracy stays at or above the target from
	// StepsToTarget through the end — transient crossings of an
	// oscillating large-LR run don't count (the Table 3 baselines).
	Sustained bool
	Seed      int64

	// InitParams, when set, seeds the model with these parameters instead
	// of fresh initialization — how the two-phase BERT experiments start
	// phase 2 from the phase 1 checkpoint.
	InitParams []float32

	// Hook, when set, observes the per-worker contributions at every
	// reduction (gradients or deltas depending on Scope). Used by the
	// Figure 1 orthogonality experiment.
	Hook func(step int, contributions [][]float32, layout tensor.Layout)

	// Parallel computes worker gradients on multiple OS threads.
	Parallel bool
}

// EpochStat records one epoch of progress.
type EpochStat struct {
	Epoch        int
	Steps        int // cumulative reduction steps
	TrainLoss    float64
	TestAccuracy float64
}

// Result is the outcome of a run.
type Result struct {
	Epochs         []EpochStat
	Converged      bool
	EpochsToTarget int // first epoch (1-based) whose eval met the target; -1 if never
	StepsToTarget  int
	FinalAccuracy  float64
	StepsPerEpoch  int
	FinalParams    []float32 // trained model snapshot (phase chaining)
	// SimSeconds is the cumulative simulated wall-clock of the reduction
	// steps under Net (bucketed comm modes only; 0 for CommHost).
	SimSeconds float64
}

// worker is one simulated GPU: a model replica, its data shard, its own
// batch iterator and (in post-opt modes) its own optimizer state.
type worker struct {
	net   *nn.Network
	shard *data.Dataset
	iter  *data.Iterator
	opt   optim.Optimizer
	grad  []float32 // scratch: this worker's contribution per reduction
}

// Validate checks the configuration and reports the first problem as an
// error, covering everything Run would otherwise panic on: required
// fields, substrate/knob compatibility (bucketed Adasum needs PerLayer,
// lossy codecs need a wire, strategy/reduction agreement). Callers that
// assemble configs from user input — the cmds — validate first and
// report cleanly; Run still panics on an invalid config, programmer
// error by then.
func (c Config) Validate() error {
	if c.Workers <= 0 || c.Microbatch <= 0 {
		return fmt.Errorf("Workers and Microbatch must be positive (got %d, %d)", c.Workers, c.Microbatch)
	}
	if c.Model == nil || c.Optimizer == nil || c.Schedule == nil {
		return fmt.Errorf("Model, Optimizer and Schedule are required")
	}
	if c.Train == nil || c.Test == nil {
		return fmt.Errorf("Train and Test datasets are required")
	}
	switch c.Comm {
	case CommHost:
		if !compress.IsNone(c.Compression) {
			return fmt.Errorf("Compression requires Comm = CommCluster; the host path has no wire to compress")
		}
		if c.Overlap {
			return fmt.Errorf("Overlap requires Comm = CommCluster; the host path has no communication to overlap")
		}
	case CommCluster:
		if c.Reduction == ReduceAdasum && !c.PerLayer {
			return fmt.Errorf("bucketed Adasum requires PerLayer (bucket boundaries must not change the combine's segmentation, §3.6)")
		}
		if _, err := c.bucketStrategy(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown CommMode %d", c.Comm)
	}
	return nil
}

// bucketStrategy resolves Config.Strategy against the reduction for the
// cluster substrate.
func (c Config) bucketStrategy() (collective.Strategy, error) {
	if c.Reduction == ReduceSum {
		switch c.Strategy {
		case collective.StrategyAuto, collective.StrategyRing:
			return collective.StrategyRing, nil
		default:
			return 0, fmt.Errorf("Strategy %v selects an Adasum bucket collective; ReduceSum buckets run StrategyRing", c.Strategy)
		}
	}
	switch c.Strategy {
	case collective.StrategyAuto, collective.StrategyTree:
		return collective.StrategyTree, nil
	case collective.StrategyRVH:
		return collective.StrategyRVH, nil
	case collective.StrategyRing:
		return 0, fmt.Errorf("Strategy %v is the ReduceSum combiner; ReduceAdasum buckets take StrategyTree or StrategyRVH", c.Strategy)
	default:
		return 0, fmt.Errorf("Strategy %v is not a bucket collective; ReduceAdasum buckets take StrategyTree or StrategyRVH", c.Strategy)
	}
}

// Run executes the configured training and returns its history.
func Run(cfg Config) *Result {
	if err := cfg.Validate(); err != nil {
		panic("trainer: " + err.Error())
	}
	if cfg.LocalSteps <= 0 {
		cfg.LocalSteps = 1
	}

	master := cfg.Model()
	if cfg.InitParams != nil {
		master.SetParams(cfg.InitParams)
	} else {
		master.Init(newRNG(cfg.Seed))
	}
	layout := master.Layout()
	params := master.Params()
	nParams := master.NumParams()

	workers := make([]*worker, cfg.Workers)
	for w := range workers {
		shard := cfg.Train.Shard(w, cfg.Workers)
		workers[w] = &worker{
			net:   cfg.Model(),
			shard: shard,
			iter:  data.NewIterator(shard.N, cfg.Microbatch, cfg.Seed+1000+int64(w)),
			opt:   cfg.Optimizer.Clone(),
			grad:  make([]float32, nParams),
		}
	}
	sharedOpt := cfg.Optimizer.Clone() // pre-optimizer scope state

	samplesPerReduce := cfg.Workers * cfg.Microbatch * cfg.LocalSteps
	stepsPerEpoch := cfg.Train.N / samplesPerReduce
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}

	// One reduction workspace serves every step: the combiner reuses its
	// scratch instead of allocating per reduction.
	red := adasum.NewReducer()
	engine := newCommEngine(cfg, layout)
	contributions := make([][]float32, len(workers))
	losses := make([]float64, len(workers))

	res := &Result{EpochsToTarget: -1, StepsToTarget: -1, StepsPerEpoch: stepsPerEpoch}
	testX, testLabels := cfg.Test.Batch(seq(cfg.Test.N))

	step := 0
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		var lossSum float64
		for s := 0; s < stepsPerEpoch; s++ {
			loss, simSec := reduceStep(cfg, workers, params, layout, sharedOpt, red, engine, contributions, losses, step)
			lossSum += loss
			res.SimSeconds += simSec
			step++
			if cfg.EvalEverySteps > 0 && cfg.TargetAccuracy > 0 &&
				step%cfg.EvalEverySteps == 0 {
				acc := master.Accuracy(testX, testLabels, cfg.Test.N)
				switch {
				case acc >= cfg.TargetAccuracy && !res.Converged:
					res.Converged = true
					res.EpochsToTarget = epoch
					res.StepsToTarget = step
				case acc < cfg.TargetAccuracy && res.Converged && cfg.Sustained:
					// The crossing did not hold; keep looking.
					res.Converged = false
					res.EpochsToTarget = -1
					res.StepsToTarget = -1
				}
			}
		}
		if res.Converged && !cfg.Sustained {
			acc := master.Accuracy(testX, testLabels, cfg.Test.N)
			res.Epochs = append(res.Epochs, EpochStat{
				Epoch: epoch, Steps: step,
				TrainLoss:    lossSum / float64(stepsPerEpoch),
				TestAccuracy: acc,
			})
			res.FinalAccuracy = acc
			break
		}
		acc := master.Accuracy(testX, testLabels, cfg.Test.N)
		res.Epochs = append(res.Epochs, EpochStat{
			Epoch:        epoch,
			Steps:        step,
			TrainLoss:    lossSum / float64(stepsPerEpoch),
			TestAccuracy: acc,
		})
		res.FinalAccuracy = acc
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy && !res.Converged && !cfg.Sustained {
			res.Converged = true
			res.EpochsToTarget = epoch
			res.StepsToTarget = step
			break
		}
	}
	res.FinalParams = tensor.Clone(params)
	return res
}

// commEngine bundles the bucketed-reduction substrate of one run: the
// simulated cluster whose ranks are the workers, plus one overlap.Engine
// per rank, all reused across steps.
type commEngine struct {
	world   *comm.World
	engines []*overlap.Engine
}

// newCommEngine builds the substrate for CommCluster, or returns nil
// for CommHost. The config has already been validated by Run.
func newCommEngine(cfg Config, layout tensor.Layout) *commEngine {
	if cfg.Comm == CommHost {
		return nil
	}
	strategy, err := cfg.bucketStrategy()
	if err != nil {
		panic("trainer: " + err.Error())
	}
	world := comm.NewWorld(cfg.Workers, cfg.Net)
	group := collective.WorldGroup(cfg.Workers)
	engines := make([]*overlap.Engine, cfg.Workers)
	for w := range engines {
		engines[w] = overlap.New(overlap.Options{
			Group: group, Layout: layout, FusionBytes: cfg.FusionBytes,
			Strategy: strategy, Overlap: cfg.Overlap,
			Compression: cfg.Compression,
			StepSeconds: cfg.StepSeconds,
			// Earlier local steps of an accumulated reduction cannot
			// overlap with this step's communication.
			PreSeconds: cfg.StepSeconds * float64(cfg.LocalSteps-1),
		})
	}
	return &commEngine{world: world, engines: engines}
}

// reduce runs one bucketed reduction over the contributions — on return
// every contribution holds the group-combined gradient — and returns the
// simulated step time.
func (ce *commEngine) reduce(contributions [][]float32) float64 {
	return comm.MaxClock(ce.world, func(p *comm.Proc) {
		ce.engines[p.Rank()].Step(p, contributions[p.Rank()])
	})
}

// reduceStep performs one full reduction step (LocalSteps local steps on
// every worker followed by the combine) and returns the mean local train
// loss observed plus the simulated step seconds (bucketed modes only).
// red, contributions and losses are per-run scratch owned by Run so the
// steady-state loop allocates nothing in the combine phase.
func reduceStep(cfg Config, workers []*worker, params []float32, layout tensor.Layout, sharedOpt optim.Optimizer, red *adasum.Reducer, engine *commEngine, contributions [][]float32, losses []float64, step int) (loss, simSec float64) {
	lr := cfg.Schedule.LR(step)

	runWorker := func(w *worker, wi int) {
		switch cfg.Scope {
		case PreOptimizer:
			// Accumulate mean gradient over LocalSteps microbatches.
			w.net.SetParams(params)
			tensor.Zero(w.grad)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				tensor.Axpy(1/float32(cfg.LocalSteps), w.net.Grads(), w.grad)
			}
			losses[wi] = loss / float64(cfg.LocalSteps)
		case PostOptimizer, LocalSGD:
			// Figure 3: run the optimizer locally, contribute the delta.
			w.net.SetParams(params)
			var loss float64
			for ls := 0; ls < cfg.LocalSteps; ls++ {
				x, labels, b := nextBatch(w)
				loss += w.net.Gradient(x, labels, b)
				w.opt.Step(w.net.Params(), w.net.Grads(), lr)
			}
			losses[wi] = loss / float64(cfg.LocalSteps)
			tensor.Sub(w.grad, w.net.Params(), params) // effective gradient
		}
	}

	if cfg.Parallel && len(workers) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for wi, w := range workers {
			wg.Add(1)
			go func(w *worker, wi int) {
				defer wg.Done()
				sem <- struct{}{}
				runWorker(w, wi)
				<-sem
			}(w, wi)
		}
		wg.Wait()
	} else {
		for wi, w := range workers {
			runWorker(w, wi)
		}
	}

	for wi, w := range workers {
		contributions[wi] = w.grad
	}
	if cfg.Hook != nil {
		cfg.Hook(step, contributions, layout)
	}

	redLayout := layout
	if !cfg.PerLayer {
		redLayout = tensor.FlatLayout(len(params))
	}

	// The combined result lives in the Reducer's workspace (host mode) or
	// overwrites the contributions in place (bucketed modes); either way
	// it is consumed immediately by the optimizer/parameter update below.
	var combined []float32
	switch {
	case engine != nil:
		simSec = engine.reduce(contributions)
		combined = contributions[0]
	case cfg.Reduction == ReduceAdasum:
		combined = red.TreeReduce(contributions, redLayout)
	default:
		combined = red.MeanReduce(contributions)
	}
	switch cfg.Scope {
	case PreOptimizer:
		sharedOpt.Step(params, combined, lr)
	case PostOptimizer, LocalSGD:
		tensor.Axpy(1, combined, params) // deltas are already negative steps
	}

	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(len(losses)), simSec
}

func nextBatch(w *worker) ([]float32, []int, int) {
	idx := w.iter.Next()
	x, labels := w.shard.Batch(idx)
	return x, labels, len(idx)
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// String renders a config compactly for experiment logs.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d local=%d %s/%s", c.Workers, c.Microbatch, c.LocalSteps, c.Reduction, c.Scope)
}
