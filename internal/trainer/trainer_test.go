package trainer

import (
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

func smallData(seed int64) (*data.Dataset, *data.Dataset) {
	return data.GeneratePair(data.Config{
		N: 512, Dim: 16, Classes: 4, Noise: 0.8, Seed: seed,
	}, 256)
}

func mlpFactory() func() *nn.Network {
	return func() *nn.Network { return nn.NewMLP(16, 32, 4) }
}

func baseConfig(train, test *data.Dataset) Config {
	return Config{
		Workers:    4,
		Microbatch: 8,
		Model:      mlpFactory(),
		Optimizer:  optim.NewSGD(),
		Schedule:   optim.Constant{Base: 0.5},
		Train:      train,
		Test:       test,
		MaxEpochs:  8,
		Seed:       1,
	}
}

func TestSumTrainingConverges(t *testing.T) {
	train, test := smallData(1)
	cfg := baseConfig(train, test)
	cfg.Reduction = ReduceSum
	res := Run(cfg)
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("sum training accuracy = %v", res.FinalAccuracy)
	}
}

func TestAdasumTrainingConverges(t *testing.T) {
	train, test := smallData(1)
	cfg := baseConfig(train, test)
	cfg.Reduction = ReduceAdasum
	cfg.PerLayer = true
	res := Run(cfg)
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("adasum training accuracy = %v", res.FinalAccuracy)
	}
}

func TestPostOptimizerAdamConverges(t *testing.T) {
	train, test := smallData(2)
	cfg := baseConfig(train, test)
	cfg.Reduction = ReduceAdasum
	cfg.Scope = PostOptimizer
	cfg.Optimizer = optim.NewAdam()
	cfg.Schedule = optim.Constant{Base: 0.01}
	res := Run(cfg)
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("post-opt adam accuracy = %v", res.FinalAccuracy)
	}
}

func TestLocalSGDConverges(t *testing.T) {
	train, test := smallData(3)
	cfg := baseConfig(train, test)
	cfg.Scope = LocalSGD
	cfg.LocalSteps = 4
	cfg.Reduction = ReduceAdasum
	cfg.Schedule = optim.Constant{Base: 0.2}
	res := Run(cfg)
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("local-sgd accuracy = %v", res.FinalAccuracy)
	}
}

func TestDeterminism(t *testing.T) {
	train, test := smallData(4)
	cfg := baseConfig(train, test)
	cfg.Reduction = ReduceAdasum
	cfg.MaxEpochs = 2
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatal("epoch counts differ")
	}
	for i := range a.Epochs {
		if a.Epochs[i].TestAccuracy != b.Epochs[i].TestAccuracy ||
			a.Epochs[i].TrainLoss != b.Epochs[i].TrainLoss {
			t.Fatalf("run not deterministic at epoch %d: %+v vs %+v", i, a.Epochs[i], b.Epochs[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	train, test := smallData(5)
	cfg := baseConfig(train, test)
	cfg.Reduction = ReduceAdasum
	cfg.MaxEpochs = 2
	serial := Run(cfg)
	cfg.Parallel = true
	par := Run(cfg)
	for i := range serial.Epochs {
		// Gradient computation per worker is independent, so parallel
		// and serial runs must agree exactly.
		if serial.Epochs[i].TestAccuracy != par.Epochs[i].TestAccuracy {
			t.Fatalf("parallel run diverged at epoch %d", i)
		}
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	train, test := smallData(6)
	cfg := baseConfig(train, test)
	cfg.TargetAccuracy = 0.5 // trivially reachable
	res := Run(cfg)
	if !res.Converged {
		t.Fatal("did not record convergence")
	}
	if res.EpochsToTarget <= 0 || res.EpochsToTarget > cfg.MaxEpochs {
		t.Fatalf("EpochsToTarget = %d", res.EpochsToTarget)
	}
	if len(res.Epochs) != res.EpochsToTarget {
		t.Fatalf("ran %d epochs after converging at %d", len(res.Epochs), res.EpochsToTarget)
	}
}

func TestUnreachableTarget(t *testing.T) {
	train, test := smallData(7)
	cfg := baseConfig(train, test)
	cfg.MaxEpochs = 2
	cfg.TargetAccuracy = 1.1 // impossible
	res := Run(cfg)
	if res.Converged || res.EpochsToTarget != -1 {
		t.Fatal("claimed convergence on impossible target")
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("ran %d epochs, want 2", len(res.Epochs))
	}
}

func TestHookObservesWorkerContributions(t *testing.T) {
	train, test := smallData(8)
	cfg := baseConfig(train, test)
	cfg.MaxEpochs = 1
	calls := 0
	cfg.Hook = func(step int, contributions [][]float32, layout tensor.Layout) {
		calls++
		if len(contributions) != cfg.Workers {
			t.Fatalf("hook saw %d contributions", len(contributions))
		}
		if layout.TotalSize() != len(contributions[0]) {
			t.Fatal("hook layout does not match contribution size")
		}
	}
	res := Run(cfg)
	if calls != res.StepsPerEpoch {
		t.Fatalf("hook called %d times, want %d", calls, res.StepsPerEpoch)
	}
}

func TestStepsPerEpochAccounting(t *testing.T) {
	train, test := smallData(9)
	cfg := baseConfig(train, test)
	cfg.Workers = 4
	cfg.Microbatch = 8
	cfg.LocalSteps = 2
	// 512 samples / (4*8*2) = 8 reduction steps per epoch.
	res := Run(cfg)
	if res.StepsPerEpoch != 8 {
		t.Fatalf("StepsPerEpoch = %d, want 8", res.StepsPerEpoch)
	}
}

func TestScaledLRSumDivergesWhereAdasumSurvives(t *testing.T) {
	// The paper's central algorithmic claim (Figure 6 in miniature): at
	// high worker counts with the linearly scaled learning rate, Sum
	// destabilizes while Adasum — same base schedule, no tuning — still
	// converges. Microbatches must be large enough that worker gradients
	// share a dominant direction early (the paper uses 32), otherwise
	// noise-dominated gradients look orthogonal to every combiner.
	train, test := data.GeneratePair(data.Config{
		N: 4096, Dim: 16, Classes: 4, Noise: 0.8, Seed: 10,
	}, 512)
	workers := 16
	base := 0.9 // aggressive sequential rate

	sumCfg := baseConfig(train, test)
	sumCfg.Workers = workers
	sumCfg.Microbatch = 32
	sumCfg.MaxEpochs = 6
	sumCfg.Reduction = ReduceSum
	sumCfg.Schedule = optim.Scaled{Inner: optim.Constant{Base: base}, Factor: float64(workers)}
	sumRes := Run(sumCfg)

	adaCfg := baseConfig(train, test)
	adaCfg.Workers = workers
	adaCfg.Microbatch = 32
	adaCfg.MaxEpochs = 6
	adaCfg.Reduction = ReduceAdasum
	adaCfg.PerLayer = true
	adaCfg.Schedule = optim.Constant{Base: base}
	adaRes := Run(adaCfg)

	if adaRes.FinalAccuracy < 0.9 {
		t.Fatalf("adasum failed to converge: %v", adaRes.FinalAccuracy)
	}
	if sumRes.FinalAccuracy >= 0.9 {
		t.Fatalf("scaled-LR sum unexpectedly converged: %v", sumRes.FinalAccuracy)
	}
}
