package trainer

import (
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
)

// fakeCompression satisfies the Compression interface without being a
// Codec or a Policy — Validate must reject it before Resolve panics.
type fakeCompression struct{}

func (fakeCompression) String() string { return "bogus" }

// TestConfigValidate exercises the error paths that used to be
// scattered panics: each invalid configuration comes back as a
// descriptive error from Validate (so cmds can report it cleanly)
// while a valid one passes.
func TestConfigValidate(t *testing.T) {
	valid := overlapCfg(4, CommCluster, true)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid cluster config rejected: %v", err)
	}
	hostValid := overlapCfg(4, CommHost, false)
	if err := hostValid.Validate(); err != nil {
		t.Fatalf("valid host config rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no workers", func(c *Config) { c.Workers = 0 }, "Workers"},
		{"no model", func(c *Config) { c.Model = nil }, "required"},
		{"no data", func(c *Config) { c.Train = nil }, "datasets"},
		{"host compression", func(c *Config) {
			c.Comm = CommHost
			c.Overlap = false
			c.Compression = compress.FP16()
		}, "no wire"},
		{"host adaptive compression", func(c *Config) {
			c.Comm = CommHost
			c.Overlap = false
			c.Compression = compress.Adaptive()
		}, "no wire"},
		{"foreign compression type", func(c *Config) {
			c.Compression = fakeCompression{}
		}, "Codec or a compress.Policy"},
		{"host overlap", func(c *Config) {
			c.Comm = CommHost
			c.Overlap = true
		}, "no communication to overlap"},
		{"whole-gradient bucketed adasum", func(c *Config) { c.PerLayer = false }, "PerLayer"},
		{"adasum over ring", func(c *Config) { c.Strategy = collective.StrategyRing }, "ReduceSum combiner"},
		{"sum over rvh", func(c *Config) {
			c.Reduction = ReduceSum
			c.Strategy = collective.StrategyRVH
		}, "StrategyRing"},
	}
	for _, tc := range cases {
		cfg := overlapCfg(4, CommCluster, true)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted an invalid config", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
