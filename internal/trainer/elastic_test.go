package trainer

import (
	"strings"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// elasticCfg is a 16-worker cluster setup on the racked TCP fabric —
// the acceptance scenario: lose a rank mid-epoch, rebuild on survivors,
// keep converging.
func elasticCfg(workers int) Config {
	train, test := data.GeneratePair(data.Config{
		N: 2048, Dim: 64, Classes: 5, Noise: 0.6, Seed: 41,
	}, 256)
	return Config{
		Workers:     workers,
		Microbatch:  8,
		Reduction:   ReduceAdasum,
		Scope:       PostOptimizer,
		PerLayer:    true,
		Comm:        CommCluster,
		Overlap:     true,
		Strategy:    collective.StrategyRVH,
		FusionBytes: 4096,
		Net:         simnet.TCP40Racked(workers, 2),
		StepSeconds: 1e-3,
		Model:       func() *nn.Network { return nn.NewMLP(64, 16, 5) },
		Optimizer:   optim.NewAdam(),
		Schedule:    optim.Constant{Base: 0.002},
		Train:       train, Test: test,
		MaxEpochs: 4,
		Seed:      43,
	}
}

// TestElasticShrinkSurvivesRankLoss16 is the acceptance scenario: a
// 16-rank run loses a rank mid-epoch (injected at a virtual-time
// deadline), rebuilds on the 15 survivors — a non-power-of-two group,
// so the RVH buckets fall back to the parity tree — re-shards the data,
// and still converges. The watchdog turns a regression into the old
// deadlock into a clean failure.
func TestElasticShrinkSurvivesRankLoss16(t *testing.T) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			panic("trainer: elastic run wedged")
		}
	}()
	defer close(done)

	cfg := elasticCfg(16)
	cfg.OnFailure = ShrinkContinue
	// Kill rank 5 a few simulated steps in (each step costs at least
	// StepSeconds of backward compute).
	cfg.Net.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{5: 12e-3}}
	res := Run(cfg)

	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one", res.Failures)
	}
	ev := res.Failures[0]
	if len(ev.FailedRanks) != 1 || ev.FailedRanks[0] != 5 {
		t.Fatalf("failed ranks = %v, want [5]", ev.FailedRanks)
	}
	if ev.Survivors != 15 || res.FinalWorkers != 15 {
		t.Fatalf("survivors = %d / final %d, want 15", ev.Survivors, res.FinalWorkers)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("shrunk run failed to keep converging: accuracy %v", res.FinalAccuracy)
	}
	// The loss of a worker must not lose the epoch accounting.
	if len(res.Epochs) != cfg.MaxEpochs {
		t.Fatalf("epochs recorded = %d, want %d", len(res.Epochs), cfg.MaxEpochs)
	}
}

// TestElasticFailStopReRaisesWithRankContext: without an elastic
// policy, an injected failure must surface as the comm layer's
// aggregated panic, naming the dead rank — fast, not as a hang.
func TestElasticFailStopReRaisesWithRankContext(t *testing.T) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			panic("trainer: fail-stop run wedged instead of failing")
		}
	}()
	defer close(done)

	cfg := elasticCfg(8)
	cfg.Net = simnet.TCP40Racked(8, 2)
	cfg.Net.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{3: 5e-3}}
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected the failure to re-raise under FailStop")
		}
		msg, ok := e.(error)
		if !ok || !strings.Contains(msg.Error(), "rank 3") {
			t.Fatalf("panic %v does not attribute rank 3", e)
		}
	}()
	Run(cfg)
}

// TestGangRestartRewindsToCheckpoint: under GangRestart the run rewinds
// to the last snapshot on failure and replays on the survivors; the run
// must complete with the shrunk gang and intact epoch accounting.
func TestGangRestartRewindsToCheckpoint(t *testing.T) {
	cfg := elasticCfg(8)
	cfg.Net = simnet.TCP40Racked(8, 2)
	cfg.OnFailure = GangRestart
	cfg.CheckpointEverySteps = 4
	cfg.Net.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{2: 15e-3}}
	res := Run(cfg)
	if len(res.Failures) != 1 || res.FinalWorkers != 7 {
		t.Fatalf("failures %v / final workers %d, want one failure and 7 survivors", res.Failures, res.FinalWorkers)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("gang-restarted run failed to keep converging: %v", res.FinalAccuracy)
	}
	if len(res.Epochs) != cfg.MaxEpochs {
		t.Fatalf("epochs recorded = %d, want %d (rewind must not duplicate or drop epochs)", len(res.Epochs), cfg.MaxEpochs)
	}
	for i := 1; i < len(res.Epochs); i++ {
		if res.Epochs[i].Epoch != res.Epochs[i-1].Epoch+1 {
			t.Fatalf("epoch sequence corrupted by the rewind: %+v", res.Epochs)
		}
	}
}

// TestStragglerStretchesSimTime: a skewed rank must make the simulated
// run slower without changing the result (compute skew moves clocks,
// never floats).
func TestStragglerStretchesSimTime(t *testing.T) {
	base := elasticCfg(8)
	base.Net = simnet.TCP40Racked(8, 2)
	skewed := elasticCfg(8)
	skewed.Net = simnet.TCP40Racked(8, 2)
	skewed.Net.Faults = &simnet.Faults{
		SkewFactors: []float64{1, 1, 1, 1, 1, 1, 1, 2.5},
		Jitter:      0.05, JitterSeed: 9,
	}
	b := Run(base)
	s := Run(skewed)
	if s.SimSeconds <= b.SimSeconds*1.3 {
		t.Fatalf("2.5x straggler barely moved the run: %v -> %v", b.SimSeconds, s.SimSeconds)
	}
	for i, v := range b.FinalParams {
		if s.FinalParams[i] != v {
			t.Fatal("compute skew changed the trained parameters")
		}
	}
}

// TestCrossingStopsAtStepGranularity is the regression test for the
// trainer.Run convergence bug: with EvalEverySteps and Sustained=false,
// the run must stop at the step where the crossing was measured, not
// play out the epoch — StepsToTarget, the recorded epoch tail and the
// executed step count must all agree mid-epoch.
func TestCrossingStopsAtStepGranularity(t *testing.T) {
	train, test := data.GeneratePair(data.Config{
		N: 1024, Dim: 24, Classes: 3, Noise: 0.4, Seed: 71,
	}, 256)
	steps := 0
	cfg := Config{
		Workers:    4,
		Microbatch: 8,
		Reduction:  ReduceAdasum,
		PerLayer:   true,
		Model:      func() *nn.Network { return nn.NewMLP(24, 12, 3) },
		Optimizer:  optim.NewMomentum(0.9),
		Schedule:   optim.Constant{Base: 0.1},
		Train:      train, Test: test,
		MaxEpochs:      20,
		TargetAccuracy: 0.95,
		EvalEverySteps: 1,
		Seed:           73,
		Hook: func(step int, _ [][]float32, _ tensor.Layout) {
			steps = step + 1
		},
	}
	res := Run(cfg)
	if !res.Converged {
		t.Fatal("run never crossed the target; test needs an easier target")
	}
	if res.StepsToTarget%res.StepsPerEpoch == 0 {
		t.Skipf("crossing landed on an epoch boundary (steps %d); mid-epoch case not exercised", res.StepsToTarget)
	}
	if steps != res.StepsToTarget {
		t.Fatalf("executed %d steps but reported the crossing at %d — the loop ran past the measured crossing", steps, res.StepsToTarget)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Steps != res.StepsToTarget {
		t.Fatalf("last epoch stat at step %d, crossing at %d", last.Steps, res.StepsToTarget)
	}
}

// TestValidateRejectsClusterKnobsOnHost is the regression test for the
// silent-ignore bug: every cluster-only knob set together with CommHost
// must come back as a Validate error naming CommCluster (the exact
// failure mode was `-strategy rvh` without `-comm cluster` silently
// training on the host tree).
func TestValidateRejectsClusterKnobsOnHost(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"strategy", func(c *Config) { c.Strategy = collective.StrategyRVH }},
		{"fusion bytes", func(c *Config) { c.FusionBytes = 2048 }},
		{"net", func(c *Config) { c.Net = simnet.TCP40(4) }},
		{"step seconds", func(c *Config) { c.StepSeconds = 1e-3 }},
		{"hierarchy", func(c *Config) { c.Hierarchy = []int{2} }},
		{"failure policy", func(c *Config) { c.OnFailure = ShrinkContinue }},
	}
	for _, tc := range cases {
		cfg := overlapCfg(4, CommHost, false)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: cluster-only knob accepted under CommHost", tc.name)
		}
		if !strings.Contains(err.Error(), "CommCluster") {
			t.Fatalf("%s: error %q does not point at CommCluster", tc.name, err)
		}
	}
}

// TestValidateElasticKnobs covers the elastic-specific validation:
// gang restart needs a checkpoint cadence, hierarchy widths must divide
// the workers, and a resume snapshot must match the worker count.
func TestValidateElasticKnobs(t *testing.T) {
	cfg := elasticCfg(8)
	cfg.Net = simnet.TCP40Racked(8, 2)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid elastic config rejected: %v", err)
	}

	gr := cfg
	gr.OnFailure = GangRestart
	if err := gr.Validate(); err == nil || !strings.Contains(err.Error(), "CheckpointEverySteps") {
		t.Fatalf("GangRestart without checkpoints: %v", err)
	}
	gr.CheckpointEverySteps = 5
	if err := gr.Validate(); err != nil {
		t.Fatalf("valid GangRestart config rejected: %v", err)
	}

	h := cfg
	h.Hierarchy = []int{3}
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Fatalf("indivisible hierarchy: %v", err)
	}
	h.Hierarchy = []int{4}
	if err := h.Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
}

// TestElasticShrinkWithErrorFeedbackCodec: a shrink-and-continue run
// under top-k with error feedback must survive the failure with its
// EF state rolled back to the pre-attempt snapshot (an aborted attempt
// already quantized buckets against the residuals) and keep converging
// on the survivors.
func TestElasticShrinkWithErrorFeedbackCodec(t *testing.T) {
	cfg := elasticCfg(8)
	cfg.Net = simnet.TCP40Racked(8, 2)
	cfg.OnFailure = ShrinkContinue
	cfg.Compression = compress.TopK(0.25, true)
	cfg.Net.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{6: 20e-3}}
	res := Run(cfg)
	if len(res.Failures) != 1 || res.FinalWorkers != 7 {
		t.Fatalf("failures %v / final workers %d, want one failure and 7 survivors", res.Failures, res.FinalWorkers)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("EF shrink run lost convergence: %v", res.FinalAccuracy)
	}
}

// TestFailureChargesSimTime: an aborted reduction attempt must report
// the virtual time it burned (partial buckets, failure detection) so
// the trainer charges it to SimSeconds instead of pretending the
// attempt never ran. Pinned at the commEngine level, where the charge
// is computed.
func TestFailureChargesSimTime(t *testing.T) {
	cfg := elasticCfg(8)
	cfg.Net = simnet.TCP40Racked(8, 2)
	// The rank dies 0.5 simulated ms into the attempt (mid backward
	// walk), so the attempt's elapsed time must come back ≥ that.
	cfg.Net.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{3: 0.5e-3}}
	cfg.LocalSteps = 1 // Run's default; this test drives the engine directly
	master := cfg.Model()
	master.Init(newRNG(cfg.Seed))
	ce := newCommEngine(cfg, master.Layout())
	contribs := make([][]float32, cfg.Workers)
	active := make([]int, cfg.Workers)
	for i := range contribs {
		contribs[i] = make([]float32, master.NumParams())
		active[i] = i
	}
	simSec, err := ce.reduce(contribs, active, 0, 0)
	if err == nil {
		t.Fatal("expected the injected failure to abort the attempt")
	}
	if simSec < 0.5e-3 {
		t.Fatalf("aborted attempt charged %v simulated seconds, want at least the 0.5ms the failing rank ran", simSec)
	}
}

// TestHierarchicalRVHNonP2Workers: RVH's power-of-two requirement
// applies to the group it actually runs on — the hierarchy's cross
// level — so 24 workers in 3-wide domains (cross = 8) must pass
// Validate AND run, where the engine used to panic on the full group
// size after Validate accepted it.
func TestHierarchicalRVHNonP2Workers(t *testing.T) {
	train, test := data.GeneratePair(data.Config{
		N: 768, Dim: 32, Classes: 4, Noise: 0.5, Seed: 81,
	}, 128)
	cfg := Config{
		Workers:     24,
		Microbatch:  4,
		Reduction:   ReduceAdasum,
		Scope:       PostOptimizer,
		PerLayer:    true,
		Comm:        CommCluster,
		Overlap:     true,
		Strategy:    collective.StrategyRVH,
		Hierarchy:   []int{3},
		FusionBytes: 2048,
		Net:         simnet.TCP40(24),
		StepSeconds: 1e-3,
		Model:       func() *nn.Network { return nn.NewMLP(32, 12, 4) },
		Optimizer:   optim.NewAdam(),
		Schedule:    optim.Constant{Base: 0.002},
		Train:       train, Test: test,
		MaxEpochs: 1,
		Seed:      83,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected hierarchical RVH with power-of-two cross level: %v", err)
	}
	res := Run(cfg) // must not panic in overlap.New
	if res.FinalWorkers != 24 {
		t.Fatalf("run did not complete on 24 workers: %d", res.FinalWorkers)
	}
}
