package trainer

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/compress"
)

// TestHandleStepwiseMatchesRun pins the Handle refactor: driving a run
// step by step through Start/Step/Result is the same computation as
// Run — bitwise-identical FinalParams, identical SimSeconds, epochs
// and convergence — because Run is now literally that loop. The
// stepwise path is what the serving layer schedules, so any divergence
// here would show up as a multi-tenant job training differently from
// the same config run standalone.
func TestHandleStepwiseMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name    string
		scope   Scope
		comm    CommMode
		overlap bool
		codec   compress.Compression
	}{
		{"pre/host", PreOptimizer, CommHost, false, nil},
		{"post/cluster-overlap/topk-ef", PostOptimizer, CommCluster, true, compress.TopK(0.25, true)},
		{"post/cluster-overlap/adaptive", PostOptimizer, CommCluster, true, compress.Adaptive()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			whole := Run(ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec))

			h := Start(ckCfg(tc.scope, tc.comm, tc.overlap, tc.codec))
			steps := 0
			for h.Step() {
				steps++
				if got := h.CompletedSteps(); got != steps {
					t.Fatalf("CompletedSteps = %d after %d Steps", got, steps)
				}
			}
			if !h.Done() {
				t.Fatal("handle not Done after Step returned false")
			}
			piece := h.Result()

			if len(whole.FinalParams) != len(piece.FinalParams) {
				t.Fatal("param count mismatch")
			}
			for i, v := range whole.FinalParams {
				if piece.FinalParams[i] != v {
					t.Fatalf("FinalParams diverged at %d: %v (Run) != %v (Handle)", i, v, piece.FinalParams[i])
				}
			}
			if whole.SimSeconds != piece.SimSeconds {
				t.Fatalf("SimSeconds diverged: %v != %v", whole.SimSeconds, piece.SimSeconds)
			}
			if whole.Converged != piece.Converged || len(whole.Epochs) != len(piece.Epochs) {
				t.Fatalf("bookkeeping diverged: converged %v/%v, epochs %d/%d",
					whole.Converged, piece.Converged, len(whole.Epochs), len(piece.Epochs))
			}
		})
	}
}

// TestHandleSnapshotResumeBitwise is the preemption protocol at trainer
// granularity: a run stepped partway, snapshotted at a step boundary
// (no CheckpointEverySteps involved — the serving layer snapshots at
// preemption time, not on a schedule), serialized, and resumed in a
// fresh handle of the same size must land bitwise on the uninterrupted
// run's FinalParams, including under top-k error feedback and the
// adaptive policy whose residual/decision state ride the snapshot.
func TestHandleSnapshotResumeBitwise(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec compress.Compression
	}{
		{"uncompressed", nil},
		{"topk-ef", compress.TopK(0.25, true)},
		{"adaptive", compress.Adaptive()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			whole := Run(ckCfg(PostOptimizer, CommCluster, true, tc.codec))

			first := Start(ckCfg(PostOptimizer, CommCluster, true, tc.codec))
			for i := 0; i < 3; i++ {
				if !first.Step() {
					t.Fatal("run finished before the preemption point")
				}
			}
			ck, err := checkpoint.Unmarshal(first.Snapshot().Marshal())
			if err != nil {
				t.Fatal(err)
			}

			cfg := ckCfg(PostOptimizer, CommCluster, true, tc.codec)
			cfg.Resume = ck
			second := Start(cfg)
			if got := second.CompletedSteps(); got != 3 {
				t.Fatalf("resumed handle reports %d completed steps, want 3", got)
			}
			for second.Step() {
			}
			resumed := second.Result()

			for i, v := range whole.FinalParams {
				if resumed.FinalParams[i] != v {
					t.Fatalf("FinalParams diverged at %d: %v != %v", i, v, resumed.FinalParams[i])
				}
			}
			if whole.SimSeconds != resumed.SimSeconds {
				t.Fatalf("SimSeconds diverged: %v != %v", whole.SimSeconds, resumed.SimSeconds)
			}
		})
	}
}

// TestReshapeResumeMigratesAcrossGangSizes covers the migration half of
// the preemption protocol: a snapshot captured on one gang size resumes
// on a smaller and on a larger gang when ReshapeResume is set. The
// trajectory legitimately changes with the gang (shards are re-cut,
// per-epoch step budgets re-derive), so the pin is semantic, not
// bitwise: the resumed run completes from the snapshot's step, trains
// on the new worker count, and a same-size resume under the flag stays
// on the plain bitwise path.
func TestReshapeResumeMigratesAcrossGangSizes(t *testing.T) {
	base := func() Config { return ckCfg(PostOptimizer, CommCluster, true, compress.TopK(0.25, true)) }

	first := Start(base())
	for i := 0; i < 3; i++ {
		first.Step()
	}
	ck := first.Snapshot()

	// Same size + flag: still bitwise against the uninterrupted run.
	whole := Run(base())
	cfg := base()
	cfg.Resume, cfg.ReshapeResume = ck.Clone(), true
	same := Run(cfg)
	for i, v := range whole.FinalParams {
		if same.FinalParams[i] != v {
			t.Fatalf("same-size ReshapeResume broke bitwise resume at %d: %v != %v", i, v, same.FinalParams[i])
		}
	}

	// Shrink 4 -> 2 and grow 4 -> 8 (RVH needs powers of two).
	for _, workers := range []int{2, 8} {
		cfg := base()
		cfg.Workers = workers
		cfg.Resume, cfg.ReshapeResume = ck.Clone(), true
		if err := cfg.Validate(); err != nil {
			t.Fatalf("reshape config invalid: %v", err)
		}
		res := Run(cfg)
		if res.FinalWorkers != workers {
			t.Fatalf("resumed on %d workers, finished with %d", workers, res.FinalWorkers)
		}
		if len(res.FinalParams) != len(whole.FinalParams) {
			t.Fatal("param shape changed across migration")
		}
		if res.SimSeconds <= ck.SimSeconds {
			t.Fatalf("migrated run charged no time past the snapshot: %v <= %v", res.SimSeconds, ck.SimSeconds)
		}
	}

	// Without the flag a size mismatch is still rejected.
	bad := base()
	bad.Workers = 2
	bad.Resume = ck.Clone()
	if err := bad.Validate(); err == nil {
		t.Fatal("size-mismatched Resume without ReshapeResume validated")
	}
}
