// Package float16 implements IEEE-754 binary16 ("half precision") in
// software. The paper's Adasum implementation supports fp16 gradients for
// compute and communication efficiency (§4.4.1); since Go has no native
// half type, values are stored as uint16 bit patterns and converted
// to/from float32 for arithmetic. Conversions implement round-to-nearest-
// even, subnormals, infinities and NaN propagation.
package float16

import "math"

// Bits is the raw binary16 bit pattern of a half-precision float.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	maxExp       = 0x1F
	PositiveInf  = Bits(0x7C00)
	NegativeInf  = Bits(0xFC00)
	NaN          = Bits(0x7E00)
	MaxValue     = 65504.0 // largest finite half
	MinNormal    = 6.103515625e-05
	MinSubnormal = 5.9604644775390625e-08
)

// Conversion tables. Software half precision is the hot path of the
// compressed-communication subsystem (every fp16 wire hop encodes and
// decodes full gradient payloads), so both directions are table-driven:
//
//   - encoding indexes 512-entry tables by the float32's sign+exponent
//     byte, replacing the per-value branch tree of the reference
//     implementation with one shift/add plus the round-to-nearest-even
//     fixup (which must inspect the mantissa and cannot be tabled);
//   - decoding is a straight 65536-entry lookup.
//
// The tables are built at init from the reference conversions below, so
// they are exact by construction; the test suite additionally pins the
// fast paths to the references exhaustively (decode) and across the
// exponent boundaries (encode).
var (
	encBase  [512]uint16 // half bits before the mantissa contribution
	encShift [512]uint8  // mantissa right shift; encNoMant = no mantissa/rounding
	encImp   [512]uint32 // implicit-bit addend for subnormal halves
	decTable [1 << 16]float32
)

// encNoMant marks sign+exponent classes whose result ignores the
// mantissa entirely (zero underflow and overflow→inf); NaNs are the one
// exception, branched on explicitly.
const encNoMant = 31

func init() {
	for s := 0; s < 2; s++ {
		sign := uint16(s << 15)
		for exp := 0; exp < 256; exp++ {
			i := s<<8 | exp
			e := exp - 127 + expBias
			switch {
			case exp == 0xFF: // inf and NaN (NaN payload handled out of line)
				encBase[i] = sign | expMask
				encShift[i] = encNoMant
			case e >= maxExp: // overflow -> inf
				encBase[i] = sign | expMask
				encShift[i] = encNoMant
			case e >= 1: // normal half
				encBase[i] = sign | uint16(e<<10)
				encShift[i] = 13
			case e >= -10: // subnormal half
				encBase[i] = sign
				encShift[i] = uint8(14 - e)
				encImp[i] = 0x800000
			default: // underflow -> signed zero
				encBase[i] = sign
				encShift[i] = encNoMant
			}
		}
	}
	for i := range decTable {
		decTable[i] = toFloat32Ref(Bits(i))
	}
}

// FromFloat32 converts a float32 to the nearest binary16, with
// round-to-nearest-even. Values beyond ±65504 become infinities. It is
// the table-driven form of fromFloat32Ref and bit-identical to it.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	i := b >> 23 // sign+exponent byte
	shift := encShift[i]
	if shift == encNoMant {
		return fromFloat32NoMant(b, i)
	}
	m := (b & 0x7FFFFF) + encImp[i]
	half := uint32(encBase[i]) + m>>shift
	// Round to nearest even on the truncated bits; the increment may
	// carry into the exponent (subnormal -> normal, normal -> inf),
	// which is correct rounding. The branchless fixup adds 1 when
	// rem > halfway, and when rem == halfway it adds the result's own
	// low bit (ties go to even).
	rem := m & (1<<shift - 1)
	halfway := uint32(1) << (shift - 1)
	half += (halfway - 1 + rem + (half & 1)) >> shift
	return Bits(half)
}

// fromFloat32NoMant finishes the conversions whose result ignores the
// mantissa — underflow to signed zero and overflow to infinity — plus
// the NaN payload case, keeping the hot path above small enough to
// inline into the bulk encode loops.
func fromFloat32NoMant(b, i uint32) Bits {
	if i&0xFF == 0xFF && b&0x7FFFFF != 0 {
		// Preserve a quiet NaN with some payload bits.
		return Bits(uint32(encBase[i]) | 0x0200 | (b&0x7FFFFF)>>13)
	}
	return Bits(encBase[i])
}

// fromFloat32Ref is the branch-tree reference conversion the tables are
// validated against.
func fromFloat32Ref(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			// Preserve a quiet NaN with some payload bits.
			return Bits(sign | expMask | 0x0200 | uint16(frac>>13))
		}
		return Bits(sign | expMask)
	case exp == 0 && frac == 0: // signed zero
		return Bits(sign)
	}

	// Unbias, rebias for half.
	e := exp - 127 + expBias
	switch {
	case e >= maxExp: // overflow -> inf
		return Bits(sign | expMask)
	case e >= 1: // normal half
		half := (uint32(e) << 10) | (frac >> 13)
		// Round to nearest even on the 13 truncated bits.
		round := frac & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent; that is correct rounding
		}
		return Bits(sign | uint16(half))
	case e >= -10: // subnormal half
		// Add the implicit leading 1 and shift right by (1 - e) extra.
		frac |= 0x800000
		shift := uint32(14 - e) // total shift from 23-bit frac to 10-bit
		half := frac >> shift
		rem := frac & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return Bits(sign | uint16(half))
	default: // underflow -> signed zero
		return Bits(sign)
	}
}

// ToFloat32 converts a binary16 bit pattern to float32 exactly (every
// half value is representable in single precision), by table lookup.
func ToFloat32(h Bits) float32 { return decTable[h] }

// toFloat32Ref is the algorithmic reference conversion that builds the
// decode table.
func toFloat32Ref(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> 10
	frac := uint32(h & fracMask)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - expBias + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | (e << 23) | (frac << 13))
	case maxExp:
		if frac == 0 {
			return math.Float32frombits(sign | 0x7F800000) // inf
		}
		return math.Float32frombits(sign | 0x7F800000 | (frac << 13) | 0x400000) // quiet NaN
	default:
		e := exp - expBias + 127
		return math.Float32frombits(sign | (e << 23) | (frac << 13))
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Bits) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h encodes ±infinity.
func (h Bits) IsInf() bool { return h&expMask == expMask && h&fracMask == 0 }

// IsFinite reports whether h is neither NaN nor infinite.
func (h Bits) IsFinite() bool { return h&expMask != expMask }

// Encode converts a float32 slice into a freshly allocated half slice.
func Encode(src []float32) []Bits {
	dst := make([]Bits, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// EncodeInto converts src into dst, which must have the same length.
func EncodeInto(dst []Bits, src []float32) {
	if len(dst) != len(src) {
		panic("float16: EncodeInto length mismatch")
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// Decode converts a half slice into a freshly allocated float32 slice.
func Decode(src []Bits) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = ToFloat32(v)
	}
	return dst
}

// DecodeInto converts src into dst, which must have the same length.
func DecodeInto(dst []float32, src []Bits) {
	if len(dst) != len(src) {
		panic("float16: DecodeInto length mismatch")
	}
	for i, v := range src {
		dst[i] = ToFloat32(v)
	}
}

// AnyNonFinite reports whether the slice contains a NaN or infinity,
// signalling fp16 overflow to the dynamic loss scaler.
func AnyNonFinite(src []Bits) bool {
	for _, v := range src {
		if !v.IsFinite() {
			return true
		}
	}
	return false
}

// Dot computes the inner product of two half slices with float64
// accumulation, the precision discipline §4.4.1 calls out as "crucial for
// the improved convergence of Adasum".
func Dot(a, b []Bits) float64 {
	if len(a) != len(b) {
		panic("float16: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(ToFloat32(a[i])) * float64(ToFloat32(b[i]))
	}
	return s
}

// Norm2 computes the squared norm of a half slice with float64
// accumulation.
func Norm2(a []Bits) float64 {
	var s float64
	for _, v := range a {
		f := float64(ToFloat32(v))
		s += f * f
	}
	return s
}

// DotNorms computes a·b, ‖a‖² and ‖b‖² in a single pass with float64
// accumulation, decoding each half value once instead of twice (the
// software decode dominates fp16 kernel cost, so the fusion matters more
// here than for float32). It mirrors tensor.DotNorms for the fp16 path of
// the Adasum combiner and is bitwise-identical to the unfused Dot/Norm2
// sequence: the accumulation order per quantity is unchanged.
func DotNorms(a, b []Bits) (dot, na, nb float64) {
	if len(a) != len(b) {
		panic("float16: DotNorms length mismatch")
	}
	for i := range a {
		x := float64(ToFloat32(a[i]))
		y := float64(ToFloat32(b[i]))
		dot += x * y
		na += x * x
		nb += y * y
	}
	return dot, na, nb
}
