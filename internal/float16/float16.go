// Package float16 implements IEEE-754 binary16 ("half precision") in
// software. The paper's Adasum implementation supports fp16 gradients for
// compute and communication efficiency (§4.4.1); since Go has no native
// half type, values are stored as uint16 bit patterns and converted
// to/from float32 for arithmetic. Conversions implement round-to-nearest-
// even, subnormals, infinities and NaN propagation.
package float16

import "math"

// Bits is the raw binary16 bit pattern of a half-precision float.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	maxExp       = 0x1F
	PositiveInf  = Bits(0x7C00)
	NegativeInf  = Bits(0xFC00)
	NaN          = Bits(0x7E00)
	MaxValue     = 65504.0 // largest finite half
	MinNormal    = 6.103515625e-05
	MinSubnormal = 5.9604644775390625e-08
)

// Conversion tables. Software half precision is the hot path of the
// compressed-communication subsystem (every fp16 wire hop encodes and
// decodes full gradient payloads), so both directions are table-driven:
//
//   - encoding indexes a 512-entry table by the float32's sign+exponent
//     byte, replacing the per-value branch tree of the reference
//     implementation with one shift/add plus the round-to-nearest-even
//     fixup (which must inspect the mantissa and cannot be tabled);
//   - decoding is a straight 65536-entry lookup.
//
// The encode table packs all three per-class values into one uint32 —
// bits 0–15 the half bits before the mantissa contribution, bits 24–28
// the mantissa right shift (encNoMant = no mantissa/rounding; the top
// byte holds nothing else, so extracting it is a bare enc>>24), and bit
// 23 the implicit-bit addend for subnormal halves, positioned so it
// adds onto the 23-bit float32 fraction directly. One packed entry
// instead of three parallel tables keeps FromFloat32 to a single load
// and, critically, under the compiler's inlining budget: the bulk
// encode loops (EncodeInto, the fp16 wire codec) inline the conversion,
// which is worth ~30% of the fp16 step.
//
// The tables are built at init from the reference conversions below, so
// they are exact by construction; the test suite additionally pins the
// fast paths to the references exhaustively (decode) and across the
// exponent boundaries (encode).
var (
	encTable [512]uint32
	decTable [1 << 16]float32
)

// encNoMant marks sign+exponent classes whose result ignores the
// mantissa entirely (zero underflow and overflow→inf); NaNs are the one
// exception, branched on explicitly. The value is chosen so the class
// needs no branch in the hot path: with a shift of 31, the mantissa
// contribution (m>>31, m < 2^24) and the rounding fixup
// ((2^30-1 + rem + lowbit) >> 31, sum < 2^31) are both identically
// zero, so the conversion falls out of the same arithmetic as the
// normal and subnormal classes and returns the tabled base bits alone.
const encNoMant = 31

func init() {
	for s := 0; s < 2; s++ {
		sign := uint16(s << 15)
		for exp := 0; exp < 256; exp++ {
			i := s<<8 | exp
			e := exp - 127 + expBias
			switch {
			case exp == 0xFF: // inf and NaN (NaN payload handled by the branch)
				encTable[i] = uint32(sign|expMask) | encNoMant<<24
			case e >= maxExp: // overflow -> inf
				encTable[i] = uint32(sign|expMask) | encNoMant<<24
			case e >= 1: // normal half
				encTable[i] = uint32(sign|uint16(e<<10)) | 13<<24
			case e >= -10: // subnormal half
				encTable[i] = uint32(sign) | uint32(14-e)<<24 | 0x800000
			default: // underflow -> signed zero
				encTable[i] = uint32(sign) | encNoMant<<24
			}
		}
	}
	for i := range decTable {
		decTable[i] = toFloat32Ref(Bits(i))
	}
}

// FromFloat32 converts a float32 to the nearest binary16, with
// round-to-nearest-even. Values beyond ±65504 become infinities. It is
// the table-driven form of fromFloat32Ref and bit-identical to it.
//
//adasum:noalloc
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	if b<<1 > 0xFF000000 { // sign shifted out: true exactly for NaNs
		// NaN: preserve a quiet NaN with some payload bits. The one
		// input class whose result the tabled arithmetic below cannot
		// produce (it would collapse payloads to infinity).
		return Bits(b>>16&0x8000 | 0x7E00 | (b&0x7FFFFF)>>13)
	}
	enc := encTable[b>>23] // indexed by the sign+exponent byte
	shift := enc >> 24
	// enc&0x800000 is the implicit-bit addend (set only for subnormal
	// halves), pre-positioned at the float32 fraction width.
	m := b&0x7FFFFF + enc&0x800000
	// One fused shift-and-round-to-nearest-even: pre-biasing m by
	// (halfway - 1) plus the pre-rounding low result bit ((m>>shift)&1 —
	// every tabled base is even, so this IS the result's tie bit) makes
	// the truncating shift round correctly, the carry propagating into
	// the exponent (subnormal -> normal, normal -> inf) exactly as IEEE
	// rounding requires. The encNoMant classes ride the same arithmetic:
	// at shift 31 both the mantissa contribution and the bias vanish
	// (see the constant's comment), leaving the tabled bits — signed
	// zero or infinity — untouched. Everything is a single expression to
	// keep the function within the inlining budget; the bulk encode
	// loops depend on it. The Bits conversion truncates enc to its base
	// bits, and the 16-bit add cannot wrap: the largest possible result
	// is infinity's bit pattern.
	return Bits(enc) + Bits((m+(m>>shift)&1+1<<(shift-1)-1)>>shift)
}

// fromFloat32Ref is the branch-tree reference conversion the tables are
// validated against.
func fromFloat32Ref(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			// Preserve a quiet NaN with some payload bits.
			return Bits(sign | expMask | 0x0200 | uint16(frac>>13))
		}
		return Bits(sign | expMask)
	case exp == 0 && frac == 0: // signed zero
		return Bits(sign)
	}

	// Unbias, rebias for half.
	e := exp - 127 + expBias
	switch {
	case e >= maxExp: // overflow -> inf
		return Bits(sign | expMask)
	case e >= 1: // normal half
		half := (uint32(e) << 10) | (frac >> 13)
		// Round to nearest even on the 13 truncated bits.
		round := frac & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent; that is correct rounding
		}
		return Bits(sign | uint16(half))
	case e >= -10: // subnormal half
		// Add the implicit leading 1 and shift right by (1 - e) extra.
		frac |= 0x800000
		shift := uint32(14 - e) // total shift from 23-bit frac to 10-bit
		half := frac >> shift
		rem := frac & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return Bits(sign | uint16(half))
	default: // underflow -> signed zero
		return Bits(sign)
	}
}

// ToFloat32 converts a binary16 bit pattern to float32 exactly (every
// half value is representable in single precision), by table lookup.
func ToFloat32(h Bits) float32 { return decTable[h] }

// toFloat32Ref is the algorithmic reference conversion that builds the
// decode table.
func toFloat32Ref(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> 10
	frac := uint32(h & fracMask)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - expBias + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | (e << 23) | (frac << 13))
	case maxExp:
		if frac == 0 {
			return math.Float32frombits(sign | 0x7F800000) // inf
		}
		return math.Float32frombits(sign | 0x7F800000 | (frac << 13) | 0x400000) // quiet NaN
	default:
		e := exp - expBias + 127
		return math.Float32frombits(sign | (e << 23) | (frac << 13))
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Bits) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h encodes ±infinity.
func (h Bits) IsInf() bool { return h&expMask == expMask && h&fracMask == 0 }

// IsFinite reports whether h is neither NaN nor infinite.
func (h Bits) IsFinite() bool { return h&expMask != expMask }

// Encode converts a float32 slice into a freshly allocated half slice.
func Encode(src []float32) []Bits {
	dst := make([]Bits, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// EncodeInto converts src into dst, which must have the same length.
//
//adasum:noalloc
func EncodeInto(dst []Bits, src []float32) {
	if len(dst) != len(src) {
		panic("float16: EncodeInto length mismatch")
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// Decode converts a half slice into a freshly allocated float32 slice.
func Decode(src []Bits) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = ToFloat32(v)
	}
	return dst
}

// DecodeInto converts src into dst, which must have the same length.
//
//adasum:noalloc
func DecodeInto(dst []float32, src []Bits) {
	if len(dst) != len(src) {
		panic("float16: DecodeInto length mismatch")
	}
	for i, v := range src {
		dst[i] = ToFloat32(v)
	}
}

// AnyNonFinite reports whether the slice contains a NaN or infinity,
// signalling fp16 overflow to the dynamic loss scaler.
func AnyNonFinite(src []Bits) bool {
	for _, v := range src {
		if !v.IsFinite() {
			return true
		}
	}
	return false
}

// Dot computes the inner product of two half slices with float64
// accumulation, the precision discipline §4.4.1 calls out as "crucial for
// the improved convergence of Adasum".
func Dot(a, b []Bits) float64 {
	if len(a) != len(b) {
		panic("float16: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(ToFloat32(a[i])) * float64(ToFloat32(b[i]))
	}
	return s
}

// Norm2 computes the squared norm of a half slice with float64
// accumulation.
func Norm2(a []Bits) float64 {
	var s float64
	for _, v := range a {
		f := float64(ToFloat32(v))
		s += f * f
	}
	return s
}

// DotNorms computes a·b, ‖a‖² and ‖b‖² in a single pass with float64
// accumulation, decoding each half value once instead of twice (the
// software decode dominates fp16 kernel cost, so the fusion matters more
// here than for float32). It mirrors tensor.DotNorms for the fp16 path of
// the Adasum combiner and is bitwise-identical to the unfused Dot/Norm2
// sequence: the accumulation order per quantity is unchanged.
//
//adasum:noalloc
func DotNorms(a, b []Bits) (dot, na, nb float64) {
	if len(a) != len(b) {
		panic("float16: DotNorms length mismatch")
	}
	for i := range a {
		x := float64(ToFloat32(a[i]))
		y := float64(ToFloat32(b[i]))
		dot += x * y
		na += x * x
		nb += y * y
	}
	return dot, na, nb
}
