package float16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		b Bits
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF}, // max finite half
		{-65504, 0xFBFF},
		{6.103515625e-05, 0x0400},        // min normal
		{5.9604644775390625e-08, 0x0001}, // min subnormal
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.b {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.b)
		}
		if got := ToFloat32(c.b); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.b, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if nz != 0x8000 {
		t.Fatalf("negative zero = %#04x", nz)
	}
	back := ToFloat32(nz)
	if back != 0 || !math.Signbit(float64(back)) {
		t.Fatalf("negative zero round trip = %v", back)
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); got != PositiveInf {
		t.Fatalf("70000 -> %#04x, want +inf", got)
	}
	if got := FromFloat32(-70000); got != NegativeInf {
		t.Fatalf("-70000 -> %#04x, want -inf", got)
	}
	// 65520 is the rounding boundary: anything >= 65520 rounds to inf.
	if got := FromFloat32(65520); got != PositiveInf {
		t.Fatalf("65520 -> %#04x, want +inf (round to even)", got)
	}
	if got := FromFloat32(65519.996); got != Bits(0x7BFF) {
		t.Fatalf("65519.996 -> %#04x, want max finite", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Fatalf("1e-10 -> %#04x, want +0", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Fatalf("-1e-10 -> %#04x, want -0", got)
	}
}

func TestInfNaN(t *testing.T) {
	if got := FromFloat32(float32(math.Inf(1))); got != PositiveInf {
		t.Fatalf("+inf -> %#04x", got)
	}
	if got := FromFloat32(float32(math.Inf(-1))); got != NegativeInf {
		t.Fatalf("-inf -> %#04x", got)
	}
	n := FromFloat32(float32(math.NaN()))
	if !n.IsNaN() {
		t.Fatalf("NaN -> %#04x, not NaN", n)
	}
	if !math.IsNaN(float64(ToFloat32(NaN))) {
		t.Fatal("ToFloat32(NaN) is not NaN")
	}
	if !PositiveInf.IsInf() || NaN.IsInf() {
		t.Fatal("IsInf misclassification")
	}
	if PositiveInf.IsFinite() || NaN.IsFinite() || FromFloat32(1).IsNaN() {
		t.Fatal("IsFinite/IsNaN misclassification")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; must round to
	// even (1.0, frac 0x000).
	f := float32(1) + float32(math.Exp2(-11))
	if got := FromFloat32(f); got != 0x3C00 {
		t.Fatalf("halfway rounds to %#04x, want 0x3C00 (even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; rounds up to
	// even frac 0x002.
	f = float32(1) + 3*float32(math.Exp2(-11))
	if got := FromFloat32(f); got != 0x3C02 {
		t.Fatalf("halfway rounds to %#04x, want 0x3C02 (even)", got)
	}
}

func TestRoundTripAllHalves(t *testing.T) {
	// Every finite half must survive half -> float32 -> half exactly.
	for b := 0; b < 1<<16; b++ {
		h := Bits(b)
		if h.IsNaN() {
			continue
		}
		f := ToFloat32(h)
		back := FromFloat32(f)
		if back != h {
			t.Fatalf("round trip failed: %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

func TestFromFloat32Monotonic(t *testing.T) {
	// Conversion must be monotone non-decreasing over positive floats.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a := rng.Float32() * 70000
		b := rng.Float32() * 70000
		if a > b {
			a, b = b, a
		}
		ha, hb := FromFloat32(a), FromFloat32(b)
		// Positive halves compare like their bit patterns.
		if ha&0x8000 == 0 && hb&0x8000 == 0 && ha > hb {
			t.Fatalf("monotonicity violated: %v->%#04x, %v->%#04x", a, ha, b, hb)
		}
	}
}

func TestConversionErrorBound(t *testing.T) {
	// For normal-range values, relative error <= 2^-11.
	f := func(x float32) bool {
		if x != x || math.Abs(float64(x)) > 65000 || math.Abs(float64(x)) < 1e-4 {
			return true
		}
		y := ToFloat32(FromFloat32(x))
		rel := math.Abs(float64(y-x)) / math.Abs(float64(x))
		return rel <= math.Exp2(-11)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceCodecs(t *testing.T) {
	src := []float32{0, 1, -2, 0.25, 1000}
	enc := Encode(src)
	dec := Decode(enc)
	for i := range src {
		if dec[i] != src[i] {
			t.Fatalf("codec[%d] = %v, want %v", i, dec[i], src[i])
		}
	}
	dst := make([]Bits, len(src))
	EncodeInto(dst, src)
	out := make([]float32, len(src))
	DecodeInto(out, dst)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("Into codec[%d] = %v, want %v", i, out[i], src[i])
		}
	}
}

func TestAnyNonFinite(t *testing.T) {
	if AnyNonFinite(Encode([]float32{1, 2, 3})) {
		t.Fatal("false positive")
	}
	if !AnyNonFinite([]Bits{FromFloat32(1), PositiveInf}) {
		t.Fatal("missed inf")
	}
	if !AnyNonFinite([]Bits{NaN}) {
		t.Fatal("missed NaN")
	}
}

func TestDotNorm2Float64Accumulation(t *testing.T) {
	// 4096 halves of value 0.25 dotted with themselves: each term is
	// 0.0625, total 256. A half accumulator would saturate resolution;
	// the float64 accumulator is exact.
	n := 4096
	a := make([]Bits, n)
	for i := range a {
		a[i] = FromFloat32(0.25)
	}
	if got := Dot(a, a); got != 256 {
		t.Fatalf("Dot = %v, want 256", got)
	}
	if got := Norm2(a); got != 256 {
		t.Fatalf("Norm2 = %v, want 256", got)
	}
}

func TestDotNormsMatchesUnfusedF16(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{0, 1, 5, 64, 1000} {
		a := make([]Bits, n)
		b := make([]Bits, n)
		for i := range a {
			a[i] = FromFloat32(rng.Float32() - 0.5)
			b[i] = FromFloat32(rng.Float32() - 0.5)
		}
		dot, na, nb := DotNorms(a, b)
		// Same accumulation order as the unfused kernels: bitwise equal.
		if dot != Dot(a, b) || na != Norm2(a) || nb != Norm2(b) {
			t.Errorf("n=%d: fused fp16 kernel deviates from unfused", n)
		}
	}
}

// TestDecodeTableExhaustive pins the table-driven ToFloat32 to the
// algorithmic reference over every one of the 65536 half patterns.
func TestDecodeTableExhaustive(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		got, want := ToFloat32(h), toFloat32Ref(h)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("half %04x: table %08x, reference %08x", i,
				math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// TestEncodeTableMatchesReference pins the table-driven FromFloat32 to
// the branch-tree reference across every exponent (with mantissa
// patterns that exercise the rounding fixups: all-zeros, all-ones,
// exact halfway, halfway±1) plus millions of random bit patterns.
func TestEncodeTableMatchesReference(t *testing.T) {
	check := func(bits uint32) {
		f := math.Float32frombits(bits)
		if got, want := FromFloat32(f), fromFloat32Ref(f); got != want {
			t.Fatalf("float bits %08x: table %04x, reference %04x", bits, got, want)
		}
	}
	for s := uint32(0); s < 2; s++ {
		for exp := uint32(0); exp < 256; exp++ {
			base := s<<31 | exp<<23
			for _, frac := range []uint32{
				0, 1, 0x7FFFFF, 0x400000,
				0x0FFF, 0x1000, 0x1001, 0x2000, 0x3000, // 13-bit rounding edges
				0x1FFF, 0x3FFF, 0x7FFF, 0xFFFF, // subnormal shift edges
				0x555555, 0x2AAAAA,
			} {
				check(base | frac)
			}
		}
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 2_000_000; i++ {
		check(rng.Uint32())
	}
}
