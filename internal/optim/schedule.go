package optim

import "math"

// Schedule maps a global step index to a learning rate. Schedules are
// what Figure 1 attributes orthogonality drops to ("these drops happen
// exactly at boundaries of learning rate schedule change") and what the
// LeNet-5 case study (§5.4) stresses with an aggressive warmup/decay.
type Schedule interface {
	LR(step int) float64
}

// Constant always returns Base.
type Constant struct{ Base float64 }

// LR implements Schedule.
func (c Constant) LR(int) float64 { return c.Base }

// LinearWarmupDecay ramps linearly from zero to Base over WarmupSteps,
// then decays linearly back to zero at TotalSteps — the "linear warmup
// and decay from zero to zero" schedule of §5.4.
type LinearWarmupDecay struct {
	Base        float64
	WarmupSteps int
	TotalSteps  int
}

// LR implements Schedule.
func (s LinearWarmupDecay) LR(step int) float64 {
	if step < 0 {
		return 0
	}
	if step < s.WarmupSteps {
		return s.Base * float64(step+1) / float64(s.WarmupSteps)
	}
	if step >= s.TotalSteps {
		return 0
	}
	rem := float64(s.TotalSteps-step) / float64(s.TotalSteps-s.WarmupSteps)
	return s.Base * rem
}

// MultiStep keeps Base until each milestone step, multiplying by Gamma at
// every milestone — the classic ResNet-50 step schedule whose boundaries
// produce the orthogonality drops in Figure 1.
type MultiStep struct {
	Base       float64
	Milestones []int
	Gamma      float64
}

// LR implements Schedule.
func (s MultiStep) LR(step int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if step >= m {
			lr *= s.Gamma
		}
	}
	return lr
}

// PolynomialWarmup is the BERT pretraining schedule: linear warmup to
// Base over WarmupSteps, then polynomial decay with the given Power
// until TotalSteps.
type PolynomialWarmup struct {
	Base        float64
	WarmupSteps int
	TotalSteps  int
	Power       float64
}

// LR implements Schedule.
func (s PolynomialWarmup) LR(step int) float64 {
	if step < 0 {
		return 0
	}
	if step < s.WarmupSteps {
		return s.Base * float64(step+1) / float64(s.WarmupSteps)
	}
	if step >= s.TotalSteps {
		return 0
	}
	frac := float64(s.TotalSteps-step) / float64(s.TotalSteps-s.WarmupSteps)
	return s.Base * math.Pow(frac, s.Power)
}

// Scaled wraps a schedule, multiplying every rate by Factor — how the
// Sum baselines scale the learning rate linearly with effective batch
// size ("it is common to increase the learning rate proportional to the
// increased effective batch size", §3).
type Scaled struct {
	Inner  Schedule
	Factor float64
}

// LR implements Schedule.
func (s Scaled) LR(step int) float64 { return s.Factor * s.Inner.LR(step) }
