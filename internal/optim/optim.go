// Package optim implements the learning-rate optimizers the paper scales
// with Adasum — Momentum-SGD (ResNet-50, §5.1/5.2), Adam and LAMB
// (BERT-Large, §5.3) — plus plain SGD and LARS. LARS and LAMB compute
// per-layer trust ratios and therefore consume the same tensor.Layout
// that per-layer Adasum uses.
//
// All optimizers mutate a flat parameter vector in place given a flat
// gradient vector. They carry their own state (momenta, moments), so
// data-parallel workers that run the post-optimizer Adasum pattern of
// Figure 3 each own a replica (created with Clone).
package optim

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates params in place from grads with the given base
// learning rate for this step.
type Optimizer interface {
	// Name identifies the optimizer in experiment output.
	Name() string
	// Step applies one update.
	Step(params, grads []float32, lr float64)
	// Reset clears all internal state (step counters, moments).
	Reset()
	// Clone returns a fresh optimizer with identical hyperparameters and
	// zeroed state.
	Clone() Optimizer
	// StateSize returns the number of float32s of persistent state per
	// parameter (0, 1, or 2) — used by the optimizer-state partitioning
	// of §4.3 and its memory model.
	StateSize() int
	// Snapshot returns a deep copy of the optimizer's mutable state —
	// what a checkpoint must carry per worker for a bitwise resume.
	Snapshot() State
	// Restore replaces the optimizer's mutable state with a deep copy
	// of s (a Snapshot from the same optimizer type).
	Restore(s State)
}

// State is a serializable snapshot of an optimizer's mutable state: the
// step counter (Adam/LAMB bias correction) and the persistent
// per-parameter vectors (momenta, moments) in a fixed per-optimizer
// order. Nil vector entries mean "not yet allocated" (an optimizer that
// has not stepped), so a snapshot taken before the first step restores
// to exactly that condition.
type State struct {
	Step int64
	Vecs [][]float32
}

func cloneVec(v []float32) []float32 {
	if v == nil {
		return nil
	}
	return append([]float32(nil), v...)
}

func cloneVecs(vs ...[]float32) [][]float32 {
	out := make([][]float32, len(vs))
	for i, v := range vs {
		out[i] = cloneVec(v)
	}
	return out
}

// vecAt returns a deep copy of s.Vecs[i], tolerating short snapshots
// (missing entries restore as unallocated).
func (s State) vecAt(i int) []float32 {
	if i >= len(s.Vecs) {
		return nil
	}
	return cloneVec(s.Vecs[i])
}

// SGD is plain stochastic gradient descent with optional coupled weight
// decay.
type SGD struct {
	WeightDecay float64
}

// NewSGD returns plain SGD.
func NewSGD() *SGD { return &SGD{} }

func (s *SGD) Name() string     { return "sgd" }
func (s *SGD) Reset()           {}
func (s *SGD) Clone() Optimizer { c := *s; return &c }
func (s *SGD) StateSize() int   { return 0 }
func (s *SGD) Snapshot() State  { return State{} }
func (s *SGD) Restore(State)    {}

func (s *SGD) Step(params, grads []float32, lr float64) {
	wd := float32(s.WeightDecay)
	l := float32(lr)
	for i, g := range grads {
		params[i] -= l * (g + wd*params[i])
	}
}

// Momentum is SGD with heavy-ball momentum, the optimizer of the paper's
// ResNet-50 runs.
type Momentum struct {
	Mu          float64
	WeightDecay float64
	v           []float32
}

// NewMomentum returns momentum SGD with coefficient mu (the paper's
// benchmarks use 0.9).
func NewMomentum(mu float64) *Momentum { return &Momentum{Mu: mu} }

func (m *Momentum) Name() string     { return "momentum" }
func (m *Momentum) Reset()           { m.v = nil }
func (m *Momentum) Clone() Optimizer { return &Momentum{Mu: m.Mu, WeightDecay: m.WeightDecay} }
func (m *Momentum) StateSize() int   { return 1 }
func (m *Momentum) Snapshot() State  { return State{Vecs: cloneVecs(m.v)} }
func (m *Momentum) Restore(s State)  { m.v = s.vecAt(0) }

func (m *Momentum) Step(params, grads []float32, lr float64) {
	if m.v == nil {
		m.v = make([]float32, len(params))
	}
	mu := float32(m.Mu)
	wd := float32(m.WeightDecay)
	l := float32(lr)
	for i, g := range grads {
		g += wd * params[i]
		m.v[i] = mu*m.v[i] + g
		params[i] -= l * m.v[i]
	}
}

// Adam is the Adam optimizer [23] with bias correction.
type Adam struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64 // decoupled (AdamW-style)

	t    int
	m, v []float32
}

// NewAdam returns Adam with the standard (0.9, 0.999, 1e-8) settings.
func NewAdam() *Adam { return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8} }

func (a *Adam) Name() string { return "adam" }
func (a *Adam) Reset()       { a.t = 0; a.m = nil; a.v = nil }
func (a *Adam) Clone() Optimizer {
	return &Adam{Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, WeightDecay: a.WeightDecay}
}
func (a *Adam) StateSize() int { return 2 }

func (a *Adam) Snapshot() State { return State{Step: int64(a.t), Vecs: cloneVecs(a.m, a.v)} }

func (a *Adam) Restore(s State) {
	a.t = int(s.Step)
	a.m = s.vecAt(0)
	a.v = s.vecAt(1)
}

func (a *Adam) Step(params, grads []float32, lr float64) {
	if a.m == nil {
		a.m = make([]float32, len(params))
		a.v = make([]float32, len(params))
	}
	a.t++
	b1 := a.Beta1
	b2 := a.Beta2
	bc1 := 1 - math.Pow(b1, float64(a.t))
	bc2 := 1 - math.Pow(b2, float64(a.t))
	wd := float32(a.WeightDecay * lr)
	for i, g := range grads {
		a.m[i] = float32(b1)*a.m[i] + float32(1-b1)*g
		a.v[i] = float32(b2)*a.v[i] + float32(1-b2)*g*g
		mhat := float64(a.m[i]) / bc1
		vhat := float64(a.v[i]) / bc2
		params[i] -= float32(lr*mhat/(math.Sqrt(vhat)+a.Eps)) + wd*params[i]
	}
}

// LARS implements layer-wise adaptive rate scaling [37]: each layer's
// step is rescaled by trust = η‖w‖/(‖g‖ + wd‖w‖ + eps), then passed
// through heavy-ball momentum.
type LARS struct {
	Mu          float64
	Eta         float64 // trust coefficient
	WeightDecay float64
	Eps         float64
	Layout      tensor.Layout

	v []float32
}

// NewLARS returns LARS over the given per-layer layout with momentum mu
// and trust coefficient eta (0.001 in the original paper).
func NewLARS(layout tensor.Layout, mu, eta float64) *LARS {
	return &LARS{Mu: mu, Eta: eta, Eps: 1e-9, Layout: layout}
}

func (l *LARS) Name() string { return "lars" }
func (l *LARS) Reset()       { l.v = nil }
func (l *LARS) Clone() Optimizer {
	return &LARS{Mu: l.Mu, Eta: l.Eta, WeightDecay: l.WeightDecay, Eps: l.Eps, Layout: l.Layout}
}
func (l *LARS) StateSize() int { return 1 }

func (l *LARS) Snapshot() State { return State{Vecs: cloneVecs(l.v)} }
func (l *LARS) Restore(s State) { l.v = s.vecAt(0) }

func (l *LARS) Step(params, grads []float32, lr float64) {
	if l.v == nil {
		l.v = make([]float32, len(params))
	}
	for seg := 0; seg < l.Layout.NumLayers(); seg++ {
		lo, hi := l.Layout.Bounds(seg)
		w := params[lo:hi]
		g := grads[lo:hi]
		v := l.v[lo:hi]
		wn := tensor.Norm(w)
		gn := tensor.Norm(g)
		trust := 1.0
		if wn > 0 && gn > 0 {
			trust = l.Eta * wn / (gn + l.WeightDecay*wn + l.Eps)
		}
		step := float32(lr * trust)
		mu := float32(l.Mu)
		wd := float32(l.WeightDecay)
		for i := range g {
			v[i] = mu*v[i] + step*(g[i]+wd*w[i])
			w[i] -= v[i]
		}
	}
}

// LAMB implements the layer-wise adaptive large-batch optimizer [38]:
// an Adam update direction per element, rescaled per layer by
// φ(‖w‖)/‖r‖ where r is the Adam direction plus decoupled weight decay.
// This is the paper's state-of-the-art BERT-Large baseline.
type LAMB struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	Layout       tensor.Layout

	t    int
	m, v []float32
	r    []float32 // scratch: per-step update direction
}

// NewLAMB returns LAMB with the paper's standard settings (β1=0.9,
// β2=0.999, ε=1e-6, weight decay 0.01).
func NewLAMB(layout tensor.Layout) *LAMB {
	return &LAMB{Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: 0.01, Layout: layout}
}

func (l *LAMB) Name() string { return "lamb" }
func (l *LAMB) Reset()       { l.t = 0; l.m = nil; l.v = nil }
func (l *LAMB) Clone() Optimizer {
	return &LAMB{Beta1: l.Beta1, Beta2: l.Beta2, Eps: l.Eps, WeightDecay: l.WeightDecay, Layout: l.Layout}
}
func (l *LAMB) StateSize() int { return 2 }

func (l *LAMB) Snapshot() State { return State{Step: int64(l.t), Vecs: cloneVecs(l.m, l.v)} }

func (l *LAMB) Restore(s State) {
	l.t = int(s.Step)
	l.m = s.vecAt(0)
	l.v = s.vecAt(1)
	// r is per-step scratch, but Step only allocates it together with m;
	// a restore that brings m back non-nil must bring the scratch too.
	l.r = nil
	if l.m != nil {
		l.r = make([]float32, len(l.m))
	}
}

func (l *LAMB) Step(params, grads []float32, lr float64) {
	if l.m == nil {
		l.m = make([]float32, len(params))
		l.v = make([]float32, len(params))
		l.r = make([]float32, len(params))
	}
	l.t++
	b1, b2 := l.Beta1, l.Beta2
	bc1 := 1 - math.Pow(b1, float64(l.t))
	bc2 := 1 - math.Pow(b2, float64(l.t))
	for i, g := range grads {
		l.m[i] = float32(b1)*l.m[i] + float32(1-b1)*g
		l.v[i] = float32(b2)*l.v[i] + float32(1-b2)*g*g
		mhat := float64(l.m[i]) / bc1
		vhat := float64(l.v[i]) / bc2
		l.r[i] = float32(mhat/(math.Sqrt(vhat)+l.Eps)) + float32(l.WeightDecay)*params[i]
	}
	for seg := 0; seg < l.Layout.NumLayers(); seg++ {
		lo, hi := l.Layout.Bounds(seg)
		w := params[lo:hi]
		r := l.r[lo:hi]
		wn := tensor.Norm(w)
		rn := tensor.Norm(r)
		trust := 1.0
		if wn > 0 && rn > 0 {
			trust = wn / rn
		}
		step := float32(lr * trust)
		for i := range r {
			w[i] -= step * r[i]
		}
	}
}
