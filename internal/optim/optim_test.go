package optim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// quadGrad returns the gradient of f(w) = 0.5*Σ a_i w_i² at w.
func quadGrad(a, w []float32) []float32 {
	g := make([]float32, len(w))
	for i := range w {
		g[i] = a[i] * w[i]
	}
	return g
}

func quadLoss(a, w []float32) float64 {
	var s float64
	for i := range w {
		s += 0.5 * float64(a[i]) * float64(w[i]) * float64(w[i])
	}
	return s
}

func optimizeQuad(opt Optimizer, lr float64, steps int) float64 {
	a := []float32{1, 2, 0.5, 4}
	w := []float32{1, -1, 2, 0.5}
	for i := 0; i < steps; i++ {
		opt.Step(w, quadGrad(a, w), lr)
	}
	return quadLoss(a, w)
}

func TestSGDStep(t *testing.T) {
	w := []float32{1, 2}
	g := []float32{0.5, -1}
	NewSGD().Step(w, g, 0.1)
	if !tensor.Equal(w, []float32{0.95, 2.1}, 1e-6) {
		t.Fatalf("SGD step = %v", w)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	s := &SGD{WeightDecay: 0.1}
	w := []float32{1}
	s.Step(w, []float32{0}, 1)
	if math.Abs(float64(w[0])-0.9) > 1e-6 {
		t.Fatalf("decayed weight = %v, want 0.9", w[0])
	}
}

func TestAllOptimizersReduceQuadraticLoss(t *testing.T) {
	layout := tensor.FlatLayout(4)
	cases := []struct {
		name string
		opt  Optimizer
		lr   float64
	}{
		{"sgd", NewSGD(), 0.1},
		{"momentum", NewMomentum(0.9), 0.02},
		{"adam", NewAdam(), 0.05},
		{"lars", NewLARS(layout, 0.9, 0.02), 1.0},
		{"lamb", NewLAMB(layout), 0.05},
	}
	start := quadLoss([]float32{1, 2, 0.5, 4}, []float32{1, -1, 2, 0.5})
	for _, c := range cases {
		end := optimizeQuad(c.opt, c.lr, 200)
		if end > start/10 {
			t.Errorf("%s: loss %v -> %v (insufficient progress)", c.name, start, end)
		}
		if math.IsNaN(end) {
			t.Errorf("%s: NaN loss", c.name)
		}
	}
}

func TestMomentumAcceleratesOverSGD(t *testing.T) {
	// On an ill-conditioned quadratic, momentum with a modest rate beats
	// plain SGD at the same rate for the same step count.
	sgdLoss := optimizeQuad(NewSGD(), 0.02, 100)
	momLoss := optimizeQuad(NewMomentum(0.9), 0.02, 100)
	if momLoss >= sgdLoss {
		t.Fatalf("momentum (%v) not faster than SGD (%v)", momLoss, sgdLoss)
	}
}

func TestAdamBiasCorrection(t *testing.T) {
	// First step of Adam with g=1 must move by ~lr regardless of betas
	// (bias correction makes mhat=g, vhat=g²).
	a := NewAdam()
	w := []float32{0}
	a.Step(w, []float32{1}, 0.1)
	if math.Abs(float64(w[0])+0.1) > 1e-4 {
		t.Fatalf("first Adam step = %v, want -0.1", w[0])
	}
}

func TestAdamInvariantToGradientScale(t *testing.T) {
	// Adam's per-element normalization makes the first step direction
	// independent of gradient magnitude.
	a1, a2 := NewAdam(), NewAdam()
	w1 := []float32{0}
	w2 := []float32{0}
	a1.Step(w1, []float32{1e-3}, 0.1)
	a2.Step(w2, []float32{1e3}, 0.1)
	if math.Abs(float64(w1[0]-w2[0])) > 1e-5 {
		t.Fatalf("Adam scale invariance broken: %v vs %v", w1[0], w2[0])
	}
}

func TestLAMBTrustRatioScalesStep(t *testing.T) {
	// Two layers with identical gradients but very different weight
	// norms: the large-norm layer must take a larger absolute step.
	layout := tensor.NewLayout([]string{"small", "big"}, []int{2, 2})
	l := NewLAMB(layout)
	l.WeightDecay = 0
	w := []float32{0.01, 0.01, 10, 10}
	g := []float32{1, 1, 1, 1}
	before := append([]float32(nil), w...)
	l.Step(w, g, 0.1)
	smallStep := math.Abs(float64(before[0] - w[0]))
	bigStep := math.Abs(float64(before[2] - w[2]))
	if bigStep <= smallStep {
		t.Fatalf("LAMB trust ratio inactive: small %v, big %v", smallStep, bigStep)
	}
}

func TestLARSTrustRatio(t *testing.T) {
	layout := tensor.FlatLayout(2)
	l := NewLARS(layout, 0, 0.001)
	w := []float32{3, 4} // ‖w‖ = 5
	g := []float32{0.6, 0.8}
	before := append([]float32(nil), w...)
	l.Step(w, g, 1)
	// trust = 0.001*5/1 = 0.005; step = lr*trust*g = 0.005*g.
	wantStep0 := 0.005 * 0.6
	got := float64(before[0] - w[0])
	if math.Abs(got-wantStep0) > 1e-6 {
		t.Fatalf("LARS step = %v, want %v", got, wantStep0)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	layout := tensor.FlatLayout(2)
	opts := []Optimizer{NewSGD(), NewMomentum(0.9), NewAdam(), NewLARS(layout, 0.9, 0.01), NewLAMB(layout)}
	for _, opt := range opts {
		w1 := []float32{1, 1}
		opt.Step(w1, []float32{1, 1}, 0.1)
		c := opt.Clone()
		w2 := []float32{1, 1}
		w3 := []float32{1, 1}
		c.Step(w2, []float32{1, 1}, 0.1)
		// A fresh instance must behave like the clone.
		f := opt.Clone()
		f.Step(w3, []float32{1, 1}, 0.1)
		if !tensor.Equal(w2, w3, 1e-7) {
			t.Errorf("%s: clone state leaked: %v vs %v", opt.Name(), w2, w3)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	m := NewMomentum(0.9)
	w := []float32{1}
	m.Step(w, []float32{1}, 0.1)
	m.Reset()
	w2 := []float32{1}
	m.Step(w2, []float32{1}, 0.1)
	fresh := NewMomentum(0.9)
	w3 := []float32{1}
	fresh.Step(w3, []float32{1}, 0.1)
	if w2[0] != w3[0] {
		t.Fatalf("reset incomplete: %v vs %v", w2[0], w3[0])
	}
}

func TestStateSize(t *testing.T) {
	layout := tensor.FlatLayout(1)
	if NewSGD().StateSize() != 0 || NewMomentum(0.9).StateSize() != 1 ||
		NewAdam().StateSize() != 2 || NewLAMB(layout).StateSize() != 2 {
		t.Fatal("StateSize mismatch")
	}
}

func TestLinearWarmupDecay(t *testing.T) {
	s := LinearWarmupDecay{Base: 1, WarmupSteps: 10, TotalSteps: 110}
	if got := s.LR(0); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := s.LR(9); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("LR(9) = %v", got)
	}
	if got := s.LR(60); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("LR(60) = %v", got)
	}
	if got := s.LR(110); got != 0 {
		t.Fatalf("LR(end) = %v", got)
	}
	if got := s.LR(500); got != 0 {
		t.Fatalf("LR(past end) = %v", got)
	}
}

func TestMultiStep(t *testing.T) {
	s := MultiStep{Base: 1, Milestones: []int{10, 20}, Gamma: 0.1}
	if s.LR(5) != 1 || math.Abs(s.LR(15)-0.1) > 1e-12 || math.Abs(s.LR(25)-0.01) > 1e-12 {
		t.Fatalf("MultiStep schedule wrong: %v %v %v", s.LR(5), s.LR(15), s.LR(25))
	}
}

func TestPolynomialWarmup(t *testing.T) {
	s := PolynomialWarmup{Base: 2, WarmupSteps: 4, TotalSteps: 104, Power: 1}
	if math.Abs(s.LR(3)-2) > 1e-9 {
		t.Fatalf("LR(3) = %v", s.LR(3))
	}
	if math.Abs(s.LR(54)-1) > 1e-9 {
		t.Fatalf("LR(54) = %v", s.LR(54))
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Inner: Constant{Base: 0.5}, Factor: 8}
	if s.LR(0) != 4 {
		t.Fatalf("Scaled LR = %v", s.LR(0))
	}
}

func TestOptimizersDeterministic(t *testing.T) {
	// Same seed and inputs => identical trajectories (no hidden global
	// randomness).
	layout := tensor.FlatLayout(8)
	mk := func() []Optimizer {
		return []Optimizer{NewMomentum(0.9), NewAdam(), NewLAMB(layout)}
	}
	rng := rand.New(rand.NewSource(99))
	grads := make([][]float32, 20)
	for i := range grads {
		g := make([]float32, 8)
		for j := range g {
			g[j] = rng.Float32() - 0.5
		}
		grads[i] = g
	}
	run := func(opt Optimizer) []float32 {
		w := make([]float32, 8)
		for i := range w {
			w[i] = 1
		}
		for _, g := range grads {
			opt.Step(w, g, 0.01)
		}
		return w
	}
	a, b := mk(), mk()
	for i := range a {
		wa, wb := run(a[i]), run(b[i])
		if !tensor.Equal(wa, wb, 0) {
			t.Fatalf("%s not deterministic", a[i].Name())
		}
	}
}
