package fusion

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/tensor"
)

func mkTensors(seed int64, sizes []int) ([][]float32, []string) {
	rng := rand.New(rand.NewSource(seed))
	ts := make([][]float32, len(sizes))
	names := make([]string, len(sizes))
	for i, s := range sizes {
		t := make([]float32, s)
		for j := range t {
			t[j] = rng.Float32() - 0.5
		}
		ts[i] = t
		names[i] = "t"
	}
	return ts, names
}

func TestFuseRespectsThreshold(t *testing.T) {
	ts, names := mkTensors(1, []int{100, 100, 100, 100}) // 400B each
	groups := Fuse(ts, names, 1000)                      // fits 2 per group
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		if g.Bytes() > 1000 {
			t.Fatalf("group exceeds threshold: %d bytes", g.Bytes())
		}
	}
}

func TestFuseOversizedTensorAlone(t *testing.T) {
	ts, names := mkTensors(2, []int{10, 1000, 10})
	groups := Fuse(ts, names, 256)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 (oversized tensor isolated)", len(groups))
	}
	if len(groups[1].Data) != 1000 {
		t.Fatalf("middle group holds %d elems", len(groups[1].Data))
	}
}

func TestFusePreservesOrderAndContent(t *testing.T) {
	ts, names := mkTensors(3, []int{5, 7, 3})
	groups := Fuse(ts, names, 1<<20)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Layout.NumLayers() != 3 || g.Layout.TotalSize() != 15 {
		t.Fatalf("layout: %d layers, %d total", g.Layout.NumLayers(), g.Layout.TotalSize())
	}
	// Content must be the concatenation.
	off := 0
	for _, src := range ts {
		for _, v := range src {
			if g.Data[off] != v {
				t.Fatal("fused content mismatch")
			}
			off++
		}
	}
}

func TestUnfuseRoundTrip(t *testing.T) {
	ts, names := mkTensors(4, []int{8, 16, 4, 32})
	orig := make([][]float32, len(ts))
	for i := range ts {
		orig[i] = tensor.Clone(ts[i])
	}
	groups := Fuse(ts, names, 64)
	// Mutate fused buffers (simulating a reduction), then unfuse.
	for gi := range groups {
		for j := range groups[gi].Data {
			groups[gi].Data[j] *= 2
		}
	}
	UnfuseAll(groups, ts)
	for i := range ts {
		for j := range ts[i] {
			if ts[i][j] != 2*orig[i][j] {
				t.Fatalf("unfuse[%d][%d] = %v, want %v", i, j, ts[i][j], 2*orig[i][j])
			}
		}
	}
}

// TestFusedAdasumEqualsPerTensor is the §4.4.3 bookkeeping property:
// running per-layer Adasum on a fused buffer (with its boundary layout)
// must produce exactly the per-tensor pairwise results.
func TestFusedAdasumEqualsPerTensor(t *testing.T) {
	sizes := []int{6, 10, 3}
	a, names := mkTensors(5, sizes)
	b, _ := mkTensors(6, sizes)

	// Per-tensor reference.
	want := make([][]float32, len(sizes))
	for i := range sizes {
		want[i] = make([]float32, sizes[i])
		adasum.Combine(want[i], a[i], b[i])
	}

	ga := Fuse(a, names, 1<<20)[0]
	gb := Fuse(b, names, 1<<20)[0]
	adasum.CombineLayers(ga.Data, ga.Data, gb.Data, ga.Layout)
	out := make([][]float32, len(sizes))
	for i, s := range sizes {
		out[i] = make([]float32, s)
	}
	ga.Unfuse(out)

	for i := range want {
		if !tensor.Equal(out[i], want[i], 1e-6) {
			t.Fatalf("fused per-layer adasum diverges from per-tensor at %d", i)
		}
	}
}

func TestFuseEmptyInput(t *testing.T) {
	groups := Fuse(nil, nil, 1024)
	if len(groups) != 0 {
		t.Fatalf("empty fuse produced %d groups", len(groups))
	}
}

func TestFuseDefaultThreshold(t *testing.T) {
	ts, names := mkTensors(7, []int{4, 4})
	groups := Fuse(ts, names, 0)
	if len(groups) != 1 {
		t.Fatalf("default threshold should fuse small tensors together, got %d groups", len(groups))
	}
}
