package fusion

import (
	"testing"

	"repro/internal/tensor"
)

// packAll streams the tensors through a Packer in order and collects the
// flushed groups.
func packAll(pk *Packer, ts [][]float32, names []string) []*Group {
	pk.Reset()
	var groups []*Group
	for i, t := range ts {
		if g := pk.Ready(i, names[i], t); g != nil {
			groups = append(groups, g)
		}
	}
	if g := pk.Flush(); g != nil {
		groups = append(groups, g)
	}
	return groups
}

// TestPackerMatchesFuse verifies the streaming packer produces exactly
// the buckets the batch Fuse builds for the same order and threshold.
func TestPackerMatchesFuse(t *testing.T) {
	sizes := []int{100, 40, 300, 8, 8, 8, 500, 60}
	ts, names := mkTensors(11, sizes)
	for _, threshold := range []int{256, 600, 1200, 1 << 20} {
		want := Fuse(ts, names, threshold)
		got := packAll(NewPacker(threshold), ts, names)
		if len(got) != len(want) {
			t.Fatalf("threshold %d: %d groups, want %d", threshold, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Members) != len(want[i].Members) {
				t.Fatalf("threshold %d group %d: members %v want %v",
					threshold, i, got[i].Members, want[i].Members)
			}
			for j, m := range want[i].Members {
				if got[i].Members[j] != m {
					t.Fatalf("threshold %d group %d member %d: %d want %d",
						threshold, i, j, got[i].Members[j], m)
				}
			}
			if !tensor.Equal(got[i].Data, want[i].Data, 0) {
				t.Fatalf("threshold %d group %d: data mismatch", threshold, i)
			}
		}
	}
}

// TestPackerOversizedAlone mirrors the Fuse overflow rule: a tensor
// bigger than the threshold ships alone.
func TestPackerOversizedAlone(t *testing.T) {
	ts, names := mkTensors(3, []int{10, 1000, 10})
	groups := packAll(NewPacker(256), ts, names)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	if len(groups[1].Data) != 1000 {
		t.Fatalf("middle group holds %d elems, want 1000", len(groups[1].Data))
	}
}

// TestPackerReusesBuckets checks that a second identical step reuses the
// first step's buffers (same backing arrays) and re-copies fresh data.
func TestPackerReusesBuckets(t *testing.T) {
	sizes := []int{64, 64, 64, 64}
	ts, names := mkTensors(5, sizes)
	pk := NewPacker(64 * 4 * 2) // two tensors per bucket
	first := packAll(pk, ts, names)
	if len(first) != 2 {
		t.Fatalf("got %d groups, want 2", len(first))
	}
	firstData := make([]*float32, len(first))
	for i, g := range first {
		firstData[i] = &g.Data[0]
	}

	// Mutate the inputs and run a second step.
	for _, x := range ts {
		for j := range x {
			x[j] += 1
		}
	}
	second := packAll(pk, ts, names)
	if len(second) != 2 {
		t.Fatalf("second step: got %d groups, want 2", len(second))
	}
	for i, g := range second {
		if &g.Data[0] != firstData[i] {
			t.Errorf("group %d: buffer not reused across Reset", i)
		}
		lo, hi := g.Layout.Bounds(0)
		if !tensor.Equal(g.Data[lo:hi], ts[g.Members[0]], 0) {
			t.Errorf("group %d: stale data after reuse", i)
		}
	}
}

// TestPackerAllocFree measures that steady-state repacking does not
// allocate once the skeleton cache is warm.
func TestPackerAllocFree(t *testing.T) {
	sizes := []int{256, 256, 256, 256, 256}
	ts, names := mkTensors(7, sizes)
	pk := NewPacker(256 * 4 * 2)
	packAll(pk, ts, names) // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		pk.Reset()
		for i, x := range ts {
			pk.Ready(i, names[i], x)
		}
		pk.Flush()
	})
	if allocs > 0 {
		t.Fatalf("steady-state packing allocates %.1f times per step", allocs)
	}
}

// TestPackerShapeChangeRebuilds confirms a changed ready sequence is
// packed correctly (skeletons rebuilt, not corrupted).
func TestPackerShapeChangeRebuilds(t *testing.T) {
	pk := NewPacker(1 << 20)
	ts1, names1 := mkTensors(1, []int{32, 32})
	packAll(pk, ts1, names1)
	ts2, names2 := mkTensors(2, []int{16, 48, 8})
	groups := packAll(pk, ts2, names2)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Layout.TotalSize() != 72 || len(g.Members) != 3 {
		t.Fatalf("skeleton not rebuilt: size %d members %v", g.Layout.TotalSize(), g.Members)
	}
	out := [][]float32{make([]float32, 16), make([]float32, 48), make([]float32, 8)}
	g.Unfuse(out)
	for i := range out {
		if !tensor.Equal(out[i], ts2[i], 0) {
			t.Fatalf("tensor %d roundtrip mismatch", i)
		}
	}
}
