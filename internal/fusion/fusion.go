// Package fusion implements Horovod's tensor-fusion optimization
// (§4.4.3): when several layer tensors are ready to reduce, they are
// packed into one contiguous buffer so a single allreduce amortizes
// per-call latency. Adasum needs extra bookkeeping — the fused buffer
// keeps a tensor.Layout marking each member's boundaries so per-layer dot
// products are still computed per original tensor. Because every rank
// fuses the same tensors in the same order, the bookkeeping is local and
// adds no communication (as the paper notes).
package fusion

import (
	"fmt"

	"repro/internal/tensor"
)

// Group is one fused buffer: the packed data, the layout of member
// tensors inside it, and the indices of the original tensors it holds.
type Group struct {
	Data    []float32
	Layout  tensor.Layout
	Members []int // indices into the original tensor list
}

// Bytes returns the payload size of the fused buffer, as int64 so cost
// accounting of >2 GiB buckets stays exact on 32-bit builds.
func (g *Group) Bytes() int64 { return 4 * int64(len(g.Data)) }

// Fuse packs the named tensors into groups of at most thresholdBytes
// each (a single tensor larger than the threshold gets its own group,
// like Horovod's fusion buffer overflow behaviour). Order is preserved.
func Fuse(tensors [][]float32, names []string, thresholdBytes int) []Group {
	if len(tensors) != len(names) {
		panic("fusion: tensors/names length mismatch")
	}
	if thresholdBytes <= 0 {
		thresholdBytes = 64 << 20 // Horovod's upper default
	}
	var groups []Group
	var curNames []string
	var curSizes []int
	var curMembers []int
	curBytes := 0

	flush := func() {
		if len(curMembers) == 0 {
			return
		}
		layout := tensor.NewLayout(curNames, curSizes)
		data := make([]float32, layout.TotalSize())
		for i, m := range curMembers {
			lo, _ := layout.Bounds(i)
			copy(data[lo:lo+len(tensors[m])], tensors[m])
		}
		groups = append(groups, Group{Data: data, Layout: layout, Members: curMembers})
		curNames, curSizes, curMembers, curBytes = nil, nil, nil, 0
	}

	for i, t := range tensors {
		b := len(t) * 4
		// Flush on any pending members, not pending bytes: a bucket of
		// zero-length tensors must not absorb a following oversized
		// tensor, which the documented contract says travels alone.
		// Packer.Ready applies the identical rule so the streamed and
		// batch boundaries agree on this edge too.
		if len(curMembers) > 0 && curBytes+b > thresholdBytes {
			flush()
		}
		curNames = append(curNames, names[i])
		curSizes = append(curSizes, len(t))
		curMembers = append(curMembers, i)
		curBytes += b
	}
	flush()
	return groups
}

// Unfuse copies the group's (reduced) data back into the original
// tensors.
func (g *Group) Unfuse(tensors [][]float32) {
	for i, m := range g.Members {
		lo, hi := g.Layout.Bounds(i)
		if len(tensors[m]) != hi-lo {
			panic(fmt.Sprintf("fusion: member %d size changed (%d != %d)", m, len(tensors[m]), hi-lo))
		}
		copy(tensors[m], g.Data[lo:hi])
	}
}

// UnfuseAll copies every group back into the tensor list.
func UnfuseAll(groups []Group, tensors [][]float32) {
	for i := range groups {
		groups[i].Unfuse(tensors)
	}
}
