package fusion

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// assertSameGroups fails unless the streamed and batch bucketings agree
// on member lists, layouts and packed data.
func assertSameGroups(t *testing.T, label string, got []*Group, want []Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i].Members) != len(want[i].Members) {
			t.Fatalf("%s group %d: members %v, want %v", label, i, got[i].Members, want[i].Members)
		}
		for j, m := range want[i].Members {
			if got[i].Members[j] != m {
				t.Fatalf("%s group %d: members %v, want %v", label, i, got[i].Members, want[i].Members)
			}
			if got[i].Layout.Size(j) != want[i].Layout.Size(j) ||
				got[i].Layout.Name(j) != want[i].Layout.Name(j) {
				t.Fatalf("%s group %d member %d: layout (%q, %d), want (%q, %d)", label, i, j,
					got[i].Layout.Name(j), got[i].Layout.Size(j),
					want[i].Layout.Name(j), want[i].Layout.Size(j))
			}
		}
		if !tensor.Equal(got[i].Data, want[i].Data, 0) {
			t.Fatalf("%s group %d: data mismatch", label, i)
		}
	}
}

// TestBoundaryEquivalenceEdgeCases pins Packer/Fuse agreement on the
// boundary shapes that exercise the flush guard: zero-length tensors at
// the front, in the middle and at the end; an oversized leading tensor;
// an oversized tensor right after a run of zero-length tensors; and a
// bucket that is exactly at threshold.
func TestBoundaryEquivalenceEdgeCases(t *testing.T) {
	const threshold = 256 // 64 floats
	cases := []struct {
		name  string
		sizes []int
	}{
		{"leading-oversized", []int{100, 10, 10}},
		{"oversized-after-empty", []int{0, 0, 100, 10}},
		{"empty-only", []int{0, 0, 0}},
		{"empty-between", []int{30, 0, 30, 0, 30}},
		{"trailing-empty", []int{40, 40, 0}},
		{"exact-threshold", []int{64, 64, 64}},
		{"oversized-everywhere", []int{100, 0, 200, 100}},
	}
	for _, tc := range cases {
		ts, names := mkTensors(int64(len(tc.sizes)), tc.sizes)
		want := Fuse(ts, names, threshold)
		got := packAll(NewPacker(threshold), ts, names)
		assertSameGroups(t, tc.name, got, want)
	}
}

// TestOversizedTravelsAloneAfterEmpties pins the contract the member-
// count guard restores: a tensor larger than the threshold gets its own
// bucket even when the pending bucket holds only zero-length tensors
// (whose byte count is zero).
func TestOversizedTravelsAloneAfterEmpties(t *testing.T) {
	ts, names := mkTensors(3, []int{0, 0, 100})
	for _, groups := range [][]*Group{
		packAll(NewPacker(256), ts, names),
		groupPtrs(Fuse(ts, names, 256)),
	} {
		if len(groups) != 2 {
			t.Fatalf("got %d groups, want 2 (empties, then the oversized tensor alone)", len(groups))
		}
		if len(groups[0].Members) != 2 || len(groups[0].Data) != 0 {
			t.Fatalf("first group should hold the two empties, got members %v", groups[0].Members)
		}
		if len(groups[1].Members) != 1 || len(groups[1].Data) != 100 {
			t.Fatalf("oversized tensor does not travel alone: members %v", groups[1].Members)
		}
	}
}

// TestBoundaryEquivalenceRandomized fuzzes the equivalence across random
// size sequences (zero-length and oversized tensors included) and
// thresholds.
func TestBoundaryEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		sizes := make([]int, n)
		for i := range sizes {
			switch rng.Intn(4) {
			case 0:
				sizes[i] = 0
			case 1:
				sizes[i] = 1 + rng.Intn(32)
			case 2:
				sizes[i] = 1 + rng.Intn(200)
			default:
				sizes[i] = 300 + rng.Intn(300) // oversized for small thresholds
			}
		}
		threshold := 4 * (1 + rng.Intn(400))
		ts, names := mkTensors(int64(trial), sizes)
		want := Fuse(ts, names, threshold)
		got := packAll(NewPacker(threshold), ts, names)
		assertSameGroups(t, "randomized", got, want)
	}
}

func groupPtrs(gs []Group) []*Group {
	out := make([]*Group, len(gs))
	for i := range gs {
		out[i] = &gs[i]
	}
	return out
}
