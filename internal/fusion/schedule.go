package fusion

import "repro/internal/tensor"

// Packer assembles fusion Groups incrementally, in the order tensors are
// declared ready — during backprop, the reverse layer order. It is the
// streaming counterpart of Fuse: the bucket boundaries it produces for a
// given declaration order and threshold are identical to Fuse's for the
// same tensor order, so every rank packing the same ready sequence
// builds the same buckets with no coordination.
//
// A Packer is the per-rank bucket scheduler of the overlapped reduction
// engine: each flushed Group is handed to an async collective while
// later tensors keep arriving. Group skeletons (data buffer, layout,
// member list) are cached and reused across steps — after the first
// step, a steady-state step performs no allocation as long as the ready
// sequence keeps the same shape.
//
// A Packer is not safe for concurrent use, and the Groups it returns
// remain owned by it: they are valid until the Reset after next.
type Packer struct {
	threshold int
	seq       int      // flush index within the current step
	cache     []*Group // skeletons from prior steps, reused when shapes match

	// pending bucket under construction
	curTensors [][]float32
	curNames   []string
	curSizes   []int
	curMembers []int
	curBytes   int
}

// NewPacker returns a Packer with the given bucket threshold in bytes
// (<= 0 selects the same 64 MB default as Fuse).
func NewPacker(thresholdBytes int) *Packer {
	if thresholdBytes <= 0 {
		thresholdBytes = 64 << 20
	}
	return &Packer{threshold: thresholdBytes}
}

// Ready declares tensor t (index member in the original tensor list)
// ready for reduction. If admitting it would push the pending bucket
// past the threshold, the pending bucket is flushed and returned (the
// new tensor starts the next bucket); otherwise Ready returns nil. Like
// Fuse, a single tensor larger than the threshold travels alone.
func (pk *Packer) Ready(member int, name string, t []float32) *Group {
	var out *Group
	// Member-count guard, matching Fuse: a pending bucket of zero-length
	// tensors (curBytes == 0) still flushes before an oversized tensor,
	// so the oversized tensor travels alone on both paths.
	if b := len(t) * 4; len(pk.curMembers) > 0 && pk.curBytes+b > pk.threshold {
		out = pk.flush()
	}
	pk.curTensors = append(pk.curTensors, t)
	pk.curNames = append(pk.curNames, name)
	pk.curSizes = append(pk.curSizes, len(t))
	pk.curMembers = append(pk.curMembers, member)
	pk.curBytes += len(t) * 4
	return out
}

// Flush completes the final partial bucket of the step, or returns nil
// if nothing is pending.
func (pk *Packer) Flush() *Group { return pk.flush() }

// Reset starts a new step: previously returned Groups become reusable
// storage for the next step's buckets. Any pending (un-flushed) tensors
// are discarded.
func (pk *Packer) Reset() {
	pk.seq = 0
	pk.clearCur()
}

func (pk *Packer) clearCur() {
	pk.curTensors = pk.curTensors[:0]
	pk.curNames = pk.curNames[:0]
	pk.curSizes = pk.curSizes[:0]
	pk.curMembers = pk.curMembers[:0]
	pk.curBytes = 0
}

// flush materializes the pending bucket into the next cached skeleton,
// rebuilding the skeleton only when the bucket's shape changed since the
// previous step, and copies the member tensors into the fused buffer.
func (pk *Packer) flush() *Group {
	if len(pk.curMembers) == 0 {
		return nil
	}
	var g *Group
	if pk.seq < len(pk.cache) {
		g = pk.cache[pk.seq]
	} else {
		g = &Group{}
		pk.cache = append(pk.cache, g)
	}
	pk.seq++
	if !pk.shapeMatches(g) {
		layout := tensor.NewLayout(
			append([]string(nil), pk.curNames...),
			append([]int(nil), pk.curSizes...))
		*g = Group{
			Data:    make([]float32, layout.TotalSize()),
			Layout:  layout,
			Members: append([]int(nil), pk.curMembers...),
		}
	}
	for i, t := range pk.curTensors {
		lo, _ := g.Layout.Bounds(i)
		copy(g.Data[lo:lo+len(t)], t)
	}
	pk.clearCur()
	return g
}

// shapeMatches reports whether the cached skeleton already describes the
// pending bucket (same members, same sizes, same names — names feed the
// fused Layout, which must not go stale when a caller renames tensors
// between steps).
func (pk *Packer) shapeMatches(g *Group) bool {
	if len(g.Members) != len(pk.curMembers) {
		return false
	}
	for i, m := range pk.curMembers {
		if g.Members[i] != m || g.Layout.Size(i) != pk.curSizes[i] || g.Layout.Name(i) != pk.curNames[i] {
			return false
		}
	}
	return true
}
