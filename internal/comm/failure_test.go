package comm

import (
	"math"
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestRunFailsFastOnPanickingRank is the regression test for the
// deadlock this PR removes: one rank panics while every peer is blocked
// in Recv on it. Run used to wedge in wg.Wait forever; now the peers
// unblock with typed RankFailures and Run re-raises the aggregate with
// rank context. The watchdog goroutine turns a regression back into a
// failure instead of a hung test binary.
func TestRunFailsFastOnPanickingRank(t *testing.T) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			panic("comm: Run deadlocked on a panicking rank")
		}
	}()
	defer close(done)

	w := NewWorld(4, nil)
	var err *RunError
	func() {
		defer func() {
			e := recover()
			if e == nil {
				t.Fatal("expected Run to panic")
			}
			err = e.(*RunError)
		}()
		w.Run(func(p *Proc) {
			if p.Rank() == 2 {
				panic("boom")
			}
			// Everyone else blocks on the rank that will never send.
			p.Recv(2)
		})
	}()

	if !err.Observed(2) {
		t.Fatalf("rank 2's panic missing from %v", err)
	}
	roots := err.Roots()
	if len(roots) != 1 || roots[0] != 2 {
		t.Fatalf("roots = %v, want [2]", roots)
	}
	// Every blocked peer must have died of observing rank 2, with rank
	// context preserved.
	for _, f := range err.Failures {
		if f.Rank == 2 {
			continue
		}
		rf, ok := f.Err.(RankFailure)
		if !ok || rf.Rank != 2 {
			t.Fatalf("rank %d died of %v, want RankFailure{2}", f.Rank, f.Err)
		}
	}
}

// TestRunReRaisesAllRankErrors pins the other half of the bugfix: two
// independent rank panics must both appear in the aggregate, not just
// the first non-nil.
func TestRunReRaisesAllRankErrors(t *testing.T) {
	w := NewWorld(4, nil)
	defer func() {
		err := recover().(*RunError)
		roots := err.Roots()
		if len(roots) != 2 || roots[0] != 1 || roots[1] != 3 {
			t.Fatalf("roots = %v, want [1 3]", roots)
		}
	}()
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 1:
			panic("first")
		case 3:
			panic("second")
		}
	})
}

// TestInjectedFailureAtVirtualTime verifies the simnet fail-at
// schedule: a rank dies on the first clock advance at or past its
// deadline, and the failure is attributed to it as the root.
func TestInjectedFailureAtVirtualTime(t *testing.T) {
	model := simnet.Uniform(3, 0, 0)
	model.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{1: 5}}
	w := NewWorld(3, model)
	clocks := make([]float64, 3)
	err := w.RunErr(func(p *Proc) {
		p.Compute(3) // everyone survives this
		p.Compute(3) // rank 1 crosses 5s here
		clocks[p.Rank()] = p.Clock()
	})
	if err == nil {
		t.Fatal("expected an injected failure")
	}
	if roots := err.Roots(); len(roots) != 1 || roots[0] != 1 {
		t.Fatalf("roots = %v, want [1]", roots)
	}
	if clocks[0] != 6 || clocks[2] != 6 {
		t.Fatalf("healthy ranks should have finished at t=6, got %v", clocks)
	}
	if w.Alive(1) {
		t.Fatal("rank 1 should be dead")
	}
}

// TestInjectedFailureUnblocksPeerMidCollective kills a rank whose peer
// is blocked waiting for its message: the peer must observe a
// RankFailure rather than hang.
func TestInjectedFailureUnblocksPeerMidCollective(t *testing.T) {
	model := simnet.Uniform(2, 0, 0)
	model.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{0: 1}}
	w := NewWorld(2, model)
	err := w.RunErr(func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(2) // dies before sending
			p.Send(1, []float32{1})
			return
		}
		p.RecvInto(0, make([]float32, 1))
	})
	if err == nil {
		t.Fatal("expected a failure")
	}
	if roots := err.Roots(); len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}
	if !err.Observed(1) {
		t.Fatalf("rank 1 should have observed the death: %v", err)
	}
}

// TestPreDeathMessagesStillDelivered: a payload sent before the sender
// died must reach a receiver that was already blocked, so completed
// work is not thrown away spuriously.
func TestPreDeathMessagesStillDelivered(t *testing.T) {
	w := NewWorld(2, nil)
	got := make([]float32, 1)
	err := w.RunErr(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []float32{42})
			panic("dies after sending")
		}
		p.RecvInto(0, got)
	})
	if err == nil {
		t.Fatal("expected rank 0's panic to surface")
	}
	if err.Observed(1) {
		t.Fatalf("rank 1 should have completed with the pre-death payload: %v", err)
	}
	if got[0] != 42 {
		t.Fatalf("payload lost: got %v", got[0])
	}
}

// TestSendToDeadRankFailsFast: once a rank is dead, traffic to it must
// raise immediately instead of filling a channel nobody drains.
func TestSendToDeadRankFailsFast(t *testing.T) {
	w := NewWorld(2, nil)
	w.DeclareDead(1)
	err := w.RunErr(func(p *Proc) {
		for i := 0; i < 10_000; i++ { // far beyond any channel buffer
			p.Send(1, []float32{1})
		}
	})
	if err == nil {
		t.Fatal("expected send to dead rank to fail")
	}
	rf, ok := err.Failures[0].Err.(RankFailure)
	if !ok || rf.Rank != 1 {
		t.Fatalf("want RankFailure{1}, got %v", err.Failures[0].Err)
	}
}

// TestResetRevivesObserversAndDropsStaleMessages: after an aborted
// collective, Reset revives the cascade victims (but not the root), and
// the survivors can run a clean new collective with no stale payloads.
func TestResetRevivesObserversAndDropsStaleMessages(t *testing.T) {
	w := NewWorld(4, nil)
	err := w.RunErr(func(p *Proc) {
		switch p.Rank() {
		case 0:
			// Stale payload a retry must never observe.
			p.Send(1, []float32{999})
			panic("root failure")
		case 1:
			p.Recv(3) // blocks forever -> cascade
		case 3:
			p.Recv(0) // blocks on the dying rank -> cascade
		}
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if roots := err.Roots(); len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}

	w.Reset()
	alive := w.AliveRanks()
	if len(alive) != 3 || alive[0] != 1 || alive[1] != 2 || alive[2] != 3 {
		t.Fatalf("alive after Reset = %v, want [1 2 3]", alive)
	}
	// Survivors exchange cleanly; rank 1 must see the fresh payload, not
	// the stale pre-failure one.
	if err := w.RunErr(func(p *Proc) {
		switch p.Rank() {
		case 3:
			p.Send(1, []float32{7})
		case 1:
			buf := make([]float32, 1)
			p.RecvInto(3, buf)
			if buf[0] != 7 {
				panic("received a stale payload")
			}
		}
	}); err != nil {
		t.Fatalf("survivor run failed: %v", err)
	}
}

// TestTimeBaseAnchorsClocks: SetTimeBase moves where fresh Proc clocks
// start, making fail-at deadlines continuous across Runs.
func TestTimeBaseAnchorsClocks(t *testing.T) {
	model := simnet.Uniform(2, 0, 0)
	model.Faults = &simnet.Faults{FailAtSeconds: map[int]float64{1: 10}}
	w := NewWorld(2, model)

	w.SetTimeBase(4)
	if err := w.RunErr(func(p *Proc) {
		if p.Clock() != 4 {
			panic("clock not anchored at the time base")
		}
		p.Compute(3) // rank 1 at 7s: below the 10s deadline
	}); err != nil {
		t.Fatalf("first run failed: %v", err)
	}

	w.SetTimeBase(8)
	err := w.RunErr(func(p *Proc) {
		p.Compute(3) // rank 1 crosses 10s on the continuous timeline
	})
	if err == nil {
		t.Fatal("expected the deadline to fire on the continued timeline")
	}
	if roots := err.Roots(); len(roots) != 1 || roots[0] != 1 {
		t.Fatalf("roots = %v, want [1]", roots)
	}
}

// TestDeadRankSkippedByRun: a rank dead before Run never executes its
// body.
func TestDeadRankSkippedByRun(t *testing.T) {
	w := NewWorld(3, nil)
	w.DeclareDead(2)
	ran := make([]bool, 3)
	if err := w.RunErr(func(p *Proc) { ran[p.Rank()] = true }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !ran[0] || !ran[1] || ran[2] {
		t.Fatalf("ran = %v, want [true true false]", ran)
	}
}

// TestFaultsComputeScaleDeterministic pins the jitter model: pure in
// (rank, step, seed), bounded by the amplitude, and varying across
// steps.
func TestFaultsComputeScaleDeterministic(t *testing.T) {
	f := &simnet.Faults{SkewFactors: []float64{1, 1.5}, Jitter: 0.1, JitterSeed: 3}
	varied := false
	for step := 0; step < 64; step++ {
		a := f.ComputeScale(1, step)
		if a != f.ComputeScale(1, step) {
			t.Fatal("jitter is not deterministic")
		}
		if a < 1.5*0.9-1e-12 || a > 1.5*1.1+1e-12 {
			t.Fatalf("scale %v outside the skew±jitter envelope", a)
		}
		if math.Abs(a-1.5) > 1e-9 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved the scale")
	}
	if (*simnet.Faults)(nil).ComputeScale(0, 0) != 1 {
		t.Fatal("nil Faults must be nominal")
	}
}

// TestBlockedSenderUnblocksOnReceiverDeath: a sender parked on a FULL
// channel buffer (the receiver stopped draining) must unblock with a
// RankFailure when the receiver dies — the alive check at enqueue time
// alone cannot cover a death that happens while the sender is parked.
func TestBlockedSenderUnblocksOnReceiverDeath(t *testing.T) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			panic("comm: blocked sender never unblocked on receiver death")
		}
	}()
	defer close(done)

	w := NewWorld(2, nil)
	full := make(chan struct{})
	err := w.RunErr(func(p *Proc) {
		if p.Rank() == 0 {
			buf := []float32{1}
			for i := 0; i < defaultPlaneCap; i++ {
				p.Send(1, buf)
			}
			close(full)
			p.Send(1, buf) // parks on the full buffer until rank 1 dies
			return
		}
		<-full
		panic("receiver dies with a full inbox")
	})
	if err == nil {
		t.Fatal("expected failures")
	}
	if roots := err.Roots(); len(roots) != 1 || roots[0] != 1 {
		t.Fatalf("roots = %v, want [1]", roots)
	}
	if !err.Observed(0) {
		t.Fatalf("parked sender should have died observing rank 1: %v", err)
	}
}
