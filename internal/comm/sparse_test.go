package comm

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/simnet"
)

// The sparse-fabric lifecycle: links materialize on first touch, are
// recycled through the free list on Reset, and the failure machinery
// holds on pairs that have never carried a message.

func TestLinkCreatedLazilyOnFirstSend(t *testing.T) {
	w := NewWorld(8, nil)
	for r := 0; r < 8; r++ {
		if w.plane0.rows[r].Load() != nil {
			t.Fatalf("rank %d has a link row before any traffic", r)
		}
	}
	p0, p1 := w.Proc(0), w.Proc(1)
	p0.Send(1, []float32{1, 2, 3})
	row := w.plane0.rows[0].Load()
	if row == nil || row.links[1].Load() == nil {
		t.Fatal("send did not materialize the 0->1 link")
	}
	for d := 0; d < 8; d++ {
		if d != 1 && row.links[d].Load() != nil {
			t.Fatalf("0->%d link exists without traffic", d)
		}
	}
	for r := 1; r < 8; r++ {
		if w.plane0.rows[r].Load() != nil {
			t.Fatalf("rank %d grew a row without sending or receiving", r)
		}
	}
	got := p1.Recv(0)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("recv through lazily-created link = %v", got)
	}
	// The receive resolves the same link, not a duplicate.
	if w.plane0.rows[0].Load() != row {
		t.Fatal("receive replaced the sender's row")
	}
}

func TestResetRecyclesLinksThroughFreeList(t *testing.T) {
	w := NewWorld(4, nil)
	p0 := w.Proc(0)
	p0.Send(1, []float32{1})
	p0.Send(2, []float32{2}) // left queued: Reset must drop it
	l1 := w.plane0.rows[0].Load().links[1].Load()
	l2 := w.plane0.rows[0].Load().links[2].Load()
	w.Proc(1).Recv(0)

	w.Reset()
	if row := w.plane0.rows[0].Load(); row.links[1].Load() != nil || row.links[2].Load() != nil {
		t.Fatal("Reset left links attached to the plane")
	}
	if got := len(w.linkFree[defaultPlaneCap]); got != 2 {
		t.Fatalf("free list holds %d links after Reset, want 2", got)
	}
	if len(l2.ch) != 0 {
		t.Fatalf("recycled link still holds %d undrained messages", len(l2.ch))
	}

	// The next collective reuses the recycled channels instead of
	// growing the fabric: both links come back out of the free list.
	p0 = w.Proc(0)
	p0.Send(1, []float32{3})
	p0.Send(2, []float32{4})
	r1 := w.plane0.rows[0].Load().links[1].Load()
	r2 := w.plane0.rows[0].Load().links[2].Load()
	if (r1 != l1 && r1 != l2) || (r2 != l1 && r2 != l2) || r1 == r2 {
		t.Fatal("re-created links were not recycled from the free list")
	}
	if len(w.linkFree[defaultPlaneCap]) != 0 {
		t.Fatal("free list not drained by link re-creation")
	}
	if got := w.Proc(2).Recv(0); got[0] != 4 {
		t.Fatalf("recycled link delivered %v, want the post-Reset payload 4", got)
	}
}

// TestDeadRankUnblocksParkedSenderOnFreshLink pins the interaction of
// the death latch with lazy link creation: a sender that materializes a
// pair the dead rank never touched — and then parks because the buffer
// filled — must still unblock with a typed RankFailure when the
// receiver dies. (The latch used to be armed by the receiver's side of
// a dense matrix; on the sparse fabric the guarded send path must work
// on a link the receiver has never seen.)
func TestDeadRankUnblocksParkedSenderOnFreshLink(t *testing.T) {
	w := NewWorld(2, nil)
	p0 := w.Proc(0)
	parked := make(chan struct{})
	failed := make(chan any, 1)
	go func() {
		defer func() { failed <- recover() }()
		buf := []float32{1}
		for i := 0; i < defaultPlaneCap; i++ {
			p0.Send(1, buf)
		}
		close(parked) // channel full: the next send blocks
		p0.Send(1, buf)
	}()
	<-parked
	time.Sleep(2 * time.Millisecond) // let the sender reach the parked select
	w.DeclareDead(1)
	select {
	case e := <-failed:
		if rf, ok := e.(RankFailure); !ok || rf.Rank != 1 {
			t.Fatalf("parked sender unwound with %v, want RankFailure{1}", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked sender still blocked after the receiver died")
	}
}

// TestWorldConstructionIsSparse pins the O(size) construction property:
// a 1024-rank World must come up without allocating any per-pair state
// (the dense fabric it replaces allocated 3 million channels here).
func TestWorldConstructionIsSparse(t *testing.T) {
	w := NewWorld(1024, simnet.TCP40Racked(1024, 8))
	for r := 0; r < 1024; r++ {
		if w.plane0.rows[r].Load() != nil {
			t.Fatalf("rank %d has pre-allocated links", r)
		}
	}
	if w.Size() != 1024 {
		t.Fatalf("size = %d", w.Size())
	}
}

// TestMaxClockAndWireBytesInvariantUnderGOMAXPROCS is the comm-level
// half of the parallel-execution determinism argument: simulated time
// and the sharded wire-byte meter are pure functions of the
// message-passing program, so a 256-rank butterfly exchange on the
// racked cost model must produce bit-identical MaxClock and WireBytes
// at GOMAXPROCS=1 and at a wide setting. (The trainer holds the
// end-to-end bitwise pin across Scope x Comm x codec; see
// internal/trainer.)
func TestMaxClockAndWireBytesInvariantUnderGOMAXPROCS(t *testing.T) {
	const ranks = 256
	run := func() (float64, int64) {
		w := NewWorld(ranks, simnet.TCP40Racked(ranks, 8))
		sec := MaxClock(w, func(p *Proc) {
			buf := make([]float32, 512)
			for i := range buf {
				buf[i] = float32(p.Rank() + i)
			}
			for shift := 1; shift < ranks; shift <<= 1 {
				got := p.SendRecv(p.Rank()^shift, buf)
				for i := range buf {
					buf[i] += got[i]
				}
				p.Release(got)
				p.ComputeReduce(int64(len(buf)) * 4)
			}
		})
		return sec, w.WireBytes()
	}

	prev := runtime.GOMAXPROCS(1)
	serialSec, serialBytes := run()
	runtime.GOMAXPROCS(4)
	wideSec, wideBytes := run()
	runtime.GOMAXPROCS(prev)

	if serialSec != wideSec {
		t.Fatalf("MaxClock depends on GOMAXPROCS: %v (1P) != %v (4P)", serialSec, wideSec)
	}
	if serialSec <= 0 {
		t.Fatalf("degenerate simulated time %v", serialSec)
	}
	if serialBytes != wideBytes {
		t.Fatalf("WireBytes depends on GOMAXPROCS: %d (1P) != %d (4P)", serialBytes, wideBytes)
	}
	// 8 rounds, 256 ranks, 2048 bytes per send.
	if want := int64(8 * ranks * 512 * 4); serialBytes != want {
		t.Fatalf("WireBytes = %d, want %d", serialBytes, want)
	}
}
