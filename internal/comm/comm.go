// Package comm is the message-passing substrate the collectives run on.
// It plays the role MPI/NCCL play for Horovod: a World of ranks that
// exchange float32 vectors point-to-point. Ranks are goroutines inside
// one process; channels carry the payloads.
//
// Every Proc owns a virtual clock. A message carries the sender's clock
// at send time plus the link cost from the simnet model; Recv advances
// the receiver's clock to max(local, sender departure + transfer). Local
// compute advances the clock explicitly. Because the collective
// algorithms here are deterministic bulk-synchronous programs, this
// conservative virtual-time scheme yields exact critical-path times —
// this is how the reproduction measures "latency" (Figure 4) and
// "throughput" (Tables 2/4) without the paper's hardware.
//
// Channels are buffered so a Send never blocks; matched SendRecv
// exchanges therefore cannot deadlock.
//
// Payload buffers are pooled: Send's defensive copy draws from a
// per-World free list of power-of-two size classes, and receivers can
// hand buffers back with Release/RecvInto, so a steady-state collective
// allocates nothing. The copy semantics (the caller may reuse its slice
// immediately after Send) and the virtual-clock accounting are unchanged
// by pooling.
//
// Compressed payloads ride the same substrate: SendCompressed encodes a
// vector into wire words through a compress.Stream and transmits only
// those, so the transfer cost, the pooled transport buffer and the
// World's wire-byte meter all see the compressed size; RecvCompressed
// decodes on arrival. Encode/decode passes are charged as MemCopy over
// the uncompressed bytes.
//
// Ranks can die — by their own panic or an injected fail-at-virtual-
// time deadline (simnet.Faults) — and the substrate fails fast instead
// of wedging: peers blocked on a dead rank unblock with a typed
// RankFailure, Run aggregates every rank's error into a RunError, and
// Reset readies the survivors for a fresh collective. See failure.go.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/simnet"
)

// message is one point-to-point payload plus its arrival metadata.
type message struct {
	data    []float32
	meta    []float64 // secondary channel for dot-product partials
	ctl     []int     // control-plane payload (communicator construction)
	arrival float64   // sender clock + transfer cost
}

// World is a communicator over a fixed set of ranks.
type World struct {
	size  int
	model *simnet.Model
	// chans[src][dst] is the FIFO from src to dst on the default plane.
	chans [][]chan message
	pool  bufPool

	// wireBytes accumulates the payload bytes of every send on any plane
	// — for compressed sends, the compressed size. It is the byte meter
	// the compression experiments read.
	wireBytes atomic.Int64

	// planes holds the channel matrices of the nonzero planes, created
	// lazily by Launch. Each plane is an independent (src, dst) channel
	// space, so concurrent collectives on different planes cannot
	// interleave messages (see async.go).
	planeMu sync.Mutex
	planes  map[int][][]chan message

	// dead holds the per-rank death latches; failed marks ranks whose
	// failure was a root cause (they stay dead across Reset). failAt is
	// the per-rank injected failure deadline (+Inf = never), snapshotted
	// from the model's Faults. timeBase is where fresh Proc clocks start
	// (see SetTimeBase). See failure.go.
	dead     []deadLatch
	failed   []bool
	failAt   []float64
	timeBase float64
}

// makeChanMatrix builds one (src, dst) matrix of channels buffered to
// the given capacity. Capacity affects only when senders block (virtual
// clocks are carried inside the messages), never the simulated times.
func makeChanMatrix(size, cap int) [][]chan message {
	m := make([][]chan message, size)
	for s := range m {
		m[s] = make([]chan message, size)
		for d := range m[s] {
			m[s][d] = make(chan message, cap)
		}
	}
	return m
}

// defaultPlaneCap is the per-(src, dst) buffering of the default plane.
// The collectives alternate sends with receives, so per-pair skew stays
// small; 64 slots is an order of magnitude of headroom. The old
// 1024-slot matrix allocated size² × 1024 message slots up front, which
// at 256 ranks exceeded the 32-bit address space (the GOARCH=386 CI
// leg) before a single payload moved. Capacity affects only when
// senders block, never the simulated times.
const defaultPlaneCap = 64

// NewWorld creates a communicator of the given size using the cost model
// for clock accounting. model may be nil, in which case all communication
// is free (pure correctness mode).
func NewWorld(size int, model *simnet.Model) *World {
	if size <= 0 {
		panic("comm: world size must be positive")
	}
	w := &World{size: size, model: model}
	w.chans = makeChanMatrix(size, defaultPlaneCap)
	w.pool.init()
	w.dead = newLatches(size)
	w.failed = make([]bool, size)
	w.failAt = make([]float64, size)
	for r := range w.failAt {
		var f *simnet.Faults
		if model != nil {
			f = model.Faults
		}
		w.failAt[r] = f.FailAt(r)
	}
	return w
}

// plane returns the channel matrix of the given plane id, creating it on
// first use. Plane 0 is the default matrix every Proc starts on.
func (w *World) plane(id int) [][]chan message {
	if id == 0 {
		return w.chans
	}
	w.planeMu.Lock()
	defer w.planeMu.Unlock()
	if w.planes == nil {
		w.planes = make(map[int][][]chan message)
	}
	m, ok := w.planes[id]
	if !ok {
		// A plane carries one collective at a time, and collectives
		// alternate sends with receives, so a handful of slots per
		// (src, dst) pair suffices; a full-size buffer per plane would
		// cost ~size² × 1024 messages of idle capacity per bucket.
		m = makeChanMatrix(w.size, 16)
		w.planes[id] = m
	}
	return m
}

// bufPool is a free list of payload buffers in power-of-two size classes,
// shared by all ranks of a World. Buffers enter the pool through
// Proc.Release/RecvInto and leave through Send's defensive copy and
// Proc.Scratch, so a steady-state collective recycles a small working set
// instead of allocating per message.
type bufPool struct {
	f32 freeList[float32]
	f64 freeList[float64]
}

func (bp *bufPool) init() {
	bp.f32.init()
	bp.f64.init()
}

func (bp *bufPool) getF32(n int) []float32 { return bp.f32.get(n) }
func (bp *bufPool) putF32(b []float32)     { bp.f32.put(b) }
func (bp *bufPool) getF64(n int) []float64 { return bp.f64.get(n) }
func (bp *bufPool) putF64(b []float64)     { bp.f64.put(b) }

// freeList recycles slices of one element type in power-of-two size
// classes under a mutex. It remembers which backing arrays it minted, so
// putting a foreign slice (caller-owned memory) is a guaranteed no-op
// rather than a source of cross-rank aliasing. The minted set is bounded
// by the pool's high-water working set because buffers are reused; it
// does pin buffers that escape to callers (e.g. Gather results) for the
// World's lifetime, which matches the pool's own retention behavior.
type freeList[T any] struct {
	mu      sync.Mutex
	buckets map[uint][][]T
	minted  map[*T]bool
}

func (f *freeList[T]) init() {
	f.buckets = make(map[uint][][]T)
	f.minted = make(map[*T]bool)
}

// sizeClass returns ceil(log2(n)) so that 1<<sizeClass(n) >= n.
func sizeClass(n int) uint {
	c := uint(0)
	for 1<<c < n {
		c++
	}
	return c
}

func (f *freeList[T]) get(n int) []T {
	if n == 0 {
		return []T{}
	}
	c := sizeClass(n)
	f.mu.Lock()
	if list := f.buckets[c]; len(list) > 0 {
		buf := list[len(list)-1]
		f.buckets[c] = list[:len(list)-1]
		f.mu.Unlock()
		return buf[:n]
	}
	buf := make([]T, n, 1<<c)
	f.minted[&buf[:1][0]] = true
	f.mu.Unlock()
	return buf
}

func (f *freeList[T]) put(b []T) {
	if cap(b) == 0 {
		return
	}
	key := &b[:1][0] // first element of the backing array (cap >= 1)
	f.mu.Lock()
	if f.minted[key] {
		f.buckets[sizeClass(cap(b))] = append(f.buckets[sizeClass(cap(b))], b[:0])
	}
	f.mu.Unlock()
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// WireBytes returns the total payload bytes sent so far across all ranks
// and planes — compressed sends count their compressed size.
func (w *World) WireBytes() int64 { return w.wireBytes.Load() }

// ResetWireBytes zeroes the wire-byte meter (between sweep arms).
func (w *World) ResetWireBytes() { w.wireBytes.Store(0) }

// Proc returns the handle rank r uses to communicate. Each rank must use
// its own Proc from a single goroutine.
func (w *World) Proc(r int) *Proc {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, w.size))
	}
	return &Proc{world: w, rank: r, clock: w.timeBase, failAt: w.failAt[r], chans: w.chans}
}

// transferCost returns the simulated seconds to move n float32s (plus a
// small float64 side payload) from src to dst. The byte arithmetic is
// int64 so >2 GiB payloads cannot overflow on 32-bit builds.
func (w *World) transferCost(src, dst, nFloats, nMeta int) float64 {
	if w.model == nil {
		return 0
	}
	return w.model.Transfer(src, dst, int64(nFloats)*4+int64(nMeta)*8)
}

// Proc is one rank's endpoint: its identity, its channels, and its
// virtual clock. A Proc obtained from World.Proc communicates on the
// default plane; Launch binds a clone to a private plane so asynchronous
// collectives cannot interleave with foreground traffic.
type Proc struct {
	world *World
	rank  int
	clock float64
	// failAt is this rank's injected failure deadline in virtual
	// seconds (+Inf when the rank never fails); every clock advance
	// checks it.
	failAt float64
	// chans is the channel matrix of this Proc's plane.
	chans [][]chan message
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// Model returns the cost model, or nil in free mode.
func (p *Proc) Model() *simnet.Model { return p.world.model }

// Clock returns the current virtual time of this rank in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// SetClock overrides the virtual time (used by harnesses that account
// compute outside the comm layer).
func (p *Proc) SetClock(t float64) { p.clock = t }

// Compute advances this rank's clock by dt seconds of local work,
// failing the rank if the advance crosses its injected deadline.
func (p *Proc) Compute(dt float64) {
	p.clock += dt
	p.maybeFail()
}

// ComputeReduce advances the clock by the model cost of reducing n bytes.
func (p *Proc) ComputeReduce(bytes int64) {
	if m := p.world.model; m != nil {
		p.Compute(m.Reduce(bytes))
	}
}

// ComputeMemCopy advances the clock by the model cost of copying n bytes.
func (p *Proc) ComputeMemCopy(bytes int64) {
	if m := p.world.model; m != nil {
		p.Compute(m.MemCopy(bytes))
	}
}

// Send transmits data to rank dst. The slice is copied, so the caller may
// reuse it immediately.
func (p *Proc) Send(dst int, data []float32) {
	p.send(dst, data, nil)
}

// SendMeta transmits a float64 side payload (dot-product partials) to dst.
func (p *Proc) SendMeta(dst int, meta []float64) {
	p.send(dst, nil, meta)
}

func (p *Proc) send(dst int, data []float32, meta []float64) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	var dc []float32
	if data != nil {
		dc = p.world.pool.getF32(len(data))
		copy(dc, data)
	}
	var mc []float64
	if meta != nil {
		mc = p.world.pool.getF64(len(meta))
		copy(mc, meta)
	}
	cost := p.world.transferCost(p.rank, dst, len(data), len(meta))
	p.world.wireBytes.Add(int64(len(data))*4 + int64(len(meta))*8)
	p.deliver(dst, message{data: dc, meta: mc, arrival: p.clock + cost})
}

// deliver enqueues msg to dst, unblocking with a RankFailure if dst is
// (or becomes) dead while the channel buffer is full — without this, a
// sender that ran far enough ahead to fill the buffer would park on the
// channel send forever once the receiver died, re-creating the wedge
// the death latches exist to remove. The healthy steady state pays one
// non-blocking attempt.
func (p *Proc) deliver(dst int, msg message) {
	ch := p.chans[p.rank][dst]
	select {
	case ch <- msg:
		return
	default:
	}
	select {
	case ch <- msg:
	case <-p.world.dead[dst].ch:
		panic(RankFailure{Rank: dst})
	}
}

// sendOwned transmits a pool-owned buffer without the defensive copy;
// ownership moves to the receiver (who recycles it via Recv/Release as
// usual), so the caller must not touch buf afterwards.
func (p *Proc) sendOwned(dst int, buf []float32) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	cost := p.world.transferCost(p.rank, dst, len(buf), 0)
	p.world.wireBytes.Add(int64(len(buf)) * 4)
	p.deliver(dst, message{data: buf, arrival: p.clock + cost})
}

// SendCompressed encodes data through st and transmits only the wire
// words: the virtual clock's transfer cost, the wire-byte meter and the
// pooled transport buffer all see the compressed payload, which is how
// on-the-wire compression earns its simulated speedup. The encode pass
// is charged to the sender as a MemCopy over the uncompressed bytes. st
// carries the codec and, for error-feedback codecs, the per-site
// residual state; a None stream degrades to a plain Send so the
// uncompressed paths stay bitwise- and clock-identical.
func (p *Proc) SendCompressed(dst int, data []float32, st *compress.Stream) {
	if st == nil || compress.IsNone(st.Codec()) {
		p.Send(dst, data)
		return
	}
	c := st.Codec()
	enc := p.world.pool.getF32(c.EncodedLen(len(data)))
	st.Encode(enc, data)
	p.ComputeMemCopy(int64(len(data)) * 4)
	p.sendOwned(dst, enc)
}

// RecvCompressed receives a compressed payload from src and decodes it
// into dst, the caller's full-size destination, advancing the clock to
// the arrival time and charging the decode pass as a MemCopy over the
// uncompressed bytes. With a None codec (or nil) it degrades to
// RecvInto.
func (p *Proc) RecvCompressed(src int, c compress.Codec, dst []float32) {
	if compress.IsNone(c) {
		p.RecvInto(src, dst)
		return
	}
	enc, _ := p.recv(src)
	if len(enc) != c.EncodedLen(len(dst)) {
		panic(fmt.Sprintf("comm: RecvCompressed payload %d words, want %d for %d floats",
			len(enc), c.EncodedLen(len(dst)), len(dst)))
	}
	c.Decode(dst, enc)
	p.world.pool.putF32(enc)
	p.ComputeMemCopy(int64(len(dst)) * 4)
}

// SendCtl transmits a control-plane payload to dst. Control traffic is
// communicator-construction metadata (the color/key exchange of a
// Split), the kind of out-of-band setup real stacks do once when a
// communicator is created, not per collective — so it is charged to
// neither the virtual clock nor the wire-byte meter, and its buffers
// are not pooled (construction is not a steady-state path).
func (p *Proc) SendCtl(dst int, vals []int) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	c := make([]int, len(vals))
	copy(c, vals)
	p.deliver(dst, message{ctl: c})
}

// RecvCtl receives a control-plane payload from src without touching
// the virtual clock. Control and data traffic share the per-(src, dst)
// FIFO, so a deterministic program that matches every SendCtl with a
// RecvCtl at the same point on both ranks cannot cross the streams; a
// mismatch panics rather than silently interpreting bits.
func (p *Proc) RecvCtl(src int) []int {
	msg := p.recvMsg(src)
	if msg.ctl == nil {
		panic("comm: RecvCtl received a data message (control/data ordering mismatch)")
	}
	return msg.ctl
}

// Recv blocks until a message from src arrives and returns its payload,
// advancing the virtual clock to the arrival time. The returned buffer is
// owned by the caller; handing it back with Release once consumed lets
// the World recycle it.
func (p *Proc) Recv(src int) []float32 {
	d, _ := p.recv(src)
	return d
}

// RecvInto receives from src directly into dst, which must match the
// incoming payload length, and recycles the transport buffer. It is the
// zero-allocation receive for callers assembling into preallocated
// vectors (allgather unwinds, broadcasts).
func (p *Proc) RecvInto(src int, dst []float32) {
	d, _ := p.recv(src)
	if len(d) != len(dst) {
		panic(fmt.Sprintf("comm: RecvInto length mismatch: got %d, dst %d", len(d), len(dst)))
	}
	copy(dst, d)
	p.world.pool.putF32(d)
}

// RecvMeta receives a float64 side payload from src. As with Recv, the
// buffer can be handed back with ReleaseMeta.
func (p *Proc) RecvMeta(src int) []float64 {
	_, m := p.recv(src)
	return m
}

// Release returns a buffer obtained from Recv or Scratch to the World's
// pool. The pool may hand its memory to another rank at any time
// afterwards, so the caller must be completely done with buf (releasing
// a buffer that is still read elsewhere is an aliasing bug). Slices the
// pool did not mint are recognized and ignored, so a stray Release of
// caller-owned memory cannot corrupt anything.
func (p *Proc) Release(buf []float32) { p.world.pool.putF32(buf) }

// ReleaseMeta returns a buffer obtained from RecvMeta or ScratchMeta to
// the World's pool, under the same ownership contract as Release.
func (p *Proc) ReleaseMeta(meta []float64) { p.world.pool.putF64(meta) }

// Scratch returns a pooled float32 buffer of length n with unspecified
// contents. Return it with Release when done.
func (p *Proc) Scratch(n int) []float32 { return p.world.pool.getF32(n) }

// ScratchMeta returns a pooled float64 buffer of length n with
// unspecified contents. Return it with ReleaseMeta when done.
func (p *Proc) ScratchMeta(n int) []float64 { return p.world.pool.getF64(n) }

// recvMsg pulls the next message from src, unblocking with a typed
// RankFailure if src is (or becomes) dead. A payload already in flight
// before the death is still delivered — the fast non-blocking path also
// keeps the healthy steady state at one cheap poll per receive.
func (p *Proc) recvMsg(src int) message {
	ch := p.chans[src][p.rank]
	select {
	case msg := <-ch:
		return msg
	default:
	}
	select {
	case msg := <-ch:
		return msg
	case <-p.world.dead[src].ch:
		// The close of the latch happens after every pre-death send, so
		// one more poll drains any payload that beat the failure.
		select {
		case msg := <-ch:
			return msg
		default:
		}
		panic(RankFailure{Rank: src})
	}
}

func (p *Proc) recv(src int) ([]float32, []float64) {
	msg := p.recvMsg(src)
	if msg.ctl != nil {
		panic("comm: data receive got a control message (control/data ordering mismatch)")
	}
	if msg.arrival > p.clock {
		p.clock = msg.arrival
		p.maybeFail()
	}
	return msg.data, msg.meta
}

// SendRecv exchanges vectors with a peer: sends sendBuf, receives and
// returns the peer's vector. Both sides must call it with each other as
// peer.
func (p *Proc) SendRecv(peer int, sendBuf []float32) []float32 {
	p.Send(peer, sendBuf)
	return p.Recv(peer)
}

// SendRecvMeta exchanges float64 side payloads with a peer.
func (p *Proc) SendRecvMeta(peer int, sendBuf []float64) []float64 {
	p.SendMeta(peer, sendBuf)
	return p.RecvMeta(peer)
}

// Run spawns one goroutine per alive rank executing body and waits for
// all of them. Per-rank panics are re-raised on the caller as a
// *RunError carrying every rank's failure with rank context — a rank
// that panics also marks itself dead, so peers blocked in Recv on it
// unblock with a RankFailure instead of wedging wg.Wait forever.
func (w *World) Run(body func(p *Proc)) {
	if err := w.RunErr(body); err != nil {
		panic(err)
	}
}

// RunErr is Run returning the aggregate failure instead of panicking —
// the entry point for elastic callers that rebuild on survivors. nil
// means every alive rank completed. Ranks already dead when RunErr is
// called are skipped entirely (their body never runs).
func (w *World) RunErr(body func(p *Proc)) *RunError {
	var wg sync.WaitGroup
	errs := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		if !w.Alive(r) {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs[rank] = e
					// Unblock everyone parked on this rank; without this
					// a single panicking rank deadlocked the whole Run.
					w.markDead(rank)
				}
			}()
			p := w.Proc(rank)
			// A time base already past the deadline kills the rank
			// before it does any work.
			p.maybeFail()
			body(p)
		}(r)
	}
	wg.Wait()
	var fails []RankError
	for r, e := range errs {
		if e != nil {
			fails = append(fails, RankError{Rank: r, Err: e})
		}
	}
	if fails == nil {
		return nil
	}
	err := &RunError{Failures: fails}
	// Root causes stay dead across Reset; observers get revived.
	for _, r := range err.Roots() {
		w.failed[r] = true
	}
	return err
}

// RunCollect runs body on every rank and returns the per-rank results.
func RunCollect[T any](w *World, body func(p *Proc) T) []T {
	out := make([]T, w.size)
	w.Run(func(p *Proc) {
		out[p.Rank()] = body(p)
	})
	return out
}

// MaxClock runs body on every rank and returns the largest final virtual
// clock — the simulated wall-clock completion time of the collective.
func MaxClock(w *World, body func(p *Proc)) float64 {
	clocks := RunCollect(w, func(p *Proc) float64 {
		body(p)
		return p.Clock()
	})
	var m float64
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}
