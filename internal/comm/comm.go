// Package comm is the message-passing substrate the collectives run on.
// It plays the role MPI/NCCL play for Horovod: a World of ranks that
// exchange float32 vectors point-to-point. Ranks are goroutines inside
// one process; channels carry the payloads.
//
// Every Proc owns a virtual clock. A message carries the sender's clock
// at send time plus the link cost from the simnet model; Recv advances
// the receiver's clock to max(local, sender departure + transfer). Local
// compute advances the clock explicitly. Because the collective
// algorithms here are deterministic bulk-synchronous programs, this
// conservative virtual-time scheme yields exact critical-path times —
// this is how the reproduction measures "latency" (Figure 4) and
// "throughput" (Tables 2/4) without the paper's hardware.
//
// The fabric is sparse: a (src, dst) link — one buffered channel — is
// created the first time either endpoint touches the pair and recycled
// through a free list on Reset, so a World's memory is proportional to
// the communication graph actually used (tree/RVH/ring/hierarchical
// traffic touches O(n log n) pairs), not to size². That is what makes
// 1024-rank Worlds constructible in milliseconds where the old dense
// channel matrix allocated size² buffers up front. Channels are buffered
// so a Send never blocks in the healthy steady state; matched SendRecv
// exchanges therefore cannot deadlock.
//
// The substrate is also built to scale across GOMAXPROCS: the only
// cross-rank shared state on the hot path — the payload-buffer pool and
// the wire-byte meter — is sharded per rank and merged on read, so rank
// goroutines never serialize on a global lock or a contended cache
// line. Virtual time needs no such sharding: each Proc's clock is
// already private, and clocks meet only through message arrival stamps
// and explicit joins (Handle.Wait, MaxClock), so simulated times are a
// pure function of the message-passing program, identical at any
// GOMAXPROCS.
//
// Payload buffers are pooled: Send's defensive copy draws from the
// sending rank's shard of a per-World free list of power-of-two size
// classes, and receivers can hand buffers back with Release/RecvInto, so
// a steady-state collective allocates nothing. The copy semantics (the
// caller may reuse its slice immediately after Send) and the
// virtual-clock accounting are unchanged by pooling.
//
// Compressed payloads ride the same substrate: SendCompressed encodes a
// vector into wire words through a compress.Stream and transmits only
// those, so the transfer cost, the pooled transport buffer and the
// World's wire-byte meter all see the compressed size; RecvCompressed
// decodes on arrival. Encode/decode passes are charged as MemCopy over
// the uncompressed bytes.
//
// Ranks can die — by their own panic or an injected fail-at-virtual-
// time deadline (simnet.Faults) — and the substrate fails fast instead
// of wedging: peers blocked on a dead rank unblock with a typed
// RankFailure, Run aggregates every rank's error into a RunError, and
// Reset readies the survivors for a fresh collective. See failure.go.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/simnet"
)

// message is one point-to-point payload plus its arrival metadata.
type message struct {
	data    []float32
	meta    []float64 // secondary channel for dot-product partials
	ctl     []int     // control-plane payload (communicator construction)
	arrival float64   // sender clock + transfer cost
}

// link is one directed (src, dst) FIFO, created on first use and
// recycled through the World's free list on Reset. cap is remembered so
// a recycled channel returns to a free-list class of the same buffering.
type link struct {
	ch  chan message
	cap int
}

// linkRow holds the outgoing links of one source rank on one plane,
// allocated the first time the source participates in traffic there.
type linkRow struct {
	links []atomic.Pointer[link]
}

// plane is one lazily-populated (src, dst) link space. Each plane is an
// independent channel space, so concurrent collectives on different
// planes cannot interleave messages (see async.go). Lookup is two
// atomic loads on the hot path; creation takes the World's link mutex
// once per (src, dst) pair per plane.
type plane struct {
	world *World
	cap   int // channel buffering of links created on this plane
	rows  []atomic.Pointer[linkRow]
}

// get returns the src→dst link of this plane, creating it on first use.
//
//adasum:noalloc
func (pl *plane) get(src, dst int) *link {
	if row := pl.rows[src].Load(); row != nil {
		if l := row.links[dst].Load(); l != nil {
			return l
		}
	}
	//adasum:alloc ok links materialize (or recycle) once per pair; steady state hits the lock-free loads above
	return pl.create(src, dst)
}

// create allocates (or recycles) the src→dst link under the World's
// link mutex, double-checking against a concurrent creator: sender and
// receiver race to materialize the same pair, and exactly one link must
// win.
func (pl *plane) create(src, dst int) *link {
	w := pl.world
	w.linkMu.Lock()
	defer w.linkMu.Unlock()
	row := pl.rows[src].Load()
	if row == nil {
		row = &linkRow{links: make([]atomic.Pointer[link], len(pl.rows))}
		pl.rows[src].Store(row)
	}
	l := row.links[dst].Load()
	if l == nil {
		l = w.newLinkLocked(pl.cap)
		row.links[dst].Store(l)
	}
	return l
}

// World is a communicator over a fixed set of ranks.
type World struct {
	size  int
	model *simnet.Model
	// plane0 is the default link space every foreground Proc starts on.
	plane0 *plane
	pool   bufPool

	// wire is the per-rank wire-byte meter: every send adds its payload
	// bytes (compressed sends their compressed size) to the sending
	// rank's padded slot, so the accounting scales with the rank
	// goroutines instead of serializing them on one contended cache
	// line. WireBytes merges the shards on read.
	wire []wireMeter

	// planes holds the nonzero planes, created lazily by Launch.
	planeMu sync.Mutex
	planes  map[int]*plane

	// linkMu guards link/row creation on every plane and the free list.
	// Creation is O(pairs touched) per World lifetime — not a
	// steady-state cost.
	linkMu   sync.Mutex
	linkFree map[int][]*link // recycled links by channel capacity

	// procs/errs/wg/runBody are the per-Run working state, reused across
	// Runs so a Run (and therefore a steady-state training step driving
	// one Run per step) allocates nothing. Runs on one World cannot
	// overlap (Run joins before returning), so the shared body slot is
	// safe.
	procs   []Proc
	errs    []any
	wg      sync.WaitGroup
	runBody func(p *Proc)

	// dead holds the per-rank death latches; failed marks ranks whose
	// failure was a root cause (they stay dead across Reset). failAt is
	// the per-rank injected failure deadline (+Inf = never), snapshotted
	// from the model's Faults. timeBase is where fresh Proc clocks start
	// (see SetTimeBase). See failure.go.
	dead     []deadLatch
	failed   []bool
	failAt   []float64
	timeBase float64
}

// wireMeter is one rank's wire-byte counter, padded to its own cache
// line so per-rank accounting cannot false-share. The counter is still
// atomic because a rank's foreground Proc and its async bucket ops send
// concurrently.
type wireMeter struct {
	n atomic.Int64
	_ [56]byte
}

// defaultPlaneCap is the per-(src, dst) buffering of the default plane.
// The collectives alternate sends with receives, so per-pair skew stays
// small; 64 slots is an order of magnitude of headroom. Capacity
// affects only when senders block (virtual clocks are carried inside
// the messages), never the simulated times.
const defaultPlaneCap = 64

// asyncPlaneCap is the buffering of links on the nonzero planes: a
// plane carries one collective at a time, and collectives alternate
// sends with receives, so a handful of slots per pair suffices.
const asyncPlaneCap = 16

// NewWorld creates a communicator of the given size using the cost model
// for clock accounting. model may be nil, in which case all communication
// is free (pure correctness mode). Construction is O(size): no link
// exists until a pair of ranks actually communicates, so even 1024-rank
// Worlds build in well under a millisecond.
func NewWorld(size int, model *simnet.Model) *World {
	if size <= 0 {
		panic("comm: world size must be positive")
	}
	w := &World{size: size, model: model}
	w.plane0 = w.newPlane(defaultPlaneCap)
	w.pool.init(size)
	w.wire = make([]wireMeter, size)
	w.linkFree = make(map[int][]*link)
	w.procs = make([]Proc, size)
	w.errs = make([]any, size)
	w.dead = newLatches(size)
	w.failed = make([]bool, size)
	w.failAt = make([]float64, size)
	for r := range w.failAt {
		var f *simnet.Faults
		if model != nil {
			f = model.Faults
		}
		w.failAt[r] = f.FailAt(r)
	}
	return w
}

// newPlane builds an empty link space for this World.
func (w *World) newPlane(cap int) *plane {
	return &plane{world: w, cap: cap, rows: make([]atomic.Pointer[linkRow], w.size)}
}

// newLinkLocked returns a link with the given buffering, recycling a
// drained one from the free list when available. Caller holds linkMu.
func (w *World) newLinkLocked(cap int) *link {
	if free := w.linkFree[cap]; len(free) > 0 {
		l := free[len(free)-1]
		w.linkFree[cap] = free[:len(free)-1]
		return l
	}
	return &link{ch: make(chan message, cap), cap: cap}
}

// recycleLinksLocked drains every link of pl and pushes it onto the
// free list, clearing the plane's pointers. Dropped messages are not
// returned to the pool (an abort is not a steady-state path). Caller
// holds linkMu.
func (w *World) recycleLinksLocked(pl *plane) {
	for s := range pl.rows {
		row := pl.rows[s].Load()
		if row == nil {
			continue
		}
		for d := range row.links {
			l := row.links[d].Load()
			if l == nil {
				continue
			}
			for drained := false; !drained; {
				select {
				case <-l.ch:
				default:
					drained = true
				}
			}
			w.linkFree[l.cap] = append(w.linkFree[l.cap], l)
			row.links[d].Store(nil)
		}
	}
}

// plane returns the link space of the given plane id, creating it on
// first use. Plane 0 is the default space every Proc starts on.
func (w *World) plane(id int) *plane {
	if id == 0 {
		return w.plane0
	}
	w.planeMu.Lock()
	defer w.planeMu.Unlock()
	if w.planes == nil {
		w.planes = make(map[int]*plane) //adasum:alloc ok plane table minted once per World
	}
	pl, ok := w.planes[id]
	if !ok {
		//adasum:alloc ok planes mint once per id and are cached for the World's lifetime
		pl = w.newPlane(asyncPlaneCap)
		w.planes[id] = pl
	}
	return pl
}

// bufPool is a free list of payload buffers in power-of-two size
// classes, sharded per rank: get and put touch only the calling rank's
// shard, so buffer recycling never serializes distinct ranks. Buffers
// enter the pool through Proc.Release/RecvInto and leave through Send's
// defensive copy and Proc.Scratch; a buffer minted by one rank and
// released by another simply migrates shards.
type bufPool struct {
	f32 freeList[float32]
	f64 freeList[float64]
}

func (bp *bufPool) init(shards int) {
	bp.f32.init(shards)
	bp.f64.init(shards)
}

func (bp *bufPool) getF32(shard, n int) []float32 { return bp.f32.get(shard, n) }
func (bp *bufPool) putF32(shard int, b []float32) { bp.f32.put(shard, b) }
func (bp *bufPool) getF64(shard, n int) []float64 { return bp.f64.get(shard, n) }
func (bp *bufPool) putF64(shard int, b []float64) { bp.f64.put(shard, b) }

// freeList recycles slices of one element type in power-of-two size
// classes, one shard (and one mutex) per rank. It remembers which
// backing arrays it minted — and which shard minted them — in a
// lock-free-on-read sync.Map shared by all shards, so putting a
// foreign slice (caller-owned memory) is a guaranteed no-op rather
// than a source of cross-rank aliasing. A released buffer normally
// returns to the RELEASING rank's shard — in symmetric traffic (ring,
// RVH) the very next get on that rank pops the cache-hot buffer it
// just copied out of, matching a per-rank LIFO. But a shard keeps at
// most foreignKeep foreign buffers per size class; beyond that, put
// routes the buffer back to its MINTING shard. Without the cap,
// root-asymmetric traffic (a Gather root releasing 15 senders'
// transport buffers every round) would pile every buffer onto the
// root's shard while the senders re-mint forever — an allocation
// leak that also grows the minted set without bound. The cap bounds
// each shard's foreign inventory, so the minted set is bounded by
// the pool's high-water working set; buffers that escape to callers
// (e.g. Gather results) stay pinned in the minted map for the
// World's lifetime, which matches the pool's own retention behavior.
type freeList[T any] struct {
	shards []freeShard[T]
	minted sync.Map // *T (first element of a minted backing array) -> home shard int
}

// foreignKeep is how many buffers of one size class a shard will hold
// onto beyond the point where overflow starts routing home. Small: it
// only needs to cover the steady-state ping-pong depth of symmetric
// exchanges so the hot path stays shard-local.
const foreignKeep = 4

// freeShard is one rank's free list, padded so neighboring shards do
// not share a cache line.
type freeShard[T any] struct {
	mu      sync.Mutex
	buckets map[uint][][]T
	_       [40]byte
}

func (f *freeList[T]) init(shards int) {
	f.shards = make([]freeShard[T], shards)
	for i := range f.shards {
		f.shards[i].buckets = make(map[uint][][]T)
	}
}

// sizeClass returns ceil(log2(n)) so that 1<<sizeClass(n) >= n.
func sizeClass(n int) uint {
	c := uint(0)
	for 1<<c < n {
		c++
	}
	return c
}

//adasum:noalloc
func (f *freeList[T]) get(shard, n int) []T {
	if n == 0 {
		return []T{} //adasum:alloc ok zero-length literal points at the runtime zerobase, no heap allocation
	}
	c := sizeClass(n)
	s := &f.shards[shard]
	s.mu.Lock()
	if list := s.buckets[c]; len(list) > 0 {
		buf := list[len(list)-1]
		s.buckets[c] = list[:len(list)-1]
		s.mu.Unlock()
		return buf[:n]
	}
	s.mu.Unlock()
	buf := make([]T, n, 1<<c)          //adasum:alloc ok pool miss mints; steady state recycles (0 allocs/op bench-pinned)
	f.minted.Store(&buf[:1][0], shard) //adasum:alloc ok mint-path bookkeeping, off the recycle fast path
	return buf
}

// put recycles b into the releasing rank's shard while that shard's
// bucket is shallow (the cache-hot fast path), overflowing to the
// minting shard once foreignKeep buffers of the class are already
// held. Foreign slices (not minted by this pool) are ignored.
//
//adasum:noalloc
func (f *freeList[T]) put(shard int, b []T) {
	if cap(b) == 0 {
		return
	}
	key := &b[:1][0] // first element of the backing array (cap >= 1)
	home, ok := f.minted.Load(key)
	if !ok {
		return
	}
	c := sizeClass(cap(b))
	s := &f.shards[shard]
	if h := home.(int); h != shard {
		s.mu.Lock()
		if len(s.buckets[c]) < foreignKeep {
			s.buckets[c] = append(s.buckets[c], b[:0]) //adasum:alloc ok bucket growth is bounded warmup; ping-pong depth is fixed in steady state
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s = &f.shards[h]
	}
	s.mu.Lock()
	s.buckets[c] = append(s.buckets[c], b[:0]) //adasum:alloc ok bucket growth is bounded warmup; ping-pong depth is fixed in steady state
	s.mu.Unlock()
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// WireBytes returns the total payload bytes sent so far across all ranks
// and planes — compressed sends count their compressed size. The
// per-rank shards are summed on read; call it between Runs for an exact
// total.
func (w *World) WireBytes() int64 {
	var total int64
	for r := range w.wire {
		total += w.wire[r].n.Load()
	}
	return total
}

// ResetWireBytes zeroes the wire-byte meter (between sweep arms).
func (w *World) ResetWireBytes() {
	for r := range w.wire {
		w.wire[r].n.Store(0)
	}
}

// RewindWireBytes restores the meter to an earlier WireBytes reading.
// An aborted collective's partial sends depend on goroutine scheduling,
// so a caller that discards a failed step attempt rewinds the meter to
// the attempt's start to keep the accounting deterministic (the
// aborted attempt's traffic is deliberately not billed). Must be
// called with no Run in flight; the total is folded into rank 0's
// shard, which WireBytes sums right back.
func (w *World) RewindWireBytes(total int64) {
	w.ResetWireBytes()
	if len(w.wire) > 0 {
		w.wire[0].n.Store(total)
	}
}

// Proc returns the handle rank r uses to communicate. Each rank must use
// its own Proc from a single goroutine. Procs handed to Run bodies are
// pooled per World; Proc itself returns a fresh endpoint for callers
// that drive ranks manually.
func (w *World) Proc(r int) *Proc {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, w.size))
	}
	return &Proc{world: w, rank: r, clock: w.timeBase, failAt: w.failAt[r], links: w.plane0}
}

// transferCost returns the simulated seconds to move n float32s (plus a
// small float64 side payload) from src to dst. The byte arithmetic is
// int64 so >2 GiB payloads cannot overflow on 32-bit builds.
func (w *World) transferCost(src, dst, nFloats, nMeta int) float64 {
	if w.model == nil {
		return 0
	}
	return w.model.Transfer(src, dst, int64(nFloats)*4+int64(nMeta)*8)
}

// Proc is one rank's endpoint: its identity, its plane, and its virtual
// clock. A Proc obtained from World.Proc communicates on the default
// plane; Launch binds a clone to a private plane so asynchronous
// collectives cannot interleave with foreground traffic.
type Proc struct {
	world *World
	rank  int
	clock float64
	// failAt is this rank's injected failure deadline in virtual
	// seconds (+Inf when the rank never fails); every clock advance
	// checks it.
	failAt float64
	// links is the link space of this Proc's plane.
	links *plane
	// netSec and netBytes accumulate the transfer seconds and payload
	// bytes charged to this endpoint's sends — the per-op view of the
	// simnet meter. Charged costs are pure functions of payload sizes
	// and the cost model (receive-side waiting is not counted), so the
	// totals are identical under synchronous and overlapped scheduling
	// and any GOMAXPROCS — the property that lets adaptive compression
	// decide from them without breaking bitwise determinism.
	netSec   float64
	netBytes int64
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// Model returns the cost model, or nil in free mode.
func (p *Proc) Model() *simnet.Model { return p.world.model }

// Clock returns the current virtual time of this rank in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// SetClock overrides the virtual time (used by harnesses that account
// compute outside the comm layer).
func (p *Proc) SetClock(t float64) { p.clock = t }

// Compute advances this rank's clock by dt seconds of local work,
// failing the rank if the advance crosses its injected deadline.
//
//adasum:noalloc
func (p *Proc) Compute(dt float64) {
	p.clock += dt
	p.maybeFail()
}

// ComputeReduce advances the clock by the model cost of reducing n bytes.
//
//adasum:noalloc
func (p *Proc) ComputeReduce(bytes int64) {
	if m := p.world.model; m != nil {
		p.Compute(m.Reduce(bytes))
	}
}

// ComputeMemCopy advances the clock by the model cost of copying n bytes.
//
//adasum:noalloc
func (p *Proc) ComputeMemCopy(bytes int64) {
	if m := p.world.model; m != nil {
		p.Compute(m.MemCopy(bytes))
	}
}

// Send transmits data to rank dst. The slice is copied, so the caller may
// reuse it immediately.
//
//adasum:noalloc
func (p *Proc) Send(dst int, data []float32) {
	p.send(dst, data, nil)
}

// SendMeta transmits a float64 side payload (dot-product partials) to dst.
//
//adasum:noalloc
func (p *Proc) SendMeta(dst int, meta []float64) {
	p.send(dst, nil, meta)
}

//adasum:noalloc
func (p *Proc) send(dst int, data []float32, meta []float64) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	var dc []float32
	if data != nil {
		dc = p.world.pool.getF32(p.rank, len(data))
		copy(dc, data)
	}
	var mc []float64
	if meta != nil {
		mc = p.world.pool.getF64(p.rank, len(meta))
		copy(mc, meta)
	}
	cost := p.world.transferCost(p.rank, dst, len(data), len(meta))
	nb := int64(len(data))*4 + int64(len(meta))*8
	p.world.wire[p.rank].n.Add(nb)
	p.netSec += cost
	p.netBytes += nb
	//adasum:poolown ok ownership rides the in-flight message; the receiver recycles via Recv/Release
	p.deliver(dst, message{data: dc, meta: mc, arrival: p.clock + cost})
}

// deliver enqueues msg to dst, unblocking with a RankFailure if dst is
// (or becomes) dead while the channel buffer is full — without this, a
// sender that ran far enough ahead to fill the buffer would park on the
// channel send forever once the receiver died, re-creating the wedge
// the death latches exist to remove. The healthy steady state pays one
// non-blocking attempt. The link is materialized here on first use, so
// a sender to a dead rank on a never-before-used pair still takes the
// guarded path.
//
//adasum:noalloc
func (p *Proc) deliver(dst int, msg message) {
	ch := p.links.get(p.rank, dst).ch
	select {
	case ch <- msg:
		return
	default:
	}
	select {
	case ch <- msg:
	case <-p.world.dead[dst].ch:
		panic(RankFailure{Rank: dst})
	}
}

// sendOwned transmits a pool-owned buffer without the defensive copy;
// ownership moves to the receiver (who recycles it via Recv/Release as
// usual), so the caller must not touch buf afterwards.
//
//adasum:noalloc
func (p *Proc) sendOwned(dst int, buf []float32) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	cost := p.world.transferCost(p.rank, dst, len(buf), 0)
	nb := int64(len(buf)) * 4
	p.world.wire[p.rank].n.Add(nb)
	p.netSec += cost
	p.netBytes += nb
	p.deliver(dst, message{data: buf, arrival: p.clock + cost})
}

// SendCompressed encodes data through st and transmits only the wire
// words: the virtual clock's transfer cost, the wire-byte meter and the
// pooled transport buffer all see the compressed payload, which is how
// on-the-wire compression earns its simulated speedup. The encode pass
// is charged to the sender as a MemCopy over the uncompressed bytes. st
// carries the codec and, for error-feedback codecs, the per-site
// residual state; a None stream degrades to a plain Send so the
// uncompressed paths stay bitwise- and clock-identical.
//
//adasum:noalloc
func (p *Proc) SendCompressed(dst int, data []float32, st *compress.Stream) {
	if st == nil || compress.IsNone(st.Codec()) {
		p.Send(dst, data)
		return
	}
	c := st.Codec()
	//adasum:dyncall ok codec EncodedLen implementations are arithmetic over the payload length
	enc := p.world.pool.getF32(p.rank, c.EncodedLen(len(data)))
	st.Encode(enc, data)
	p.ComputeMemCopy(int64(len(data)) * 4)
	p.sendOwned(dst, enc)
}

// RecvCompressed receives a compressed payload from src and decodes it
// into dst, the caller's full-size destination, advancing the clock to
// the arrival time and charging the decode pass as a MemCopy over the
// uncompressed bytes. With a None codec (or nil) it degrades to
// RecvInto.
//
//adasum:noalloc
func (p *Proc) RecvCompressed(src int, c compress.Codec, dst []float32) {
	if compress.IsNone(c) {
		p.RecvInto(src, dst)
		return
	}
	enc, _ := p.recv(src)
	//adasum:dyncall ok codec EncodedLen implementations are arithmetic over the payload length
	if len(enc) != c.EncodedLen(len(dst)) {
		panic(fmt.Sprintf("comm: RecvCompressed payload %d words, want %d for %d floats",
			len(enc), c.EncodedLen(len(dst)), len(dst)))
	}
	//adasum:dyncall ok codec Decode implementations are noalloc-marked in compress
	c.Decode(dst, enc)
	p.world.pool.putF32(p.rank, enc)
	p.ComputeMemCopy(int64(len(dst)) * 4)
}

// SendAdaptive encodes data through st's current codec and transmits a
// self-describing payload: one header word naming the codec, then the
// wire words. This is the transport of adaptive compression policies,
// where ranks may legitimately select different codecs for the same
// logical exchange (their error-feedback residuals differ) and the
// receiver must decode whatever actually arrived. The header word rides
// as payload — it is charged to the transfer cost and the wire meter
// like any other word — and the encode pass is charged as a MemCopy
// over the uncompressed bytes (the identity codec included: adaptive
// mode always materializes a wire buffer).
//
//adasum:noalloc
func (p *Proc) SendAdaptive(dst int, data []float32, st *compress.Stream) {
	c := st.Codec()
	enc := p.world.pool.getF32(p.rank, compress.WireWords(c, len(data)))
	enc[0] = compress.HeaderWord(c)
	st.Encode(enc[1:], data)
	p.ComputeMemCopy(int64(len(data)) * 4)
	p.sendOwned(dst, enc)
}

// RecvAdaptive receives a self-describing payload from src and decodes
// it into dst under the codec its header names, advancing the clock to
// the arrival time and charging the decode pass as a MemCopy over the
// uncompressed bytes.
//
//adasum:noalloc
func (p *Proc) RecvAdaptive(src int, dst []float32) {
	enc, _ := p.recv(src)
	compress.DecodeFromWire(dst, enc)
	p.world.pool.putF32(p.rank, enc)
	p.ComputeMemCopy(int64(len(dst)) * 4)
}

// SendCtl transmits a control-plane payload to dst. Control traffic is
// communicator-construction metadata (the color/key exchange of a
// Split), the kind of out-of-band setup real stacks do once when a
// communicator is created, not per collective — so it is charged to
// neither the virtual clock nor the wire-byte meter, and its buffers
// are not pooled (construction is not a steady-state path).
func (p *Proc) SendCtl(dst int, vals []int) {
	if dst == p.rank {
		panic("comm: send to self")
	}
	p.checkPeer(dst)
	c := make([]int, len(vals))
	copy(c, vals)
	p.deliver(dst, message{ctl: c})
}

// RecvCtl receives a control-plane payload from src without touching
// the virtual clock. Control and data traffic share the per-(src, dst)
// FIFO, so a deterministic program that matches every SendCtl with a
// RecvCtl at the same point on both ranks cannot cross the streams; a
// mismatch panics rather than silently interpreting bits.
func (p *Proc) RecvCtl(src int) []int {
	msg := p.recvMsg(src)
	if msg.ctl == nil {
		panic("comm: RecvCtl received a data message (control/data ordering mismatch)")
	}
	return msg.ctl
}

// Recv blocks until a message from src arrives and returns its payload,
// advancing the virtual clock to the arrival time. The returned buffer is
// owned by the caller; handing it back with Release once consumed lets
// the World recycle it.
//
//adasum:noalloc
func (p *Proc) Recv(src int) []float32 {
	d, _ := p.recv(src)
	return d
}

// RecvInto receives from src directly into dst, which must match the
// incoming payload length, and recycles the transport buffer. It is the
// zero-allocation receive for callers assembling into preallocated
// vectors (allgather unwinds, broadcasts).
//
//adasum:noalloc
func (p *Proc) RecvInto(src int, dst []float32) {
	d, _ := p.recv(src)
	if len(d) != len(dst) {
		panic(fmt.Sprintf("comm: RecvInto length mismatch: got %d, dst %d", len(d), len(dst)))
	}
	copy(dst, d)
	p.world.pool.putF32(p.rank, d)
}

// RecvMeta receives a float64 side payload from src. As with Recv, the
// buffer can be handed back with ReleaseMeta.
//
//adasum:noalloc
func (p *Proc) RecvMeta(src int) []float64 {
	_, m := p.recv(src)
	return m
}

// Release returns a buffer obtained from Recv or Scratch to the World's
// pool. The pool may hand its memory to another rank at any time
// afterwards, so the caller must be completely done with buf (releasing
// a buffer that is still read elsewhere is an aliasing bug). Slices the
// pool did not mint are recognized and ignored, so a stray Release of
// caller-owned memory cannot corrupt anything.
//
//adasum:noalloc
func (p *Proc) Release(buf []float32) { p.world.pool.putF32(p.rank, buf) }

// ReleaseMeta returns a buffer obtained from RecvMeta or ScratchMeta to
// the World's pool, under the same ownership contract as Release.
//
//adasum:noalloc
func (p *Proc) ReleaseMeta(meta []float64) { p.world.pool.putF64(p.rank, meta) }

// Scratch returns a pooled float32 buffer of length n with unspecified
// contents. Return it with Release when done.
//
//adasum:noalloc
func (p *Proc) Scratch(n int) []float32 { return p.world.pool.getF32(p.rank, n) }

// ScratchMeta returns a pooled float64 buffer of length n with
// unspecified contents. Return it with ReleaseMeta when done.
//
//adasum:noalloc
func (p *Proc) ScratchMeta(n int) []float64 { return p.world.pool.getF64(p.rank, n) }

// recvMsg pulls the next message from src, unblocking with a typed
// RankFailure if src is (or becomes) dead. A payload already in flight
// before the death is still delivered — the fast non-blocking path also
// keeps the healthy steady state at one cheap poll per receive.
//
//adasum:noalloc
func (p *Proc) recvMsg(src int) message {
	ch := p.links.get(src, p.rank).ch
	select {
	case msg := <-ch:
		return msg
	default:
	}
	select {
	case msg := <-ch:
		return msg
	case <-p.world.dead[src].ch:
		// The close of the latch happens after every pre-death send, so
		// one more poll drains any payload that beat the failure.
		select {
		case msg := <-ch:
			return msg
		default:
		}
		panic(RankFailure{Rank: src})
	}
}

//adasum:noalloc
func (p *Proc) recv(src int) ([]float32, []float64) {
	msg := p.recvMsg(src)
	if msg.ctl != nil {
		panic("comm: data receive got a control message (control/data ordering mismatch)")
	}
	if msg.arrival > p.clock {
		p.clock = msg.arrival
		p.maybeFail()
	}
	return msg.data, msg.meta
}

// SendRecv exchanges vectors with a peer: sends sendBuf, receives and
// returns the peer's vector. Both sides must call it with each other as
// peer.
//
//adasum:noalloc
func (p *Proc) SendRecv(peer int, sendBuf []float32) []float32 {
	p.Send(peer, sendBuf)
	return p.Recv(peer)
}

// SendRecvMeta exchanges float64 side payloads with a peer.
//
//adasum:noalloc
func (p *Proc) SendRecvMeta(peer int, sendBuf []float64) []float64 {
	p.SendMeta(peer, sendBuf)
	return p.RecvMeta(peer)
}

// Run spawns one goroutine per alive rank executing body and waits for
// all of them. Per-rank panics are re-raised on the caller as a
// *RunError carrying every rank's failure with rank context — a rank
// that panics also marks itself dead, so peers blocked in Recv on it
// unblock with a RankFailure instead of wedging wg.Wait forever.
func (w *World) Run(body func(p *Proc)) {
	if err := w.RunErr(body); err != nil {
		panic(err)
	}
}

// RunErr is Run returning the aggregate failure instead of panicking —
// the entry point for elastic callers that rebuild on survivors. nil
// means every alive rank completed. Ranks already dead when RunErr is
// called are skipped entirely (their body never runs). The per-rank
// Procs and error slots are owned by the World and reused across Runs,
// so a healthy Run allocates nothing; Runs on one World must not
// overlap (they never could — Run joins before returning).
func (w *World) RunErr(body func(p *Proc)) *RunError {
	for r := range w.errs {
		w.errs[r] = nil
	}
	w.runBody = body
	for r := 0; r < w.size; r++ {
		if !w.Alive(r) {
			continue
		}
		w.procs[r] = Proc{world: w, rank: r, clock: w.timeBase, failAt: w.failAt[r], links: w.plane0}
		w.wg.Add(1)
		submit(&w.procs[r])
	}
	w.wg.Wait()
	w.runBody = nil
	var fails []RankError
	for r, e := range w.errs {
		if e != nil {
			fails = append(fails, RankError{Rank: r, Err: e})
		}
	}
	if fails == nil {
		return nil
	}
	err := &RunError{Failures: fails}
	// Root causes stay dead across Reset; observers get revived.
	for _, r := range err.Roots() {
		w.failed[r] = true
	}
	return err
}

// run is one rank's Run slot, executed on a pooled worker goroutine: it
// recovers the rank's terminal panic into the World's error table and
// latches the rank dead so blocked peers unblock. The recover defer
// runs before wg.Done (LIFO), so every error is visible once Wait
// returns.
func (p *Proc) run() {
	w := p.world
	defer w.wg.Done()
	defer func() {
		if e := recover(); e != nil {
			w.errs[p.rank] = e
			// Unblock everyone parked on this rank; without this a
			// single panicking rank deadlocked the whole Run.
			w.markDead(p.rank)
		}
	}()
	// A time base already past the deadline kills the rank before it
	// does any work.
	p.maybeFail()
	w.runBody(p)
}

// RunCollect runs body on every rank and returns the per-rank results.
func RunCollect[T any](w *World, body func(p *Proc) T) []T {
	out := make([]T, w.size)
	w.Run(func(p *Proc) {
		out[p.Rank()] = body(p)
	})
	return out
}

// MaxClock runs body on every rank and returns the largest final virtual
// clock — the simulated wall-clock completion time of the collective.
func MaxClock(w *World, body func(p *Proc)) float64 {
	clocks := RunCollect(w, func(p *Proc) float64 {
		body(p)
		return p.Clock()
	})
	var m float64
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}
