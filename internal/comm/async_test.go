package comm

import (
	"strings"
	"testing"

	"repro/internal/simnet"
)

// TestAsyncOverlapClock verifies the core overlap accounting: a rank that
// launches an exchange and keeps computing pays max(compute, comm), not
// their sum.
func TestAsyncOverlapClock(t *testing.T) {
	const alpha, beta = 1.0, 0.0 // each message costs exactly 1s
	w := NewWorld(2, simnet.Uniform(2, alpha, beta))
	clocks := RunCollect(w, func(p *Proc) float64 {
		peer := 1 - p.Rank()
		buf := []float32{float32(p.Rank())}
		h := p.Launch(1, nil, func(ap *Proc) {
			ap.Send(peer, buf)
			got := ap.Recv(peer)
			ap.Release(got)
		})
		p.Compute(10) // compute dwarfs the 1s exchange
		h.Wait(p)
		return p.Clock()
	})
	for r, c := range clocks {
		if c != 10 {
			t.Fatalf("rank %d clock = %v, want 10 (comm fully hidden)", r, c)
		}
	}
}

// TestAsyncExposedClock is the complementary case: when compute is
// shorter than the exchange, Wait advances the clock to the comm finish.
func TestAsyncExposedClock(t *testing.T) {
	w := NewWorld(2, simnet.Uniform(2, 5.0, 0.0))
	clocks := RunCollect(w, func(p *Proc) float64 {
		peer := 1 - p.Rank()
		h := p.Launch(1, nil, func(ap *Proc) {
			ap.Send(peer, []float32{1})
			ap.Release(ap.Recv(peer))
		})
		p.Compute(2)
		h.Wait(p)
		return p.Clock()
	})
	for r, c := range clocks {
		if c != 5 {
			t.Fatalf("rank %d clock = %v, want 5 (exchange exposed)", r, c)
		}
	}
}

// TestAsyncChainSerializes checks that an op launched after another
// starts no earlier than its predecessor finishes — the serialized
// per-rank comm stream.
func TestAsyncChainSerializes(t *testing.T) {
	w := NewWorld(2, simnet.Uniform(2, 3.0, 0.0))
	clocks := RunCollect(w, func(p *Proc) float64 {
		peer := 1 - p.Rank()
		exchange := func(ap *Proc) {
			ap.Send(peer, []float32{1})
			ap.Release(ap.Recv(peer))
		}
		h1 := p.Launch(1, nil, exchange)
		h2 := p.Launch(2, h1, exchange) // may not start before h1 is done
		p.Compute(1)
		h1.Wait(p)
		h2.Wait(p)
		return p.Clock()
	})
	for r, c := range clocks {
		// h1 finishes at 3; h2 starts at 3 and finishes at 6.
		if c != 6 {
			t.Fatalf("rank %d clock = %v, want 6 (chained ops serialize)", r, c)
		}
	}
}

// TestAsyncPlaneIsolation runs two concurrent exchanges carrying
// different payloads on different planes and checks neither sees the
// other's message.
func TestAsyncPlaneIsolation(t *testing.T) {
	w := NewWorld(2, nil)
	w.Run(func(p *Proc) {
		peer := 1 - p.Rank()
		mk := func(v float32) func(*Proc) {
			return func(ap *Proc) {
				ap.Send(peer, []float32{v})
				got := ap.Recv(peer)
				if got[0] != v {
					panic("cross-plane message leak")
				}
				ap.Release(got)
			}
		}
		h1 := p.Launch(1, nil, mk(100))
		h2 := p.Launch(2, nil, mk(200))
		h2.Wait(p)
		h1.Wait(p)
	})
}

// TestAsyncPanicPropagates verifies a panic inside the async body
// surfaces at Wait with rank context via World.Run.
func TestAsyncPanicPropagates(t *testing.T) {
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic to propagate")
		}
		re, ok := e.(*RunError)
		if !ok {
			t.Fatalf("expected *RunError, got %T: %v", e, e)
		}
		if !strings.Contains(re.Error(), "boom") || !strings.Contains(re.Error(), "rank 0") {
			t.Fatalf("unexpected panic payload: %v", re)
		}
	}()
	w := NewWorld(1, nil)
	w.Run(func(p *Proc) {
		h := p.Launch(1, nil, func(ap *Proc) { panic("boom") })
		h.Wait(p)
	})
}

// TestAsyncForegroundUnaffected checks a foreground exchange on plane 0
// proceeds untouched while an async op is in flight on plane 1.
func TestAsyncForegroundUnaffected(t *testing.T) {
	w := NewWorld(2, nil)
	w.Run(func(p *Proc) {
		peer := 1 - p.Rank()
		h := p.Launch(1, nil, func(ap *Proc) {
			ap.Send(peer, []float32{7})
			ap.Release(ap.Recv(peer))
		})
		got := p.SendRecv(peer, []float32{float32(p.Rank())})
		if got[0] != float32(peer) {
			t.Errorf("foreground exchange corrupted: got %v", got[0])
		}
		p.Release(got)
		h.Wait(p)
	})
}
