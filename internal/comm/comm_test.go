package comm

import (
	"math"
	"testing"

	"repro/internal/simnet"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2, nil)
	got := RunCollect(w, func(p *Proc) []float32 {
		if p.Rank() == 0 {
			p.Send(1, []float32{1, 2, 3})
			return nil
		}
		return p.Recv(0)
	})
	if len(got[1]) != 3 || got[1][0] != 1 || got[1][2] != 3 {
		t.Fatalf("recv = %v", got[1])
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2, nil)
	buf := []float32{7}
	out := RunCollect(w, func(p *Proc) []float32 {
		if p.Rank() == 0 {
			p.Send(1, buf)
			buf[0] = 99 // mutate after send; receiver must see 7
			return nil
		}
		return p.Recv(0)
	})
	if out[1][0] != 7 {
		t.Fatalf("send did not copy payload: %v", out[1])
	}
}

func TestSendRecvExchange(t *testing.T) {
	w := NewWorld(2, nil)
	out := RunCollect(w, func(p *Proc) float32 {
		mine := []float32{float32(p.Rank() + 1)}
		theirs := p.SendRecv(1-p.Rank(), mine)
		return theirs[0]
	})
	if out[0] != 2 || out[1] != 1 {
		t.Fatalf("exchange = %v", out)
	}
}

func TestMetaChannel(t *testing.T) {
	w := NewWorld(2, nil)
	out := RunCollect(w, func(p *Proc) []float64 {
		mine := []float64{float64(p.Rank()) + 0.5}
		return p.SendRecvMeta(1-p.Rank(), mine)
	})
	if out[0][0] != 1.5 || out[1][0] != 0.5 {
		t.Fatalf("meta exchange = %v", out)
	}
}

func TestFIFOOrdering(t *testing.T) {
	w := NewWorld(2, nil)
	out := RunCollect(w, func(p *Proc) []float32 {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				p.Send(1, []float32{float32(i)})
			}
			return nil
		}
		var got []float32
		for i := 0; i < 5; i++ {
			got = append(got, p.Recv(0)[0])
		}
		return got
	})
	for i, v := range out[1] {
		if v != float32(i) {
			t.Fatalf("out of order: %v", out[1])
		}
	}
}

func TestClockAdvancesWithTransferCost(t *testing.T) {
	// alpha=1ms, beta=1us/byte. 100 floats = 400 bytes => 1ms + 400us.
	model := simnet.Uniform(2, 1e-3, 1e-6)
	w := NewWorld(2, model)
	clocks := RunCollect(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(1, make([]float32, 100))
		} else {
			p.Recv(0)
		}
		return p.Clock()
	})
	want := 1e-3 + 400e-6
	if math.Abs(clocks[1]-want) > 1e-12 {
		t.Fatalf("receiver clock = %v, want %v", clocks[1], want)
	}
	if clocks[0] != 0 {
		t.Fatalf("sender clock advanced: %v", clocks[0])
	}
}

func TestClockMaxSemantics(t *testing.T) {
	// If the receiver is already past the arrival time, its clock must
	// not move backwards.
	model := simnet.Uniform(2, 1e-3, 0)
	w := NewWorld(2, model)
	clocks := RunCollect(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(1, []float32{1})
		} else {
			p.Compute(10) // receiver busy until t=10s
			p.Recv(0)
		}
		return p.Clock()
	})
	if clocks[1] != 10 {
		t.Fatalf("receiver clock = %v, want 10 (no backwards jump)", clocks[1])
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w := NewWorld(1, nil)
	p := w.Proc(0)
	p.Compute(1.5)
	p.Compute(0.5)
	if p.Clock() != 2 {
		t.Fatalf("clock = %v, want 2", p.Clock())
	}
}

func TestIntraVsInterNodeCost(t *testing.T) {
	// 4 ranks, 2 per node: (0,1) intra, (0,2) inter.
	model := &simnet.Model{
		Topo:       simnet.Topology{Ranks: 4, GPUsPerNode: 2},
		AlphaIntra: 1, BetaIntra: 0,
		AlphaInter: 5, BetaInter: 0,
	}
	w := NewWorld(4, model)
	clocks := RunCollect(w, func(p *Proc) float64 {
		switch p.Rank() {
		case 0:
			p.Send(1, []float32{1})
			p.Send(2, []float32{1})
		case 1:
			p.Recv(0)
		case 2:
			p.Recv(0)
		}
		return p.Clock()
	})
	if clocks[1] != 1 {
		t.Fatalf("intra-node arrival = %v, want 1", clocks[1])
	}
	if clocks[2] != 5 {
		t.Fatalf("inter-node arrival = %v, want 5", clocks[2])
	}
}

func TestMaxClock(t *testing.T) {
	model := simnet.Uniform(3, 1, 0)
	w := NewWorld(3, model)
	total := MaxClock(w, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []float32{1})
		}
		if p.Rank() == 1 {
			p.Recv(0)
			p.Send(2, []float32{1})
		}
		if p.Rank() == 2 {
			p.Recv(1)
		}
	})
	if total != 2 { // two hops, 1s alpha each
		t.Fatalf("MaxClock = %v, want 2", total)
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected rank panic to propagate")
		}
	}()
	w := NewWorld(2, nil)
	w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestSelfSendPanics(t *testing.T) {
	w := NewWorld(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self send")
		}
	}()
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(0, []float32{1})
		}
	})
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewWorld(0, nil)
}

// TestCtlPlaneClockAndMeterNeutral: control-plane messages (communicator
// construction metadata) move data between ranks without advancing any
// virtual clock or touching the wire-byte meter, even under a cost
// model, and interleave with charged data traffic on the same FIFO.
func TestCtlPlaneClockAndMeterNeutral(t *testing.T) {
	w := NewWorld(2, simnet.Uniform(2, 1.0, 1e-6))
	w.Run(func(p *Proc) {
		peer := 1 - p.Rank()
		if p.Rank() == 0 {
			p.SendCtl(peer, []int{7, 8, 9})
		} else {
			got := p.RecvCtl(peer)
			if len(got) != 3 || got[0] != 7 || got[2] != 9 {
				t.Errorf("ctl payload corrupted: %v", got)
			}
		}
		if p.Clock() != 0 {
			t.Errorf("rank %d: ctl traffic advanced the clock to %v", p.Rank(), p.Clock())
		}
	})
	if w.WireBytes() != 0 {
		t.Fatalf("ctl traffic metered %d wire bytes", w.WireBytes())
	}
	// Interleaving: ctl then data on the same (src, dst) pair, received
	// in the same order, keeps both planes intact.
	w2 := NewWorld(2, nil)
	w2.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendCtl(1, []int{42})
			p.Send(1, []float32{1, 2})
		} else {
			if got := p.RecvCtl(0); got[0] != 42 {
				t.Errorf("ctl before data corrupted: %v", got)
			}
			data := p.Recv(0)
			if len(data) != 2 || data[1] != 2 {
				t.Errorf("data after ctl corrupted: %v", data)
			}
			p.Release(data)
		}
	})
}

// TestCtlDataMismatchPanics: receiving a data message where a control
// message is expected is a loud ordering bug, re-raised by World.Run
// with rank context.
func TestCtlDataMismatchPanics(t *testing.T) {
	w := NewWorld(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for data message on the ctl path")
		}
	}()
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []float32{1})
		} else {
			p.RecvCtl(0) // data message on the ctl path must panic
		}
	})
}
