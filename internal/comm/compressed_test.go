package comm

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/simnet"
)

// TestSendCompressedChargesCompressedBytes pins the accounting contract:
// the transfer cost and the wire-byte meter see the compressed payload,
// while encode and decode are charged as MemCopy passes over the
// uncompressed bytes.
func TestSendCompressedChargesCompressedBytes(t *testing.T) {
	const n = 1000
	const alpha, beta = 1e-4, 1e-8
	model := simnet.Uniform(2, alpha, beta)
	model.MemCopyBeta = 1e-9
	w := NewWorld(2, model)
	codec := compress.FP16()
	encWords := codec.EncodedLen(n) // 500

	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%17) * 0.25 // exactly representable in fp16
	}
	got := make([]float32, n)
	var senderClock, receiverClock float64
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			st := compress.NewStream(codec)
			st.Begin()
			p.SendCompressed(1, src, st)
			senderClock = p.Clock()
		} else {
			p.RecvCompressed(0, codec, got)
			receiverClock = p.Clock()
		}
	})

	// Payload round trip (these values are lossless in fp16).
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], src[i])
		}
	}
	// Sender: one encode MemCopy over n*4 bytes; transfer computed on
	// the compressed words but charged to the receiver's arrival.
	wantSender := float64(n*4) * model.MemCopyBeta
	if math.Abs(senderClock-wantSender) > 1e-15 {
		t.Fatalf("sender clock %v, want encode-only %v", senderClock, wantSender)
	}
	// Receiver: arrival at sender departure + compressed transfer, plus
	// one decode MemCopy.
	wantReceiver := wantSender + alpha + float64(encWords*4)*beta + float64(n*4)*model.MemCopyBeta
	if math.Abs(receiverClock-wantReceiver) > 1e-15 {
		t.Fatalf("receiver clock %v, want %v", receiverClock, wantReceiver)
	}
	// The wire meter counts compressed bytes only.
	if w.WireBytes() != int64(encWords)*4 {
		t.Fatalf("wire bytes %d, want %d", w.WireBytes(), encWords*4)
	}
}

// TestSendCompressedNoneDegradesToPlain: a nil stream or a None codec
// must behave exactly like Send/RecvInto — same bytes, same clocks.
func TestSendCompressedNoneDegradesToPlain(t *testing.T) {
	const n = 64
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i) * 0.5
	}
	run := func(body func(p *Proc)) (float64, int64) {
		w := NewWorld(2, simnet.Uniform(2, 1e-5, 1e-9))
		sec := MaxClock(w, body)
		return sec, w.WireBytes()
	}
	got := make([]float32, n)
	plainSec, plainWire := run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, src)
		} else {
			p.RecvInto(0, got)
		}
	})
	noneSec, noneWire := run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendCompressed(1, src, nil)
		} else {
			p.RecvCompressed(0, compress.None(), got)
		}
	})
	if plainSec != noneSec || plainWire != noneWire {
		t.Fatalf("None path (%v, %d) differs from plain (%v, %d)", noneSec, noneWire, plainSec, plainWire)
	}
}

// TestWireWordsSurviveTransport sends raw bit patterns (as the codecs
// produce, including patterns that are NaNs when viewed as floats)
// through the pooled transport and checks bit-exact arrival — the wire
// words must only ever be moved, and the substrate must move them
// exactly.
func TestWireWordsSurviveTransport(t *testing.T) {
	words := []float32{
		math.Float32frombits(0x7FC01234), // quiet NaN with payload
		math.Float32frombits(0x7F800001), // signalling NaN pattern
		math.Float32frombits(0x0000FFFF), // subnormal (packed int pattern)
		math.Float32frombits(0xFFFFFFFF),
		0,
	}
	w := NewWorld(2, nil)
	got := make([]float32, len(words))
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, words)
		} else {
			p.RecvInto(0, got)
		}
	})
	for i := range words {
		if math.Float32bits(got[i]) != math.Float32bits(words[i]) {
			t.Fatalf("word %d: bits %08x != %08x", i, math.Float32bits(got[i]), math.Float32bits(words[i]))
		}
	}
}
