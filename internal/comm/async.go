package comm

import (
	"fmt"
	"sync"
)

// Asynchronous operations. A rank launches a collective (or any
// message-passing program) as a background op that executes while the
// rank's own goroutine keeps computing — the substrate of the overlapped
// reduction engine (package overlap), where per-bucket allreduces run
// against the tail of backprop.
//
// Clock accounting rules:
//
//   - the op starts at the launching rank's clock at Launch time (the
//     moment its inputs became ready);
//   - if the op is chained after another Handle, its start is further
//     delayed to that op's finish time — this models a serialized
//     per-rank communication stream (one NIC/proxy thread), the way
//     Horovod's background thread issues fusion buffers in order;
//   - inside the op, Send/Recv advance the op's private clock exactly as
//     they do for a foreground Proc, so per-bucket arrival chains across
//     ranks are accounted faithfully;
//   - Wait folds the op's finish time into the waiting rank's clock with
//     max(local, finish): a rank that computed past the op's completion
//     pays nothing, one that arrives early blocks (virtually) until the
//     bucket lands.
//
// Each op runs on its own channel plane, so concurrent ops — and the
// launching rank's foreground traffic — can never interleave messages.
// All ranks participating in one logical collective must launch it with
// the same plane id.

// Handle is an asynchronous operation slot. It is reusable: after the
// op completes and has been joined (Finish/Wait/Drain), Start may launch
// a new op on the same Handle — completion is a broadcast over an
// internal condition variable rather than a one-shot channel close, and
// the op's Proc is owned by the Handle — so a steady-state caller
// (overlap's per-step bucket ops) keeps a fixed set of Handles and
// launches allocate nothing. The zero Handle is not ready for use;
// obtain one from Proc.NewHandle (or the allocating Proc.Launch).
type Handle struct {
	ap Proc

	// after/body are the current launch's chain predecessor and op body,
	// staged by Start for the pooled worker and cleared at completion.
	after *Handle
	body  func(ap *Proc)

	mu   sync.Mutex
	cond sync.Cond
	// state: idle (done, never launched or joined), running, or done.
	running bool
	done    bool
	err     any
}

// NewHandle returns a reusable op slot bound to p's rank. The Handle
// may be relaunched with Start any number of times; each launch snapshots
// p's clock and plane binding at that moment.
func (p *Proc) NewHandle() *Handle {
	h := &Handle{}
	h.ap = Proc{world: p.world, rank: p.rank, failAt: p.failAt}
	h.cond.L = &h.mu
	return h
}

// Launch starts body as an asynchronous operation on the given channel
// plane (must be nonzero; plane ids are shared across ranks, so every
// rank of a collective launches it with the same id, and a plane must
// carry only one op at a time). The op's Proc is a clone of p whose
// clock starts at p's current time, or at after's finish time if that is
// later (after may be nil). The caller's Proc remains usable for
// foreground traffic and further launches; the returned Handle must
// eventually be waited on. Launch allocates a fresh Handle per call;
// steady-state callers should hold Handles and use Start.
func (p *Proc) Launch(plane int, after *Handle, body func(ap *Proc)) *Handle {
	h := p.NewHandle()
	h.Start(p, plane, after, body)
	return h
}

// Start launches body on this Handle as an asynchronous op of rank p on
// the given plane, chained after the given Handle (nil for none), under
// the same rules as Launch. The Handle must be idle: never launched, or
// launched and since completed. Restarting a Handle whose previous op
// has not finished is a caller bug and panics.
//
//adasum:noalloc
func (h *Handle) Start(p *Proc, plane int, after *Handle, body func(ap *Proc)) {
	if plane == 0 {
		panic("comm: Launch requires a nonzero plane id (plane 0 is foreground traffic)")
	}
	h.mu.Lock()
	if h.running {
		panic("comm: Start on a Handle whose op is still in flight")
	}
	h.running = true
	h.done = false
	h.err = nil
	h.mu.Unlock()
	h.ap.clock = p.clock
	h.ap.failAt = p.failAt
	h.ap.links = p.world.plane(plane)
	// Fresh per-op network meters: NetCharges reports this launch only.
	h.ap.netSec, h.ap.netBytes = 0, 0
	h.after = after
	h.body = body
	submit(h)
}

// run is the op body, executed on a pooled worker goroutine: chain,
// execute, publish completion.
//
//adasum:noalloc
func (h *Handle) run() {
	defer func() { //adasum:alloc ok open-coded defer: closure and record stay on the stack (0 allocs/op bench-pinned)
		e := recover()
		h.after = nil
		h.body = nil
		h.mu.Lock()
		h.err = e
		h.done = true
		h.running = false
		h.mu.Unlock()
		h.cond.Broadcast()
	}()
	if after := h.after; after != nil {
		t, err := after.join()
		if err != nil {
			panic(fmt.Sprintf("comm: chained async op failed: %v", err))
		}
		if t > h.ap.clock {
			h.ap.clock = t
		}
	}
	//adasum:dyncall ok the body is the launcher's bucket program — overlap's reduceBucket, itself noalloc-marked
	h.body(&h.ap)
}

// join blocks until the current op completes and returns its finish
// time and error. The finish-time read is ordered after the completion
// store by the mutex, so chained ops and owners see the op's final
// clock.
//
//adasum:noalloc
func (h *Handle) join() (float64, any) {
	h.mu.Lock()
	for !h.done {
		h.cond.Wait()
	}
	e := h.err
	h.mu.Unlock()
	return h.ap.clock, e
}

// Finish blocks until the operation completes and returns its finishing
// virtual time. A panic raised inside the op body is re-raised here, on
// the waiting rank's goroutine, so World.Run reports it with rank
// context. Finish is idempotent until the Handle is relaunched.
//
//adasum:noalloc
func (h *Handle) Finish() float64 {
	t, e := h.join()
	if e != nil {
		panic(e)
	}
	return t
}

// Wait blocks until the operation completes and advances p's clock to
// max(p's clock, the op's finish time) — the join point of
// compute-communication overlap.
func (h *Handle) Wait(p *Proc) {
	if t := h.Finish(); t > p.clock {
		p.clock = t
	}
}

// NetCharges returns the transfer seconds and payload bytes charged to
// the op's sends — the per-op view of the simnet meter, the bandwidth
// signal adaptive compression policies decide from. Only valid after
// the op has been joined (Finish/Wait/Drain); the join's mutex orders
// the read after the op's final store. Charged costs are pure functions
// of payload sizes and the cost model, so the numbers are identical
// under synchronous and overlapped scheduling and any GOMAXPROCS.
func (h *Handle) NetCharges() (sec float64, bytes int64) {
	return h.ap.netSec, h.ap.netBytes
}

// Drain blocks until the operation completes, swallowing its error —
// the cleanup join a failing caller uses to guarantee no op goroutine
// outlives it (an orphaned op could otherwise observe the World mid-
// Reset). Ops always terminate under failure: every rank that dies is
// marked dead, which unblocks any op receiving from it.
func (h *Handle) Drain() { h.join() }
