package comm

import "fmt"

// Asynchronous operations. A rank launches a collective (or any
// message-passing program) as a background op that executes while the
// rank's own goroutine keeps computing — the substrate of the overlapped
// reduction engine (package overlap), where per-bucket allreduces run
// against the tail of backprop.
//
// Clock accounting rules:
//
//   - the op starts at the launching rank's clock at Launch time (the
//     moment its inputs became ready);
//   - if the op is chained after another Handle, its start is further
//     delayed to that op's finish time — this models a serialized
//     per-rank communication stream (one NIC/proxy thread), the way
//     Horovod's background thread issues fusion buffers in order;
//   - inside the op, Send/Recv advance the op's private clock exactly as
//     they do for a foreground Proc, so per-bucket arrival chains across
//     ranks are accounted faithfully;
//   - Wait folds the op's finish time into the waiting rank's clock with
//     max(local, finish): a rank that computed past the op's completion
//     pays nothing, one that arrives early blocks (virtually) until the
//     bucket lands.
//
// Each op runs on its own channel plane, so concurrent ops — and the
// launching rank's foreground traffic — can never interleave messages.
// All ranks participating in one logical collective must launch it with
// the same plane id.

// Handle is an in-flight asynchronous operation started with Launch.
type Handle struct {
	ap   *Proc
	done chan struct{}
	err  any
}

// Launch starts body as an asynchronous operation on the given channel
// plane (must be nonzero; plane ids are shared across ranks, so every
// rank of a collective launches it with the same id, and a plane must
// carry only one op at a time). The op's Proc is a clone of p whose
// clock starts at p's current time, or at after's finish time if that is
// later (after may be nil). The caller's Proc remains usable for
// foreground traffic and further launches; the returned Handle must
// eventually be waited on.
func (p *Proc) Launch(plane int, after *Handle, body func(ap *Proc)) *Handle {
	if plane == 0 {
		panic("comm: Launch requires a nonzero plane id (plane 0 is foreground traffic)")
	}
	ap := &Proc{world: p.world, rank: p.rank, clock: p.clock, failAt: p.failAt, chans: p.world.plane(plane)}
	h := &Handle{ap: ap, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer func() {
			if e := recover(); e != nil {
				h.err = e
			}
		}()
		if after != nil {
			<-after.done
			if after.err != nil {
				panic(fmt.Sprintf("comm: chained async op failed: %v", after.err))
			}
			if after.ap.clock > ap.clock {
				ap.clock = after.ap.clock
			}
		}
		body(ap)
	}()
	return h
}

// Finish blocks until the operation completes and returns its finishing
// virtual time. A panic raised inside the op body is re-raised here, on
// the waiting rank's goroutine, so World.Run reports it with rank
// context. Finish is idempotent.
func (h *Handle) Finish() float64 {
	<-h.done
	if h.err != nil {
		panic(h.err)
	}
	return h.ap.clock
}

// Wait blocks until the operation completes and advances p's clock to
// max(p's clock, the op's finish time) — the join point of
// compute-communication overlap.
func (h *Handle) Wait(p *Proc) {
	if t := h.Finish(); t > p.clock {
		p.clock = t
	}
}

// Drain blocks until the operation completes, swallowing its error —
// the cleanup join a failing caller uses to guarantee no op goroutine
// outlives it (an orphaned op could otherwise observe the World mid-
// Reset). Ops always terminate under failure: every rank that dies is
// marked dead, which unblocks any op receiving from it.
func (h *Handle) Drain() { <-h.done }
