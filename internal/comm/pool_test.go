package comm

import (
	"testing"

	"repro/internal/simnet"
)

// Send must still copy defensively when the copy comes from the pool: a
// released buffer that gets recycled into a later Send must carry the new
// payload, not stale bytes.
func TestPoolRecyclingKeepsCopySemantics(t *testing.T) {
	w := NewWorld(2, nil)
	got := RunCollect(w, func(p *Proc) []float32 {
		if p.Rank() == 0 {
			buf := []float32{1, 2, 3, 4}
			p.Send(1, buf)
			// Mutate immediately; the message must be unaffected.
			for i := range buf {
				buf[i] = -1
			}
			p.Send(1, []float32{5, 6, 7, 8})
			return nil
		}
		first := p.Recv(0)
		a := append([]float32(nil), first...)
		p.Release(first) // recycle before the second message is consumed
		second := p.Recv(0)
		a = append(a, second...)
		p.Release(second)
		return a
	})
	want := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	for i, v := range want {
		if got[1][i] != v {
			t.Fatalf("payload %d = %v, want %v (full: %v)", i, got[1][i], v, got[1])
		}
	}
}

// RecvInto must deliver the payload into the caller's buffer, advance the
// virtual clock exactly like Recv, and reject length mismatches.
func TestRecvInto(t *testing.T) {
	model := simnet.Uniform(2, 1e-3, 1e-6)
	w := NewWorld(2, model)
	clocks := RunCollect(w, func(p *Proc) float64 {
		if p.Rank() == 0 {
			p.Send(1, []float32{9, 8, 7})
			return p.Clock()
		}
		dst := make([]float32, 3)
		p.RecvInto(0, dst)
		if dst[0] != 9 || dst[1] != 8 || dst[2] != 7 {
			t.Errorf("RecvInto payload = %v", dst)
		}
		return p.Clock()
	})
	if clocks[1] <= 0 {
		t.Error("RecvInto did not advance the receiver clock")
	}

	w2 := NewWorld(2, nil)
	w2.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, []float32{1, 2})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("RecvInto accepted a length mismatch")
			}
		}()
		p.RecvInto(0, make([]float32, 5))
	})
}

// Scratch buffers round-trip through the pool and Release tolerates
// foreign slices.
func TestScratchAndRelease(t *testing.T) {
	w := NewWorld(2, nil)
	w.Run(func(p *Proc) {
		s := p.Scratch(100)
		if len(s) != 100 {
			t.Errorf("Scratch(100) has len %d", len(s))
		}
		p.Release(s)
		m := p.ScratchMeta(7)
		if len(m) != 7 {
			t.Errorf("ScratchMeta(7) has len %d", len(m))
		}
		p.ReleaseMeta(m)
		// Slices the pool did not mint must be recognized and ignored —
		// including ones whose capacity matches a pool size class.
		p.Release(make([]float32, 3))
		p.Release(nil)
		p.ReleaseMeta(make([]float64, 5, 9))
		p.ReleaseMeta(make([]float64, 8))
		foreign := make([]float32, 256)
		p.Release(foreign)
		back := p.Scratch(256)
		if &back[0] == &foreign[0] {
			t.Error("pool recycled caller-owned memory: foreign Release must be a no-op")
		}
		p.Release(back)
	})
}

// A steady-state exchange loop must not allocate once the pool is warm.
// Only rank 0 measures — testing.AllocsPerRun mutates GOMAXPROCS, so it
// must not run concurrently on several ranks — while rank 1 echoes every
// payload until it sees the length-1 stop sentinel.
func TestPooledExchangeSteadyStateAllocs(t *testing.T) {
	w := NewWorld(2, nil)
	w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			for {
				got := p.Recv(0)
				if len(got) == 1 {
					p.Release(got)
					return
				}
				p.Send(0, got)
				p.Release(got)
			}
		}
		buf := make([]float32, 512)
		exchange := func() {
			p.Send(1, buf)
			got := p.Recv(1)
			p.Release(got)
		}
		for i := 0; i < 4; i++ { // warm the pool in both directions
			exchange()
		}
		allocs := testing.AllocsPerRun(50, exchange)
		p.Send(1, buf[:1]) // stop sentinel
		if allocs != 0 {
			t.Errorf("steady-state exchange allocates %.1f times per op", allocs)
		}
	})
}

func TestSizeClass(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := sizeClass(n); got != want {
			t.Errorf("sizeClass(%d) = %d, want %d", n, got, want)
		}
	}
}
