// Rank-failure semantics. A World tracks which ranks are alive; a rank
// dies either because its body panicked (a genuine crash, recovered by
// Run) or because its virtual clock crossed a simnet fail-at deadline
// (injected failure). Death is a latch: a per-rank channel closes, so a
// peer blocked in Recv on the dead rank unblocks immediately and panics
// a typed RankFailure instead of hanging — the MPI fail-fast model, and
// the fix for the wedge where one panicking rank left wg.Wait stuck
// forever.
//
// Failures cascade by design: once a rank dies, every rank that depends
// on it (directly or through chained async buckets) observes a
// RankFailure and dies too, so Run always returns. Run aggregates every
// rank's terminal panic into a RunError; Roots separates the ranks that
// originated failures from the ones that merely observed a dead peer,
// which is what an elastic trainer needs to decide who is really gone.
// Reset then revives the observers, drops the in-flight messages of the
// aborted collective, and the survivors can run a fresh one.
package comm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// RankFailure is the typed panic value of the failure machinery: raised
// on a rank when it is killed by an injected fail-at deadline (Rank is
// the panicking rank itself), and on any peer whose Send/Recv touches a
// rank already declared dead (Rank is the dead peer).
type RankFailure struct {
	// Rank is the world rank that failed.
	Rank int
}

func (f RankFailure) Error() string { return fmt.Sprintf("rank %d failed", f.Rank) }

// RankError pairs one rank with its terminal panic value from a Run.
type RankError struct {
	Rank int
	Err  any
}

func (e RankError) String() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// RunError aggregates every rank failure of one Run, in rank order —
// all of them, not just the first, so a multi-rank incident is fully
// attributable.
type RunError struct {
	Failures []RankError
}

func (e *RunError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.String()
	}
	return "comm: " + strings.Join(parts, "; ")
}

// Roots returns the ranks that originated failures: a rank whose panic
// was anything other than the observation of some other rank's death.
// Observers (ranks that died of RankFailure{other}) are excluded — they
// are collateral of the fail-fast cascade and are revived by Reset.
func (e *RunError) Roots() []int {
	var roots []int
	for _, f := range e.Failures {
		if rf, ok := f.Err.(RankFailure); ok && rf.Rank != f.Rank {
			continue
		}
		roots = append(roots, f.Rank)
	}
	sort.Ints(roots)
	return roots
}

// Observed reports whether rank r appears in the error at all.
func (e *RunError) Observed(r int) bool {
	for _, f := range e.Failures {
		if f.Rank == r {
			return true
		}
	}
	return false
}

// deadLatch is one rank's death state: a flag for cheap polling and a
// channel whose close unblocks every receiver parked on the rank.
type deadLatch struct {
	once sync.Once
	flag atomic.Bool
	ch   chan struct{}
}

func newLatches(n int) []deadLatch {
	l := make([]deadLatch, n)
	for i := range l {
		l[i].ch = make(chan struct{})
	}
	return l
}

// DeclareDead marks rank r permanently failed — the external kill
// switch (a test harness or an operator declaring a worker gone). The
// rank is treated as a root failure: peers blocked on it unblock with a
// RankFailure, subsequent Runs skip it, and Reset does not revive it.
// Call it between Runs, or from the rank's own goroutine.
func (w *World) DeclareDead(r int) {
	w.failed[r] = true
	w.markDead(r)
}

// markDead closes rank r's death latch, unblocking every peer waiting
// on a message from it (they panic RankFailure{r}). Idempotent and safe
// from any goroutine. Whether the death is permanent is decided
// separately (RunErr marks root causes; Reset revives the rest).
func (w *World) markDead(r int) {
	d := &w.dead[r]
	//adasum:alloc ok a rank dies at most once; failure handling is off the steady-state path
	d.once.Do(func() {
		d.flag.Store(true)
		close(d.ch)
	})
}

// Alive reports whether rank r has not been declared dead.
func (w *World) Alive(r int) bool { return !w.dead[r].flag.Load() }

// AliveRanks returns the ranks currently alive, ascending.
func (w *World) AliveRanks() []int {
	out := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if w.Alive(r) {
			out = append(out, r)
		}
	}
	return out
}

// Reset prepares the World for a fresh collective after an aborted one:
// every queued message on every plane is dropped (an aborted collective
// leaves stale payloads that would corrupt a retry), and ranks that died
// only as observers of the cascade are revived. Ranks that originated a
// failure (injected deadline or genuine panic) stay dead — their fail-at
// deadline has passed for good. Buffers inside dropped messages are not
// returned to the pool; an abort is not a steady-state path.
// Links are not reallocated: every plane's links are drained and
// recycled through the free list, so repeated fail/reset/rebuild cycles
// reuse the same channels instead of regrowing the fabric.
func (w *World) Reset() {
	w.planeMu.Lock()
	planes := w.planes
	w.planes = nil
	w.planeMu.Unlock()
	w.linkMu.Lock()
	w.recycleLinksLocked(w.plane0)
	// Recycle planes in sorted id order so the free list's contents are
	// a deterministic function of the abort, not of map iteration: the
	// recycled links are reused pointer-identically by later rebuilds,
	// and a reproducible fabric should not depend on which World got
	// which channel first.
	ids := make([]int, 0, len(planes))
	for id := range planes { //adasum:nondet ok keys are sorted before any order-sensitive use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w.recycleLinksLocked(planes[id])
	}
	w.linkMu.Unlock()
	for r := 0; r < w.size; r++ {
		if !w.dead[r].flag.Load() || w.failed[r] {
			continue
		}
		w.dead[r] = deadLatch{ch: make(chan struct{})}
	}
}

// SetTimeBase sets the virtual time at which the Procs of subsequent
// Runs start their clocks (default 0). An elastic trainer sets it to the
// cumulative simulated seconds before each step, so fail-at deadlines
// are measured on one continuous virtual timeline across steps.
func (w *World) SetTimeBase(t float64) { w.timeBase = t }

// TimeBase returns the current time base.
func (w *World) TimeBase() float64 { return w.timeBase }

// maybeFail kills this rank if its clock has reached the injected
// fail-at deadline: the rank is declared dead (unblocking peers) and a
// RankFailure naming itself unwinds to Run, which records it as a root
// failure.
//
//adasum:noalloc
func (p *Proc) maybeFail() {
	if p.clock >= p.failAt {
		p.world.markDead(p.rank)
		panic(RankFailure{Rank: p.rank})
	}
}

// checkPeer fails fast on traffic to a dead rank: a send would otherwise
// queue into a channel nobody drains (and, once the buffer fills, hang —
// the deadlock this machinery exists to remove).
func (p *Proc) checkPeer(dst int) {
	if !p.world.Alive(dst) {
		panic(RankFailure{Rank: dst})
	}
}

// Alive reports whether world rank r is currently alive — collective
// construction (Split) consults this to skip dead members.
func (p *Proc) Alive(r int) bool { return p.world.Alive(r) }
