package comm

import "sync/atomic"

// Goroutine recycling. Every `go f(args)` statement heap-allocates a
// closure wrapping the call (even a zero-argument method spawn
// allocates its method-value wrapper), so a substrate that spawns one
// goroutine per rank per Run and one per bucket op per step can never
// reach a 0-alloc steady state by spawning directly. Instead, rank
// bodies and async ops are submitted to a package-level pool of worker
// goroutines: a submit hands a runnable to an idle worker over a
// channel (no allocation), and a fresh worker is spawned — the only
// allocating path — exclusively when every existing worker is busy. The
// pool therefore grows to the process's high-water op concurrency and
// stays there, shared by all Worlds.
//
// Progress is guaranteed without sizing the pool: a submit either
// reserves a worker that is provably parked on (or headed to) the
// queue, or spawns a new one for itself, so ops that block — on
// virtual-time channel receives, chained handles, or dead-rank latches
// — can never starve later submissions. Workers never exit; an idle
// worker costs one parked goroutine (a few KB of stack), which is the
// price of allocation-free steady-state spawning.

// runnable is one unit of pooled work: a Handle's async op or a rank's
// Run body, both of which recover their own panics (a panic escaping
// run would kill the process, exactly as an unrecovered panic in a
// directly spawned goroutine would).
type runnable interface{ run() }

// The worker pool is deliberately process-global rather than per-World:
// it only decides WHICH goroutine executes a runnable, never what the
// runnable computes or when its virtual clock advances, so no result,
// clock, or wire-meter bit can observe the sharing. Keeping it global
// lets concurrent Worlds (multi-tenant tests, parallel benchmarks)
// share one warm pool instead of each paying goroutine-spawn warmup.
var (
	// workerIdle counts workers parked on (or committed to parking on)
	// workerQ. submit reserves one by decrementing before it sends, so
	// the send always finds a receiver promptly.
	workerIdle atomic.Int64          //adasum:global ok scheduling-only state: picks the executing goroutine, unobservable in results/clocks
	workerQ    = make(chan runnable) //adasum:global ok scheduling-only state: picks the executing goroutine, unobservable in results/clocks
)

// submit runs r on a pooled goroutine. It allocates only when the pool
// must grow.
//
//adasum:noalloc
func submit(r runnable) {
	for {
		n := workerIdle.Load()
		if n <= 0 {
			go worker(r) //adasum:alloc ok pool growth only; steady state hands work to a parked worker
			return
		}
		if workerIdle.CompareAndSwap(n, n-1) {
			workerQ <- r
			return
		}
	}
}

// worker runs its first assignment, then parks on the queue for more.
func worker(r runnable) {
	for {
		r.run()
		r = nil // release the last job while parked
		workerIdle.Add(1)
		r = <-workerQ
	}
}
