package serve

import (
	"repro/internal/collective"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// This file is the canonical multi-tenant demo scenario, shared by the
// acceptance test, the adasum-serve -oneshot smoke run and the
// scheduling experiment. Four jobs with mixed gang demands and priority
// classes contend for a 64-rank cluster; the mix is tuned so elastic
// migrations, priority preemptions and one injected rank failure all
// occur on every run:
//
//   - batch-low     (low, 32 ranks, elastic to 8): seated at t=0,
//     preempted when research-normal queues (a higher class), later
//     re-seated elastically on a partial gang, preempted again by
//     urgent-high, and finally re-admitted to finish.
//   - prod-normal   (normal, 32 ranks, pinned): seated at t=0,
//     preempted by urgent-high, resumed on the same gang size — its
//     FinalParams must be bitwise those of an uninterrupted run.
//   - research-normal (normal, 16 ranks, elastic to 4): queues behind
//     the full cluster, absorbs an injected rank failure mid-run, is
//     healed by a grow-back migration, and shrinks to its floor while
//     preempted tenants contend for the cluster.
//   - urgent-high   (high, 32 ranks, pinned): arrives mid-run and
//     preempts its way onto the cluster.
//
// Arrival and failure instants are placed relative to standalone probe
// runs rather than hardcoded, so the scenario keeps working when the
// cost model's constants move.

// DemoClusterRanks is the demo cluster's rank budget.
const DemoClusterRanks = 64

// demoJob builds one tenant's training config. Jobs differ by seed,
// data and step budget but share the substrate: Adasum on RVH with
// overlap on a per-job TCP fabric minted by the scheduler.
func demoJob(seed int64, n, microbatch, epochs int) trainer.Config {
	train, test := data.GeneratePair(data.Config{
		N: n, Dim: 48, Classes: 4, Noise: 0.5, Seed: seed,
	}, 128)
	return trainer.Config{
		Microbatch:  microbatch,
		Reduction:   trainer.ReduceAdasum,
		Scope:       trainer.PostOptimizer,
		PerLayer:    true,
		Comm:        trainer.CommCluster,
		Overlap:     true,
		Strategy:    collective.StrategyRVH,
		FusionBytes: 2048,
		StepSeconds: 1e-3,
		Model:       func() *nn.Network { return nn.NewMLP(48, 16, 4) },
		Optimizer:   optim.NewAdam(),
		Schedule:    optim.Constant{Base: 0.002},
		Train:       train, Test: test,
		MaxEpochs: epochs,
		Seed:      seed,
	}
}

// DemoSpecs returns the four-job demo mix. The specs are deterministic;
// building them runs two small standalone probes to place the
// urgent-high arrival and the injected failure mid-run on the virtual
// timeline.
func DemoSpecs() []JobSpec {
	prodCfg := demoJob(101, 512, 4, 2)   // 32 ranks -> 4 steps/epoch
	batchCfg := demoJob(102, 512, 4, 2)  // elastic: 4..16 steps/epoch
	rsrchCfg := demoJob(103, 512, 8, 2)  // 16 ranks -> 4 steps/epoch
	urgentCfg := demoJob(104, 512, 4, 1) // 4 steps total

	// Probe the pinned prod job standalone to learn roughly how long its
	// steps take at full size; urgent-high arrives mid-run relative to
	// that, and the rank failure lands at 30% of the research job's
	// standalone time (its local clock pauses while queued, so "30% in"
	// stays mid-run however long admission takes).
	probe := func(cfg trainer.Config, ranks int) float64 {
		cfg.Workers = ranks
		cfg.Net = simnet.TCP40(ranks)
		cfg.OnFailure = trainer.ShrinkContinue
		return trainer.Run(cfg).SimSeconds
	}
	prodSpan := probe(prodCfg, 32)
	rsrchSpan := probe(rsrchCfg, 16)

	return []JobSpec{
		{
			Name: "batch-low", Priority: PriorityLow,
			Ranks: 32, MinRanks: 8,
			ArrivalSeconds: 0,
			Config:         batchCfg,
		},
		{
			Name: "prod-normal", Priority: PriorityNormal,
			Ranks:          32,
			ArrivalSeconds: 0,
			Config:         prodCfg,
		},
		{
			Name: "research-normal", Priority: PriorityNormal,
			Ranks: 16, MinRanks: 4,
			ArrivalSeconds: prodSpan * 0.05,
			Faults: &simnet.Faults{
				FailAtSeconds: map[int]float64{5: rsrchSpan * 0.3},
			},
			Config: rsrchCfg,
		},
		{
			Name: "urgent-high", Priority: PriorityHigh,
			Ranks:          32,
			ArrivalSeconds: prodSpan * 0.5,
			Config:         urgentCfg,
		},
	}
}

// Demo builds the demo service with the four-job mix submitted and
// preemption + elasticity enabled. The caller drives it with Next/Run.
func Demo() *Service {
	s := New(Options{Ranks: DemoClusterRanks, Preempt: true, Elastic: true})
	for _, spec := range DemoSpecs() {
		if _, err := s.Submit(spec); err != nil {
			panic("serve: demo spec rejected: " + err.Error())
		}
	}
	return s
}
