package serve

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/trainer"
)

// The event loop. Two event kinds exist: a job arrival (its spec'd
// virtual time) and a step completion (the in-flight step of a running
// job commits). Steps execute eagerly when launched — the floats are
// computed before the cluster clock reaches the completion instant —
// which is sound because nothing the scheduler decides in between can
// reach into a job's World: preemption and resizing are deferred to
// the step commit, the checkpoint-granular boundary. Event order is a
// pure function of virtual times with job id as the tie-break, so the
// whole schedule replays bitwise.

// Next advances the service by one event and reports whether any jobs
// remain. It is the unit the daemon paces; tests and -oneshot call Run
// to drain.
func (s *Service) Next() bool {
	if s.remaining == 0 {
		return false
	}
	tArr, tStep := math.Inf(1), math.Inf(1)
	var stepJob *job
	for _, j := range s.jobs {
		switch j.state {
		case jobPending:
			if j.spec.ArrivalSeconds < tArr {
				tArr = j.spec.ArrivalSeconds
			}
		case jobRunning:
			if j.completion < tStep {
				tStep, stepJob = j.completion, j
			}
		}
	}
	switch {
	case math.IsInf(tArr, 1) && math.IsInf(tStep, 1):
		// Nothing running and nothing arriving, yet jobs remain: they
		// must all be queued with the whole cluster free; admission
		// seats at least the head (Submit validated Ranks <= cluster).
		if !s.anyQueued() {
			panic("serve: scheduler wedged with no events and no queued jobs")
		}
	case tArr <= tStep:
		s.now = tArr
	default:
		s.now = tStep
	}
	// Arrivals first: a job arriving at the same instant a step commits
	// must be visible to the admission pass that commit triggers.
	for _, j := range s.jobs {
		if j.state == jobPending && j.spec.ArrivalSeconds <= s.now {
			j.state = jobQueued
			j.queuedAt = s.now
		}
	}
	if stepJob != nil && stepJob.completion == s.now && tStep <= tArr {
		s.commit(stepJob)
	}
	s.admit()
	s.grow()
	s.events++
	return s.remaining > 0
}

func (s *Service) anyQueued() bool {
	for _, j := range s.jobs {
		if j.state == jobQueued {
			return true
		}
	}
	return false
}

// commit finalizes a running job's in-flight step and decides what the
// job does next: finish, checkpoint out (preemption), migrate to a new
// gang size, or launch its next step.
func (s *Service) commit(j *job) {
	j.stepsRun++
	// Reconcile failures the step absorbed: the gang shrank inside the
	// trainer, so the dead ranks' cluster slots return to the budget.
	if w := j.h.Workers(); w < j.ranks {
		s.free += j.ranks - w
		j.ranks = w
	}
	j.failures = j.failBase + len(j.h.Failures())
	switch {
	case j.h.Done():
		s.finish(j)
	case j.preemptWanted:
		s.preempt(j)
	case j.resizeTarget > 0 && j.resizeTarget != j.ranks:
		if j.resizeTarget > j.ranks && s.free < j.resizeTarget-j.ranks {
			// The idle ranks a grow was promised got seated in the
			// meantime; cancel and keep stepping at the current size.
			j.resizeTarget = 0
			s.launch(j)
			return
		}
		s.resize(j)
	default:
		j.resizeTarget = 0
		s.launch(j)
	}
}

// launch eagerly executes the job's next step and schedules its
// completion on the cluster timeline.
func (s *Service) launch(j *job) {
	before := j.h.SimSeconds()
	j.h.Step()
	j.lastStepSec = j.h.SimSeconds() - before
	j.completion = s.now + j.lastStepSec
}

// seat admits a queued job onto n ranks, resuming its checkpoint when
// it has one, and launches its first step.
func (s *Service) seat(j *job, n int) {
	cfg := j.config(n, j.resume(), s.opts.Net(n))
	j.h = trainer.Start(cfg)
	j.ckBlob = nil
	s.free -= n
	j.ranks = n
	j.state = jobRunning
	j.preemptWanted = false
	j.resizeTarget = 0
	j.queueWait += s.now - j.queuedAt
	if j.startedAt < 0 {
		j.startedAt = s.now
	}
	if j.h.Done() {
		// A zero-budget (or fully-trained checkpoint) job completes at
		// its admission instant.
		s.finish(j)
		return
	}
	s.launch(j)
}

func (j *job) resume() *checkpoint.State {
	if j.ckBlob == nil {
		return nil
	}
	return resumeState(j.ckBlob)
}

// finish retires a completed job and returns its ranks to the budget.
func (s *Service) finish(j *job) {
	j.result = j.h.Result()
	j.foldHandleStats()
	j.h = nil
	s.free += j.ranks
	j.ranks = 0
	j.state = jobDone
	j.doneAt = s.now
	s.remaining--
}

// preempt executes the preemption protocol at the step boundary: the
// job Marshals, releases its ranks and re-enters the queue. Only the
// checkpoint bytes survive.
func (s *Service) preempt(j *job) {
	j.ckBlob = j.h.Snapshot().Marshal()
	j.foldHandleStats()
	j.h = nil
	s.free += j.ranks
	j.ranks = 0
	j.preemptWanted = false
	j.resizeTarget = 0
	j.preemptions++
	j.state = jobQueued
	j.queuedAt = s.now
	j.wasQueued = true
}

// resize migrates a running job to a new gang size in place: snapshot,
// release, resume on the target size via ReshapeResume. The job never
// leaves the running set.
func (s *Service) resize(j *job) {
	target := j.resizeTarget
	j.resizeTarget = 0
	blob := j.h.Snapshot().Marshal()
	j.foldHandleStats()
	j.h = nil
	s.free += j.ranks
	cfg := j.config(target, resumeState(blob), s.opts.Net(target))
	j.h = trainer.Start(cfg)
	s.free -= target
	j.ranks = target
	j.migrations++
	if j.h.Done() {
		s.finish(j)
		return
	}
	s.launch(j)
}

// admit seats queued jobs in schedule order — priority class first,
// FIFO within a class — until the head no longer fits. A head that
// cannot be seated may trigger preemption (mark lower-class victims)
// and elastic shrinks; both release ranks at the victims' next step
// commits, after which admission runs again. Head-of-line blocking
// within a pass is deliberate: backfilling smaller jobs past a starved
// head would starve it forever under steady load.
func (s *Service) admit() {
	queued := s.queuedInOrder()
	if len(queued) > 0 {
		// Load appeared: pending grows yield to waiting tenants.
		for _, r := range s.jobs {
			if r.state == jobRunning && r.resizeTarget > r.ranks {
				r.resizeTarget = 0
			}
		}
	}
	for _, j := range queued {
		if j.spec.Ranks <= s.free {
			s.seat(j, j.spec.Ranks)
			continue
		}
		// An elastic job under a loaded cluster takes the largest seat
		// of its halving chain that fits, rather than waiting for full
		// size; it grows back when the cluster drains.
		if s.opts.Elastic && j.spec.MinRanks > 0 {
			seated := false
			for _, n := range gangSizes(&j.spec)[1:] {
				if n <= s.free {
					s.seat(j, n)
					seated = true
					break
				}
			}
			if seated {
				continue
			}
		}
		need := j.spec.Ranks
		avail := s.free + s.incoming()
		if s.opts.Preempt && avail < need {
			avail = s.markVictims(j, need, avail)
		}
		if s.opts.Elastic && avail < need {
			s.markShrinks(j, need, avail)
		}
		break
	}
}

// queuedInOrder returns the queued jobs in admission order.
func (s *Service) queuedInOrder() []*job {
	var queued []*job
	for _, j := range s.jobs {
		if j.state == jobQueued {
			queued = append(queued, j)
		}
	}
	byScheduleOrder(queued)
	return queued
}

// incoming sums the ranks already promised back to the budget by
// pending preemptions and shrinks.
func (s *Service) incoming() int {
	sum := 0
	for _, j := range s.jobs {
		if j.state != jobRunning {
			continue
		}
		switch {
		case j.preemptWanted:
			sum += j.ranks
		case j.resizeTarget > 0 && j.resizeTarget < j.ranks:
			sum += j.ranks - j.resizeTarget
		}
	}
	return sum
}

// markVictims marks running jobs of strictly lower priority classes
// for preemption — lowest class first, oldest id first — until the
// head's demand is covered, and returns the updated availability.
func (s *Service) markVictims(head *job, need, avail int) int {
	var cands []*job
	for _, j := range s.jobs {
		if j.state == jobRunning && !j.preemptWanted && j.spec.Priority < head.spec.Priority {
			cands = append(cands, j)
		}
	}
	byVictimOrder(cands)
	for _, v := range cands {
		if avail >= need {
			break
		}
		if v.resizeTarget > 0 && v.resizeTarget < v.ranks {
			// A pending shrink's credit is subsumed by the full preempt.
			avail -= v.ranks - v.resizeTarget
		}
		v.resizeTarget = 0
		v.preemptWanted = true
		avail += v.ranks
	}
	return avail
}

// markShrinks marks elastic running jobs of the head's class or lower
// to shrink to their floor — lowest class first, oldest id first —
// until the head's demand is covered.
func (s *Service) markShrinks(head *job, need, avail int) {
	var cands []*job
	for _, j := range s.jobs {
		if j.state == jobRunning && !j.preemptWanted && j.resizeTarget == 0 &&
			j.spec.MinRanks > 0 && j.ranks > j.spec.MinRanks &&
			j.spec.Priority <= head.spec.Priority && j != head {
			cands = append(cands, j)
		}
	}
	byVictimOrder(cands)
	for _, v := range cands {
		if avail >= need {
			break
		}
		v.resizeTarget = v.spec.MinRanks
		avail += v.ranks - v.spec.MinRanks
	}
}

// grow hands idle ranks back to shrunken elastic jobs once nobody
// waits: each eligible job (id order) is promised one step up its
// halving chain, applied at its next step commit if the ranks are
// still free then.
func (s *Service) grow() {
	if !s.opts.Elastic || s.anyQueued() {
		return
	}
	budget := s.free
	for _, j := range s.jobs {
		if j.state != jobRunning || j.spec.MinRanks <= 0 || j.preemptWanted || j.resizeTarget != 0 || j.ranks >= j.spec.Ranks {
			continue
		}
		target := nextSizeUp(&j.spec, j.ranks)
		if target <= j.ranks || target-j.ranks > budget {
			continue
		}
		j.resizeTarget = target
		budget -= target - j.ranks
	}
}

// nextSizeUp returns the smallest gang size of the job's chain strictly
// above cur, or cur when the job is already at (or somehow past) its
// requested size.
func nextSizeUp(spec *JobSpec, cur int) int {
	best := cur
	for _, n := range gangSizes(spec) {
		if n > cur && (best == cur || n < best) {
			best = n
		}
	}
	return best
}

// sanity check: the budget must never go negative or exceed the
// cluster. Kept as a method so tests can assert it between events.
func (s *Service) checkBudget() error {
	used := 0
	for _, j := range s.jobs {
		used += j.ranks
	}
	if used+s.free != s.opts.Ranks || s.free < 0 {
		return fmt.Errorf("serve: budget broken: %d used + %d free != %d", used, s.free, s.opts.Ranks)
	}
	return nil
}
