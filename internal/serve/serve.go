// Package serve is the multi-tenant training service on the elastic
// substrate: a deterministic scheduler that admits many concurrent
// training jobs onto one shared simulated cluster. It turns the
// library — trainer runs, Worlds, checkpoints — into a system: a job
// queue with admission control (a cluster-wide rank budget, FIFO
// within priority classes), priority preemption and migration through
// the checkpoint package, elastic grow/shrink policies reacting to
// cluster load and injected failures, and a metrics registry the
// adasum-serve daemon streams.
//
// Everything runs on virtual time. The service keeps one cluster-wide
// virtual clock and advances it event by event — job arrivals and step
// completions — while each job's trainer Handle keeps its own local
// virtual timeline (which pauses while the job is queued or preempted
// and continues across migrations). There is no wall-clock read and no
// goroutine in this package: jobs execute their steps eagerly when
// scheduled (rank-goroutine parallelism lives inside each job's World,
// where it is GOMAXPROCS-invariant), and the scheduler orders commits
// purely by virtual completion time with job id as the tie-break. A
// whole service run therefore replays bitwise: per-job FinalParams,
// virtual completion times, queue waits, preemption counts — across
// processes and across GOMAXPROCS. adasum-vet's detmap/wallclock/
// globalmut analyzers enforce the discipline statically.
//
// The preemption protocol is checkpoint-granular: a preemption request
// marks the victim, the victim's in-flight step commits at its
// completion event, the job Snapshots at that step boundary, Marshals
// to bytes (the migration artifact — nothing else survives), releases
// its ranks and re-enters the queue; re-admission Unmarshals and
// Resumes, on the same gang size bitwise-identically, or onto a
// different-sized gang via trainer.Config.ReshapeResume (the
// ShrinkContinue-style re-cut). Elastic resizes ride the identical
// snapshot-release-resume path, just without leaving the running set.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// Options configures a Service.
type Options struct {
	// Ranks is the cluster's total rank budget — the number of
	// simulated accelerators the scheduler allocates gangs from.
	Ranks int
	// Net mints the cost model for one job's World: called with the
	// job's gang size at every (re)admission, so each job gets its own
	// isolated fabric sized to its gang. nil defaults to TCP40.
	Net func(ranks int) *simnet.Model
	// Preempt enables priority preemption: a queued job of a higher
	// priority class may evict running lower-class jobs (checkpointed,
	// not killed) when the free budget cannot seat it.
	Preempt bool
	// Elastic enables load-reactive resizing of jobs that declare a
	// MinRanks floor: shrink-to-fit when the queue head cannot be
	// seated, grow-back toward the requested size when ranks sit idle
	// and nobody waits.
	Elastic bool
}

// Service is the scheduler instance. Not safe for concurrent use: one
// goroutine drives Submit/Next/Run and reads Snapshot between events
// (the adasum-serve daemon serializes its HTTP reads behind the same
// loop).
type Service struct {
	opts      Options
	jobs      []*job // id-indexed; submission order
	now       float64
	free      int
	events    int
	remaining int // jobs not yet done
}

// New creates a Service with the given options.
func New(opts Options) *Service {
	if opts.Ranks <= 0 {
		panic("serve: Options.Ranks must be positive")
	}
	if opts.Net == nil {
		opts.Net = func(ranks int) *simnet.Model { return simnet.TCP40(ranks) }
	}
	return &Service{opts: opts, free: opts.Ranks}
}

// Submit registers a job with the service and returns its id. All
// submissions happen before the event loop starts consuming their
// arrival times; a job enters the queue when the cluster clock reaches
// its ArrivalSeconds.
func (s *Service) Submit(spec JobSpec) (int, error) {
	if err := s.validate(&spec); err != nil {
		return 0, err
	}
	id := len(s.jobs)
	s.jobs = append(s.jobs, &job{
		id: id, spec: spec, state: jobPending,
		startedAt: -1, doneAt: -1,
	})
	s.remaining++
	return id, nil
}

// validate checks a spec against the cluster and the trainer's own
// config validation at every gang size the scheduler may run it on.
func (s *Service) validate(spec *JobSpec) error {
	if spec.Ranks <= 0 {
		return fmt.Errorf("serve: job %q requests %d ranks", spec.Name, spec.Ranks)
	}
	if spec.Ranks > s.opts.Ranks {
		return fmt.Errorf("serve: job %q requests %d ranks, cluster has %d", spec.Name, spec.Ranks, s.opts.Ranks)
	}
	if spec.MinRanks < 0 || spec.MinRanks > spec.Ranks {
		return fmt.Errorf("serve: job %q has MinRanks %d outside [0, Ranks=%d]", spec.Name, spec.MinRanks, spec.Ranks)
	}
	if spec.ArrivalSeconds < 0 {
		return fmt.Errorf("serve: job %q arrives at negative time %v", spec.Name, spec.ArrivalSeconds)
	}
	switch spec.Priority {
	case PriorityLow, PriorityNormal, PriorityHigh:
	default:
		return fmt.Errorf("serve: job %q has unknown priority %d", spec.Name, spec.Priority)
	}
	// The scheduler only ever seats the job on sizes from its halving
	// chain; every one of them must pass the trainer's validation now,
	// not at migration time deep inside the event loop.
	for _, n := range gangSizes(spec) {
		cfg := spec.Config
		cfg.Workers = n
		cfg.Net = s.opts.Net(n)
		cfg.OnFailure = trainer.ShrinkContinue
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("serve: job %q invalid at gang size %d: %w", spec.Name, n, err)
		}
	}
	return nil
}

// gangSizes lists the sizes the scheduler may seat a job on: the
// requested size and, for elastic jobs, its halving chain down to
// MinRanks.
func gangSizes(spec *JobSpec) []int {
	sizes := []int{spec.Ranks}
	if spec.MinRanks > 0 {
		for n := spec.Ranks / 2; n >= spec.MinRanks && n > 0; n /= 2 {
			sizes = append(sizes, n)
		}
	}
	return sizes
}

// Done reports whether every submitted job has completed.
func (s *Service) Done() bool { return s.remaining == 0 }

// Now returns the cluster's virtual clock.
func (s *Service) Now() float64 { return s.now }

// Events returns the number of scheduler events processed so far.
func (s *Service) Events() int { return s.events }

// Result returns a completed job's training result, or nil while the
// job is still pending, queued or running.
func (s *Service) Result(id int) *trainer.Result { return s.jobs[id].result }

// Run drains the event loop until every job completes.
func (s *Service) Run() {
	for s.Next() {
	}
}

// resumeState deserializes a preempted job's checkpoint bytes — the
// only thing that survives a preemption.
func resumeState(blob []byte) *checkpoint.State {
	ck, err := checkpoint.Unmarshal(blob)
	if err != nil {
		panic(fmt.Sprintf("serve: preempted checkpoint failed to unmarshal: %v", err))
	}
	return ck
}

// byScheduleOrder sorts job pointers by (priority desc, queue entry
// asc, id asc) — the admission order. Queue entry times are virtual
// and can tie (a preempted job re-enters at the same instant another
// arrives); the id breaks every tie deterministically.
func byScheduleOrder(js []*job) {
	sort.Slice(js, func(a, b int) bool {
		x, y := js[a], js[b]
		if x.spec.Priority != y.spec.Priority {
			return x.spec.Priority > y.spec.Priority
		}
		if x.queuedAt != y.queuedAt {
			return x.queuedAt < y.queuedAt
		}
		return x.id < y.id
	})
}

// byVictimOrder sorts preemption/shrink candidates by (priority asc,
// id asc): the cheapest class pays first, oldest job first within it.
func byVictimOrder(js []*job) {
	sort.Slice(js, func(a, b int) bool {
		x, y := js[a], js[b]
		if x.spec.Priority != y.spec.Priority {
			return x.spec.Priority < y.spec.Priority
		}
		return x.id < y.id
	})
}
