package serve

import (
	"repro/internal/checkpoint"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// Priority is a job's admission class. Within a class the queue is
// FIFO; across classes higher always seats first, and with
// Options.Preempt a higher-class arrival may evict lower-class running
// jobs through the checkpoint protocol.
type Priority int

// Priority classes, lowest first.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	default:
		return "low"
	}
}

// JobSpec describes one training job submitted to the service.
type JobSpec struct {
	// Name labels the job in metrics output.
	Name string
	// Priority is the admission class.
	Priority Priority
	// Ranks is the requested gang size. The scheduler seats the job on
	// exactly this many cluster ranks (less only after failures or
	// elastic shrinks).
	Ranks int
	// MinRanks, when positive, marks the job elastic: under load the
	// scheduler may run it on any size of the halving chain from Ranks
	// down to MinRanks, migrating via checkpoint/ReshapeResume. Zero
	// pins the job at Ranks.
	MinRanks int
	// ArrivalSeconds is the cluster virtual time at which the job
	// enters the queue.
	ArrivalSeconds float64
	// Faults, when non-nil, injects stragglers and rank failures into
	// this job's World, on the job's local virtual timeline (deadlines
	// keep counting across preemption gaps, because the job's
	// SimSeconds rides its checkpoints). Rank indices refer to the
	// job's current gang.
	Faults *simnet.Faults
	// Config is the job's training configuration. The scheduler owns
	// Workers, Net, OnFailure (always ShrinkContinue), Resume and
	// ReshapeResume; everything else — model, data, optimizer, scope,
	// compression, step budget — is the tenant's.
	Config trainer.Config
}

// jobState is the job lifecycle: Pending (not yet arrived) → Queued →
// Running ⇄ {Queued (preempted)} → Done.
type jobState int

const (
	jobPending jobState = iota
	jobQueued
	jobRunning
	jobDone
)

func (st jobState) String() string {
	switch st {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	default:
		return "pending"
	}
}

// job is the scheduler's per-job runtime state.
type job struct {
	id    int
	spec  JobSpec
	state jobState

	// Running state: the live handle, the seated gang size, and the
	// cluster-time completion of the in-flight step.
	h          *trainer.Handle
	ranks      int
	completion float64
	// preemptWanted marks the job for checkpoint-and-release at its
	// next step commit; resizeTarget (nonzero) for snapshot-and-resume
	// on a different gang size. Preemption wins when both are set.
	preemptWanted bool
	resizeTarget  int

	// ckBlob carries a preempted job across the queue: the marshaled
	// checkpoint is the whole migration artifact.
	ckBlob []byte

	// Bookkeeping (cluster virtual time unless noted).
	queuedAt    float64 // last queue entry
	startedAt   float64 // first admission; -1 until then
	doneAt      float64 // completion; -1 until then
	queueWait   float64 // cumulative time spent queued
	lastStepSec float64 // job-local duration of the last committed step
	stepsRun    int     // steps committed under this scheduler
	preemptions int
	migrations  int
	failures    int     // absorbed rank failures, cumulative across handles
	failBase    int     // failures of already-released handles
	simSaved    float64 // local SimSeconds at last handle release
	wireBase    int64   // wire bytes of released handles
	wasQueued   bool    // drove queueWait accounting at least once

	result *trainer.Result
}

// wireBytes returns the job's cumulative fabric traffic across every
// World it has occupied.
func (j *job) wireBytes() int64 {
	if j.h != nil {
		return j.wireBase + j.h.WireBytes()
	}
	return j.wireBase
}

// foldHandleStats rolls the live handle's counters into the job's
// cumulative bases. Called exactly once before each handle release
// (finish, preempt, resize): a resumed handle starts its own counters
// from zero, so the job-level totals must carry across.
func (j *job) foldHandleStats() {
	j.failures = j.failBase + len(j.h.Failures())
	j.failBase = j.failures
	j.simSaved = j.h.SimSeconds()
	j.wireBase += j.h.WireBytes()
}

// config assembles the trainer config seating the job on a gang of n
// ranks, resuming from ck when the job has history. The cost model is
// minted fresh per admission — per-job World isolation — and the
// job's fault injection is re-attached with already-fired deadlines
// dropped (a resumed World would otherwise re-kill the replacement
// rank occupying a dead rank's index).
func (j *job) config(n int, ck *checkpoint.State, net *simnet.Model) trainer.Config {
	cfg := j.spec.Config
	cfg.Workers = n
	cfg.Net = net
	cfg.OnFailure = trainer.ShrinkContinue
	cfg.Resume = ck
	cfg.ReshapeResume = ck != nil && ck.Workers != n
	if f := j.spec.Faults; f != nil {
		resumeAt := 0.0
		if ck != nil {
			resumeAt = ck.SimSeconds
		}
		cfg.Net.Faults = filterFaults(f, j.spec.Ranks, resumeAt)
	}
	return cfg
}

// filterFaults copies f with the failure deadlines at or before
// resumeAt removed. Deadlines are on the job's local timeline; a rank
// whose deadline already fired is gone from the gang, and the index it
// occupied belongs to a different (surviving) worker after the
// re-split. maxRanks bounds the rank indices worth scanning, so no
// map iteration is needed.
func filterFaults(f *simnet.Faults, maxRanks int, resumeAt float64) *simnet.Faults {
	out := &simnet.Faults{
		SkewFactors: f.SkewFactors,
		Jitter:      f.Jitter,
		JitterSeed:  f.JitterSeed,
	}
	for rank := 0; rank < maxRanks; rank++ {
		if t := f.FailAt(rank); !isInf(t) && t > resumeAt {
			if out.FailAtSeconds == nil {
				out.FailAtSeconds = make(map[int]float64)
			}
			out.FailAtSeconds[rank] = t
		}
	}
	return out
}

func isInf(t float64) bool { return t > 1e308 }
