package serve

import (
	"fmt"
	"io"
)

// JobMetrics is one job's row in a metrics snapshot. All times are
// virtual seconds; wire bytes accumulate across every World the job
// has occupied (preemptions and migrations included).
type JobMetrics struct {
	ID          int
	Name        string
	Priority    Priority
	State       string
	Ranks       int     // currently seated gang size (0 unless running)
	Requested   int     // spec gang size
	Steps       int     // steps committed
	TotalSteps  int     // step budget (0 until first admission)
	LastStepSec float64 // job-local duration of the last committed step
	SimSeconds  float64 // job-local virtual training time so far
	QueueWait   float64 // cumulative virtual time spent queued
	StartedAt   float64 // first admission (-1 if not yet admitted)
	DoneAt      float64 // completion (-1 if not done)
	Preemptions int
	Migrations  int
	Failures    int // rank failures absorbed by the job's gang
	WireBytes   int64
}

// Snapshot is a point-in-time view of the whole service, taken between
// scheduler events. Jobs appear in id (submission) order, so rendering
// a snapshot is deterministic.
type Snapshot struct {
	Now          float64
	Events       int
	ClusterRanks int
	BusyRanks    int
	FreeRanks    int
	QueueDepth   int
	Pending      int
	Running      int
	DoneJobs     int
	Preemptions  int // cluster-wide total
	Jobs         []JobMetrics
}

// Snapshot captures the service's current state. Safe to call between
// any two events (the daemon calls it from the scheduler loop; there is
// no locking because there is no concurrency to lock against).
func (s *Service) Snapshot() Snapshot {
	snap := Snapshot{
		Now:          s.now,
		Events:       s.events,
		ClusterRanks: s.opts.Ranks,
		FreeRanks:    s.free,
		Jobs:         make([]JobMetrics, 0, len(s.jobs)),
	}
	for _, j := range s.jobs {
		m := JobMetrics{
			ID:          j.id,
			Name:        j.spec.Name,
			Priority:    j.spec.Priority,
			State:       j.state.String(),
			Ranks:       j.ranks,
			Requested:   j.spec.Ranks,
			Steps:       j.stepsRun,
			LastStepSec: j.lastStepSec,
			QueueWait:   j.queueWait,
			StartedAt:   j.startedAt,
			DoneAt:      j.doneAt,
			Preemptions: j.preemptions,
			Migrations:  j.migrations,
			Failures:    j.failures,
			WireBytes:   j.wireBytes(),
		}
		if j.h != nil {
			m.TotalSteps = j.h.TotalSteps()
			m.SimSeconds = j.h.SimSeconds()
		} else {
			// Queued-preempted and done jobs report the local time their
			// last handle had accrued when it was released.
			m.SimSeconds = j.simSaved
		}
		switch j.state {
		case jobPending:
			snap.Pending++
		case jobQueued:
			snap.QueueDepth++
		case jobRunning:
			snap.Running++
			snap.BusyRanks += j.ranks
		case jobDone:
			snap.DoneJobs++
		}
		snap.Preemptions += j.preemptions
		snap.Jobs = append(snap.Jobs, m)
	}
	return snap
}

// Render writes the snapshot as a fixed-format text block — the
// streaming wire format of the adasum-serve daemon and the -oneshot
// output. The format is stable and deterministic: two identical
// service states render byte-identically.
func (m Snapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "now=%.6f events=%d ranks=%d busy=%d free=%d queue=%d pending=%d running=%d done=%d preemptions=%d\n",
		m.Now, m.Events, m.ClusterRanks, m.BusyRanks, m.FreeRanks,
		m.QueueDepth, m.Pending, m.Running, m.DoneJobs, m.Preemptions)
	for _, j := range m.Jobs {
		fmt.Fprintf(w, "job id=%d name=%s prio=%s state=%s ranks=%d/%d steps=%d/%d sim=%.6f wait=%.6f laststep=%.6f preempt=%d migrate=%d fail=%d wire=%d\n",
			j.ID, j.Name, j.Priority, j.State, j.Ranks, j.Requested,
			j.Steps, j.TotalSteps, j.SimSeconds, j.QueueWait, j.LastStepSec,
			j.Preemptions, j.Migrations, j.Failures, j.WireBytes)
	}
}
