package serve

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/simnet"
	"repro/internal/trainer"
)

// checkedRun drains the service, asserting the rank-budget invariant
// between every pair of events.
func checkedRun(t *testing.T, s *Service) {
	t.Helper()
	for s.Next() {
		if err := s.checkBudget(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.checkBudget(); err != nil {
		t.Fatal(err)
	}
}

// TestDemoScenario is the PR's acceptance demo: four jobs with mixed
// gang demands and priority classes on a 64-rank cluster, with one
// injected rank failure and priority preemption. Every job must
// complete; the preempted pinned job must land bitwise on the params of
// an uninterrupted standalone run (same gang size before and after, so
// the trajectory is unchanged); and the whole service must replay
// identically across two invocations.
func TestDemoScenario(t *testing.T) {
	specs := DemoSpecs()
	mk := func() *Service {
		s := New(Options{Ranks: DemoClusterRanks, Preempt: true, Elastic: true})
		for _, spec := range specs {
			if _, err := s.Submit(spec); err != nil {
				t.Fatalf("submit %q: %v", spec.Name, err)
			}
		}
		return s
	}

	s := mk()
	checkedRun(t, s)
	snap := s.Snapshot()

	if snap.DoneJobs != len(specs) {
		t.Fatalf("only %d/%d jobs completed", snap.DoneJobs, len(specs))
	}
	if snap.BusyRanks != 0 || snap.FreeRanks != DemoClusterRanks {
		t.Fatalf("cluster not drained: busy=%d free=%d", snap.BusyRanks, snap.FreeRanks)
	}
	byName := map[string]JobMetrics{}
	for _, j := range snap.Jobs {
		byName[j.Name] = j
		if s.Result(j.ID) == nil {
			t.Fatalf("job %q done but has no result", j.Name)
		}
		if j.WireBytes <= 0 {
			t.Fatalf("job %q reports no fabric traffic", j.Name)
		}
	}
	if snap.Preemptions == 0 {
		t.Fatal("demo ran without a single preemption")
	}
	if got := byName["research-normal"].Failures; got != 1 {
		t.Fatalf("research-normal absorbed %d failures, want 1", got)
	}
	if byName["research-normal"].Migrations == 0 {
		t.Fatal("elastic research-normal never migrated")
	}
	if byName["batch-low"].Preemptions == 0 {
		t.Fatal("low-priority batch-low was never preempted")
	}
	if byName["urgent-high"].QueueWait <= 0 {
		t.Fatal("urgent-high was seated instantly; the preemption path never ran")
	}

	// The pinned normal-priority job is preempted and resumed on the
	// same gang size: bitwise the standalone run.
	prodID := byName["prod-normal"].ID
	if byName["prod-normal"].Preemptions == 0 {
		t.Fatal("prod-normal was never preempted")
	}
	cfg := specs[prodID].Config
	cfg.Workers = specs[prodID].Ranks
	cfg.Net = simnet.TCP40(cfg.Workers)
	cfg.OnFailure = trainer.ShrinkContinue
	alone := trainer.Run(cfg)
	got := s.Result(prodID)
	for i, v := range alone.FinalParams {
		if got.FinalParams[i] != v {
			t.Fatalf("prod-normal diverged from the uninterrupted run at %d: %v != %v", i, got.FinalParams[i], v)
		}
	}

	// Replay: a second invocation is the same computation.
	s2 := mk()
	s2.Run()
	if a, b := renderString(snap), renderString(s2.Snapshot()); a != b {
		t.Fatalf("service replay diverged:\n--- first\n%s--- second\n%s", a, b)
	}
	for id := range specs {
		a, b := s.Result(id), s2.Result(id)
		for i, v := range a.FinalParams {
			if b.FinalParams[i] != v {
				t.Fatalf("job %d params diverged across replays at %d", id, i)
			}
		}
	}
}

func renderString(m Snapshot) string {
	var b strings.Builder
	m.Render(&b)
	return b.String()
}

// TestSchedulerGOMAXPROCSInvariance runs the same job mix at 1 and 8
// scheduler-visible processors and demands bitwise-identical per-job
// FinalParams and identical virtual completion times. All parallelism
// lives inside each job's World where it is clock-exact, so the
// schedule — a pure function of virtual time — cannot observe the
// processor count. Under -race this doubles as the no-data-races proof.
func TestSchedulerGOMAXPROCSInvariance(t *testing.T) {
	mix := contentionMix(nil)
	run := func(procs int) (Snapshot, []*trainer.Result) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		s := New(Options{Ranks: 16, Preempt: true, Elastic: true})
		for _, spec := range mix {
			if _, err := s.Submit(spec); err != nil {
				t.Fatalf("submit %q: %v", spec.Name, err)
			}
		}
		s.Run()
		var res []*trainer.Result
		for id := range mix {
			res = append(res, s.Result(id))
		}
		return s.Snapshot(), res
	}

	snap1, res1 := run(1)
	snap8, res8 := run(8)

	if a, b := renderString(snap1), renderString(snap8); a != b {
		t.Fatalf("schedule depends on GOMAXPROCS:\n--- 1P\n%s--- 8P\n%s", a, b)
	}
	for id := range res1 {
		if res1[id] == nil || res8[id] == nil {
			t.Fatalf("job %d missing a result", id)
		}
		for i, v := range res1[id].FinalParams {
			if res8[id].FinalParams[i] != v {
				t.Fatalf("job %d params differ between 1P and 8P at %d", id, i)
			}
		}
		if res1[id].SimSeconds != res8[id].SimSeconds {
			t.Fatalf("job %d virtual time differs between 1P and 8P", id)
		}
	}
}

// contentionMix is a small three-job mix on a 16-rank cluster that
// exercises queueing, shrink and preemption without the demo's probe
// runs: a low elastic job holding the cluster, a normal job that forces
// a shrink, and a high job that preempts. codec (nil for uncompressed)
// applies to every job.
func contentionMix(codec compress.Compression) []JobSpec {
	withCodec := func(cfg trainer.Config) trainer.Config {
		cfg.Compression = codec
		return cfg
	}
	return []JobSpec{
		{
			Name: "low-elastic", Priority: PriorityLow,
			Ranks: 16, MinRanks: 4, ArrivalSeconds: 0,
			Config: withCodec(demoJob(201, 512, 4, 1)),
		},
		{
			Name: "normal-pinned", Priority: PriorityNormal,
			Ranks: 8, ArrivalSeconds: 0.002,
			Config: withCodec(demoJob(202, 512, 8, 2)),
		},
		{
			Name: "high-pinned", Priority: PriorityHigh,
			Ranks: 16, ArrivalSeconds: 0.006,
			Config: withCodec(demoJob(203, 512, 4, 1)),
		},
	}
}

// TestPreemptResumeBitwiseAcrossCodecs pins the preemption protocol
// end to end for every compression arm, including top-k error feedback
// whose residual state must ride the checkpoint: a pinned job that is
// preempted and later re-seated on the same gang size must finish
// bitwise-identical to a standalone run of the same config.
func TestPreemptResumeBitwiseAcrossCodecs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec compress.Compression
	}{
		{"uncompressed", nil},
		{"topk-ef", compress.TopK(0.25, true)},
		{"adaptive", compress.Adaptive()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// victim: pinned 8-rank normal job seated first on an
			// 8-rank cluster; bully: high-priority 8-rank job arriving
			// mid-run. The victim is preempted, waits out the bully,
			// resumes at the same size.
			victim := JobSpec{
				Name: "victim", Priority: PriorityNormal,
				Ranks: 8, ArrivalSeconds: 0,
				Config: demoJob(301, 512, 8, 2),
			}
			victim.Config.Compression = tc.codec
			bully := JobSpec{
				Name: "bully", Priority: PriorityHigh,
				Ranks: 8, ArrivalSeconds: 0.003,
				Config: demoJob(302, 512, 8, 1),
			}
			bully.Config.Compression = tc.codec

			s := New(Options{Ranks: 8, Preempt: true})
			vid, err := s.Submit(victim)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Submit(bully); err != nil {
				t.Fatal(err)
			}
			checkedRun(t, s)

			snap := s.Snapshot()
			if snap.Jobs[vid].Preemptions == 0 {
				t.Fatal("victim was never preempted; the scenario lost its point")
			}

			cfg := victim.Config
			cfg.Workers = victim.Ranks
			cfg.Net = simnet.TCP40(cfg.Workers)
			cfg.OnFailure = trainer.ShrinkContinue
			alone := trainer.Run(cfg)
			got := s.Result(vid)
			for i, v := range alone.FinalParams {
				if got.FinalParams[i] != v {
					t.Fatalf("victim diverged from standalone at %d: %v != %v", i, got.FinalParams[i], v)
				}
			}
			if alone.SimSeconds != got.SimSeconds {
				t.Fatalf("victim's local virtual time diverged: %v != %v", alone.SimSeconds, got.SimSeconds)
			}
		})
	}
}

// TestSubmitValidation covers the admission-time rejections.
func TestSubmitValidation(t *testing.T) {
	s := New(Options{Ranks: 8})
	good := demoJob(401, 512, 8, 1)
	for _, tc := range []struct {
		name string
		spec JobSpec
	}{
		{"zero ranks", JobSpec{Name: "z", Ranks: 0, Config: good}},
		{"over cluster", JobSpec{Name: "o", Ranks: 16, Config: good}},
		{"bad floor", JobSpec{Name: "f", Ranks: 8, MinRanks: 9, Config: good}},
		{"negative arrival", JobSpec{Name: "n", Ranks: 8, ArrivalSeconds: -1, Config: good}},
		{"bad priority", JobSpec{Name: "p", Ranks: 8, Priority: Priority(9), Config: good}},
	} {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := s.Submit(JobSpec{Name: "ok", Ranks: 8, Config: good}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestElasticGrowBack: a single elastic job seated at its floor on a
// busy cluster grows back toward its requested size once the cluster
// drains.
func TestElasticGrowBack(t *testing.T) {
	hog := JobSpec{
		Name: "hog", Priority: PriorityNormal,
		Ranks: 8, ArrivalSeconds: 0,
		Config: demoJob(501, 768, 4, 1),
	}
	elastic := JobSpec{
		Name: "elastic", Priority: PriorityNormal,
		Ranks: 16, MinRanks: 4, ArrivalSeconds: 0.0005,
		Config: demoJob(502, 512, 4, 2),
	}
	s := New(Options{Ranks: 16, Elastic: true})
	if _, err := s.Submit(hog); err != nil {
		t.Fatal(err)
	}
	eid, err := s.Submit(elastic)
	if err != nil {
		t.Fatal(err)
	}
	checkedRun(t, s)
	m := s.Snapshot().Jobs[eid]
	if m.State != "done" {
		t.Fatalf("elastic job ended %s", m.State)
	}
	if m.Migrations == 0 {
		t.Fatal("elastic job never migrated: seated at the floor and grew nowhere, or was seated at full size (scenario broken)")
	}
	if s.Result(eid).FinalWorkers != 16 {
		t.Fatalf("elastic job finished at %d workers, want grown back to 16", s.Result(eid).FinalWorkers)
	}
}
