package core

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

func randInputs(seed int64, ranks, n int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for i := range out {
		v := make([]float32, n)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		out[i] = v
	}
	return out
}

func TestAllreduceSumAverage(t *testing.T) {
	ranks, n := 4, 50
	inputs := randInputs(1, ranks, n)
	want := adasum.SumReduce(inputs)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	layout := tensor.FlatLayout(n)

	sums := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		Allreduce(collective.New(p, g, collective.Config{}), x, layout, OpSum, Options{})
		return x
	})
	for _, s := range sums {
		if !tensor.Equal(s, want, 1e-4) {
			t.Fatal("OpSum mismatch")
		}
	}

	w2 := comm.NewWorld(ranks, nil)
	avgWant := tensor.Clone(want)
	tensor.Scale(0.25, avgWant)
	avgs := comm.RunCollect(w2, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		Allreduce(collective.New(p, g, collective.Config{}), x, layout, OpAverage, Options{})
		return x
	})
	for _, s := range avgs {
		if !tensor.Equal(s, avgWant, 1e-4) {
			t.Fatal("OpAverage mismatch")
		}
	}
}

func TestAllreduceAdasumMatchesHostTree(t *testing.T) {
	ranks, n := 8, 64
	inputs := randInputs(2, ranks, n)
	layout := tensor.NewLayout([]string{"a", "b"}, []int{40, 24})
	want := adasum.TreeReduce(inputs, layout)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		Allreduce(collective.New(p, g, collective.Config{}), x, layout, OpAdasum, Options{})
		return x
	})
	for _, v := range got {
		if !tensor.Equal(v, want, 1e-4) {
			t.Fatal("OpAdasum mismatch with host tree")
		}
	}
}

func TestAllreduceAdasumNonPowerOfTwoFallsBack(t *testing.T) {
	ranks, n := 3, 20
	inputs := randInputs(3, ranks, n)
	layout := tensor.FlatLayout(n)
	want := adasum.LinearReduce(inputs, layout)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		Allreduce(collective.New(p, g, collective.Config{}), x, layout, OpAdasum, Options{})
		return x
	})
	for _, v := range got {
		if !tensor.Equal(v, want, 1e-4) {
			t.Fatal("non-power-of-two fallback mismatch")
		}
	}
}

func TestAllreduceHierarchicalAdasum(t *testing.T) {
	gpus, nodes := 2, 2
	ranks := gpus * nodes
	n := 30
	inputs := randInputs(4, ranks, n)
	layout := tensor.FlatLayout(n)
	nodeSums := make([][]float32, nodes)
	for nd := 0; nd < nodes; nd++ {
		nodeSums[nd] = adasum.SumReduce(inputs[nd*gpus : (nd+1)*gpus])
	}
	want := adasum.TreeReduce(nodeSums, layout)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		c := collective.New(p, g, collective.Config{})
		Allreduce(c, x, layout, OpAdasum, Options{Hierarchy: collective.NewHierarchy(c, gpus)})
		return x
	})
	for _, v := range got {
		if !tensor.Equal(v, want, 1e-4) {
			t.Fatal("hierarchical adasum mismatch")
		}
	}
}

func TestAllreduceFP16Quantizes(t *testing.T) {
	ranks, n := 2, 16
	inputs := randInputs(5, ranks, n)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	layout := tensor.FlatLayout(n)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		x := tensor.Clone(inputs[p.Rank()])
		c := collective.New(p, g, collective.Config{Compression: compress.FP16()})
		Allreduce(c, x, layout, OpSum, Options{})
		return x
	})
	want := adasum.SumReduce(inputs)
	for _, v := range got {
		// Quantization error bounded by fp16 resolution of values ~2.
		if !tensor.Equal(v, want, 5e-3) {
			t.Fatal("fp16 sum too far from fp32 sum")
		}
		if tensor.Equal(v, want, 0) {
			t.Fatal("fp16 path appears to be a no-op (no quantization)")
		}
	}
}

func TestAllreduceFP16WithScaler(t *testing.T) {
	// Tiny gradients that underflow fp16 must survive when scaled.
	ranks, n := 2, 8
	small := make([]float32, n)
	for i := range small {
		small[i] = 3e-8 // below fp16 min subnormal
	}
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	layout := tensor.FlatLayout(n)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		// Loss scaling now composes around the fp16-codec communicator
		// instead of riding a core option.
		x := tensor.Clone(small)
		s := scaling.NewLossScaler()
		s.ScaleGrads(x)
		c := collective.New(p, g, collective.Config{Compression: compress.FP16()})
		Allreduce(c, x, layout, OpSum, Options{})
		s.Unscale(x)
		return x
	})
	for _, v := range got {
		if v[0] == 0 {
			t.Fatal("scaled fp16 path lost small gradients to underflow")
		}
	}
}

func TestAllreduceTensorsFusionRoundTrip(t *testing.T) {
	ranks := 4
	sizes := []int{10, 3, 25, 7}
	names := []string{"conv1", "bn1", "fc1", "fc2"}
	perRank := make([][][]float32, ranks)
	for r := 0; r < ranks; r++ {
		flat := randInputs(int64(10+r), 1, 45)[0]
		split := make([][]float32, len(sizes))
		off := 0
		for i, s := range sizes {
			split[i] = flat[off : off+s]
			off += s
		}
		perRank[r] = split
	}
	// Host reference: per-tensor adasum tree.
	want := make([][]float32, len(sizes))
	for i, s := range sizes {
		ins := make([][]float32, ranks)
		for r := 0; r < ranks; r++ {
			ins[r] = perRank[r][i]
		}
		want[i] = adasum.TreeReduce(ins, tensor.FlatLayout(s))
	}
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) [][]float32 {
		mine := make([][]float32, len(sizes))
		for i := range sizes {
			mine[i] = tensor.Clone(perRank[p.Rank()][i])
		}
		AllreduceTensors(collective.New(p, g, collective.Config{}), mine, names, OpAdasum, Options{FusionThresholdBytes: 1 << 20})
		return mine
	})
	for _, rankOut := range got {
		for i := range sizes {
			if !tensor.Equal(rankOut[i], want[i], 1e-4) {
				t.Fatalf("fused tensor %d mismatch", i)
			}
		}
	}
}

func TestDistributedOptimizerAdasumFigure3Semantics(t *testing.T) {
	// Final params must be start + TreeReduce(per-rank deltas).
	ranks := 4
	train := data.Generate(data.Config{N: 64, Dim: 8, Classes: 3, Noise: 0.5, Seed: 6})
	mkNet := func() *nn.Network { return nn.NewMLP(8, 6, 3) }
	proto := mkNet()
	proto.Init(rand.New(rand.NewSource(7)))
	start := tensor.Clone(proto.Params())

	// Host-side expectation.
	deltas := make([][]float32, ranks)
	for r := 0; r < ranks; r++ {
		net := mkNet()
		net.SetParams(start)
		shard := train.Shard(r, ranks)
		x, labels := shard.Batch([]int{0, 1, 2, 3})
		net.Gradient(x, labels, 4)
		opt := optim.NewAdam()
		opt.Step(net.Params(), net.Grads(), 0.01)
		d := make([]float32, len(start))
		tensor.Sub(d, net.Params(), start)
		deltas[r] = d
	}
	wantDelta := adasum.TreeReduce(deltas, proto.Layout())
	want := tensor.Clone(start)
	tensor.Axpy(1, wantDelta, want)

	// Distributed run.
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		net := mkNet()
		net.SetParams(start)
		shard := train.Shard(p.Rank(), ranks)
		x, labels := shard.Batch([]int{0, 1, 2, 3})
		net.Gradient(x, labels, 4)
		dopt := NewDistributedOptimizer(optim.NewAdam(), OpAdasum, Options{})
		dopt.Step(collective.New(p, g, collective.Config{}), net, 0.01)
		return tensor.Clone(net.Params())
	})
	for r, v := range got {
		if !tensor.Equal(v, want, 1e-5) {
			t.Fatalf("rank %d: Figure 3 semantics violated", r)
		}
	}
}

func TestDistributedOptimizerSumMatchesSequentialAveragedStep(t *testing.T) {
	ranks := 4
	n := 20
	inputs := randInputs(8, ranks, n)
	layout := tensor.FlatLayout(n)
	_ = layout
	start := randInputs(9, 1, n)[0]

	// Expectation: one SGD step with the averaged gradient.
	avg := adasum.MeanReduce(inputs)
	want := tensor.Clone(start)
	optim.NewSGD().Step(want, avg, 0.1)

	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	got := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		net := nn.NewNetwork(nn.NewDenseNoBias("fc", 4, 5)) // 20 params
		net.SetParams(start)
		copy(net.Grads(), inputs[p.Rank()])
		dopt := NewDistributedOptimizer(optim.NewSGD(), OpSum, Options{})
		dopt.Step(collective.New(p, g, collective.Config{}), net, 0.1)
		return tensor.Clone(net.Params())
	})
	for r, v := range got {
		if !tensor.Equal(v, want, 1e-5) {
			t.Fatalf("rank %d: sum optimizer mismatch", r)
		}
	}
}

func TestDistributedTrainingEndToEnd(t *testing.T) {
	// A full multi-rank training loop through the public API must learn.
	ranks := 4
	train, test := data.GeneratePair(data.Config{N: 512, Dim: 12, Classes: 3, Noise: 0.7, Seed: 11}, 128)
	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	start := nn.NewMLP(12, 16, 3)
	start.Init(rand.New(rand.NewSource(12)))
	init := tensor.Clone(start.Params())

	accs := comm.RunCollect(w, func(p *comm.Proc) float64 {
		net := nn.NewMLP(12, 16, 3)
		net.SetParams(init)
		c := collective.New(p, g, collective.Config{})
		dopt := NewDistributedOptimizer(optim.NewMomentum(0.9), OpAdasum, Options{})
		shard := train.Shard(p.Rank(), ranks)
		it := data.NewIterator(shard.N, 16, int64(100+p.Rank()))
		for step := 0; step < 120; step++ {
			idx := it.Next()
			x, labels := shard.Batch(idx)
			net.Gradient(x, labels, len(idx))
			dopt.Step(c, net, 0.05)
		}
		tx, tl := test.Batch(seqInts(test.N))
		return net.Accuracy(tx, tl, test.N)
	})
	for r, a := range accs {
		if a < 0.9 {
			t.Fatalf("rank %d final accuracy %v", r, a)
		}
	}
	// All ranks must hold identical models (they synchronized every step).
	if accs[0] != accs[1] || accs[1] != accs[2] {
		t.Fatalf("ranks diverged: %v", accs)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
