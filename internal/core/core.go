// Package core is the reproduction's public API, shaped after Horovod's
// (§4.1 of the paper): an Allreduce with a selectable reduction op
// (Sum, Average, or Adasum) and a DistributedOptimizer wrapper,
//
//	opt = hvd.DistributedOptimizer(opt, op=hvd.Adasum)
//
// becomes
//
//	c := collective.New(proc, group, collective.Config{})
//	dopt := core.NewDistributedOptimizer(opt, core.OpAdasum, core.Options{})
//	dopt.Step(c, net, lr)
//
// For OpAdasum the wrapper implements the Figure 3 pattern: the inner
// optimizer runs locally on each rank's gradient, and the allreduce
// combines the resulting model deltas ("effective gradients") — which is
// why Adasum composes with Adam and LAMB without increasing their
// effective minibatch.
//
// Everything communicates through a collective.Communicator — the
// rank's endpoint bound to its group, with the collective algorithm
// chosen by the communicator's Strategy (StrategyAuto reproduces the
// paper's dispatch: Algorithm 1 on power-of-two groups, the linear
// chain otherwise) and on-the-wire compression by its unified
// Compression knob: fp16 communication (§4.4.1) is
//
//	collective.New(p, g, collective.Config{Compression: compress.FP16()})
//
// and an adaptive policy (compress.Adaptive) slots into the same field.
// The legacy core-side fp16 round-trip (Options.FP16/Scaler) is gone —
// quantization is the communicator's job; compose a
// scaling.LossScaler around the reduction when tiny gradients must
// survive binary16's exponent range. Hierarchical reduction (§4.2.2)
// is a caller-held collective.NewHierarchy passed through
// Options.Hierarchy, so the sub-communicators are split once, not per
// call. Tensor fusion (§4.4.3) hangs off AllreduceTensors.
package core

import (
	"repro/internal/collective"
	"repro/internal/fusion"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Op selects the reduction applied by Allreduce.
type Op int

// Reduction operations.
const (
	// OpSum is the elementwise sum — Horovod's default.
	OpSum Op = iota
	// OpAverage is the elementwise mean.
	OpAverage
	// OpAdasum is the adaptive sum of the paper.
	OpAdasum
)

func (o Op) String() string {
	switch o {
	case OpAverage:
		return "average"
	case OpAdasum:
		return "adasum"
	default:
		return "sum"
	}
}

// Options tunes the communication path.
type Options struct {
	// Hierarchy, when set, runs every reduction through the caller-held
	// composition (§4.2.2): intra-node reduce-scatter (sum), cross-node
	// reduction, intra-node allgather. Build it once off the same
	// communicator the reduction uses —
	//
	//	h := collective.NewHierarchy(c, gpusPerNode)
	//
	// — and reuse it across steps; the sub-communicators (and their
	// compression streams) persist instead of being re-split per call,
	// which is also what keeps error-feedback residuals attached to
	// their levels. nil reduces flat on the communicator itself.
	Hierarchy *collective.Hierarchy
	// FusionThresholdBytes caps fused buffer sizes for AllreduceTensors
	// (§4.4.3). Zero selects the 64 MB default.
	FusionThresholdBytes int
}

// Allreduce reduces x in place across c's group with the chosen op.
// layout provides per-layer boundaries for Adasum (§3.6); pass
// tensor.FlatLayout(len(x)) for whole-gradient semantics. The algorithm
// follows c's Strategy (StrategyAuto: Algorithm 1 on power-of-two
// groups, linear chain otherwise; ring for sum/average), and the wire
// format follows c's Compression config. All members of the group must
// call Allreduce with the same op and options; when o.Hierarchy is set
// it must have been built from a communicator over the same group.
func Allreduce(c *collective.Communicator, x []float32, layout tensor.Layout, op Op, o Options) {
	if o.Hierarchy != nil {
		hierarchicalAllreduce(o.Hierarchy, x, layout, op)
		return
	}
	flatAllreduce(c, x, layout, op)
}

func flatAllreduce(c *collective.Communicator, x []float32, layout tensor.Layout, op Op) {
	switch op {
	case OpSum:
		c.AllreduceSum(x)
	case OpAverage:
		c.AllreduceMean(x)
	case OpAdasum:
		c.Adasum(x, layout)
	}
}

func hierarchicalAllreduce(h *collective.Hierarchy, x []float32, layout tensor.Layout, op Op) {
	switch op {
	case OpSum:
		h.AllreduceSum(x)
	case OpAverage:
		h.AllreduceMean(x)
	case OpAdasum:
		h.Adasum(x, layout)
	}
}

// AllreduceTensors fuses the named tensors into buffers bounded by the
// fusion threshold, reduces each fused buffer (per-layer boundaries are
// the member tensors), and scatters results back — the full §4.4.3
// path. In hierarchical mode the caller's composition is reused across
// every bucket.
func AllreduceTensors(c *collective.Communicator, tensors [][]float32, names []string, op Op, o Options) {
	groups := fusion.Fuse(tensors, names, o.FusionThresholdBytes)
	p := c.Proc()
	for i := range groups {
		p.ComputeMemCopy(groups[i].Bytes())
		if o.Hierarchy != nil {
			hierarchicalAllreduce(o.Hierarchy, groups[i].Data, groups[i].Layout, op)
		} else {
			flatAllreduce(c, groups[i].Data, groups[i].Layout, op)
		}
		p.ComputeMemCopy(groups[i].Bytes())
	}
	fusion.UnfuseAll(groups, tensors)
}

// DistributedOptimizer wraps a local optimizer with the distributed
// reduction, mirroring hvd.DistributedOptimizer.
type DistributedOptimizer struct {
	inner optim.Optimizer
	op    Op
	opts  Options

	start []float32 // scratch: pre-step parameter snapshot (Figure 3)
	delta []float32
}

// NewDistributedOptimizer wraps inner with reduction op.
func NewDistributedOptimizer(inner optim.Optimizer, op Op, opts Options) *DistributedOptimizer {
	return &DistributedOptimizer{inner: inner, op: op, opts: opts}
}

// Inner returns the wrapped optimizer.
func (d *DistributedOptimizer) Inner() optim.Optimizer { return d.inner }

// Step performs one distributed update of net on the rank behind c:
//
//   - Sum/Average ops reduce the gradients first, then run the inner
//     optimizer once — synchronous SGD;
//   - Adasum runs the inner optimizer on the local gradient, computes the
//     effective gradient (current - start), Adasum-allreduces it, and
//     rewinds the model to start + combined delta (Figure 3).
func (d *DistributedOptimizer) Step(c *collective.Communicator, net *nn.Network, lr float64) {
	params := net.Params()
	grads := net.Grads()
	layout := net.Layout()
	switch d.op {
	case OpSum, OpAverage:
		Allreduce(c, grads, layout, OpAverage, d.opts)
		d.inner.Step(params, grads, lr)
	case OpAdasum:
		if cap(d.start) < len(params) {
			d.start = make([]float32, len(params))
			d.delta = make([]float32, len(params))
		}
		d.start = d.start[:len(params)]
		d.delta = d.delta[:len(params)]
		copy(d.start, params)
		d.inner.Step(params, grads, lr)
		tensor.Sub(d.delta, params, d.start)
		Allreduce(c, d.delta, layout, OpAdasum, d.opts)
		copy(params, d.start)
		tensor.Axpy(1, d.delta, params)
	}
}
