// Package core is the reproduction's public API, shaped after Horovod's
// (§4.1 of the paper): an Allreduce with a selectable reduction op
// (Sum, Average, or Adasum) and a DistributedOptimizer wrapper,
//
//	opt = hvd.DistributedOptimizer(opt, op=hvd.Adasum)
//
// becomes
//
//	c := collective.New(proc, group, collective.Config{})
//	dopt := core.NewDistributedOptimizer(opt, core.OpAdasum, core.Options{})
//	dopt.Step(c, net, lr)
//
// For OpAdasum the wrapper implements the Figure 3 pattern: the inner
// optimizer runs locally on each rank's gradient, and the allreduce
// combines the resulting model deltas ("effective gradients") — which is
// why Adasum composes with Adam and LAMB without increasing their
// effective minibatch.
//
// Everything communicates through a collective.Communicator — the
// rank's endpoint bound to its group, with the collective algorithm
// chosen by the communicator's Strategy (StrategyAuto reproduces the
// paper's dispatch: Algorithm 1 on power-of-two groups, the linear
// chain otherwise) and on-the-wire compression by its Codec.
// Hierarchical reduction (§4.2.2), tensor fusion, fp16 quantization and
// dynamic loss scaling hang off Options.
package core

import (
	"repro/internal/collective"
	"repro/internal/float16"
	"repro/internal/fusion"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

// Op selects the reduction applied by Allreduce.
type Op int

// Reduction operations.
const (
	// OpSum is the elementwise sum — Horovod's default.
	OpSum Op = iota
	// OpAverage is the elementwise mean.
	OpAverage
	// OpAdasum is the adaptive sum of the paper.
	OpAdasum
)

func (o Op) String() string {
	switch o {
	case OpAverage:
		return "average"
	case OpAdasum:
		return "adasum"
	default:
		return "sum"
	}
}

// Options tunes the communication path.
type Options struct {
	// Hierarchical enables the §4.2.2 scheme: intra-node reduce-scatter
	// (sum), cross-node reduction, intra-node allgather — composed from
	// sub-communicators split off the caller's communicator. Requires
	// GPUsPerNode to divide the group size.
	Hierarchical bool
	// GPUsPerNode is the node width for Hierarchical mode.
	GPUsPerNode int
	// FusionThresholdBytes caps fused buffer sizes for AllreduceTensors
	// (§4.4.3). Zero selects the 64 MB default.
	FusionThresholdBytes int
	// FP16 quantizes payloads through binary16 before and after the
	// reduction, modeling half-precision communication (§4.4.1). Dot
	// products still accumulate in float64.
	FP16 bool
	// Scaler, when set with FP16, applies dynamic loss scaling around
	// the quantization.
	Scaler *scaling.LossScaler
}

// Allreduce reduces x in place across c's group with the chosen op.
// layout provides per-layer boundaries for Adasum (§3.6); pass
// tensor.FlatLayout(len(x)) for whole-gradient semantics. The algorithm
// follows c's Strategy (StrategyAuto: Algorithm 1 on power-of-two
// groups, linear chain otherwise; ring for sum/average). All members of
// the group must call Allreduce with the same op and options.
//
// Hierarchical mode splits sub-communicators off c on every call;
// per-step callers hold the composition instead — DistributedOptimizer
// caches its Hierarchy, and AllreduceTensors splits once per batch of
// buckets.
func Allreduce(c *collective.Communicator, x []float32, layout tensor.Layout, op Op, o Options) {
	if o.FP16 {
		quantize(x, o.Scaler)
	}
	if o.Hierarchical && o.GPUsPerNode > 1 {
		hierarchicalAllreduce(collective.NewHierarchy(c, o.GPUsPerNode), x, layout, op)
	} else {
		flatAllreduce(c, x, layout, op)
	}
	if o.FP16 {
		quantize(x, nil) // result travels back as fp16 too
	}
}

func flatAllreduce(c *collective.Communicator, x []float32, layout tensor.Layout, op Op) {
	switch op {
	case OpSum:
		c.AllreduceSum(x)
	case OpAverage:
		c.AllreduceMean(x)
	case OpAdasum:
		c.Adasum(x, layout)
	}
}

func hierarchicalAllreduce(h *collective.Hierarchy, x []float32, layout tensor.Layout, op Op) {
	switch op {
	case OpSum:
		h.AllreduceSum(x)
	case OpAverage:
		h.AllreduceMean(x)
	case OpAdasum:
		h.Adasum(x, layout)
	}
}

// AllreduceTensors fuses the named tensors into buffers bounded by the
// fusion threshold, reduces each fused buffer (per-layer boundaries are
// the member tensors), and scatters results back — the full §4.4.3
// path. In hierarchical mode the sub-communicators are split once and
// reused across every bucket.
func AllreduceTensors(c *collective.Communicator, tensors [][]float32, names []string, op Op, o Options) {
	groups := fusion.Fuse(tensors, names, o.FusionThresholdBytes)
	var h *collective.Hierarchy
	if o.Hierarchical && o.GPUsPerNode > 1 {
		h = collective.NewHierarchy(c, o.GPUsPerNode)
	}
	p := c.Proc()
	for i := range groups {
		p.ComputeMemCopy(groups[i].Bytes())
		if o.FP16 {
			quantize(groups[i].Data, o.Scaler)
		}
		if h != nil {
			hierarchicalAllreduce(h, groups[i].Data, groups[i].Layout, op)
		} else {
			flatAllreduce(c, groups[i].Data, groups[i].Layout, op)
		}
		if o.FP16 {
			quantize(groups[i].Data, nil)
		}
		p.ComputeMemCopy(groups[i].Bytes())
	}
	fusion.UnfuseAll(groups, tensors)
}

// quantize round-trips x through binary16, optionally applying the loss
// scale first (and unscaling after) so small gradients survive the
// narrower exponent range.
func quantize(x []float32, s *scaling.LossScaler) {
	if s != nil {
		s.ScaleGrads(x)
	}
	for i, v := range x {
		x[i] = float16.ToFloat32(float16.FromFloat32(v))
	}
	if s != nil {
		s.Unscale(x)
	}
}

// DistributedOptimizer wraps a local optimizer with the distributed
// reduction, mirroring hvd.DistributedOptimizer.
type DistributedOptimizer struct {
	inner optim.Optimizer
	op    Op
	opts  Options

	hier  *collective.Hierarchy    // cached hierarchical composition
	hierC *collective.Communicator // the communicator hier was split from
	start []float32                // scratch: pre-step parameter snapshot (Figure 3)
	delta []float32
}

// NewDistributedOptimizer wraps inner with reduction op.
func NewDistributedOptimizer(inner optim.Optimizer, op Op, opts Options) *DistributedOptimizer {
	return &DistributedOptimizer{inner: inner, op: op, opts: opts}
}

// Inner returns the wrapped optimizer.
func (d *DistributedOptimizer) Inner() optim.Optimizer { return d.inner }

// allreduce reduces x through the wrapper's options, caching the
// hierarchical composition so the per-step path splits communicators
// once, not every step.
func (d *DistributedOptimizer) allreduce(c *collective.Communicator, x []float32, layout tensor.Layout, op Op) {
	if d.opts.FP16 {
		quantize(x, d.opts.Scaler)
	}
	if d.opts.Hierarchical && d.opts.GPUsPerNode > 1 {
		if d.hier == nil || d.hierC != c {
			d.hier = collective.NewHierarchy(c, d.opts.GPUsPerNode)
			d.hierC = c
		}
		hierarchicalAllreduce(d.hier, x, layout, op)
	} else {
		flatAllreduce(c, x, layout, op)
	}
	if d.opts.FP16 {
		quantize(x, nil)
	}
}

// Step performs one distributed update of net on the rank behind c:
//
//   - Sum/Average ops reduce the gradients first, then run the inner
//     optimizer once — synchronous SGD;
//   - Adasum runs the inner optimizer on the local gradient, computes the
//     effective gradient (current - start), Adasum-allreduces it, and
//     rewinds the model to start + combined delta (Figure 3).
func (d *DistributedOptimizer) Step(c *collective.Communicator, net *nn.Network, lr float64) {
	params := net.Params()
	grads := net.Grads()
	layout := net.Layout()
	switch d.op {
	case OpSum, OpAverage:
		d.allreduce(c, grads, layout, OpAverage)
		d.inner.Step(params, grads, lr)
	case OpAdasum:
		if cap(d.start) < len(params) {
			d.start = make([]float32, len(params))
			d.delta = make([]float32, len(params))
		}
		d.start = d.start[:len(params)]
		d.delta = d.delta[:len(params)]
		copy(d.start, params)
		d.inner.Step(params, grads, lr)
		tensor.Sub(d.delta, params, d.start)
		d.allreduce(c, d.delta, layout, OpAdasum)
		copy(params, d.start)
		tensor.Axpy(1, d.delta, params)
	}
}
