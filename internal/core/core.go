// Package core is the reproduction's public API, shaped after Horovod's
// (§4.1 of the paper): an Allreduce with a selectable reduction op
// (Sum, Average, or Adasum) and a DistributedOptimizer wrapper,
//
//	opt = hvd.DistributedOptimizer(opt, op=hvd.Adasum)
//
// becomes
//
//	dopt := core.NewDistributedOptimizer(opt, core.OpAdasum, core.Options{})
//	dopt.Step(proc, group, net, lr)
//
// For OpAdasum the wrapper implements the Figure 3 pattern: the inner
// optimizer runs locally on each rank's gradient, and the allreduce
// combines the resulting model deltas ("effective gradients") — which is
// why Adasum composes with Adam and LAMB without increasing their
// effective minibatch.
//
// The distributed collectives (AdasumRVH of Algorithm 1, ring sum,
// hierarchical variants), tensor fusion, fp16 quantization and dynamic
// loss scaling all hang off Options.
package core

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/float16"
	"repro/internal/fusion"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

// Op selects the reduction applied by Allreduce.
type Op int

// Reduction operations.
const (
	// OpSum is the elementwise sum — Horovod's default.
	OpSum Op = iota
	// OpAverage is the elementwise mean.
	OpAverage
	// OpAdasum is the adaptive sum of the paper.
	OpAdasum
)

func (o Op) String() string {
	switch o {
	case OpAverage:
		return "average"
	case OpAdasum:
		return "adasum"
	default:
		return "sum"
	}
}

// Options tunes the communication path.
type Options struct {
	// Hierarchical enables the §4.2.2 scheme: intra-node reduce-scatter
	// (sum), cross-node reduction, intra-node allgather. Requires
	// GPUsPerNode to divide the group size.
	Hierarchical bool
	// GPUsPerNode is the node width for Hierarchical mode.
	GPUsPerNode int
	// FusionThresholdBytes caps fused buffer sizes for AllreduceTensors
	// (§4.4.3). Zero selects the 64 MB default.
	FusionThresholdBytes int
	// FP16 quantizes payloads through binary16 before and after the
	// reduction, modeling half-precision communication (§4.4.1). Dot
	// products still accumulate in float64.
	FP16 bool
	// Scaler, when set with FP16, applies dynamic loss scaling around
	// the quantization.
	Scaler *scaling.LossScaler
}

// Allreduce reduces x in place across the group with the chosen op.
// layout provides per-layer boundaries for Adasum (§3.6); pass
// tensor.FlatLayout(len(x)) for whole-gradient semantics. Adasum
// requires a power-of-two group (or node count in hierarchical mode);
// non-power-of-two groups fall back to the linear chain, which is valid
// for any size.
func Allreduce(p *comm.Proc, g collective.Group, x []float32, layout tensor.Layout, op Op, o Options) {
	if o.FP16 {
		quantize(x, o.Scaler)
	}
	switch op {
	case OpSum:
		if o.Hierarchical && o.GPUsPerNode > 1 {
			collective.HierarchicalSum(p, g, x, o.GPUsPerNode)
		} else {
			collective.RingAllreduceSum(p, g, x)
		}
	case OpAverage:
		if o.Hierarchical && o.GPUsPerNode > 1 {
			collective.HierarchicalSum(p, g, x, o.GPUsPerNode)
			tensor.Scale(1/float32(len(g)), x)
		} else {
			collective.RingAllreduceMean(p, g, x)
		}
	case OpAdasum:
		switch {
		case o.Hierarchical && o.GPUsPerNode > 1:
			collective.HierarchicalAdasum(p, g, x, layout, o.GPUsPerNode)
		case g.IsPowerOfTwo():
			collective.AdasumRVH(p, g, x, layout)
		default:
			collective.LinearAdasum(p, g, x, layout)
		}
	}
	if o.FP16 {
		quantize(x, nil) // result travels back as fp16 too
	}
}

// AllreduceTensors fuses the named tensors into buffers bounded by the
// fusion threshold, reduces each fused buffer (per-layer boundaries are
// the member tensors), and scatters results back — the full §4.4.3 path.
func AllreduceTensors(p *comm.Proc, g collective.Group, tensors [][]float32, names []string, op Op, o Options) {
	groups := fusion.Fuse(tensors, names, o.FusionThresholdBytes)
	for i := range groups {
		p.ComputeMemCopy(groups[i].Bytes())
		Allreduce(p, g, groups[i].Data, groups[i].Layout, op, o)
		p.ComputeMemCopy(groups[i].Bytes())
	}
	fusion.UnfuseAll(groups, tensors)
}

// quantize round-trips x through binary16, optionally applying the loss
// scale first (and unscaling after) so small gradients survive the
// narrower exponent range.
func quantize(x []float32, s *scaling.LossScaler) {
	if s != nil {
		s.ScaleGrads(x)
	}
	for i, v := range x {
		x[i] = float16.ToFloat32(float16.FromFloat32(v))
	}
	if s != nil {
		s.Unscale(x)
	}
}

// DistributedOptimizer wraps a local optimizer with the distributed
// reduction, mirroring hvd.DistributedOptimizer.
type DistributedOptimizer struct {
	inner optim.Optimizer
	op    Op
	opts  Options

	start []float32 // scratch: pre-step parameter snapshot (Figure 3)
	delta []float32
}

// NewDistributedOptimizer wraps inner with reduction op.
func NewDistributedOptimizer(inner optim.Optimizer, op Op, opts Options) *DistributedOptimizer {
	return &DistributedOptimizer{inner: inner, op: op, opts: opts}
}

// Inner returns the wrapped optimizer.
func (d *DistributedOptimizer) Inner() optim.Optimizer { return d.inner }

// Step performs one distributed update of net on rank p:
//
//   - Sum/Average ops reduce the gradients first, then run the inner
//     optimizer once — synchronous SGD;
//   - Adasum runs the inner optimizer on the local gradient, computes the
//     effective gradient (current - start), Adasum-allreduces it, and
//     rewinds the model to start + combined delta (Figure 3).
func (d *DistributedOptimizer) Step(p *comm.Proc, g collective.Group, net *nn.Network, lr float64) {
	params := net.Params()
	grads := net.Grads()
	layout := net.Layout()
	switch d.op {
	case OpSum, OpAverage:
		Allreduce(p, g, grads, layout, OpAverage, d.opts)
		d.inner.Step(params, grads, lr)
	case OpAdasum:
		if cap(d.start) < len(params) {
			d.start = make([]float32, len(params))
			d.delta = make([]float32, len(params))
		}
		d.start = d.start[:len(params)]
		d.delta = d.delta[:len(params)]
		copy(d.start, params)
		d.inner.Step(params, grads, lr)
		tensor.Sub(d.delta, params, d.start)
		Allreduce(p, g, d.delta, layout, OpAdasum, d.opts)
		copy(params, d.start)
		tensor.Axpy(1, d.delta, params)
	}
}
