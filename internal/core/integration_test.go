package core

import (
	"math/rand"
	"testing"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// TestTrainerMatchesDistributedLoop cross-validates the two independent
// implementations of data-parallel Adasum training: the host-side
// trainer harness (used by the convergence experiments) and a real
// multi-rank loop through the public Allreduce API. Same data, same
// seeds, same reduction order — the resulting models must match.
func TestTrainerMatchesDistributedLoop(t *testing.T) {
	const (
		ranks = 4
		micro = 8
		steps = 12
		lr    = 0.05
	)
	train, test := data.GeneratePair(data.Config{
		N: 256, Dim: 10, Classes: 3, Noise: 0.6, Seed: 31,
	}, 64)
	mkNet := func() *nn.Network { return nn.NewMLP(10, 12, 3) }

	// Path 1: the trainer harness (PreOptimizer Adasum + SGD).
	stepsPerEpoch := train.N / (ranks * micro)
	epochs := steps / stepsPerEpoch
	tr := trainer.Run(trainer.Config{
		Workers:    ranks,
		Microbatch: micro,
		Reduction:  trainer.ReduceAdasum,
		PerLayer:   true,
		Model:      mkNet,
		Optimizer:  optim.NewSGD(),
		Schedule:   optim.Constant{Base: lr},
		Train:      train,
		Test:       test,
		MaxEpochs:  epochs,
		Seed:       33,
	})

	// Path 2: a genuine multi-rank loop with the same iterator seeds and
	// the same starting model, reducing gradients through AdasumRVH.
	seedNet := mkNet()
	seedNet.Init(rand.New(rand.NewSource(33)))
	init := tensor.Clone(seedNet.Params())

	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	finals := comm.RunCollect(w, func(p *comm.Proc) []float32 {
		c := collective.New(p, g, collective.Config{})
		net := mkNet()
		net.SetParams(init)
		shard := train.Shard(p.Rank(), ranks)
		it := data.NewIterator(shard.N, micro, 33+1000+int64(p.Rank()))
		for s := 0; s < epochs*stepsPerEpoch; s++ {
			idx := it.Next()
			x, labels := shard.Batch(idx)
			net.Gradient(x, labels, len(idx))
			Allreduce(c, net.Grads(), net.Layout(), OpAdasum, Options{})
			optim.NewSGD().Step(net.Params(), net.Grads(), lr)
		}
		return tensor.Clone(net.Params())
	})

	if !tensor.Equal(finals[0], tr.FinalParams, 1e-4) {
		t.Fatalf("trainer harness and distributed loop diverged:\n harness %v\n ranks   %v",
			tr.FinalParams[:4], finals[0][:4])
	}
	for r := 1; r < ranks; r++ {
		if !tensor.Equal(finals[r], finals[0], 1e-6) {
			t.Fatalf("rank %d diverged from rank 0", r)
		}
	}
}

// TestFP16TrainingEndToEnd exercises the full fp16 path during real
// training: gradients travel through the communicator's fp16 codec
// around the allreduce. The model must still learn.
func TestFP16TrainingEndToEnd(t *testing.T) {
	const ranks = 4
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 12, Classes: 3, Noise: 0.7, Seed: 35,
	}, 128)
	seedNet := nn.NewMLP(12, 16, 3)
	seedNet.Init(rand.New(rand.NewSource(36)))
	init := tensor.Clone(seedNet.Params())

	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	accs := comm.RunCollect(w, func(p *comm.Proc) float64 {
		net := nn.NewMLP(12, 16, 3)
		net.SetParams(init)
		c := collective.New(p, g, collective.Config{Compression: compress.FP16()})
		dopt := NewDistributedOptimizer(optim.NewMomentum(0.9), OpAdasum, Options{})
		shard := train.Shard(p.Rank(), ranks)
		it := data.NewIterator(shard.N, 16, int64(40+p.Rank()))
		for s := 0; s < 100; s++ {
			idx := it.Next()
			x, labels := shard.Batch(idx)
			net.Gradient(x, labels, len(idx))
			dopt.Step(c, net, 0.05)
		}
		tx, tl := test.Batch(seqInts(test.N))
		return net.Accuracy(tx, tl, test.N)
	})
	for r, a := range accs {
		if a < 0.9 {
			t.Fatalf("rank %d: fp16 training accuracy %v", r, a)
		}
	}
}

// TestHierarchicalFusedTraining combines hierarchical allreduce with
// tensor fusion in a live training loop — the §4.2.2 + §4.4.3
// configuration Horovod runs in production.
func TestHierarchicalFusedTraining(t *testing.T) {
	const (
		gpus  = 2
		nodes = 2
		ranks = gpus * nodes
	)
	train, test := data.GeneratePair(data.Config{
		N: 512, Dim: 12, Classes: 3, Noise: 0.7, Seed: 37,
	}, 128)
	seedNet := nn.NewMLP(12, 16, 3)
	seedNet.Init(rand.New(rand.NewSource(38)))
	init := tensor.Clone(seedNet.Params())

	w := comm.NewWorld(ranks, nil)
	g := collective.WorldGroup(ranks)
	accs := comm.RunCollect(w, func(p *comm.Proc) float64 {
		c := collective.New(p, g, collective.Config{})
		opts := Options{Hierarchy: collective.NewHierarchy(c, gpus)}
		net := nn.NewMLP(12, 16, 3)
		net.SetParams(init)
		shard := train.Shard(p.Rank(), ranks)
		it := data.NewIterator(shard.N, 16, int64(50+p.Rank()))
		for s := 0; s < 100; s++ {
			idx := it.Next()
			x, labels := shard.Batch(idx)
			net.Gradient(x, labels, len(idx))
			Allreduce(c, net.Grads(), net.Layout(), OpAdasum, opts)
			for i, gr := range net.Grads() {
				net.Params()[i] -= 0.05 * gr
			}
		}
		tx, tl := test.Batch(seqInts(test.N))
		return net.Accuracy(tx, tl, test.N)
	})
	for r, a := range accs {
		if a < 0.9 {
			t.Fatalf("rank %d: hierarchical training accuracy %v", r, a)
		}
	}
}
