package simnet

import "math"

// Faults injects the failure modes a real cluster produces into the
// simulated one: stragglers (per-rank compute skew plus deterministic
// step-to-step jitter) and hard failures (a rank dies when its virtual
// clock crosses a deadline). The knobs are pure data — the comm layer
// consumes FailAtSeconds to kill ranks at virtual times, and the
// overlap engine consumes ComputeScale to stretch per-rank backward
// compute — so the same Faults value drives both injection sites and
// every run with the same Faults is exactly reproducible.
type Faults struct {
	// SkewFactors[r] multiplies rank r's compute times: 1.0 is nominal,
	// 1.3 a 30% straggler. Missing entries (nil or short slice) are 1.0.
	SkewFactors []float64
	// Jitter is the fractional amplitude of deterministic per-(rank,
	// step) compute noise: each step's compute is further scaled by a
	// factor drawn uniformly from [1-Jitter, 1+Jitter] by a hash of
	// (rank, step, JitterSeed). Zero disables jitter.
	Jitter float64
	// JitterSeed decorrelates the jitter streams of otherwise identical
	// configurations.
	JitterSeed int64
	// FailAtSeconds maps a rank to the virtual time (seconds) at which
	// it fails: the first clock advance at or past the deadline raises a
	// comm.RankFailure on that rank. Deadlines are measured on the
	// cumulative virtual clock (the World's time base plus per-step
	// progress), so "fail 5 simulated seconds into training" is one map
	// entry regardless of step boundaries.
	FailAtSeconds map[int]float64
}

// ComputeScale returns the compute-time multiplier of one (rank, step):
// the rank's skew factor times the step's jitter draw. A nil receiver
// returns 1.
func (f *Faults) ComputeScale(rank, step int) float64 {
	if f == nil {
		return 1
	}
	s := 1.0
	if rank >= 0 && rank < len(f.SkewFactors) && f.SkewFactors[rank] > 0 {
		s = f.SkewFactors[rank]
	}
	if f.Jitter > 0 {
		u := hashUnit(uint64(rank)+1, uint64(step)+1, uint64(f.JitterSeed))
		s *= 1 + f.Jitter*(2*u-1)
	}
	return s
}

// FailAt returns rank r's failure deadline in virtual seconds, or +Inf
// when the rank never fails. A nil receiver never fails.
func (f *Faults) FailAt(rank int) float64 {
	if f == nil || f.FailAtSeconds == nil {
		return math.Inf(1)
	}
	if t, ok := f.FailAtSeconds[rank]; ok {
		return t
	}
	return math.Inf(1)
}

// hashUnit maps (a, b, seed) to a uniform value in [0, 1) with a
// splitmix64-style mixer — deterministic jitter without math/rand state
// that would have to be checkpointed.
func hashUnit(a, b, seed uint64) float64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
