package simnet

import (
	"math"
	"testing"
)

func TestTopologyPlacement(t *testing.T) {
	topo := Topology{Ranks: 8, GPUsPerNode: 4}
	if topo.Node(0) != 0 || topo.Node(3) != 0 || topo.Node(4) != 1 || topo.Node(7) != 1 {
		t.Fatal("node placement wrong")
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	if topo.Nodes() != 2 {
		t.Fatalf("Nodes = %d", topo.Nodes())
	}
}

func TestTopologyDegenerate(t *testing.T) {
	topo := Topology{Ranks: 3, GPUsPerNode: 0}
	if topo.Node(2) != 2 || topo.Nodes() != 3 {
		t.Fatal("zero GPUsPerNode should mean one rank per node")
	}
}

func TestTransferCosts(t *testing.T) {
	m := &Model{
		Topo:       Topology{Ranks: 4, GPUsPerNode: 2},
		AlphaIntra: 1e-6, BetaIntra: 1e-9,
		AlphaInter: 1e-5, BetaInter: 1e-8,
	}
	if got := m.Transfer(0, 0, 100); got != 0 {
		t.Fatalf("self transfer = %v", got)
	}
	intra := m.Transfer(0, 1, 1000)
	if math.Abs(intra-(1e-6+1000e-9)) > 1e-15 {
		t.Fatalf("intra transfer = %v", intra)
	}
	inter := m.Transfer(0, 2, 1000)
	if math.Abs(inter-(1e-5+1000e-8)) > 1e-15 {
		t.Fatalf("inter transfer = %v", inter)
	}
	if inter <= intra {
		t.Fatal("inter-node must cost more here")
	}
}

func TestReduceAndMemCopy(t *testing.T) {
	m := &Model{FlopBeta: 2e-9, MemCopyBeta: 1e-9}
	if got := m.Reduce(1000); math.Abs(got-2e-6) > 1e-18 {
		t.Fatalf("Reduce = %v", got)
	}
	if got := m.MemCopy(1000); math.Abs(got-1e-6) > 1e-18 {
		t.Fatalf("MemCopy = %v", got)
	}
}

func TestPresetsSane(t *testing.T) {
	for _, m := range []*Model{AzureNC24rsV3(8), DGX2(32), TCP40(8)} {
		if m.AlphaInter < m.AlphaIntra {
			t.Errorf("%s: inter latency below intra", m.Name)
		}
		if m.BetaInter < m.BetaIntra {
			t.Errorf("%s: inter links faster than intra", m.Name)
		}
		if m.Topo.Ranks <= 0 || m.Topo.GPUsPerNode <= 0 {
			t.Errorf("%s: bad topology", m.Name)
		}
	}
}

func TestUniformAndZero(t *testing.T) {
	u := Uniform(4, 1e-3, 1e-6)
	if u.Transfer(0, 1, 100) != u.Transfer(0, 3, 100) {
		t.Fatal("uniform model not uniform")
	}
	z := Zero(4)
	if z.Transfer(0, 1, 1<<20) != 0 {
		t.Fatal("zero model charges for transfers")
	}
}

func TestThroughputSaturation(t *testing.T) {
	c := ComputeModel{SamplesPerSecond: 200, HalfSaturationBatch: 70}
	if got := c.ThroughputAt(70); math.Abs(got-100) > 1e-9 {
		t.Fatalf("half-saturation point = %v, want 100", got)
	}
	if c.ThroughputAt(32) >= c.ThroughputAt(256) {
		t.Fatal("throughput must grow with microbatch")
	}
	if c.ThroughputAt(1<<20) > 200 {
		t.Fatal("throughput exceeded saturation")
	}
	flat := ComputeModel{SamplesPerSecond: 100}
	if flat.ThroughputAt(1) != 100 || flat.ThroughputAt(1000) != 100 {
		t.Fatal("flat model should ignore microbatch")
	}
}

func TestStepComputeTime(t *testing.T) {
	c := ComputeModel{SamplesPerSecond: 100}
	if got := c.StepComputeTime(50); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("StepComputeTime = %v", got)
	}
	var zero ComputeModel
	if zero.StepComputeTime(10) != 0 {
		t.Fatal("zero model should cost nothing")
	}
}

func TestResNet50CalibrationBands(t *testing.T) {
	// The §5.1 epoch-time reproduction depends on these two operating
	// points: ~63 samples/s at microbatch 32, ~157 at 256.
	c := ResNet50V100()
	if tp := c.ThroughputAt(32); tp < 55 || tp > 70 {
		t.Fatalf("throughput@32 = %v outside calibration band", tp)
	}
	if tp := c.ThroughputAt(256); tp < 145 || tp > 175 {
		t.Fatalf("throughput@256 = %v outside calibration band", tp)
	}
}

func TestBERTCalibrationBands(t *testing.T) {
	// Table 4's baseline: 190 samples/s per GPU ph1, 72 ph2 (saturated).
	ph1, ph2 := BERTLargePhase1(), BERTLargePhase2()
	if ph1.SamplesPerSecond != 190 || ph2.SamplesPerSecond != 72 {
		t.Fatal("BERT phase throughputs drifted from Table 4 calibration")
	}
	// Table 1's two measured operating points.
	pcie := BERTLargePCIe()
	if tp := pcie.ThroughputAt(22); math.Abs(tp-154.7) > 2 {
		t.Fatalf("PCIe throughput@22 = %v, want ~154.7", tp)
	}
	if tp := pcie.ThroughputAt(36); math.Abs(tp-168.5) > 2 {
		t.Fatalf("PCIe throughput@36 = %v, want ~168.5", tp)
	}
	if full := pcie.OptimizerUpdateTime(int64(pcie.ParamBytes)); math.Abs(full-1.82) > 0.01 {
		t.Fatalf("monolithic update = %v, want 1.82", full)
	}
}

func TestRackTierTransferClasses(t *testing.T) {
	// 2 GPUs/node, 2 nodes/rack: ranks 0-3 share rack 0, 4-7 rack 1.
	m := TCP40Racked(8, 2)
	m.Topo.GPUsPerNode = 2
	intra := m.Transfer(0, 1, 1000) // same node
	inter := m.Transfer(0, 2, 1000) // same rack, different node
	cross := m.Transfer(0, 4, 1000) // different rack
	if !(intra < inter && inter < cross) {
		t.Fatalf("link classes not ordered: intra %v, inter %v, cross %v", intra, inter, cross)
	}
	if got := m.Transfer(2, 3, 1000); got != intra {
		t.Fatalf("ranks 2,3 share a node: cost %v != intra %v", got, intra)
	}
	// Rack tier disabled (TCP40 has 4 GPUs/node): every inter-node link
	// is equal no matter how far apart the nodes sit.
	flat := TCP40(16)
	if flat.Transfer(0, 4, 1000) != flat.Transfer(0, 12, 1000) {
		t.Fatal("two-tier model charged a rack premium")
	}
}

func TestRackIndexing(t *testing.T) {
	topo := Topology{Ranks: 16, GPUsPerNode: 2, NodesPerRack: 4}
	if topo.Rack(0) != 0 || topo.Rack(7) != 0 || topo.Rack(8) != 1 || topo.Rack(15) != 1 {
		t.Fatal("rack indexing wrong")
	}
	if !topo.SameRack(0, 7) || topo.SameRack(7, 8) {
		t.Fatal("SameRack wrong")
	}
	// Disabled tier: everything is rack 0.
	flat := Topology{Ranks: 8, GPUsPerNode: 2}
	if flat.Rack(7) != 0 || !flat.SameRack(0, 7) {
		t.Fatal("disabled rack tier should collapse to one rack")
	}
}
