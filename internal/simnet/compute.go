package simnet

// ComputeModel captures the forward+backward throughput of one simulated
// GPU on a given workload, plus the model's footprint. These constants
// substitute for the V100 measurements in the paper (the baseline in
// Table 4 processes 12.2K samples/s on 64 GPUs for BERT phase 1, i.e.
// ~190 samples/s per GPU) and drive every "minutes per epoch" and
// "speedup" figure in the reproduction.
type ComputeModel struct {
	Name string
	// SamplesPerSecond is the per-GPU forward+backward throughput at
	// saturation (large microbatch).
	SamplesPerSecond float64
	// HalfSaturationBatch is the microbatch at which throughput reaches
	// half of SamplesPerSecond (Michaelis-Menten saturation). Zero means
	// throughput is flat regardless of microbatch. This models the GPU
	// utilization effect that makes 256-sample microbatches much faster
	// per image than 32-sample ones (the driver of the paper's §5.1
	// epoch-time difference between 2K and 16K per allreduce).
	HalfSaturationBatch float64
	// ParamBytes is the size of the model's gradient/parameter vector in
	// bytes (what each allreduce moves).
	ParamBytes int
	// OptimizerStateBytesPerParamByte is the per-parameter-byte overhead
	// of optimizer state (Adam/LAMB keep two moments: 2.0; momentum: 1.0).
	OptimizerStateBytesPerParamByte float64
	// ActivationBytesPerSample is the activation memory needed per sample
	// in a microbatch, which bounds the microbatch size (Table 1).
	ActivationBytesPerSample int
	// OptimizerFlopBeta is seconds per byte of the optimizer update loop
	// (the "model update" column of Table 1).
	OptimizerFlopBeta float64
	// OptimizerSerialFrac is the Amdahl serial fraction of the model
	// update that partitioning cannot parallelize (kernel launches,
	// Python driver overhead); it bounds the §4.3 speedup the way the
	// paper's measured 1.87x on 4 GPUs implies.
	OptimizerSerialFrac float64
}

// ThroughputAt returns the per-GPU samples/second at the given
// microbatch size.
func (c ComputeModel) ThroughputAt(microbatch int) float64 {
	if c.SamplesPerSecond <= 0 {
		return 0
	}
	if c.HalfSaturationBatch <= 0 {
		return c.SamplesPerSecond
	}
	b := float64(microbatch)
	return c.SamplesPerSecond * b / (b + c.HalfSaturationBatch)
}

// StepComputeTime returns the forward+backward time for a microbatch of b
// samples on one GPU.
func (c ComputeModel) StepComputeTime(b int) float64 {
	tp := c.ThroughputAt(b)
	if tp <= 0 {
		return 0
	}
	return float64(b) / tp
}

// OptimizerUpdateTime returns the time of one full optimizer update over
// the whole parameter vector on a single GPU. When the update is
// partitioned over k GPUs (§4.3) divide the vector accordingly. The byte
// count is int64 so multi-GiB optimizer states stay exact on 32-bit
// builds.
func (c ComputeModel) OptimizerUpdateTime(bytes int64) float64 {
	return float64(bytes) * c.OptimizerFlopBeta
}

// ResNet50V100 approximates fp32 PyTorch ResNet-50 on a V100:
// saturated throughput ~200 samples/s per GPU, heavily under-utilized at
// microbatch 32 (~63 samples/s), which reproduces the §5.1 epoch times
// (5.6 min/epoch at 2K per allreduce, ~2.2 min at 16K on 64 GPUs).
// 25.5M params in fp32.
func ResNet50V100() ComputeModel {
	return ComputeModel{
		Name:                            "resnet50",
		SamplesPerSecond:                200,
		HalfSaturationBatch:             70,
		ParamBytes:                      25_500_000 * 4,
		OptimizerStateBytesPerParamByte: 1, // momentum buffer
		ActivationBytesPerSample:        96 << 20 / 32,
		OptimizerFlopBeta:               1.0 / 40e9,
	}
}

// ResNet50TF approximates the MLPerf v0.5 TensorFlow ResNet-50 on 32 GB
// V100s with mixed precision (§5.2's cluster): ~550 samples/s saturated,
// calibrated so microbatch 256 lands near the paper's per-epoch times.
func ResNet50TF() ComputeModel {
	c := ResNet50V100()
	c.Name = "resnet50-tf"
	c.SamplesPerSecond = 600
	c.HalfSaturationBatch = 25
	return c
}

// BERTLargePhase1 approximates BERT-Large at sequence length 128 on a
// 32 GB V100: ~190 samples/s per GPU (Table 4's 12.2K/s ÷ 64),
// 340M params.
func BERTLargePhase1() ComputeModel {
	return ComputeModel{
		Name:                            "bert-large-ph1",
		SamplesPerSecond:                190,
		ParamBytes:                      340_000_000 * 2, // fp16 gradients
		OptimizerStateBytesPerParamByte: 6,               // fp32 master + 2 fp32 moments over fp16 params
		ActivationBytesPerSample:        700 << 10,
		OptimizerFlopBeta:               1.0 / 30e9,
	}
}

// BERTLargePhase2 is sequence length 512: ~72 samples/s per GPU
// (Table 4's 4.6K/s ÷ 64).
func BERTLargePhase2() ComputeModel {
	c := BERTLargePhase1()
	c.Name = "bert-large-ph2"
	c.SamplesPerSecond = 72
	c.ActivationBytesPerSample = 2800 << 10
	return c
}

// BERTLargePCIe models the Table 1 setup: PyTorch BERT-Large on a 4×V100
// 16 GB PCIe VM at max sequence length 128. The saturation curve is
// calibrated to the paper's observed 154.7 samples/s at microbatch 22
// and 168.5 at microbatch 36; the optimizer constants to the observed
// 1.82 s monolithic update dropping to 0.97 s across 4 GPUs.
func BERTLargePCIe() ComputeModel {
	c := BERTLargePhase1()
	c.Name = "bert-large-pcie"
	c.SamplesPerSecond = 196
	c.HalfSaturationBatch = 5.9
	c.OptimizerFlopBeta = 1.82 / float64(c.ParamBytes)
	c.OptimizerSerialFrac = 0.377
	return c
}
