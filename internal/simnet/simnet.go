// Package simnet models the hardware the paper evaluated on. The paper's
// clusters (Azure NC24rs_v3 with PCIe V100s + Infiniband, DGX-2 with
// NVSwitch + 8 NICs, and plain 40 Gb TCP nodes) are unavailable here, so
// every system-efficiency number in the reproduction comes from this
// analytical model:
//
//   - links follow the classic alpha–beta model: transferring n bytes
//     costs alpha + n*beta seconds, with separate constants for
//     intra-node (PCIe/NVLink) and inter-node (IB/TCP) links;
//   - reduction arithmetic costs bytes * FlopBeta seconds, standing in
//     for the GPU kernels of §4.4.2;
//   - forward+backward compute is a samples/second throughput constant
//     per (model, phase).
//
// The model is deliberately simple — it is the standard cost model under
// which ring allreduce and recursive vector halving are analyzed
// ([10, 35] in the paper) — and it is what gives Figure 4 its
// latency/bandwidth crossover and Tables 2/4 their scaling shapes.
package simnet

import "fmt"

// Topology places ranks onto nodes (and optionally nodes onto racks):
// ranks [0, GPUsPerNode) share node 0, and so on; nodes [0,
// NodesPerRack) share rack 0. Link class between two ranks is
// intra-node iff they share a node, inter-node within a rack, and
// cross-rack otherwise. NodesPerRack = 0 disables the rack tier (every
// inter-node link is equal), preserving the two-tier models unchanged.
type Topology struct {
	Ranks        int
	GPUsPerNode  int
	NodesPerRack int
}

// Node returns the node index hosting rank r.
func (t Topology) Node(r int) int {
	if t.GPUsPerNode <= 0 {
		return r
	}
	return r / t.GPUsPerNode
}

// SameNode reports whether ranks a and b share a node.
func (t Topology) SameNode(a, b int) bool { return t.Node(a) == t.Node(b) }

// Nodes returns the number of nodes in the topology.
func (t Topology) Nodes() int {
	if t.GPUsPerNode <= 0 {
		return t.Ranks
	}
	return (t.Ranks + t.GPUsPerNode - 1) / t.GPUsPerNode
}

// Rack returns the rack index hosting rank r (0 when the rack tier is
// disabled).
func (t Topology) Rack(r int) int {
	if t.NodesPerRack <= 0 {
		return 0
	}
	return t.Node(r) / t.NodesPerRack
}

// SameRack reports whether ranks a and b share a rack; always true when
// the rack tier is disabled.
func (t Topology) SameRack(a, b int) bool { return t.Rack(a) == t.Rack(b) }

// Model is the full hardware cost model for a cluster.
type Model struct {
	Name string
	Topo Topology

	// AlphaIntra/BetaIntra: per-message latency (s) and per-byte cost
	// (s/B) for ranks on the same node.
	AlphaIntra, BetaIntra float64
	// AlphaInter/BetaInter: same for ranks on different nodes (within a
	// rack, when the rack tier is enabled).
	AlphaInter, BetaInter float64
	// AlphaCross/BetaCross: same for ranks in different racks. Used only
	// when Topo.NodesPerRack > 0 — the oversubscribed spine/aggregation
	// hop of a multi-rack fabric.
	AlphaCross, BetaCross float64
	// FlopBeta: seconds per byte of reduction arithmetic (sum or the
	// Adasum scaled-combine). Dot products cost the same per byte.
	FlopBeta float64
	// MemCopyBeta: seconds per byte of local packing/unpacking
	// (tensor-fusion copies, §4.4.3).
	MemCopyBeta float64

	// Faults, when non-nil, injects stragglers and rank failures into
	// runs over this model: comm kills ranks at their FailAtSeconds
	// deadlines, and the overlap engine stretches per-rank compute by
	// ComputeScale. nil simulates an always-healthy cluster (every
	// preset's default).
	Faults *Faults
}

// Transfer returns the cost in seconds of moving n bytes from rank src to
// rank dst. Byte counts are int64 so >2 GiB transfers stay exact on
// 32-bit builds (GOARCH=386 is a CI leg).
func (m *Model) Transfer(src, dst int, n int64) float64 {
	if src == dst {
		return 0
	}
	if m.Topo.SameNode(src, dst) {
		return m.AlphaIntra + float64(n)*m.BetaIntra
	}
	if m.Topo.NodesPerRack > 0 && !m.Topo.SameRack(src, dst) {
		return m.AlphaCross + float64(n)*m.BetaCross
	}
	return m.AlphaInter + float64(n)*m.BetaInter
}

// Reduce returns the cost of reducing n bytes of operands locally.
func (m *Model) Reduce(n int64) float64 { return float64(n) * m.FlopBeta }

// MemCopy returns the cost of a local n-byte pack/unpack copy.
func (m *Model) MemCopy(n int64) float64 { return float64(n) * m.MemCopyBeta }

func (m *Model) String() string {
	return fmt.Sprintf("%s(%d ranks, %d/node)", m.Name, m.Topo.Ranks, m.Topo.GPUsPerNode)
}

// Presets. Constants are calibrated so that the absolute latencies land
// in the ranges the paper reports (Figure 4: ~10 ms floors, hundreds of
// ms at 2^28 bytes on 64 GPUs; Table 4: 12.2K samples/s baseline
// throughput at 64 GPUs) — see EXPERIMENTS.md for the calibration notes.

// AzureNC24rsV3 models the ResNet-50 cluster of §5.1: 4 PCIe V100s per
// node, 100 Gb/s Infiniband between nodes.
func AzureNC24rsV3(ranks int) *Model {
	return &Model{
		Name:       "Azure-NC24rs_v3",
		Topo:       Topology{Ranks: ranks, GPUsPerNode: 4},
		AlphaIntra: 8e-6, BetaIntra: 1.0 / 12e9, // PCIe gen3 ~12 GB/s effective
		AlphaInter: 2.5e-5, BetaInter: 1.0 / 10e9, // 100 Gb/s IB ~10 GB/s effective
		FlopBeta:    1.0 / 500e9, // reduction kernels are HBM-bound
		MemCopyBeta: 1.0 / 300e9,
	}
}

// DGX2 models the BERT-Large cluster of §5.3: 16 V100s with NVSwitch per
// node, 8 IB NICs (800 Gb/s aggregate) between nodes.
func DGX2(ranks int) *Model {
	return &Model{
		Name:       "DGX-2",
		Topo:       Topology{Ranks: ranks, GPUsPerNode: 16},
		AlphaIntra: 5e-6, BetaIntra: 1.0 / 120e9, // NVSwitch ~120 GB/s per GPU
		AlphaInter: 3e-5, BetaInter: 1.0 / 80e9, // 8 NICs aggregate
		FlopBeta:    1.0 / 500e9,
		MemCopyBeta: 1.0 / 400e9,
	}
}

// TCP40 models the slow-interconnect cluster of §5.2: 4-GPU nodes with
// 40 Gb/s TCP between them.
func TCP40(ranks int) *Model {
	return &Model{
		Name:       "TCP-40Gb",
		Topo:       Topology{Ranks: ranks, GPUsPerNode: 4},
		AlphaIntra: 8e-6, BetaIntra: 1.0 / 12e9,
		// Single-stream TCP over a shared 40 Gb fabric: high latency and
		// ~0.35 GB/s effective per stream (kernel TCP rarely does better).
		AlphaInter: 3e-4, BetaInter: 1.0 / 0.35e9,
		FlopBeta:    1.0 / 500e9,
		MemCopyBeta: 1.0 / 300e9,
	}
}

// TCP40Racked extends the TCP-40Gb cluster with a rack tier: 4-GPU
// nodes, nodesPerRack nodes per rack on the 40 Gb leaf fabric, and an
// oversubscribed spine between racks (twice the latency, roughly a
// third of the per-stream bandwidth — the classic 3:1 oversubscription
// of a cost-optimized datacenter fabric). This is the topology where a
// third reduction level pays: cross-rack traffic is expensive enough
// that shrinking it below the cross-node volume shows up directly in
// step latency.
func TCP40Racked(ranks, nodesPerRack int) *Model {
	m := TCP40(ranks)
	m.Name = "TCP-40Gb-racked"
	m.Topo.NodesPerRack = nodesPerRack
	m.AlphaCross = 2 * m.AlphaInter
	m.BetaCross = 3 * m.BetaInter
	return m
}

// Uniform builds a flat, fully symmetric model — every pair of ranks pays
// the same alpha/beta — convenient for unit tests with exact expected
// costs.
func Uniform(ranks int, alpha, beta float64) *Model {
	return &Model{
		Name:       "uniform",
		Topo:       Topology{Ranks: ranks, GPUsPerNode: 1},
		AlphaIntra: alpha, BetaIntra: beta,
		AlphaInter: alpha, BetaInter: beta,
		FlopBeta:    0,
		MemCopyBeta: 0,
	}
}

// Zero builds a free network (all costs zero), used when only numerical
// results matter and simulated time is irrelevant.
func Zero(ranks int) *Model { return Uniform(ranks, 0, 0) }
