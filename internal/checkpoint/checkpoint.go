// Package checkpoint serializes the full state of a training run so a
// resumed run is bitwise-identical to one that was never interrupted.
// "Full" is the load-bearing word: beyond the obvious parameters it
// must capture
//
//   - every worker's optimizer state (momenta/moments and the step
//     counter driving Adam/LAMB bias correction);
//   - every worker's data-iterator position as (reshuffle count,
//     cursor) — the shuffle stream is a pure function of the seed, so
//     two integers replay the exact permutation sequence;
//   - every communication stream's error-feedback residuals. A
//     compressed run's convergence story rests on the residual feeding
//     the dropped error back next step (Zhong et al.); a checkpoint
//     that silently zeroes residuals at restart changes the trajectory
//     of every EF run while looking plausible — the reason they are
//     first-class here;
//   - the loop bookkeeping (step, partial-epoch loss sum, simulated
//     seconds, convergence flags) so results, not just parameters,
//     continue seamlessly.
//
// The wire format is a deterministic little-endian binary encoding:
// floats travel as raw IEEE bits (exact — no text round-trip), slices
// are length-prefixed, and a magic/version header guards against
// decoding foreign bytes. Marshal(Unmarshal(b)) is byte-identical.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/optim"
)

// Worker is one worker's slice of the training state.
type Worker struct {
	// Opt is the worker's optimizer snapshot (post-optimizer scopes; in
	// pre-optimizer scope the worker clones stay unstepped and snapshot
	// empty).
	Opt optim.State
	// Reshuffles and Cursor are the worker's data-iterator position
	// (data.Iterator.State).
	Reshuffles int64
	Cursor     int64
	// Residuals is the worker engine's error-feedback state
	// (overlap.Engine.SnapshotStreams): per bucket slot, per stream
	// (source stream first, then hierarchy levels), per encode site.
	// nil on the host substrate or under stateless codecs.
	Residuals [][][][]float32
	// Policy is the worker engine's adaptive-compression decision state
	// (overlap.Engine.SnapshotPolicies): per bucket slot, the telemetry
	// memory plus the policy's own snapshot. A resumed run must
	// re-decide — and therefore re-encode — exactly as the
	// uninterrupted run would have; dropping this state silently
	// changes codec choices from the first post-resume step. nil when
	// no adaptive policy is active.
	Policy [][]float64
}

// State is the complete training state at a reduction-step boundary.
type State struct {
	// Workers is the worker count of the run that captured the state;
	// resume requires the same count (elastic reshapes restart data
	// iterators instead — see trainer).
	Workers int
	// Step is the number of completed reduction steps.
	Step int64
	// SimSeconds is the cumulative simulated time at Step.
	SimSeconds float64
	// LossSum is the partial-epoch training-loss accumulator, so the
	// resumed epoch's recorded TrainLoss matches the uninterrupted run.
	LossSum float64
	// Convergence bookkeeping (trainer.Result fields at Step).
	Converged      bool
	EpochsToTarget int64
	StepsToTarget  int64
	// Params is the master parameter vector.
	Params []float32
	// Shared is the pre-optimizer scope's shared optimizer state.
	Shared optim.State
	// PerWorker is indexed by worker (world rank).
	PerWorker []Worker
}

// Clone returns a deep copy — snapshots handed to user callbacks must
// not alias live training state.
func (s *State) Clone() *State {
	b := s.Marshal()
	c, err := Unmarshal(b)
	if err != nil {
		panic("checkpoint: Clone round-trip failed: " + err.Error())
	}
	return c
}

const (
	magic = uint32(0x41444B43) // "ADKC"
	// version 2 added per-worker adaptive-compression policy state.
	version = uint32(2)
)

// Marshal encodes the state into a self-contained byte slice. The
// encoding is deterministic: the same state always produces the same
// bytes, and float payloads are raw IEEE-754 bits.
func (s *State) Marshal() []byte {
	var e encoder
	e.u32(magic)
	e.u32(version)
	e.i64(int64(s.Workers))
	e.i64(s.Step)
	e.f64(s.SimSeconds)
	e.f64(s.LossSum)
	e.boolean(s.Converged)
	e.i64(s.EpochsToTarget)
	e.i64(s.StepsToTarget)
	e.f32s(s.Params)
	e.optState(s.Shared)
	e.i64(int64(len(s.PerWorker)))
	for _, w := range s.PerWorker {
		e.optState(w.Opt)
		e.i64(w.Reshuffles)
		e.i64(w.Cursor)
		e.i64(int64(len(w.Residuals)))
		for _, slot := range w.Residuals {
			e.i64(int64(len(slot)))
			for _, stream := range slot {
				e.i64(int64(len(stream)))
				for _, site := range stream {
					e.f32s(site)
				}
			}
		}
		e.i64(int64(len(w.Policy)))
		for _, slot := range w.Policy {
			e.f64s(slot)
		}
	}
	return e.buf
}

// Unmarshal decodes bytes produced by Marshal, validating the header
// and every length prefix.
func Unmarshal(b []byte) (*State, error) {
	d := decoder{buf: b}
	if m, err := d.u32(); err != nil || m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint?)")
	}
	if v, err := d.u32(); err != nil || v != version {
		return nil, fmt.Errorf("checkpoint: unsupported version")
	}
	s := &State{}
	var err error
	var workers int64
	if workers, err = d.i64(); err != nil {
		return nil, err
	}
	s.Workers = int(workers)
	if s.Step, err = d.i64(); err != nil {
		return nil, err
	}
	if s.SimSeconds, err = d.f64(); err != nil {
		return nil, err
	}
	if s.LossSum, err = d.f64(); err != nil {
		return nil, err
	}
	if s.Converged, err = d.boolean(); err != nil {
		return nil, err
	}
	if s.EpochsToTarget, err = d.i64(); err != nil {
		return nil, err
	}
	if s.StepsToTarget, err = d.i64(); err != nil {
		return nil, err
	}
	if s.Params, err = d.f32s(); err != nil {
		return nil, err
	}
	if s.Shared, err = d.optState(); err != nil {
		return nil, err
	}
	nw, err := d.i64()
	if err != nil {
		return nil, err
	}
	if nw < 0 || nw > 1<<20 {
		return nil, fmt.Errorf("checkpoint: implausible worker count %d", nw)
	}
	s.PerWorker = make([]Worker, nw)
	for i := range s.PerWorker {
		w := &s.PerWorker[i]
		if w.Opt, err = d.optState(); err != nil {
			return nil, err
		}
		if w.Reshuffles, err = d.i64(); err != nil {
			return nil, err
		}
		if w.Cursor, err = d.i64(); err != nil {
			return nil, err
		}
		nSlots, err := d.i64()
		if err != nil {
			return nil, err
		}
		if nSlots < 0 || nSlots > 1<<20 {
			return nil, fmt.Errorf("checkpoint: implausible slot count %d", nSlots)
		}
		if nSlots > 0 {
			w.Residuals = make([][][][]float32, nSlots)
			for si := range w.Residuals {
				nStreams, err := d.i64()
				if err != nil {
					return nil, err
				}
				if nStreams < 0 || nStreams > 1<<20 {
					return nil, fmt.Errorf("checkpoint: implausible stream count %d", nStreams)
				}
				if nStreams == 0 {
					continue
				}
				w.Residuals[si] = make([][][]float32, nStreams)
				for sti := range w.Residuals[si] {
					nSites, err := d.i64()
					if err != nil {
						return nil, err
					}
					if nSites < 0 || nSites > 1<<20 {
						return nil, fmt.Errorf("checkpoint: implausible site count %d", nSites)
					}
					if nSites == 0 {
						continue
					}
					w.Residuals[si][sti] = make([][]float32, nSites)
					for k := range w.Residuals[si][sti] {
						if w.Residuals[si][sti][k], err = d.f32s(); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		nPol, err := d.i64()
		if err != nil {
			return nil, err
		}
		if nPol < 0 || nPol > 1<<20 {
			return nil, fmt.Errorf("checkpoint: implausible policy slot count %d", nPol)
		}
		if nPol > 0 {
			w.Policy = make([][]float64, nPol)
			for si := range w.Policy {
				if w.Policy[si], err = d.f64s(); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(d.buf)-d.off)
	}
	return s, nil
}

// ------------------------------------------------------------- encoder

type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *encoder) boolean(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// f32s writes a length-prefixed float32 slice as raw bits; a nil slice
// (length -1) round-trips as nil, distinct from an empty one.
func (e *encoder) f32s(v []float32) {
	if v == nil {
		e.i64(-1)
		return
	}
	e.i64(int64(len(v)))
	for _, x := range v {
		e.u32(math.Float32bits(x))
	}
}

// f64s writes a length-prefixed float64 slice as raw bits; a nil slice
// (length -1) round-trips as nil, distinct from an empty one.
func (e *encoder) f64s(v []float64) {
	if v == nil {
		e.i64(-1)
		return
	}
	e.i64(int64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *encoder) optState(s optim.State) {
	e.i64(s.Step)
	e.i64(int64(len(s.Vecs)))
	for _, v := range s.Vecs {
		e.f32s(v)
	}
}

// ------------------------------------------------------------- decoder

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, fmt.Errorf("checkpoint: truncated (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) i64() (int64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func (d *decoder) f64() (float64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (d *decoder) boolean() (bool, error) {
	b, err := d.take(1)
	if err != nil {
		return false, err
	}
	return b[0] != 0, nil
}

func (d *decoder) f32s() ([]float32, error) {
	n, err := d.i64()
	if err != nil {
		return nil, err
	}
	if n == -1 {
		return nil, nil
	}
	// Bound against the bytes actually remaining: int(n)*4 must not
	// overflow (GOARCH=386 is a CI leg), and a plausible-looking length
	// larger than the blob is corruption either way.
	if n < 0 || n > int64(len(d.buf)-d.off)/4 {
		return nil, fmt.Errorf("checkpoint: implausible vector length %d", n)
	}
	b, err := d.take(int(n) * 4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (d *decoder) f64s() ([]float64, error) {
	n, err := d.i64()
	if err != nil {
		return nil, err
	}
	if n == -1 {
		return nil, nil
	}
	// Same 386-safe bound discipline as f32s: the length must fit the
	// bytes actually remaining before int(n)*8 is formed.
	if n < 0 || n > int64(len(d.buf)-d.off)/8 {
		return nil, fmt.Errorf("checkpoint: implausible f64 vector length %d", n)
	}
	b, err := d.take(int(n) * 8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func (d *decoder) optState() (optim.State, error) {
	var s optim.State
	var err error
	if s.Step, err = d.i64(); err != nil {
		return s, err
	}
	n, err := d.i64()
	if err != nil {
		return s, err
	}
	if n < 0 || n > 1<<20 {
		return s, fmt.Errorf("checkpoint: implausible state vector count %d", n)
	}
	s.Vecs = make([][]float32, n)
	for i := range s.Vecs {
		if s.Vecs[i], err = d.f32s(); err != nil {
			return s, err
		}
	}
	return s, nil
}
