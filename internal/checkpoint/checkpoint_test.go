package checkpoint

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/optim"
)

func sampleState() *State {
	return &State{
		Workers:        3,
		Step:           42,
		SimSeconds:     1.25e-3,
		LossSum:        0.75,
		Converged:      true,
		EpochsToTarget: 2,
		StepsToTarget:  37,
		Params:         []float32{1.5, -2.25, float32(math.Inf(1)), float32(math.NaN())},
		Shared:         optim.State{Step: 7, Vecs: [][]float32{{0.5, 0.25}, nil}},
		PerWorker: []Worker{
			{
				Opt:        optim.State{Step: 3, Vecs: [][]float32{{1, 2}, {3, 4}}},
				Reshuffles: 5,
				Cursor:     17,
				Residuals: [][][][]float32{
					{{{0.125, -0.5}, {}}, {{1}}},
					nil,
				},
			},
			{}, // a dead rank's zero-valued entry
			{Opt: optim.State{}, Reshuffles: 1},
		},
	}
}

// TestMarshalRoundTrip: Unmarshal(Marshal(s)) reproduces the state
// exactly — including NaN/Inf bit patterns and the nil/empty slice
// distinction — and re-marshalling yields identical bytes.
func TestMarshalRoundTrip(t *testing.T) {
	s := sampleState()
	b := s.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// NaN != NaN, so compare the re-encoded bytes: equal bytes means
	// equal bits everywhere.
	b2 := got.Marshal()
	if !reflect.DeepEqual(b, b2) {
		t.Fatal("marshal -> unmarshal -> marshal is not byte-identical")
	}
	if got.Workers != 3 || got.Step != 42 || !got.Converged {
		t.Fatalf("scalars corrupted: %+v", got)
	}
	if math.Float32bits(got.Params[3]) != math.Float32bits(s.Params[3]) {
		t.Fatal("NaN bit pattern not preserved")
	}
	if got.Shared.Vecs[1] != nil {
		t.Fatal("nil state vector decoded as non-nil")
	}
	if len(got.PerWorker[0].Residuals[0][0][1]) != 0 || got.PerWorker[0].Residuals[0][0][1] == nil {
		t.Fatal("empty residual site not preserved as empty (non-nil)")
	}
	if got.PerWorker[0].Residuals[1] != nil {
		t.Fatal("nil residual slot decoded as non-nil")
	}
}

// TestUnmarshalRejectsCorruption: bad magic, truncation and trailing
// garbage all fail loudly instead of decoding nonsense.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := sampleState().Marshal()

	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Unmarshal(b[:len(b)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := Unmarshal(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestCloneIsDeep: mutating a clone must not touch the original.
func TestCloneIsDeep(t *testing.T) {
	s := sampleState()
	c := s.Clone()
	c.Params[0] = 99
	c.PerWorker[0].Opt.Vecs[0][0] = 99
	c.PerWorker[0].Residuals[0][0][0][0] = 99
	if s.Params[0] == 99 || s.PerWorker[0].Opt.Vecs[0][0] == 99 || s.PerWorker[0].Residuals[0][0][0][0] == 99 {
		t.Fatal("Clone shares storage with the original")
	}
}
