package overlap

import (
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func testLayout() tensor.Layout {
	names := []string{"fc1", "fc2", "conv", "head", "bias"}
	sizes := []int{512, 1024, 2048, 300, 12}
	return tensor.NewLayout(names, sizes)
}

func randGrads(ranks int, layout tensor.Layout, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, ranks)
	for r := range out {
		out[r] = make([]float32, layout.TotalSize())
		for i := range out[r] {
			out[r][i] = rng.Float32() - 0.5
		}
	}
	return out
}

// runStep reduces one set of gradients through per-rank Engines and
// returns the per-rank results plus the simulated step time.
func runStep(ranks int, model *simnet.Model, opt Options, grads [][]float32) ([][]float32, float64) {
	w := comm.NewWorld(ranks, model)
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(opt)
	}
	results := make([][]float32, ranks)
	t := comm.MaxClock(w, func(p *comm.Proc) {
		x := tensor.Clone(grads[p.Rank()])
		engines[p.Rank()].Step(p, x)
		results[p.Rank()] = x
	})
	return results, t
}

// TestOverlapBitwiseEqualsSync is the central overlap-correctness
// property: for every per-bucket algorithm and several thresholds, the
// overlapped step produces bitwise-identical results to the synchronous
// step (same buckets, same collectives, different schedule).
func TestOverlapBitwiseEqualsSync(t *testing.T) {
	layout := testLayout()
	const ranks = 8
	model := simnet.TCP40(ranks)
	for _, strat := range []collective.Strategy{collective.StrategyTree, collective.StrategyRVH, collective.StrategyRing} {
		for _, threshold := range []int{1 << 11, 1 << 13, 1 << 22} {
			grads := randGrads(ranks, layout, 42)
			opt := Options{
				Group: collective.WorldGroup(ranks), Layout: layout,
				FusionBytes: threshold, Strategy: strat, StepSeconds: 1e-3,
			}
			syncRes, syncT := runStep(ranks, model, opt, grads)
			opt.Overlap = true
			overRes, overT := runStep(ranks, model, opt, grads)
			for r := range syncRes {
				if !tensor.Equal(syncRes[r], overRes[r], 0) {
					t.Fatalf("strat=%v threshold=%d rank=%d: overlap result not bitwise-equal to sync",
						strat, threshold, r)
				}
			}
			if overT > syncT {
				t.Fatalf("strat=%v threshold=%d: overlap time %v exceeds sync time %v",
					strat, threshold, overT, syncT)
			}
		}
	}
}

// TestTreeEngineBitwiseEqualsHostReducer pins the stronger parity: the
// bucketed StrategyTree engine — any threshold, any rank count — reproduces
// the host-side monolithic tree reduction bit for bit.
func TestTreeEngineBitwiseEqualsHostReducer(t *testing.T) {
	layout := testLayout()
	red := adasum.NewReducer()
	for _, ranks := range []int{1, 2, 3, 4, 5, 8} {
		for _, threshold := range []int{1 << 12, 1 << 14, 64 << 20} {
			grads := randGrads(ranks, layout, int64(7*ranks))
			want := red.TreeReduce(grads, layout)
			opt := Options{
				Group: collective.WorldGroup(ranks), Layout: layout,
				FusionBytes: threshold, Strategy: collective.StrategyTree, Overlap: true,
			}
			results, _ := runStep(ranks, nil, opt, grads)
			for r := range results {
				if !tensor.Equal(results[r], want, 0) {
					t.Fatalf("ranks=%d threshold=%d rank=%d: engine differs from host Reducer",
						ranks, threshold, r)
				}
			}
		}
	}
}

// TestRingEngineMatchesMean checks the sum path against the host mean.
func TestRingEngineMatchesMean(t *testing.T) {
	layout := testLayout()
	const ranks = 6
	grads := randGrads(ranks, layout, 3)
	want := adasum.MeanReduce(grads)
	opt := Options{
		Group: collective.WorldGroup(ranks), Layout: layout,
		Strategy: collective.StrategyRing, Overlap: true, FusionBytes: 1 << 12,
	}
	results, _ := runStep(ranks, nil, opt, grads)
	for r := range results {
		if !tensor.Equal(results[r], want, 1e-6) {
			t.Fatalf("rank %d: ring mean differs from host mean", r)
		}
	}
}

// TestOverlapHidesCommunication is the virtual-clock property: on an
// inter-node-dominated model with compute comparable to communication,
// the overlapped step is strictly faster than the synchronous one, and
// no faster than the compute floor.
func TestOverlapHidesCommunication(t *testing.T) {
	names := make([]string, 16)
	sizes := make([]int, 16)
	for i := range names {
		names[i] = "layer"
		sizes[i] = 4096
	}
	layout := tensor.NewLayout(names, sizes)
	const ranks = 8
	model := simnet.TCP40(ranks)
	grads := randGrads(ranks, layout, 9)
	opt := Options{
		Group: collective.WorldGroup(ranks), Layout: layout,
		FusionBytes: 4 * 4096 * 4, // four layers per bucket
		Strategy:    collective.StrategyRVH,
		StepSeconds: 0.004,
	}
	_, syncT := runStep(ranks, model, opt, grads)
	opt.Overlap = true
	_, overT := runStep(ranks, model, opt, grads)

	if overT >= syncT {
		t.Fatalf("overlap did not reduce step time: overlap %v vs sync %v", overT, syncT)
	}
	if overT < opt.StepSeconds {
		t.Fatalf("overlap time %v below the compute floor %v", overT, opt.StepSeconds)
	}
	// The last bucket's communication can never be hidden; everything
	// before it should largely disappear. Require at least 20% saving.
	if overT > 0.8*syncT {
		t.Fatalf("overlap saved too little: %v vs sync %v", overT, syncT)
	}
}

// TestEngineStepIsRepeatable drives the same Engine across several
// steps (bucket skeleton reuse, plane reuse) and checks each step's
// result matches a fresh reduction.
func TestEngineStepIsRepeatable(t *testing.T) {
	layout := testLayout()
	const ranks, steps = 4, 5
	w := comm.NewWorld(ranks, simnet.TCP40(ranks))
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(Options{
			Group: collective.WorldGroup(ranks), Layout: layout,
			FusionBytes: 1 << 13, Strategy: collective.StrategyTree, Overlap: true, StepSeconds: 1e-3,
		})
	}
	red := adasum.NewReducer()
	for s := 0; s < steps; s++ {
		grads := randGrads(ranks, layout, int64(100+s))
		want := red.TreeReduce(grads, layout)
		results := make([][]float32, ranks)
		comm.MaxClock(w, func(p *comm.Proc) {
			x := tensor.Clone(grads[p.Rank()])
			engines[p.Rank()].Step(p, x)
			results[p.Rank()] = x
		})
		for r := range results {
			if !tensor.Equal(results[r], want, 0) {
				t.Fatalf("step %d rank %d: repeated engine step diverged", s, r)
			}
		}
	}
}
