package overlap

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adasum"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func elasticLayout() tensor.Layout {
	return tensor.NewLayout([]string{"a", "b", "c", "d"}, []int{256, 256, 256, 256})
}

func randVec(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32() - 0.5
	}
	return v
}

// TestRebindReducesOnSurvivors: after a rank dies, rebinding the
// surviving engines to the survivor group must produce a step whose
// result is bitwise-equal to the host-side tree reduction over the
// survivors' contributions — the engine's usual parity property, on the
// shrunk gang. The dead rank also breaks the power of two, so this
// exercises the RVH→Tree fallback.
func TestRebindReducesOnSurvivors(t *testing.T) {
	const ranks = 4
	layout := elasticLayout()
	w := comm.NewWorld(ranks, nil)
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(Options{
			Group: collective.WorldGroup(ranks), Layout: layout,
			FusionBytes: 256 * 4, Strategy: collective.StrategyRVH, Overlap: true,
		})
	}
	step := func(xs [][]float32) {
		if err := w.RunErr(func(p *comm.Proc) {
			engines[p.Rank()].Step(p, xs[p.Rank()])
		}); err != nil {
			t.Fatalf("step failed: %v", err)
		}
	}

	// One healthy step binds the prototypes.
	xs := make([][]float32, ranks)
	for r := range xs {
		xs[r] = randVec(layout.TotalSize(), int64(100+r))
	}
	step(xs)

	// Rank 3 dies; survivors rebind to the 3-member group.
	w.DeclareDead(3)
	w.Reset()
	survivors := collective.Group{0, 1, 2}
	for _, r := range survivors {
		if engines[r].Strategy() != collective.StrategyRVH {
			t.Fatalf("engine %d strategy %v before rebind", r, engines[r].Strategy())
		}
		engines[r].Rebind(survivors)
		if engines[r].Strategy() != collective.StrategyTree {
			t.Fatalf("engine %d did not fall back to the parity tree on a non-power-of-two group", r)
		}
	}

	inputs := make([][]float32, ranks)
	want := make([][]float32, 0, len(survivors))
	for _, r := range survivors {
		inputs[r] = randVec(layout.TotalSize(), int64(200+r))
		want = append(want, append([]float32(nil), inputs[r]...))
	}
	step(inputs)

	expected := adasum.TreeReduce(want, layout)
	for _, r := range survivors {
		if !tensor.Equal(inputs[r], expected, 0) {
			t.Fatalf("survivor %d result not bitwise-equal to the host tree over survivors", r)
		}
	}
}

// TestRebindDropsHierarchyWhenIndivisible: a 2x4 hierarchical engine
// that shrinks to 7 ranks cannot keep 4-wide nodes; it must fall back
// to the flat collective rather than panic in NewHierarchy.
func TestRebindDropsHierarchyWhenIndivisible(t *testing.T) {
	const ranks = 8
	layout := elasticLayout()
	w := comm.NewWorld(ranks, nil)
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(Options{
			Group: collective.WorldGroup(ranks), Layout: layout,
			FusionBytes: 512 * 4, Strategy: collective.StrategyTree, Overlap: true,
			Hierarchy: []int{4},
		})
		if !engines[r].Hierarchical() {
			t.Fatal("hierarchy not active at construction")
		}
	}
	xs := make([][]float32, ranks)
	for r := range xs {
		xs[r] = randVec(layout.TotalSize(), int64(300+r))
	}
	if err := w.RunErr(func(p *comm.Proc) {
		engines[p.Rank()].Step(p, xs[p.Rank()])
	}); err != nil {
		t.Fatalf("hierarchical step failed: %v", err)
	}

	w.DeclareDead(5)
	w.Reset()
	survivors := collective.Group{0, 1, 2, 3, 4, 6, 7}
	for _, r := range survivors {
		engines[r].Rebind(survivors)
		if engines[r].Hierarchical() {
			t.Fatalf("engine %d kept a 4-wide hierarchy over 7 ranks", r)
		}
	}
	for _, r := range survivors {
		xs[r] = randVec(layout.TotalSize(), int64(400+r))
	}
	if err := w.RunErr(func(p *comm.Proc) {
		engines[p.Rank()].Step(p, xs[p.Rank()])
	}); err != nil {
		t.Fatalf("flat fallback step failed: %v", err)
	}
}

// TestHierarchicalBucketsMatchFlatUnderNoCodec: the hierarchical
// bucket reduction is a different algorithm (sum within nodes, adaptive
// combine across), so it is not bitwise-comparable to the flat combine
// — but near-orthogonal random gradients make both approach the plain
// sum, so the two must agree in direction (cosine) while every rank of
// each arm agrees bitwise with its peers.
func TestHierarchicalBucketsMatchFlatUnderNoCodec(t *testing.T) {
	const ranks = 8
	layout := elasticLayout()
	run := func(hier []int) [][]float32 {
		w := comm.NewWorld(ranks, nil)
		engines := make([]*Engine, ranks)
		for r := range engines {
			engines[r] = New(Options{
				Group: collective.WorldGroup(ranks), Layout: layout,
				FusionBytes: 512 * 4, Strategy: collective.StrategyTree, Overlap: true,
				Hierarchy: hier,
			})
		}
		xs := make([][]float32, ranks)
		for r := range xs {
			xs[r] = randVec(layout.TotalSize(), int64(500+r))
		}
		w.Run(func(p *comm.Proc) {
			engines[p.Rank()].Step(p, xs[p.Rank()])
		})
		return xs
	}
	flat := run(nil)
	hier := run([]int{4})
	for r := 1; r < ranks; r++ {
		if !tensor.Equal(hier[r], hier[0], 0) {
			t.Fatalf("hierarchical ranks disagree: %d vs 0", r)
		}
	}
	var dot, nf, nh float64
	for i := range flat[0] {
		dot += float64(flat[0][i]) * float64(hier[0][i])
		nf += float64(flat[0][i]) * float64(flat[0][i])
		nh += float64(hier[0][i]) * float64(hier[0][i])
	}
	if cos := dot / math.Sqrt(nf*nh); cos < 0.99 {
		t.Fatalf("hierarchical bucket result points away from flat combine: cosine %v", cos)
	}
}

// TestEngineSkewStretchesStep: the straggler model must stretch the
// simulated step of exactly the skewed rank's critical path.
func TestEngineSkewStretchesStep(t *testing.T) {
	const ranks = 4
	layout := elasticLayout()
	measure := func(faults *simnet.Faults) float64 {
		w := comm.NewWorld(ranks, simnet.Uniform(ranks, 1e-5, 1e-9))
		engines := make([]*Engine, ranks)
		for r := range engines {
			engines[r] = New(Options{
				Group: collective.WorldGroup(ranks), Layout: layout,
				FusionBytes: 512 * 4, Strategy: collective.StrategyTree, Overlap: true,
				StepSeconds: 1e-3, Faults: faults,
			})
		}
		xs := make([][]float32, ranks)
		for r := range xs {
			xs[r] = randVec(layout.TotalSize(), int64(600+r))
		}
		return comm.MaxClock(w, func(p *comm.Proc) {
			engines[p.Rank()].Step(p, xs[p.Rank()])
		})
	}
	base := measure(nil)
	skewed := measure(&simnet.Faults{SkewFactors: []float64{1, 1, 3, 1}})
	if skewed <= base*1.5 {
		t.Fatalf("3x straggler barely moved the step: %v -> %v", base, skewed)
	}
}

// TestRebindPreservesSourceResiduals: an error-feedback engine that is
// rebound must carry each slot's source-quantization residual into the
// rebuilt streams (hop residuals are shape-bound to the old group and
// are dropped).
func TestRebindPreservesSourceResiduals(t *testing.T) {
	const ranks = 4
	layout := elasticLayout()
	w := comm.NewWorld(ranks, nil)
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(Options{
			Group: collective.WorldGroup(ranks), Layout: layout,
			FusionBytes: 256 * 4, Strategy: collective.StrategyTree, Overlap: true,
			Compression: compress.TopK(0.1, true),
		})
	}
	xs := make([][]float32, ranks)
	for r := range xs {
		xs[r] = randVec(layout.TotalSize(), int64(700+r))
	}
	w.Run(func(p *comm.Proc) {
		engines[p.Rank()].Step(p, xs[p.Rank()])
	})

	before := engines[0].SnapshotStreams()
	if len(before) == 0 || len(before[0]) == 0 || len(before[0][0]) == 0 {
		t.Fatal("no residuals captured after an EF step")
	}
	engines[0].Rebind(collective.Group{0, 1, 2})
	after := engines[0].SnapshotStreams()
	if len(after) != len(before) {
		t.Fatalf("slot count changed across Rebind: %d -> %d", len(before), len(after))
	}
	for slot := range after {
		if len(after[slot]) == 0 || len(after[slot][0]) == 0 {
			t.Fatalf("slot %d lost its source residual", slot)
		}
		got, want := after[slot][0][0], before[slot][0][0]
		if len(got) != len(want) {
			t.Fatalf("slot %d residual length changed: %d -> %d", slot, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("slot %d residual diverged at %d", slot, i)
			}
		}
	}
}
