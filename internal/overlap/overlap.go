// Package overlap is the asynchronous bucketed-reduction engine: the
// execution model of §4.4.3 in which tensor fusion and communication/
// compute overlap turn a training step from "backprop, then one
// monolithic allreduce" into a pipeline. As simulated backprop walks the
// layers in reverse, each layer's gradient is declared ready and packed
// into a fusion bucket; when a bucket reaches the threshold it is
// launched as an asynchronous collective (comm.Handle) that runs on its
// own channel plane while earlier layers' backward compute continues.
// Buckets chain on a per-rank serialized communication stream (the way
// Horovod's background thread issues fusion buffers in order), and the
// join at the end of the step folds each bucket's arrival into the
// rank's clock with max(compute, arrival) — so the simulated step time
// is the critical path of the compute/communication pipeline, not the
// sum of its parts.
//
// The engine runs the same buckets through the same collectives whether
// Overlap is on or off; the synchronous mode simply blocks at each
// launch. The two modes therefore produce bitwise-identical results —
// the property the trainer's A/B tests pin down — and differ only in
// virtual time. With collective.StrategyTree the result is additionally
// bitwise-equal to the host-side adasum.Reducer tree reduction, so the
// whole bucketed substrate can be verified against the monolithic path
// at zero tolerance.
package overlap

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/fusion"
	"repro/internal/tensor"
)

// Options configures an Engine.
type Options struct {
	// Group is the set of world ranks reducing together.
	Group collective.Group
	// Layout is the per-layer segmentation of the gradient vector; the
	// backward walk declares layers ready in reverse layout order.
	Layout tensor.Layout
	// FusionBytes is the bucket threshold (<= 0 selects 2 MB, Horovod's
	// default fusion buffer).
	FusionBytes int
	// Strategy selects the per-bucket collective on the unified
	// collective.Strategy axis: StrategyTree (default) and StrategyRVH
	// run the Adasum combine (host-tree parity and Algorithm 1
	// respectively); StrategyRing runs the synchronous-SGD mean on the
	// bandwidth-optimal ring. StrategyAuto resolves to the parity tree —
	// the deterministic default the A/B harness verifies against.
	Strategy collective.Strategy
	// Overlap launches buckets asynchronously against the remaining
	// backward compute; when false every bucket blocks at launch (the
	// bulk-synchronous A/B baseline with identical arithmetic).
	Overlap bool
	// StepSeconds is the simulated backward-compute time of one step,
	// apportioned to layers proportionally to their parameter counts and
	// charged as the reverse walk passes them. Zero means compute-free
	// (pure communication measurement).
	StepSeconds float64
	// PreSeconds is extra compute charged before the backward walk —
	// the forward pass, or the earlier local steps of an accumulated
	// (LocalSteps > 1) reduction whose backprop cannot overlap with this
	// step's communication.
	PreSeconds float64
	// Compression is the wire codec applied at bucket granularity: each
	// fused bucket is quantized once at launch (error-feedback codecs
	// carry the dropped remainder to the next step, per rank and per
	// bucket slot), and the bucket's collective encodes every hop's
	// payload so transfer costs, pool traffic and the wire-byte meter
	// see compressed sizes. Encode and decode passes are charged through
	// the cost model's MemCopy. nil or compress.None() leaves the engine
	// bitwise- and clock-identical to the uncompressed substrate.
	Compression compress.Codec
}

// strategy resolves the configured per-bucket algorithm.
func (o Options) strategy() collective.Strategy {
	if o.Strategy == collective.StrategyAuto {
		return collective.StrategyTree
	}
	return o.Strategy
}

// Engine is one rank's bucket scheduler. It owns the per-rank packer,
// handle list, layer-time table and per-bucket-slot communicators, all
// reused across steps; every rank of the group must drive its own
// Engine with the same Options so the bucket sequence (and the plane
// numbering derived from it) agrees everywhere. An Engine is not safe
// for concurrent use.
type Engine struct {
	opt      Options
	packer   *fusion.Packer
	layerSec []float64   // backward seconds per layer
	slices   [][]float32 // per-step layer views of x, for unfusing
	pending  []pendingOp
	// comms holds this rank's per-bucket-slot communicators, indexed by
	// launch order within a step; bucket sequences repeat across steps,
	// so slot i's communicator (and therefore its error-feedback
	// residual stream) always belongs to the same semantic bucket. The
	// first Step binds the prototype to the rank's Proc.
	proto *collective.Communicator
	comms []*collective.Communicator
}

type pendingOp struct {
	h *comm.Handle
	g *fusion.Group
	c *collective.Communicator
}

// New builds an Engine for one rank.
func New(opt Options) *Engine {
	if len(opt.Group) == 0 {
		panic("overlap: Options.Group is required")
	}
	if opt.Layout.NumLayers() == 0 {
		panic("overlap: Options.Layout is required")
	}
	if opt.FusionBytes <= 0 {
		opt.FusionBytes = 2 << 20
	}
	switch opt.strategy() {
	case collective.StrategyTree, collective.StrategyRing:
	case collective.StrategyRVH:
		if !opt.Group.IsPowerOfTwo() {
			panic("overlap: StrategyRVH requires a power-of-two group")
		}
	default:
		panic(fmt.Sprintf("overlap: per-bucket collectives take StrategyTree, StrategyRVH or StrategyRing (got %v)", opt.Strategy))
	}
	total := opt.Layout.TotalSize()
	layerSec := make([]float64, opt.Layout.NumLayers())
	if total > 0 && opt.StepSeconds > 0 {
		for l := range layerSec {
			layerSec[l] = opt.StepSeconds * float64(opt.Layout.Size(l)) / float64(total)
		}
	}
	if compress.IsNone(opt.Compression) {
		opt.Compression = nil
	}
	return &Engine{
		opt:      opt,
		packer:   fusion.NewPacker(opt.FusionBytes),
		layerSec: layerSec,
		slices:   make([][]float32, opt.Layout.NumLayers()),
	}
}

// Step runs one reduction step for this rank: simulated backprop
// declares the layers of x ready in reverse order, buckets launch as
// collectives on the group, and on return x holds the group-combined
// gradient on every rank. p's clock advances to the step's completion
// time (compute chained with per-bucket arrivals); the caller reads
// p.Clock() — or comm.MaxClock across ranks — for the simulated step
// latency.
func (e *Engine) Step(p *comm.Proc, x []float32) {
	layout := e.opt.Layout
	if layout.TotalSize() != len(x) {
		panic(fmt.Sprintf("overlap: x has %d elements, layout covers %d", len(x), layout.TotalSize()))
	}
	if e.proto == nil {
		e.proto = collective.New(p, e.opt.Group, collective.Config{
			Strategy: e.opt.strategy(),
			Codec:    e.opt.Compression,
		})
	}
	p.Compute(e.opt.PreSeconds)
	e.packer.Reset()
	e.pending = e.pending[:0]
	for l := 0; l < layout.NumLayers(); l++ {
		e.slices[l] = layout.Slice(x, l)
	}
	// Backward walk: the last layer's gradient materializes first.
	for l := layout.NumLayers() - 1; l >= 0; l-- {
		p.Compute(e.layerSec[l])
		if g := e.packer.Ready(l, layout.Name(l), e.slices[l]); g != nil {
			e.launch(p, g)
		}
	}
	if g := e.packer.Flush(); g != nil {
		e.launch(p, g)
	}
	// Join: drain buckets in launch order, unfusing each reduced buffer
	// back into its layers' home slices. Compressed buckets pay one more
	// MemCopy for the decode that materializes the dense result.
	for _, op := range e.pending {
		op.h.Wait(p)
		if op.c.Codec() != nil {
			p.ComputeMemCopy(op.g.Bytes())
		}
		p.ComputeMemCopy(op.g.Bytes())
		op.g.Unfuse(e.slices)
	}
}

// launch ships one fused bucket: the pack copy is charged to the rank;
// under a compression codec the bucket is then quantized in place at
// source (one charged encode pass, with error feedback against this
// rank's slot residual); and the bucket's collective starts on its own
// plane, chained after the previous bucket (one serialized comm stream
// per rank). In synchronous mode the rank blocks until the bucket
// completes.
func (e *Engine) launch(p *comm.Proc, g *fusion.Group) {
	p.ComputeMemCopy(g.Bytes())
	c := e.slotComm(len(e.pending))
	if st := c.Stream(); st != nil {
		st.Begin()
		st.Quantize(g.Data)
		p.ComputeMemCopy(g.Bytes())
	}
	var after *comm.Handle
	if n := len(e.pending); n > 0 {
		after = e.pending[n-1].h
	}
	plane := len(e.pending) + 1
	h := p.Launch(plane, after, func(ap *comm.Proc) {
		e.reduceBucket(c.OnProc(ap), g)
	})
	e.pending = append(e.pending, pendingOp{h: h, g: g, c: c})
	if !e.opt.Overlap {
		h.Wait(p)
	}
}

// slotComm returns this rank's communicator for bucket slot i, creating
// it on first use as a Fork of the prototype so each slot owns its own
// error-feedback stream. The engine's join-before-next-step ordering
// guarantees a slot's previous collective finished before the slot is
// reused, so the communicator hand-off between the rank goroutine and
// its async op is race-free.
func (e *Engine) slotComm(i int) *collective.Communicator {
	for len(e.comms) <= i {
		e.comms = append(e.comms, e.proto.Fork())
	}
	return e.comms[i]
}

// reduceBucket dispatches the bucket's collective on the communicator
// bound to the async op's endpoint: StrategyRing buckets run the
// synchronous-SGD mean, everything else the Adasum combine under the
// communicator's own strategy.
func (e *Engine) reduceBucket(c *collective.Communicator, g *fusion.Group) {
	if c.Strategy() == collective.StrategyRing {
		c.AllreduceMean(g.Data)
		return
	}
	c.Adasum(g.Data, g.Layout)
}
