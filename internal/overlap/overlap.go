// Package overlap is the asynchronous bucketed-reduction engine: the
// execution model of §4.4.3 in which tensor fusion and communication/
// compute overlap turn a training step from "backprop, then one
// monolithic allreduce" into a pipeline. As simulated backprop walks the
// layers in reverse, each layer's gradient is declared ready and packed
// into a fusion bucket; when a bucket reaches the threshold it is
// launched as an asynchronous collective (comm.Handle) that runs on its
// own channel plane while earlier layers' backward compute continues.
// Buckets chain on a per-rank serialized communication stream (the way
// Horovod's background thread issues fusion buffers in order), and the
// join at the end of the step folds each bucket's arrival into the
// rank's clock with max(compute, arrival) — so the simulated step time
// is the critical path of the compute/communication pipeline, not the
// sum of its parts.
//
// The engine runs the same buckets through the same collectives whether
// Overlap is on or off; the synchronous mode simply blocks at each
// launch. The two modes therefore produce bitwise-identical results —
// the property the trainer's A/B tests pin down — and differ only in
// virtual time. With AlgoTree the result is additionally bitwise-equal
// to the host-side adasum.Reducer tree reduction, so the whole bucketed
// substrate can be verified against the monolithic path at zero
// tolerance.
package overlap

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/fusion"
	"repro/internal/tensor"
)

// Algo selects the per-bucket collective.
type Algo int

// Per-bucket collectives.
const (
	// AlgoTree is collective.TreeAdasum: recursive doubling on full
	// vectors, bitwise-identical to the host-side Reducer tree. The
	// deterministic-parity default.
	AlgoTree Algo = iota
	// AlgoRVH is collective.AdasumRVH, Algorithm 1 of the paper:
	// bandwidth-optimal vector halving with the distributed per-layer
	// dot-product completion. Requires a power-of-two group.
	AlgoRVH
	// AlgoRingSum is collective.RingAllreduceMean: the synchronous-SGD
	// mean combiner on the bandwidth-optimal ring.
	AlgoRingSum
)

func (a Algo) String() string {
	switch a {
	case AlgoRVH:
		return "rvh"
	case AlgoRingSum:
		return "ring-sum"
	default:
		return "tree"
	}
}

// Options configures an Engine.
type Options struct {
	// Group is the set of world ranks reducing together.
	Group collective.Group
	// Layout is the per-layer segmentation of the gradient vector; the
	// backward walk declares layers ready in reverse layout order.
	Layout tensor.Layout
	// FusionBytes is the bucket threshold (<= 0 selects 2 MB, Horovod's
	// default fusion buffer).
	FusionBytes int
	// Algo is the per-bucket collective.
	Algo Algo
	// Overlap launches buckets asynchronously against the remaining
	// backward compute; when false every bucket blocks at launch (the
	// bulk-synchronous A/B baseline with identical arithmetic).
	Overlap bool
	// StepSeconds is the simulated backward-compute time of one step,
	// apportioned to layers proportionally to their parameter counts and
	// charged as the reverse walk passes them. Zero means compute-free
	// (pure communication measurement).
	StepSeconds float64
	// PreSeconds is extra compute charged before the backward walk —
	// the forward pass, or the earlier local steps of an accumulated
	// (LocalSteps > 1) reduction whose backprop cannot overlap with this
	// step's communication.
	PreSeconds float64
	// Compression is the wire codec applied at bucket granularity: each
	// fused bucket is quantized once at launch (error-feedback codecs
	// carry the dropped remainder to the next step, per rank and per
	// bucket slot), and the bucket's collective encodes every hop's
	// payload so transfer costs, pool traffic and the wire-byte meter
	// see compressed sizes. Encode and decode passes are charged through
	// the cost model's MemCopy. nil or compress.None() leaves the engine
	// bitwise- and clock-identical to the uncompressed substrate.
	Compression compress.Codec
}

// Engine is one rank's bucket scheduler. It owns the per-rank packer,
// handle list and layer-time table, all reused across steps; every rank
// of the group must drive its own Engine with the same Options so the
// bucket sequence (and the plane numbering derived from it) agrees
// everywhere. An Engine is not safe for concurrent use.
type Engine struct {
	opt      Options
	codec    compress.Codec // nil when uncompressed
	packer   *fusion.Packer
	layerSec []float64   // backward seconds per layer
	slices   [][]float32 // per-step layer views of x, for unfusing
	pending  []pendingOp
	// streams holds this rank's per-bucket-slot compression state,
	// indexed by launch order within a step; bucket sequences repeat
	// across steps, so slot i's error-feedback residuals always belong
	// to the same semantic bucket.
	streams []*compress.Stream
}

type pendingOp struct {
	h  *comm.Handle
	g  *fusion.Group
	st *compress.Stream
}

// New builds an Engine for one rank.
func New(opt Options) *Engine {
	if len(opt.Group) == 0 {
		panic("overlap: Options.Group is required")
	}
	if opt.Layout.NumLayers() == 0 {
		panic("overlap: Options.Layout is required")
	}
	if opt.FusionBytes <= 0 {
		opt.FusionBytes = 2 << 20
	}
	if opt.Algo == AlgoRVH && !opt.Group.IsPowerOfTwo() {
		panic("overlap: AlgoRVH requires a power-of-two group")
	}
	total := opt.Layout.TotalSize()
	layerSec := make([]float64, opt.Layout.NumLayers())
	if total > 0 && opt.StepSeconds > 0 {
		for l := range layerSec {
			layerSec[l] = opt.StepSeconds * float64(opt.Layout.Size(l)) / float64(total)
		}
	}
	codec := opt.Compression
	if compress.IsNone(codec) {
		codec = nil // the uncompressed fast paths key off nil
	}
	return &Engine{
		opt:      opt,
		codec:    codec,
		packer:   fusion.NewPacker(opt.FusionBytes),
		layerSec: layerSec,
		slices:   make([][]float32, opt.Layout.NumLayers()),
	}
}

// Step runs one reduction step for this rank: simulated backprop
// declares the layers of x ready in reverse order, buckets launch as
// collectives on the group, and on return x holds the group-combined
// gradient on every rank. p's clock advances to the step's completion
// time (compute chained with per-bucket arrivals); the caller reads
// p.Clock() — or comm.MaxClock across ranks — for the simulated step
// latency.
func (e *Engine) Step(p *comm.Proc, x []float32) {
	layout := e.opt.Layout
	if layout.TotalSize() != len(x) {
		panic(fmt.Sprintf("overlap: x has %d elements, layout covers %d", len(x), layout.TotalSize()))
	}
	p.Compute(e.opt.PreSeconds)
	e.packer.Reset()
	e.pending = e.pending[:0]
	for l := 0; l < layout.NumLayers(); l++ {
		e.slices[l] = layout.Slice(x, l)
	}
	// Backward walk: the last layer's gradient materializes first.
	for l := layout.NumLayers() - 1; l >= 0; l-- {
		p.Compute(e.layerSec[l])
		if g := e.packer.Ready(l, layout.Name(l), e.slices[l]); g != nil {
			e.launch(p, g)
		}
	}
	if g := e.packer.Flush(); g != nil {
		e.launch(p, g)
	}
	// Join: drain buckets in launch order, unfusing each reduced buffer
	// back into its layers' home slices. Compressed buckets pay one more
	// MemCopy for the decode that materializes the dense result.
	for _, op := range e.pending {
		op.h.Wait(p)
		if op.st != nil {
			p.ComputeMemCopy(op.g.Bytes())
		}
		p.ComputeMemCopy(op.g.Bytes())
		op.g.Unfuse(e.slices)
	}
}

// launch ships one fused bucket: the pack copy is charged to the rank;
// under a compression codec the bucket is then quantized in place at
// source (one charged encode pass, with error feedback against this
// rank's slot residual); and the bucket's collective starts on its own
// plane, chained after the previous bucket (one serialized comm stream
// per rank). In synchronous mode the rank blocks until the bucket
// completes.
func (e *Engine) launch(p *comm.Proc, g *fusion.Group) {
	p.ComputeMemCopy(g.Bytes())
	var st *compress.Stream
	if e.codec != nil {
		st = e.stream(len(e.pending))
		st.Begin()
		st.Quantize(g.Data)
		p.ComputeMemCopy(g.Bytes())
	}
	var after *comm.Handle
	if n := len(e.pending); n > 0 {
		after = e.pending[n-1].h
	}
	plane := len(e.pending) + 1
	h := p.Launch(plane, after, func(ap *comm.Proc) {
		e.reduceBucket(ap, g, st)
	})
	e.pending = append(e.pending, pendingOp{h: h, g: g, st: st})
	if !e.opt.Overlap {
		h.Wait(p)
	}
}

// stream returns this rank's compression state for bucket slot i,
// creating it on first use. The engine's join-before-next-step ordering
// guarantees a slot's previous collective finished before the slot is
// reused, so the stream hand-off between the rank goroutine and its
// async op is race-free.
func (e *Engine) stream(i int) *compress.Stream {
	for len(e.streams) <= i {
		e.streams = append(e.streams, compress.NewStream(e.codec))
	}
	return e.streams[i]
}

// reduceBucket dispatches the bucket's collective; the Compressed*
// entry points delegate to the plain variants when st is nil, so one
// switch serves both modes.
func (e *Engine) reduceBucket(ap *comm.Proc, g *fusion.Group, st *compress.Stream) {
	switch e.opt.Algo {
	case AlgoRVH:
		collective.CompressedAdasumRVH(ap, e.opt.Group, g.Data, g.Layout, st)
	case AlgoRingSum:
		collective.CompressedRingAllreduceMean(ap, e.opt.Group, g.Data, st)
	default:
		collective.CompressedTreeAdasum(ap, e.opt.Group, g.Data, g.Layout, st)
	}
}
