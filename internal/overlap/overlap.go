// Package overlap is the asynchronous bucketed-reduction engine: the
// execution model of §4.4.3 in which tensor fusion and communication/
// compute overlap turn a training step from "backprop, then one
// monolithic allreduce" into a pipeline. As simulated backprop walks the
// layers in reverse, each layer's gradient is declared ready and packed
// into a fusion bucket; when a bucket reaches the threshold it is
// launched as an asynchronous collective (comm.Handle) that runs on its
// own channel plane while earlier layers' backward compute continues.
// Buckets chain on a per-rank serialized communication stream (the way
// Horovod's background thread issues fusion buffers in order), and the
// join at the end of the step folds each bucket's arrival into the
// rank's clock with max(compute, arrival) — so the simulated step time
// is the critical path of the compute/communication pipeline, not the
// sum of its parts.
//
// The engine runs the same buckets through the same collectives whether
// Overlap is on or off; the synchronous mode simply blocks at each
// launch. The two modes therefore produce bitwise-identical results —
// the property the trainer's A/B tests pin down — and differ only in
// virtual time. With collective.StrategyTree the result is additionally
// bitwise-equal to the host-side adasum.Reducer tree reduction, so the
// whole bucketed substrate can be verified against the monolithic path
// at zero tolerance.
package overlap

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/fusion"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Options configures an Engine.
type Options struct {
	// Group is the set of world ranks reducing together.
	Group collective.Group
	// Layout is the per-layer segmentation of the gradient vector; the
	// backward walk declares layers ready in reverse layout order.
	Layout tensor.Layout
	// FusionBytes is the bucket threshold (<= 0 selects 2 MB, Horovod's
	// default fusion buffer).
	FusionBytes int
	// Strategy selects the per-bucket collective on the unified
	// collective.Strategy axis: StrategyTree (default) and StrategyRVH
	// run the Adasum combine (host-tree parity and Algorithm 1
	// respectively); StrategyRing runs the synchronous-SGD mean on the
	// bandwidth-optimal ring. StrategyAuto resolves to the parity tree —
	// the deterministic default the A/B harness verifies against.
	Strategy collective.Strategy
	// Overlap launches buckets asynchronously against the remaining
	// backward compute; when false every bucket blocks at launch (the
	// bulk-synchronous A/B baseline with identical arithmetic).
	Overlap bool
	// StepSeconds is the simulated backward-compute time of one step,
	// apportioned to layers proportionally to their parameter counts and
	// charged as the reverse walk passes them. Zero means compute-free
	// (pure communication measurement).
	StepSeconds float64
	// PreSeconds is extra compute charged before the backward walk —
	// the forward pass, or the earlier local steps of an accumulated
	// (LocalSteps > 1) reduction whose backprop cannot overlap with this
	// step's communication.
	PreSeconds float64
	// Compression is the unified compression knob, applied at bucket
	// granularity. A compress.Codec fixes one wire format: each fused
	// bucket is quantized once at launch (error-feedback codecs carry
	// the dropped remainder to the next step, per rank and per bucket
	// slot), and the bucket's collective encodes every hop's payload so
	// transfer costs, pool traffic and the wire-byte meter see
	// compressed sizes. A compress.Policy instead picks the codec per
	// bucket launch from the slot's telemetry (last charged transfer,
	// modeled encode cost, EF residual vs. gradient norm); decisions are
	// recorded in the bucket program at launch, so synchronous and
	// overlapped runs stay bitwise-equal. Encode and decode passes are
	// charged through the cost model's MemCopy. nil or compress.None()
	// leaves the engine bitwise- and clock-identical to the uncompressed
	// substrate.
	Compression compress.Compression
	// Hierarchy, when non-empty, runs each bucket's reduction through
	// collective.NewHierarchy(slotComm, Hierarchy...) instead of a flat
	// collective: reduce-scatter (sum) within each width-sized domain,
	// the configured combine across the outermost level, allgathers
	// unwinding. The product of widths must divide the group size. After
	// an elastic Rebind that breaks divisibility the engine falls back
	// to the flat collective (see Rebind).
	Hierarchy []int
	// Faults injects the straggler model: each rank's per-step backward
	// compute (StepSeconds, PreSeconds) is scaled by
	// Faults.ComputeScale(rank, step) — per-rank skew plus deterministic
	// jitter. nil leaves compute nominal. Hard failures ride the comm
	// layer (simnet.Faults.FailAtSeconds), not the engine.
	Faults *simnet.Faults
}

// strategy resolves the configured per-bucket algorithm.
func (o Options) strategy() collective.Strategy {
	if o.Strategy == collective.StrategyAuto {
		return collective.StrategyTree
	}
	return o.Strategy
}

// Engine is one rank's bucket scheduler. It owns the per-rank packer,
// handle list, layer-time table and per-bucket-slot communicators, all
// reused across steps; every rank of the group must drive its own
// Engine with the same Options so the bucket sequence (and the plane
// numbering derived from it) agrees everywhere. An Engine is not safe
// for concurrent use.
//
// The communicator prototype is bound lazily on the first Step and
// stays bound until Rebind replaces it — the rebinding an elastic
// trainer performs after a failure shrinks the group (previously the
// first Proc's binding was silently permanent).
type Engine struct {
	opt Options
	// strategy is the effective per-bucket algorithm for the current
	// group — opt.Strategy resolved at New, possibly downgraded by
	// Rebind (RVH needs a power-of-two group; a shrink rarely leaves
	// one).
	strategy collective.Strategy
	// hier is the active hierarchy widths (nil = flat), dropped by
	// Rebind when the widths stop dividing the group size.
	hier     []int
	packer   *fusion.Packer
	layerSec []float64   // backward seconds per layer
	slices   [][]float32 // per-step layer views of x, for unfusing
	pending  []pendingOp
	// proto is the communicator prototype bound on first Step; slots
	// holds the per-bucket-slot state, indexed by launch order within a
	// step. Bucket sequences repeat across steps, so slot i's
	// communicator (and therefore its error-feedback residual stream)
	// always belongs to the same semantic bucket.
	proto *collective.Communicator
	slots []*slotState
	// savedRes carries per-slot stream residuals across a Rebind or in
	// from a checkpoint, applied as slots (re)create their streams:
	// savedRes[slot][0] is the slot's source stream, the rest the
	// hierarchy level streams in Hierarchy.Streams order.
	savedRes [][][][]float32
	// savedPol likewise carries per-slot policy state (telemetry memory
	// plus the policy's Snapshot) across a Rebind or in from a
	// checkpoint; see SnapshotPolicies for the layout.
	savedPol [][]float64
	// stepIdx counts Steps driven through this engine — the step axis of
	// the deterministic straggler jitter.
	stepIdx int
}

// slotState is one bucket slot: its forked communicator, its cached
// hierarchy (hierarchical mode), and its reusable async-op state. The
// struct is heap-allocated per slot so the async op can fill fields
// through a stable pointer while the rank goroutine appends more slots.
//
// Everything here is allocated once per slot lifetime: the Handle is
// relaunched every step (comm.Handle is reusable), body is a single
// closure reading the current bucket through sl.g, and the OnProc
// rebinding of the communicator (and hierarchy) is cached against the
// Handle's op endpoint — which is a stable pointer — so a steady-state
// Step allocates nothing. The hand-offs through sl.g and the caches are
// race-free because the engine joins a slot's op before reusing the
// slot, and Handle completion/relaunch is a synchronizing edge.
type slotState struct {
	idx  int
	c    *collective.Communicator
	hier *collective.Hierarchy

	// lastNetSec/lastNetBytes are the network seconds and payload bytes
	// charged to the slot's previous collective op — the bandwidth
	// signal an adaptive policy decides from. Recorded only in the
	// end-of-step join loop (the same program point in synchronous and
	// overlapped modes), so decisions at step s use step s−1's
	// measurement identically in both modes.
	lastNetSec   float64
	lastNetBytes int64

	h    *comm.Handle
	body func(ap *comm.Proc)
	g    *fusion.Group // bucket the in-flight (or next) op reduces

	// boundAp keys the cached endpoint rebindings below.
	boundAp *comm.Proc
	cOn     *collective.Communicator
	hierOn  *collective.Hierarchy
}

type pendingOp struct {
	h  *comm.Handle
	g  *fusion.Group
	sl *slotState
}

// New builds an Engine for one rank.
func New(opt Options) *Engine {
	if len(opt.Group) == 0 {
		panic("overlap: Options.Group is required")
	}
	if opt.Layout.NumLayers() == 0 {
		panic("overlap: Options.Layout is required")
	}
	if opt.FusionBytes <= 0 {
		opt.FusionBytes = 2 << 20
	}
	// rvhSize is the size of the group an RVH strategy actually runs on:
	// the cross level when buckets reduce hierarchically (the scatter
	// levels are rings, any size), the whole group when flat.
	rvhSize := len(opt.Group)
	if len(opt.Hierarchy) > 0 {
		stride := 1
		for _, w := range opt.Hierarchy {
			if w <= 0 {
				panic("overlap: Options.Hierarchy widths must be positive")
			}
			stride *= w
		}
		if len(opt.Group)%stride != 0 {
			panic(fmt.Sprintf("overlap: group size %d not divisible by hierarchy widths %v", len(opt.Group), opt.Hierarchy))
		}
		rvhSize = len(opt.Group) / stride
	}
	switch opt.strategy() {
	case collective.StrategyTree, collective.StrategyRing:
	case collective.StrategyRVH:
		if rvhSize&(rvhSize-1) != 0 {
			panic(fmt.Sprintf("overlap: StrategyRVH requires a power-of-two reduction group (got %d)", rvhSize))
		}
	default:
		panic(fmt.Sprintf("overlap: per-bucket collectives take StrategyTree, StrategyRVH or StrategyRing (got %v)", opt.Strategy))
	}
	total := opt.Layout.TotalSize()
	layerSec := make([]float64, opt.Layout.NumLayers())
	if total > 0 && opt.StepSeconds > 0 {
		for l := range layerSec {
			layerSec[l] = opt.StepSeconds * float64(opt.Layout.Size(l)) / float64(total)
		}
	}
	// Normalize the knob (also rejects foreign Compression types early):
	// "no compression" collapses to nil so the plain paths key off it.
	if cdc, pol := compress.Resolve(opt.Compression); cdc == nil && pol == nil {
		opt.Compression = nil
	}
	return &Engine{
		opt:      opt,
		strategy: opt.strategy(),
		hier:     opt.Hierarchy,
		packer:   fusion.NewPacker(opt.FusionBytes),
		layerSec: layerSec,
		slices:   make([][]float32, opt.Layout.NumLayers()),
	}
}

// Group returns the group the engine currently reduces over.
func (e *Engine) Group() collective.Group { return e.opt.Group }

// Strategy returns the effective per-bucket algorithm for the current
// group (Rebind may have downgraded an RVH configuration).
func (e *Engine) Strategy() collective.Strategy { return e.strategy }

// Hierarchical reports whether buckets currently reduce hierarchically.
func (e *Engine) Hierarchical() bool { return len(e.hier) > 0 }

// Rebind replaces the engine's group — the survivor set after an
// elastic reshape — making the previously implicit lifetime of the
// cached communicator prototype explicit: the prototype and every slot
// communicator are dropped and rebuilt over the new group on the next
// Step. Per-slot error-feedback residuals survive the rebuild (the
// bucket program is unchanged, so site shapes still match). Algorithm
// fallbacks mirror the construction-time rules: an RVH engine falls
// back to the parity tree when the new group is not a power of two, and
// the hierarchy is dropped when its widths no longer divide the group
// size (or its cross level would break RVH's power-of-two requirement).
func (e *Engine) Rebind(g collective.Group) {
	if len(g) == 0 {
		panic("overlap: Rebind requires a non-empty group")
	}
	// Hop residuals are shaped by the old group's exchange pattern and
	// cannot be replayed onto the new one; the source-quantization
	// residual (the fused bucket itself) carries over. Policy decision
	// state is group-independent and carries over whole — the stale
	// last-transfer measurement only scales the next prediction, whose
	// rung ordering depends on wire-word ratios, not absolute seconds.
	e.savedRes = TruncateResidualsToSource(e.SnapshotStreams())
	e.savedPol = e.SnapshotPolicies()
	ng := make(collective.Group, len(g))
	copy(ng, g)
	e.opt.Group = ng
	e.proto = nil
	e.slots = nil
	e.strategy = e.opt.strategy()
	// The hierarchy survives iff its widths still divide the group; then
	// RVH's power-of-two requirement applies to the group it actually
	// runs on — the cross level if hierarchical, the whole group if flat
	// — mirroring the construction-time rules.
	e.hier = e.opt.Hierarchy
	rvhSize := len(ng)
	if len(e.hier) > 0 {
		stride := 1
		for _, w := range e.hier {
			stride *= w
		}
		if len(ng)%stride != 0 {
			e.hier = nil
		} else {
			rvhSize = len(ng) / stride
		}
	}
	if e.strategy == collective.StrategyRVH && rvhSize&(rvhSize-1) != 0 {
		e.strategy = collective.StrategyTree
	}
}

// Step runs one reduction step for this rank: simulated backprop
// declares the layers of x ready in reverse order, buckets launch as
// collectives on the group, and on return x holds the group-combined
// gradient on every rank. p's clock advances to the step's completion
// time (compute chained with per-bucket arrivals); the caller reads
// p.Clock() — or comm.MaxClock across ranks — for the simulated step
// latency.
//
//adasum:noalloc
func (e *Engine) Step(p *comm.Proc, x []float32) {
	layout := e.opt.Layout
	if layout.TotalSize() != len(x) {
		panic(fmt.Sprintf("overlap: x has %d elements, layout covers %d", len(x), layout.TotalSize()))
	}
	if e.proto == nil {
		//adasum:alloc ok the prototype communicator mints once, on the first step
		e.proto = collective.New(p, e.opt.Group, collective.Config{
			Strategy:    e.strategy,
			Compression: e.opt.Compression,
		})
	}
	// A panic mid-step (an injected failure, a peer's death) must not
	// leave launched bucket ops running: their goroutines would outlive
	// this rank's Run slot and could observe the World mid-Reset during
	// an elastic rebuild. Draining is deadlock-free — every launched op
	// is eventually unblocked by completion or by a dead peer's latch.
	defer func() { //adasum:alloc ok open-coded defer: closure and record stay on the stack (0 allocs/op bench-pinned)
		if rec := recover(); rec != nil {
			for _, op := range e.pending {
				op.h.Drain()
			}
			panic(rec)
		}
	}()
	// The straggler model scales this rank's whole-step compute: skew is
	// a property of the rank, jitter of the (rank, step) pair.
	scale := e.opt.Faults.ComputeScale(p.Rank(), e.stepIdx)
	e.stepIdx++
	p.Compute(e.opt.PreSeconds * scale)
	e.packer.Reset()
	e.pending = e.pending[:0]
	for l := 0; l < layout.NumLayers(); l++ {
		e.slices[l] = layout.Slice(x, l)
	}
	// Backward walk: the last layer's gradient materializes first.
	for l := layout.NumLayers() - 1; l >= 0; l-- {
		p.Compute(e.layerSec[l] * scale)
		//adasum:alloc ok packer skeletons amortize: stable bucket shapes reuse cached Groups (0 allocs/op bench-pinned)
		if g := e.packer.Ready(l, layout.Name(l), e.slices[l]); g != nil {
			e.launch(p, g)
		}
	}
	//adasum:alloc ok packer skeletons amortize: stable bucket shapes reuse cached Groups (0 allocs/op bench-pinned)
	if g := e.packer.Flush(); g != nil {
		e.launch(p, g)
	}
	// Join: drain buckets in launch order, unfusing each reduced buffer
	// back into its layers' home slices. Compressed buckets pay one more
	// MemCopy for the decode that materializes the dense result. Adaptive
	// slots record the op's charged network seconds and bytes here —
	// after the join, at the same program point in synchronous and
	// overlapped modes — as the telemetry the next launch decides from.
	for _, op := range e.pending {
		op.h.Wait(p)
		if op.sl.c.Stream() != nil {
			if op.sl.c.Policy() != nil {
				op.sl.lastNetSec, op.sl.lastNetBytes = op.h.NetCharges()
			}
			p.ComputeMemCopy(op.g.Bytes())
		}
		p.ComputeMemCopy(op.g.Bytes())
		op.g.Unfuse(e.slices)
	}
}

// launch ships one fused bucket: the pack copy is charged to the rank;
// under compression the bucket is then quantized in place at source
// (one charged encode pass, with error feedback against this rank's
// slot residual); and the bucket's collective starts on its own plane,
// chained after the previous bucket (one serialized comm stream per
// rank). Under an adaptive policy the slot's codec is decided here,
// before the quantize, from rank-private telemetry — every input is a
// deterministic function of the simulated program, so the decision
// replays bitwise under any GOMAXPROCS, identically in synchronous and
// overlapped modes, and across a checkpoint resume. In synchronous mode
// the rank blocks until the bucket completes.
//
//adasum:noalloc
func (e *Engine) launch(p *comm.Proc, g *fusion.Group) {
	p.ComputeMemCopy(g.Bytes())
	//adasum:alloc ok slots mint on first use and are reused for the rank's lifetime
	sl := e.slot(p, len(e.pending))
	if pol := sl.c.Policy(); pol != nil {
		st := sl.c.Stream()
		var encSec float64
		if m := p.Model(); m != nil {
			encSec = m.MemCopy(g.Bytes())
		}
		//adasum:dyncall ok Decide implementations (adaptive ladder, static tables) are arithmetic over the value-typed Telemetry; the rung cache keeps them allocation-free
		st.SetCodec(pol.Decide(compress.Telemetry{
			Slot:        sl.idx,
			Step:        e.stepIdx - 1,
			Elems:       len(g.Data),
			Bytes:       g.Bytes(),
			TransferSec: sl.lastNetSec,
			WireBytes:   sl.lastNetBytes,
			EncodeSec:   encSec,
			GradL2:      tensor.Norm(g.Data),
			ResidualL2:  st.SourceResidualL2(),
		}))
	}
	if st := sl.c.Stream(); st != nil {
		st.Begin()
		st.Quantize(g.Data)
		p.ComputeMemCopy(g.Bytes())
	}
	var after *comm.Handle
	if n := len(e.pending); n > 0 {
		after = e.pending[n-1].h
	}
	plane := len(e.pending) + 1
	sl.g = g
	sl.h.Start(p, plane, after, sl.body)
	e.pending = append(e.pending, pendingOp{h: sl.h, g: g, sl: sl}) //adasum:alloc ok pending is per-step scratch reset to [:0]; grows only to the bucket count
	if !e.opt.Overlap {
		sl.h.Wait(p)
	}
}

// slot returns this rank's state for bucket slot i, creating it on
// first use: the communicator is a Fork of the prototype so each slot
// owns its own error-feedback stream, seeded from savedRes when a
// Rebind or checkpoint restore left residuals to carry over. The
// engine's join-before-next-step ordering guarantees a slot's previous
// collective finished before the slot is reused, so the hand-off
// between the rank goroutine and its async op is race-free.
func (e *Engine) slot(p *comm.Proc, i int) *slotState {
	for len(e.slots) <= i {
		sl := &slotState{idx: len(e.slots), c: e.proto.Fork(), h: p.NewHandle()}
		sl.body = func(ap *comm.Proc) { e.reduceBucket(sl, ap, sl.g) }
		if st := sl.c.Stream(); st != nil {
			if res := e.savedStream(sl.idx, 0); res != nil {
				st.Restore(res)
			}
		}
		if sl.c.Policy() != nil && sl.idx < len(e.savedPol) {
			restoreSlotPolicy(sl, e.savedPol[sl.idx])
		}
		e.slots = append(e.slots, sl)
	}
	return e.slots[i]
}

// savedStream returns the pending residual snapshot of (slot, stream)
// or nil; stream 0 is the slot's source stream, 1.. the hierarchy
// levels.
func (e *Engine) savedStream(slot, stream int) [][]float32 {
	if slot >= len(e.savedRes) || stream >= len(e.savedRes[slot]) {
		return nil
	}
	return e.savedRes[slot][stream]
}

// reduceBucket dispatches the bucket's collective on the communicator
// bound to the async op's endpoint: StrategyRing buckets run the
// synchronous-SGD mean, everything else the Adasum combine under the
// communicator's own strategy — hierarchically when a Hierarchy is
// active. The slot's hierarchy is built on first use (its Split
// exchanges ride the slot's own plane, so every rank constructs it at
// the same program point) and rebound to each step's op endpoint
// afterwards, keeping the level streams' residuals with the slot.
//
//adasum:noalloc
func (e *Engine) reduceBucket(sl *slotState, ap *comm.Proc, g *fusion.Group) {
	c := sl.cOn
	if c == nil || sl.boundAp != ap {
		//adasum:alloc ok rebind materializes only when the op endpoint changes; steady state hits the cOn cache
		c = sl.c.OnProc(ap)
		sl.cOn, sl.boundAp = c, ap
		sl.hierOn = nil
	}
	if len(e.hier) > 0 && c.Size() > 1 {
		h := sl.hierOn
		if h == nil {
			if sl.hier == nil {
				//adasum:alloc ok the slot's hierarchy builds once, on its first op
				sl.hier = collective.NewHierarchy(c, e.hier...)
				//adasum:alloc ok the stream walk runs only inside the first-use build above
				for li, st := range sl.hier.Streams() {
					if st == nil {
						continue
					}
					if res := e.savedStream(sl.idx, li+1); res != nil {
						st.Restore(res)
					}
				}
				h = sl.hier
			} else {
				//adasum:alloc ok rebind materializes only when the op endpoint changes; steady state hits the hierOn cache
				h = sl.hier.OnProc(ap)
			}
			sl.hierOn = h
		}
		if sl.c.Policy() != nil {
			// The launch-time decision covers the whole bucket program:
			// every hierarchy level encodes under the source stream's
			// codec. Setting it here — inside the op, after the lazy
			// hierarchy build — makes a resumed engine (whose hierarchy
			// is rebuilt on the first post-restore op) encode exactly as
			// the uninterrupted run did. Safe: the level streams are only
			// touched by this slot's op, and join-before-relaunch orders
			// successive ops.
			sl.hier.SetCodec(sl.c.Stream().Codec())
		}
		if c.Strategy() == collective.StrategyRing {
			h.AllreduceMean(g.Data)
			return
		}
		h.Adasum(g.Data, g.Layout)
		return
	}
	if c.Strategy() == collective.StrategyRing {
		c.AllreduceMean(g.Data)
		return
	}
	c.Adasum(g.Data, g.Layout)
}

// SnapshotStreams returns a deep copy of every error-feedback residual
// the engine carries, in deterministic (slot, stream) order — stream 0
// is the slot's source-quantization stream, streams 1.. the hierarchy
// levels. nil when the engine runs uncompressed. This is the state a
// checkpoint must include for a bitwise resume under error-feedback
// codecs.
func (e *Engine) SnapshotStreams() [][][][]float32 {
	if e.opt.Compression == nil {
		return nil
	}
	if len(e.slots) == 0 {
		// Nothing materialized yet: whatever was restored is still
		// pending verbatim — deep-copied, like every other path, so the
		// caller's snapshot never aliases engine-internal state.
		return copyResiduals(e.savedRes)
	}
	out := make([][][][]float32, len(e.slots))
	for i, sl := range e.slots {
		var streams [][][]float32
		if st := sl.c.Stream(); st != nil {
			streams = append(streams, st.Snapshot())
		}
		if sl.hier != nil {
			for _, st := range sl.hier.Streams() {
				if st != nil {
					streams = append(streams, st.Snapshot())
				}
			}
		}
		out[i] = streams
	}
	return out
}

// RestoreStreams re-applies residuals captured by SnapshotStreams:
// already-materialized slots (and hierarchies) are rewritten in place —
// the rollback an elastic retry performs after an aborted attempt
// contaminated the streams — and slots not yet created pick their
// entries up lazily (the checkpoint-restore path on a fresh or rebound
// engine). A nil entry restores the stream to "no residuals yet".
func (e *Engine) RestoreStreams(res [][][][]float32) {
	e.savedRes = res
	for i, sl := range e.slots {
		if st := sl.c.Stream(); st != nil {
			st.Restore(e.savedStream(i, 0))
		}
		if sl.hier != nil {
			for li, st := range sl.hier.Streams() {
				if st != nil {
					st.Restore(e.savedStream(i, li+1))
				}
			}
		}
	}
}

// SeekStep sets the engine's step counter — the step axis of the
// deterministic straggler jitter — so a checkpoint resume continues the
// same per-step jitter sequence an uninterrupted run would have seen.
func (e *Engine) SeekStep(step int) { e.stepIdx = step }

// SnapshotPolicies returns the adaptive-compression decision state of
// every bucket slot, in slot order: indices 0 and 1 are the slot's
// telemetry memory (last charged network seconds and bytes), the rest
// the policy's own Snapshot. nil when the engine does not run an
// adaptive policy. This state must ride checkpoints alongside the
// error-feedback residuals for a resumed run to re-decide — and
// therefore re-encode — bitwise-identically.
func (e *Engine) SnapshotPolicies() [][]float64 {
	if _, pol := compress.Resolve(e.opt.Compression); pol == nil {
		return nil
	}
	if len(e.slots) == 0 {
		return copyPolicies(e.savedPol)
	}
	out := make([][]float64, len(e.slots))
	for i, sl := range e.slots {
		out[i] = append([]float64{sl.lastNetSec, float64(sl.lastNetBytes)},
			sl.c.Policy().Snapshot()...)
	}
	return out
}

// RestorePolicies re-applies decision state captured by
// SnapshotPolicies: materialized slots are rewritten in place (the
// rollback an elastic retry performs after an aborted attempt advanced
// the policies), slots not yet created pick their entries up lazily
// (the checkpoint-restore path on a fresh or rebound engine). A nil
// entry — or a nil capture — resets to fresh decision state.
func (e *Engine) RestorePolicies(pol [][]float64) {
	e.savedPol = pol
	for i, sl := range e.slots {
		if sl.c.Policy() == nil {
			continue
		}
		if i < len(pol) {
			restoreSlotPolicy(sl, pol[i])
		} else {
			restoreSlotPolicy(sl, nil)
		}
	}
}

// restoreSlotPolicy applies one SnapshotPolicies entry to a slot.
func restoreSlotPolicy(sl *slotState, s []float64) {
	if s == nil {
		sl.lastNetSec, sl.lastNetBytes = 0, 0
		sl.c.Policy().Restore(nil)
		return
	}
	if len(s) < 2 {
		panic(fmt.Sprintf("overlap: slot policy state has %d values, want >= 2", len(s)))
	}
	sl.lastNetSec = s[0]
	sl.lastNetBytes = int64(s[1])
	if len(s) == 2 {
		sl.c.Policy().Restore(nil)
		return
	}
	sl.c.Policy().Restore(append([]float64(nil), s[2:]...))
}

// copyPolicies deep-copies a SnapshotPolicies-shaped capture.
func copyPolicies(pol [][]float64) [][]float64 {
	if pol == nil {
		return nil
	}
	out := make([][]float64, len(pol))
	for i, s := range pol {
		if s != nil {
			out[i] = append([]float64(nil), s...)
		}
	}
	return out
}

// copyResiduals deep-copies a SnapshotStreams-shaped capture.
func copyResiduals(res [][][][]float32) [][][][]float32 {
	if res == nil {
		return nil
	}
	out := make([][][][]float32, len(res))
	for i, slot := range res {
		if slot == nil {
			continue
		}
		out[i] = make([][][]float32, len(slot))
		for j, stream := range slot {
			if stream == nil {
				continue
			}
			out[i][j] = make([][]float32, len(stream))
			for k, site := range stream {
				if site == nil {
					continue
				}
				out[i][j][k] = append([]float32(nil), site...)
			}
		}
	}
	return out
}

// TruncateResidualsToSource reduces a SnapshotStreams capture to the
// residuals that survive a group reshape: for every slot, only site 0
// of stream 0 — the source-quantization residual, whose shape is the
// fused bucket and therefore group-independent. Every per-hop residual
// is shaped by the old group's exchange pattern (window and shard
// lengths change with the member count) and would panic the stream's
// site-length check if replayed onto the new group. nil passes through.
func TruncateResidualsToSource(res [][][][]float32) [][][][]float32 {
	if res == nil {
		return nil
	}
	out := make([][][][]float32, len(res))
	for i, slot := range res {
		if len(slot) == 0 || len(slot[0]) == 0 {
			continue
		}
		out[i] = [][][]float32{{slot[0][0]}}
	}
	return out
}
