package overlap

import (
	"math"
	"testing"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// runStepWire is runStep also returning the World's wire-byte meter.
func runStepWire(ranks int, model *simnet.Model, opt Options, grads [][]float32) (results [][]float32, sec float64, wire int64, clocks []float64) {
	w := comm.NewWorld(ranks, model)
	engines := make([]*Engine, ranks)
	for r := range engines {
		engines[r] = New(opt)
	}
	results = make([][]float32, ranks)
	clocks = make([]float64, ranks)
	sec = comm.MaxClock(w, func(p *comm.Proc) {
		x := tensor.Clone(grads[p.Rank()])
		engines[p.Rank()].Step(p, x)
		results[p.Rank()] = x
		clocks[p.Rank()] = p.Clock()
	})
	return results, sec, w.WireBytes(), clocks
}

// TestCompressionNoneBitwiseAndClockIdentical is the engine-level A/B
// pin: Compression = None (or nil) must leave the engine bitwise- AND
// virtual-clock-identical to the pre-codec code paths, for every
// algorithm in both sync and overlap modes.
func TestCompressionNoneBitwiseAndClockIdentical(t *testing.T) {
	const ranks = 8
	layout := testLayout()
	grads := randGrads(ranks, layout, 77)
	model := simnet.TCP40(ranks)
	for _, strat := range []collective.Strategy{collective.StrategyTree, collective.StrategyRVH, collective.StrategyRing} {
		for _, overlapOn := range []bool{false, true} {
			base := Options{
				Group: collective.WorldGroup(ranks), Layout: layout,
				FusionBytes: 4096, Strategy: strat, Overlap: overlapOn,
				StepSeconds: 1e-3,
			}
			withNone := base
			withNone.Compression = compress.None()
			want, wantSec, wantWire, wantClocks := runStepWire(ranks, model, base, grads)
			got, gotSec, gotWire, gotClocks := runStepWire(ranks, model, withNone, grads)
			for r := range got {
				if !tensor.Equal(got[r], want[r], 0) {
					t.Fatalf("%v overlap=%v: rank %d result differs under Compression=None", strat, overlapOn, r)
				}
				if gotClocks[r] != wantClocks[r] {
					t.Fatalf("%v overlap=%v: rank %d clock %v != %v under Compression=None",
						strat, overlapOn, r, gotClocks[r], wantClocks[r])
				}
			}
			if gotSec != wantSec || gotWire != wantWire {
				t.Fatalf("%v overlap=%v: step sec/wire (%v, %d) != (%v, %d) under Compression=None",
					strat, overlapOn, gotSec, gotWire, wantSec, wantWire)
			}
		}
	}
}

// TestCompressedOverlapBitwiseEqualsSync extends the central overlap
// property to lossy codecs: sync and overlapped runs execute the same
// deterministic per-bucket programs (and the same error-feedback site
// sequences), so their results stay bitwise-identical even though each
// is lossy with respect to the uncompressed combine.
func TestCompressedOverlapBitwiseEqualsSync(t *testing.T) {
	const ranks = 4
	layout := testLayout()
	grads := randGrads(ranks, layout, 5)
	for _, codec := range []compress.Codec{compress.FP16(), compress.Int8(0), compress.TopK(0.1, true)} {
		for _, strat := range []collective.Strategy{collective.StrategyTree, collective.StrategyRVH, collective.StrategyRing} {
			mk := func(overlapOn bool) Options {
				return Options{
					Group: collective.WorldGroup(ranks), Layout: layout,
					FusionBytes: 4096, Strategy: strat, Overlap: overlapOn,
					StepSeconds: 1e-3, Compression: codec,
				}
			}
			syncRes, _, _, _ := runStepWire(ranks, simnet.TCP40(ranks), mk(false), grads)
			overRes, _, _, _ := runStepWire(ranks, simnet.TCP40(ranks), mk(true), grads)
			for r := range syncRes {
				if !tensor.Equal(syncRes[r], overRes[r], 0) {
					t.Fatalf("%s %v: rank %d sync/overlap results differ", codec, strat, r)
				}
			}
		}
	}
}

// TestCompressedStepCutsWireAndTime: under every lossy codec the engine
// moves at least 40% fewer charged wire bytes than the uncompressed
// step, and on the communication-bound TCP cluster that shows up as a
// faster simulated step.
func TestCompressedStepCutsWireAndTime(t *testing.T) {
	const ranks = 8
	layout := testLayout()
	grads := randGrads(ranks, layout, 23)
	base := Options{
		Group: collective.WorldGroup(ranks), Layout: layout,
		FusionBytes: 4096, Strategy: collective.StrategyRVH, Overlap: true,
	}
	_, baseSec, baseWire, _ := runStepWire(ranks, simnet.TCP40(ranks), base, grads)
	for _, codec := range []compress.Codec{compress.FP16(), compress.Int8(0), compress.TopK(0.05, true)} {
		opt := base
		opt.Compression = codec
		_, sec, wire, _ := runStepWire(ranks, simnet.TCP40(ranks), opt, grads)
		if float64(wire) > 0.6*float64(baseWire) {
			t.Fatalf("%s: wire bytes %d vs uncompressed %d — less than 40%% saved", codec, wire, baseWire)
		}
		if sec >= baseSec {
			t.Fatalf("%s: compressed step %v not faster than uncompressed %v", codec, sec, baseSec)
		}
	}
}

// TestCompressedStepAccuracy: a single fp16-compressed engine step stays
// within half-precision tolerance of the exact bucketed combine.
func TestCompressedStepAccuracy(t *testing.T) {
	const ranks = 4
	layout := testLayout()
	grads := randGrads(ranks, layout, 31)
	base := Options{
		Group: collective.WorldGroup(ranks), Layout: layout,
		FusionBytes: 4096, Strategy: collective.StrategyTree, Overlap: true,
	}
	exact, _, _, _ := runStepWire(ranks, nil, base, grads)
	opt := base
	opt.Compression = compress.FP16()
	got, _, _, _ := runStepWire(ranks, nil, opt, grads)
	for r := range got {
		for i := range got[r] {
			if err := math.Abs(float64(got[r][i] - exact[r][i])); err > 2e-2 {
				t.Fatalf("rank %d element %d: fp16 engine %v vs exact %v", r, i, got[r][i], exact[r][i])
			}
		}
	}
}
