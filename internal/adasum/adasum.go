// Package adasum implements the paper's primary contribution: the
// adaptive-sum gradient combiner
//
//	Adasum(g1, g2) = (1 - g1·g2 / (2‖g1‖²))·g1 + (1 - g1·g2 / (2‖g2‖²))·g2
//
// together with its per-layer application (§3.6), host-side recursive tree
// reduction over any number of gradients (§3.4), the orthogonality metric
// used in Figure 1, and an fp16 path whose dot products accumulate in
// float64 (§4.4.1).
//
// Properties (verified by the test suite):
//   - orthogonal gradients are summed: Adasum(a, b) = a + b when a·b = 0;
//   - parallel gradients are averaged: Adasum(g, g) = g;
//   - the operator is symmetric and has no hyperparameters.
//
// The pairwise combine runs on the fused single-pass reduction
// tensor.DotNorms (two memory traversals per combine instead of four,
// §4.4.2), and the host-side reductions are available through a Reducer
// that owns its workspace so steady-state training steps allocate
// nothing. See DESIGN.md for the kernel-fusion and workspace design.
package adasum

import (
	"repro/internal/float16"
	"repro/internal/tensor"
)

// Coefficients returns the two scalars (ca, cb) such that
// Adasum(a, b) = ca·a + cb·b, given dot = a·b, na = ‖a‖², nb = ‖b‖².
//
// Degenerate inputs are handled the way the Horovod implementation does:
// a zero-norm operand contributes nothing and must not poison the other
// side with a 0/0, so its partner's coefficient degrades to 1 (plain sum
// with a zero vector).
//
//adasum:noalloc
func Coefficients(dot, na, nb float64) (ca, cb float64) {
	ca, cb = 1, 1
	if na > 0 {
		ca = 1 - dot/(2*na)
	}
	if nb > 0 {
		cb = 1 - dot/(2*nb)
	}
	return ca, cb
}

// Combine writes Adasum(a, b) into dst, treating the full vectors as a
// single segment. dst may alias a or b. Dot products and norms accumulate
// in float64; the three reductions run as one fused pass
// (tensor.DotNorms) followed by the scaled combine — two memory
// traversals instead of the four of the naive formulation (§4.4.2).
//
//adasum:noalloc
func Combine(dst, a, b []float32) {
	CombineFused(dst, a, b)
}

// CombineFused is Combine exposing the fused reduction results: it writes
// Adasum(a, b) into dst and returns the pre-combine statistics a·b, ‖a‖²
// and ‖b‖² that determined the coefficients. Callers that need the stats
// anyway (orthogonality probes, logging, distributed partials) get them
// for free instead of re-reducing. dst may alias a or b.
//
//adasum:noalloc
func CombineFused(dst, a, b []float32) (dot, na, nb float64) {
	dot, na, nb = tensor.DotNorms(a, b)
	ca, cb := Coefficients(dot, na, nb)
	tensor.ScaledCombine(dst, float32(ca), a, float32(cb), b)
	return dot, na, nb
}

// CombineLayers writes the per-layer Adasum of a and b into dst: each
// segment of the layout is combined with its own dot product and norms.
// This is the per-layer mode of §3.6, which the paper found important
// because layers decorrelate at different rates during training. dst may
// alias a or b.
//
//adasum:noalloc
func CombineLayers(dst, a, b []float32, layout tensor.Layout) {
	if layout.TotalSize() != len(a) || len(a) != len(b) || len(dst) != len(a) {
		panic("adasum: CombineLayers size mismatch")
	}
	for i := 0; i < layout.NumLayers(); i++ {
		lo, hi := layout.Bounds(i)
		CombineFused(dst[lo:hi], a[lo:hi], b[lo:hi])
	}
}

// PartialDots holds the three per-segment partial reductions exchanged by
// the distributed algorithm (line 15 of Algorithm 1): a·b, ‖a‖², ‖b‖².
// In the distributed setting each rank holds only a slice of the logical
// vector, so these are summed across the rank group before the combine.
type PartialDots struct {
	Dot, NormA, NormB float64
}

// LayerDots computes per-layer partial dot products for the (local slices
// of) vectors a and b under layout. The result must be allreduced across
// the ranks sharing the logical vector before ApplyWithDots.
func LayerDots(a, b []float32, layout tensor.Layout) []PartialDots {
	if layout.TotalSize() != len(a) || len(a) != len(b) {
		panic("adasum: LayerDots size mismatch")
	}
	dots := make([]PartialDots, layout.NumLayers())
	for i := range dots {
		lo, hi := layout.Bounds(i)
		d, na, nb := tensor.DotNorms(a[lo:hi], b[lo:hi])
		dots[i] = PartialDots{Dot: d, NormA: na, NormB: nb}
	}
	return dots
}

// ApplyWithDots performs the per-layer combine of a and b into dst using
// externally reduced dot products (line 18 of Algorithm 1). This is the
// second phase of the two-phase distributed Adasum: dots were computed on
// slices and summed across the group, so each rank applies coefficients
// consistent with the full logical vectors.
func ApplyWithDots(dst, a, b []float32, layout tensor.Layout, dots []PartialDots) {
	if len(dots) != layout.NumLayers() {
		panic("adasum: ApplyWithDots dots/layout mismatch")
	}
	for i := range dots {
		lo, hi := layout.Bounds(i)
		ca, cb := Coefficients(dots[i].Dot, dots[i].NormA, dots[i].NormB)
		tensor.ScaledCombine(dst[lo:hi], float32(ca), a[lo:hi], float32(cb), b[lo:hi])
	}
}

// WindowDots writes the flattened per-layer partials [a·b, ‖a‖², ‖b‖²]
// for the window [off, off+len(a)) of the original vector into v, indexed
// by the global layer list of layout, so ranks holding different windows
// of the same logical vectors can sum their partials elementwise (line 15
// of Algorithm 1). Layers outside the window contribute zeros. Each
// layer's three reductions run as one fused pass; v must have length
// 3*layout.NumLayers() and nothing is allocated.
//
//adasum:noalloc
func WindowDots(v []float64, a, b []float32, off int, layout tensor.Layout) {
	if len(v) != 3*layout.NumLayers() {
		panic("adasum: WindowDots partial buffer has wrong length")
	}
	for i := range v {
		v[i] = 0
	}
	hi := off + len(a)
	for l := 0; l < layout.NumLayers(); l++ {
		llo, lhi := layout.Bounds(l)
		clo, chi := max(llo, off), min(lhi, hi)
		if clo >= chi {
			continue
		}
		as := a[clo-off : chi-off]
		bs := b[clo-off : chi-off]
		v[3*l], v[3*l+1], v[3*l+2] = tensor.DotNorms(as, bs)
	}
}

// CombineWindow writes the per-layer Adasum combine of a and b into dst
// using globally completed flattened dot products v (as produced by
// WindowDots and summed across the group), restricted to the window
// [off, off+len(a)) of the original vector (line 18 of Algorithm 1). dst
// may alias a or b.
//
//adasum:noalloc
func CombineWindow(dst, a, b []float32, off int, layout tensor.Layout, v []float64) {
	if len(v) != 3*layout.NumLayers() {
		panic("adasum: CombineWindow partial buffer has wrong length")
	}
	hi := off + len(a)
	for l := 0; l < layout.NumLayers(); l++ {
		llo, lhi := layout.Bounds(l)
		clo, chi := max(llo, off), min(lhi, hi)
		if clo >= chi {
			continue
		}
		ca, cb := Coefficients(v[3*l], v[3*l+1], v[3*l+2])
		tensor.ScaledCombine(dst[clo-off:chi-off], float32(ca), a[clo-off:chi-off], float32(cb), b[clo-off:chi-off])
	}
}

// FlattenDots serializes per-layer partials into a float64 triple-list
// [dot0, na0, nb0, dot1, ...] so they can travel through a generic
// small-vector allreduce.
func FlattenDots(dots []PartialDots) []float64 {
	out := make([]float64, 3*len(dots))
	for i, d := range dots {
		out[3*i] = d.Dot
		out[3*i+1] = d.NormA
		out[3*i+2] = d.NormB
	}
	return out
}

// UnflattenDots is the inverse of FlattenDots.
func UnflattenDots(flat []float64) []PartialDots {
	if len(flat)%3 != 0 {
		panic("adasum: UnflattenDots length not a multiple of 3")
	}
	dots := make([]PartialDots, len(flat)/3)
	for i := range dots {
		dots[i] = PartialDots{Dot: flat[3*i], NormA: flat[3*i+1], NormB: flat[3*i+2]}
	}
	return dots
}

// Reducer owns the scratch workspace of the host-side reductions so that
// repeated steps — the trainer loop calls one reduction per iteration —
// allocate nothing in steady state. The zero value is ready to use; the
// workspace grows on first use and is reused (and regrown when a call
// presents a larger layout) thereafter.
//
// A Reducer is not safe for concurrent use, and the slices returned by
// its non-Into methods are owned by the Reducer: they remain valid only
// until its next call.
type Reducer struct {
	bufs [][]float32 // owned level buffers for the tree recursion
	work [][]float32 // per-call pointer scratch over bufs
	out  []float32   // result buffer for the non-Into methods
}

// NewReducer returns an empty Reducer. Equivalent to new(Reducer); the
// workspace is lazily sized by the first reduction.
func NewReducer() *Reducer { return &Reducer{} }

// ensureBufs guarantees k owned buffers of length size each.
func (r *Reducer) ensureBufs(k, size int) {
	for len(r.bufs) < k {
		r.bufs = append(r.bufs, nil) //adasum:alloc ok workspace grows on first use (or a larger layout) and is reused
	}
	for i := 0; i < k; i++ {
		if cap(r.bufs[i]) < size {
			r.bufs[i] = make([]float32, size) //adasum:alloc ok workspace grows on first use (or a larger layout) and is reused
		} else {
			r.bufs[i] = r.bufs[i][:size]
		}
	}
}

// ensureOut guarantees the shared result buffer has length size.
func (r *Reducer) ensureOut(size int) []float32 {
	if cap(r.out) < size {
		r.out = make([]float32, size)
	}
	r.out = r.out[:size]
	return r.out
}

// TreeReduce applies Adasum recursively over any number of gradients on a
// single host, halving the set at each level (§3.4's bandwidth-optimal
// recursion: Adasum(g[0,n]) = Adasum(Adasum(g[0,n/2)), Adasum(g[n/2,n]))).
// Odd leftovers pass through a level unchanged, so any n ≥ 1 is accepted.
// The inputs are not modified. The result lives in the Reducer's
// workspace and is valid until the next call.
func (r *Reducer) TreeReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: TreeReduce needs at least one gradient")
	}
	out := r.ensureOut(len(grads[0]))
	r.TreeReduceInto(out, grads, layout)
	return out
}

// TreeReduceInto is TreeReduce writing the result into dst, which must
// have the gradients' length and must not alias any input.
//
//adasum:noalloc
func (r *Reducer) TreeReduceInto(dst []float32, grads [][]float32, layout tensor.Layout) {
	n := len(grads)
	if n == 0 {
		panic("adasum: TreeReduce needs at least one gradient")
	}
	if len(dst) != len(grads[0]) {
		panic("adasum: TreeReduceInto dst size mismatch")
	}
	switch n {
	case 1:
		copy(dst, grads[0])
		return
	case 2:
		CombineLayers(dst, grads[0], grads[1], layout)
		return
	}
	size := len(grads[0])
	r.ensureBufs((n+1)/2, size)
	work := r.work[:0]

	// First level reads the inputs directly, writing each pair's combine
	// into workspace — no per-input clones (the seed implementation cloned
	// every gradient). An odd leftover is copied once so later levels may
	// overwrite it in place.
	m := 0
	for i := 0; i+1 < n; i += 2 {
		CombineLayers(r.bufs[m], grads[i], grads[i+1], layout)
		work = append(work, r.bufs[m]) //adasum:alloc ok appends into retained r.work scratch; grows only until the high-water mark
		m++
	}
	if n%2 == 1 {
		copy(r.bufs[m], grads[n-1])
		work = append(work, r.bufs[m]) //adasum:alloc ok appends into retained r.work scratch; grows only until the high-water mark
		m++
	}
	r.work = work // retain the grown pointer scratch for reuse

	// Higher levels combine in place within the workspace; the final
	// combine writes straight into dst.
	for m > 2 {
		nm := 0
		for i := 0; i+1 < m; i += 2 {
			CombineLayers(work[nm], work[i], work[i+1], layout)
			nm++
		}
		if m%2 == 1 {
			work[nm] = work[m-1]
			nm++
		}
		m = nm
	}
	CombineLayers(dst, work[0], work[1], layout)
}

// LinearReduce applies Adasum left to right: ((g0 ⊕ g1) ⊕ g2) ⊕ ...
// This is the "linear" application order of §4.2.3; it produces a
// different (but equally valid) combination than TreeReduce and is kept
// for the ordering ablation. The result is valid until the Reducer's
// next call.
func (r *Reducer) LinearReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: LinearReduce needs at least one gradient")
	}
	out := r.ensureOut(len(grads[0]))
	LinearReduceInto(out, grads, layout)
	return out
}

// SumReduce returns the elementwise sum of the gradients — the
// synchronous-SGD baseline combiner. The result is valid until the
// Reducer's next call.
func (r *Reducer) SumReduce(grads [][]float32) []float32 {
	if len(grads) == 0 {
		panic("adasum: SumReduce needs at least one gradient")
	}
	out := r.ensureOut(len(grads[0]))
	copy(out, grads[0])
	for _, g := range grads[1:] {
		tensor.Axpy(1, g, out)
	}
	return out
}

// MeanReduce returns the elementwise average of the gradients. The result
// is valid until the Reducer's next call.
func (r *Reducer) MeanReduce(grads [][]float32) []float32 {
	out := r.SumReduce(grads)
	tensor.Scale(1/float32(len(grads)), out)
	return out
}

// TreeReduce is the allocating convenience form of Reducer.TreeReduce:
// the inputs are not modified and the result is freshly allocated. Loops
// should hold a Reducer instead.
func TreeReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: TreeReduce needs at least one gradient")
	}
	out := make([]float32, len(grads[0]))
	var r Reducer
	r.TreeReduceInto(out, grads, layout)
	return out
}

// LinearReduceInto applies Adasum left to right into dst, which must not
// alias any input beyond grads[0] (dst == grads[0] is allowed only if the
// caller intends in-place accumulation).
func LinearReduceInto(dst []float32, grads [][]float32, layout tensor.Layout) {
	if len(grads) == 0 {
		panic("adasum: LinearReduce needs at least one gradient")
	}
	copy(dst, grads[0])
	for _, g := range grads[1:] {
		CombineLayers(dst, dst, g, layout)
	}
}

// LinearReduce is the allocating convenience form of
// Reducer.LinearReduce.
func LinearReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: LinearReduce needs at least one gradient")
	}
	out := make([]float32, len(grads[0]))
	LinearReduceInto(out, grads, layout)
	return out
}

// SumReduce returns the freshly allocated elementwise sum of the
// gradients — the synchronous-SGD baseline combiner.
func SumReduce(grads [][]float32) []float32 {
	if len(grads) == 0 {
		panic("adasum: SumReduce needs at least one gradient")
	}
	acc := tensor.Clone(grads[0])
	for _, g := range grads[1:] {
		tensor.Axpy(1, g, acc)
	}
	return acc
}

// MeanReduce returns the freshly allocated elementwise average of the
// gradients.
func MeanReduce(grads [][]float32) []float32 {
	acc := SumReduce(grads)
	tensor.Scale(1/float32(len(grads)), acc)
	return acc
}

// Orthogonality computes the Figure 1 metric for one layer:
//
//	‖Adasum(g1..gn)‖² / Σᵢ ‖gᵢ‖²
//
// which is 1 when the gradients are mutually orthogonal and 1/n when they
// are parallel with equal norms. grads are whole-layer slices.
func Orthogonality(grads [][]float32) float64 {
	layout := tensor.FlatLayout(len(grads[0]))
	combined := TreeReduce(grads, layout)
	var sum float64
	for _, g := range grads {
		sum += tensor.Norm2(g)
	}
	if sum <= 0 {
		return 1
	}
	return tensor.Norm2(combined) / sum
}

// OrthogonalityPerLayer computes the Figure 1 metric for every layer of
// the layout plus the all-layer average (the bold red line in the
// figure). It returns (perLayer, average).
func OrthogonalityPerLayer(grads [][]float32, layout tensor.Layout) ([]float64, float64) {
	per := make([]float64, layout.NumLayers())
	var total float64
	for i := 0; i < layout.NumLayers(); i++ {
		lo, hi := layout.Bounds(i)
		slices := make([][]float32, len(grads))
		for j, g := range grads {
			slices[j] = g[lo:hi]
		}
		per[i] = Orthogonality(slices)
		total += per[i]
	}
	if layout.NumLayers() > 0 {
		total /= float64(layout.NumLayers())
	}
	return per, total
}

// CombineF16 performs the pairwise combine on half-precision buffers:
// dots accumulate in float64, coefficients are applied in float32, and
// the result is re-quantized to fp16. dst may alias a or b.
func CombineF16(dst, a, b []float16.Bits) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("adasum: CombineF16 length mismatch")
	}
	dot, na, nb := float16.DotNorms(a, b)
	ca, cb := Coefficients(dot, na, nb)
	for i := range dst {
		v := float32(ca)*float16.ToFloat32(a[i]) + float32(cb)*float16.ToFloat32(b[i])
		dst[i] = float16.FromFloat32(v)
	}
}
