// Package adasum implements the paper's primary contribution: the
// adaptive-sum gradient combiner
//
//	Adasum(g1, g2) = (1 - g1·g2 / (2‖g1‖²))·g1 + (1 - g1·g2 / (2‖g2‖²))·g2
//
// together with its per-layer application (§3.6), host-side recursive tree
// reduction over any number of gradients (§3.4), the orthogonality metric
// used in Figure 1, and an fp16 path whose dot products accumulate in
// float64 (§4.4.1).
//
// Properties (verified by the test suite):
//   - orthogonal gradients are summed: Adasum(a, b) = a + b when a·b = 0;
//   - parallel gradients are averaged: Adasum(g, g) = g;
//   - the operator is symmetric and has no hyperparameters.
package adasum

import (
	"repro/internal/float16"
	"repro/internal/tensor"
)

// Coefficients returns the two scalars (ca, cb) such that
// Adasum(a, b) = ca·a + cb·b, given dot = a·b, na = ‖a‖², nb = ‖b‖².
//
// Degenerate inputs are handled the way the Horovod implementation does:
// a zero-norm operand contributes nothing and must not poison the other
// side with a 0/0, so its partner's coefficient degrades to 1 (plain sum
// with a zero vector).
func Coefficients(dot, na, nb float64) (ca, cb float64) {
	ca, cb = 1, 1
	if na > 0 {
		ca = 1 - dot/(2*na)
	}
	if nb > 0 {
		cb = 1 - dot/(2*nb)
	}
	return ca, cb
}

// Combine writes Adasum(a, b) into dst, treating the full vectors as a
// single segment. dst may alias a or b. Dot products and norms accumulate
// in float64.
func Combine(dst, a, b []float32) {
	dot := tensor.Dot(a, b)
	na := tensor.Norm2(a)
	nb := tensor.Norm2(b)
	ca, cb := Coefficients(dot, na, nb)
	tensor.ScaledCombine(dst, float32(ca), a, float32(cb), b)
}

// CombineLayers writes the per-layer Adasum of a and b into dst: each
// segment of the layout is combined with its own dot product and norms.
// This is the per-layer mode of §3.6, which the paper found important
// because layers decorrelate at different rates during training. dst may
// alias a or b.
func CombineLayers(dst, a, b []float32, layout tensor.Layout) {
	if layout.TotalSize() != len(a) || len(a) != len(b) || len(dst) != len(a) {
		panic("adasum: CombineLayers size mismatch")
	}
	for i := 0; i < layout.NumLayers(); i++ {
		lo, hi := layout.Bounds(i)
		Combine(dst[lo:hi], a[lo:hi], b[lo:hi])
	}
}

// PartialDots holds the three per-segment partial reductions exchanged by
// the distributed algorithm (line 15 of Algorithm 1): a·b, ‖a‖², ‖b‖².
// In the distributed setting each rank holds only a slice of the logical
// vector, so these are summed across the rank group before the combine.
type PartialDots struct {
	Dot, NormA, NormB float64
}

// LayerDots computes per-layer partial dot products for the (local slices
// of) vectors a and b under layout. The result must be allreduced across
// the ranks sharing the logical vector before ApplyWithDots.
func LayerDots(a, b []float32, layout tensor.Layout) []PartialDots {
	if layout.TotalSize() != len(a) || len(a) != len(b) {
		panic("adasum: LayerDots size mismatch")
	}
	dots := make([]PartialDots, layout.NumLayers())
	for i := range dots {
		lo, hi := layout.Bounds(i)
		dots[i] = PartialDots{
			Dot:   tensor.Dot(a[lo:hi], b[lo:hi]),
			NormA: tensor.Norm2(a[lo:hi]),
			NormB: tensor.Norm2(b[lo:hi]),
		}
	}
	return dots
}

// ApplyWithDots performs the per-layer combine of a and b into dst using
// externally reduced dot products (line 18 of Algorithm 1). This is the
// second phase of the two-phase distributed Adasum: dots were computed on
// slices and summed across the group, so each rank applies coefficients
// consistent with the full logical vectors.
func ApplyWithDots(dst, a, b []float32, layout tensor.Layout, dots []PartialDots) {
	if len(dots) != layout.NumLayers() {
		panic("adasum: ApplyWithDots dots/layout mismatch")
	}
	for i := range dots {
		lo, hi := layout.Bounds(i)
		ca, cb := Coefficients(dots[i].Dot, dots[i].NormA, dots[i].NormB)
		tensor.ScaledCombine(dst[lo:hi], float32(ca), a[lo:hi], float32(cb), b[lo:hi])
	}
}

// FlattenDots serializes per-layer partials into a float64 triple-list
// [dot0, na0, nb0, dot1, ...] so they can travel through a generic
// small-vector allreduce.
func FlattenDots(dots []PartialDots) []float64 {
	out := make([]float64, 3*len(dots))
	for i, d := range dots {
		out[3*i] = d.Dot
		out[3*i+1] = d.NormA
		out[3*i+2] = d.NormB
	}
	return out
}

// UnflattenDots is the inverse of FlattenDots.
func UnflattenDots(flat []float64) []PartialDots {
	if len(flat)%3 != 0 {
		panic("adasum: UnflattenDots length not a multiple of 3")
	}
	dots := make([]PartialDots, len(flat)/3)
	for i := range dots {
		dots[i] = PartialDots{Dot: flat[3*i], NormA: flat[3*i+1], NormB: flat[3*i+2]}
	}
	return dots
}

// TreeReduce applies Adasum recursively over any number of gradients on a
// single host, halving the set at each level (§3.4's bandwidth-optimal
// recursion: Adasum(g[0,n]) = Adasum(Adasum(g[0,n/2)), Adasum(g[n/2,n]))).
// Odd leftovers pass through a level unchanged, so any n ≥ 1 is accepted.
// The inputs are not modified; the result is freshly allocated.
func TreeReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: TreeReduce needs at least one gradient")
	}
	work := make([][]float32, len(grads))
	for i, g := range grads {
		work[i] = tensor.Clone(g)
	}
	for len(work) > 1 {
		half := make([][]float32, 0, (len(work)+1)/2)
		for i := 0; i+1 < len(work); i += 2 {
			CombineLayers(work[i], work[i], work[i+1], layout)
			half = append(half, work[i])
		}
		if len(work)%2 == 1 {
			half = append(half, work[len(work)-1])
		}
		work = half
	}
	return work[0]
}

// LinearReduce applies Adasum left to right: ((g0 ⊕ g1) ⊕ g2) ⊕ ...
// This is the "linear" application order of §4.2.3; it produces a
// different (but equally valid) combination than TreeReduce and is kept
// for the ordering ablation.
func LinearReduce(grads [][]float32, layout tensor.Layout) []float32 {
	if len(grads) == 0 {
		panic("adasum: LinearReduce needs at least one gradient")
	}
	acc := tensor.Clone(grads[0])
	for _, g := range grads[1:] {
		CombineLayers(acc, acc, g, layout)
	}
	return acc
}

// SumReduce returns the elementwise sum of the gradients — the
// synchronous-SGD baseline combiner.
func SumReduce(grads [][]float32) []float32 {
	if len(grads) == 0 {
		panic("adasum: SumReduce needs at least one gradient")
	}
	acc := tensor.Clone(grads[0])
	for _, g := range grads[1:] {
		tensor.Axpy(1, g, acc)
	}
	return acc
}

// MeanReduce returns the elementwise average of the gradients.
func MeanReduce(grads [][]float32) []float32 {
	acc := SumReduce(grads)
	tensor.Scale(1/float32(len(grads)), acc)
	return acc
}

// Orthogonality computes the Figure 1 metric for one layer:
//
//	‖Adasum(g1..gn)‖² / Σᵢ ‖gᵢ‖²
//
// which is 1 when the gradients are mutually orthogonal and 1/n when they
// are parallel with equal norms. grads are whole-layer slices.
func Orthogonality(grads [][]float32) float64 {
	layout := tensor.FlatLayout(len(grads[0]))
	combined := TreeReduce(grads, layout)
	var sum float64
	for _, g := range grads {
		sum += tensor.Norm2(g)
	}
	if sum <= 0 {
		return 1
	}
	return tensor.Norm2(combined) / sum
}

// OrthogonalityPerLayer computes the Figure 1 metric for every layer of
// the layout plus the all-layer average (the bold red line in the
// figure). It returns (perLayer, average).
func OrthogonalityPerLayer(grads [][]float32, layout tensor.Layout) ([]float64, float64) {
	per := make([]float64, layout.NumLayers())
	var total float64
	for i := 0; i < layout.NumLayers(); i++ {
		lo, hi := layout.Bounds(i)
		slices := make([][]float32, len(grads))
		for j, g := range grads {
			slices[j] = g[lo:hi]
		}
		per[i] = Orthogonality(slices)
		total += per[i]
	}
	if layout.NumLayers() > 0 {
		total /= float64(layout.NumLayers())
	}
	return per, total
}

// CombineF16 performs the pairwise combine on half-precision buffers:
// dots accumulate in float64, coefficients are applied in float32, and
// the result is re-quantized to fp16. dst may alias a or b.
func CombineF16(dst, a, b []float16.Bits) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("adasum: CombineF16 length mismatch")
	}
	dot := float16.Dot(a, b)
	na := float16.Norm2(a)
	nb := float16.Norm2(b)
	ca, cb := Coefficients(dot, na, nb)
	for i := range dst {
		v := float32(ca)*float16.ToFloat32(a[i]) + float32(cb)*float16.ToFloat32(b[i])
		dst[i] = float16.FromFloat32(v)
	}
}
