package adasum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randGrads(n, size int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, size)
		for j := range out[i] {
			out[i][j] = rng.Float32() - 0.5
		}
	}
	return out
}

// combineUnfused is the seed (pre-fusion) pairwise combine: three
// separate reduction passes followed by the scaled combine. It is the
// reference the fused path must match.
func combineUnfused(dst, a, b []float32) {
	dot := tensor.Dot(a, b)
	na := tensor.Norm2(a)
	nb := tensor.Norm2(b)
	ca, cb := Coefficients(dot, na, nb)
	tensor.ScaledCombine(dst, float32(ca), a, float32(cb), b)
}

// The fused combine must agree with the seed's unfused implementation
// within 1e-12 relative on random inputs across sizes and scales.
func TestCombineFusedMatchesUnfused(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 1000, 4097} {
		for _, scale := range []float32{1, 1e-5, 1e5} {
			rng := rand.New(rand.NewSource(int64(n) + 17))
			a := make([]float32, n)
			b := make([]float32, n)
			for i := range a {
				a[i] = (rng.Float32() - 0.5) * scale
				b[i] = (rng.Float32() - 0.5) * scale
			}
			fused := make([]float32, n)
			unfused := make([]float32, n)
			dot, na, nb := CombineFused(fused, a, b)
			combineUnfused(unfused, a, b)

			wd, wa, wb := tensor.Dot(a, b), tensor.Norm2(a), tensor.Norm2(b)
			for _, pair := range [][2]float64{{dot, wd}, {na, wa}, {nb, wb}} {
				got, want := pair[0], pair[1]
				denom := math.Max(math.Abs(want), 1e-300)
				if math.Abs(got-want)/denom > 1e-12 {
					t.Fatalf("n=%d scale=%g: fused stat %v vs unfused %v", n, scale, got, want)
				}
			}
			for i := range fused {
				diff := math.Abs(float64(fused[i]) - float64(unfused[i]))
				tol := 1e-12 * math.Max(math.Abs(float64(unfused[i])), 1)
				// One float32 ulp of slack for the re-quantized combine.
				tol = math.Max(tol, math.Abs(float64(unfused[i]))*1.2e-7)
				if diff > tol {
					t.Fatalf("n=%d scale=%g elem %d: fused %v unfused %v", n, scale, i, fused[i], unfused[i])
				}
			}
		}
	}
}

// CombineFused must support dst aliasing either input.
func TestCombineFusedAliasing(t *testing.T) {
	base := randGrads(2, 100, 3)
	a, b := base[0], base[1]
	want := make([]float32, len(a))
	Combine(want, a, b)

	aliasA := tensor.Clone(a)
	CombineFused(aliasA, aliasA, b)
	if !tensor.Equal(aliasA, want, 0) {
		t.Error("dst aliasing a diverged")
	}
	aliasB := tensor.Clone(b)
	CombineFused(aliasB, a, aliasB)
	if !tensor.Equal(aliasB, want, 0) {
		t.Error("dst aliasing b diverged")
	}
}

// Reducer methods must match the allocating package-level functions.
func TestReducerMatchesPackageFunctions(t *testing.T) {
	layout := tensor.NewLayout([]string{"a", "b", "c"}, []int{40, 25, 35})
	for _, n := range []int{1, 2, 3, 4, 5, 8, 15, 16} {
		grads := randGrads(n, layout.TotalSize(), int64(n))
		r := NewReducer()
		if got, want := r.TreeReduce(grads, layout), TreeReduce(grads, layout); !tensor.Equal(got, want, 0) {
			t.Errorf("n=%d: Reducer.TreeReduce diverges from TreeReduce", n)
		}
		if got, want := r.LinearReduce(grads, layout), LinearReduce(grads, layout); !tensor.Equal(got, want, 0) {
			t.Errorf("n=%d: Reducer.LinearReduce diverges from LinearReduce", n)
		}
		if got, want := r.SumReduce(grads), SumReduce(grads); !tensor.Equal(got, want, 0) {
			t.Errorf("n=%d: Reducer.SumReduce diverges from SumReduce", n)
		}
		if got, want := r.MeanReduce(grads), MeanReduce(grads); !tensor.Equal(got, want, 0) {
			t.Errorf("n=%d: Reducer.MeanReduce diverges from MeanReduce", n)
		}
	}
}

// Reducer must not modify its inputs.
func TestReducerPreservesInputs(t *testing.T) {
	layout := tensor.FlatLayout(64)
	grads := randGrads(7, 64, 11)
	before := make([][]float32, len(grads))
	for i, g := range grads {
		before[i] = tensor.Clone(g)
	}
	r := NewReducer()
	r.TreeReduce(grads, layout)
	for i := range grads {
		if !tensor.Equal(grads[i], before[i], 0) {
			t.Fatalf("TreeReduce modified input %d", i)
		}
	}
}

// A single Reducer must be reusable across calls with different gradient
// counts, sizes and layouts — the workspace regrows as needed and stale
// workspace contents must not leak into results.
func TestReducerReuseAcrossLayouts(t *testing.T) {
	r := NewReducer()
	shapes := []struct {
		n      int
		layout tensor.Layout
	}{
		{4, tensor.FlatLayout(100)},
		{9, tensor.NewLayout([]string{"w", "b"}, []int{300, 50})},
		{2, tensor.FlatLayout(10)},
		{16, tensor.NewLayout([]string{"x", "y", "z"}, []int{64, 64, 72})},
		{3, tensor.FlatLayout(1000)},
		{4, tensor.FlatLayout(100)}, // shrink back to the first shape
	}
	for si, s := range shapes {
		grads := randGrads(s.n, s.layout.TotalSize(), int64(100+si))
		got := r.TreeReduce(grads, s.layout)
		want := TreeReduce(grads, s.layout)
		if !tensor.Equal(got, want, 0) {
			t.Fatalf("shape %d (%d grads, %d elems): reuse diverged", si, s.n, s.layout.TotalSize())
		}
	}
}

// TreeReduceInto writes into the caller's buffer and must equal the
// value-returning form.
func TestTreeReduceInto(t *testing.T) {
	layout := tensor.FlatLayout(50)
	grads := randGrads(5, 50, 21)
	dst := make([]float32, 50)
	var r Reducer
	r.TreeReduceInto(dst, grads, layout)
	if want := TreeReduce(grads, layout); !tensor.Equal(dst, want, 0) {
		t.Fatal("TreeReduceInto diverges from TreeReduce")
	}
}

// Steady-state Reducer reductions must not allocate.
func TestReducerSteadyStateAllocs(t *testing.T) {
	layout := tensor.FlatLayout(1 << 10)
	grads := randGrads(16, 1<<10, 31)
	r := NewReducer()
	r.TreeReduce(grads, layout) // warm the workspace
	allocs := testing.AllocsPerRun(20, func() {
		r.TreeReduce(grads, layout)
	})
	if allocs != 0 {
		t.Errorf("steady-state TreeReduce allocates %.1f times per op", allocs)
	}
}
