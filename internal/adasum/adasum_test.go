package adasum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/float16"
	"repro/internal/tensor"
)

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestOrthogonalGradientsAreSummed(t *testing.T) {
	// §3.5: when g1 ⟂ g2 the dot product is zero and Adasum is the sum.
	a := []float32{1, 0, 2, 0}
	b := []float32{0, 3, 0, -1}
	dst := make([]float32, 4)
	Combine(dst, a, b)
	want := []float32{1, 3, 2, -1}
	if !tensor.Equal(dst, want, 1e-7) {
		t.Fatalf("orthogonal combine = %v, want sum %v", dst, want)
	}
}

func TestParallelGradientsAreAveraged(t *testing.T) {
	// §3.5: when g1 ∥ g2 with equal norms, Adasum is the average.
	g := []float32{1, -2, 3}
	dst := make([]float32, 3)
	Combine(dst, g, g)
	if !tensor.Equal(dst, g, 1e-7) {
		t.Fatalf("Adasum(g,g) = %v, want %v", dst, g)
	}
}

func TestParallelDifferentNorms(t *testing.T) {
	// g2 = 2*g1. dot = 2‖g1‖², ‖g2‖² = 4‖g1‖².
	// ca = 1 - 2‖g1‖²/(2‖g1‖²) = 0; cb = 1 - 2‖g1‖²/(8‖g1‖²) = 3/4.
	// Result = 0.75 * g2 = 1.5 * g1.
	g1 := []float32{2, 0}
	g2 := []float32{4, 0}
	dst := make([]float32, 2)
	Combine(dst, g1, g2)
	if !tensor.Equal(dst, []float32{3, 0}, 1e-6) {
		t.Fatalf("parallel different norms = %v, want [3 0]", dst)
	}
}

func TestAntiParallel(t *testing.T) {
	// g2 = -g1: dot = -‖g‖², ca = cb = 1.5, result = 1.5(g1+g2) = 0.
	g1 := []float32{1, 2}
	g2 := []float32{-1, -2}
	dst := make([]float32, 2)
	Combine(dst, g1, g2)
	if !tensor.Equal(dst, []float32{0, 0}, 1e-7) {
		t.Fatalf("antiparallel = %v, want 0", dst)
	}
}

func TestZeroOperands(t *testing.T) {
	z := []float32{0, 0, 0}
	g := []float32{1, 2, 3}
	dst := make([]float32, 3)
	Combine(dst, z, g)
	if !tensor.Equal(dst, g, 0) {
		t.Fatalf("Adasum(0,g) = %v, want g", dst)
	}
	Combine(dst, g, z)
	if !tensor.Equal(dst, g, 0) {
		t.Fatalf("Adasum(g,0) = %v, want g", dst)
	}
	Combine(dst, z, z)
	if !tensor.Equal(dst, z, 0) {
		t.Fatalf("Adasum(0,0) = %v, want 0", dst)
	}
}

func TestCoefficients(t *testing.T) {
	ca, cb := Coefficients(0, 1, 1)
	if ca != 1 || cb != 1 {
		t.Fatalf("orthogonal coefficients = %v,%v", ca, cb)
	}
	ca, cb = Coefficients(1, 1, 1)
	if ca != 0.5 || cb != 0.5 {
		t.Fatalf("parallel coefficients = %v,%v", ca, cb)
	}
	ca, cb = Coefficients(0, 0, 0)
	if ca != 1 || cb != 1 {
		t.Fatalf("degenerate coefficients = %v,%v", ca, cb)
	}
}

func TestSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(32) + 1
		a := randVec(rng, n)
		b := randVec(rng, n)
		ab := make([]float32, n)
		ba := make([]float32, n)
		Combine(ab, a, b)
		Combine(ba, b, a)
		if !tensor.Equal(ab, ba, 1e-6) {
			t.Fatalf("not symmetric: %v vs %v", ab, ba)
		}
	}
}

func TestNormBracketProperty(t *testing.T) {
	// For gradients with non-negative dot product the combined norm sits
	// within [min(‖a‖,‖b‖)/something safe, ‖a‖+‖b‖]. We check the upper
	// bound for all inputs and the Lemma A.3 style lower bound
	// ‖result‖ ≥ ‖a+b‖/2 for acute angles.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(16) + 2
		a := randVec(rng, n)
		b := randVec(rng, n)
		dst := make([]float32, n)
		Combine(dst, a, b)
		na, nb, nc := tensor.Norm(a), tensor.Norm(b), tensor.Norm(dst)
		if nc > na+nb+1e-5 {
			t.Fatalf("norm exceeds triangle bound: %v > %v + %v", nc, na, nb)
		}
		if tensor.Dot(a, b) >= 0 {
			half := make([]float32, n)
			tensor.Add(half, a, b)
			tensor.Scale(0.5, half)
			if nc < tensor.Norm(half)-1e-5 {
				t.Fatalf("norm below average bound: %v < %v", nc, tensor.Norm(half))
			}
		}
	}
}

func TestScaleInvarianceOfDirectionWhenEqual(t *testing.T) {
	// Adasum(c*g, c*g) = c*g for any positive c: scaling both inputs
	// scales the output.
	f := func(c float32) bool {
		if c != c || c <= 0 || c > 1e15 {
			return true
		}
		g := []float32{1, 2, -3}
		in := tensor.Clone(g)
		tensor.Scale(c, in)
		dst := make([]float32, 3)
		Combine(dst, in, in)
		return tensor.Equal(dst, in, 1e-3*float64(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineLayersIndependence(t *testing.T) {
	// Layer 0 parallel (should average), layer 1 orthogonal (should sum);
	// per-layer combine treats them independently.
	layout := tensor.NewLayout([]string{"l0", "l1"}, []int{2, 2})
	a := []float32{1, 0 /* l1 */, 1, 0}
	b := []float32{1, 0 /* l1 */, 0, 1}
	dst := make([]float32, 4)
	CombineLayers(dst, a, b, layout)
	want := []float32{1, 0, 1, 1}
	if !tensor.Equal(dst, want, 1e-6) {
		t.Fatalf("per-layer combine = %v, want %v", dst, want)
	}
	// Whole-gradient combine mixes the layers (different result).
	whole := make([]float32, 4)
	Combine(whole, a, b)
	if tensor.Equal(whole, want, 1e-6) {
		t.Fatal("whole-gradient combine unexpectedly equals per-layer")
	}
}

func TestTreeReduceSingle(t *testing.T) {
	g := []float32{1, 2}
	out := TreeReduce([][]float32{g}, tensor.FlatLayout(2))
	if !tensor.Equal(out, g, 0) {
		t.Fatalf("TreeReduce single = %v", out)
	}
	// Must be a copy.
	out[0] = 99
	if g[0] != 1 {
		t.Fatal("TreeReduce aliases input")
	}
}

func TestTreeReducePairMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randVec(rng, 10), randVec(rng, 10)
	layout := tensor.FlatLayout(10)
	tree := TreeReduce([][]float32{a, b}, layout)
	direct := make([]float32, 10)
	Combine(direct, a, b)
	if !tensor.Equal(tree, direct, 1e-7) {
		t.Fatalf("tree pair %v != direct %v", tree, direct)
	}
}

func TestTreeReduceOrthogonalSet(t *testing.T) {
	// n mutually orthogonal gradients: tree reduce = exact sum.
	n := 8
	grads := make([][]float32, n)
	want := make([]float32, n)
	for i := range grads {
		g := make([]float32, n)
		g[i] = float32(i + 1)
		grads[i] = g
		want[i] = float32(i + 1)
	}
	out := TreeReduce(grads, tensor.FlatLayout(n))
	if !tensor.Equal(out, want, 1e-6) {
		t.Fatalf("orthogonal tree reduce = %v, want %v", out, want)
	}
}

func TestTreeReduceIdenticalSet(t *testing.T) {
	// n identical gradients: tree reduce = the gradient (repeated
	// averaging).
	g := []float32{2, -1, 0.5}
	grads := [][]float32{g, g, g, g, g, g, g, g}
	out := TreeReduce(grads, tensor.FlatLayout(3))
	if !tensor.Equal(out, g, 1e-6) {
		t.Fatalf("identical tree reduce = %v, want %v", out, g)
	}
}

func TestTreeReduceOddCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	grads := make([][]float32, 5)
	for i := range grads {
		grads[i] = randVec(rng, 6)
	}
	out := TreeReduce(grads, tensor.FlatLayout(6))
	if len(out) != 6 {
		t.Fatalf("odd count output length = %d", len(out))
	}
	if tensor.HasNaNOrInf(out) {
		t.Fatal("odd count produced non-finite values")
	}
}

func TestLinearVsTreeDifferButBothValid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	grads := make([][]float32, 4)
	for i := range grads {
		grads[i] = randVec(rng, 8)
	}
	layout := tensor.FlatLayout(8)
	tree := TreeReduce(grads, layout)
	lin := LinearReduce(grads, layout)
	if tensor.HasNaNOrInf(tree) || tensor.HasNaNOrInf(lin) {
		t.Fatal("non-finite reduction")
	}
	// Both must lie within the triangle bound of the summed norms.
	var sum float64
	for _, g := range grads {
		sum += tensor.Norm(g)
	}
	if tensor.Norm(tree) > sum || tensor.Norm(lin) > sum {
		t.Fatal("reduction norm exceeds sum of norms")
	}
}

func TestSumMeanReduce(t *testing.T) {
	grads := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	s := SumReduce(grads)
	if !tensor.Equal(s, []float32{9, 12}, 1e-6) {
		t.Fatalf("SumReduce = %v", s)
	}
	m := MeanReduce(grads)
	if !tensor.Equal(m, []float32{3, 4}, 1e-6) {
		t.Fatalf("MeanReduce = %v", m)
	}
	// Inputs untouched.
	if !tensor.Equal(grads[0], []float32{1, 2}, 0) {
		t.Fatal("SumReduce mutated input")
	}
}

func TestOrthogonalityMetricExtremes(t *testing.T) {
	// Orthogonal set -> 1.
	grads := [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
	if got := Orthogonality(grads); math.Abs(got-1) > 1e-6 {
		t.Fatalf("orthogonal set metric = %v, want 1", got)
	}
	// Parallel equal-norm set of n -> 1/n.
	g := []float32{1, 1}
	par := [][]float32{g, g, g, g}
	if got := Orthogonality(par); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("parallel set metric = %v, want 0.25", got)
	}
}

func TestOrthogonalityPerLayer(t *testing.T) {
	layout := tensor.NewLayout([]string{"a", "b"}, []int{2, 2})
	// Layer a: parallel (1/2); layer b: orthogonal (1).
	g1 := []float32{1, 0 /* b */, 1, 0}
	g2 := []float32{1, 0 /* b */, 0, 1}
	per, avg := OrthogonalityPerLayer([][]float32{g1, g2}, layout)
	if math.Abs(per[0]-0.5) > 1e-6 || math.Abs(per[1]-1) > 1e-6 {
		t.Fatalf("per-layer = %v", per)
	}
	if math.Abs(avg-0.75) > 1e-6 {
		t.Fatalf("avg = %v, want 0.75", avg)
	}
}

func TestDotsFlattenRoundTrip(t *testing.T) {
	dots := []PartialDots{{1, 2, 3}, {4, 5, 6}}
	flat := FlattenDots(dots)
	back := UnflattenDots(flat)
	if len(back) != 2 || back[0] != dots[0] || back[1] != dots[1] {
		t.Fatalf("round trip = %v", back)
	}
}

func TestApplyWithDotsMatchesCombineLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layout := tensor.NewLayout([]string{"a", "b", "c"}, []int{5, 3, 8})
	a := randVec(rng, 16)
	b := randVec(rng, 16)
	dots := LayerDots(a, b, layout)
	viaDots := make([]float32, 16)
	ApplyWithDots(viaDots, a, b, layout, dots)
	direct := make([]float32, 16)
	CombineLayers(direct, a, b, layout)
	if !tensor.Equal(viaDots, direct, 1e-7) {
		t.Fatalf("two-phase %v != direct %v", viaDots, direct)
	}
}

func TestCombineF16MatchesFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a32 := randVec(rng, 64)
	b32 := randVec(rng, 64)
	a := float16.Encode(a32)
	b := float16.Encode(b32)
	dst := make([]float16.Bits, 64)
	CombineF16(dst, a, b)
	// Reference: combine the dequantized halves in float32.
	ref := make([]float32, 64)
	Combine(ref, float16.Decode(a), float16.Decode(b))
	got := float16.Decode(dst)
	for i := range got {
		if math.Abs(float64(got[i]-ref[i])) > 2e-3 {
			t.Fatalf("f16 combine[%d] = %v, ref %v", i, got[i], ref[i])
		}
	}
}

func TestCombineAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randVec(rng, 8)
	b := randVec(rng, 8)
	want := make([]float32, 8)
	Combine(want, a, b)
	// dst aliases a.
	aCopy := tensor.Clone(a)
	Combine(aCopy, aCopy, b)
	if !tensor.Equal(aCopy, want, 1e-7) {
		t.Fatalf("aliased combine = %v, want %v", aCopy, want)
	}
}
