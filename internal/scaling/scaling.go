// Package scaling implements dynamic loss scaling for fp16 training
// (§4.4.1, citing Micikevicius et al. [25]): gradients are multiplied by
// a scale to keep them inside fp16's dynamic range; when an overflow
// (NaN/Inf) appears the step is skipped and the scale backs off; after a
// window of clean steps the scale grows again. The paper applies this to
// the tensors Adasum introduces, such as the effective_gradient of
// Figure 3.
package scaling

import "repro/internal/tensor"

// LossScaler is a dynamic fp16 gradient scaler.
type LossScaler struct {
	// Scale is the current multiplier applied to the loss (and therefore
	// to gradients).
	Scale float64
	// GrowthFactor multiplies Scale after GrowthInterval clean steps.
	GrowthFactor float64
	// BackoffFactor multiplies Scale on overflow.
	BackoffFactor float64
	// GrowthInterval is the number of consecutive overflow-free steps
	// before the scale grows.
	GrowthInterval int
	// MinScale and MaxScale clamp the scale.
	MinScale, MaxScale float64

	goodSteps int
	skipped   int
}

// NewLossScaler returns a scaler with the conventional defaults
// (initial scale 2^15, grow 2x every 2000 clean steps, halve on
// overflow).
func NewLossScaler() *LossScaler {
	return &LossScaler{
		Scale:          32768,
		GrowthFactor:   2,
		BackoffFactor:  0.5,
		GrowthInterval: 2000,
		MinScale:       1,
		MaxScale:       1 << 24,
	}
}

// ScaleGrads multiplies the gradient vector by the current scale (in
// real mixed-precision training the loss is scaled before backward; on
// this simulator scaling the gradient is equivalent).
func (s *LossScaler) ScaleGrads(g []float32) {
	tensor.Scale(float32(s.Scale), g)
}

// Unscale divides the gradient vector by the current scale.
func (s *LossScaler) Unscale(g []float32) {
	tensor.Scale(float32(1/s.Scale), g)
}

// Update inspects the gradient for overflow and advances the scaler
// state. It returns true when the step must be skipped (overflow
// detected); the scale has already been backed off in that case.
func (s *LossScaler) Update(g []float32) (skip bool) {
	if tensor.HasNaNOrInf(g) {
		s.Scale *= s.BackoffFactor
		if s.Scale < s.MinScale {
			s.Scale = s.MinScale
		}
		s.goodSteps = 0
		s.skipped++
		return true
	}
	s.goodSteps++
	if s.goodSteps >= s.GrowthInterval {
		s.Scale *= s.GrowthFactor
		if s.Scale > s.MaxScale {
			s.Scale = s.MaxScale
		}
		s.goodSteps = 0
	}
	return false
}

// SkippedSteps reports how many steps were skipped due to overflow.
func (s *LossScaler) SkippedSteps() int { return s.skipped }
