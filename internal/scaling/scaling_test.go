package scaling

import (
	"math"
	"testing"
)

func TestScaleUnscaleRoundTrip(t *testing.T) {
	s := NewLossScaler()
	g := []float32{1, -2, 0.5}
	s.ScaleGrads(g)
	if g[0] != 32768 {
		t.Fatalf("scaled g[0] = %v", g[0])
	}
	s.Unscale(g)
	if g[0] != 1 || g[1] != -2 || g[2] != 0.5 {
		t.Fatalf("round trip = %v", g)
	}
}

func TestOverflowBacksOff(t *testing.T) {
	s := NewLossScaler()
	before := s.Scale
	skip := s.Update([]float32{1, float32(math.Inf(1))})
	if !skip {
		t.Fatal("overflow not detected")
	}
	if s.Scale != before/2 {
		t.Fatalf("scale = %v, want %v", s.Scale, before/2)
	}
	if s.SkippedSteps() != 1 {
		t.Fatalf("skipped = %d", s.SkippedSteps())
	}
}

func TestGrowthAfterInterval(t *testing.T) {
	s := NewLossScaler()
	s.GrowthInterval = 3
	before := s.Scale
	for i := 0; i < 3; i++ {
		if s.Update([]float32{1}) {
			t.Fatal("clean step flagged as overflow")
		}
	}
	if s.Scale != before*2 {
		t.Fatalf("scale = %v, want %v after growth", s.Scale, before*2)
	}
}

func TestOverflowResetsGrowthCounter(t *testing.T) {
	s := NewLossScaler()
	s.GrowthInterval = 2
	s.Update([]float32{1})
	s.Update([]float32{float32(math.NaN())}) // resets counter, halves
	afterOverflow := s.Scale
	s.Update([]float32{1})
	if s.Scale != afterOverflow {
		t.Fatal("grew before a full clean interval after overflow")
	}
	s.Update([]float32{1})
	if s.Scale != afterOverflow*2 {
		t.Fatal("did not grow after full clean interval")
	}
}

func TestMinScaleClamp(t *testing.T) {
	s := NewLossScaler()
	s.Scale = 1
	s.Update([]float32{float32(math.Inf(-1))})
	if s.Scale < s.MinScale {
		t.Fatalf("scale %v fell below min %v", s.Scale, s.MinScale)
	}
}

func TestMaxScaleClamp(t *testing.T) {
	s := NewLossScaler()
	s.Scale = s.MaxScale
	s.GrowthInterval = 1
	s.Update([]float32{1})
	if s.Scale > s.MaxScale {
		t.Fatalf("scale %v exceeded max %v", s.Scale, s.MaxScale)
	}
}

func TestRecoveryScenario(t *testing.T) {
	// A burst of overflows followed by clean steps: the scaler must
	// stabilize at a usable scale and stop skipping.
	s := NewLossScaler()
	s.GrowthInterval = 10
	for i := 0; i < 5; i++ {
		s.Update([]float32{float32(math.Inf(1))})
	}
	for i := 0; i < 50; i++ {
		if s.Update([]float32{0.001}) {
			t.Fatal("skipped a clean step")
		}
	}
	if s.Scale < 1024 {
		t.Fatalf("scale %v did not recover", s.Scale)
	}
}
