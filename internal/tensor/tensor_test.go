package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestDotUnrolledTail(t *testing.T) {
	// Lengths around the unroll width must all agree with a naive loop.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 17; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := 0; i < n; i++ {
			a[i] = rng.Float32() - 0.5
			b[i] = rng.Float32() - 0.5
			want += float64(a[i]) * float64(b[i])
		}
		if got := Dot(a, b); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d: Dot = %v, want %v", n, got, want)
		}
	}
}

func TestNorm2MatchesDotSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 13; n++ {
		a := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*4 - 2
		}
		if got, want := Norm2(a), Dot(a, a); !almostEq(got, want, 1e-12) {
			t.Fatalf("n=%d: Norm2 = %v, Dot(a,a) = %v", n, got, want)
		}
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestFloat64Accumulation(t *testing.T) {
	// A float32 accumulator loses the small terms entirely; the float64
	// accumulator must keep them (the §4.4.1 precision property).
	n := 4096
	a := make([]float32, n)
	a[0] = 4096 // large head
	for i := 1; i < n; i++ {
		a[i] = 1e-3
	}
	got := Sum(a)
	want := 4096 + float64(n-1)*1e-3
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum = %v, want %v (float64 accumulation lost)", got, want)
	}
}

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{10, 20, 30, 40, 50}
	Axpy(2, x, y)
	want := []float32{12, 24, 36, 48, 60}
	if !Equal(y, want, 0) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestScale(t *testing.T) {
	x := []float32{1, -2, 3, -4, 5}
	Scale(-2, x)
	want := []float32{-2, 4, -6, 8, -10}
	if !Equal(x, want, 0) {
		t.Fatalf("Scale = %v, want %v", x, want)
	}
}

func TestAddSub(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	dst := make([]float32, 3)
	Add(dst, a, b)
	if !Equal(dst, []float32{5, 7, 9}, 0) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if !Equal(dst, []float32{3, 3, 3}, 0) {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestSubAliasing(t *testing.T) {
	a := []float32{5, 6, 7}
	Sub(a, a, []float32{1, 1, 1})
	if !Equal(a, []float32{4, 5, 6}, 0) {
		t.Fatalf("aliased Sub = %v", a)
	}
}

func TestScaledCombine(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6}
	b := []float32{10, 20, 30, 40, 50, 60}
	dst := make([]float32, 6)
	ScaledCombine(dst, 2, a, 0.5, b)
	want := []float32{7, 14, 21, 28, 35, 42}
	if !Equal(dst, want, 1e-6) {
		t.Fatalf("ScaledCombine = %v, want %v", dst, want)
	}
}

func TestScaledCombineAliasesA(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	ScaledCombine(a, 1, a, 1, b)
	if !Equal(a, []float32{5, 7, 9}, 0) {
		t.Fatalf("aliased ScaledCombine = %v", a)
	}
}

func TestZeroFillClone(t *testing.T) {
	x := []float32{1, 2, 3}
	c := Clone(x)
	Zero(x)
	if !Equal(x, []float32{0, 0, 0}, 0) {
		t.Fatalf("Zero = %v", x)
	}
	if !Equal(c, []float32{1, 2, 3}, 0) {
		t.Fatalf("Clone mutated: %v", c)
	}
	Fill(x, 7)
	if !Equal(x, []float32{7, 7, 7}, 0) {
		t.Fatalf("Fill = %v", x)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float32{1, -5, 3}); got != 5 {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestHasNaNOrInf(t *testing.T) {
	if HasNaNOrInf([]float32{1, 2, 3}) {
		t.Fatal("false positive")
	}
	if !HasNaNOrInf([]float32{1, float32(math.NaN()), 3}) {
		t.Fatal("missed NaN")
	}
	if !HasNaNOrInf([]float32{float32(math.Inf(-1))}) {
		t.Fatal("missed -Inf")
	}
}

func TestRelErr(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{1, 0}
	if got := RelErr(a, b); got != 0 {
		t.Fatalf("RelErr identical = %v", got)
	}
	a2 := []float32{2, 0}
	if got := RelErr(a2, b); !almostEq(got, 1, 1e-9) {
		t.Fatalf("RelErr = %v, want 1", got)
	}
}

func TestDotCommutativeProperty(t *testing.T) {
	f := func(vals []float32) bool {
		n := len(vals) / 2
		a, b := vals[:n], vals[n:2*n]
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		return almostEq(Dot(a, b), Dot(b, a), 1e-6*(1+math.Abs(Dot(a, b))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyLinearityProperty(t *testing.T) {
	// Dot(a, x+y) == Dot(a,x) + Dot(a,y) within tolerance.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(64) + 1
		a := randVec(rng, n)
		x := randVec(rng, n)
		y := randVec(rng, n)
		xy := Clone(x)
		Axpy(1, y, xy)
		lhs := Dot(a, xy)
		rhs := Dot(a, x) + Dot(a, y)
		if !almostEq(lhs, rhs, 1e-4*(1+math.Abs(rhs))) {
			t.Fatalf("linearity violated: %v vs %v", lhs, rhs)
		}
	}
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}
