//go:build !amd64 || noasm

package tensor

//adasum:noalloc
func dotNorms(a, b []float32) (dot, na, nb float64) {
	return dotNormsGeneric(a, b)
}
