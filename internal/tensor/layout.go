package tensor

import "fmt"

// Layout describes how a flat parameter or gradient buffer decomposes into
// named per-layer segments. Adasum is applied per layer (§3.6 of the
// paper), and the tensor-fusion buffer (§4.4.3) must track these
// boundaries so that fused reductions still compute per-layer dot
// products.
//
// A Layout is immutable after construction.
type Layout struct {
	names   []string
	offsets []int // len == len(names)+1; offsets[len(names)] == total size
}

// NewLayout builds a Layout from parallel name/size slices.
func NewLayout(names []string, sizes []int) Layout {
	if len(names) != len(sizes) {
		panic("tensor: NewLayout names/sizes length mismatch")
	}
	offsets := make([]int, len(sizes)+1)
	for i, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("tensor: NewLayout negative size for %q", names[i]))
		}
		offsets[i+1] = offsets[i] + s
	}
	n := make([]string, len(names))
	copy(n, names)
	return Layout{names: n, offsets: offsets}
}

// FlatLayout returns a single-segment layout covering n elements, used
// when per-layer structure is unavailable or deliberately ignored (the
// whole-gradient ablation).
func FlatLayout(n int) Layout {
	return NewLayout([]string{"flat"}, []int{n})
}

// NumLayers returns the number of segments.
func (l Layout) NumLayers() int { return len(l.names) }

// TotalSize returns the total number of elements covered by the layout.
func (l Layout) TotalSize() int {
	if len(l.offsets) == 0 {
		return 0
	}
	return l.offsets[len(l.offsets)-1]
}

// Name returns the name of segment i.
func (l Layout) Name(i int) string { return l.names[i] }

// Bounds returns the [lo, hi) element range of segment i.
func (l Layout) Bounds(i int) (lo, hi int) { return l.offsets[i], l.offsets[i+1] }

// Size returns the number of elements in segment i.
func (l Layout) Size(i int) int { return l.offsets[i+1] - l.offsets[i] }

// Slice returns the sub-slice of x holding segment i.
func (l Layout) Slice(x []float32, i int) []float32 {
	return x[l.offsets[i]:l.offsets[i+1]]
}

// Window returns a new Layout describing the portion of this layout that
// overlaps the element range [lo, hi). Segments partially inside the
// window are clipped. Offsets in the returned layout are relative to lo.
// This is how the distributed recursive-vector-halving reduction keeps
// per-layer dot products correct while operating on half-vectors
// (Algorithm 1), and how hierarchical/partitioned reductions carve
// layer-aligned shards.
func (l Layout) Window(lo, hi int) Layout {
	if lo < 0 || hi > l.TotalSize() || lo > hi {
		panic(fmt.Sprintf("tensor: Window [%d,%d) out of range [0,%d)", lo, hi, l.TotalSize()))
	}
	var names []string
	var sizes []int
	for i := 0; i < l.NumLayers(); i++ {
		slo, shi := l.Bounds(i)
		clo, chi := maxInt(slo, lo), minInt(shi, hi)
		if clo >= chi {
			continue
		}
		names = append(names, l.names[i])
		sizes = append(sizes, chi-clo)
	}
	return NewLayout(names, sizes)
}

// SplitLayerAligned partitions the layout into parts contiguous shards
// whose boundaries coincide with layer boundaries, balancing element
// counts greedily. This implements the layer-aligned partitioning of
// §4.3 ("we partition to ensure that state corresponding to one neural
// network layer falls in the same partition"). It returns the element
// ranges [lo, hi) of each shard; shards may be empty when there are more
// parts than layers.
func (l Layout) SplitLayerAligned(parts int) [][2]int {
	if parts <= 0 {
		panic("tensor: SplitLayerAligned needs parts > 0")
	}
	total := l.TotalSize()
	ranges := make([][2]int, parts)
	target := float64(total) / float64(parts)
	layer := 0
	cursor := 0
	for p := 0; p < parts; p++ {
		lo := cursor
		// Give this shard layers until it reaches the running target.
		for layer < l.NumLayers() {
			_, hi := l.Bounds(layer)
			// Remaining shards must each be able to stay non-degenerate;
			// stop when this shard has met its proportional target.
			if float64(hi) > target*float64(p+1) && cursor > lo {
				break
			}
			cursor = hi
			layer++
		}
		if p == parts-1 {
			cursor = total
			layer = l.NumLayers()
		}
		ranges[p] = [2]int{lo, cursor}
	}
	return ranges
}

// HalfSplit returns the midpoint used by recursive vector halving:
// floor(n/2), matching line 2 of Algorithm 1.
func HalfSplit(n int) int { return n / 2 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
