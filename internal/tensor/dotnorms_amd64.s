// AVX+FMA kernel for the fused dot/norm reduction. See dotnorms_amd64.go
// for the dispatch logic and the lane-accumulation contract.

//go:build amd64 && !noasm

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotNormsAVX(a, b *float32, n int, out *[12]float64)
//
// n must be a positive multiple of 8. Processes eight elements per
// iteration with two quad-lane accumulator sets per quantity; the pair is
// folded lane-wise before the store, so out holds
//
//	out[0:4]  dot lanes   (lane j sums elements i with i%4 == j)
//	out[4:8]  ‖a‖² lanes
//	out[8:12] ‖b‖² lanes
//
// Products of float32 values widened to float64 are exact, so the FMAs
// below produce bitwise the same partial sums as separate multiply/add.
TEXT ·dotNormsAVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ out+24(FP), DX
	VXORPD Y0, Y0, Y0 // dot lanes, even quads
	VXORPD Y1, Y1, Y1 // ‖a‖² lanes, even quads
	VXORPD Y2, Y2, Y2 // ‖b‖² lanes, even quads
	VXORPD Y3, Y3, Y3 // dot lanes, odd quads
	VXORPD Y4, Y4, Y4 // ‖a‖² lanes, odd quads
	VXORPD Y5, Y5, Y5 // ‖b‖² lanes, odd quads
	SHRQ $3, CX       // iterations of 8 elements

loop:
	VCVTPS2PD (SI), Y6    // a[i:i+4] widened
	VCVTPS2PD (DI), Y7    // b[i:i+4]
	VCVTPS2PD 16(SI), Y8  // a[i+4:i+8]
	VCVTPS2PD 16(DI), Y9  // b[i+4:i+8]
	VFMADD231PD Y7, Y6, Y0
	VFMADD231PD Y6, Y6, Y1
	VFMADD231PD Y7, Y7, Y2
	VFMADD231PD Y9, Y8, Y3
	VFMADD231PD Y8, Y8, Y4
	VFMADD231PD Y9, Y9, Y5
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	VADDPD Y3, Y0, Y0 // fold odd quads into even, lane-wise
	VADDPD Y4, Y1, Y1
	VADDPD Y5, Y2, Y2
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VZEROUPPER
	RET
