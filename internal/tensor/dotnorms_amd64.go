//go:build amd64 && !noasm

package tensor

// The fused DotNorms reduction has a vectorized fast path on amd64: an
// AVX+FMA assembly kernel processing eight elements per iteration with
// four-lane float64 accumulators. Feature detection is done once at init
// via CPUID/XGETBV so the package has no dependency on x/sys; machines
// without AVX+FMA (or non-amd64 builds) use the portable 4-wide Go loop.
//
// Accumulation discipline: every product is float64(a[i]) * float64(b[i]),
// which is exact (24-bit mantissas), so FMA and mul+add produce identical
// partial sums. The vector path differs from the unfused Dot/Norm2 pair
// only in folding eight lanes instead of four — a reassociation of exact
// partial sums whose results agree to ~1e-16 relative (tested to 1e-12).

// Implemented in dotnorms_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// Implemented in dotnorms_amd64.s.
func xgetbv0() (eax, edx uint32)

// Implemented in dotnorms_amd64.s.
//
//go:noescape
func dotNormsAVX(a, b *float32, n int, out *[12]float64)

var hasAVXFMA = detectAVXFMA()

// detectAVXFMA reports whether the CPU and OS support the ymm FMA kernel:
// CPUID.1:ECX must advertise FMA, AVX and OSXSAVE, and XCR0 must show the
// OS saves XMM+YMM state.
func detectAVXFMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
		want       = fmaBit | osxsaveBit | avxBit
	)
	_, _, ecx, _ := cpuidex(1, 0)
	if ecx&want != want {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&0x6 == 0x6 // XMM and YMM state enabled
}

//adasum:noalloc
func dotNorms(a, b []float32) (dot, na, nb float64) {
	n := len(a)
	bulk := n &^ 7
	if !hasAVXFMA || bulk == 0 {
		return dotNormsGeneric(a, b)
	}
	var lanes [12]float64
	dotNormsAVX(&a[0], &b[0], bulk, &lanes)
	d0, d1, d2, d3 := lanes[0], lanes[1], lanes[2], lanes[3]
	x0, x1, x2, x3 := lanes[4], lanes[5], lanes[6], lanes[7]
	y0, y1, y2, y3 := lanes[8], lanes[9], lanes[10], lanes[11]
	for i := bulk; i < n; i++ {
		av, bv := float64(a[i]), float64(b[i])
		d0 += av * bv
		x0 += av * av
		y0 += bv * bv
	}
	return d0 + d1 + d2 + d3, x0 + x1 + x2 + x3, y0 + y1 + y2 + y3
}
