// Package tensor provides the flat-vector math kernels used throughout the
// Adasum reproduction: dot products and squared norms accumulated in
// float64 (the paper stresses this for fp16 stability, §4.4.1), scaled
// additions, and layer-structured views over flat parameter/gradient
// buffers.
//
// All kernels operate on []float32, the working precision of the simulated
// training stack. Reductions (Dot, Norm2, Sum, DotNorms) always accumulate
// in float64 regardless of input precision.
//
// The hot path of the Adasum combiner is DotNorms, which fuses the three
// reductions a·b, ‖a‖² and ‖b‖² into a single pass — the kernel fusion
// §4.4.2 of the paper credits for Adasum's production viability. On amd64
// with AVX and FMA it dispatches to a vectorized assembly kernel
// (dotnorms_amd64.s); everywhere else a manually unrolled pure-Go loop is
// used. Both accumulate in float64, where products of float32 inputs are
// exact, so the fused kernels differ from the unfused Dot/Norm2 pair only
// in the order partial sums are folded (see DESIGN.md).
package tensor

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b accumulated in float64.
// It panics if the lengths differ.
//
//adasum:noalloc
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < n; i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// Norm2 returns the squared Euclidean norm of a, accumulated in float64.
//
//adasum:noalloc
func Norm2(a []float32) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += float64(a[i]) * float64(a[i])
		s1 += float64(a[i+1]) * float64(a[i+1])
		s2 += float64(a[i+2]) * float64(a[i+2])
		s3 += float64(a[i+3]) * float64(a[i+3])
	}
	for ; i < n; i++ {
		s0 += float64(a[i]) * float64(a[i])
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 { return math.Sqrt(Norm2(a)) }

// DotNorms returns a·b, ‖a‖² and ‖b‖² computed in a single pass over the
// inputs, each accumulated in float64. It replaces the separate
// Dot + Norm2 + Norm2 sequence on the Adasum hot path: one traversal
// loads and widens every element once instead of three times. It panics
// if the lengths differ.
//
//adasum:noalloc
func DotNorms(a, b []float32) (dot, na, nb float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotNorms length mismatch %d != %d", len(a), len(b)))
	}
	return dotNorms(a, b)
}

// dotNormsGeneric is the portable fused kernel: 4-wide unrolled with the
// same four-accumulator folding as Dot/Norm2, so its results are bitwise
// identical to the unfused pair.
//
//adasum:noalloc
func dotNormsGeneric(a, b []float32) (dot, na, nb float64) {
	var d0, d1, d2, d3 float64
	var x0, x1, x2, x3 float64
	var y0, y1, y2, y3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, b0 := float64(a[i]), float64(b[i])
		a1, b1 := float64(a[i+1]), float64(b[i+1])
		a2, b2 := float64(a[i+2]), float64(b[i+2])
		a3, b3 := float64(a[i+3]), float64(b[i+3])
		d0 += a0 * b0
		d1 += a1 * b1
		d2 += a2 * b2
		d3 += a3 * b3
		x0 += a0 * a0
		x1 += a1 * a1
		x2 += a2 * a2
		x3 += a3 * a3
		y0 += b0 * b0
		y1 += b1 * b1
		y2 += b2 * b2
		y3 += b3 * b3
	}
	for ; i < n; i++ {
		av, bv := float64(a[i]), float64(b[i])
		d0 += av * bv
		x0 += av * av
		y0 += bv * bv
	}
	return d0 + d1 + d2 + d3, x0 + x1 + x2 + x3, y0 + y1 + y2 + y3
}

// Sum returns the sum of the elements of a accumulated in float64.
func Sum(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v)
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
//
//adasum:noalloc
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale computes x *= alpha in place.
//
//adasum:noalloc
func Scale(alpha float32, x []float32) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

// Add computes dst[i] = a[i] + b[i]. dst may alias a or b.
//
//adasum:noalloc
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst[i] = a[i] - b[i]. dst may alias a or b.
//
//adasum:noalloc
func Sub(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ScaledCombine computes dst[i] = ca*a[i] + cb*b[i]. This is the inner
// kernel of the Adasum combiner (line 18 of Algorithm 1). dst may alias
// a or b.
//
//adasum:noalloc
func ScaledCombine(dst []float32, ca float32, a []float32, cb float32, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: ScaledCombine length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = ca*a[i] + cb*b[i]
		dst[i+1] = ca*a[i+1] + cb*b[i+1]
		dst[i+2] = ca*a[i+2] + cb*b[i+2]
		dst[i+3] = ca*a[i+3] + cb*b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = ca*a[i] + cb*b[i]
	}
}

// Zero sets every element of x to 0.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a freshly allocated copy of x.
func Clone(x []float32) []float32 {
	c := make([]float32, len(x))
	copy(c, x)
	return c
}

// MaxAbs returns the largest absolute element of x, or 0 for empty x.
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// HasNaNOrInf reports whether x contains a NaN or an infinity. It is used
// by the dynamic loss scaler to detect fp16 overflow (§4.4.1).
func HasNaNOrInf(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// Equal reports whether a and b are elementwise equal within tol.
func Equal(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > tol {
			return false
		}
	}
	return true
}

// RelErr returns ||a-b|| / max(||b||, eps), a scale-free distance used by
// the Figure 2 emulation-error experiment.
func RelErr(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: RelErr length mismatch")
	}
	var num, den float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		num += d * d
		den += float64(b[i]) * float64(b[i])
	}
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Sqrt(num / den)
}
