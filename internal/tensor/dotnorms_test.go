package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTestVec(n int, seed int64, scale float32) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = (rng.Float32() - 0.5) * scale
	}
	return v
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

// DotNorms must agree with the unfused Dot/Norm2 pair within 1e-12
// relative on every length, including tails shorter than the vector
// width, across value scales.
func TestDotNormsMatchesUnfused(t *testing.T) {
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 100, 1023, 4096, 100003}
	for _, n := range lengths {
		for _, scale := range []float32{1, 1e-6, 1e6} {
			a := randTestVec(n, int64(n)+1, scale)
			b := randTestVec(n, int64(n)+2, scale)
			dot, na, nb := DotNorms(a, b)
			wd, wa, wb := Dot(a, b), Norm2(a), Norm2(b)
			if relDiff(dot, wd) > 1e-12 || relDiff(na, wa) > 1e-12 || relDiff(nb, wb) > 1e-12 {
				t.Errorf("n=%d scale=%g: DotNorms=(%v,%v,%v) unfused=(%v,%v,%v)",
					n, scale, dot, na, nb, wd, wa, wb)
			}
		}
	}
}

// The portable fused kernel keeps the exact accumulator pattern of the
// unfused kernels, so it must match them bitwise.
func TestDotNormsGenericBitwise(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 8, 1000, 4097} {
		a := randTestVec(n, int64(n)+10, 1)
		b := randTestVec(n, int64(n)+11, 1)
		dot, na, nb := dotNormsGeneric(a, b)
		if dot != Dot(a, b) || na != Norm2(a) || nb != Norm2(b) {
			t.Errorf("n=%d: generic fused kernel deviates from unfused bitwise", n)
		}
	}
}

func TestDotNormsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	DotNorms(make([]float32, 3), make([]float32, 4))
}

// Special values must flow through the fused kernel the same way they do
// through the unfused one.
func TestDotNormsSpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	cases := [][2][]float32{
		{{1, 2, inf, 4, 5, 6, 7, 8, 9}, {1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{{1, 2, nan, 4, 5, 6, 7, 8, 9}, {1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{{0, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for ci, c := range cases {
		dot, na, nb := DotNorms(c[0], c[1])
		wd, wa, wb := Dot(c[0], c[1]), Norm2(c[0]), Norm2(c[1])
		same := func(x, y float64) bool {
			return x == y || (math.IsNaN(x) && math.IsNaN(y))
		}
		if !same(dot, wd) || !same(na, wa) || !same(nb, wb) {
			t.Errorf("case %d: fused=(%v,%v,%v) unfused=(%v,%v,%v)", ci, dot, na, nb, wd, wa, wb)
		}
	}
}
