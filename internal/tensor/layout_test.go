package tensor

import (
	"math/rand"
	"testing"
)

func TestLayoutBasics(t *testing.T) {
	l := NewLayout([]string{"conv1", "conv2", "fc"}, []int{10, 20, 5})
	if l.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d", l.NumLayers())
	}
	if l.TotalSize() != 35 {
		t.Fatalf("TotalSize = %d", l.TotalSize())
	}
	lo, hi := l.Bounds(1)
	if lo != 10 || hi != 30 {
		t.Fatalf("Bounds(1) = [%d,%d)", lo, hi)
	}
	if l.Size(2) != 5 {
		t.Fatalf("Size(2) = %d", l.Size(2))
	}
	if l.Name(0) != "conv1" {
		t.Fatalf("Name(0) = %q", l.Name(0))
	}
}

func TestLayoutSlice(t *testing.T) {
	l := NewLayout([]string{"a", "b"}, []int{2, 3})
	x := []float32{1, 2, 3, 4, 5}
	if got := l.Slice(x, 1); !Equal(got, []float32{3, 4, 5}, 0) {
		t.Fatalf("Slice = %v", got)
	}
}

func TestFlatLayout(t *testing.T) {
	l := FlatLayout(7)
	if l.NumLayers() != 1 || l.TotalSize() != 7 {
		t.Fatalf("FlatLayout: %d layers, %d total", l.NumLayers(), l.TotalSize())
	}
}

func TestLayoutZeroSizedLayer(t *testing.T) {
	l := NewLayout([]string{"a", "empty", "b"}, []int{3, 0, 2})
	if l.TotalSize() != 5 {
		t.Fatalf("TotalSize = %d", l.TotalSize())
	}
	lo, hi := l.Bounds(1)
	if lo != 3 || hi != 3 {
		t.Fatalf("empty layer bounds = [%d,%d)", lo, hi)
	}
}

func TestWindowClipsLayers(t *testing.T) {
	l := NewLayout([]string{"a", "b", "c"}, []int{4, 4, 4})
	w := l.Window(2, 10)
	// Window covers a[2:4], b[4:8], c[8:10] -> sizes 2, 4, 2.
	if w.NumLayers() != 3 {
		t.Fatalf("Window layers = %d", w.NumLayers())
	}
	if w.Size(0) != 2 || w.Size(1) != 4 || w.Size(2) != 2 {
		t.Fatalf("Window sizes = %d,%d,%d", w.Size(0), w.Size(1), w.Size(2))
	}
	if w.TotalSize() != 8 {
		t.Fatalf("Window total = %d", w.TotalSize())
	}
}

func TestWindowFull(t *testing.T) {
	l := NewLayout([]string{"a", "b"}, []int{3, 5})
	w := l.Window(0, 8)
	if w.NumLayers() != 2 || w.TotalSize() != 8 {
		t.Fatalf("full window mismatch: %d layers %d total", w.NumLayers(), w.TotalSize())
	}
}

func TestWindowEmpty(t *testing.T) {
	l := NewLayout([]string{"a"}, []int{4})
	w := l.Window(2, 2)
	if w.NumLayers() != 0 || w.TotalSize() != 0 {
		t.Fatalf("empty window: %d layers %d total", w.NumLayers(), w.TotalSize())
	}
}

func TestWindowOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout([]string{"a"}, []int{4}).Window(0, 5)
}

func TestSplitLayerAlignedCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20) + 1
		names := make([]string, n)
		sizes := make([]int, n)
		for i := range sizes {
			names[i] = "l"
			sizes[i] = rng.Intn(100) + 1
		}
		l := NewLayout(names, sizes)
		parts := rng.Intn(8) + 1
		ranges := l.SplitLayerAligned(parts)
		if len(ranges) != parts {
			t.Fatalf("parts = %d, got %d ranges", parts, len(ranges))
		}
		// Contiguous cover of [0, total).
		cursor := 0
		for _, r := range ranges {
			if r[0] != cursor {
				t.Fatalf("gap: range starts at %d, cursor %d", r[0], cursor)
			}
			if r[1] < r[0] {
				t.Fatalf("negative range %v", r)
			}
			cursor = r[1]
		}
		if cursor != l.TotalSize() {
			t.Fatalf("cover ends at %d, total %d", cursor, l.TotalSize())
		}
		// Every boundary must be a layer boundary.
		boundaries := map[int]bool{0: true, l.TotalSize(): true}
		for i := 0; i < l.NumLayers(); i++ {
			_, hi := l.Bounds(i)
			boundaries[hi] = true
		}
		for _, r := range ranges {
			if !boundaries[r[0]] || !boundaries[r[1]] {
				t.Fatalf("range %v not layer-aligned", r)
			}
		}
	}
}

func TestSplitLayerAlignedBalance(t *testing.T) {
	// With many equal layers, shards should be near-balanced.
	names := make([]string, 64)
	sizes := make([]int, 64)
	for i := range sizes {
		names[i] = "l"
		sizes[i] = 100
	}
	l := NewLayout(names, sizes)
	ranges := l.SplitLayerAligned(4)
	for _, r := range ranges {
		sz := r[1] - r[0]
		if sz < 1200 || sz > 2000 {
			t.Fatalf("unbalanced shard %v (size %d)", r, sz)
		}
	}
}

func TestHalfSplit(t *testing.T) {
	if HalfSplit(5) != 2 || HalfSplit(4) != 2 || HalfSplit(0) != 0 {
		t.Fatal("HalfSplit mismatch with floor(n/2)")
	}
}
