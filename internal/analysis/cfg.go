package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A CFG is the control-flow graph of one function body, built purely
// from the AST: the dataflow layer behind the poolown analyzer (and any
// future path-sensitive check). Each Block holds the statements and
// control expressions that execute straight-line, in evaluation order,
// and the Succs edges say where control can go next. Two kinds of exit
// exist: the synthetic Exit block, reached by every return statement
// and by falling off the end of the body, and panic blocks (Panics ==
// true, no successors), ended by an explicit panic(...) statement.
// Deferred calls are not given edges — they appear as *ast.DeferStmt
// nodes in their block, and a dataflow interprets them as effects that
// run on every later exit, normal or panicking.
//
// The builder handles the full statement grammar: if/else chains,
// for and for-range loops (with init/cond/post edges and back edges),
// expression/type switches with fallthrough, select, labeled
// statements with labeled break/continue, goto (forward and backward),
// and return. Unreachable code after a terminating statement lands in
// a fresh block with no predecessors, which a worklist seeded at Entry
// simply never visits.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// A Block is one straight-line run of nodes. Nodes holds simple
// statements and bare control expressions (an if condition, a switch
// tag, a range operand) in the order they execute.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	// Panics marks a block ended by an explicit panic(...) statement:
	// control leaves the function unwinding, running deferred calls.
	Panics bool
}

// A RangeIter stands in for the per-iteration key/value assignment of
// a for-range loop: it lives in the loop-head block so a dataflow sees
// the assignment once per iteration, without re-embedding the loop
// body (which has its own blocks). It is the one non-go/ast node a CFG
// can contain; consumers must type-switch on it before calling
// ast.Inspect.
type RangeIter struct{ Range *ast.RangeStmt }

func (r *RangeIter) Pos() token.Pos { return r.Range.For }
func (r *RangeIter) End() token.Pos { return r.Range.X.Pos() }

// cfgBuilder carries the under-construction graph.
type cfgBuilder struct {
	cfg  *CFG
	cur  *Block
	info *types.Info
	// break/continue targets of the innermost enclosing loop/switch.
	breakTo, continueTo *Block
	// labels maps a label name to its targets; goto creates the entry
	// on first (possibly forward) reference.
	labels map[string]*labelBlocks
	// pendingLabel is the label naming the *next* loop/switch statement,
	// so its labeled break/continue resolve to that statement's targets.
	pendingLabel string
}

type labelBlocks struct {
	start *Block // where goto label jumps
	brk   *Block // where break label jumps (filled when the stmt builds)
	cont  *Block // where continue label jumps (loops only)
}

// BuildCFG constructs the CFG of body. info may be nil; it is only
// used to recognize calls to the predeclared panic.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		info:   info,
		labels: make(map[string]*labelBlocks),
	}
	b.cfg.Exit = b.newBlock() // Index 0 reserved for Exit, created first
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.jump(b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge cur -> dst (if cur is still open) and leaves the
// builder in a fresh, detached block for any unreachable code after a
// terminator.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = b.newBlock()
}

// edge adds cur -> dst without closing cur.
func (b *cfgBuilder) edge(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
}

// startBlock moves the builder to blk.
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil && b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether e is a direct call of the predeclared
// panic.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true // untyped fixture: trust the name
	}
	return b.info.Uses[id] == types.Universe.Lookup("panic")
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if b.isPanicCall(s.X) {
			if b.cur != nil {
				b.cur.Panics = true
			}
			b.cur = b.newBlock() // no successors: unwind
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.LabeledStmt:
		lb := b.label(s.Label.Name)
		if lb.start == nil {
			lb.start = b.newBlock()
		}
		b.edge(lb.start)
		b.startBlock(lb.start)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.jump(b.label(s.Label.Name).brk)
			} else {
				b.jump(b.breakTo)
			}
		case token.CONTINUE:
			if s.Label != nil {
				b.jump(b.label(s.Label.Name).cont)
			} else {
				b.jump(b.continueTo)
			}
		case token.GOTO:
			lb := b.label(s.Label.Name)
			if lb.start == nil {
				lb.start = b.newBlock() // forward goto
			}
			b.jump(lb.start)
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder; the edge to
			// the next case body is added there.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.edge(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.edge(after)
		} else {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.registerLoop(after, post)
		b.edge(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(after)
		}
		body := b.newBlock()
		b.edge(body)
		savedBrk, savedCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = after, post
		b.startBlock(body)
		b.stmt(s.Body)
		b.edge(post)
		b.breakTo, b.continueTo = savedBrk, savedCont
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(head)
		b.startBlock(after)

	case *ast.RangeStmt:
		b.add(s.X) // the ranged operand evaluates once
		head := b.newBlock()
		after := b.newBlock()
		b.registerLoop(after, head)
		b.edge(head)
		b.startBlock(head)
		b.add(&RangeIter{Range: s}) // per-iteration key/value assignment
		b.edge(after)
		body := b.newBlock()
		b.edge(body)
		savedBrk, savedCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = after, head
		b.startBlock(body)
		b.stmt(s.Body)
		b.edge(head)
		b.breakTo, b.continueTo = savedBrk, savedCont
		b.startBlock(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			c := cc.(*ast.CaseClause)
			nodes := make([]ast.Node, len(c.List))
			for i, e := range c.List {
				nodes[i] = e
			}
			return nodes, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			c := cc.(*ast.CaseClause)
			return nil, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.registerLoop(after, nil) // break in select body
		savedBrk := b.breakTo
		b.breakTo = after
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			clause := b.newBlock()
			head.Succs = append(head.Succs, clause)
			b.startBlock(clause)
			if c.Comm != nil {
				b.stmt(c.Comm)
			}
			b.stmtList(c.Body)
			b.edge(after)
		}
		b.breakTo = savedBrk
		if len(s.Body.List) == 0 {
			// Empty select blocks forever: no successor.
			b.cur = b.newBlock()
			return
		}
		b.startBlock(after)

	default:
		// Simple statements: assignments, declarations, send, inc/dec,
		// defer, go, empty. They execute straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchClauses builds the shared shape of expression and type
// switches: the dispatch block fans out to every clause; a clause with
// no terminator flows to after; fallthrough (always the last statement
// of a clause body) edges into the next clause's body block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {
	dispatch := b.cur
	after := b.newBlock()
	b.registerLoop(after, nil)
	savedBrk := b.breakTo
	b.breakTo = after
	hasDefault := false
	bodyBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		bodyBlocks[i] = b.newBlock()
	}
	for i, cc := range clauses {
		guards, body, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		entry := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, entry)
		b.startBlock(entry)
		for _, g := range guards {
			b.add(g)
		}
		b.edge(bodyBlocks[i])
		b.startBlock(bodyBlocks[i])
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(bodyBlocks[i+1])
			b.cur = b.newBlock()
		} else {
			b.edge(after)
		}
	}
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	b.breakTo = savedBrk
	b.startBlock(after)
}

// registerLoop points the pending label (if the statement being built
// was labeled) at this statement's break/continue targets.
func (b *cfgBuilder) registerLoop(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	lb := b.label(b.pendingLabel)
	lb.brk, lb.cont = brk, cont
	b.pendingLabel = ""
}

func (b *cfgBuilder) label(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

// Reachable returns the blocks reachable from Entry in a deterministic
// (index) order — the worklist seed for any dataflow over the graph.
func (c *CFG) Reachable() []*Block {
	seen := make([]bool, len(c.Blocks))
	var out []*Block
	var visit func(*Block)
	visit = func(blk *Block) {
		if seen[blk.Index] {
			return
		}
		seen[blk.Index] = true
		out = append(out, blk)
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(c.Entry)
	// Deterministic order regardless of DFS shape.
	for i, j := 0, 0; i < len(c.Blocks); i++ {
		if seen[i] {
			out[j] = c.Blocks[i]
			j++
		}
	}
	return out
}

// String renders the graph compactly for tests and debugging:
// "b1[n=2] -> b3 b4; b3[panic] ; ...".
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Reachable() {
		fmt.Fprintf(&sb, "b%d[n=%d", blk.Index, len(blk.Nodes))
		if blk.Panics {
			sb.WriteString(" panic")
		}
		if blk == c.Exit {
			sb.WriteString(" exit")
		}
		sb.WriteString("]")
		for i, s := range blk.Succs {
			if i == 0 {
				sb.WriteString(" ->")
			}
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("; ")
	}
	return strings.TrimSuffix(sb.String(), " ")
}
