package analysis

import (
	"go/ast"
	"go/types"
)

// DetMap flags map iteration in the deterministic packages: `range`
// over a map, (*sync.Map).Range, and the order-randomized iterators in
// the maps package. Map iteration order is randomized per run, so any
// result, message sequence, or accumulated float that depends on it
// breaks the bitwise-determinism contract (GOMAXPROCS invariance,
// checkpoint/resume identity). Iterate a sorted key slice instead, or
// annotate the line `//adasum:nondet ok <reason>` when the order is
// provably unobservable (e.g. draining interchangeable pool entries).
var DetMap = &Analyzer{
	Name:        "detmap",
	Doc:         "flags nondeterministically-ordered map iteration in deterministic packages",
	SuppressKey: "nondet",
	DetOnly:     true,
	Run:         runDetMap,
}

// nondetMapsFuncs are the maps-package helpers whose yield order is the
// map's own: as nondeterministic as ranging the map directly.
var nondetMapsFuncs = map[string]bool{
	"Keys": true, "Values": true, "All": true,
}

func runDetMap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if m, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.For, "range over map %s iterates in nondeterministic order; iterate sorted keys or annotate //adasum:nondet ok <reason>", types.TypeString(m, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					break
				}
				if s := pass.Info.Selections[sel]; s != nil {
					// Method call: (*sync.Map).Range.
					if fn, ok := s.Obj().(*types.Func); ok && fn.Name() == "Range" &&
						fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						pass.Reportf(n.Pos(), "sync.Map.Range visits entries in nondeterministic order; annotate //adasum:nondet ok <reason> if the order is unobservable")
					}
					break
				}
				// Package-level call: maps.Keys / maps.Values / maps.All.
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "maps" && nondetMapsFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "maps.%s yields in nondeterministic map order; sort before use or annotate //adasum:nondet ok <reason>", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
