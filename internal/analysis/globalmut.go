package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalMut flags package-level mutable state in the deterministic
// packages. An un-sharded global — a counter, a pool, a cache — is
// exactly the shape that broke PR-6's scaling twice (the global
// wireBytes meter and the global buffer pool serialized every rank on
// one cache line and mixed state across Worlds); any new one must
// either move into the World/Engine it belongs to, be sharded per
// rank, or carry an `//adasum:global ok <reason>` annotation arguing
// why process-wide state cannot leak into results. Error sentinels
// (`var ErrX = errors.New(...)`) are recognized as immutable and
// allowed.
var GlobalMut = &Analyzer{
	Name:        "globalmut",
	Doc:         "flags package-level mutable state in deterministic packages",
	SuppressKey: "global",
	DetOnly:     true,
	Run:         runGlobalMut,
}

func runGlobalMut(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if isErrSentinel(pass, vs, i) {
						continue
					}
					pass.Reportf(name.Pos(), "package-level var %s is mutable process-global state in a deterministic package (the PR-6 wireBytes/pool bug shape); move it into the World/Engine, shard it per rank, or annotate //adasum:global ok <reason>", name.Name)
				}
			}
		}
	}
	return nil
}

// isErrSentinel reports whether the i-th name of vs is an immutable
// error sentinel: static type error, initialized from errors.New or
// fmt.Errorf.
func isErrSentinel(pass *Pass, vs *ast.ValueSpec, i int) bool {
	obj := pass.Info.Defs[vs.Names[i]]
	if obj == nil {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return false
	}
	if len(vs.Values) != len(vs.Names) {
		return false
	}
	call, ok := vs.Values[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	return (path == "errors" && name == "New") || (path == "fmt" && name == "Errorf")
}
