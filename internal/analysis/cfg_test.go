package analysis

// CFG builder unit tests on the control-flow shapes the poolown
// dataflow leans on: labeled break/continue, goto loops, for-range
// early returns, panic blocks, defer placement, and switch
// fallthrough. Assertions are structural (which statements can reach
// which), not index-based, so block numbering can change freely.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses src (a single function declaration, wrapped in a
// package clause here) and builds the CFG of its body with no type
// info.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body, nil)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blockWith returns the unique reachable block containing a node
// matching pred.
func blockWith(t *testing.T, c *CFG, what string, pred func(ast.Node) bool) *Block {
	t.Helper()
	var found *Block
	for _, blk := range c.Reachable() {
		for _, n := range blk.Nodes {
			hit := false
			if ri, ok := n.(*RangeIter); ok {
				hit = pred(ri)
			} else {
				ast.Inspect(n, func(m ast.Node) bool {
					if m != nil && pred(m) {
						hit = true
					}
					return !hit
				})
			}
			if hit {
				if found != nil && found != blk {
					t.Fatalf("%s found in two blocks (b%d, b%d)", what, found.Index, blk.Index)
				}
				found = blk
				break
			}
		}
	}
	if found == nil {
		t.Fatalf("%s not found in any reachable block", what)
	}
	return found
}

// callTo matches a direct call of the named function.
func callTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// reaches reports whether dst is reachable from src (src included).
func reaches(src, dst *Block) bool {
	seen := map[*Block]bool{}
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		if b == dst {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(src)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	c := buildTestCFG(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 5 {
				break outer
			}
			if j == 6 {
				continue outer
			}
			inner(j)
		}
	}
	done()
}`)
	brk := blockWith(t, c, "break outer", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.BREAK && br.Label != nil
	})
	cont := blockWith(t, c, "continue outer", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE && br.Label != nil
	})
	inner := blockWith(t, c, "inner call", callTo("inner"))
	done := blockWith(t, c, "done call", callTo("done"))
	outerPost := blockWith(t, c, "i++", func(n ast.Node) bool {
		inc, ok := n.(*ast.IncDecStmt)
		if !ok {
			return false
		}
		id, ok := inc.X.(*ast.Ident)
		return ok && id.Name == "i"
	})

	// break outer jumps straight past both loops: done is reachable,
	// the inner body and the outer post are not.
	if len(brk.Succs) != 1 {
		t.Fatalf("break outer block has %d successors, want 1", len(brk.Succs))
	}
	if !reaches(brk.Succs[0], done) {
		t.Error("break outer cannot reach the statement after the loops")
	}
	if reaches(brk.Succs[0], inner) {
		t.Error("break outer can re-enter the inner loop body")
	}
	// continue outer jumps to the outer post (i++), not the inner body's
	// continuation — and from there the loop head can re-enter inner.
	if len(cont.Succs) != 1 {
		t.Fatalf("continue outer block has %d successors, want 1", len(cont.Succs))
	}
	if cont.Succs[0] != outerPost && !reaches(cont.Succs[0], outerPost) {
		t.Error("continue outer does not reach the outer post statement")
	}
	if !reaches(outerPost, inner) {
		t.Error("outer post cannot re-enter the inner loop (missing back edge)")
	}
}

func TestCFGGotoLoop(t *testing.T) {
	c := buildTestCFG(t, `
func g(n int) {
	i := 0
loop:
	if i < n {
		body(i)
		i++
		goto loop
	}
	after()
}`)
	gotoBlk := blockWith(t, c, "goto loop", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	body := blockWith(t, c, "body call", callTo("body"))
	after := blockWith(t, c, "after call", callTo("after"))
	// The backward goto forms a loop: from the goto both the body (next
	// iteration) and the after statement (loop exit) are reachable.
	if len(gotoBlk.Succs) != 1 {
		t.Fatalf("goto block has %d successors, want 1", len(gotoBlk.Succs))
	}
	if !reaches(gotoBlk.Succs[0], body) {
		t.Error("goto loop does not loop back to the body")
	}
	if !reaches(gotoBlk.Succs[0], after) {
		t.Error("goto loop cannot exit to the statement after")
	}
}

func TestCFGForwardGoto(t *testing.T) {
	c := buildTestCFG(t, `
func g2(b bool) {
	if b {
		goto out
	}
	middle()
out:
	final()
}`)
	gotoBlk := blockWith(t, c, "goto out", func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	middle := blockWith(t, c, "middle call", callTo("middle"))
	final := blockWith(t, c, "final call", callTo("final"))
	if reaches(gotoBlk.Succs[0], middle) {
		t.Error("forward goto should skip the middle statement")
	}
	if !reaches(gotoBlk.Succs[0], final) {
		t.Error("forward goto does not reach its label")
	}
	if !reaches(middle, final) {
		t.Error("fallthrough path does not reach the labeled statement")
	}
}

func TestCFGRangeEarlyReturn(t *testing.T) {
	c := buildTestCFG(t, `
func h(xs []int) int {
	s := 0
	for _, v := range xs {
		if v < 0 {
			return -1
		}
		s += v
	}
	return s
}`)
	early := blockWith(t, c, "return -1", func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		u, ok := ret.Results[0].(*ast.UnaryExpr)
		return ok && u.Op == token.SUB
	})
	head := blockWith(t, c, "range head", func(n ast.Node) bool {
		_, ok := n.(*RangeIter)
		return ok
	})
	accum := blockWith(t, c, "s += v", func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	last := blockWith(t, c, "return s", func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		id, ok := ret.Results[0].(*ast.Ident)
		return ok && id.Name == "s"
	})
	// The early return leaves the function directly: exit only.
	if len(early.Succs) != 1 || early.Succs[0] != c.Exit {
		t.Errorf("early return block should edge only to Exit, got %v", early.Succs)
	}
	if reaches(early.Succs[0], accum) {
		t.Error("early return can reach the accumulation statement")
	}
	// The loop still iterates: body back to head, head out to return s.
	if !reaches(accum, head) {
		t.Error("loop body has no back edge to the range head")
	}
	if !reaches(head, last) {
		t.Error("range head cannot exit to the final return")
	}
}

func TestCFGPanicAndDefer(t *testing.T) {
	c := buildTestCFG(t, `
func p(x int) {
	defer cleanup()
	if x < 0 {
		panic("neg")
	}
	work()
}`)
	panicBlk := blockWith(t, c, "panic stmt", func(n ast.Node) bool {
		return callTo("panic")(n)
	})
	if !panicBlk.Panics {
		t.Error("panic block not marked Panics")
	}
	if len(panicBlk.Succs) != 0 {
		t.Errorf("panic block has successors %v, want none", panicBlk.Succs)
	}
	deferBlk := blockWith(t, c, "defer stmt", func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	work := blockWith(t, c, "work call", callTo("work"))
	if !reaches(deferBlk, work) {
		t.Error("defer does not dominate the body")
	}
	if !reaches(deferBlk, panicBlk) {
		t.Error("defer does not reach the panic path")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildTestCFG(t, `
func s(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	end()
}`)
	one := blockWith(t, c, "one call", callTo("one"))
	two := blockWith(t, c, "two call", callTo("two"))
	other := blockWith(t, c, "other call", callTo("other"))
	end := blockWith(t, c, "end call", callTo("end"))
	if !reaches(one, two) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	if reaches(two, other) {
		t.Error("case 2 should not reach default")
	}
	for _, blk := range []*Block{one, two, other} {
		if !reaches(blk, end) {
			t.Errorf("case block b%d cannot reach the statement after the switch", blk.Index)
		}
	}
}

// TestCFGStringSmoke pins that the debug rendering stays parseable-ish
// and covers exit/panic tags.
func TestCFGStringSmoke(t *testing.T) {
	c := buildTestCFG(t, `
func q() {
	panic("boom")
}`)
	s := c.String()
	if !strings.Contains(s, "panic") {
		t.Errorf("String() = %q, want a panic tag", s)
	}
}
