// Package analysis is the static-enforcement suite behind adasum-vet:
// five custom analyzers that check, at vet time, the invariants the
// test matrix can only check dynamically — bitwise determinism (no map
// iteration order leaking into results), virtual-clock purity (no wall
// clock or ambient randomness), allocation-free hot paths, the absence
// of unsharded package-level mutable state, and the acquire→use→release
// protocol of the pooled communication buffers.
//
// Two of the analyzers are dataflow passes built on reusable layers in
// this package: BuildCFG turns a function body into a control-flow
// graph (basic blocks with distinct return and panic exits, straight
// from the AST), and buildCallGraph links the module's function
// declarations by their statically-resolvable call sites. The poolown
// analyzer runs a forward may-dataflow over the CFG; the noalloc check
// is additionally a module pass (Analyzer.ModuleRun) that walks the
// call graph from every //adasum:noalloc-marked function and requires
// the whole call closure to be marked, annotated, or provably
// allocation-free, reporting violations with the full call path.
// Dynamic calls the graph cannot resolve are findings of their own,
// vouched for per-site with //adasum:dyncall ok <reason>.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Reportf) but is built entirely on the standard
// library: the build environment pins a zero-dependency module, so the
// loader in this package typechecks the module and its standard-library
// imports from source with go/build + go/types instead of importing
// x/tools. Swapping to the real go/analysis driver later is a
// mechanical change: each Run func already receives the same inputs a
// go/analysis pass would.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check. Run inspects a typechecked
// package through its Pass and reports findings with Pass.Reportf;
// findings carrying the analyzer's SuppressKey can be silenced line by
// line with an `//adasum:<key> ok <reason>` annotation. An analyzer
// with a ModuleRun additionally (or instead) sees the whole loaded
// module at once — the hook behind the interprocedural checks, which
// need the cross-package call graph rather than one package's AST.
type Analyzer struct {
	Name string
	Doc  string
	// SuppressKey is the annotation key that silences this analyzer's
	// diagnostics (e.g. "nondet" for //adasum:nondet ok <reason>).
	SuppressKey string
	// DetOnly restricts the analyzer to the deterministic packages
	// (IsDeterministic); annotation-driven analyzers run everywhere.
	DetOnly bool
	Run     func(*Pass) error
	// ModuleRun runs once per build configuration over every loaded
	// module package (analyzed packages plus their module
	// dependencies).
	ModuleRun func(*ModulePass) error
}

// A Pass carries one typechecked package through one analyzer under one
// build configuration.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Config names the build configuration the package was typechecked
	// under ("default", "noasm", "386").
	Config string
	// Annot holds the //adasum: directives collected from the files.
	Annot *Annotations

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Config   string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a matching suppression
// annotation covers that line. Suppressed findings mark their directive
// used, which is how the driver detects stale annotations.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Analyzer.SuppressKey != "" &&
		p.Annot.suppress(p.Analyzer.SuppressKey, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Config:   p.Config,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is Info.TypeOf with a nil guard for robustness on files that
// produced type errors.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// A ModulePass carries the whole loaded module through one
// module-scoped analyzer under one build configuration.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Analyze holds the packages the caller asked to analyze: the
	// packages whose marked functions seed the interprocedural
	// traversals and whose findings the run is accountable for.
	Analyze []*Package
	// All holds every loaded module package — Analyze plus module
	// dependencies pulled in by the typechecker — so closures can be
	// followed across package boundaries.
	All    []*Package
	Config string
	// Annot indexes the //adasum: directives of every package in All,
	// so suppressions apply wherever a finding lands.
	Annot *Annotations

	diags *[]Diagnostic
}

// ReportfKey records a finding at pos under the given suppression key
// (module-scoped analyzers report under more than one: the transitive
// noalloc check uses "alloc" for allocation findings and "dyncall" for
// unresolvable call sites). It returns true when the diagnostic was
// recorded, false when a matching annotation suppressed it.
func (mp *ModulePass) ReportfKey(key string, pos token.Pos, format string, args ...any) bool {
	position := mp.Fset.Position(pos)
	if key != "" && mp.Annot.suppress(key, position.Filename, position.Line) {
		return false
	}
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      position,
		Analyzer: mp.Analyzer.Name,
		Config:   mp.Config,
		Message:  fmt.Sprintf(format, args...),
	})
	return true
}

// Analyzers returns the adasum-vet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetMap, WallClock, NoAlloc, GlobalMut, PoolOwn}
}

// detSuffixes are the deterministic packages: every package whose
// results must be bitwise-identical across GOMAXPROCS, checkpoint
// round-trips, and codec matrices. Import-path suffixes, so the list is
// independent of the module path.
var detSuffixes = []string{
	"internal/adasum",
	"internal/checkpoint",
	"internal/collective",
	"internal/comm",
	"internal/compress",
	"internal/overlap",
	"internal/serve",
	"internal/simnet",
	"internal/trainer",
}

// IsDeterministic reports whether the import path is one of the
// deterministic packages the DetOnly analyzers guard.
func IsDeterministic(path string) bool {
	for _, s := range detSuffixes {
		if path == s || (len(path) > len(s) && path[len(path)-len(s)-1] == '/' && path[len(path)-len(s):] == s) {
			return true
		}
	}
	return false
}
