// Fixture for the globalmut analyzer: package-level mutable state in a
// deterministic package, including the exact global-counter shape that
// broke PR-6's scaling (a process-wide wireBytes meter shared across
// Worlds).
package globalmutfix

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// wireBytes is the PR-6 regression shape: one atomic counter shared by
// every World in the process.
var wireBytes atomic.Int64 // want `package-level var wireBytes is mutable process-global state`

var stepCount int // want `package-level var stepCount is mutable process-global state`

var bufPool = sync.Pool{New: func() any { return new([256]float64) }} // want `package-level var bufPool is mutable process-global state`

var registry = map[string]int{} // want `package-level var registry is mutable process-global state`

var cacheA, cacheB []float64 // want `package-level var cacheA is mutable process-global state` `package-level var cacheB is mutable process-global state`

// Error sentinels are recognized as immutable and allowed unannotated.
var errClosed = errors.New("closed")

var errBadRank = fmt.Errorf("bad rank %d", -1)

// A justified global carries the annotation.
var debugHooks []func() //adasum:global ok test-only hook list, nil outside the harness

// Constants are not state.
const maxRanks = 1024

func useAll() int64 {
	wireBytes.Add(1)
	stepCount++
	_ = bufPool.Get()
	registry["x"] = len(cacheA) + len(cacheB)
	if errClosed != nil && errBadRank != nil && debugHooks == nil {
		return wireBytes.Load()
	}
	return int64(maxRanks)
}
