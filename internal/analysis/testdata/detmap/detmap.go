// Fixture for the detmap analyzer: map iteration in a deterministic
// package. Loaded by the test harness under an internal/comm-suffixed
// import path so DetOnly applies.
package detmapfix

import (
	"maps"
	"sort"
	"sync"
)

func rangeOverMap(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map map\[int\]float64 iterates in nondeterministic order`
		sum += v
	}
	return sum
}

type wrapped map[string]int

func rangeOverNamedMap(m wrapped) int {
	n := 0
	for range m { // want `range over map map\[string\]int iterates in nondeterministic order`
		n++
	}
	return n
}

func rangeOverSortedKeys(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m { //adasum:nondet ok keys are sorted before any order-sensitive use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys { // ranging the sorted slice is fine
		sum += m[k]
	}
	return sum
}

func syncMapRange(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { // want `sync\.Map\.Range visits entries in nondeterministic order`
		n++
		return true
	})
	return n
}

func syncMapRangeAnnotated(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { //adasum:nondet ok counting entries is order-insensitive
		n++
		return true
	})
	return n
}

func mapsKeys(m map[string]int) []string {
	var out []string
	// Range-over-func: the range itself is ordered by the iterator, but
	// maps.Keys yields in map order, so the call is what gets flagged.
	for k := range maps.Keys(m) { // want `maps\.Keys yields in nondeterministic map order`
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func rangeOverSlice(xs []int) int {
	n := 0
	for _, x := range xs { // slices iterate in index order: fine
		n += x
	}
	return n
}
