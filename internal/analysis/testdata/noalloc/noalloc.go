// Fixture for the noalloc analyzer: allocation-introducing constructs
// inside functions marked //adasum:noalloc. Unannotated functions are
// never checked.
package noallocfix

import (
	"errors"
	"fmt"
)

type thing struct{ x int }

//adasum:noalloc
func builtins(xs []int) []int {
	buf := make([]int, 8) // want `make allocates in builtins`
	p := new(thing)       // want `new allocates in builtins`
	xs = append(xs, p.x)  // want `append may grow its backing array in builtins`
	copy(buf, xs)         // copy into an existing backing array: fine
	return xs[:min(8, len(xs))]
}

//adasum:noalloc
func literals() int {
	s := []int{1, 2, 3}         // want `slice literal allocates in literals`
	m := map[string]int{"a": 1} // want `map literal allocates in literals`
	t := thing{x: 4}            // value struct literal stays on the stack: fine
	pt := &thing{x: 5}          // want `&composite literal escapes to the heap in literals`
	var arr [4]int              // array value: fine
	return s[0] + m["a"] + t.x + pt.x + arr[0]
}

//adasum:noalloc
func closures(n int) int {
	f := func() int { return n }  // want `closure capturing n allocates in closures`
	g := func() int { return 42 } // non-capturing closure compiles to a static func: fine
	return f() + g()
}

func spin() {}

//adasum:noalloc
func spawns() {
	go spin() // want `go statement allocates a goroutine in spawns`
}

//adasum:noalloc
func strings(a, b string) int {
	c := a + b      // want `string concatenation allocates in strings`
	bs := []byte(a) // want `string-to-slice conversion allocates in strings`
	d := string(bs) // want `\[\]byte/\[\]rune-to-string conversion allocates in strings`
	return len(c) + len(d)
}

func sink(v any) { _ = v }

func variadic(vs ...int) int { return len(vs) }

//adasum:noalloc
func boxing(n int, p *thing) any {
	sink(n)            // want `argument boxes int into (any|interface\{\}) \(allocates\) in boxing`
	sink(p)            // pointers fit the interface word: fine
	var i any = n      // want `assignment boxes int into (any|interface\{\}) \(allocates\) in boxing`
	i = n              // want `assignment boxes int into (any|interface\{\}) \(allocates\) in boxing`
	_ = any(n)         // want `conversion boxes int into (any|interface\{\}) \(allocates\) in boxing`
	_ = variadic(n, n) // want `variadic call allocates its \.\.\. slice in boxing`
	if i != nil {
		return p // pointer return into any: fine
	}
	return n // want `return boxes int into (any|interface\{\}) \(allocates\) in boxing`
}

//adasum:noalloc
func formats(n int) string {
	s := fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates in formats`
	err := errors.New("boom")   // want `errors\.New allocates in formats`
	if err != nil {
		return s
	}
	return ""
}

//adasum:noalloc
func guarded(n int) int {
	if n < 0 {
		// Constructs inside a direct panic(...) argument never run in
		// steady state and are exempt.
		panic(fmt.Sprintf("guarded: negative n %d", n))
	}
	return n
}

//adasum:noalloc
func mintOnMiss(pool [][]float64) []float64 {
	if len(pool) == 0 {
		return make([]float64, 256) //adasum:alloc ok pool miss mints a fresh buffer; steady state reuses
	}
	return pool[len(pool)-1]
}

func declLine(n int) []int { //adasum:noalloc
	return make([]int, n) // want `make allocates in declLine`
}

func unannotated() []int {
	return make([]int, 8) // not marked: never checked
}
