// Fixture for the wallclock analyzer: ambient time and ambient
// randomness in a deterministic package.
package wallclockfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func readsClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func timers() <-chan time.Time {
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	return t.C
}

func deterministicTime() time.Time {
	// Pure constructors stay legal: no clock is read.
	return time.Date(2021, time.April, 5, 0, 0, 0, 0, time.UTC)
}

func annotatedClock() time.Time {
	return time.Now() //adasum:wallclock ok logging-only timestamp, never enters results
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the runtime-seeded global generator`
}

func globalRandV2() uint64 {
	return randv2.Uint64() // want `math/rand/v2\.Uint64 draws from the runtime-seeded global generator`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded constructors are the sanctioned path
	return r.Intn(10)                   // method on the seeded generator: fine
}

func seededRandV2(seed uint64) uint64 {
	r := randv2.New(randv2.NewPCG(seed, seed)) // seeded v2 constructor: fine
	return r.Uint64()
}
