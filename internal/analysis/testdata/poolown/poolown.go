// Package fixture exercises the poolown analyzer: a stand-in for the
// comm.Proc pool protocol (the import path ends in internal/comm so
// the seeds match) plus one function per defect shape, each announcing
// its diagnostics with want comments.
package fixture

// --- protocol stand-in ---

type bufPool struct{}

func (bp *bufPool) getF32(shard, n int) []float32 { return make([]float32, n) }
func (bp *bufPool) putF32(shard int, b []float32) {}

// World and Proc mirror the comm API surface the seeds key on.
type World struct{ pool bufPool }

type Proc struct {
	world *World
	rank  int
	stash []float32
}

func (p *Proc) Recv(src int) []float32           { return p.world.pool.getF32(p.rank, 8) }
func (p *Proc) Scratch(n int) []float32          { return p.world.pool.getF32(p.rank, n) }
func (p *Proc) Release(buf []float32)            { p.world.pool.putF32(p.rank, buf) }
func (p *Proc) sendOwned(dst int, buf []float32) {}

var sink []float32

// --- defect shape 1: use after Release ---

func useAfterRelease(p *Proc) float32 {
	buf := p.Recv(1)
	x := buf[0]
	p.Release(buf)
	return x + buf[1] // want `use of buf after Release in useAfterRelease`
}

// --- defect shape 2: double Release ---

func doubleRelease(p *Proc) {
	buf := p.Scratch(16)
	p.Release(buf)
	p.Release(buf) // want `double Release of buf in doubleRelease`
}

// --- defect shape 3: leaks on early-return and panic edges ---

func leakEarlyReturn(p *Proc, cond bool) int {
	buf := p.Scratch(8)
	if cond {
		return 0 // want `pooled buffer buf may leak: still owned at return in leakEarlyReturn`
	}
	p.Release(buf)
	return 1
}

func leakOnPanic(p *Proc, n int) {
	buf := p.Recv(0)
	if n < 0 {
		panic("bad n") // want `pooled buffer buf may leak: still owned at panic in leakOnPanic`
	}
	p.Release(buf)
}

// deferredRelease covers both the early panic and the normal return:
// no findings.
func deferredRelease(p *Proc, n int) float32 {
	buf := p.Scratch(n)
	defer p.Release(buf)
	if n > 10 {
		panic("too big")
	}
	return buf[0]
}

// releaseOnEveryPath is clean: each branch settles ownership.
func releaseOnEveryPath(p *Proc, cond bool) {
	buf := p.Recv(2)
	if cond {
		p.Release(buf)
		return
	}
	p.sendOwned(1, buf)
}

// --- defect shape 4: ownership escaping into fields and globals ---

func storeField(p *Proc) {
	buf := p.Recv(2)
	p.stash = buf // want `pooled buffer buf stored into field stash \(escapes ownership tracking\) in storeField`
}

func storeGlobal(p *Proc) {
	sink = p.Recv(3) // want `pooled buffer from Recv stored into global sink \(escapes ownership tracking\) in storeGlobal`
}

type envelope struct{ data []float32 }

func storeComposite(p *Proc) envelope {
	buf := p.Recv(4)
	return envelope{data: buf} // want `pooled buffer buf stored into composite literal \(escapes ownership tracking\) in storeComposite`
}

// --- defect shape 5: sendOwned of a buffer the caller no longer owns ---

func sendUnowned(p *Proc) {
	buf := p.Recv(4)
	p.Release(buf)
	p.sendOwned(1, buf) // want `sendOwned of buf, which the caller no longer owns, in sendUnowned`
}

// --- secondary shapes: overwrite and dropped result ---

func overwrite(p *Proc) {
	buf := p.Scratch(4)
	buf = p.Scratch(8) // want `pooled buffer buf overwritten while still owned in overwrite`
	p.Release(buf)
}

func dropped(p *Proc) {
	p.Recv(6) // want `pooled buffer from Recv is dropped without Release in dropped`
}

// --- pool-level seeds (bufPool.getF32/putF32) ---

func poolLevel(w *World, shard int) {
	b := w.pool.getF32(shard, 32)
	w.pool.putF32(shard, b)
	w.pool.putF32(shard, b) // want `double Release of b in poolLevel`
}

// --- returns-owned inference: recvNew transfers ownership out, so its
// callers are acquire sites too ---

func recvNew(p *Proc, src int) []float32 {
	return p.Recv(src)
}

func inferredLeak(p *Proc) int {
	buf := recvNew(p, 1)
	return len(buf) // want `pooled buffer buf may leak: still owned at return in inferredLeak`
}

func inferredClean(p *Proc) float32 {
	buf := recvNew(p, 2)
	x := buf[0]
	p.Release(buf)
	return x
}

// --- suppression: an intentional ownership transfer carries a reasoned
// annotation ---

func suppressedStash(p *Proc) {
	buf := p.Recv(5)
	//adasum:poolown ok fixture: ownership intentionally parked in the stash for a later step
	p.stash = buf
}

// --- loop shapes: a buffer released every iteration is clean; one
// acquired per iteration and released only after the loop leaks ---

func loopClean(p *Proc, n int) float32 {
	var total float32
	for i := 0; i < n; i++ {
		buf := p.Recv(i)
		total += buf[0]
		p.Release(buf)
	}
	return total
}

func loopReacquire(p *Proc, xs []int) {
	for _, src := range xs {
		buf := p.Recv(src)
		p.Release(buf)
	}
}
