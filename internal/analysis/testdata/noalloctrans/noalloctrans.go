// Package fixture exercises the transitive half of the noalloc
// analyzer (the module pass): a marked function's full call closure
// must be marked, annotated, or provably allocation-free, and
// violations print the call path that reached them.
package fixture

import (
	"math"
	"sort"
)

// --- the two-hop shape: Root → hop1 → hop2, allocation in hop2 ---

//adasum:noalloc
func Root(n int) int {
	return hop1(n)
}

func hop1(n int) int {
	return hop2(n) + 1
}

func hop2(n int) int {
	s := make([]int, n) // want `make allocates in hop2 \(noalloc call path: Root → hop1 → hop2\)`
	return len(s)
}

// --- dynamic calls are flagged at the call site unless vouched for ---

type codec interface{ encode(int) int }

//adasum:noalloc
func RootDyn(c codec, n int) int {
	return c.encode(n) // want `interface method .*codec\.encode cannot be verified allocation-free \(noalloc call path: RootDyn\)`
}

//adasum:noalloc
func RootFuncVal(f func(int) int, n int) int {
	return f(n) // want `function value f cannot be verified allocation-free \(noalloc call path: RootFuncVal\)`
}

//adasum:noalloc
func RootDynVouched(c codec, n int) int {
	//adasum:dyncall ok fixture: every codec implementation is allocation-free by construction
	return c.encode(n)
}

// --- unvetted stdlib reports at the call site; the allowlist does not ---

//adasum:noalloc
func RootExternal(s []int) {
	sort.Ints(s) // want `call to sort\.Ints is not allocation-checked \(noalloc call path: RootExternal → sort\.Ints\)`
}

//adasum:noalloc
func RootMath(x float64) float64 {
	return math.Sqrt(x)
}

// --- an alloc suppression on the call-site line cuts the edge: the
// warmup idiom for lazily-minting calls ---

//adasum:noalloc
func RootWarmup(n int) {
	//adasum:alloc ok fixture: warmup mints once on first use, off the steady-state path
	warmup(n)
}

func warmup(n int) {
	_ = make([]int, n)
}

// --- a marked callee ends the traversal: its own pass checks it ---

//adasum:noalloc
func RootCallsMarked(n int) int {
	return markedLeaf(n)
}

//adasum:noalloc
func markedLeaf(n int) int {
	return n * 2
}
