package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The module-wide call graph behind the interprocedural analyses: every
// function declaration of every loaded module package, with its call
// sites resolved as far as the type information allows. Direct calls
// (package functions, concrete methods — the method-set dispatch the
// typechecker already performed) resolve to their *types.Func; calls
// through interface methods or function values cannot be resolved
// statically and are recorded as dynamic, which the transitive noalloc
// check flags unless an `//adasum:dyncall ok <reason>` annotation
// vouches for every implementation that can flow there.

// callKind classifies one call site.
type callKind int

const (
	// callStatic resolves to a single *types.Func (module or external).
	callStatic callKind = iota
	// callDynamic goes through an interface method or a function value.
	callDynamic
	// callFuncLit invokes a function literal of the same body (go f(),
	// defer f(), (func(){...})()); its statements are already part of
	// the enclosing function's body, so the edge needs no traversal.
	callFuncLit
)

// A callSite is one call expression inside a function body.
type callSite struct {
	pos  token.Pos
	kind callKind
	// callee is set for callStatic.
	callee *types.Func
	// desc names the target for diagnostics: "compress.Codec.Encode"
	// for an interface method, "function value bounds" for a func value.
	desc string
}

// A funcNode is one module function in the call graph.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// calls in source order, excluding calls inside panic(...) argument
	// ranges (never executed in steady state) and calls to builtins or
	// conversions (no function body behind them).
	calls []callSite
}

// A callGraph indexes every function declaration of the given packages.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph indexes pkgs (typically every loaded module package of
// one build configuration).
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: obj, decl: fd, pkg: p}
				if fd.Body != nil {
					node.calls = collectCalls(p, fd.Body)
				}
				g.nodes[obj] = node
			}
		}
	}
	return g
}

// node returns the module declaration of fn, or nil when fn is
// external. Instantiated generic functions resolve to their origin
// declaration. A node with a nil decl.Body is an assembly stub.
func (g *callGraph) node(fn *types.Func) *funcNode {
	if n := g.nodes[fn]; n != nil {
		return n
	}
	return g.nodes[fn.Origin()]
}

// collectCalls gathers the call sites of body in source order. Calls
// within direct panic(...) arguments are skipped — a panic path never
// executes in steady state, matching the intraprocedural exemption.
// Calls inside function literals ARE collected: a closure declared in a
// hot path runs on it (or is handed to something that does), so its
// callees belong to the enclosing function's closure.
func collectCalls(p *Package, body *ast.BlockStmt) []callSite {
	var panicRanges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && p.Info.Uses[id] == types.Universe.Lookup("panic") {
				for _, arg := range call.Args {
					panicRanges = append(panicRanges, posRange{arg.Pos(), arg.End()})
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}

	var sites []callSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inPanic(call.Pos()) {
			return true
		}
		if site, ok := classifyCall(p, call); ok {
			sites = append(sites, site)
		}
		return true
	})
	return sites
}

// classifyCall resolves one call expression. The false return covers
// builtins, conversions, and calls the type info has no answer for
// (files with type errors).
func classifyCall(p *Package, call *ast.CallExpr) (callSite, bool) {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Func:
			return callSite{pos: call.Pos(), kind: callStatic, callee: obj}, true
		case *types.Builtin, *types.TypeName, nil:
			return callSite{}, false
		case *types.Var:
			return callSite{pos: call.Pos(), kind: callDynamic,
				desc: fmt.Sprintf("function value %s", fun.Name)}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			// Method or field selected through a value.
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return callSite{pos: call.Pos(), kind: callDynamic,
						desc: fmt.Sprintf("interface method %s.%s",
							types.TypeString(sel.Recv(), shortQualifier), m.Name())}, true
				}
				return callSite{pos: call.Pos(), kind: callStatic, callee: m}, true
			case types.FieldVal:
				return callSite{pos: call.Pos(), kind: callDynamic,
					desc: fmt.Sprintf("function-typed field %s", fun.Sel.Name)}, true
			}
		}
		// Qualified identifier: pkg.Func, or a conversion pkg.Type(x).
		switch obj := p.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return callSite{pos: call.Pos(), kind: callStatic, callee: obj}, true
		case *types.TypeName, nil:
			return callSite{}, false
		case *types.Var:
			return callSite{pos: call.Pos(), kind: callDynamic,
				desc: fmt.Sprintf("function value %s", fun.Sel.Name)}, true
		}
	case *ast.FuncLit:
		return callSite{pos: call.Pos(), kind: callFuncLit}, true
	}
	// Conversions through type expressions (e.g. []byte(s)), indexed
	// calls of func-typed elements, etc.: conversions carry no body;
	// anything else func-typed is dynamic.
	if tv, ok := p.Info.Types[call.Fun]; ok {
		if tv.IsType() {
			return callSite{}, false
		}
		if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
			return callSite{pos: call.Pos(), kind: callDynamic, desc: "function value"}, true
		}
	}
	return callSite{}, false
}

// shortQualifier renders package names (not paths) in type strings.
func shortQualifier(p *types.Package) string { return p.Name() }

// funcDisplayName renders fn for call-path diagnostics: "name" for a
// package function, "Type.Method" for a method, both prefixed with the
// package name when fn lives outside relativeTo ("comm.Proc.Send").
func funcDisplayName(fn *types.Func, relativeTo *types.Package) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != relativeTo {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// sortedFuncs returns the module functions of g ordered by file
// position — the deterministic iteration order for closure traversal.
func (g *callGraph) sortedFuncs(fset *token.FileSet) []*funcNode {
	out := make([]*funcNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].decl.Pos()), fset.Position(out[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}
