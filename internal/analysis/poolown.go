package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolOwn tracks pooled-buffer ownership through the CFG. The World's
// buffer pool hands out slices under a strict protocol — Recv/Scratch
// return a buffer the caller owns, Release/sendOwned end that
// ownership, and touching a buffer afterwards aliases memory the pool
// may already have handed to another rank. The analyzer runs a forward
// may-dataflow over each function body: every variable assigned from
// an acquire call is tracked through the states owned → released/moved,
// joined by union at control-flow merges, and the five defect shapes
// report where the protocol breaks:
//
//   - use after Release (the buffer may belong to someone else),
//   - double Release (poisons the pool's free list),
//   - leak: still owned at a return or explicit panic edge, with
//     `defer Release` recognized as covering both,
//   - storing an owned buffer into a field, global, slice/map element,
//     channel send, or composite literal (ownership escapes the
//     tracking horizon — annotate where the transfer is intentional),
//   - sendOwned of a buffer the caller no longer owns.
//
// Acquire/release seeds are the comm.Proc API (Recv, RecvMeta,
// Scratch, ScratchMeta, SendRecv, SendRecvMeta / Release, ReleaseMeta,
// sendOwned) and the pool fast paths (bufPool.getF32/getF64 /
// putF32/putF64), plus package-local helpers inferred to return an
// owned buffer: a function whose single []float32/[]float64 result is,
// on every return path, a freshly acquired or still-owned buffer
// transfers ownership to its caller, so its call sites are acquires
// too (the collective.recvNew idiom).
//
// Known blind spots, chosen over false positives: aliasing (`y := x`)
// and closure capture untrack the buffer, and a buffer passed to an
// ordinary function call is assumed consumed by the callee.
// Intentional protocol departures carry `//adasum:poolown ok <reason>`.
var PoolOwn = &Analyzer{
	Name:        "poolown",
	Doc:         "tracks pooled-buffer ownership (acquire→use→release) through the CFG",
	SuppressKey: "poolown",
	DetOnly:     true,
	Run:         runPoolOwn,
}

// ownBits is a variable's may-state: bits accumulate across joins, and
// within one path an acquire/release/move replaces the ownership bits
// while the sticky ownDeferred survives.
type ownBits uint8

const (
	ownOwned ownBits = 1 << iota
	// ownDeferred: a `defer Release(x)` is scheduled, satisfying every
	// later exit, normal or panicking.
	ownDeferred
	ownReleased
	ownMoved
)

type ownState map[*types.Var]ownBits

func cloneState(st ownState) ownState {
	out := make(ownState, len(st))
	for v, b := range st {
		out[v] = b
	}
	return out
}

// joinInto unions src into dst, reporting whether dst changed.
func joinInto(dst, src ownState) bool {
	changed := false
	for v, b := range src {
		if dst[v]|b != dst[v] {
			dst[v] |= b
			changed = true
		}
	}
	return changed
}

type poolEffKind int

const (
	effAcquire poolEffKind = iota
	effRelease
	effMove
)

type poolEffect struct {
	kind poolEffKind
	arg  int // buffer argument index for effRelease/effMove
}

func runPoolOwn(pass *Pass) error {
	a := &poolOwnPkg{pass: pass, inferred: make(map[*types.Func]bool)}
	var fns []*poolFn
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, &poolFn{
				a:      a,
				fd:     fd,
				cfg:    BuildCFG(fd.Body, pass.Info),
				fnName: fd.Name.Name,
			})
		}
	}

	// Infer package-local acquire helpers to a fixpoint: recognizing
	// one returns-owned helper can qualify another that forwards it.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			obj, ok := pass.Info.Defs[f.fd.Name].(*types.Func)
			if !ok || a.inferred[obj] || !ownedResultSig(obj) {
				continue
			}
			returns, owned := 0, 0
			f.analyze(nil, func(ret *ast.ReturnStmt, ok bool) {
				returns++
				if ok {
					owned++
				}
			})
			if returns > 0 && returns == owned {
				a.inferred[obj] = true
				changed = true
			}
		}
	}

	for _, f := range fns {
		f.analyze(f.reportf, nil)
	}
	return nil
}

// ownedResultSig reports whether fn has exactly one result of type
// []float32 or []float64 — the only shape the returns-owned inference
// considers.
func ownedResultSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	sl, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float32 || b.Kind() == types.Float64)
}

type poolOwnPkg struct {
	pass     *Pass
	inferred map[*types.Func]bool
}

// isCommPath matches the package that defines the pool protocol — and
// its fixture stand-ins, which share the import-path suffix.
func isCommPath(path string) bool {
	return path == "internal/comm" || strings.HasSuffix(path, "/internal/comm")
}

// seedEffect classifies call against the pool protocol.
func (a *poolOwnPkg) seedEffect(call *ast.CallExpr) (poolEffect, bool) {
	fn := a.staticCallee(call)
	if fn == nil {
		return poolEffect{}, false
	}
	if a.inferred[fn] || a.inferred[fn.Origin()] {
		return poolEffect{kind: effAcquire}, true
	}
	if fn.Pkg() == nil || !isCommPath(fn.Pkg().Path()) {
		return poolEffect{}, false
	}
	switch recvTypeName(fn) {
	case "Proc":
		switch fn.Name() {
		case "Recv", "RecvMeta", "Scratch", "ScratchMeta", "SendRecv", "SendRecvMeta":
			return poolEffect{kind: effAcquire}, true
		case "Release", "ReleaseMeta":
			return poolEffect{kind: effRelease, arg: 0}, true
		case "sendOwned":
			return poolEffect{kind: effMove, arg: 1}, true
		}
	case "bufPool":
		switch fn.Name() {
		case "getF32", "getF64":
			return poolEffect{kind: effAcquire}, true
		case "putF32", "putF64":
			return poolEffect{kind: effRelease, arg: 1}, true
		}
	}
	return poolEffect{}, false
}

// staticCallee resolves call to a *types.Func for direct function and
// concrete-method calls; nil otherwise.
func (a *poolOwnPkg) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := a.pass.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := a.pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvTypeName returns the name of fn's receiver named type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// poolFn is the dataflow over one function body.
type poolFn struct {
	a      *poolOwnPkg
	fd     *ast.FuncDecl
	cfg    *CFG
	fnName string
}

type reporter func(pos token.Pos, format string, args ...any)

func (f *poolFn) reportf(pos token.Pos, format string, args ...any) {
	f.a.pass.Reportf(pos, format, args...)
}

// analyze runs the fixpoint and then one stable sweep: rep (may be
// nil) receives defects, onReturn (may be nil) is the returns-owned
// inference hook, told for each single-result return whether the value
// carries ownership out.
func (f *poolFn) analyze(rep reporter, onReturn func(*ast.ReturnStmt, bool)) {
	blocks := f.cfg.Reachable()
	entries := make(map[*Block]ownState, len(blocks))
	entries[f.cfg.Entry] = ownState{}
	wl := []*Block{f.cfg.Entry}
	for len(wl) > 0 {
		blk := wl[0]
		wl = wl[1:]
		out := f.transferBlock(blk, cloneState(entries[blk]), nil, nil)
		for _, s := range blk.Succs {
			first := entries[s] == nil
			if first {
				entries[s] = ownState{}
			}
			if joinInto(entries[s], out) || first {
				wl = append(wl, s)
			}
		}
	}
	for _, blk := range blocks {
		st := entries[blk]
		if st == nil {
			st = ownState{}
		}
		out := f.transferBlock(blk, cloneState(st), rep, onReturn)
		if rep == nil {
			continue
		}
		if blk.Panics {
			f.leakCheck(out, f.panicPos(blk), "panic", rep)
		} else if hasExit(blk, f.cfg.Exit) {
			f.leakCheck(out, f.returnPos(blk), "return", rep)
		}
	}
}

func hasExit(blk, exit *Block) bool {
	for _, s := range blk.Succs {
		if s == exit {
			return true
		}
	}
	return false
}

// returnPos anchors a return-path leak: the return statement ending
// the block, or the closing brace for the implicit return.
func (f *poolFn) returnPos(blk *Block) token.Pos {
	if n := len(blk.Nodes); n > 0 {
		if ret, ok := blk.Nodes[n-1].(*ast.ReturnStmt); ok {
			return ret.Pos()
		}
	}
	return f.fd.Body.Rbrace
}

// panicPos anchors a panic-path leak at the panic statement.
func (f *poolFn) panicPos(blk *Block) token.Pos {
	if n := len(blk.Nodes); n > 0 {
		return blk.Nodes[n-1].Pos()
	}
	return f.fd.Body.Rbrace
}

func (f *poolFn) leakCheck(st ownState, pos token.Pos, exit string, rep reporter) {
	var leaked []*types.Var
	for v, bits := range st {
		if bits&ownOwned != 0 && bits&ownDeferred == 0 && bits&ownMoved == 0 {
			leaked = append(leaked, v)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
	for _, v := range leaked {
		rep(pos, "pooled buffer %s may leak: still owned at %s in %s", v.Name(), exit, f.fnName)
	}
}

// transferBlock applies every node of blk to st in order, returning
// the block's exit state.
func (f *poolFn) transferBlock(blk *Block, st ownState, rep reporter, onReturn func(*ast.ReturnStmt, bool)) ownState {
	for _, n := range blk.Nodes {
		f.transferNode(n, st, rep, onReturn)
	}
	return st
}

func (f *poolFn) transferNode(n ast.Node, st ownState, rep reporter, onReturn func(*ast.ReturnStmt, bool)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				f.assignOne(n.Lhs[i], n.Rhs[i], st, rep)
			}
		} else {
			for _, r := range n.Rhs {
				f.scanExpr(r, st, rep)
			}
			for _, l := range n.Lhs {
				f.untrackLhs(l, st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						f.assignOne(vs.Names[i], vs.Values[i], st, rep)
					}
				} else {
					for _, v := range vs.Values {
						f.scanExpr(v, st, rep)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if f.seedCall(call, st, rep, true) {
				return
			}
		}
		f.scanExpr(n.X, st, rep)
	case *ast.DeferStmt:
		if eff, ok := f.a.seedEffect(n.Call); ok && eff.kind == effRelease && eff.arg < len(n.Call.Args) {
			if v := f.trackedVar(n.Call.Args[eff.arg], st); v != nil {
				st[v] |= ownDeferred
				return
			}
		}
		f.scanExpr(n.Call, st, rep)
	case *ast.GoStmt:
		// Ownership handed to a goroutine leaves the tracking horizon.
		f.scanExpr(n.Call.Fun, st, rep)
		for _, arg := range n.Call.Args {
			if v := f.trackedVar(arg, st); v != nil {
				delete(st, v)
				continue
			}
			f.scanExpr(arg, st, rep)
		}
	case *ast.SendStmt:
		f.scanExpr(n.Chan, st, rep)
		if v := f.trackedVar(n.Value, st); v != nil && st[v]&ownOwned != 0 {
			if rep != nil {
				rep(n.Value.Pos(), "pooled buffer %s sent over a channel (ownership escapes tracking) in %s", v.Name(), f.fnName)
			}
			st[v] = st[v]&ownDeferred | ownMoved
			return
		}
		f.scanExpr(n.Value, st, rep)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			qualifies := false
			if v := f.trackedVar(r, st); v != nil {
				bits := st[v]
				switch {
				case bits&ownReleased != 0:
					if rep != nil {
						rep(r.Pos(), "use of %s after Release in %s", v.Name(), f.fnName)
					}
				case bits&ownMoved != 0:
					if rep != nil {
						rep(r.Pos(), "use of %s after ownership transfer in %s", v.Name(), f.fnName)
					}
				case bits&ownOwned != 0:
					// Returning an owned buffer transfers it to the caller.
					st[v] = bits&ownDeferred | ownMoved
					qualifies = true
				}
			} else if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if eff, ok := f.a.seedEffect(call); ok && eff.kind == effAcquire {
					qualifies = true
				} else {
					f.scanExpr(r, st, rep)
				}
			} else {
				f.scanExpr(r, st, rep)
			}
			if onReturn != nil && len(n.Results) == 1 {
				onReturn(n, qualifies)
			}
		}
		if onReturn != nil && len(n.Results) != 1 {
			onReturn(n, false)
		}
	case *RangeIter:
		f.untrackLhs(n.Range.Key, st)
		f.untrackLhs(n.Range.Value, st)
	default:
		if e, ok := n.(ast.Expr); ok {
			f.scanExpr(e, st, rep)
			return
		}
		if s, ok := n.(ast.Stmt); ok {
			// IncDecStmt, EmptyStmt, etc.: scan any expressions inside.
			ast.Inspect(s, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					f.scanExpr(e, st, rep)
					return false
				}
				return true
			})
		}
	}
}

// assignOne handles one lhs := / = rhs pair.
func (f *poolFn) assignOne(lhs, rhs ast.Expr, st ownState, rep reporter) {
	acquire := false
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if eff, ok := f.a.seedEffect(call); ok && eff.kind == effAcquire {
			acquire = true
			// Receiver/args of the acquire still count as uses.
			f.scanExpr(call.Fun, st, rep)
			for _, a := range call.Args {
				f.scanExpr(a, st, rep)
			}
		}
	}

	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			if acquire && rep != nil {
				rep(rhs.Pos(), "pooled buffer from %s is dropped without Release in %s", callName(rhs), f.fnName)
			} else if !acquire {
				f.scanExpr(rhs, st, rep)
			}
			return
		}
		if v := f.localVar(id); v != nil {
			old := st[v]
			if old&ownOwned != 0 && old&ownDeferred == 0 && rep != nil {
				rep(lhs.Pos(), "pooled buffer %s overwritten while still owned in %s", v.Name(), f.fnName)
			}
			if acquire {
				st[v] = ownOwned
				return
			}
			// Alias or unrelated value: the old buffer (and any tracked
			// rhs alias source) leaves the tracking horizon.
			f.scanExpr(rhs, st, rep)
			delete(st, v)
			if rv := f.trackedVar(rhs, st); rv != nil {
				delete(st, rv)
			}
			return
		}
	}

	// Compound lhs: field, global, slice/map element, pointer target.
	dest := lhsDescription(lhs, f.a.pass.Info)
	if dest != "" {
		if acquire {
			if rep != nil {
				rep(lhs.Pos(), "pooled buffer from %s stored into %s (escapes ownership tracking) in %s", callName(rhs), dest, f.fnName)
			}
			return
		}
		if rv := f.trackedVar(rhs, st); rv != nil && st[rv]&ownOwned != 0 {
			if rep != nil {
				rep(lhs.Pos(), "pooled buffer %s stored into %s (escapes ownership tracking) in %s", rv.Name(), dest, f.fnName)
			}
			st[rv] = st[rv]&ownDeferred | ownMoved
			return
		}
	}
	f.scanExpr(rhs, st, rep)
	if !acquire {
		// Index/selector expressions on the lhs still read their base.
		if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
			f.scanExpr(lhs, st, rep)
		}
	}
}

// seedCall applies a statement-level protocol call to st; false means
// the call is not a seed and the caller should scan it generically.
func (f *poolFn) seedCall(call *ast.CallExpr, st ownState, rep reporter, stmtLevel bool) bool {
	eff, ok := f.a.seedEffect(call)
	if !ok || (eff.kind != effAcquire && eff.arg >= len(call.Args)) {
		return false
	}
	switch eff.kind {
	case effAcquire:
		if stmtLevel && rep != nil {
			rep(call.Pos(), "pooled buffer from %s is dropped without Release in %s", callName(call), f.fnName)
		}
		f.scanExpr(call.Fun, st, rep)
		for _, a := range call.Args {
			f.scanExpr(a, st, rep)
		}
	case effRelease:
		for i, a := range call.Args {
			if i == eff.arg {
				continue
			}
			f.scanExpr(a, st, rep)
		}
		f.scanExpr(call.Fun, st, rep)
		arg := call.Args[eff.arg]
		v := f.trackedVar(arg, st)
		if v == nil {
			f.scanExpr(arg, st, rep)
			return true
		}
		bits := st[v]
		switch {
		case bits&ownReleased != 0:
			if rep != nil {
				rep(call.Pos(), "double Release of %s in %s", v.Name(), f.fnName)
			}
		case bits&ownMoved != 0:
			if rep != nil {
				rep(call.Pos(), "Release of %s after ownership transfer in %s", v.Name(), f.fnName)
			}
		}
		st[v] = bits&ownDeferred | ownReleased
	case effMove:
		for i, a := range call.Args {
			if i == eff.arg {
				continue
			}
			f.scanExpr(a, st, rep)
		}
		f.scanExpr(call.Fun, st, rep)
		arg := call.Args[eff.arg]
		if v := f.trackedVar(arg, st); v != nil {
			bits := st[v]
			if bits&ownOwned == 0 && rep != nil {
				rep(call.Pos(), "sendOwned of %s, which the caller no longer owns, in %s", v.Name(), f.fnName)
			}
			st[v] = bits&ownDeferred | ownMoved
			return true
		}
		// A direct acquire as the argument is a clean handoff; anything
		// else is outside the tracking horizon.
		if call2, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if eff2, ok := f.a.seedEffect(call2); ok && eff2.kind == effAcquire {
				return true
			}
		}
		f.scanExpr(arg, st, rep)
	}
	return true
}

// scanExpr walks an expression for generic effects: uses of released
// or moved buffers, owned buffers escaping into composite literals,
// and closures capturing tracked buffers (which untracks them).
func (f *poolFn) scanExpr(e ast.Expr, st ownState, rep reporter) {
	if e == nil {
		return
	}
	// Idents consumed by an enclosing construct (a composite-literal
	// store) must not double-report as plain uses when the walk
	// descends to them.
	consumed := map[ast.Expr]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			f.untrackCaptured(n, st)
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				expr := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					expr = kv.Value
				}
				if v := f.trackedVar(expr, st); v != nil && st[v]&ownOwned != 0 {
					if rep != nil {
						rep(expr.Pos(), "pooled buffer %s stored into composite literal (escapes ownership tracking) in %s", v.Name(), f.fnName)
					}
					st[v] = st[v]&ownDeferred | ownMoved
					consumed[ast.Unparen(expr)] = true
				}
			}
			return true
		case *ast.Ident:
			if consumed[n] {
				return true
			}
			v, _ := f.a.pass.Info.Uses[n].(*types.Var)
			if v == nil {
				return true
			}
			bits, tracked := st[v]
			if !tracked {
				return true
			}
			if bits&ownReleased != 0 && rep != nil {
				rep(n.Pos(), "use of %s after Release in %s", v.Name(), f.fnName)
			} else if bits&ownMoved != 0 && bits&ownOwned == 0 && rep != nil {
				rep(n.Pos(), "use of %s after ownership transfer in %s", v.Name(), f.fnName)
			}
		}
		return true
	})
}

// untrackCaptured removes every tracked variable referenced inside a
// function literal: closure capture is an alias the flow cannot see
// through.
func (f *poolFn) untrackCaptured(lit *ast.FuncLit, st ownState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.a.pass.Info.Uses[id].(*types.Var); ok {
				delete(st, v)
			}
		}
		return true
	})
}

// trackedVar resolves e to a variable currently in st.
func (f *poolFn) trackedVar(e ast.Expr, st ownState) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := f.a.pass.Info.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	if _, ok := st[v]; !ok {
		return nil
	}
	return v
}

// localVar resolves a plain-identifier assignment target to a
// function-local variable; package-level vars return nil so the store
// is treated as an escape.
func (f *poolFn) localVar(id *ast.Ident) *types.Var {
	info := f.a.pass.Info
	v, _ := info.Defs[id].(*types.Var)
	if v == nil {
		v, _ = info.Uses[id].(*types.Var)
	}
	if v == nil || v.IsField() {
		return nil
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level: a store here escapes
	}
	return v
}

// untrackLhs drops the variable behind an assignment target.
func (f *poolFn) untrackLhs(e ast.Expr, st ownState) {
	if e == nil {
		return
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	info := f.a.pass.Info
	if v, ok := info.Defs[id].(*types.Var); ok {
		delete(st, v)
		return
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		delete(st, v)
	}
}

// lhsDescription names a compound assignment target for diagnostics;
// "" means the target is a plain local and not an escape.
func lhsDescription(lhs ast.Expr, info *types.Info) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "field " + l.Sel.Name
	case *ast.IndexExpr:
		return "an element"
	case *ast.StarExpr:
		return "a pointer target"
	case *ast.Ident:
		if v, ok := info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "global " + v.Name()
		}
	}
	return ""
}

// callName renders the callee of e (a call expression) for messages.
func callName(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "call"
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
