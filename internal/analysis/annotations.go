package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar. All directives are line comments beginning
// with `//adasum:` (no space after // — machine directives follow the
// //go:build convention):
//
//	//adasum:noalloc
//	    Marks the function whose declaration it documents (or shares a
//	    line with) as a zero-allocation hot path; the noalloc analyzer
//	    then flags every allocation-introducing construct in its body.
//
//	//adasum:nondet ok <reason>
//	//adasum:wallclock ok <reason>
//	//adasum:global ok <reason>
//	//adasum:alloc ok <reason>
//	//adasum:dyncall ok <reason>
//	//adasum:poolown ok <reason>
//	    Suppresses the corresponding analyzer (detmap, wallclock,
//	    globalmut, noalloc — with dyncall silencing the transitive
//	    noalloc check at an unresolvable interface or function-value
//	    call site, and poolown silencing the buffer-ownership checker)
//	    on the directive's own line and, when the comment stands alone
//	    on its line, on the line below it. The reason is mandatory: an
//	    unexplained suppression is itself a finding.
//
// Directives that are misspelled, carry an unknown key, or omit the
// reason are reported as "annotation" diagnostics rather than silently
// ignored, and suppressions that no analyzer consumed under any build
// configuration are reported as stale by the driver.

// suppressionKeys are the directive keys that silence an analyzer.
var suppressionKeys = map[string]bool{
	"nondet":    true,
	"wallclock": true,
	"global":    true,
	"alloc":     true,
	"dyncall":   true,
	"poolown":   true,
}

// A Directive is one parsed //adasum: annotation.
type Directive struct {
	Key    string // "noalloc", or a suppression key
	Reason string
	Pos    token.Position
	// lines this directive covers: its own line, plus the next line
	// when the comment stands alone (no code on its line).
	lines []int
	used  bool
}

// Annotations holds every directive of one package's files plus any
// malformed-directive diagnostics found while collecting them.
type Annotations struct {
	// all preserves file order for stable stale-annotation reporting.
	all []*Directive
	// byKey: key -> filename -> covered line -> directive.
	byKey     map[string]map[string]map[int]*Directive
	Malformed []Diagnostic
}

// CollectAnnotations parses the //adasum: directives of files. config
// tags the malformed-directive diagnostics.
func CollectAnnotations(fset *token.FileSet, files []*ast.File, config string) *Annotations {
	a := &Annotations{byKey: make(map[string]map[string]map[int]*Directive)}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a.collect(fset, c, code, config)
			}
		}
	}
	return a
}

// codeLines returns the set of lines of f that contain any non-comment
// token — used to tell a trailing directive (covers its own line) from
// a standalone one (covers the next line too).
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		if n.End().IsValid() {
			lines[fset.Position(n.End()).Line] = true
		}
		return true
	})
	return lines
}

func (a *Annotations) collect(fset *token.FileSet, c *ast.Comment, code map[int]bool, config string) {
	const prefix = "//adasum:"
	if !strings.HasPrefix(c.Text, prefix) {
		return
	}
	pos := fset.Position(c.Pos())
	body := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
	fields := strings.Fields(body)
	malformed := func(format string, args ...any) {
		a.Malformed = append(a.Malformed, Diagnostic{
			Pos: pos, Analyzer: "annotation", Config: config,
			Message: fmt.Sprintf(format, args...),
		})
	}
	if len(fields) == 0 {
		malformed("empty //adasum: directive")
		return
	}
	key := fields[0]
	switch {
	case key == "noalloc":
		if len(fields) > 1 {
			malformed("//adasum:noalloc takes no arguments (got %q)", strings.Join(fields[1:], " "))
			return
		}
		a.add(&Directive{Key: key, Pos: pos, lines: []int{pos.Line}})
	case suppressionKeys[key]:
		if len(fields) < 2 || fields[1] != "ok" {
			malformed("//adasum:%s must be followed by `ok <reason>`", key)
			return
		}
		rest := strings.TrimSpace(strings.TrimPrefix(body, key))
		reason := strings.TrimSpace(strings.TrimPrefix(rest, "ok"))
		if reason == "" {
			malformed("//adasum:%s ok requires a reason", key)
			return
		}
		lines := []int{pos.Line}
		if !code[pos.Line] {
			lines = append(lines, pos.Line+1)
		}
		a.add(&Directive{Key: key, Reason: reason, Pos: pos, lines: lines})
	default:
		malformed("unknown //adasum: directive %q (want noalloc, nondet, wallclock, global, alloc, dyncall, poolown)", key)
	}
}

func (a *Annotations) add(d *Directive) {
	a.all = append(a.all, d)
	perFile := a.byKey[d.Key]
	if perFile == nil {
		perFile = make(map[string]map[int]*Directive)
		a.byKey[d.Key] = perFile
	}
	perLine := perFile[d.Pos.Filename]
	if perLine == nil {
		perLine = make(map[int]*Directive)
		perFile[d.Pos.Filename] = perLine
	}
	for _, ln := range d.lines {
		perLine[ln] = d
	}
}

// suppress reports whether a directive with key covers (file, line),
// marking it used.
func (a *Annotations) suppress(key, file string, line int) bool {
	if d := a.byKey[key][file][line]; d != nil {
		d.used = true
		return true
	}
	return false
}

// NoallocAt returns the noalloc directive covering (file, line), if
// any, marking it used.
func (a *Annotations) NoallocAt(file string, line int) *Directive {
	if d := a.byKey["noalloc"][file][line]; d != nil {
		d.used = true
		return d
	}
	return nil
}

// Directives returns every well-formed directive, in file order.
func (a *Annotations) Directives() []*Directive { return a.all }

// MergeAnnotations combines per-package annotation indexes into one
// module-wide index for the module-scoped analyzers. The Directive
// pointers are shared, not copied, so a suppression consumed through
// the merged view still marks the original directive used for the
// driver's stale-annotation check.
func MergeAnnotations(as ...*Annotations) *Annotations {
	m := &Annotations{byKey: make(map[string]map[string]map[int]*Directive)}
	for _, a := range as {
		if a == nil {
			continue
		}
		for _, d := range a.all {
			m.add(d)
		}
		m.Malformed = append(m.Malformed, a.Malformed...)
	}
	return m
}

// Used reports whether the directive suppressed at least one finding
// (or, for noalloc, marked at least one checked function).
func (d *Directive) Used() bool { return d.used }
