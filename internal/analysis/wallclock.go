package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids ambient time and ambient randomness in the
// deterministic packages. The simulated fabric's virtual clocks
// (simnet cost models threaded through comm.Proc) are the only
// legitimate time source — a single time.Now or timer turns
// SimSeconds, overlap schedules, and fail-at deadlines into functions
// of host load. Likewise the global math/rand generators are seeded
// from runtime entropy; randomness must flow from an explicitly seeded
// rand.New(rand.NewSource(seed)) (or the splitmix64 mixer in
// simnet/faults.go) so every run replays. cmd/ binaries and _test.go
// files are outside the analyzer's scope.
var WallClock = &Analyzer{
	Name:        "wallclock",
	Doc:         "forbids wall-clock time and unseeded global randomness in deterministic packages",
	SuppressKey: "wallclock",
	DetOnly:     true,
	Run:         runWallClock,
}

// wallClockFuncs are the time-package functions that read or wait on
// the wall clock. Deterministic constructors (time.Date, time.Unix,
// time.ParseDuration) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// seededRandCtors are the math/rand and math/rand/v2 constructors that
// take an explicit seed or source; everything else at package level
// draws from the shared, runtime-seeded generator.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.Info.Selections[sel] != nil {
				return true // method or field selection, not a package symbol
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic packages must use the simnet virtual clock (or annotate //adasum:wallclock ok <reason>)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[fn.Name()] {
					pass.Reportf(sel.Pos(), "%s.%s draws from the runtime-seeded global generator; use an explicitly seeded rand.New(rand.NewSource(seed)) (or annotate //adasum:wallclock ok <reason>)", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
