package analysis

import (
	"go/types"
	"testing"
)

func TestIsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"repro/internal/comm", true},
		{"repro/internal/adasum", true},
		{"repro/internal/simnet", true},
		{"internal/comm", true},
		{"repro/internal/tensor", false},
		{"repro/internal/commx", false},
		{"repro/cmd/adasum-vet", false},
		{"repro/internal/comm/sub", false},
		{"fixture/internal/comm", true},
	} {
		if got := IsDeterministic(tc.path); got != tc.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestLoaderCrossArch pins the 386 leg of the config matrix: changing
// GOARCH must retag the build context (dropping the amd64 feature tags
// and the register-ABI experiment) or stdlib typechecking fails inside
// internal/abi.
func TestLoaderCrossArch(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root, Config{Name: "386", GOARCH: "386", Tags: []string{"noasm"}})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.Load(ld.modPath + "/internal/tensor")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Dot") == nil {
		t.Error("tensor.Dot missing from the 386 typecheck")
	}
	// Word width is the point of the 386 leg: int must be 4 bytes.
	if s := ld.sizes.Sizeof(types.Typ[types.Int]); s != 4 {
		t.Errorf("386 loader sizes int at %d bytes, want 4", s)
	}
}

// TestRepoIsClean runs the full suite — per-package passes over every
// deterministic package plus the module passes (transitive noalloc)
// over the whole loaded module — under the default configuration: the
// committed tree must produce zero diagnostics, so a violation
// introduced without running adasum-vet still fails `go test`.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root, Config{Name: "default"})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ld.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	var analyze []*Package
	for _, path := range paths {
		if !IsDeterministic(path) {
			continue
		}
		pkg, err := ld.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		analyze = append(analyze, pkg)
	}
	if len(analyze) < 8 {
		t.Fatalf("only %d deterministic packages found; the detSuffixes list and the module tree have diverged", len(analyze))
	}
	// Load the remaining module packages too: the noalloc closure must
	// be able to follow calls out of the deterministic core.
	for _, path := range paths {
		if _, err := ld.Load(path); err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
	}
	diags, _, err := RunModule(analyze, ld.LoadedModulePackages(), Config{Name: "default"}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
