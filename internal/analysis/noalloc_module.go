package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// The module half of the noalloc analyzer: the `//adasum:noalloc`
// property is transitive. A marked function may only call
//
//   - other marked functions (checked by their own intraprocedural
//     pass),
//   - assembly stubs (no Go body to allocate in),
//   - standard-library functions from the allocation-free allowlist
//     below,
//   - unmarked module functions that the closure walk can prove clean:
//     their bodies are probed with the same intraprocedural scan, and
//     their own callees checked recursively.
//
// Everything else is a finding, attributed to the call path that
// reached it from a marked root: an allocation inside an unmarked
// callee reports at the offending construct with the path appended
// (`make allocates in slot (noalloc call path: Engine.Step → launch →
// slot)`), an unresolvable interface or function-value call reports at
// the call site under the "dyncall" suppression key, and a call into
// unvetted stdlib reports at the call site under "alloc".
//
// Suppression is edge-granular: an `//adasum:alloc ok <reason>` on a
// call-site line cuts that edge out of the closure (the idiom for
// warmup paths that mint on first use), and an `//adasum:dyncall ok
// <reason>` vouches for every implementation that can flow into a
// dynamic call site.

// noallocExternAllow lists standard-library packages whose exported
// functions and methods are accepted as allocation-free leaves of a
// noalloc closure. Deliberately small: fmt and errors are handled by
// the intraprocedural scan, and anything not listed reports at the
// call site (suppressible with a reasoned `//adasum:alloc ok`).
var noallocExternAllow = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"runtime":     true,
}

func runNoAllocModule(mp *ModulePass) error {
	analyzeSet := make(map[string]bool, len(mp.Analyze))
	for _, p := range mp.Analyze {
		analyzeSet[p.Path] = true
	}
	c := &noallocClosure{
		mp:      mp,
		g:       buildCallGraph(mp.All),
		checked: make(map[string]bool),
	}
	for _, n := range c.g.sortedFuncs(mp.Fset) {
		if !analyzeSet[n.pkg.Path] || n.decl.Body == nil || !c.marked(n) {
			continue
		}
		// The root's own body is covered by the per-package pass; the
		// closure walk starts at its call sites.
		c.checked[funcKey(n)] = true
		c.checkCalls(n, []string{funcDisplayName(n.fn, n.pkg.Types)})
	}
	return nil
}

type noallocClosure struct {
	mp *ModulePass
	g  *callGraph
	// checked guards against both cycles and re-probing a helper shared
	// by several marked roots: each function's body and call sites are
	// inspected once, attributed to the first (deterministically
	// ordered) path that reached it. Keyed by position-independent
	// identity so the same helper reached via a generic instantiation
	// and its origin dedupes.
	checked map[string]bool
}

func funcKey(n *funcNode) string {
	return n.pkg.Path + "." + n.fn.FullName()
}

func (c *noallocClosure) marked(n *funcNode) bool {
	return isNoallocMarked(c.mp.Fset, c.mp.Annot, n.decl)
}

// checkCalls vets every call site of node, where path names the chain
// of functions from a marked root to node inclusive.
func (c *noallocClosure) checkCalls(node *funcNode, path []string) {
	rel := node.pkg.Types
	for _, site := range node.calls {
		switch site.kind {
		case callFuncLit:
			// The literal's body is part of node's own scan.
			continue
		case callDynamic:
			c.mp.ReportfKey("dyncall", site.pos,
				"%s cannot be verified allocation-free (noalloc call path: %s)",
				site.desc, strings.Join(path, " → "))
		case callStatic:
			callee := c.g.node(site.callee)
			if callee == nil {
				// External (standard library): allowlisted packages are
				// accepted; fmt/errors.New are the intraprocedural
				// scan's findings, not ours.
				pkg := site.callee.Pkg()
				if pkg == nil || noallocExternAllow[pkg.Path()] {
					continue
				}
				if pkg.Path() == "fmt" || (pkg.Path() == "errors" && site.callee.Name() == "New") {
					continue
				}
				c.mp.ReportfKey("alloc", site.pos,
					"call to %s is not allocation-checked (noalloc call path: %s)",
					funcDisplayName(site.callee, rel),
					strings.Join(append(path, funcDisplayName(site.callee, rel)), " → "))
				continue
			}
			if callee.decl.Body == nil || c.marked(callee) {
				// Assembly stub, or a marked function with its own pass.
				continue
			}
			// An alloc suppression on the call-site line cuts the edge:
			// the warmup idiom for lazily-minting calls.
			pos := c.mp.Fset.Position(site.pos)
			if c.mp.Annot.suppress("alloc", pos.Filename, pos.Line) {
				continue
			}
			c.probe(callee, append(path, funcDisplayName(callee.fn, rel)))
		}
	}
}

// probe scans the body of an unmarked function reached from a marked
// root, reporting its allocation-introducing constructs with the call
// path appended, then recurses into its own call sites.
func (c *noallocClosure) probe(node *funcNode, path []string) {
	key := funcKey(node)
	if c.checked[key] {
		return
	}
	c.checked[key] = true
	pathStr := strings.Join(path, " → ")
	w := &noallocWalk{
		info: node.pkg.Info,
		pkg:  node.pkg.Types,
		fn:   node.decl,
		report: func(pos token.Pos, format string, args ...any) {
			c.mp.ReportfKey("alloc", pos,
				"%s (noalloc call path: %s)", fmt.Sprintf(format, args...), pathStr)
		},
	}
	w.walk()
	c.checkCalls(node, path)
}
