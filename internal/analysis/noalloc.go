package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated `//adasum:noalloc` (in their doc
// comment or on their declaration line) for allocation-introducing
// constructs. These are the steady-state hot paths the bench gate pins
// at 0 allocs/op — the collectives, the overlap engine step, the pool
// get/put fast paths, the codec encode/decode loops — where a single
// make, boxing conversion, or fmt call silently re-introduces per-op
// garbage that only shows up when the benchmark regresses.
//
// Flagged constructs: make/new/append, slice and map composite
// literals, &composite literals, variable-capturing closures,
// go statements, string concatenation and string<->[]byte/[]rune
// conversions, interface boxing of non-pointer values (call arguments,
// assignments, returns, explicit conversions), and calls into fmt and
// errors.New.
//
// The check is a conservative overapproximation of the escape
// analysis the compiler actually performs: a flagged construct MAY
// stay on the stack (e.g. a non-escaping make with constant size).
// Sites that the benchmarks prove allocation-free — or that only run
// off the steady-state path, like pool misses that mint — carry an
// `//adasum:alloc ok <reason>` annotation. Constructs inside a direct
// panic(...) argument are exempt automatically: a panic path never
// executes in steady state.
var NoAlloc = &Analyzer{
	Name:        "noalloc",
	Doc:         "flags allocation-introducing constructs in //adasum:noalloc functions and their full call closure",
	SuppressKey: "alloc",
	Run:         runNoAlloc,
	ModuleRun:   runNoAllocModule,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoallocMarked(pass.Fset, pass.Annot, fd) {
				continue
			}
			w := &noallocWalk{info: pass.Info, pkg: pass.Pkg, fn: fd, report: pass.Reportf}
			w.walk()
		}
	}
	return nil
}

// isNoallocMarked reports whether fd carries the //adasum:noalloc
// directive, probing its declaration line and every doc-comment line
// (and marking the directive used).
func isNoallocMarked(fset *token.FileSet, annot *Annotations, fd *ast.FuncDecl) bool {
	probe := func(p token.Pos) bool {
		pos := fset.Position(p)
		return annot.NoallocAt(pos.Filename, pos.Line) != nil
	}
	if probe(fd.Pos()) {
		return true
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if probe(c.Pos()) {
				return true
			}
		}
	}
	return false
}

// noallocWalk is the intraprocedural allocation scan of one function
// body. It reports through a callback so the same walk serves two
// masters: the per-package pass (report = Pass.Reportf, honoring
// suppressions) and the module pass's probe of unmarked callees
// (report = collect, findings attributed to the call path that reached
// the function).
type noallocWalk struct {
	info   *types.Info
	pkg    *types.Package
	fn     *ast.FuncDecl
	report func(pos token.Pos, format string, args ...any)
	// panicArgs are the argument ranges of direct panic(...) calls;
	// constructs inside them are exempt (never executed in steady
	// state).
	panicArgs []posRange
}

func (w *noallocWalk) typeOf(e ast.Expr) types.Type {
	if w.info == nil {
		return nil
	}
	return w.info.TypeOf(e)
}

type posRange struct{ lo, hi token.Pos }

func (w *noallocWalk) walk() {
	// Prepass: collect panic(...) argument ranges.
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && w.info.Uses[id] == types.Universe.Lookup("panic") {
				for _, arg := range call.Args {
					w.panicArgs = append(w.panicArgs, posRange{arg.Pos(), arg.End()})
				}
			}
		}
		return true
	})
	ast.Inspect(w.fn.Body, w.visit)
	w.checkReturns()
}

func (w *noallocWalk) exempt(pos token.Pos) bool {
	for _, r := range w.panicArgs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

func (w *noallocWalk) reportf(pos token.Pos, format string, args ...any) {
	if w.exempt(pos) {
		return
	}
	w.report(pos, format, args...)
}

func (w *noallocWalk) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		w.visitCall(n)
	case *ast.CompositeLit:
		w.visitCompositeLit(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.reportf(n.Pos(), "&composite literal escapes to the heap in %s", w.fn.Name.Name)
			}
		}
	case *ast.FuncLit:
		if v := w.capturedVar(n); v != nil {
			w.reportf(n.Pos(), "closure capturing %s allocates in %s", v.Name(), w.fn.Name.Name)
		}
	case *ast.GoStmt:
		w.reportf(n.Pos(), "go statement allocates a goroutine in %s", w.fn.Name.Name)
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := w.typeOf(n); t != nil && isString(t) {
				w.reportf(n.Pos(), "string concatenation allocates in %s", w.fn.Name.Name)
			}
		}
	case *ast.AssignStmt:
		for i := range n.Lhs {
			if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
				if lt := w.typeOf(n.Lhs[i]); lt != nil {
					w.checkBoxing(n.Rhs[i], lt, "assignment")
				}
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			if lt := w.typeOf(n.Type); lt != nil {
				for _, v := range n.Values {
					w.checkBoxing(v, lt, "assignment")
				}
			}
		}
	}
	return true
}

func (w *noallocWalk) visitCall(call *ast.CallExpr) {
	// Builtins and conversions first.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if w.visitBuiltinOrConv(call, fun.Name, w.info.Uses[fun]) {
			return
		}
	case *ast.SelectorExpr:
		if obj := w.info.Uses[fun.Sel]; obj != nil && w.info.Selections[fun] == nil {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
				switch path := fn.Pkg().Path(); {
				case path == "fmt":
					w.reportf(call.Pos(), "fmt.%s allocates in %s", fn.Name(), w.fn.Name.Name)
					return
				case path == "errors" && fn.Name() == "New":
					w.reportf(call.Pos(), "errors.New allocates in %s", w.fn.Name.Name)
					return
				}
			}
		}
	}
	// Conversion via qualified or local type name, e.g. string(b).
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		w.visitConversion(call, tv.Type)
		return
	}
	sig, ok := w.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	w.checkCallBoxing(call, sig)
}

// visitBuiltinOrConv handles ident-called builtins and conversions;
// reports true when the call needs no further inspection.
func (w *noallocWalk) visitBuiltinOrConv(call *ast.CallExpr, name string, obj types.Object) bool {
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		switch name {
		case "make":
			w.reportf(call.Pos(), "make allocates in %s", w.fn.Name.Name)
		case "new":
			w.reportf(call.Pos(), "new allocates in %s", w.fn.Name.Name)
		case "append":
			w.reportf(call.Pos(), "append may grow its backing array in %s", w.fn.Name.Name)
		}
		return true
	}
	if tn, isType := obj.(*types.TypeName); isType {
		w.visitConversion(call, tn.Type())
		return true
	}
	return false
}

// visitConversion flags conversions that copy or box: string <->
// []byte/[]rune, and concrete-to-interface.
func (w *noallocWalk) visitConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := w.typeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		w.reportf(call.Pos(), "[]byte/[]rune-to-string conversion allocates in %s", w.fn.Name.Name)
	case isByteOrRuneSlice(to) && isString(from):
		w.reportf(call.Pos(), "string-to-slice conversion allocates in %s", w.fn.Name.Name)
	default:
		w.checkBoxing(call.Args[0], to, "conversion")
	}
}

func (w *noallocWalk) visitCompositeLit(lit *ast.CompositeLit) {
	t := w.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.reportf(lit.Pos(), "slice literal allocates in %s", w.fn.Name.Name)
	case *types.Map:
		w.reportf(lit.Pos(), "map literal allocates in %s", w.fn.Name.Name)
	}
	// Struct and array value literals live on the stack unless their
	// address escapes, which the &lit case catches.
}

// checkCallBoxing flags interface boxing introduced at a call site:
// concrete non-pointer arguments passed to interface parameters, and
// the slice allocated for non-spread variadic calls.
func (w *noallocWalk) checkCallBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			last := params.At(n - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // spread: the slice passes through
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt != nil {
			w.checkBoxing(arg, pt, "argument")
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= n {
		w.reportf(call.Pos(), "variadic call allocates its ... slice in %s", w.fn.Name.Name)
	}
}

// checkReturns flags boxing at return statements of the annotated
// function.
func (w *noallocWalk) checkReturns() {
	results := w.fnResults()
	if results == nil {
		return
	}
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns have their own signature
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != results.Len() {
			return true
		}
		for i, res := range ret.Results {
			w.checkBoxing(res, results.At(i).Type(), "return")
		}
		return true
	})
}

func (w *noallocWalk) fnResults() *types.Tuple {
	obj, ok := w.info.Defs[w.fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	return obj.Type().(*types.Signature).Results()
}

// checkBoxing reports when expr (a concrete, non-pointer-shaped,
// non-constant value) is converted to the interface type dst.
func (w *noallocWalk) checkBoxing(expr ast.Expr, dst types.Type, context string) {
	if !types.IsInterface(dst) {
		return
	}
	tv, ok := w.info.Types[expr]
	if !ok || tv.Value != nil || tv.Type == nil {
		return // untyped constants box via the runtime's static cells
	}
	src := tv.Type
	if types.IsInterface(src) || isPointerShaped(src) || isUntypedNil(src) {
		return
	}
	w.reportf(expr.Pos(), "%s boxes %s into %s (allocates) in %s",
		context, types.TypeString(src, types.RelativeTo(w.pkg)),
		types.TypeString(dst, types.RelativeTo(w.pkg)), w.fn.Name.Name)
}

// capturedVar returns a variable the closure captures from its
// enclosing function, or nil. Non-capturing closures compile to static
// functions and do not allocate.
func (w *noallocWalk) capturedVar(lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Captured: declared inside the enclosing function but outside
		// the literal itself (package-level vars are shared, not
		// captured).
		if pos >= w.fn.Pos() && pos < w.fn.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			captured = v
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isPointerShaped reports whether values of t fit the interface data
// word without an allocation: pointers, channels, maps, funcs, and
// unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
