package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Config is one build configuration to analyze under. Tag-gated files
// (noasm fallbacks, 386-only widths) carry the same invariants as the
// default build, so the driver runs every analyzer once per Config.
type Config struct {
	Name   string
	GOARCH string   // empty: the host GOARCH
	Tags   []string // extra build tags (e.g. "noasm")
}

// Configs is the build-configuration matrix adasum-vet analyzes: the
// native build, the pure-Go fallback (noasm tag), and the 32-bit leg
// the CI matrix ships.
func Configs() []Config {
	return []Config{
		{Name: "default"},
		{Name: "noasm", Tags: []string{"noasm"}},
		{Name: "386", GOARCH: "386", Tags: []string{"noasm"}},
	}
}

// A Package is one typechecked module package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader typechecks the module's packages (and, transitively, their
// standard-library imports — from GOROOT source, since the module pins
// zero external dependencies) under one build Config.
type Loader struct {
	cfg     Config
	ctx     build.Context
	fset    *token.FileSet
	modPath string
	modRoot string
	sizes   types.Sizes

	std map[string]*types.Package // import-path cache for dependencies
	mod map[string]*Package       // module packages, with AST + Info
}

// NewLoader returns a Loader for the module rooted at modRoot.
func NewLoader(modRoot string, cfg Config) (*Loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	ctx.BuildTags = append([]string{}, cfg.Tags...)
	if cfg.GOARCH != "" && cfg.GOARCH != ctx.GOARCH {
		// Changing GOARCH invalidates the host's precomputed tool tags:
		// drop the arch feature tags (amd64.v1, ...) and the
		// register-ABI experiment, which only a handful of 64-bit
		// targets enable. The remaining experiment tags are
		// arch-independent in this toolchain.
		retag := ctx.ToolTags[:0:0]
		for _, t := range ctx.ToolTags {
			if strings.HasPrefix(t, ctx.GOARCH+".") || t == "goexperiment.regabiargs" || t == "goexperiment.regabiwrappers" {
				continue
			}
			retag = append(retag, t)
		}
		ctx.ToolTags = retag
		ctx.GOARCH = cfg.GOARCH
	}
	goarch := ctx.GOARCH
	sizes := types.SizesFor("gc", goarch)
	if sizes == nil {
		return nil, fmt.Errorf("analysis: unknown GOARCH %q", goarch)
	}
	return &Loader{
		cfg:     cfg,
		ctx:     ctx,
		fset:    token.NewFileSet(),
		modPath: modPath,
		modRoot: modRoot,
		sizes:   sizes,
		std:     make(map[string]*types.Package),
		mod:     make(map[string]*Package),
	}, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
}

// ModulePackages lists every package directory of the module as an
// import path, sorted. Directories named testdata, hidden directories,
// and directories without buildable (non-test) Go files are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := l.ctx.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(l.modRoot, path)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.modPath)
			} else {
				paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

// Load returns the typechecked module package at the given import
// path, parsing and checking it (and any dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.mod[path]; ok {
		return p, nil
	}
	tp, err := l.importPkg(path)
	if err != nil {
		return nil, err
	}
	p := l.mod[path]
	if p == nil || p.Types != tp {
		return nil, fmt.Errorf("analysis: %s did not load as a module package", path)
	}
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.importPkg(path)
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.std[path]; ok {
		return p, nil
	}
	if p, ok := l.mod[path]; ok {
		return p.Types, nil
	}
	dir, inModule, err := l.locate(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: locate %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if inModule {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		// Collected via the returned error; keep going past the first.
		Error: func(error) {},
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s (%s): %w", path, l.cfg.Name, err)
	}
	if inModule {
		l.mod[path] = &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tp, Info: info}
	} else {
		l.std[path] = tp
	}
	return tp, nil
}

// locate maps an import path to its source directory: module packages
// under modRoot, everything else under GOROOT/src (with the GOROOT
// vendor tree as fallback, matching the toolchain's own resolution).
func (l *Loader) locate(path string) (dir string, inModule bool, err error) {
	if path == l.modPath {
		return l.modRoot, true, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true, nil
	}
	goroot := l.ctx.GOROOT
	dir = filepath.Join(goroot, "src", filepath.FromSlash(path))
	if _, statErr := os.Stat(dir); statErr == nil {
		return dir, false, nil
	}
	vdir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
	if _, statErr := os.Stat(vdir); statErr == nil {
		return vdir, false, nil
	}
	return "", false, fmt.Errorf("analysis: cannot locate package %q (module %s, GOROOT %s)", path, l.modPath, goroot)
}

// CheckDir parses and typechecks the .go files of dir as one package
// with the given import path — the fixture-loading entry point for the
// analyzer tests.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, Sizes: l.sizes, Error: func(error) {}}
	tp, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck fixture %s: %w", dir, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tp, Info: info}, nil
}

// LoadedModulePackages returns every module package the loader has
// typechecked so far — the packages asked for via Load plus any module
// dependencies their imports pulled in — sorted by import path for
// deterministic traversal.
func (l *Loader) LoadedModulePackages() []*Package {
	out := make([]*Package, 0, len(l.mod))
	for _, p := range l.mod {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RunPackage applies the analyzers' per-package checks to one loaded
// package, honoring DetOnly, and returns the diagnostics
// (malformed-annotation findings included). Module-scoped checks
// (Analyzer.ModuleRun) do not run here — use RunModule.
func RunPackage(p *Package, cfg Config, analyzers []*Analyzer) ([]Diagnostic, *Annotations, error) {
	annot := CollectAnnotations(p.Fset, p.Files, cfg.Name)
	diags := append([]Diagnostic(nil), annot.Malformed...)
	for _, az := range analyzers {
		if az.Run == nil || (az.DetOnly && !IsDeterministic(p.Path)) {
			continue
		}
		pass := &Pass{
			Analyzer: az,
			Fset:     p.Fset,
			Files:    p.Files,
			Pkg:      p.Types,
			Info:     p.Info,
			Config:   cfg.Name,
			Annot:    annot,
			diags:    &diags,
		}
		if err := az.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s on %s: %w", az.Name, p.Path, err)
		}
	}
	return diags, annot, nil
}

// RunModule applies the analyzers to the analyze packages under one
// configuration: first the per-package checks on each analyze package
// (exactly RunPackage's behavior), then every ModuleRun hook once over
// all — the full set of loaded module packages, analyze plus the
// dependencies their imports pulled in — so interprocedural analyses
// can follow calls across package boundaries. Suppressions consumed by
// module passes may live in any package of all; the returned
// annotation indexes (one per package, keyed by import path) feed the
// driver's stale-directive check.
func RunModule(analyze, all []*Package, cfg Config, analyzers []*Analyzer) ([]Diagnostic, map[string]*Annotations, error) {
	annots := make(map[string]*Annotations)
	collect := func(p *Package) *Annotations {
		if a, ok := annots[p.Path]; ok {
			return a
		}
		a := CollectAnnotations(p.Fset, p.Files, cfg.Name)
		annots[p.Path] = a
		return a
	}

	var diags []Diagnostic
	for _, p := range analyze {
		annot := collect(p)
		diags = append(diags, annot.Malformed...)
		for _, az := range analyzers {
			if az.Run == nil || (az.DetOnly && !IsDeterministic(p.Path)) {
				continue
			}
			pass := &Pass{
				Analyzer: az,
				Fset:     p.Fset,
				Files:    p.Files,
				Pkg:      p.Types,
				Info:     p.Info,
				Config:   cfg.Name,
				Annot:    annot,
				diags:    &diags,
			}
			if err := az.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", az.Name, p.Path, err)
			}
		}
	}

	perPkg := make([]*Annotations, 0, len(all))
	for _, p := range all {
		perPkg = append(perPkg, collect(p))
	}
	merged := MergeAnnotations(perPkg...)
	for _, az := range analyzers {
		if az.ModuleRun == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: az,
			Fset:     fsetOf(analyze, all),
			Analyze:  analyze,
			All:      all,
			Config:   cfg.Name,
			Annot:    merged,
			diags:    &diags,
		}
		if err := az.ModuleRun(mp); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s (module pass): %w", az.Name, err)
		}
	}
	return diags, annots, nil
}

func fsetOf(analyze, all []*Package) *token.FileSet {
	if len(analyze) > 0 {
		return analyze[0].Fset
	}
	if len(all) > 0 {
		return all[0].Fset
	}
	return token.NewFileSet()
}
